package aanoc

// Golden-report regression corpus: one pinned observability report per
// design under a fixed small configuration. Any change to simulation
// behaviour — or to the report schema — shows up as a byte diff against
// testdata/golden/. Refresh intentionally with
//
//	go test -run TestGoldenReports -update
//
// and review the diff like any other code change.

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"aanoc/internal/appmodel"
	"aanoc/internal/dram"
	"aanoc/internal/memctrl"
	"aanoc/internal/obs"
	"aanoc/internal/system"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden/ from the current simulator")

// goldenConfig is the pinned scenario. Cycles is a literal, not the
// AANOC_TEST_CYCLES knob: golden bytes must not depend on the
// environment.
func goldenConfig(d system.Design) system.Config {
	return system.Config{
		App: appmodel.BluRay(), Gen: dram.DDR2, Design: d,
		Cycles: 20_000, Seed: 0, PriorityDemand: true,
	}
}

var goldenSlugs = []struct {
	design system.Design
	slug   string
}{
	{system.Conv, "conv"},
	{system.ConvPFS, "convpfs"},
	{system.SDRAMAware, "ref4"},
	{system.SDRAMAwarePFS, "ref4pfs"},
	{system.GSS, "gss"},
	{system.GSSSAGM, "sagm"},
	{system.GSSSAGMSTI, "sti"},
}

func TestGoldenReports(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system golden runs")
	}
	for _, g := range goldenSlugs {
		g := g
		t.Run(g.slug, func(t *testing.T) {
			res, err := system.Run(goldenConfig(g.design))
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := res.Obs.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", g.slug+".json")
			if *updateGolden {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("report for %s diverged from %s (%d vs %d bytes); run with -update and review the diff",
					g.design, path, buf.Len(), len(want))
			}
			// The pinned bytes must stay parseable by the public decoder.
			if _, err := obs.Parse(want); err != nil {
				t.Errorf("golden report no longer parses: %v", err)
			}
		})
	}
}

// TestGoldenSchedulers pins one report per memory-scheduler zoo member
// under the same scenario as the per-design corpus: the scheduler name
// and decision-stat schema are part of the pinned bytes.
func TestGoldenSchedulers(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system golden runs")
	}
	for _, s := range memctrl.Schedulers() {
		if s == memctrl.SchedDefault {
			continue // pinned already by the per-design corpus
		}
		s := s
		t.Run(s.String(), func(t *testing.T) {
			cfg := goldenConfig(system.GSSSAGM)
			cfg.Scheduler = s
			res, err := system.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := res.Obs.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", "sched-"+s.String()+".json")
			if *updateGolden {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("scheduler %s report diverged from %s (%d vs %d bytes); run with -update and review the diff",
					s, path, buf.Len(), len(want))
			}
			rep, err := obs.Parse(want)
			if err != nil {
				t.Fatalf("golden report no longer parses: %v", err)
			}
			if rep.Scheduler != s.String() {
				t.Errorf("pinned report names scheduler %q, want %q", rep.Scheduler, s)
			}
			if rep.Memory.Scheduler == nil {
				t.Error("pinned report lacks the scheduler decision stats")
			}
		})
	}
}

// TestGoldenMultiChannel pins the two-channel report: the scaled
// Blu-ray app on two SDRAM channels under GSS+SAGM, including the
// per-channel schema the multi-channel subsystem added.
func TestGoldenMultiChannel(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system golden run")
	}
	cfg := system.Config{
		App: appmodel.BluRay2(), Gen: dram.DDR2, Design: system.GSSSAGM,
		Channels: 2, Cycles: 20_000, Seed: 0, PriorityDemand: true,
	}
	res, err := system.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Obs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden", "chan2.json")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("two-channel report diverged from %s (%d vs %d bytes); run with -update and review the diff",
			path, buf.Len(), len(want))
	}
	rep, err := obs.Parse(want)
	if err != nil {
		t.Fatalf("golden report no longer parses: %v", err)
	}
	if len(rep.Memory.Channels) != 2 {
		t.Errorf("pinned report carries %d channel entries, want 2", len(rep.Memory.Channels))
	}
	// The imbalance ratio accompanies every channel breakdown — including
	// the near-balanced case the old omitempty tag could silently drop.
	if rep.Memory.Imbalance == nil {
		t.Error("pinned multi-channel report lacks the imbalance ratio")
	}
}
