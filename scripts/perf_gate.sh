#!/bin/sh
# perf_gate.sh — the CI perf-trajectory gate for the saturated hot path.
#
# Runs the BenchmarkHotPath pair (the two most saturated Table I points,
# with work on nearly every cycle so idle-skip cannot mask a per-flit
# regression) under cpu and heap profiling, then compares the measured
# cycles/s of each member against the committed BENCH_hotpath.json
# baseline. Any member whose throughput falls more than the baseline's
# max_regression_pct (15%) below its recorded value fails the gate; the
# profiles (hotpath_cpu.pprof / hotpath_mem.pprof) are left next to the
# working tree for the CI job to upload on failure.
#
#   ./scripts/perf_gate.sh            # gate against BENCH_hotpath.json
#   ./scripts/perf_gate.sh -update    # re-measure and rewrite the baseline
#
# BENCHTIME sets the iteration budget (default 3x). PERF_GATE_SCALE
# multiplies the measured throughput before comparison — a testing hook
# for the gate itself: PERF_GATE_SCALE=0.8 simulates a 20% slowdown and
# must fail.
set -e

baseline=BENCH_hotpath.json
benchtime=${BENCHTIME:-3x}
scale=${PERF_GATE_SCALE:-1.0}
mode=gate
[ "${1:-}" = "-update" ] && mode=update

go test -run '^$' -bench HotPath -benchtime "$benchtime" \
	-cpuprofile hotpath_cpu.pprof -memprofile hotpath_mem.pprof . \
	| tee /tmp/bench_hotpath.txt

# Parse "BenchmarkHotPath/<name>-N  iters  ns/op ... cps cycles/s ..."
# into "name ns cps" lines.
awk '
/^BenchmarkHotPath\// {
	name = $1
	sub(/-[0-9]+$/, "", name)
	sub(/^BenchmarkHotPath\//, "", name)
	cps = ""
	for (i = 4; i <= NF; i++) if ($i == "cycles/s") cps = $(i - 1)
	print name, $3, cps
}' /tmp/bench_hotpath.txt > /tmp/hotpath_parsed.txt

if ! [ -s /tmp/hotpath_parsed.txt ]; then
	echo "perf_gate: no BenchmarkHotPath results parsed" >&2
	exit 1
fi

if [ "$mode" = "update" ]; then
	{
		printf '{\n  "date": "%s",\n  "benchtime": "%s",\n  "max_regression_pct": 15,\n  "benches": [\n' \
			"$(date -u +%Y-%m-%d)" "$benchtime"
		awk '{ lines[NR] = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s, \"cycles_per_s\": %s}", $1, $2, $3) }
		END { for (i = 1; i <= NR; i++) printf "%s%s\n", lines[i], (i < NR) ? "," : "" }' /tmp/hotpath_parsed.txt
		printf '  ]\n}\n'
	} > "$baseline"
	echo "wrote $baseline:"
	cat "$baseline"
	exit 0
fi

if ! [ -f "$baseline" ]; then
	echo "perf_gate: missing $baseline (run ./scripts/perf_gate.sh -update)" >&2
	exit 1
fi

maxreg=$(jq -r '.max_regression_pct' "$baseline")
fail=0
while read -r name ns cps; do
	want=$(jq -r --arg n "$name" '.benches[] | select(.name == $n) | .cycles_per_s' "$baseline")
	if [ -z "$want" ] || [ "$want" = "null" ]; then
		echo "perf_gate: $name has no baseline entry in $baseline" >&2
		fail=1
		continue
	fi
	# Fail when scaled throughput < (1 - maxreg/100) * baseline.
	verdict=$(awk -v cps="$cps" -v scale="$scale" -v want="$want" -v maxreg="$maxreg" '
	BEGIN {
		got = cps * scale
		floor = want * (1 - maxreg / 100)
		pct = 100 * (got / want - 1)
		printf "measured %.0f cycles/s (%+.1f%% vs baseline %.0f, floor %.0f): %s\n", \
			got, pct, want, floor, (got < floor) ? "FAIL" : "ok"
		exit (got < floor) ? 1 : 0
	}') || fail=1
	echo "perf_gate: $name: $verdict"
done < /tmp/hotpath_parsed.txt

if [ "$fail" -ne 0 ]; then
	echo "perf_gate: saturated hot-path throughput regressed more than ${maxreg}% — see hotpath_cpu.pprof / hotpath_mem.pprof" >&2
	exit 1
fi
echo "perf_gate: ok (within ${maxreg}% of $baseline)"
