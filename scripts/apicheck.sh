#!/usr/bin/env bash
# apicheck.sh — fail when the exported aanoc API surface drifts from the
# committed baseline, or when it changed without the README migration
# notes being touched in the same change.
#
# Usage: scripts/apicheck.sh [base-ref]
#
# 1. Regenerates the API dump (scripts/apidump) and diffs it against
#    api/aanoc.txt. A mismatch always fails: updating the baseline is
#    the explicit act of changing the public API.
# 2. When a base ref is given (CI passes the merge base), and the
#    baseline changed relative to it, README.md must have changed too —
#    the migration-notes rule.
set -euo pipefail
cd "$(dirname "$0")/.."

baseline=api/aanoc.txt
current=$(mktemp)
trap 'rm -f "$current"' EXIT

go run ./scripts/apidump > "$current"

if ! diff -u "$baseline" "$current"; then
  echo >&2
  echo "apicheck: exported aanoc API differs from $baseline." >&2
  echo "apicheck: regenerate with 'go run ./scripts/apidump > $baseline'" >&2
  echo "apicheck: and document the change in README.md (migration notes)." >&2
  exit 1
fi

base_ref="${1:-}"
if [ -n "$base_ref" ]; then
  if ! git diff --quiet "$base_ref" -- "$baseline"; then
    if git diff --quiet "$base_ref" -- README.md; then
      echo "apicheck: $baseline changed since $base_ref but README.md did not." >&2
      echo "apicheck: public API changes must update the README migration notes." >&2
      exit 1
    fi
  fi
fi

echo "apicheck: exported API matches $baseline"
