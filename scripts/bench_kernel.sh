#!/bin/sh
# bench_kernel.sh — run the table benchmarks and record the simulation
# kernel's trajectory in BENCH_kernel.json: per-benchmark ns/op, the
# idle-skip speedup on the low-utilization configs (the skip/noskip
# variant pairs of BenchmarkTableLowUtil), and the saturated-load
# throughput of the BenchmarkHotPath pair (the perf gate's measurement,
# see scripts/perf_gate.sh).
#
#   ./scripts/bench_kernel.sh [output.json] [trajectory.jsonl]
#
# Besides the full snapshot, one dated line summarising the run is
# appended to the trajectory file (default BENCH_trajectory.jsonl) — the
# long-term wall-clock record CI uploads on every run.
#
# BENCHTIME overrides the per-benchmark iteration budget (default 1x,
# the CI smoke setting; use e.g. 5x for stabler local numbers).
set -e

out=${1:-BENCH_kernel.json}
traj=${2:-BENCH_trajectory.jsonl}
benchtime=${BENCHTIME:-1x}

go test -run '^$' -bench 'Table|HotPath' -benchtime "$benchtime" . | tee /tmp/bench_table.txt

awk -v benchtime="$benchtime" '
/^Benchmark(Table|HotPath)/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = $3
	cps = ""
	for (i = 4; i <= NF; i++) if ($i == "cycles/s") cps = $(i - 1)
	n++
	names[n] = name
	nsop[n] = ns
	cycles[n] = cps
	if (name ~ /^BenchmarkTableLowUtil\//) {
		cfg = name
		sub(/^BenchmarkTableLowUtil\//, "", cfg)
		mode = cfg
		sub(/\/[^\/]*$/, "", cfg)
		sub(/^.*\//, "", mode)
		lowutil[cfg "/" mode] = ns
		if (!(cfg in seen)) { seen[cfg] = ++ncfg; cfgs[ncfg] = cfg }
	}
	if (name ~ /^BenchmarkHotPath\//) {
		sat = name
		sub(/^BenchmarkHotPath\//, "", sat)
		nsat++
		sats[nsat] = sat
		satcps[sat] = cps
		satns[sat] = ns
	}
}
END {
	printf "{\n  \"benchtime\": \"%s\",\n  \"benches\": [\n", benchtime
	for (i = 1; i <= n; i++) {
		printf "    {\"name\": \"%s\", \"ns_per_op\": %s", names[i], nsop[i]
		if (cycles[i] != "") printf ", \"cycles_per_s\": %s", cycles[i]
		printf "}%s\n", (i < n) ? "," : ""
	}
	printf "  ],\n  \"saturated\": [\n"
	for (i = 1; i <= nsat; i++) {
		s = sats[i]
		printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"cycles_per_s\": %s}%s\n", \
			s, satns[s], satcps[s], (i < nsat) ? "," : ""
	}
	printf "  ],\n  \"idle_skip_speedup\": {\n"
	for (i = 1; i <= ncfg; i++) {
		c = cfgs[i]
		s = lowutil[c "/skip"]; ns2 = lowutil[c "/noskip"]
		if (s > 0 && ns2 > 0)
			printf "    \"%s\": %.2f%s\n", c, ns2 / s, (i < ncfg) ? "," : ""
	}
	printf "  }\n}\n"
}' /tmp/bench_table.txt > "$out"

echo "wrote $out:"
cat "$out"

# Append one dated summary line to the trajectory: the saturated
# throughputs plus the idle-skip speedups, compact enough to diff and
# plot across months of runs.
date -u +%Y-%m-%d | awk -v benchtime="$benchtime" '
{ day = $0 }
END {
	while ((getline line < "/tmp/bench_table.txt") > 0) {
		nf = split(line, f, " ")
		if (f[1] !~ /^BenchmarkHotPath\//) continue
		name = f[1]
		sub(/-[0-9]+$/, "", name)
		sub(/^BenchmarkHotPath\//, "", name)
		for (i = 4; i <= nf; i++) if (f[i] == "cycles/s") cps = f[i - 1]
		nsat++
		parts = parts sprintf("%s\"%s\": %s", (nsat > 1) ? ", " : "", name, cps)
	}
	printf "{\"date\": \"%s\", \"benchtime\": \"%s\", \"saturated_cycles_per_s\": {%s}}\n", \
		day, benchtime, parts
}' >> "$traj"

echo "appended to $traj:"
tail -1 "$traj"
