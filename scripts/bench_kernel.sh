#!/bin/sh
# bench_kernel.sh — run the table benchmarks and record the simulation
# kernel's trajectory in BENCH_kernel.json: per-benchmark ns/op plus the
# idle-skip speedup on the low-utilization configs (the skip/noskip
# variant pairs of BenchmarkTableLowUtil).
#
#   ./scripts/bench_kernel.sh [output.json]
#
# BENCHTIME overrides the per-benchmark iteration budget (default 1x,
# the CI smoke setting; use e.g. 5x for stabler local numbers).
set -e

out=${1:-BENCH_kernel.json}
benchtime=${BENCHTIME:-1x}

go test -run '^$' -bench Table -benchtime "$benchtime" . | tee /tmp/bench_table.txt

awk -v benchtime="$benchtime" '
/^BenchmarkTable/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = $3
	cps = ""
	for (i = 4; i <= NF; i++) if ($i == "cycles/s") cps = $(i - 1)
	n++
	names[n] = name
	nsop[n] = ns
	cycles[n] = cps
	if (name ~ /^BenchmarkTableLowUtil\//) {
		cfg = name
		sub(/^BenchmarkTableLowUtil\//, "", cfg)
		mode = cfg
		sub(/\/[^\/]*$/, "", cfg)
		sub(/^.*\//, "", mode)
		lowutil[cfg "/" mode] = ns
		if (!(cfg in seen)) { seen[cfg] = ++ncfg; cfgs[ncfg] = cfg }
	}
}
END {
	printf "{\n  \"benchtime\": \"%s\",\n  \"benches\": [\n", benchtime
	for (i = 1; i <= n; i++) {
		printf "    {\"name\": \"%s\", \"ns_per_op\": %s", names[i], nsop[i]
		if (cycles[i] != "") printf ", \"cycles_per_s\": %s", cycles[i]
		printf "}%s\n", (i < n) ? "," : ""
	}
	printf "  ],\n  \"idle_skip_speedup\": {\n"
	for (i = 1; i <= ncfg; i++) {
		c = cfgs[i]
		s = lowutil[c "/skip"]; ns2 = lowutil[c "/noskip"]
		if (s > 0 && ns2 > 0)
			printf "    \"%s\": %.2f%s\n", c, ns2 / s, (i < ncfg) ? "," : ""
	}
	printf "  }\n}\n"
}' /tmp/bench_table.txt > "$out"

echo "wrote $out:"
cat "$out"
