// Command apidump prints the exported surface of the aanoc facade
// package as a stable, sorted text listing: every exported const, var,
// func, type, method, and struct field, with its type spelled out.
//
//	go run ./scripts/apidump            # dump the root package
//	go run ./scripts/apidump -dir .     # explicit directory
//
// CI diffs the dump against api/aanoc.txt (see scripts/apicheck.sh): a
// facade change that does not update the committed baseline — and the
// README migration notes with it — fails the build. The point is not to
// forbid API evolution but to make it a reviewed, documented event.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	dir := flag.String("dir", ".", "package directory to dump")
	flag.Parse()

	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, *dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		fatal(err)
	}

	var lines []string
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				lines = append(lines, dumpDecl(fset, decl)...)
			}
		}
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
}

// dumpDecl renders one top-level declaration's exported parts.
func dumpDecl(fset *token.FileSet, decl ast.Decl) []string {
	var out []string
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return nil
		}
		recv := ""
		if d.Recv != nil && len(d.Recv.List) > 0 {
			t := exprString(fset, d.Recv.List[0].Type)
			// Methods on unexported receivers are unreachable API.
			if !ast.IsExported(strings.TrimPrefix(t, "*")) {
				return nil
			}
			recv = "(" + t + ") "
		}
		out = append(out, fmt.Sprintf("func %s%s%s", recv, d.Name.Name, signature(fset, d.Type)))
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.ValueSpec:
				kind := "var"
				if d.Tok == token.CONST {
					kind = "const"
				}
				for _, n := range s.Names {
					if n.IsExported() {
						out = append(out, fmt.Sprintf("%s %s", kind, n.Name))
					}
				}
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				switch t := s.Type.(type) {
				case *ast.StructType:
					out = append(out, fmt.Sprintf("type %s struct", s.Name.Name))
					for _, f := range t.Fields.List {
						ft := exprString(fset, f.Type)
						if len(f.Names) == 0 {
							out = append(out, fmt.Sprintf("field %s.%s (embedded)", s.Name.Name, ft))
							continue
						}
						for _, n := range f.Names {
							if n.IsExported() {
								out = append(out, fmt.Sprintf("field %s.%s %s", s.Name.Name, n.Name, ft))
							}
						}
					}
				case *ast.InterfaceType:
					out = append(out, fmt.Sprintf("type %s interface", s.Name.Name))
					for _, m := range t.Methods.List {
						for _, n := range m.Names {
							if n.IsExported() {
								out = append(out, fmt.Sprintf("method %s.%s%s", s.Name.Name, n.Name, exprString(fset, m.Type)))
							}
						}
					}
				default:
					if s.Assign.IsValid() {
						out = append(out, fmt.Sprintf("type %s = %s", s.Name.Name, exprString(fset, s.Type)))
					} else {
						out = append(out, fmt.Sprintf("type %s %s", s.Name.Name, exprString(fset, s.Type)))
					}
				}
			}
		}
	}
	return out
}

// signature renders a function type ("(a int) (b, error)").
func signature(fset *token.FileSet, ft *ast.FuncType) string {
	s := exprString(fset, ft)
	return strings.TrimPrefix(s, "func")
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var b strings.Builder
	if err := printer.Fprint(&b, fset, e); err != nil {
		fatal(err)
	}
	return b.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "apidump:", err)
	os.Exit(1)
}
