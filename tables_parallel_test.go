package aanoc

// Parallel-vs-serial equivalence for every table/figure driver: the
// formatted output — the artifact the paper comparison rests on — must
// be byte-identical whether a grid runs on one worker or many. The CI
// determinism job checks the same property end-to-end through the
// aanoc-tables binary.

import (
	"os"
	"reflect"
	"strconv"
	"testing"
)

// driverCycles keeps the 2x full-driver runs affordable; the
// AANOC_TEST_CYCLES knob lets CI shrink (or grow) them.
func driverCycles() int64 {
	if s := os.Getenv("AANOC_TEST_CYCLES"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil && v > 0 {
			return v
		}
	}
	return 2000
}

func TestTableDriversParallelByteIdentical(t *testing.T) {
	drivers := []struct {
		name string
		run  func(TableOptions) ([]Row, error)
	}{
		{"TableI", TableI},
		{"TableII", TableII},
		{"TableIII", TableIII},
	}
	for _, d := range drivers {
		d := d
		t.Run(d.name, func(t *testing.T) {
			serialOpts := TableOptions{Cycles: driverCycles(), Parallel: 1}
			parallelOpts := TableOptions{Cycles: driverCycles(), Parallel: 4}
			serial, err := d.run(serialOpts)
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := d.run(parallelOpts)
			if err != nil {
				t.Fatal(err)
			}
			a, b := FormatRows(serial), FormatRows(parallel)
			if a != b {
				t.Fatalf("%s output differs between -parallel 1 and 4:\n--- serial\n%s--- parallel\n%s", d.name, a, b)
			}
		})
	}
}

func TestFig8ParallelByteIdentical(t *testing.T) {
	serial, err := Fig8("sdtv", 1, 200, TableOptions{Cycles: driverCycles(), Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Fig8("sdtv", 1, 200, TableOptions{Cycles: driverCycles(), Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("Fig8 diverged:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

func TestTableVParallelByteIdentical(t *testing.T) {
	serial, err := TableV(TableOptions{Cycles: driverCycles(), Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := TableV(TableOptions{Cycles: driverCycles(), Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("TableV diverged:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

// TestFormatRowsGolden pins the exact rendering FormatRows produces —
// the strings.Builder rewrite (and any future one) must not move a
// byte, since the CI determinism diff and EXPERIMENTS.md depend on it.
func TestFormatRowsGolden(t *testing.T) {
	rows := []Row{{
		App: "bluray", Gen: 2, ClockMHz: 333, Design: GSSSAGM,
		Utilization: 0.8125, UsefulUtilization: 0.75, LatencyAll: 123.4,
		LatencyDemand: 56.7, LatencyPriority: 89.1, WasteFrac: 0.0625,
	}}
	want := "app      gen    MHz  design           util  useful  lat-all  lat-dem  lat-pri   waste\n" +
		"bluray   DDR2   333  GSS+SAGM       0.812  0.750      123       57       89    6.2%\n"
	if got := FormatRows(rows); got != want {
		t.Fatalf("FormatRows rendering changed:\ngot:  %q\nwant: %q", got, want)
	}
}
