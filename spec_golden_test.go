package aanoc

// Golden spec corpus: the five builtin application models committed as
// scenario spec files under testdata/specs/, pinned two ways — the spec
// files themselves are byte-stable (regenerate with -update), and
// running a spec through the facade produces reports byte-identical to
// running the builtin model it mirrors, on every design. Together these
// prove the declarative spec layer is a lossless re-expression of the
// hard-coded models, not a parallel implementation that can drift.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"aanoc/internal/appmodel"
	"aanoc/internal/scenario"
)

// specApps maps each builtin model to its committed spec file.
var specApps = []string{"bluray", "sdtv", "ddtv", "bluray2", "ddtv4"}

func specPath(name string) string {
	return filepath.Join("testdata", "specs", name+".json")
}

// TestSpecFilesPinned keeps testdata/specs/ in lockstep with the
// builtin models: FromApp must serialise to exactly the committed
// bytes, and the committed bytes must parse back to the exact model.
func TestSpecFilesPinned(t *testing.T) {
	for _, name := range specApps {
		name := name
		t.Run(name, func(t *testing.T) {
			app, err := appmodel.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := scenario.FromApp(app).WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			path := specPath(name)
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing spec file (run with -update to create): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("spec for %s diverged from %s; run with -update and review the diff", name, path)
			}
			sp, err := LoadSpec(path)
			if err != nil {
				t.Fatal(err)
			}
			back, err := sp.App()
			if err != nil {
				t.Fatal(err)
			}
			if err := back.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSpecReportsByteIdentical runs each committed spec and its builtin
// model through the facade under identical run parameters and demands
// byte-identical observability reports on every design.
func TestSpecReportsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system runs across all designs")
	}
	for _, name := range specApps {
		name := name
		t.Run(name, func(t *testing.T) {
			sp, err := LoadSpec(specPath(name))
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range Designs() {
				modelCfg := Config{Model: App(name), Design: d, Cycles: 10_000, PriorityDemand: true}
				specCfg := Config{Spec: sp, Design: d, Cycles: 10_000, PriorityDemand: true}
				mres, err := Run(modelCfg)
				if err != nil {
					t.Fatalf("%s model: %v", d, err)
				}
				sres, err := Run(specCfg)
				if err != nil {
					t.Fatalf("%s spec: %v", d, err)
				}
				var mbuf, sbuf bytes.Buffer
				if err := mres.Obs.WriteJSON(&mbuf); err != nil {
					t.Fatal(err)
				}
				if err := sres.Obs.WriteJSON(&sbuf); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(mbuf.Bytes(), sbuf.Bytes()) {
					t.Errorf("%s: spec-driven report differs from the model-driven report (%d vs %d bytes)",
						d, sbuf.Len(), mbuf.Len())
				}
			}
		})
	}
}
