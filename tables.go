package aanoc

import (
	"fmt"
	"strings"

	"aanoc/internal/appmodel"
	"aanoc/internal/area"
	"aanoc/internal/dram"
	"aanoc/internal/mapping"
	"aanoc/internal/memctrl"
	"aanoc/internal/obs"
	"aanoc/internal/sweep"
	"aanoc/internal/system"
)

// Row is one cell group of Tables I-III: an application at one clock
// point, measured under one design. JSON tags serve the machine-readable
// sidecars (aanoc-tables -json, aanoc-report -json); the human-readable
// text tables ignore Obs entirely, so sidecar support cannot move a byte
// of the default output.
type Row struct {
	App      string `json:"app"`
	Gen      int    `json:"gen"`
	ClockMHz int    `json:"clockMHz"`
	Design   Design `json:"design"`
	// Scheduler names the memory scheduler when a zoo member replaced
	// the design's controller (empty for the default, so paper-table
	// sidecars are unchanged).
	Scheduler string `json:"scheduler,omitempty"`
	// Channels is the SDRAM channel count when it exceeds the paper's
	// single channel.
	Channels int `json:"channels,omitempty"`

	Utilization float64 `json:"utilization"`
	// UsefulUtilization excludes over-fetched (discarded) beats — the
	// access-granularity waste of Fig. 2.
	UsefulUtilization float64 `json:"usefulUtilization"`
	LatencyAll        float64 `json:"latencyAll"`
	LatencyDemand     float64 `json:"latencyDemand"`
	LatencyPriority   float64 `json:"latencyPriority"`
	Completed         int64   `json:"completed"`
	WasteFrac         float64 `json:"wasteFrac"`

	// Obs is the run's observability report (see internal/obs).
	Obs *obs.Report `json:"obs,omitempty"`
}

func rowFrom(res Result) Row {
	sched := ""
	if res.Scheduler != memctrl.SchedDefault {
		sched = res.Scheduler.String()
	}
	channels := 0
	if res.Channels > 1 {
		channels = res.Channels
	}
	return Row{
		App: res.App, Gen: int(res.Gen), ClockMHz: res.ClockMHz, Design: res.Design,
		Scheduler: sched, Channels: channels,
		Utilization:       res.Utilization,
		UsefulUtilization: res.Utilization * (1 - res.WasteFrac),
		LatencyAll:        res.LatAll,
		LatencyDemand:     res.LatDemand,
		LatencyPriority:   res.LatPriority,
		Completed:         res.Completed,
		WasteFrac:         res.WasteFrac,
		Obs:               res.Obs,
	}
}

// TableOptions control the table drivers.
type TableOptions struct {
	// Cycles per run (default 200,000; the paper uses 1,000,000).
	Cycles int64
	Seed   uint64
	// Parallel bounds how many grid points simulate concurrently:
	// 0 selects runtime.GOMAXPROCS(0), 1 runs strictly serially. Every
	// run is deterministic and independent, so the results — and the
	// formatted tables — are byte-identical at any setting.
	Parallel int
	// Progress, when non-nil, is called after each grid point completes
	// with the number done and the grid size (serialised, not ordered).
	Progress func(done, total int)
	// Checked runs every grid point under the internal/check invariant
	// layer; violations land in each row's Obs.Violations (see
	// CheckedViolations). Checked runs measure identically to unchecked
	// runs — the monitors only observe.
	Checked bool
	// Spec, when set, replaces the paper's application matrix: the table
	// drivers evaluate the spec's platform — its mesh, cores, clocks and
	// (from its run block) channel configuration — under each driver's
	// design/generation axes instead of the three builtin applications.
	Spec *Spec
	// Store, when non-nil, persists every grid point's result in the
	// content-addressed result store: a table regenerated against a
	// populated store simulates nothing and reproduces byte-identical
	// output (see OpenStore).
	Store *Store
}

// apps returns the applications a driver iterates: the paper's three,
// or the single spec-driven platform.
func (o TableOptions) apps() ([]appmodel.App, error) {
	if o.Spec == nil {
		return appmodel.Apps(), nil
	}
	app, err := o.Spec.App()
	if err != nil {
		return nil, specErr(err)
	}
	return []appmodel.App{app}, nil
}

// decorate attaches the spec identity (content hash) and its platform
// channel configuration to one grid point of a spec-driven table.
func (o TableOptions) decorate(cfg system.Config) system.Config {
	if o.Spec == nil {
		return cfg
	}
	cfg.SpecHash = o.Spec.Hash()
	if r := o.Spec.Run; r != nil {
		cfg.Channels = r.Channels
		if r.Scheme != "" {
			if sch, err := mapping.ParseChannelScheme(r.Scheme); err == nil {
				cfg.Scheme = sch
			}
		}
	}
	return cfg
}

func (o TableOptions) cycles() int64 {
	if o.Cycles == 0 {
		return 200_000
	}
	return o.Cycles
}

// sweepOptions maps the table knobs onto the executor's. For grids of
// your own construction, prefer the typed sweep facade (SweepGrid /
// SweepOptions / Sweep): it subsumes Parallel, Progress and Store for
// arbitrary point lists and additionally exposes cancellation and
// per-point cache provenance — TableOptions keeps these fields only
// for the fixed paper-table drivers.
func (o TableOptions) sweepOptions() sweep.Options {
	opts := sweep.Options{Workers: o.Parallel, OnProgress: o.Progress}
	if o.Store != nil {
		opts.Store = o.Store
	}
	return opts
}

// applyChecked arms the invariant layer on every grid point when the
// options ask for it.
func (o TableOptions) applyChecked(cfgs []system.Config) []system.Config {
	if o.Checked {
		for i := range cfgs {
			cfgs[i].Checked = true
		}
	}
	return cfgs
}

// CheckedViolations counts the invariant violations recorded across the
// rows' observability reports — zero for a healthy simulator. Only
// meaningful for grids run with TableOptions.Checked.
func CheckedViolations(rows []Row) int {
	n := 0
	for _, r := range rows {
		if r.Obs != nil {
			n += len(r.Obs.Violations)
		}
	}
	return n
}

// runGrid fans the configurations across the sweep executor and maps
// the results, in submission order, to table rows.
func runGrid(cfgs []system.Config, o TableOptions) ([]Row, error) {
	results, err := sweep.Collect(o.applyChecked(cfgs), o.sweepOptions())
	if err != nil {
		return nil, err
	}
	rows := make([]Row, len(results))
	for i, res := range results {
		rows[i] = rowFrom(res)
	}
	return rows, nil
}

// runMatrix evaluates the given designs over every application and DDR
// generation at the paper's clock points.
func runMatrix(designs []Design, priority bool, o TableOptions) ([]Row, error) {
	apps, err := o.apps()
	if err != nil {
		return nil, err
	}
	var cfgs []system.Config
	for _, app := range apps {
		for _, gen := range []dram.Generation{dram.DDR1, dram.DDR2, dram.DDR3} {
			for _, d := range designs {
				cfgs = append(cfgs, o.decorate(system.Config{
					App: app, Gen: gen, Design: d,
					PriorityDemand: priority,
					Cycles:         o.cycles(), Seed: o.Seed,
				}))
			}
		}
	}
	return runGrid(cfgs, o)
}

// TableI reproduces the paper's Table I: CONV, [4], GSS and GSS+SAGM on
// the three applications and three DDR generations, with no priority
// memory requests.
func TableI(o TableOptions) ([]Row, error) {
	return runMatrix([]Design{Conv, SDRAMAware, GSS, GSSSAGM}, false, o)
}

// TableII reproduces Table II: CONV+PFS, [4]+PFS, GSS and GSS+SAGM with
// demand requests served as priority packets.
func TableII(o TableOptions) ([]Row, error) {
	return runMatrix([]Design{ConvPFS, SDRAMAwarePFS, GSS, GSSSAGM}, true, o)
}

// TableIII reproduces Table III: GSS+SAGM+STI against GSS+SAGM on DDR III
// at the three high clock points, where short turn-around bank
// interleaving matters.
func TableIII(o TableOptions) ([]Row, error) {
	apps, err := o.apps()
	if err != nil {
		return nil, err
	}
	var cfgs []system.Config
	for _, app := range apps {
		for _, d := range []Design{GSSSAGM, GSSSAGMSTI} {
			cfgs = append(cfgs, o.decorate(system.Config{
				App: app, Gen: dram.DDR3, Design: d,
				PriorityDemand: true,
				// The paper-literal partially-open-page policy (AP tag on
				// every request) is the regime where short turn-around
				// interleaving hurts and the STI filters help.
				TagEveryRequest: true,
				Cycles:          o.cycles(), Seed: o.Seed,
			}))
		}
	}
	return runGrid(cfgs, o)
}

// TableSchedulers evaluates the memory-scheduler zoo against the
// paper's controllers: each scheduler (the design default, DPQ,
// regulated, staged) on the three applications under GSS+SAGM with
// priority demand, across a generation axis — DDR II at the paper
// clock, plus DDR4 (bank groups, long/short tCCD/tRRD) and LPDDR3
// (wide tFAW) at their fastest grades. It is the
// predictability-versus-throughput comparison the zoo exists for — the
// DPQ buys an analytic worst-case bound and the regulator buys per-bank
// isolation, both at a utilization cost the rows quantify — and the
// generation column shows how the structured-timing devices move it.
func TableSchedulers(o TableOptions) ([]Row, error) {
	apps, err := o.apps()
	if err != nil {
		return nil, err
	}
	var cfgs []system.Config
	for _, app := range apps {
		for _, gen := range []dram.Generation{dram.DDR2, dram.DDR4, dram.LPDDR3} {
			for _, s := range memctrl.Schedulers() {
				cfgs = append(cfgs, o.decorate(system.Config{
					App: app, Gen: gen, Design: GSSSAGM, Scheduler: s,
					PriorityDemand: true,
					Cycles:         o.cycles(), Seed: o.Seed,
				}))
			}
		}
	}
	return runGrid(cfgs, o)
}

// Fig8Point is one point of the Fig. 8 sweep: k GSS routers substituted
// for conventional routers, nearest the memory subsystem first.
type Fig8Point struct {
	GSSRouters      int
	Utilization     float64
	LatencyAll      float64
	LatencyPriority float64
}

// Fig8 reproduces one curve of Fig. 8 for an application: memory
// performance versus the number of GSS routers (0..mesh size). The paper
// pairs single DTV with DDR I at 200 MHz, Blu-ray with DDR II at 333 MHz
// and dual DTV with DDR III at 667 MHz; pass gen/clock accordingly.
func Fig8(appName string, gen, clockMHz int, o TableOptions) ([]Fig8Point, error) {
	app, err := appmodel.ByName(appName)
	if err != nil {
		return nil, err
	}
	return fig8(app, gen, clockMHz, o)
}

// Fig8Spec sweeps the GSS-router count over a spec-driven platform: the
// Fig. 8 curve for a declarative scenario instead of a named builtin.
// clockMHz 0 selects the spec's clock for the generation.
func Fig8Spec(spec *Spec, gen, clockMHz int, o TableOptions) ([]Fig8Point, error) {
	app, err := spec.App()
	if err != nil {
		return nil, specErr(err)
	}
	o.Spec = spec
	return fig8(app, gen, clockMHz, o)
}

func fig8(app appmodel.App, gen, clockMHz int, o TableOptions) ([]Fig8Point, error) {
	var cfgs []system.Config
	for k := 0; k <= app.Width*app.Height; k++ {
		n := k
		if k == 0 {
			n = -1 // zero GSS routers (0 in Config means "all")
		}
		cfgs = append(cfgs, o.decorate(system.Config{
			App: app, Gen: dram.Generation(gen), ClockMHz: clockMHz,
			Design: GSSSAGM, GSSRouters: n,
			PriorityDemand: true,
			Cycles:         o.cycles(), Seed: o.Seed,
		}))
	}
	results, err := sweep.Collect(o.applyChecked(cfgs), o.sweepOptions())
	if err != nil {
		return nil, err
	}
	out := make([]Fig8Point, len(results))
	for k, res := range results {
		out[k] = Fig8Point{
			GSSRouters:      k,
			Utilization:     res.Utilization,
			LatencyAll:      res.LatAll,
			LatencyPriority: res.LatPriority,
		}
	}
	return out, nil
}

// AreaRow is one line of Table IV (gate counts at 400 MHz).
type AreaRow = area.Table4Row

// TableIV reproduces the paper's gate-count comparison.
func TableIV() []AreaRow { return area.Table4() }

// PowerRow is one line of Table V: average power of a full design running
// an application at its clock point.
type PowerRow struct {
	App      string
	ClockMHz int
	Design   string
	PowerMW  float64
}

// TableV reproduces the paper's power comparison: CONV, [4] and
// GSS+SAGM+STI running single DTV at 200 MHz, Blu-ray at 400 MHz and dual
// DTV at 800 MHz. Gate counts come from the Table IV model scaled to each
// mesh; activity comes from simulation.
func TableV(o TableOptions) ([]PowerRow, error) {
	cases := []struct {
		app   string
		gen   int
		clock int
	}{
		{"sdtv", 1, 200},
		{"bluray", 2, 400},
		{"ddtv", 3, 800},
	}
	designs := []struct {
		d    Design
		fc   area.FlowController
		mem  area.MemSubsystem
		gssN int
	}{
		{Conv, area.FCConv, area.MemMax, 0},
		{SDRAMAware, area.FCRef4, area.MemSimple, 3},
		{GSSSAGMSTI, area.FCGSSSTI, area.MemSimpleAP, 3},
	}
	// The grid and, aligned by index, the per-point power-model inputs.
	type powerMeta struct {
		app   appmodel.App
		clock int
		fc    area.FlowController
		mem   area.MemSubsystem
		gssN  int
		name  string
	}
	var cfgs []system.Config
	var meta []powerMeta
	for _, c := range cases {
		app, err := appmodel.ByName(c.app)
		if err != nil {
			return nil, err
		}
		for _, ds := range designs {
			cfgs = append(cfgs, system.Config{
				App: app, Gen: dram.Generation(c.gen), ClockMHz: c.clock,
				Design: ds.d, PriorityDemand: true,
				Cycles: o.cycles(), Seed: o.Seed,
			})
			meta = append(meta, powerMeta{
				app: app, clock: c.clock,
				fc: ds.fc, mem: ds.mem, gssN: ds.gssN, name: ds.d.String(),
			})
		}
	}
	results, err := sweep.Collect(o.applyChecked(cfgs), o.sweepOptions())
	if err != nil {
		return nil, err
	}
	out := make([]PowerRow, len(results))
	for i, res := range results {
		m := meta[i]
		gates := area.NoCGates(m.app.Width, m.app.Height, 16, m.fc, m.mem, m.gssN)
		out[i] = PowerRow{
			App: m.app.Name, ClockMHz: m.clock, Design: m.name,
			PowerMW: area.Power(gates, m.clock, res.Utilization),
		}
	}
	return out, nil
}

// FormatSchedulerRows renders a scheduler-comparison grid as an aligned
// text table, one line per (app, scheduler) point.
func FormatSchedulerRows(rows []Row) string {
	var b strings.Builder
	b.Grow(96 * (len(rows) + 1))
	fmt.Fprintf(&b, "%-8s %-4s %5s  %-14s %-10s %6s %8s %8s %8s\n",
		"app", "gen", "MHz", "design", "scheduler", "util", "lat-all", "lat-dem", "lat-pri")
	for _, r := range rows {
		sched := r.Scheduler
		if sched == "" {
			sched = "default"
		}
		fmt.Fprintf(&b, "%-8s %-4s %5d  %-14s %-10s %.3f %8.0f %8.0f %8.0f\n",
			r.App, dram.Generation(r.Gen), r.ClockMHz, r.Design, sched, r.Utilization,
			r.LatencyAll, r.LatencyDemand, r.LatencyPriority)
	}
	return b.String()
}

// FormatRows renders rows as an aligned text table, one line per row.
func FormatRows(rows []Row) string {
	var b strings.Builder
	b.Grow(96 * (len(rows) + 1))
	fmt.Fprintf(&b, "%-8s %-4s %5s  %-14s %6s %7s %8s %8s %8s %7s\n",
		"app", "gen", "MHz", "design", "util", "useful", "lat-all", "lat-dem", "lat-pri", "waste")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-4s %5d  %-14s %.3f  %.3f %8.0f %8.0f %8.0f %6.1f%%\n",
			r.App, dram.Generation(r.Gen), r.ClockMHz, r.Design, r.Utilization, r.UsefulUtilization,
			r.LatencyAll, r.LatencyDemand, r.LatencyPriority, 100*r.WasteFrac)
	}
	return b.String()
}
