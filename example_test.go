package aanoc_test

import (
	"fmt"

	"aanoc"
)

// The basic workflow: run one design point and read the paper's metrics.
func ExampleRun() {
	res, err := aanoc.Run(aanoc.Config{
		App:        "bluray",
		Generation: 2, // DDR2 at the application's paper clock (266 MHz)
		Design:     aanoc.GSSSAGM,
		Cycles:     30_000,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.App, res.Gen, res.ClockMHz)
	fmt.Println(res.Utilization > 0.3, res.Completed > 0)
	// Output:
	// bluray DDR2 266
	// true true
}

// Designs enumerates the seven evaluated design points in the paper's
// naming.
func ExampleDesigns() {
	for _, d := range aanoc.Designs() {
		fmt.Println(d)
	}
	// Output:
	// CONV
	// CONV+PFS
	// [4]
	// [4]+PFS
	// GSS
	// GSS+SAGM
	// GSS+SAGM+STI
}

// ParseDesign accepts both the paper names and lowercase shorthands.
func ExampleParseDesign() {
	a, _ := aanoc.ParseDesign("GSS+SAGM")
	b, _ := aanoc.ParseDesign("sagm")
	fmt.Println(a == b)
	// Output:
	// true
}

// TableIV evaluates the analytic gate-count model (no simulation needed).
func ExampleTableIV() {
	rows := aanoc.TableIV()
	conv, ours := rows[0], rows[2]
	fmt.Printf("saving vs CONV: %.0f%%\n", 100*(1-float64(ours.NoC3x3)/float64(conv.NoC3x3)))
	// Output:
	// saving vs CONV: 33%
}
