package aanoc

import (
	"context"
	"errors"
	"fmt"

	"aanoc/internal/store"
	"aanoc/internal/sweep"
	"aanoc/internal/system"
)

// This file is the typed sweep facade: grids of Configs executed
// across the bounded worker pool with fingerprint deduplication and an
// optional persistent result store — the programmatic surface
// aanoc-serve (and any other embedding service) builds on, so servers
// never reach into the internal packages.

// Sweep-facade sentinels; test with errors.Is.
var (
	// ErrBadGrid reports a sweep grid that cannot run: empty, or holding
	// a point whose Config fails validation (the point's own sentinel —
	// ErrUnknownApp, ErrBadChannels, ... — is wrapped alongside).
	ErrBadGrid = errors.New("invalid sweep grid")
	// ErrStoreCorrupt marks a store entry that failed integrity
	// verification. The sweep executor handles it internally (the entry
	// is removed and the point re-simulated); it surfaces only from
	// direct Store method calls, e.g. a server looking up one result.
	ErrStoreCorrupt = store.ErrCorrupt
)

// Store is the persistent, content-addressed result store: simulation
// results keyed by the canonical fingerprint of their fully resolved
// configuration, written atomically with per-entry integrity hashes,
// bounded by an LRU byte cap, and namespaced by the store format, the
// report schema and the pinned API surface (so any reviewed API change
// silently retires stale entries). See DESIGN.md, "Result store &
// server".
type Store = store.Store

// StoreOptions configure OpenStore; the zero value selects the
// defaults (a 1 GiB cap).
type StoreOptions = store.Options

// StoreStats are one Store handle's counters plus the namespace
// occupancy.
type StoreStats = store.Stats

// OpenStore opens (creating if needed) the result store rooted at dir.
// Multiple processes may share one directory: writes are atomic
// renames of identical bytes (runs are deterministic), so concurrent
// writers converge on a single entry per fingerprint.
func OpenStore(dir string, o StoreOptions) (*Store, error) {
	return store.Open(dir, o)
}

// StoreVersion is the namespace entries are stored under — it changes,
// retiring all existing entries, when the store layout, the
// observability schema, or the pinned facade surface (api/aanoc.txt)
// changes.
func StoreVersion() string { return store.Version() }

// SweepGrid is a list of simulation points to execute. Points are
// independent; duplicates (after resolution — a default spelled
// explicitly is the same point) are simulated once.
type SweepGrid struct {
	Points []Config
}

// SweepOptions configure one Sweep call.
type SweepOptions struct {
	// Context, when non-nil, cancels the sweep: points not yet started
	// settle with the context's error and in-flight simulations abandon
	// within one kernel epoch.
	Context context.Context
	// Workers bounds concurrent simulations: 0 selects
	// runtime.GOMAXPROCS(0), 1 runs strictly serially. Results are
	// byte-identical at any setting.
	Workers int
	// DisableCache forces every point to simulate, bypassing both the
	// in-process fingerprint cache and the persistent Store.
	DisableCache bool
	// Store, when non-nil, persists results across processes: points
	// whose fingerprint is already stored are served from disk without
	// simulating, and fresh results are written back.
	Store *Store
	// OnProgress, when non-nil, is invoked after each point settles with
	// the number settled and the grid size (serialised, not ordered).
	OnProgress func(done, total int)
}

// SweepResult is one grid point's outcome, at its submission index.
type SweepResult struct {
	Index int
	// Fingerprint is the point's canonical configuration hash — the key
	// under which its result is (or would be) stored. Empty when the
	// point was not cacheable or the cache was disabled.
	Fingerprint string
	// Cached marks a duplicate served from the in-process cache; Stored
	// marks a result that came from the persistent store rather than a
	// simulation in this process. A duplicate of a store-served point
	// carries both.
	Cached bool
	Stored bool
	// Row is the point's measurements (zero when Err is set); its Obs
	// field carries the full observability report.
	Row Row
	// Err is the point's failure, if any — a cancelled context, a
	// simulation error. One failed point does not disturb the others.
	Err error
}

// SweepStats account for one Sweep call.
type SweepStats struct {
	// Runs counts simulations actually executed; CacheHits points served
	// from the in-process fingerprint cache; StoreHits points served
	// from the persistent store.
	Runs      int
	CacheHits int
	StoreHits int
	// Workers is the resolved worker count.
	Workers int
}

// Sweep executes every point of the grid and returns the results in
// submission order. The grid is validated up front: an empty grid or
// any invalid point returns an error wrapping ErrBadGrid (and, for an
// invalid point, its field sentinel) before anything simulates.
// Per-point execution failures land in the corresponding
// SweepResult.Err, never in the returned error — use SweepFirstErr to
// surface them.
func Sweep(g SweepGrid, o SweepOptions) ([]SweepResult, SweepStats, error) {
	if len(g.Points) == 0 {
		return nil, SweepStats{}, fmt.Errorf("aanoc: %w: no points", ErrBadGrid)
	}
	cfgs := make([]system.Config, len(g.Points))
	for i, c := range g.Points {
		cfg, err := c.toInternal()
		if err != nil {
			return nil, SweepStats{}, fmt.Errorf("aanoc: %w: point %d: %w", ErrBadGrid, i, err)
		}
		cfgs[i] = cfg
	}
	opts := sweep.Options{
		Workers:      o.Workers,
		Context:      o.Context,
		DisableCache: o.DisableCache,
		OnProgress:   o.OnProgress,
	}
	if o.Store != nil {
		opts.Store = o.Store
	}
	results, st := sweep.Run(cfgs, opts)
	out := make([]SweepResult, len(results))
	for i, r := range results {
		out[i] = SweepResult{
			Index:       r.Index,
			Fingerprint: r.Fingerprint,
			Cached:      r.Cached,
			Stored:      r.Stored,
			Err:         r.Err,
		}
		if r.Err == nil {
			out[i].Row = rowFrom(r.Res)
		}
	}
	return out, SweepStats{
		Runs:      st.Runs,
		CacheHits: st.CacheHits,
		StoreHits: st.StoreHits,
		Workers:   st.Workers,
	}, nil
}

// SweepFirstErr returns the error of the earliest-submitted failed
// point, or nil when every point succeeded.
func SweepFirstErr(results []SweepResult) error {
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("aanoc: sweep point %d: %w", r.Index, r.Err)
		}
	}
	return nil
}
