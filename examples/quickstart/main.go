// Quickstart: run the paper's headline comparison on one configuration.
//
// The Blu-ray application model (eight cores sharing one DDR2 SDRAM
// through a 3x3 mesh, CPU demand requests served as priority packets) is
// simulated under the four designs of the paper's Table II, printing the
// three metrics the paper reports: memory utilization, average memory
// latency of all packets and average latency of the priority (demand)
// packets.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"aanoc"
	"aanoc/examples/internal/exutil"
)

func main() {
	designs := []aanoc.Design{
		aanoc.ConvPFS,       // conventional NoC + MemMax, priority-first
		aanoc.SDRAMAwarePFS, // SDRAM-aware NoC [4], priority-first
		aanoc.GSS,           // the paper's hybrid GSS router
		aanoc.GSSSAGM,       // GSS + access granularity matching
	}
	fmt.Println("Blu-ray model, DDR2-533 device at 266 MHz, priority demand requests")
	fmt.Printf("%-14s %8s %10s %12s\n", "design", "util", "lat(all)", "lat(priority)")
	var base aanoc.Result
	for i, d := range designs {
		res, err := aanoc.Run(aanoc.Config{
			App:            "bluray",
			Generation:     2,
			Design:         d,
			PriorityDemand: true,
			Cycles:         exutil.Cycles(),
		})
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			base = res
		}
		fmt.Printf("%-14s %8.3f %10.0f %12.0f\n", d, res.Utilization, res.LatAll, res.LatPriority)
		if i == len(designs)-1 {
			fmt.Printf("\nGSS+SAGM vs CONV+PFS: %.1f%% shorter overall latency, %.1f%% shorter priority latency\n",
				100*(1-res.LatAll/base.LatAll), 100*(1-res.LatPriority/base.LatPriority))
		}
	}
}
