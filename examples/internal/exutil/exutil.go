// Package exutil holds the scaffolding shared by the runnable examples,
// so each main.go stays focused on the experiment it demonstrates.
package exutil

import (
	"os"
	"strconv"
)

// Cycles is the per-run simulation budget for the examples: 150,000 by
// default, or AANOC_EXAMPLE_CYCLES when set (the test harness shortens
// the runs this way).
func Cycles() int64 {
	if s := os.Getenv("AANOC_EXAMPLE_CYCLES"); s != "" {
		if n, err := strconv.ParseInt(s, 10, 64); err == nil && n > 0 {
			return n
		}
	}
	return 150_000
}
