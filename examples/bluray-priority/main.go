// Blu-ray priority: sweep the paper's PCT knob.
//
// The priority control token (PCT) is the heart of the GSS hybrid: a
// priority packet enters the flow controllers holding PCT tokens. PCT=1
// degenerates to the priority-equal SDRAM-aware scheduler of [4]; the
// maximum degenerates to a priority-first scheduler; the paper's hybrid
// sits in between, trading a little overall latency for a lot of priority
// latency. This example sweeps PCT on the Blu-ray model and prints the
// trade-off curve (the ablation behind the paper's Fig. 1(d)).
//
//	go run ./examples/bluray-priority
package main

import (
	"fmt"
	"log"

	"aanoc"
	"aanoc/examples/internal/exutil"
)

func main() {
	fmt.Println("PCT sweep: Blu-ray on DDR2, demand requests as priority packets")
	fmt.Printf("%4s %8s %10s %12s %12s\n", "PCT", "util", "lat(all)", "lat(priority)", "lat(best)")
	for pct := 1; pct <= 5; pct++ {
		res, err := aanoc.Run(aanoc.Config{
			App:            "bluray",
			Generation:     2,
			Design:         aanoc.GSS,
			PCT:            pct,
			PriorityDemand: true,
			Cycles:         exutil.Cycles(),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d %8.3f %10.0f %12.0f %12.0f\n",
			pct, res.Utilization, res.LatAll, res.LatPriority, res.LatBest)
	}
	fmt.Println("\nPCT=1 is the priority-equal scheduler of [4]; PCT=5 is priority-first;")
	fmt.Println("the hybrid values buy priority latency with little best-effort penalty.")
}
