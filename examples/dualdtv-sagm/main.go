// Dual DTV: the paper's largest system, swept across DDR generations.
//
// The 16-core dual digital-television model (two full video pipelines on
// a 4x4 mesh) is the paper's most congested benchmark. This example runs
// it on all three DDR generations under GSS and GSS+SAGM and shows the
// paper's cross-generation observation: SAGM helps DDR1/DDR2 (BL4 mode
// plus auto-precharge) much more than DDR3, whose tCCD=4 makes the device
// behave like BL8 regardless.
//
//	go run ./examples/dualdtv-sagm
package main

import (
	"fmt"
	"log"

	"aanoc"
	"aanoc/examples/internal/exutil"
)

func main() {
	fmt.Println("Dual DTV model (4x4 mesh, 15 cores) across DDR generations")
	fmt.Printf("%-5s %5s  %-10s %8s %9s %10s %12s\n", "gen", "MHz", "design", "util", "waste", "lat(all)", "lat(priority)")
	for gen := 1; gen <= 3; gen++ {
		var lat [2]float64
		for i, d := range []aanoc.Design{aanoc.GSS, aanoc.GSSSAGM} {
			res, err := aanoc.Run(aanoc.Config{
				App:            "ddtv",
				Generation:     gen,
				Design:         d,
				PriorityDemand: true,
				Cycles:         exutil.Cycles(),
			})
			if err != nil {
				log.Fatal(err)
			}
			lat[i] = res.LatAll
			fmt.Printf("DDR%-2d %5d  %-10s %8.3f %8.1f%% %10.0f %12.0f\n",
				gen, res.ClockMHz, d, res.Utilization, 100*res.WasteFrac, res.LatAll, res.LatPriority)
		}
		fmt.Printf("      SAGM latency gain at DDR%d: %.1f%%\n\n", gen, 100*(1-lat[1]/lat[0]))
	}
}
