// Granularity: the paper's Fig. 2 effect, measured end to end.
//
// A video codec requests 8 bytes (two beats on the 32-bit bus) but a
// DDR2 device in BL8 mode always moves 16 bytes per column command — the
// access granularity mismatch. This example runs the same traffic through
// the GSS design (BL8 device) and the GSS+SAGM design (BL4 device,
// auto-precharge, split packets) and reports how many of the transferred
// beats each design threw away, plus what that does to latency.
//
//	go run ./examples/granularity
package main

import (
	"fmt"
	"log"

	"aanoc"
	"aanoc/examples/internal/exutil"
)

func main() {
	fmt.Println("Access granularity mismatch (paper Fig. 2): single DTV on DDR2")
	fmt.Printf("%-10s %8s %9s %9s %10s %9s\n", "design", "util", "useful", "waste", "lat(all)", "served")
	for _, d := range []aanoc.Design{aanoc.GSS, aanoc.GSSSAGM} {
		res, err := aanoc.Run(aanoc.Config{
			App:        "sdtv",
			Generation: 2,
			Design:     d,
			Cycles:     exutil.Cycles(),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %8.3f %9.3f %8.1f%% %10.0f %9d\n",
			d, res.Utilization, res.Utilization*(1-res.WasteFrac),
			100*res.WasteFrac, res.LatAll, res.Completed)
	}
	fmt.Println("\nThe BL8 design over-fetches for every sub-granularity request;")
	fmt.Println("SAGM's BL4 mode with auto-precharge moves almost only useful data.")
}
