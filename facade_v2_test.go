package aanoc

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

// The v2 facade contract: typed App, sentinel-wrapped validation, the
// documented empty-App default, the deprecated string alias, and
// context cancellation.

func TestParseAppRoundTrip(t *testing.T) {
	apps := AllApps()
	if len(apps) != 5 {
		t.Fatalf("AllApps = %v, want the 3 paper apps + 2 scaled", apps)
	}
	for _, a := range apps {
		got, err := ParseApp(a.String())
		if err != nil || got != a {
			t.Errorf("ParseApp(%q) = %v, %v", a, got, err)
		}
	}
	if _, err := ParseApp("nope"); !errors.Is(err, ErrUnknownApp) {
		t.Errorf("ParseApp on garbage: %v, want ErrUnknownApp", err)
	}
	if _, err := ParseApp(""); !errors.Is(err, ErrUnknownApp) {
		t.Errorf("ParseApp(\"\") = %v; the empty string is not an app (only Config defaults it)", err)
	}
}

func TestValidateSentinels(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want error
	}{
		{"unknown model", Config{Model: "vax"}, ErrUnknownApp},
		{"unknown legacy app", Config{App: "vax"}, ErrUnknownApp},
		{"bad generation", Config{Generation: 9}, ErrBadGeneration},
		{"negative generation", Config{Generation: -1}, ErrBadGeneration},
		{"negative channels", Config{Channels: -1}, ErrBadChannels},
		{"too many channels", Config{Model: AppBluRay, Channels: 2}, ErrBadChannels},
		{"xor non-pow2", Config{Model: AppDDTV4, Channels: 3, ChannelScheme: ChannelThenBankXOR}, ErrBadChannels},
		{"unknown scheduler", Config{Scheduler: "fcfs"}, ErrUnknownScheduler},
		{"negative sample period", Config{SampleEvery: -1}, ErrBadSampleEvery},
	}
	for _, tc := range cases {
		if err := tc.cfg.Validate(); !errors.Is(err, tc.want) {
			t.Errorf("%s: Validate() = %v, want %v", tc.name, err, tc.want)
		}
	}
	// Validation happens before run time: Run must fail identically
	// without simulating.
	if _, err := Run(Config{Model: "vax"}); !errors.Is(err, ErrUnknownApp) {
		t.Errorf("Run did not surface ErrUnknownApp: %v", err)
	}
}

func TestValidateAcceptsRunnableConfigs(t *testing.T) {
	for _, cfg := range []Config{
		{}, // the zero config is runnable by contract
		{Model: AppDDTV, Generation: 3, Design: GSSSAGMSTI},
		{Model: AppBluRay2, Channels: 2, Checked: true},
		{Model: AppDDTV4, Channels: 4, ChannelScheme: ChannelThenBankXOR},
		{App: "sdtv", Generation: 1},
		{Scheduler: SchedulerDPQ, Checked: true},
		{Scheduler: "default"},
	} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v", cfg, err)
		}
	}
}

// TestSchedulerFacade: the zoo through the public API — parse round
// trip, a checked DPQ run with its per-request WCET verification, and
// the scheduler identity on the report.
func TestSchedulerFacade(t *testing.T) {
	for _, s := range Schedulers() {
		got, err := ParseScheduler(s.String())
		if err != nil || got != s {
			t.Errorf("ParseScheduler(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseScheduler("fcfs"); !errors.Is(err, ErrUnknownScheduler) {
		t.Errorf("ParseScheduler on garbage: %v, want ErrUnknownScheduler", err)
	}
	res, err := Run(Config{
		Scheduler: SchedulerDPQ, Design: GSSSAGM, PriorityDemand: true,
		Cycles: 15_000, Checked: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(res.Obs.Violations); n != 0 {
		t.Fatalf("%d checked-mode violations", n)
	}
	if res.Obs.Scheduler != "dpq" {
		t.Errorf("report scheduler %q, want dpq", res.Obs.Scheduler)
	}
	ss := res.Obs.Memory.Scheduler
	if ss == nil || ss.WCETChecked == 0 {
		t.Fatalf("checked DPQ run verified no WCET deadlines: %+v", ss)
	}
}

// TestEmptyAppDefaultsToBluRay pins the documented default: an empty
// Model (and empty deprecated App) selects the Blu-ray application.
func TestEmptyAppDefaultsToBluRay(t *testing.T) {
	res, err := Run(Config{Design: GSS, Cycles: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.App != AppBluRay.String() {
		t.Fatalf("empty app ran %q, the documented default is %q", res.App, AppBluRay)
	}
}

// TestDeprecatedAppAliasEquivalence: the string field must keep pre-v2
// callers running identically, and Model wins when both are set.
func TestDeprecatedAppAliasEquivalence(t *testing.T) {
	byModel, err := Run(Config{Model: AppSDTV, Generation: 1, Design: GSSSAGM, Cycles: 15_000})
	if err != nil {
		t.Fatal(err)
	}
	byString, err := Run(Config{App: "sdtv", Generation: 1, Design: GSSSAGM, Cycles: 15_000})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(byModel, byString) {
		t.Fatal("Model and deprecated App spellings diverge")
	}
	both := Config{Model: AppSDTV, App: "ddtv"}
	if got := both.model(); got != "sdtv" {
		t.Fatalf("Model should take precedence over App, resolved %q", got)
	}
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, Config{Cycles: 1_000_000}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled RunContext = %v, want context.Canceled", err)
	}
	// A deadline mid-run must abandon a long simulation quickly.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	start := time.Now()
	_, err := RunContext(ctx2, Config{Cycles: 500_000_000})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunContext = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

func TestRunContextUncancelledMatchesRun(t *testing.T) {
	cfg := Config{Model: AppBluRay, Design: GSSSAGM, PriorityDemand: true, Cycles: 20_000}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("RunContext diverges from Run")
	}
}

// TestFacadeMultiChannel drives the new axis end to end through the
// public API: two channels, checked, per-channel stats in the report.
func TestFacadeMultiChannel(t *testing.T) {
	res, err := Run(Config{
		Model: AppBluRay2, Design: GSSSAGM, PriorityDemand: true,
		Channels: 2, Cycles: 25_000, Checked: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(res.Obs.Violations); n != 0 {
		t.Fatalf("%d checked-mode violations", n)
	}
	if len(res.Obs.Memory.Channels) != 2 {
		t.Fatalf("report has %d channel entries, want 2", len(res.Obs.Memory.Channels))
	}
}

func TestParseChannelSchemeFacade(t *testing.T) {
	s, err := ParseChannelScheme("chan-bank-xor")
	if err != nil || s != ChannelThenBankXOR {
		t.Fatalf("ParseChannelScheme = %v, %v", s, err)
	}
}
