package aanoc

// Validation-parity table: the same bad run parameter, injected once as
// a typed Config field and once as a spec's embedded run block, must be
// rejected with the same facade sentinel — the observable contract of
// routing both paths through the one shared scenario.Resolve.

import (
	"errors"
	"testing"

	"aanoc/internal/appmodel"
	"aanoc/internal/scenario"
)

func TestSpecFacadeParity(t *testing.T) {
	cases := []struct {
		name string
		app  string
		run  SpecRun
		want error
	}{
		{"generation-high", "bluray", SpecRun{Generation: 9}, ErrBadGeneration},
		{"generation-negative", "bluray", SpecRun{Generation: -1}, ErrBadGeneration},
		{"channels-negative", "bluray", SpecRun{Channels: -1}, ErrBadChannels},
		{"channels-over-ports", "bluray", SpecRun{Channels: 2}, ErrBadChannels},
		{"channels-xor-odd", "ddtv4", SpecRun{Channels: 3, Scheme: "chan-bank-xor"}, ErrBadChannels},
		{"scheduler", "bluray", SpecRun{Scheduler: "fcfs"}, ErrUnknownScheduler},
		{"sample-every", "bluray", SpecRun{SampleEvery: -1}, ErrBadSampleEvery},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Path 1: typed facade fields.
			cfg := Config{
				Model:       App(tc.app),
				Generation:  tc.run.Generation,
				Channels:    tc.run.Channels,
				Scheduler:   Scheduler(tc.run.Scheduler),
				SampleEvery: tc.run.SampleEvery,
			}
			if tc.run.Scheme != "" {
				sch, err := ParseChannelScheme(tc.run.Scheme)
				if err != nil {
					t.Fatal(err)
				}
				cfg.ChannelScheme = sch
			}
			if err := cfg.Validate(); !errors.Is(err, tc.want) {
				t.Errorf("typed fields: Validate = %v, want %v", err, tc.want)
			}

			// Path 2: the same values embedded in a spec's run block.
			app, err := appmodel.ByName(tc.app)
			if err != nil {
				t.Fatal(err)
			}
			sp := scenario.FromApp(app)
			run := tc.run
			sp.Run = &run
			if err := (Config{Spec: sp}).Validate(); !errors.Is(err, tc.want) {
				t.Errorf("spec run block: Validate = %v, want %v", err, tc.want)
			}
		})
	}

	// Spec + Model remains the one spec-specific rejection.
	sp := scenario.FromApp(appmodel.BluRay())
	if err := (Config{Spec: sp, Model: AppBluRay}).Validate(); !errors.Is(err, ErrBadSpec) {
		t.Errorf("Spec+Model accepted; want ErrBadSpec")
	}
	// And the two paths accept the same valid input.
	if err := (Config{Spec: sp}).Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}
