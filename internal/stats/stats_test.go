package stats

import (
	"testing"
	"testing/quick"
)

func TestLatencyBasics(t *testing.T) {
	var l Latency
	if l.Mean() != 0 || l.Percentile(95) != 0 {
		t.Fatal("empty accumulator should report zeros")
	}
	for _, v := range []int64{10, 20, 30} {
		l.Add(v)
	}
	if l.Count != 3 || l.Sum != 60 || l.Max != 30 {
		t.Fatalf("accumulator state: %+v", l)
	}
	if l.Mean() != 20 {
		t.Errorf("mean = %v, want 20", l.Mean())
	}
}

func TestLatencyNegativeClamped(t *testing.T) {
	var l Latency
	l.Add(-5)
	if l.Sum != 0 || l.Count != 1 {
		t.Fatalf("negative sample mishandled: %+v", l)
	}
}

func TestPercentileBoundsSamples(t *testing.T) {
	var l Latency
	for i := int64(1); i <= 1000; i++ {
		l.Add(i)
	}
	p50 := l.Percentile(50)
	p99 := l.Percentile(99)
	if p50 < 500 {
		t.Errorf("p50 upper bound %d below true median 500", p50)
	}
	if p99 < 990 {
		t.Errorf("p99 upper bound %d below true p99", p99)
	}
	if p99 > 2048 {
		t.Errorf("p99 bound %d too loose for max 1000", p99)
	}
}

func TestMerge(t *testing.T) {
	var a, b Latency
	a.Add(10)
	b.Add(100)
	b.Add(200)
	a.Merge(&b)
	if a.Count != 3 || a.Sum != 310 || a.Max != 200 {
		t.Fatalf("merged: %+v", a)
	}
}

func TestMetricsRecordRouting(t *testing.T) {
	var m Metrics
	m.Record(100, true, true, true)   // demand, priority, read
	m.Record(50, false, false, false) // best-effort write
	if m.All.Count != 2 || m.Demand.Count != 1 || m.Priority.Count != 1 {
		t.Fatalf("routing broken: %+v", m)
	}
	if m.Best.Count != 1 || m.Reads.Count != 1 || m.Writes.Count != 1 {
		t.Fatalf("class split broken: %+v", m)
	}
	if m.Completed != 2 {
		t.Fatalf("completed = %d", m.Completed)
	}
}

func TestPropertyPercentileIsUpperBound(t *testing.T) {
	// The histogram percentile must never undercut the true percentile.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var l Latency
		max := int64(0)
		for _, v := range raw {
			l.Add(int64(v))
			if int64(v) > max {
				max = int64(v)
			}
		}
		return l.Percentile(100) >= max && l.Mean() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
