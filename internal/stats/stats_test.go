package stats

import (
	"testing"
	"testing/quick"
)

func TestLatencyBasics(t *testing.T) {
	var l Latency
	if l.Mean() != 0 || l.Percentile(95) != 0 {
		t.Fatal("empty accumulator should report zeros")
	}
	for _, v := range []int64{10, 20, 30} {
		l.Add(v)
	}
	if l.Count != 3 || l.Sum != 60 || l.Max != 30 {
		t.Fatalf("accumulator state: %+v", l)
	}
	if l.Mean() != 20 {
		t.Errorf("mean = %v, want 20", l.Mean())
	}
}

func TestLatencyNegativeClamped(t *testing.T) {
	var l Latency
	l.Add(-5)
	if l.Sum != 0 || l.Count != 1 {
		t.Fatalf("negative sample mishandled: %+v", l)
	}
}

func TestPercentileBoundsSamples(t *testing.T) {
	var l Latency
	for i := int64(1); i <= 1000; i++ {
		l.Add(i)
	}
	p50 := l.Percentile(50)
	p99 := l.Percentile(99)
	if p50 < 500 {
		t.Errorf("p50 upper bound %d below true median 500", p50)
	}
	if p99 < 990 {
		t.Errorf("p99 upper bound %d below true p99", p99)
	}
	if p99 > 2048 {
		t.Errorf("p99 bound %d too loose for max 1000", p99)
	}
}

func TestMerge(t *testing.T) {
	var a, b Latency
	a.Add(10)
	b.Add(100)
	b.Add(200)
	a.Merge(&b)
	if a.Count != 3 || a.Sum != 310 || a.Max != 200 {
		t.Fatalf("merged: %+v", a)
	}
}

func TestMetricsRecordRouting(t *testing.T) {
	var m Metrics
	m.Record(100, true, true, true)   // demand, priority, read
	m.Record(50, false, false, false) // best-effort write
	if m.All.Count != 2 || m.Demand.Count != 1 || m.Priority.Count != 1 {
		t.Fatalf("routing broken: %+v", m)
	}
	if m.Best.Count != 1 || m.Reads.Count != 1 || m.Writes.Count != 1 {
		t.Fatalf("class split broken: %+v", m)
	}
	if m.Completed != 2 {
		t.Fatalf("completed = %d", m.Completed)
	}
}

// TestPercentileCeilingRank pins the nearest-rank-ceiling contract on
// small counts and exact powers of two, where the old truncating rank
// silently targeted one sample too low (P95 of 10 samples must bound the
// 10th sample, not the 9th). Samples are chosen one per histogram bucket
// (powers of two) so each rank maps to a distinct bucket bound. Bounds
// targeting the top occupied bucket clamp to the exact Max (the largest
// sample, 2^(samples-1)) rather than the looser raw bucket ceiling.
func TestPercentileCeilingRank(t *testing.T) {
	cases := []struct {
		name    string
		samples int // samples: 2^0, 2^1, ..., 2^(samples-1)
		p       float64
		rank    int // 0-based index of the targeted sample
	}{
		{"p95 of 10 targets the 10th", 10, 95, 9},
		{"p50 of 10 targets the 5th", 10, 50, 4},
		{"p99 of 10 targets the 10th", 10, 99, 9},
		{"p95 of 2 targets the 2nd", 2, 95, 1},
		{"p50 of 1 targets the 1st", 1, 50, 0},
		{"p25 of 4 targets the 1st (exact rank)", 4, 25, 0},
		{"p50 of 8 targets the 4th (exact rank)", 8, 50, 3},
		{"p75 of 8 targets the 6th (exact rank)", 8, 75, 5},
		{"p95 of 16 targets the 16th (ceil 15.2)", 16, 95, 15},
		{"p100 of 16 targets the 16th", 16, 100, 15},
		{"p0 clamps to the 1st", 16, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var l Latency
			for i := 0; i < tc.samples; i++ {
				l.Add(int64(1) << uint(i))
			}
			// The histogram upper bound of the targeted sample 2^rank,
			// clamped to the accumulator's exact maximum.
			want := (int64(1) << uint(tc.rank+1)) - 1
			if max := int64(1) << uint(tc.samples-1); want > max {
				want = max
			}
			if got := l.Percentile(tc.p); got != want {
				t.Errorf("Percentile(%v) over %d samples = %d, want %d",
					tc.p, tc.samples, got, want)
			}
		})
	}
}

// TestPercentileClampedToMax is the regression test for the bucket-bound
// overshoot: a histogram whose samples all share one bucket (or one
// value) must never report a percentile above its own Max.
func TestPercentileClampedToMax(t *testing.T) {
	t.Run("all-equal", func(t *testing.T) {
		var l Latency
		for i := 0; i < 100; i++ {
			l.Add(5)
		}
		for _, p := range []float64{0, 50, 95, 99, 100} {
			if got := l.Percentile(p); got != 5 {
				t.Errorf("Percentile(%v) = %d over 100 samples of 5, want exactly 5", p, got)
			}
		}
	})
	t.Run("single-bucket", func(t *testing.T) {
		// 4, 5, 6 all land in bucket [4,8) whose raw upper bound is 7.
		var l Latency
		for _, v := range []int64{4, 5, 6} {
			l.Add(v)
		}
		if got := l.Percentile(99); got != l.Max {
			t.Errorf("P99 = %d exceeds Max = %d", got, l.Max)
		}
		if l.Max != 6 {
			t.Fatalf("Max = %d, want 6", l.Max)
		}
	})
	t.Run("lower-bucket-unclamped", func(t *testing.T) {
		// The clamp applies per result, not per histogram: a low
		// percentile in a non-top bucket keeps its bucket bound.
		var l Latency
		for i := 0; i < 99; i++ {
			l.Add(2) // bucket [2,4), bound 3
		}
		l.Add(1000)
		if got := l.Percentile(50); got != 3 {
			t.Errorf("P50 = %d, want the untouched bucket bound 3", got)
		}
		if got := l.Percentile(100); got != 1000 {
			t.Errorf("P100 = %d, want the exact max 1000", got)
		}
	})
}

func TestSummarize(t *testing.T) {
	var l Latency
	for i := int64(1); i <= 100; i++ {
		l.Add(i)
	}
	s := l.Summarize()
	if s.Count != 100 || s.Mean != 50.5 || s.Max != 100 {
		t.Fatalf("summary basics: %+v", s)
	}
	if s.P50 < 50 || s.P95 < 95 || s.P99 < 99 {
		t.Errorf("summary percentiles undercut true values: %+v", s)
	}
}

func TestPropertyPercentileIsUpperBound(t *testing.T) {
	// The histogram percentile must never undercut the true percentile.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var l Latency
		max := int64(0)
		for _, v := range raw {
			l.Add(int64(v))
			if int64(v) > max {
				max = int64(v)
			}
		}
		return l.Percentile(100) >= max && l.Mean() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
