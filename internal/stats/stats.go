// Package stats collects the paper's evaluation metrics: per-class memory
// request latencies (mean, max, percentiles via logarithmic histogram) and
// derived utilization figures.
package stats

import (
	"fmt"
	"math"
	"math/bits"
)

// Latency accumulates request latencies with a power-of-two histogram so
// percentiles are available without storing samples.
type Latency struct {
	Count int64
	Sum   int64
	Max   int64
	// buckets[i] counts samples with latency in [2^i, 2^(i+1)).
	buckets [40]int64
}

// Add records one sample.
func (l *Latency) Add(v int64) {
	if v < 0 {
		v = 0
	}
	l.Count++
	l.Sum += v
	if v > l.Max {
		l.Max = v
	}
	l.buckets[bucketOf(v)]++
}

func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(uint64(v)) - 1
	if b >= len(Latency{}.buckets) {
		b = len(Latency{}.buckets) - 1
	}
	return b
}

// Mean returns the average latency, 0 when empty.
func (l *Latency) Mean() float64 {
	if l.Count == 0 {
		return 0
	}
	return float64(l.Sum) / float64(l.Count)
}

// Percentile returns an upper bound on the p-th percentile (p in [0,100])
// at histogram-bucket resolution. The rank is the nearest-rank ceiling,
// ceil(count*p/100), so P95 over 10 samples targets the 10th sample, not
// the 9th — truncation would silently report one bucket low on small
// counts. The bucket upper bound is clamped to the observed Max: every
// sample in the top occupied bucket is at most Max, so a raw bound above
// it (all samples equal to 5 reporting P99 = 7 against Max = 5) would be
// internally inconsistent with the accumulator's own exact maximum.
func (l *Latency) Percentile(p float64) int64 {
	if l.Count == 0 {
		return 0
	}
	target := int64(math.Ceil(float64(l.Count) * p / 100.0))
	if target < 1 {
		target = 1
	}
	if target > l.Count {
		target = l.Count
	}
	var seen int64
	for i, n := range l.buckets {
		seen += n
		if seen >= target {
			b := (int64(1) << uint(i+1)) - 1
			if b > l.Max {
				b = l.Max
			}
			return b
		}
	}
	return l.Max
}

// Merge folds other into l.
func (l *Latency) Merge(other *Latency) {
	l.Count += other.Count
	l.Sum += other.Sum
	if other.Max > l.Max {
		l.Max = other.Max
	}
	for i := range l.buckets {
		l.buckets[i] += other.buckets[i]
	}
}

// String renders a compact summary.
func (l *Latency) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p95<=%d max=%d", l.Count, l.Mean(), l.Percentile(95), l.Max)
}

// Summary is the serialisable digest of one Latency accumulator: the
// fields the observability report exports per request class. Percentiles
// are the accumulator's histogram upper bounds.
type Summary struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`
	Max   int64   `json:"max"`
}

// Summarize digests the accumulator into its exportable form.
func (l *Latency) Summarize() Summary {
	return Summary{
		Count: l.Count,
		Mean:  l.Mean(),
		P50:   l.Percentile(50),
		P95:   l.Percentile(95),
		P99:   l.Percentile(99),
		Max:   l.Max,
	}
}

// Metrics aggregates one simulation run's measurements in the paper's
// three latency columns plus supporting detail.
type Metrics struct {
	// Cycles is the simulated run length; the system stamps it when the
	// run finishes (Runner.Finish).
	Cycles int64

	All      Latency // every logical request
	Demand   Latency // ClassDemand requests (the paper's "demand packet" column)
	Priority Latency // requests flagged priority (== Demand in Table II runs)
	Best     Latency // best-effort requests

	Reads  Latency
	Writes Latency

	// SourceLatency measures generation-to-completion (including the
	// network-interface queue); the primary latencies measure from
	// network entry, which is what an RTL NoC testbench observes.
	SourceLatency Latency

	Generated int64 // logical requests generated
	Completed int64 // logical requests completed inside the window
	// Stalled counts generator cycles lost to injection backpressure: one
	// per core per cycle in which its network interface refused new work
	// because the injection backlog was at InjectCap. The system counts it
	// at the backpressure decision point in Runner.Step, over the whole
	// run (not warmup-gated).
	Stalled int64
}

// Record adds one completed logical request.
func (m *Metrics) Record(latency int64, demand, priority, read bool) {
	m.Completed++
	m.All.Add(latency)
	if demand {
		m.Demand.Add(latency)
	}
	if priority {
		m.Priority.Add(latency)
	}
	if !priority {
		m.Best.Add(latency)
	}
	if read {
		m.Reads.Add(latency)
	} else {
		m.Writes.Add(latency)
	}
}
