package system

import (
	"testing"

	"aanoc/internal/appmodel"
	"aanoc/internal/dram"
)

// TestConservationAcrossDesigns: every generated logical request is
// either completed or still in flight when the clock stops — nothing is
// lost or duplicated, under every design.
func TestConservationAcrossDesigns(t *testing.T) {
	for _, d := range Designs() {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			r, err := New(Config{
				App: appmodel.BluRay(), Gen: dram.DDR2, Design: d,
				Cycles: 40_000, Seed: 9, PriorityDemand: true, Warmup: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := int64(0); i < 40_000; i++ {
				r.Step()
			}
			inflight := int64(r.parents.Len())
			if r.met.Generated != r.met.Completed+inflight {
				t.Fatalf("conservation broken: generated %d, completed %d, in flight %d",
					r.met.Generated, r.met.Completed, inflight)
			}
			if inflight > 400 {
				t.Errorf("suspiciously many requests in flight: %d", inflight)
			}
		})
	}
}

// TestDrainToQuiescence: when the generators stop, the system finishes
// every outstanding request — no packet is stuck in a buffer, no request
// wedged in the memory pipeline.
func TestDrainToQuiescence(t *testing.T) {
	for _, d := range []Design{Conv, GSS, GSSSAGM} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			r, err := New(Config{
				App: appmodel.SingleDTV(), Gen: dram.DDR3, Design: d,
				Cycles: 20_000, Seed: 13, PriorityDemand: true, Warmup: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := int64(0); i < 20_000; i++ {
				r.Step()
			}
			// Silence the sources and drain.
			for _, c := range r.cores {
				c.gens = nil
			}
			for i := 0; i < 60_000 && r.parents.Len() > 0; i++ {
				r.Step()
			}
			if n := r.parents.Len(); n != 0 {
				t.Fatalf("%d requests wedged after drain", n)
			}
			if !r.reqMesh.Quiescent() {
				t.Error("request mesh not quiescent after drain")
			}
			if !r.respMesh.Quiescent() {
				t.Error("response mesh not quiescent after drain")
			}
			for ch, ctrl := range r.ctrls {
				if ctrl.Busy() {
					t.Errorf("memory controller %d busy after drain", ch)
				}
			}
		})
	}
}

// TestSeedSensitivity: different seeds must give different but
// commensurate results (no hidden global state, no degenerate runs).
func TestSeedSensitivity(t *testing.T) {
	var utils []float64
	for seed := uint64(1); seed <= 3; seed++ {
		res, err := Run(Config{
			App: appmodel.BluRay(), Gen: dram.DDR2, Design: GSSSAGM,
			Cycles: 60_000, Seed: seed, PriorityDemand: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		utils = append(utils, res.Utilization)
	}
	if utils[0] == utils[1] && utils[1] == utils[2] {
		t.Error("three different seeds produced identical utilization — RNG not wired through")
	}
	for _, u := range utils {
		if u < utils[0]*0.9 || u > utils[0]*1.1 {
			t.Errorf("seed variance too large: %v", utils)
		}
	}
}

// TestWarmupExcludesEarlySamples: latency statistics must only cover
// requests generated after the warmup boundary.
func TestWarmupExcludesEarlySamples(t *testing.T) {
	run := func(warmup int64) int64 {
		res, err := Run(Config{
			App: appmodel.BluRay(), Gen: dram.DDR2, Design: GSS,
			Cycles: 40_000, Seed: 7, Warmup: warmup,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Completed
	}
	// Completed counts all completions; the latency sample count differs.
	all, late := run(1), run(30_000)
	if all <= late {
		t.Skip("completion counts did not separate; nothing to compare")
	}
	// With a late warmup the recorded sample set is much smaller; verify
	// through the metrics of a fresh runner.
	r, err := New(Config{
		App: appmodel.BluRay(), Gen: dram.DDR2, Design: GSS,
		Cycles: 40_000, Seed: 7, Warmup: 30_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 40_000; i++ {
		r.Step()
	}
	if r.met.All.Count == 0 {
		t.Fatal("no samples after warmup")
	}
	if r.met.All.Count >= r.met.Completed {
		t.Errorf("warmup did not exclude early samples: %d samples of %d completions",
			r.met.All.Count, r.met.Completed)
	}
}

// TestUtilizationNeverExceedsOne across a spread of configurations.
func TestUtilizationNeverExceedsOne(t *testing.T) {
	for _, gen := range []dram.Generation{dram.DDR1, dram.DDR3} {
		for _, d := range []Design{Conv, GSSSAGMSTI} {
			res, err := Run(Config{
				App: appmodel.DualDTV(), Gen: gen, Design: d,
				Cycles: 30_000, Seed: 2, PriorityDemand: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Utilization > 1.0 || res.Utilization < 0 {
				t.Errorf("%s DDR%d: utilization %v out of range", d, gen, res.Utilization)
			}
			if res.WasteFrac < 0 || res.WasteFrac > 1 {
				t.Errorf("%s DDR%d: waste %v out of range", d, gen, res.WasteFrac)
			}
		}
	}
}

// TestPriorityFlagRouting: in a priority run every demand completion is
// recorded in both the demand and the priority columns, and they agree.
func TestPriorityFlagRouting(t *testing.T) {
	r, err := New(Config{
		App: appmodel.BluRay(), Gen: dram.DDR2, Design: GSS,
		Cycles: 40_000, Seed: 4, PriorityDemand: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 40_000; i++ {
		r.Step()
	}
	if r.met.Demand.Count == 0 {
		t.Fatal("no demand completions")
	}
	if r.met.Demand.Count != r.met.Priority.Count || r.met.Demand.Sum != r.met.Priority.Sum {
		t.Errorf("demand (%d/%d) and priority (%d/%d) columns should coincide",
			r.met.Demand.Count, r.met.Demand.Sum, r.met.Priority.Count, r.met.Priority.Sum)
	}
	if r.met.Best.Count+r.met.Priority.Count != r.met.All.Count {
		t.Error("priority + best-effort should partition all samples")
	}
}
