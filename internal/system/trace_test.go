package system

import (
	"bytes"
	"testing"

	"aanoc/internal/appmodel"
	"aanoc/internal/dram"
	"aanoc/internal/trace"
)

// captureTrace records a short run and returns the parsed records.
func captureTrace(t *testing.T, d Design) []trace.Record {
	t.Helper()
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	cfg := Config{
		App: appmodel.BluRay(), Gen: dram.DDR2, Design: d,
		Cycles: 30_000, Seed: 11, PriorityDemand: true, Trace: w,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() == 0 || res.Generated != w.Count() {
		t.Fatalf("trace count %d vs generated %d", w.Count(), res.Generated)
	}
	records, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return records
}

func TestTraceCaptureMatchesGeneration(t *testing.T) {
	records := captureTrace(t, SDRAMAware)
	cores := map[string]bool{}
	demand := 0
	for _, r := range records {
		cores[r.Core] = true
		if r.Class == "demand" {
			demand++
			if !r.Priority {
				t.Fatal("demand record lost its priority flag")
			}
		}
	}
	if len(cores) < 6 {
		t.Errorf("trace covers %d cores, want most of the 8", len(cores))
	}
	if demand == 0 {
		t.Error("no demand requests captured")
	}
}

func TestReplayServesEveryRecordedRequest(t *testing.T) {
	records := captureTrace(t, SDRAMAware)
	for _, d := range []Design{Conv, GSS, GSSSAGM} {
		cfg := Config{
			App: appmodel.BluRay(), Gen: dram.DDR2, Design: d,
			Cycles: 120_000, Seed: 11, Replay: records,
			Warmup: 1, // count every completion
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Generated != int64(len(records)) {
			t.Errorf("%s: replayed %d of %d requests", d, res.Generated, len(records))
		}
		if res.Completed < res.Generated*95/100 {
			t.Errorf("%s: completed %d of %d replayed requests", d, res.Completed, res.Generated)
		}
	}
}

func TestReplayDeterministic(t *testing.T) {
	records := captureTrace(t, SDRAMAware)
	run := func() Result {
		res, err := Run(Config{
			App: appmodel.BluRay(), Gen: dram.DDR2, Design: GSSSAGM,
			Cycles: 60_000, Seed: 5, Replay: records,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(), run(); !sameResult(a, b) {
		t.Fatalf("replay not deterministic:\n%+v\n%+v", a, b)
	}
}
