package system

import (
	"reflect"
	"testing"

	"aanoc/internal/appmodel"
	"aanoc/internal/dram"
)

// runSkip executes one configuration with idle-skip forced on or off and
// returns the complete Result (including the full observability report).
func runSkip(t *testing.T, cfg Config, skip bool) Result {
	t.Helper()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.SetIdleSkip(skip)
	r.RunTo(r.cfg.Cycles)
	return r.Finish()
}

// TestIdleSkipEquivalence is the kernel refactor's acceptance gate: for
// every design, a run with activity-driven idle-skip must produce a
// Result — metrics, device stats, per-link counters, per-core
// breakdowns, the entire observability report — deeply equal to the
// reference run that ticks every cycle. Any wakeup-protocol bug (a
// component sleeping through a cycle where it had work) diverges here.
func TestIdleSkipEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system equivalence runs")
	}
	for _, d := range Designs() {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			cfg := Config{
				App: appmodel.BluRay(), Gen: dram.DDR2, Design: d,
				Cycles: 6_000, PriorityDemand: true, SampleEvery: 500,
			}
			on := runSkip(t, cfg, true)
			off := runSkip(t, cfg, false)
			if !reflect.DeepEqual(on, off) {
				t.Fatalf("idle-skip on and off diverge:\n on: %+v\noff: %+v", on, off)
			}
		})
	}
}

// TestIdleSkipEquivalenceVariants covers the wake paths the design grid
// leaves out: multiple virtual channels, adaptive routing, a different
// application and generation, and an explicitly low-utilization app
// where idle-skip actually skips.
func TestIdleSkipEquivalenceVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system equivalence runs")
	}
	cfgs := map[string]Config{
		"vc2-adaptive": {
			App: appmodel.SingleDTV(), Gen: dram.DDR1, Design: GSS,
			Cycles: 6_000, VirtualChannels: 2, AdaptiveRouting: true,
		},
		"ddr3-sagm": {
			App: appmodel.DualDTV(), Gen: dram.DDR3, Design: GSSSAGMSTI,
			Cycles: 6_000, SampleEvery: 750,
		},
		"low-util": {
			App: appmodel.LowUtil(), Gen: dram.DDR2, Design: GSSSAGM,
			Cycles: 20_000, PriorityDemand: true, SampleEvery: 1000,
		},
	}
	for name, cfg := range cfgs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			on := runSkip(t, cfg, true)
			off := runSkip(t, cfg, false)
			if !reflect.DeepEqual(on, off) {
				t.Fatalf("idle-skip on and off diverge:\n on: %+v\noff: %+v", on, off)
			}
		})
	}
}
