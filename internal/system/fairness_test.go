package system

import (
	"testing"

	"aanoc/internal/appmodel"
	"aanoc/internal/dram"
)

func TestPerCoreStatsCoverEveryCore(t *testing.T) {
	res, err := Run(Config{
		App: appmodel.BluRay(), Gen: dram.DDR2, Design: GSS,
		Cycles: 60_000, Seed: 5, PriorityDemand: true, Warmup: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCore) != len(appmodel.BluRay().Cores) {
		t.Fatalf("per-core rows = %d, want %d", len(res.PerCore), len(appmodel.BluRay().Cores))
	}
	var total int64
	for _, c := range res.PerCore {
		if c.Completed == 0 {
			t.Errorf("core %s served nothing", c.Name)
		}
		if c.Completed > 0 && c.MeanLatency() <= 0 {
			t.Errorf("core %s has completions but no latency", c.Name)
		}
		total += c.Completed
	}
	if total != res.Completed {
		t.Fatalf("per-core completions %d != total %d", total, res.Completed)
	}
}

func TestFairnessIndexBounds(t *testing.T) {
	for _, d := range []Design{Conv, GSS, GSSSAGM} {
		res, err := Run(Config{
			App: appmodel.SingleDTV(), Gen: dram.DDR2, Design: d,
			Cycles: 50_000, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		n := float64(len(res.PerCore))
		if res.Fairness < 1/n || res.Fairness > 1.0001 {
			t.Errorf("%s: Jain index %v outside [1/n, 1]", d, res.Fairness)
		}
	}
}

func TestJainIndexFormula(t *testing.T) {
	equal := []CoreStats{{Beats: 10}, {Beats: 10}, {Beats: 10}}
	if j := jain(equal); j < 0.999 || j > 1.001 {
		t.Errorf("equal service Jain = %v, want 1", j)
	}
	monopoly := []CoreStats{{Beats: 30}, {Beats: 0}, {Beats: 0}}
	if j := jain(monopoly); j < 0.332 || j > 0.334 {
		t.Errorf("monopoly Jain = %v, want 1/3", j)
	}
	if jain(nil) != 0 {
		t.Error("empty Jain should be 0")
	}
}
