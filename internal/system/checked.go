package system

import (
	"fmt"

	"aanoc/internal/check"
	"aanoc/internal/dram"
	"aanoc/internal/memctrl"
	"aanoc/internal/obs"
)

// This file wires the internal/check invariant layer into the runner.
// Checking points, mirroring the DESIGN.md observability counting-points
// note:
//
//   - DRAM protocol conformance: a check.DRAMMonitor installed as the
//     device's Observer re-validates every accepted command against
//     shadow timing state, independent of Device.CanIssue.
//   - NoC conservation: Mesh.Audit runs over both meshes at the end of
//     every Runner.Step — credit loops, buffer coherence, wormhole
//     ordering, and the launched-vs-delivered flit ledger.
//   - End-of-run accounting: finalChecks in Runner.Finish — logical
//     request conservation overall and per core, split-chain pending
//     bounds, GSS token-table bounds, and cross-checks of the assembled
//     obs report against the device counters.

// installChecks arms the invariant layer; called from New when
// Config.Checked is set.
func (r *Runner) installChecks() {
	r.chk = &check.Checker{Panic: r.cfg.CheckedPanic}
	r.genPerCore = make([]int64, len(r.cores))
	// One protocol monitor per channel: each device's command stream is
	// validated against its own shadow timing state.
	for _, d := range r.devs {
		mon := check.NewDRAMMonitor(r.chk, r.timing)
		d.Observer = mon.Observe
	}
	// Scheduler-guarantee monitors, one per channel: the DPQ analytic
	// WCET bound asserted per completion, or the per-bank regulation
	// invariant shadow-audited per grant. The monitors consume the
	// controllers' fact-reporting hooks; the bound arithmetic and ledger
	// live entirely in internal/check.
	for ch, ctrl := range r.ctrls {
		name := ""
		if len(r.ctrls) > 1 {
			name = fmt.Sprintf("/ch%d", ch)
		}
		switch c := ctrl.(type) {
		case *memctrl.DPQ:
			b := check.NewDPQBound(r.timing, c.Config().Requestors, r.maxBeats)
			mon := check.NewDPQMonitor(r.chk, b, "memctrl/dpq"+name)
			c.OnAdmit = mon.Admit
			c.OnComplete = mon.Complete
			r.dpqMons = append(r.dpqMons, mon)
		case *memctrl.Regulator:
			rc := c.Config()
			mon := check.NewRegulatorMonitor(r.chk, rc.Window, rc.Budget, "memctrl/regulator"+name)
			c.OnAdmit = mon.Admit
			r.regMons = append(r.regMons, mon)
		}
	}
}

// auditMeshes runs the conservation walk over both meshes, binding each
// to its component name.
func (r *Runner) auditMeshes(now int64) {
	r.reqMesh.Audit(func(kind, format string, args ...any) {
		r.chk.Reportf(now, "noc/request", kind, format, args...)
	})
	r.respMesh.Audit(func(kind, format string, args ...any) {
		r.chk.Reportf(now, "noc/response", kind, format, args...)
	})
}

// finalChecks performs the end-of-run accounting and attaches the
// collected violations to the report. Cycle -1 marks whole-run checks.
func (r *Runner) finalChecks(rep *obs.Report) {
	c := r.chk
	r.auditMeshes(r.kern.Now())

	// Logical request conservation: every generated request is completed
	// or still outstanding in the parents table.
	outstanding := int64(r.parents.Len())
	if r.met.Generated != r.met.Completed+outstanding {
		c.Reportf(-1, "runner", "request-accounting",
			"generated %d != completed %d + outstanding %d",
			r.met.Generated, r.met.Completed, outstanding)
	}
	// Split-chain bounds and the per-core ledger.
	perCore := make([]int64, len(r.cores))
	r.parents.each(func(id int64, l *logical) {
		if l.pending < 1 {
			c.Reportf(-1, "runner", "split-accounting",
				"outstanding request %d has %d pending splits", id, l.pending)
		}
		if l.core >= 0 && l.core < len(perCore) {
			perCore[l.core]++
		}
	})
	for i := range r.cores {
		if r.genPerCore[i] != r.coreStats[i].Completed+perCore[i] {
			c.Reportf(-1, "runner", "request-accounting",
				"core %s generated %d != completed %d + outstanding %d",
				r.cores[i].spec.Name, r.genPerCore[i], r.coreStats[i].Completed, perCore[i])
		}
	}
	// Per-channel split conservation: a channel cannot complete more
	// splits than the interleaving policy routed to it, and every split
	// was routed to exactly one channel.
	for ch := range r.chSent {
		if r.chDone[ch] > r.chSent[ch] {
			c.Reportf(-1, "runner", "channel-accounting",
				"channel %d completed %d splits but only %d were routed to it",
				ch, r.chDone[ch], r.chSent[ch])
		}
	}
	// GSS token tables.
	for _, g := range r.gssAllocs {
		g.AuditTokens(func(kind, format string, args ...any) {
			c.Reportf(-1, "gss", kind, format, args...)
		})
	}
	// DPQ WCET stragglers: a request still outstanding past its analytic
	// deadline at end of run missed its bound just as surely as a late
	// completion.
	for _, m := range r.dpqMons {
		m.Flush(r.kern.Now())
	}
	r.checkReport(rep)

	rep.Checked = true
	rep.Violations = c.Violations()
}

// checkReport cross-checks the assembled observability report against
// the device counters it claims to summarise.
func (r *Runner) checkReport(rep *obs.Report) {
	c := r.chk
	if rep.Utilization < 0 || rep.Utilization > 1 {
		c.Reportf(-1, "obs", "utilization-bound", "utilization %v outside [0,1]", rep.Utilization)
	}
	if rep.Generated < rep.Completed {
		c.Reportf(-1, "obs", "request-accounting",
			"report completed %d exceeds generated %d", rep.Completed, rep.Generated)
	}
	for name, ms := range map[string]obs.MeshStats{
		"request": rep.Network.Request, "response": rep.Network.Response,
	} {
		for _, l := range ms.Links {
			if l.BusyCycles < 0 || l.BusyCycles > rep.Cycles {
				c.Reportf(-1, "obs", "link-busy-bound",
					"%s mesh %s %s busy %d cycles of a %d-cycle run",
					name, l.Router, l.Port, l.BusyCycles, rep.Cycles)
			}
			if l.Grants < 0 || l.Grants > l.BusyCycles {
				c.Reportf(-1, "obs", "link-grant-bound",
					"%s mesh %s %s granted %d packets over %d busy cycles",
					name, l.Router, l.Port, l.Grants, l.BusyCycles)
			}
		}
	}
	// The per-bank breakdown must sum to the devices' command totals
	// (every channel's device in aggregate).
	r.checkBankBreakdown(rep.Memory.Banks, r.aggStats(), "aggregate")
	// And each channel's own breakdown must sum to its own device.
	for _, cs := range rep.Memory.Channels {
		r.checkBankBreakdown(cs.Banks, r.devs[cs.Channel].Stats(),
			fmt.Sprintf("channel %d", cs.Channel))
	}
}

// checkBankBreakdown verifies one per-bank table against the device
// stats it claims to decompose.
func (r *Runner) checkBankBreakdown(banks []obs.BankStat, st dram.Stats, scope string) {
	var acts, reads, writes, pres, aps int64
	for _, b := range banks {
		acts += b.Activates
		reads += b.Reads
		writes += b.Writes
		pres += b.Precharges
		aps += b.AutoPre
	}
	for _, mismatch := range []struct {
		name       string
		sum, total int64
	}{
		{"activates", acts, st.Activates},
		{"reads", reads, st.Reads},
		{"writes", writes, st.Writes},
		{"precharges", pres, st.Precharges},
		{"auto-precharges", aps, st.AutoPre},
	} {
		if mismatch.sum != mismatch.total {
			r.chk.Reportf(-1, "obs", "bank-breakdown",
				"%s per-bank %s sum to %d, device counted %d",
				scope, mismatch.name, mismatch.sum, mismatch.total)
		}
	}
}
