package system

import (
	"bytes"
	"testing"

	"aanoc/internal/appmodel"
	"aanoc/internal/dram"
	"aanoc/internal/obs"
	"aanoc/internal/trace"
)

// TestWithDefaultsPinned pins every resolved default. The sweep
// fingerprint cache keys on the resolved configuration, so a default
// drifting silently would split (or worse, merge) cache entries; this
// test forces such a change to be deliberate.
func TestWithDefaultsPinned(t *testing.T) {
	app := appmodel.BluRay()
	c := Config{App: app, Gen: dram.DDR2}.Resolved()
	checks := []struct {
		name string
		got  int64
		want int64
	}{
		{"ClockMHz", int64(c.ClockMHz), int64(app.Clocks[dram.DDR2])},
		{"PCT", int64(c.PCT), 3},
		{"Cycles", c.Cycles, 200_000},
		{"Warmup", c.Warmup, 20_000}, // Cycles/10
		{"Seed", int64(c.Seed), 0xA11CE},
		{"BufFlits", int64(c.BufFlits), 8},
		{"VirtualChannels", int64(c.VirtualChannels), 1},
		{"InjectCap", int64(c.InjectCap), 64},
		{"MemPipeline", int64(c.MemPipeline), 8},
		{"SampleEvery", c.SampleEvery, 0}, // sampling stays opt-in
	}
	for _, ch := range checks {
		if ch.got != ch.want {
			t.Errorf("default %s = %d, want %d", ch.name, ch.got, ch.want)
		}
	}
}

// TestWarmupSentinel covers the explicit-zero contract: zero selects the
// default warmup, the -1 sentinel selects no warmup at all. The sentinel
// survives resolution (it may not resolve to 0, which would re-fill the
// default on a second resolve) — resolution must be idempotent, or
// sweep fingerprints of resolved configs would drift.
func TestWarmupSentinel(t *testing.T) {
	base := Config{App: appmodel.BluRay(), Gen: dram.DDR2, Cycles: 50_000}
	if got := base.Resolved().Warmup; got != 5_000 {
		t.Errorf("implicit warmup = %d, want Cycles/10 = 5000", got)
	}
	base.Warmup = -1
	if got := base.Resolved().Warmup; got != -1 {
		t.Errorf("sentinel warmup = %d, want -1 (preserved)", got)
	}
	if got := base.Resolved().Resolved().Warmup; got != -1 {
		t.Errorf("re-resolved sentinel warmup = %d, want -1 (idempotent)", got)
	}
	base.Warmup = 123
	if got := base.Resolved().Warmup; got != 123 {
		t.Errorf("explicit warmup = %d, want 123", got)
	}
	// The report never shows the sentinel: a no-warmup run reports 0.
	base.Warmup = -1
	res, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs.Warmup != 0 {
		t.Errorf("report warmup = %d, want 0", res.Obs.Warmup)
	}
}

// TestReplayBackpressureConservation saturates a single core's injection
// port with a recorded burst and checks the stall accounting against the
// conservation law of Runner.Step: while the replayer still holds
// pending records, the core's every cycle is either a stall (NI refused
// work) or a generation — never both, never neither. The aggregate
// Stalled counter, the per-NI breakdown in the report, and the injector
// high-water mark must all tell the same story.
func TestReplayBackpressureConservation(t *testing.T) {
	app := appmodel.BluRay()
	loaded := app.Cores[0].Name
	const m, steps, capFlits = 500, 200, 8
	recs := make([]trace.Record, m)
	for i := range recs {
		// All at cycle 0: the replayer wants to issue every cycle, so only
		// backpressure can hold it back. Writes need no response traffic.
		recs[i] = trace.Record{
			Cycle: 0, Core: loaded, Kind: "W", Class: "media",
			Bank: i % 4, Row: i / 4, Col: 0, Beats: 8,
		}
	}
	r, err := New(Config{
		App: app, Gen: dram.DDR2, Design: GSS,
		Cycles: steps, Seed: 7, InjectCap: capFlits, Replay: recs,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < steps; i++ {
		r.Step()
	}
	rp := r.cores[0].gens[0].(*trace.Replayer)
	if rp.Done() {
		t.Fatalf("replayer drained %d records in %d cycles; burst too small to saturate", m, steps)
	}
	met := r.Metrics()
	if met.Stalled+met.Generated != steps {
		t.Errorf("Stalled %d + Generated %d = %d, want %d (one outcome per cycle)",
			met.Stalled, met.Generated, met.Stalled+met.Generated, steps)
	}
	if met.Stalled == 0 {
		t.Error("no stalls despite a saturating burst and InjectCap 8")
	}
	if got := r.cores[0].inj.QueueFlitsHWM(); got < capFlits {
		t.Errorf("injector HWM %d never reached InjectCap %d", got, capFlits)
	}

	rep := r.Finish().Obs
	var stallSum int64
	for _, ni := range rep.NIs {
		stallSum += ni.StallCycles
		if ni.Core != loaded && ni.StallCycles != 0 {
			t.Errorf("idle core %s reports %d stall cycles", ni.Core, ni.StallCycles)
		}
	}
	if stallSum != met.Stalled {
		t.Errorf("per-NI stalls sum to %d, aggregate Stalled is %d", stallSum, met.Stalled)
	}
	if met.Cycles != steps {
		t.Errorf("Metrics.Cycles = %d, want %d (stamped by Finish)", met.Cycles, steps)
	}
}

// TestObservabilityReport runs a saturated configuration with sampling on
// and checks the report against the run it describes: identity, cross
// totals, per-link and per-bank activity, and the JSON round trip the CLI
// sidecars rely on.
func TestObservabilityReport(t *testing.T) {
	cfg := smokeCfg(GSSSAGM)
	cfg.SampleEvery = 1000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Obs
	if rep == nil {
		t.Fatal("Result.Obs not populated")
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("report invalid: %v", err)
	}
	if rep.Design != res.Design.String() || rep.App != res.App || rep.Cycles != res.Cycles {
		t.Errorf("report identity %s/%s/%d disagrees with result %s/%s/%d",
			rep.Design, rep.App, rep.Cycles, res.Design, res.App, res.Cycles)
	}
	if rep.Utilization != res.Utilization || rep.Generated != res.Generated {
		t.Error("report headline counters disagree with Result")
	}
	if rep.Stalled == 0 {
		t.Error("saturated run reports zero stall cycles")
	}
	if rep.Network.Request.BusyCycles != res.NetBusyCycles {
		t.Errorf("request-mesh busy cycles %d != Result.NetBusyCycles %d",
			rep.Network.Request.BusyCycles, res.NetBusyCycles)
	}
	var grants int64
	for _, l := range rep.Network.Request.Links {
		grants += l.Grants
		if l.Utilization < 0 || l.Utilization > 1 {
			t.Errorf("link %s/%s utilization %v outside [0,1]", l.Router, l.Port, l.Utilization)
		}
	}
	if grants == 0 {
		t.Error("no allocator grants recorded on the request mesh")
	}
	var acts int64
	for _, b := range rep.Memory.Banks {
		acts += b.Activates
	}
	if acts == 0 {
		t.Error("no activates in the per-bank breakdown")
	}
	if rep.Memory.Stream == nil {
		t.Error("lightweight-controller run missing stream-quality breakdown")
	}
	if len(rep.NIs) != len(cfg.App.Cores) {
		t.Errorf("%d NI entries for %d cores", len(rep.NIs), len(cfg.App.Cores))
	}
	if want := cfg.Cycles / cfg.SampleEvery; int64(len(rep.Samples)) != want {
		t.Errorf("%d samples, want Cycles/SampleEvery = %d", len(rep.Samples), want)
	}

	// The JSON round trip the sidecars rely on.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := obs.Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("serialized report does not parse back: %v", err)
	}
	if back.Stalled != rep.Stalled || len(back.Samples) != len(rep.Samples) ||
		len(back.Network.Request.Links) != len(rep.Network.Request.Links) {
		t.Error("round-tripped report lost content")
	}
}

// TestSamplingDoesNotPerturb pins the promise in the Config.SampleEvery
// doc: sampling is observe-only, so a sampled run and an unsampled run of
// the same configuration produce identical measurements.
func TestSamplingDoesNotPerturb(t *testing.T) {
	plain, err := Run(smokeCfg(GSSSAGM))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smokeCfg(GSSSAGM)
	cfg.SampleEvery = 500
	sampled, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sameResult(plain, sampled) {
		t.Error("enabling SampleEvery changed simulation results")
	}
	if len(sampled.Obs.Samples) == 0 || len(plain.Obs.Samples) != 0 {
		t.Error("sampling flag not reflected in the reports")
	}
}
