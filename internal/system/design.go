// Package system assembles complete simulations: an application model's
// traffic generators inject memory request packets into a request mesh
// whose routers run the design's flow-control policy; a memory subsystem
// at the corner turns them into DDR commands; read responses return on a
// response mesh. One Run produces the paper's metrics (memory utilization
// and per-class request latency in memory-clock cycles).
package system

import "fmt"

// Design enumerates the seven NoC/memory design points of the evaluation.
type Design int

const (
	// Conv is the conventional design: round-robin routers, MemMax
	// thread-buffered scheduler + Databahn-style controller.
	Conv Design = iota
	// ConvPFS is Conv with priority-first service for demand packets in
	// routers and the memory scheduler.
	ConvPFS
	// SDRAMAware is the paper's reference [4]: SDRAM-aware routers
	// (the GSS engine at PCT=1, priority-equal) and the lightweight
	// in-order memory subsystem.
	SDRAMAware
	// SDRAMAwarePFS is [4]+PFS: the same engine at PCT=max
	// (priority-first).
	SDRAMAwarePFS
	// GSS is the paper's guaranteed-SDRAM-service router with a hybrid
	// PCT.
	GSS
	// GSSSAGM adds SDRAM access granularity matching: split packets,
	// BL4 / BL8-OTF device modes, partially-open-page with AP.
	GSSSAGM
	// GSSSAGMSTI additionally enables the short turn-around bank
	// interleaving filter (Fig. 4(b)).
	GSSSAGMSTI
)

// Designs lists all seven design points in evaluation order.
func Designs() []Design {
	return []Design{Conv, ConvPFS, SDRAMAware, SDRAMAwarePFS, GSS, GSSSAGM, GSSSAGMSTI}
}

// String returns the paper's name for the design.
func (d Design) String() string {
	switch d {
	case Conv:
		return "CONV"
	case ConvPFS:
		return "CONV+PFS"
	case SDRAMAware:
		return "[4]"
	case SDRAMAwarePFS:
		return "[4]+PFS"
	case GSS:
		return "GSS"
	case GSSSAGM:
		return "GSS+SAGM"
	case GSSSAGMSTI:
		return "GSS+SAGM+STI"
	default:
		return fmt.Sprintf("Design(%d)", int(d))
	}
}

// ParseDesign resolves a design from its paper name (case-sensitive) or a
// lowercase shorthand.
func ParseDesign(s string) (Design, error) {
	switch s {
	case "CONV", "conv":
		return Conv, nil
	case "CONV+PFS", "conv+pfs", "convpfs":
		return ConvPFS, nil
	case "[4]", "sdram-aware", "ref4":
		return SDRAMAware, nil
	case "[4]+PFS", "sdram-aware+pfs", "ref4pfs":
		return SDRAMAwarePFS, nil
	case "GSS", "gss":
		return GSS, nil
	case "GSS+SAGM", "gss+sagm", "sagm":
		return GSSSAGM, nil
	case "GSS+SAGM+STI", "gss+sagm+sti", "sti":
		return GSSSAGMSTI, nil
	}
	return 0, fmt.Errorf("system: unknown design %q", s)
}

// usesGSSEngine reports whether the request-mesh routers run the
// SDRAM-aware token engine (as opposed to conventional arbitration).
func (d Design) usesGSSEngine() bool { return d >= SDRAMAware }

// usesSAGM reports whether network interfaces split packets to the SDRAM
// access granularity.
func (d Design) usesSAGM() bool { return d == GSSSAGM || d == GSSSAGMSTI }

// usesSTI reports whether the Fig. 4(b) filter tree with bank idle
// counters is active.
func (d Design) usesSTI() bool { return d == GSSSAGMSTI }

// usesMemMax reports whether the memory subsystem is the conventional
// thread-buffered scheduler.
func (d Design) usesMemMax() bool { return d == Conv || d == ConvPFS }

// priorityFirstNet reports whether non-GSS routers serve priority packets
// first (the +PFS designs).
func (d Design) priorityFirstNet() bool { return d == ConvPFS }

// pctFor returns the engine's priority control token for this design:
// priority-equal for [4], priority-first for [4]+PFS, the configured
// hybrid otherwise.
func (d Design) pctFor(hybrid, max int) int {
	switch d {
	case SDRAMAware:
		return 1
	case SDRAMAwarePFS:
		return max
	default:
		if hybrid < 1 {
			return 3
		}
		if hybrid > max {
			return max
		}
		return hybrid
	}
}
