package system

import (
	"reflect"
	"testing"

	"aanoc/internal/appmodel"
	"aanoc/internal/dram"
	"aanoc/internal/memctrl"
)

// TestSchedulerCleanCheckedRuns: every scheduler in the zoo completes a
// checked-panic run on representative designs with zero violations —
// for the DPQ that means every completion met its analytic WCET
// deadline, for the regulator that every grant fit its window budget.
func TestSchedulerCleanCheckedRuns(t *testing.T) {
	for _, sched := range memctrl.Schedulers() {
		if sched == memctrl.SchedDefault {
			continue
		}
		for _, d := range []Design{Conv, GSSSAGM} {
			res, err := Run(Config{
				App: appmodel.BluRay(), Gen: dram.DDR2, Design: d,
				Scheduler: sched, Cycles: 12_000, PriorityDemand: true,
				CheckedPanic: true,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", sched, d, err)
			}
			if n := len(res.Obs.Violations); n != 0 {
				t.Fatalf("%s/%s: %d violations", sched, d, n)
			}
			if res.Completed == 0 {
				t.Errorf("%s/%s: no requests completed", sched, d)
			}
			if res.Scheduler != sched {
				t.Errorf("%s/%s: result carries scheduler %v", sched, d, res.Scheduler)
			}
			if res.Obs.Scheduler != sched.String() {
				t.Errorf("%s/%s: report scheduler %q", sched, d, res.Obs.Scheduler)
			}
			ss := res.Obs.Memory.Scheduler
			if ss == nil || ss.Name != sched.String() {
				t.Fatalf("%s/%s: report lacks scheduler stats: %+v", sched, d, ss)
			}
			if ss.Grants == 0 {
				t.Errorf("%s/%s: scheduler stats show zero grants", sched, d)
			}
			if sched == memctrl.SchedDPQ && ss.WCETChecked == 0 {
				t.Errorf("%s: checked run verified zero WCET deadlines", d)
			}
			if err := res.Obs.Validate(); err != nil {
				t.Errorf("%s/%s: report invalid: %v", sched, d, err)
			}
		}
	}
}

// TestSchedulerDefaultReportUnchanged: the default scheduler must not
// grow any zoo fields — its report stays shaped exactly as the seed's.
func TestSchedulerDefaultReportUnchanged(t *testing.T) {
	res, err := Run(Config{
		App: appmodel.BluRay(), Gen: dram.DDR2, Design: GSSSAGM,
		Cycles: 8_000, PriorityDemand: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs.Scheduler != "" {
		t.Errorf("default run reports scheduler %q", res.Obs.Scheduler)
	}
	if res.Obs.Memory.Scheduler != nil {
		t.Errorf("default run carries scheduler stats %+v", res.Obs.Memory.Scheduler)
	}
}

// TestSchedulerDeterminism: each zoo member keeps the repo-wide
// bit-for-bit reproducibility guarantee.
func TestSchedulerDeterminism(t *testing.T) {
	for _, sched := range memctrl.Schedulers() {
		cfg := Config{
			App: appmodel.BluRay(), Gen: dram.DDR2, Design: GSS,
			Scheduler: sched, Cycles: 10_000, PriorityDemand: true,
		}
		a, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two identical runs diverged", sched)
		}
	}
}

// TestSchedulerRejectsUnknown: construction validates the scheduler id.
func TestSchedulerRejectsUnknown(t *testing.T) {
	_, err := New(Config{
		App: appmodel.BluRay(), Gen: dram.DDR2, Scheduler: memctrl.Scheduler(99),
	})
	if err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

// TestDPQWCETMutationDetected is the zoo's fault-injection proof: a
// legality-preserving slow-CAS fault (every CAS delayed far beyond the
// analytic service time, yet never violating a JEDEC constraint) must
// slip past the shadow DRAM protocol monitor and be caught by the WCET
// bound monitor alone.
func TestDPQWCETMutationDetected(t *testing.T) {
	r, err := New(Config{
		App: appmodel.BluRay(), Gen: dram.DDR2, Design: Conv,
		Scheduler: memctrl.SchedDPQ, Cycles: 30_000, PriorityDemand: true,
		Checked: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Device().InjectFault(dram.FaultSlowCAS)
	for i := int64(0); i < 30_000; i++ {
		r.Step()
	}
	res := r.Finish()
	wcet, dramViol := 0, 0
	for _, v := range res.Obs.Violations {
		switch {
		case v.Kind == "wcet-bound":
			wcet++
		case v.Component == "dram":
			dramViol++
		}
	}
	if wcet == 0 {
		t.Fatalf("WCET monitor missed the injected slow-CAS fault; violations: %v",
			res.Obs.Violations)
	}
	if dramViol != 0 {
		t.Errorf("slow-CAS fault is legality-preserving but the DRAM monitor fired %d times",
			dramViol)
	}
}

// TestRegulatorMutationDetected: an admission stream that exceeds the
// window budget must be flagged by the wired regulation monitor. The
// regulator's OnAdmit hook is the monitor's Admit after installChecks,
// so driving an over-budget grant sequence through it proves the
// system wiring turns a regulation breach into a reported violation
// (the behavioural gate-off mutation is covered at the memctrl/check
// layer, where the gate can be disabled before monitor construction).
func TestRegulatorMutationDetected(t *testing.T) {
	r, err := New(Config{
		App: appmodel.BluRay(), Gen: dram.DDR2, Design: Conv,
		Scheduler: memctrl.SchedRegulated, Cycles: 1_000,
		Checked: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg, ok := r.ctrls[0].(*memctrl.Regulator)
	if !ok {
		t.Fatalf("regulated config built %T", r.ctrls[0])
	}
	if reg.OnAdmit == nil {
		t.Fatal("checked mode left the regulator's admission hook unwired")
	}
	budget := reg.Config().Budget
	reg.OnAdmit(0, 0, int(budget), 10)
	reg.OnAdmit(0, 0, 1, 11)
	for i := int64(0); i < 1_000; i++ {
		r.Step()
	}
	res := r.Finish()
	found := false
	for _, v := range res.Obs.Violations {
		if v.Kind == "regulation-window" {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("regulation monitor missed an over-budget admission; violations: %v",
			res.Obs.Violations)
	}
}

// TestSchedulerInjectFaultKnob: the AANOC_INJECT_FAULT environment knob
// arms a device fault at construction — the CLI-level exit-code test
// rides on it, so its plumbing is pinned here.
func TestSchedulerInjectFaultKnob(t *testing.T) {
	t.Setenv("AANOC_INJECT_FAULT", "slow-cas")
	r, err := New(Config{
		App: appmodel.BluRay(), Gen: dram.DDR2, Design: Conv,
		Scheduler: memctrl.SchedDPQ, Cycles: 20_000, PriorityDemand: true,
		Checked: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 20_000; i++ {
		r.Step()
	}
	res := r.Finish()
	if len(res.Obs.Violations) == 0 {
		t.Fatal("injected fault produced no violations")
	}

	t.Setenv("AANOC_INJECT_FAULT", "nonsense")
	if _, err := New(Config{App: appmodel.BluRay(), Gen: dram.DDR2}); err == nil {
		t.Fatal("unknown fault name accepted")
	}
}
