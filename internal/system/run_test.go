package system

import (
	"testing"

	"aanoc/internal/appmodel"
	"aanoc/internal/dram"
)

func TestParseDesign(t *testing.T) {
	for _, d := range Designs() {
		got, err := ParseDesign(d.String())
		if err != nil || got != d {
			t.Errorf("ParseDesign(%q) = %v, %v", d.String(), got, err)
		}
	}
	if _, err := ParseDesign("bogus"); err == nil {
		t.Error("want error for unknown design")
	}
}

func TestDesignPredicates(t *testing.T) {
	if Conv.usesGSSEngine() || !SDRAMAware.usesGSSEngine() || !GSSSAGMSTI.usesGSSEngine() {
		t.Error("usesGSSEngine misclassifies")
	}
	if GSS.usesSAGM() || !GSSSAGM.usesSAGM() || !GSSSAGMSTI.usesSAGM() {
		t.Error("usesSAGM misclassifies")
	}
	if GSSSAGM.usesSTI() || !GSSSAGMSTI.usesSTI() {
		t.Error("usesSTI misclassifies")
	}
	if !Conv.usesMemMax() || SDRAMAware.usesMemMax() {
		t.Error("usesMemMax misclassifies")
	}
	if SDRAMAware.pctFor(3, 5) != 1 || SDRAMAwarePFS.pctFor(3, 5) != 5 || GSS.pctFor(3, 5) != 3 {
		t.Error("pctFor misclassifies")
	}
}

func smokeCfg(d Design) Config {
	return Config{
		App: appmodel.BluRay(), Gen: dram.DDR2, Design: d,
		Cycles: 30_000, Seed: 7, PriorityDemand: true,
	}
}

func TestSmokeAllDesigns(t *testing.T) {
	for _, d := range Designs() {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			res, err := Run(smokeCfg(d))
			if err != nil {
				t.Fatal(err)
			}
			if res.Utilization <= 0.05 || res.Utilization > 1 {
				t.Errorf("utilization %v out of range", res.Utilization)
			}
			if res.Completed < 100 {
				t.Errorf("only %d completions", res.Completed)
			}
			if res.LatAll <= 0 {
				t.Errorf("no latency recorded")
			}
			if res.LatDemand <= 0 {
				t.Errorf("no demand latency recorded")
			}
			t.Logf("%-14s util=%.3f latAll=%.0f latDem=%.0f latPri=%.0f done=%d waste=%.2f",
				d, res.Utilization, res.LatAll, res.LatDemand, res.LatPriority, res.Completed, res.WasteFrac)
		})
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(smokeCfg(GSSSAGM))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smokeCfg(GSSSAGM))
	if err != nil {
		t.Fatal(err)
	}
	if !sameResult(a, b) {
		t.Fatalf("same seed gave different results:\n%+v\n%+v", a, b)
	}
}

func TestGSSRouterCountSweep(t *testing.T) {
	// More GSS routers must not break anything; k=0 equals the PFS+RR
	// baseline.
	for _, k := range []int{-1, 1, 3, 9} {
		cfg := smokeCfg(GSSSAGM)
		cfg.GSSRouters = k
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if res.Completed < 100 {
			t.Errorf("k=%d: only %d completions", k, res.Completed)
		}
	}
}

func TestSAGMUsesBL4ModeOnDDR2(t *testing.T) {
	r, err := New(smokeCfg(GSSSAGM))
	if err != nil {
		t.Fatal(err)
	}
	if r.timing.DeviceBL != 4 {
		t.Errorf("SAGM on DDR2 should set BL4 mode, got BL%d", r.timing.DeviceBL)
	}
	r2, err := New(Config{App: appmodel.BluRay(), Gen: dram.DDR3, Design: GSSSAGM, Cycles: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if r2.timing.DeviceBL != 8 || !r2.timing.OTF {
		t.Errorf("SAGM on DDR3 should keep BL8 OTF, got BL%d OTF=%v", r2.timing.DeviceBL, r2.timing.OTF)
	}
	r3, err := New(smokeCfg(GSS))
	if err != nil {
		t.Fatal(err)
	}
	if r3.timing.DeviceBL != 8 {
		t.Errorf("non-SAGM should stay in BL8 mode, got BL%d", r3.timing.DeviceBL)
	}
}

func TestSAGMReducesWaste(t *testing.T) {
	// The granularity-matching claim (Fig. 2): the SAGM design over-fetches
	// less than the BL8 designs on the same traffic.
	base, err := Run(smokeCfg(GSS))
	if err != nil {
		t.Fatal(err)
	}
	sagm, err := Run(smokeCfg(GSSSAGM))
	if err != nil {
		t.Fatal(err)
	}
	if sagm.WasteFrac >= base.WasteFrac {
		t.Errorf("SAGM waste %.3f should be below BL8 waste %.3f", sagm.WasteFrac, base.WasteFrac)
	}
}

// sameResult compares the deterministic scalar content of two results
// plus the per-core breakdowns.
func sameResult(a, b Result) bool {
	if a.Utilization != b.Utilization || a.LatAll != b.LatAll ||
		a.LatDemand != b.LatDemand || a.LatPriority != b.LatPriority ||
		a.Generated != b.Generated || a.Completed != b.Completed ||
		a.Device != b.Device || a.Fairness != b.Fairness {
		return false
	}
	if len(a.PerCore) != len(b.PerCore) {
		return false
	}
	for i := range a.PerCore {
		if a.PerCore[i] != b.PerCore[i] {
			return false
		}
	}
	return true
}
