package system

import (
	"reflect"
	"testing"

	"aanoc/internal/appmodel"
	"aanoc/internal/dram"
	"aanoc/internal/mapping"
)

// TestChannelsOneIsSeedEquivalent is the multi-channel refactor's
// regression gate: an explicit Channels=1 run must be deep-equal to the
// defaulted (pre-refactor) configuration on every design — the
// generalised wiring reduces exactly to the single-SDRAM system.
func TestChannelsOneIsSeedEquivalent(t *testing.T) {
	for _, d := range Designs() {
		base := Config{
			App: appmodel.BluRay(), Gen: dram.DDR2, Design: d,
			Cycles: 30_000, PriorityDemand: true, SampleEvery: 5_000,
		}
		explicit := base
		explicit.Channels = 1
		a, err := Run(base)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(explicit)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: Channels=1 diverges from the defaulted config", d)
		}
		if len(a.Obs.Memory.Channels) != 0 || a.Obs.Memory.Imbalance != nil {
			t.Errorf("%s: single-channel report carries multi-channel fields", d)
		}
	}
}

// TestTwoChannelCheckedRun is the tentpole acceptance run: the scaled
// Blu-ray app on two channels, under the full invariant layer in panic
// mode, must complete with balanced per-channel stats.
func TestTwoChannelCheckedRun(t *testing.T) {
	res, err := Run(Config{
		App: appmodel.BluRay2(), Gen: dram.DDR2, Design: GSSSAGM,
		Channels: 2, Cycles: 40_000, PriorityDemand: true,
		CheckedPanic: true, SampleEvery: 5_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(res.Obs.Violations); n != 0 {
		t.Fatalf("%d invariant violations", n)
	}
	if err := res.Obs.Validate(); err != nil {
		t.Fatal(err)
	}
	chans := res.Obs.Memory.Channels
	if len(chans) != 2 {
		t.Fatalf("report carries %d channel entries, want 2", len(chans))
	}
	var data int64
	for _, cs := range chans {
		if cs.DataCycles <= 0 {
			t.Errorf("channel %d moved no data", cs.Channel)
		}
		if cs.Completions > cs.Splits {
			t.Errorf("channel %d completed %d of %d splits", cs.Channel, cs.Completions, cs.Splits)
		}
		data += cs.DataCycles
	}
	if agg := res.Device.DataCycles; agg != data {
		t.Errorf("per-channel data cycles sum to %d, aggregate says %d", data, agg)
	}
	if imb := res.Obs.Memory.Imbalance; imb == nil || *imb < 1 || *imb > 1.5 {
		t.Errorf("channel imbalance %v outside the balanced band [1,1.5]", imb)
	}
	if res.Utilization <= 0.3 {
		t.Errorf("two-channel scaled app utilization %v suspiciously low", res.Utilization)
	}
}

// TestFourChannelXORCheckedRun covers the second scheme and the largest
// scaled model: four quadrants, four corner ports, row-XOR interleaving.
func TestFourChannelXORCheckedRun(t *testing.T) {
	res, err := Run(Config{
		App: appmodel.QuadDTV(), Gen: dram.DDR2, Design: GSSSAGMSTI,
		Channels: 4, Scheme: mapping.ChannelThenBankXOR,
		Cycles: 25_000, PriorityDemand: true, CheckedPanic: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(res.Obs.Violations); n != 0 {
		t.Fatalf("%d invariant violations", n)
	}
	if len(res.Obs.Memory.Channels) != 4 {
		t.Fatalf("want 4 channel entries, got %d", len(res.Obs.Memory.Channels))
	}
	for _, cs := range res.Obs.Memory.Channels {
		if cs.Splits == 0 {
			t.Errorf("channel %d received no traffic under XOR interleaving", cs.Channel)
		}
	}
}

// TestChannelsExceedPortsRejected: the channel count is bounded by the
// app model's memory ports, at construction time.
func TestChannelsExceedPortsRejected(t *testing.T) {
	_, err := New(Config{App: appmodel.BluRay(), Gen: dram.DDR2, Channels: 2})
	if err == nil {
		t.Fatal("bluray (one memory port) accepted Channels=2")
	}
	_, err = New(Config{App: appmodel.BluRay2(), Gen: dram.DDR2, Channels: 3, Scheme: mapping.ChannelThenBankXOR})
	if err == nil {
		t.Fatal("XOR scheme accepted a non-power-of-two channel count")
	}
}

// TestMultiChannelDeterminism: the multi-channel wiring keeps the
// repo-wide bit-for-bit reproducibility guarantee.
func TestMultiChannelDeterminism(t *testing.T) {
	cfg := Config{
		App: appmodel.BluRay2(), Gen: dram.DDR2, Design: GSSSAGM,
		Channels: 2, Cycles: 20_000, PriorityDemand: true,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identical multi-channel runs diverged")
	}
}
