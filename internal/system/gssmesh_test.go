package system

import (
	"testing"
	"testing/quick"

	"aanoc/internal/core"
	"aanoc/internal/dram"
	"aanoc/internal/noc"
)

// TestPropertyGSSMeshNeverDeadlocks drives a mesh whose every output runs
// a GSS flow controller with random memory request traffic (random banks,
// rows, kinds, priorities, lengths) and checks that everything is
// delivered exactly once — the exclusion rule, the aging loop and
// winner-take-all allocation together must never wedge the network.
func TestPropertyGSSMeshNeverDeadlocks(t *testing.T) {
	type spec struct {
		Bank, Row, Len uint8
		Write, Pri     bool
	}
	f := func(specs []spec, pct uint8) bool {
		if len(specs) == 0 {
			return true
		}
		if len(specs) > 60 {
			specs = specs[:60]
		}
		m, err := noc.NewMesh(3, 3, 4)
		if err != nil {
			return false
		}
		cfg := core.Config{PCT: int(pct)%5 + 1, Banks: 8}
		for _, rt := range m.Routers {
			rt.SetAllAllocators(func(int) noc.Allocator { return core.MustNew(cfg) })
		}
		dst := noc.Coord{X: 0, Y: 0}
		sink := m.AttachSink(dst, 16, 4)
		injs := map[noc.Coord]*noc.Injector{}
		want := 0
		for i, s := range specs {
			src := noc.Coord{X: i % 3, Y: (i / 3) % 3}
			if src == dst {
				continue
			}
			inj := injs[src]
			if inj == nil {
				inj = m.AttachInjector(src)
				injs[src] = inj
			}
			kind := noc.Read
			flits := 1
			beats := int(s.Len)%32 + 1
			if s.Write {
				kind = noc.Write
				flits = noc.FlitsForBeats(beats)
			}
			inj.Enqueue(&noc.Packet{
				ID: int64(i + 1), ParentID: int64(i + 1),
				Src: src, Dst: dst, Kind: kind, Priority: s.Pri,
				Class: noc.ClassMedia, Beats: beats, Flits: flits, Splits: 1,
				Addr: dram.Address{Bank: int(s.Bank) % 8, Row: int(s.Row)},
			})
			want++
		}
		seen := map[int64]bool{}
		for now := int64(0); now < 30_000 && len(seen) < want; now++ {
			m.Cycle(now)
			for _, inj := range injs {
				inj.Step(now)
			}
			sink.Step(now)
			for {
				p := sink.Pop(now)
				if p == nil {
					break
				}
				if seen[p.ID] {
					return false
				}
				seen[p.ID] = true
			}
		}
		return len(seen) == want && m.Quiescent()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestGSSMeshPriorityNotSlower: with GSS flow control everywhere, adding
// the priority flag to a packet must never make that packet slower than
// its best-effort twin in the same scenario.
func TestGSSMeshPriorityNotSlower(t *testing.T) {
	deliver := func(pri bool) int64 {
		m, err := noc.NewMesh(3, 3, 4)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.Config{PCT: 4, Banks: 8}
		for _, rt := range m.Routers {
			rt.SetAllAllocators(func(int) noc.Allocator { return core.MustNew(cfg) })
		}
		dst := noc.Coord{X: 0, Y: 0}
		sink := m.AttachSink(dst, 16, 4)
		srcA, srcB := noc.Coord{X: 2, Y: 2}, noc.Coord{X: 1, Y: 1}
		injA, injB := m.AttachInjector(srcA), m.AttachInjector(srcB)
		// Background long packets from B contending at the merge points.
		for i := int64(1); i <= 6; i++ {
			injB.Enqueue(&noc.Packet{
				ID: i, ParentID: i, Src: srcB, Dst: dst, Kind: noc.Write,
				Class: noc.ClassMedia, Beats: 64, Flits: 32, Splits: 1,
				Addr: dram.Address{Bank: int(i) % 8, Row: int(i)},
			})
		}
		probe := &noc.Packet{
			ID: 100, ParentID: 100, Src: srcA, Dst: dst, Kind: noc.Read,
			Class: noc.ClassDemand, Priority: pri, Beats: 8, Flits: 1, Splits: 1,
			Addr: dram.Address{Bank: 7, Row: 99},
		}
		injA.Enqueue(probe)
		for now := int64(0); now < 5_000; now++ {
			m.Cycle(now)
			injA.Step(now)
			injB.Step(now)
			sink.Step(now)
			for {
				p := sink.Pop(now)
				if p == nil {
					break
				}
				if p.ID == 100 {
					return now
				}
			}
		}
		t.Fatal("probe packet never delivered")
		return -1
	}
	pri, be := deliver(true), deliver(false)
	if pri > be {
		t.Fatalf("priority probe (%d) slower than best-effort twin (%d)", pri, be)
	}
}
