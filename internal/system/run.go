package system

import (
	"context"
	"fmt"
	"os"

	"aanoc/internal/appmodel"
	"aanoc/internal/check"
	"aanoc/internal/core"
	"aanoc/internal/dram"
	"aanoc/internal/mapping"
	"aanoc/internal/memctrl"
	"aanoc/internal/noc"
	"aanoc/internal/obs"
	"aanoc/internal/router"
	"aanoc/internal/sim"
	"aanoc/internal/stats"
	"aanoc/internal/trace"
	"aanoc/internal/traffic"
)

// Config specifies one simulation run.
type Config struct {
	App      appmodel.App
	Gen      dram.Generation
	ClockMHz int // 0: the application's clock for Gen
	Design   Design

	// Subarrays enables MASA-style subarray-level parallelism: each bank
	// carries this many independent row buffers (rows map to buffers by
	// row mod Subarrays), so same-bank accesses to different subarrays
	// proceed without a precharge/activate cycle. 0 or 1 is the classic
	// one-buffer bank, byte-identical to runs predating the knob. The
	// structure is plumbed end to end: device timing, controller hazards,
	// GSS conflict filters and the checked-mode shadow monitor all see it.
	Subarrays int

	// Channels is the number of independent SDRAM channels (default 1).
	// Each channel is its own controller/device pair behind its own mesh
	// ejection port (App.MemPorts); a request's owning channel is a pure
	// function of its address under the Scheme interleaving policy.
	// Channels must not exceed the application model's port count.
	// Channels=1 reproduces the single-SDRAM system exactly.
	Channels int
	// Scheme selects the channel-interleaving policy (default
	// mapping.BankThenChannel; the XOR scheme needs a power-of-two
	// channel count). Irrelevant single-channel.
	Scheme mapping.ChannelScheme

	// Scheduler overrides the memory scheduler on every channel
	// (default memctrl.SchedDefault: the paper's pairing of MemMax for
	// conventional designs and the lightweight controller otherwise).
	// The zoo members — SchedDPQ, SchedRegulated, SchedStaged — replace
	// the controller while keeping the design's network unchanged, so a
	// sweep isolates the scheduler axis. Checked runs additionally arm
	// the scheduler's guarantee monitor: the DPQ analytic WCET bound per
	// request, or the per-bank regulation-window invariant.
	Scheduler memctrl.Scheduler

	// PCT is the hybrid priority control token for GSS designs
	// (default 3; [4] and [4]+PFS override it).
	PCT int
	// GSSRouters limits how many routers (nearest the memory first) run
	// the GSS engine: 0 (the default) means all of them, -1 means none
	// (the Fig. 8 baseline), and a positive k replaces exactly the k
	// routers closest to the memory subsystem (the Fig. 8 sweep).
	GSSRouters int

	// PriorityDemand marks CPU demand requests as priority packets
	// (Table II); Table I runs with it off.
	PriorityDemand bool

	Cycles int64
	// Warmup is the cycle latency samples start after (default Cycles/10).
	// Zero selects the default; an explicit no-warmup run is requested
	// with the sentinel -1, since the zero value cannot express it. The
	// sentinel survives Resolved (it normalises any negative value to -1,
	// keeping resolution idempotent) and samples from cycle 0.
	Warmup int64
	// Seed seeds the deterministic RNG. Zero selects the fixed default
	// seed 0xA11CE — the zero value must be runnable and deterministic —
	// so "seed zero" itself is not expressible; every run is seeded.
	Seed uint64

	// BufFlits sizes router input buffers (default 8 flits per virtual
	// channel).
	BufFlits int
	// VirtualChannels selects the buffer organisation of both meshes:
	// 1 (default) is the paper's wormhole implementation; 2 adds a
	// priority virtual channel so priority packets overtake long
	// best-effort transfers at flit granularity — the alternative
	// blocking remedy the paper contrasts SAGM splitting with.
	VirtualChannels int
	// AdaptiveRouting switches both meshes from the paper's XY routing to
	// the west-first adaptive turn model: packets with several minimal
	// paths take the least congested one (the paper's output-scheduler
	// discussion for adaptive routers).
	AdaptiveRouting bool
	// InjectCap is the NI injection backlog in flits beyond which the
	// traffic source stalls (default 64).
	InjectCap int
	// MemPipeline is the command pipeline depth of the lightweight
	// controller (default 8, pinned by TestWithDefaultsPinned — the
	// sweep fingerprint cache keys on the resolved value, so the default
	// must not drift silently).
	MemPipeline int
	// SplitGranularity overrides the SAGM split size in beats (ablation);
	// 0 uses the paper's per-generation value.
	SplitGranularity int
	// Trace, when set, records every generated logical request (capture
	// mode); Replay, when non-empty, replaces the application's synthetic
	// generators with the recorded requests (replay mode) — identical
	// workloads across designs.
	Trace  *trace.Writer
	Replay []trace.Record

	// SampleEvery, when positive, collects an observability time-series
	// sample every SampleEvery cycles into the run report (Result.Obs):
	// windowed data-bus utilization, outstanding logical requests and
	// queue occupancies. Zero disables sampling; the rest of the report
	// is collected either way. Sampling never feeds back into the
	// simulation, so it cannot perturb results.
	SampleEvery int64

	// SpecHash identifies the scenario spec the configuration was
	// resolved from (scenario.Spec.Hash; empty for builtin app models).
	// It never perturbs the simulation, but the sweep fingerprint keys
	// on it so two spec-driven runs with different workload content
	// never share a cache entry even if their resolved app models
	// coincide by name.
	SpecHash string
	// WorkloadStats includes the per-stream production breakdown
	// (obs.Report.Workload: read/write split, burst-size histogram,
	// blocked cycles) in the run report — the input of the scenario
	// calibration layer. Off by default so default sidecars stay
	// byte-identical; the counters themselves are always maintained.
	WorkloadStats bool

	// Checked enables the internal/check invariant layer: a DRAM protocol
	// conformance monitor on the device's command stream, per-cycle
	// credit/flit conservation audits over both meshes, and end-of-run
	// request/token/report accounting. Costs nothing when off (one nil
	// check per cycle); when on, violations accumulate into
	// Result.Obs.Violations. Checked runs produce the same simulation
	// results as unchecked runs — the monitors only observe.
	Checked bool
	// CheckedPanic makes the first violation panic at its detection point
	// instead of accumulating — the mode the test harnesses run under, so
	// a breach pinpoints its cycle. Implies Checked.
	CheckedPanic bool

	// TagEveryRequest reverts to the paper's literal partially-open-page
	// policy: every logical request's last split carries the AP tag, so
	// the bank closes after every request. The default tags only the
	// stream's final access to a row (the network interface knows its
	// address walk), keeping rows open for known upcoming hits. The
	// paper-literal mode is where the short turn-around interleaving
	// (STI) counters matter: at high DDR3 clocks a closed bank needs
	// tWR+tRP+tRCD cycles before it can serve the next same-row request,
	// and the Fig. 4(b) filters steer other banks' traffic in between.
	TagEveryRequest bool
	// PagePolicy overrides the memory page policy (ablation); nil uses
	// the design's policy.
	PagePolicy *memctrl.PagePolicy
}

// Result carries one run's measurements.
type Result struct {
	Design   Design
	App      string
	Gen      dram.Generation
	ClockMHz int
	Cycles   int64
	// Scheduler is the memory scheduler the run used; Channels its SDRAM
	// channel count (both resolved, so table rows can carry them).
	Scheduler memctrl.Scheduler
	Channels  int

	Utilization float64
	LatAll      float64
	LatDemand   float64
	LatPriority float64
	LatBest     float64
	P95All      int64

	Generated int64
	Completed int64

	Device dram.Stats
	// WasteFrac is the fraction of transferred beats the requester never
	// asked for (access granularity mismatch, Fig. 2).
	WasteFrac float64

	// NetBusyCycles sums flit transfers over all request-mesh outputs;
	// GSSGrants counts GSS channel allocations; CmdCycles counts
	// command-bus activity — inputs to the Table V power model.
	NetBusyCycles int64
	GSSGrants     int64
	CmdCycles     int64

	// PerCore breaks service down by requesting core; Fairness is Jain's
	// index over per-core served beats (1 = perfectly proportional
	// service, 1/n = one core monopolises the memory).
	PerCore  []CoreStats
	Fairness float64

	// Obs is the run-level observability report: per-link utilization
	// and grants, per-NI backlog high-water marks and stall cycles, the
	// per-bank DRAM breakdown, and (when Config.SampleEvery is set) the
	// time series. Always populated by Finish; serialized by the CLI
	// JSON sidecars.
	Obs *obs.Report
}

// Resolved returns the configuration with every defaulted field filled
// in — the exact parameters a run would execute. Sweep fingerprinting
// keys on the resolved form so distinct spellings of the same run (a
// zero field versus its default written out) share one cache entry.
func (c Config) Resolved() Config { return c.withDefaults() }

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.ClockMHz == 0 {
		c.ClockMHz = c.App.Clocks[c.Gen]
	}
	if c.ClockMHz == 0 {
		// Application models predating a generation (the builtin media
		// platforms carry DDR1-3 clocks only) default to its fastest
		// standard speed grade.
		c.ClockMHz = dram.DefaultClock(c.Gen)
	}
	if c.PCT == 0 {
		c.PCT = 3
	}
	if c.Cycles == 0 {
		c.Cycles = 200_000
	}
	if c.Warmup == 0 {
		c.Warmup = c.Cycles / 10
	} else if c.Warmup < 0 {
		// The -1 sentinel (an explicit no-warmup run) must not resolve to
		// 0: re-resolving would re-fill the default, and two configs that
		// run identically would fingerprint apart. Generation cycles are
		// never negative, so "gen >= -1" samples everything.
		c.Warmup = -1
	}
	if c.Seed == 0 {
		c.Seed = 0xA11CE
	}
	if c.BufFlits == 0 {
		c.BufFlits = 8
	}
	if c.VirtualChannels == 0 {
		c.VirtualChannels = 1
	}
	if c.InjectCap == 0 {
		c.InjectCap = 64
	}
	if c.MemPipeline == 0 {
		c.MemPipeline = 8
	}
	if c.Channels == 0 {
		c.Channels = 1
	}
	if c.CheckedPanic {
		c.Checked = true
	}
	return c
}

// logical tracks an outstanding logical request across its splits.
type logical struct {
	gen      int64 // generation cycle at the core
	entry    int64 // cycle the first flit entered the request mesh (-1 until then)
	stream   traffic.Source
	class    noc.Class
	priority bool
	read     bool
	pending  int
	core     int
	beats    int
}

// parentTable maps logical-request parent IDs to their records without
// hashing. Parent IDs are monotonic packet IDs, so the live IDs occupy a
// window [base, base+len(slots)): lookup is a bounds check plus an
// index, and completion trims the dead head so the window tracks the
// outstanding range. IDs that were never parents leave nil gap slots;
// the map hashing this replaces was a top bucket on the saturated-load
// profile (delta recorded in BENCH_trajectory.jsonl).
type parentTable struct {
	base  int64      // ID of slots[0]
	slots []*logical // nil: completed, or an ID that was never a parent
	live  int
}

// get returns the record for an ID, or nil.
func (t *parentTable) get(id int64) *logical {
	i := id - t.base
	if i < 0 || i >= int64(len(t.slots)) {
		return nil
	}
	return t.slots[i]
}

// put registers a record under a fresh ID (IDs only grow).
func (t *parentTable) put(id int64, l *logical) {
	if len(t.slots) == 0 {
		t.base = id
	}
	for id-t.base >= int64(len(t.slots)) {
		t.slots = append(t.slots, nil)
	}
	t.slots[id-t.base] = l
	t.live++
}

// del drops an ID's record and advances the window past the dead head.
// Each slot is trimmed exactly once, so deletion is amortised O(1).
func (t *parentTable) del(id int64) {
	i := id - t.base
	if i < 0 || i >= int64(len(t.slots)) || t.slots[i] == nil {
		return
	}
	t.slots[i] = nil
	t.live--
	n := 0
	for n < len(t.slots) && t.slots[n] == nil {
		n++
	}
	if n > 0 {
		t.slots = t.slots[n:]
		t.base += int64(n)
	}
}

// Len reports the live record count.
func (t *parentTable) Len() int { return t.live }

// each visits every live record in ID order.
func (t *parentTable) each(fn func(id int64, l *logical)) {
	for i, l := range t.slots {
		if l != nil {
			fn(t.base+int64(i), l)
		}
	}
}

// coreNI is one core's network interface: traffic generators, request
// injector and response sink.
type coreNI struct {
	spec appmodel.Core
	gens []traffic.Source
	inj  *noc.Injector
	sink *noc.Sink
}

// Runner is a fully wired simulation; Step advances it cycle by cycle.
// Most callers use Run; Runner is exported for examples and tests that
// want mid-run visibility.
type Runner struct {
	cfg    Config
	timing dram.Timing

	// The memory subsystem is one controller/device/port tuple per
	// channel, all slices indexed by channel. chmap owns the global-bank
	// interleaving; ports[ch] is channel ch's mesh ejection coordinate.
	// Single-channel runs are the one-element case of the same wiring.
	devs     []*dram.Device
	ctrls    []memctrl.Controller
	memSinks []*noc.Sink
	respInjs []*noc.Injector
	ports    []noc.Coord
	chmap    mapping.ChannelMap
	// chSent/chDone count split packets routed to and completed by each
	// channel — the per-channel conservation ledger (checked mode) and
	// the obs per-channel Splits/Completions counters.
	chSent, chDone []int64

	reqMesh, respMesh *noc.Mesh

	cores   []*coreNI
	bySrc   map[noc.Coord]*coreNI
	parents parentTable

	split  *core.Splitter // nil when the design does not split
	nextID int64

	// Free-lists for the per-request allocations on the saturated hot
	// path: packets cycle core→mesh→controller→(response mesh)→core and
	// are recycled at their completion points, so steady state allocates
	// nothing per request. Everything downstream that outlives a packet
	// (controller `last` state, GSS history) holds value copies, never
	// pointers, so recycling is safe.
	pktFree []*noc.Packet
	logFree []*logical

	met       stats.Metrics
	coreStats []CoreStats

	// The simulation kernel owns the clock; the handles are the wake
	// targets of cross-component events (admissions wake the controller,
	// completions wake the response injector and the requesting core's
	// generators).
	kern      *sim.Kernel
	hMems     []*sim.Handle // indexed by channel
	hRespInjs []*sim.Handle // indexed by channel
	hInject   []*sim.Handle // indexed like cores

	// Observability state: per-core stall cycles (indexed like cores),
	// the collected time series, and the data-cycle watermark of the
	// last sample window.
	stalls      []int64
	samples     []obs.Sample
	lastSampleD int64

	gssAllocs []*core.GSS

	// Checked-mode state: nil unless Config.Checked. genPerCore mirrors
	// met.Generated per requesting core for the end-of-run accounting.
	// dpqMons/regMons are the per-channel scheduler-guarantee monitors
	// (empty unless the matching zoo scheduler is selected).
	chk        *check.Checker
	genPerCore []int64
	dpqMons    []*check.DPQMonitor
	regMons    []*check.RegulatorMonitor

	// maxBeats is the largest single-request beat count the resolved
	// workload can present — the interference unit of the DPQ WCET bound
	// and the regulator's budget floor.
	maxBeats int
}

// CoreStats is the per-core service breakdown of one run.
type CoreStats struct {
	Name       string
	Completed  int64
	Beats      int64 // useful beats served
	LatencySum int64 // generation-to-completion, summed
}

// MeanLatency returns the core's average request latency.
func (c CoreStats) MeanLatency() float64 {
	if c.Completed == 0 {
		return 0
	}
	return float64(c.LatencySum) / float64(c.Completed)
}

// New wires a simulation for the configuration.
func New(cfg Config) (*Runner, error) {
	cfg = cfg.withDefaults()
	if err := cfg.App.Validate(); err != nil {
		return nil, err
	}
	if cfg.SampleEvery < 0 {
		// The facade rejects this with ErrBadSampleEvery; rejecting it
		// here too keeps direct system.Config users (aanoc-sim and the
		// other CLIs) on the same validation surface.
		return nil, fmt.Errorf("system: negative sampling interval %d", cfg.SampleEvery)
	}
	timing, err := dram.Speed(cfg.Gen, cfg.ClockMHz)
	if err != nil {
		return nil, err
	}
	if cfg.Design.usesSAGM() && !timing.OTF {
		// SAGM matches the access granularity with BL4 bursts; devices
		// with on-the-fly burst chop (DDR3/DDR4) stay in BL8 mode and chop
		// per command instead.
		timing = timing.WithDeviceBL(4)
	}
	if cfg.Subarrays < 0 {
		return nil, fmt.Errorf("system: negative subarray count %d", cfg.Subarrays)
	}
	if cfg.Subarrays > 1 {
		timing = timing.WithSubarrays(cfg.Subarrays)
	}
	allPorts := cfg.App.Ports()
	if cfg.Channels < 1 {
		return nil, fmt.Errorf("system: channels must be at least 1, got %d", cfg.Channels)
	}
	if cfg.Channels > len(allPorts) {
		return nil, fmt.Errorf("system: app %s exposes %d memory port(s) but the config asks for %d channels",
			cfg.App.Name, len(allPorts), cfg.Channels)
	}
	chmap, err := mapping.NewChannelMap(cfg.Scheme, cfg.Channels, timing.Banks)
	if err != nil {
		return nil, err
	}
	r := &Runner{
		cfg:    cfg,
		timing: timing,
		ports:  allPorts[:cfg.Channels],
		chmap:  chmap,
		chSent: make([]int64, cfg.Channels),
		chDone: make([]int64, cfg.Channels),
		bySrc:  map[noc.Coord]*coreNI{},
	}
	if r.reqMesh, err = noc.NewMeshVC(cfg.App.Width, cfg.App.Height, cfg.BufFlits, cfg.VirtualChannels); err != nil {
		return nil, err
	}
	if r.respMesh, err = noc.NewMeshVC(cfg.App.Width, cfg.App.Height, cfg.BufFlits, cfg.VirtualChannels); err != nil {
		return nil, err
	}
	if cfg.AdaptiveRouting {
		r.reqMesh.SetRouting(noc.RoutingWestFirst)
		r.respMesh.SetRouting(noc.RoutingWestFirst)
	}
	r.installAllocators()

	// Memory subsystem attachment, one controller/device pair behind each
	// channel's ejection port.
	if !cfg.Scheduler.Valid() {
		return nil, fmt.Errorf("system: unknown scheduler %d", int(cfg.Scheduler))
	}
	r.maxBeats = maxRequestBeats(cfg)
	// The design's page policy (zoo schedulers that keep a windowed
	// pipeline inherit it; DPQ is structurally closed-page).
	policy := memctrl.OpenPage
	if cfg.Design.usesSAGM() {
		policy = memctrl.PartialOpenPage
	}
	if cfg.PagePolicy != nil {
		policy = *cfg.PagePolicy
	}
	memReady := 4
	if cfg.Design.usesMemMax() || cfg.Scheduler != memctrl.SchedDefault {
		memReady = 8
	}
	for ch := 0; ch < cfg.Channels; ch++ {
		ch := ch
		dev, err := dram.NewDevice(timing)
		if err != nil {
			return nil, err
		}
		r.devs = append(r.devs, dev)
		r.memSinks = append(r.memSinks, r.reqMesh.AttachSink(r.ports[ch], 2*cfg.BufFlits, memReady))
		r.respInjs = append(r.respInjs, r.respMesh.AttachInjector(r.ports[ch]))

		onDone := func(c memctrl.Completion) { r.onMemDone(ch, c) }
		var ctrl memctrl.Controller
		switch cfg.Scheduler {
		case memctrl.SchedDPQ:
			ctrl = memctrl.NewDPQ(dev, memctrl.DefaultDPQConfig(len(cfg.App.Cores)), onDone)
		case memctrl.SchedRegulated:
			rc := memctrl.DefaultRegulatorConfig(len(cfg.App.Cores))
			rc.MinBudget = int64(r.maxBeats)
			rc.PipelineDepth = cfg.MemPipeline
			rc.Policy = policy
			ctrl = memctrl.NewRegulator(dev, rc, onDone)
		case memctrl.SchedStaged:
			sc := memctrl.DefaultStagedConfig(len(cfg.App.Cores))
			sc.PipelineDepth = cfg.MemPipeline
			sc.Policy = policy
			ctrl = memctrl.NewStaged(dev, sc, onDone)
		default:
			if cfg.Design.usesMemMax() {
				mm := memctrl.DefaultMemMaxConfig()
				mm.PriorityFirst = cfg.Design == ConvPFS
				// The bus-level scheduler hands one transaction at a time to the
				// controller, whose command look-ahead prepares the next page
				// while the current data transfers (a window of two).
				mm.PipelineDepth = 2
				ctrl = memctrl.NewMemMax(dev, mm, onDone)
			} else {
				ctrl = memctrl.NewSimple(dev, policy, cfg.MemPipeline, onDone)
			}
		}
		r.ctrls = append(r.ctrls, ctrl)
	}

	if cfg.Design.usesSAGM() {
		g := cfg.SplitGranularity
		if g == 0 {
			g = core.SplitGranularity(int(cfg.Gen))
		}
		r.split = &core.Splitter{GranularityBeats: g, Alloc: r.allocPkt}
	}

	// Cores: traffic sources + NIs. In replay mode the recorded requests
	// replace the synthetic generators.
	rng := sim.NewRNG(cfg.Seed)
	var replay map[string][]trace.Record
	if len(cfg.Replay) > 0 {
		replay = trace.SplitByCore(cfg.Replay)
	}
	for _, spec := range cfg.App.Cores {
		ni := &coreNI{
			spec: spec,
			inj:  r.reqMesh.AttachInjector(spec.Pos),
			sink: r.respMesh.AttachSink(spec.Pos, 2*cfg.BufFlits, 16),
		}
		ni.inj.OnFirstFlit = func(p *noc.Packet, now int64) {
			if l := r.parents.get(p.ParentID); l != nil && l.entry < 0 {
				l.entry = now
			}
		}
		if replay != nil {
			ni.gens = append(ni.gens, trace.NewReplayer(replay[spec.Name]))
		} else {
			for _, s := range spec.Streams {
				// Generators walk the global bank space: with C channels of
				// B banks each, banks [0, C*B) spread the streams across
				// every channel; C=1 is exactly the single-device walk.
				g, err := traffic.NewGen(s, cfg.Channels*timing.Banks, appmodel.RowBeats, cfg.PriorityDemand, sim.NewRNG(rng.Uint64()))
				if err != nil {
					return nil, err
				}
				ni.gens = append(ni.gens, g)
			}
		}
		r.cores = append(r.cores, ni)
		r.bySrc[spec.Pos] = ni
		r.coreStats = append(r.coreStats, CoreStats{Name: spec.Name})
	}
	r.stalls = make([]int64, len(r.cores))
	if cfg.Checked {
		r.installChecks()
	}
	r.buildKernel()
	if os.Getenv("AANOC_NO_IDLE_SKIP") != "" {
		// Escape hatch (and CI equivalence gate): tick every cycle even
		// when every component sleeps. Results are identical either way.
		r.kern.SetIdleSkip(false)
	}
	if f := os.Getenv("AANOC_INJECT_FAULT"); f != "" {
		// Mutation knob for the CLI-level fault-injection tests: arm one
		// device fault on every channel so an end-to-end run can prove
		// checked mode turns the breach into a non-zero exit.
		var fault dram.Fault
		switch f {
		case "slow-cas":
			fault = dram.FaultSlowCAS
		case "skip-trcd":
			fault = dram.FaultSkipTRCD
		case "skip-tfaw":
			fault = dram.FaultSkipTFAW
		default:
			return nil, fmt.Errorf("system: unknown AANOC_INJECT_FAULT %q", f)
		}
		for _, d := range r.devs {
			d.InjectFault(fault)
		}
	}
	return r, nil
}

// maxRequestBeats returns the largest single-request beat count the
// resolved workload can present: the max over the replay records in
// replay mode, over every stream's burst-size menu otherwise. It feeds
// the DPQ WCET bound (the worst-case interference unit) and the
// regulator's budget floor.
func maxRequestBeats(cfg Config) int {
	m := 1
	if len(cfg.Replay) > 0 {
		for _, rec := range cfg.Replay {
			if rec.Beats > m {
				m = rec.Beats
			}
		}
		return m
	}
	for _, c := range cfg.App.Cores {
		for _, s := range c.Streams {
			for _, b := range s.Beats {
				if b > m {
					m = b
				}
			}
		}
	}
	return m
}

// installAllocators sets every router output's flow-control policy
// according to the design and the Fig. 8 GSS-router count.
func (r *Runner) installAllocators() {
	cfg := r.cfg
	// Response mesh: priority-first round-robin everywhere — without
	// priority flags (Table I runs, CONV/[4] baselines) this is plain
	// round-robin; with them, read data for priority requests overtakes
	// best-effort responses at every merge, the return half of the
	// guaranteed service.
	for _, rt := range r.respMesh.Routers {
		rt.SetAllAllocators(func(int) noc.Allocator {
			return &router.PriorityFirst{Inner: &router.RoundRobin{}}
		})
	}
	gssSet := map[noc.Coord]bool{}
	if cfg.Design.usesGSSEngine() {
		order := mapping.RoutersByPortDistance(cfg.App.Width, cfg.App.Height, r.ports)
		n := cfg.GSSRouters
		switch {
		case n == 0 || n > len(order):
			n = len(order)
		case n < 0:
			n = 0
		}
		for _, c := range order[:n] {
			gssSet[c] = true
		}
	}
	sti := core.STIParams{}
	if cfg.Design.usesSTI() {
		sti = core.STIParams{
			Enabled:   true,
			WriteIdle: r.timing.TWR + r.timing.TRP,
			ReadIdle:  r.timing.TRP,
		}
	}
	gssCfg := core.Config{Banks: r.timing.Banks, Subarrays: r.timing.Subarrays, STI: sti}
	gssCfg.PCT = cfg.Design.pctFor(cfg.PCT, gssCfg.MaxTokens())
	for _, rt := range r.reqMesh.Routers {
		switch {
		case gssSet[rt.Pos]:
			rt.SetAllAllocators(func(int) noc.Allocator {
				g := core.MustNew(gssCfg)
				r.gssAllocs = append(r.gssAllocs, g)
				return g
			})
		case cfg.Design.priorityFirstNet() || cfg.Design.usesGSSEngine():
			// Non-GSS routers in a priority design (and the Fig. 8
			// baseline remainder) are priority-first round-robin.
			rt.SetAllAllocators(func(int) noc.Allocator {
				return &router.PriorityFirst{Inner: &router.RoundRobin{}}
			})
		default:
			rt.SetAllAllocators(func(int) noc.Allocator { return &router.RoundRobin{} })
		}
	}
}

// allocPkt leases a packet from the free-list (or allocates the pool's
// first copies). Callers overwrite every field, so no zeroing on lease.
func (r *Runner) allocPkt() *noc.Packet {
	if n := len(r.pktFree); n > 0 {
		p := r.pktFree[n-1]
		r.pktFree = r.pktFree[:n-1]
		return p
	}
	return new(noc.Packet)
}

// freePkt returns a packet to the free-list. The caller asserts nothing
// holds the pointer any more: the packet has left both meshes and the
// controller, and all retained history (controller `last`, GSS state) is
// by value. Zeroed so a stale read after recycling is loud, not subtle.
func (r *Runner) freePkt(p *noc.Packet) {
	*p = noc.Packet{}
	r.pktFree = append(r.pktFree, p)
}

// allocLogical / freeLogical pool the split-chain bookkeeping records the
// same way (one per logical request, recycled at completion).
func (r *Runner) allocLogical() *logical {
	if n := len(r.logFree); n > 0 {
		l := r.logFree[n-1]
		r.logFree = r.logFree[:n-1]
		return l
	}
	return new(logical)
}

func (r *Runner) freeLogical(l *logical) {
	*l = logical{}
	r.logFree = append(r.logFree, l)
}

// onMemDone handles a controller completion on one channel: writes
// complete the split immediately; reads send a response packet back
// through the response mesh from the channel's port. Either way the
// request packet is finished with and returns to the pool.
func (r *Runner) onMemDone(ch int, c memctrl.Completion) {
	r.chDone[ch]++
	p := c.Pkt
	if p.Kind == noc.Write {
		r.completeSplit(p, c.At)
		r.freePkt(p)
		return
	}
	r.nextID++
	resp := r.allocPkt()
	*resp = noc.Packet{
		ID: r.nextID, ParentID: p.ParentID,
		SrcCore: p.SrcCore, Src: r.ports[ch], Dst: p.Src,
		Kind: noc.Read, Class: p.Class, Priority: p.Priority,
		Addr: p.Addr, Beats: p.Beats,
		Flits: noc.FlitsForBeats(p.Beats), Splits: p.Splits,
		Gen: p.Gen, Response: true,
	}
	r.freePkt(p)
	r.respInjs[ch].Enqueue(resp)
	// Completions fire in the MemTick phase; the response injector's
	// Inject slot is later this same cycle, as in the monolithic step.
	r.hRespInjs[ch].Wake(r.kern.Now())
}

// completeSplit retires one split of a logical request; the last one
// records the latency sample and unblocks a closed-loop stream.
func (r *Runner) completeSplit(p *noc.Packet, at int64) {
	l := r.parents.get(p.ParentID)
	if l == nil {
		return
	}
	l.pending--
	if l.pending > 0 {
		return
	}
	r.parents.del(p.ParentID)
	if l.core >= 0 && l.core < len(r.coreStats) {
		cs := &r.coreStats[l.core]
		cs.Completed++
		cs.Beats += int64(l.beats)
		cs.LatencySum += at - l.gen
	}
	if l.gen >= r.cfg.Warmup {
		entry := l.entry
		if entry < 0 {
			entry = l.gen
		}
		r.met.Record(at-entry, l.class == noc.ClassDemand, l.priority, l.read)
		r.met.SourceLatency.Add(at - l.gen)
	} else {
		r.met.Completed++
	}
	l.stream.OnComplete(at)
	// The completion refills a closed-loop window: the stream can
	// generate no earlier than next cycle (think time is at least one),
	// so wake the core's injection component then and let its NextWake
	// refine the estimate.
	if l.core >= 0 && l.core < len(r.hInject) {
		r.hInject[l.core].Wake(r.kern.Now() + 1)
	}
	r.freeLogical(l)
}

// Step advances the whole system one memory clock cycle: every awake
// component ticks in kernel phase order. Cycle-stepping callers visit
// every cycle; RunTo additionally fast-forwards over all-idle spans.
func (r *Runner) Step() { r.kern.Step() }

// RunTo advances the simulation to the given cycle, skipping spans
// where every component sleeps (unless idle-skip is disabled).
func (r *Runner) RunTo(cycle int64) { r.kern.RunUntil(cycle) }

// SetIdleSkip toggles fast-forwarding over all-idle cycles in RunTo.
// On (the default) and off produce identical results; off is the
// reference mode the equivalence tests and the AANOC_NO_IDLE_SKIP
// environment knob select.
func (r *Runner) SetIdleSkip(on bool) { r.kern.SetIdleSkip(on) }

// sample appends one time-series point at the given cycle, covering the
// window of the last interval cycles.
func (r *Runner) sample(cycle, interval int64) {
	queued := 0
	for _, c := range r.cores {
		queued += c.inj.QueueFlits()
	}
	var dc int64
	ready := 0
	for ch := range r.devs {
		dc += r.devs[ch].Stats().DataCycles
		ready += r.memSinks[ch].Ready()
	}
	// Multi-channel windows report the mean per-channel utilization, so
	// the [0,1] bound holds at any channel count.
	r.samples = append(r.samples, obs.Sample{
		Cycle:       cycle,
		Utilization: float64(dc-r.lastSampleD) / float64(interval*int64(len(r.devs))),
		Outstanding: r.parents.Len(),
		QueueFlits:  queued,
		MemReady:    ready,
	})
	r.lastSampleD = dc
}

// injectLogical packetises a logical request (splitting under SAGM) and
// queues the packets for injection.
func (r *Runner) injectLogical(c *coreNI, g traffic.Source, req *traffic.Request, now int64) {
	if r.cfg.Trace != nil {
		if err := r.cfg.Trace.Write(trace.FromRequest(now, c.spec.Name, req)); err != nil {
			panic(fmt.Sprintf("system: trace capture failed: %v", err))
		}
	}
	// Route the request to its owning channel before splitting: SAGM
	// splits never cross a row, so the whole split chain shares one
	// channel, and the packets carry the channel-local address the
	// owning device decodes. Single-channel routing is the identity.
	ch, local := r.chmap.Route(req.Addr)
	r.nextID++
	base := r.allocPkt()
	*base = noc.Packet{
		ID: r.nextID, ParentID: r.nextID,
		SrcCore: indexOf(r.cores, c), Src: c.spec.Pos, Dst: r.ports[ch],
		Kind: req.Kind, Class: req.Class, Priority: req.Priority,
		Addr: local, Beats: req.Beats, Gen: now,
		APTag: req.EndOfRow || r.cfg.TagEveryRequest,
	}
	var pkts []*noc.Packet
	if r.split != nil {
		var err error
		pkts, err = r.split.Split(base, func() int64 { r.nextID++; return r.nextID })
		if err != nil {
			panic(fmt.Sprintf("system: split failed: %v", err))
		}
	} else {
		pkts = core.NoSplit(base)
	}
	l := r.allocLogical()
	*l = logical{
		gen: now, entry: -1, stream: g, class: req.Class, priority: req.Priority,
		read: req.Kind == noc.Read, pending: len(pkts),
		core: base.SrcCore, beats: req.Beats,
	}
	r.parents.put(base.ID, l)
	r.met.Generated++
	r.chSent[ch] += int64(len(pkts))
	if r.genPerCore != nil && base.SrcCore >= 0 {
		r.genPerCore[base.SrcCore]++
	}
	// A write split under SAGM replaces the base packet with per-granule
	// copies; the base itself never enters the mesh, so recycle it now
	// (its ID lives on as the chain's ParentID key, which is by value).
	if len(pkts) > 0 && pkts[0] != base {
		r.freePkt(base)
	}
	for _, p := range pkts {
		c.inj.Enqueue(p)
	}
}

func indexOf(cores []*coreNI, c *coreNI) int {
	for i, x := range cores {
		if x == c {
			return i
		}
	}
	return -1
}

// Metrics exposes the accumulating measurements (examples, tests).
func (r *Runner) Metrics() *stats.Metrics { return &r.met }

// Device exposes channel 0's DRAM device (examples, tests; the only
// device single-channel).
func (r *Runner) Device() *dram.Device { return r.devs[0] }

// Devices exposes every channel's DRAM device, in channel order.
func (r *Runner) Devices() []*dram.Device { return r.devs }

// aggStats sums the device counters over every channel. Single-channel
// it is exactly the one device's stats.
func (r *Runner) aggStats() dram.Stats {
	var st dram.Stats
	for _, d := range r.devs {
		s := d.Stats()
		st.Activates += s.Activates
		st.Reads += s.Reads
		st.Writes += s.Writes
		st.Precharges += s.Precharges
		st.AutoPre += s.AutoPre
		st.Refreshes += s.Refreshes
		st.DataCycles += s.DataCycles
		st.BurstsBL += s.BurstsBL
		st.UsefulBeats += s.UsefulBeats
	}
	return st
}

// utilization returns the mean per-channel data-bus utilization (the
// single device's utilization when single-channel).
func (r *Runner) utilization(now int64) float64 {
	var u float64
	for _, d := range r.devs {
		u += d.Utilization(now)
	}
	return u / float64(len(r.devs))
}

// Now returns the current cycle.
func (r *Runner) Now() int64 { return r.kern.Now() }

// Finish assembles the Result after the run.
func (r *Runner) Finish() Result {
	cfg := r.cfg
	now := r.kern.Now()
	// Settle the device through the last simulated cycle: the controller
	// may have slept through the run's tail, leaving auto-precharges
	// pending that the old every-cycle tick would have retired.
	if now > 0 {
		for _, d := range r.devs {
			d.Sync(now - 1)
		}
	}
	st := r.aggStats()
	r.met.Cycles = now
	res := Result{
		Design: cfg.Design, App: cfg.App.Name, Gen: cfg.Gen, ClockMHz: cfg.ClockMHz,
		Scheduler:   cfg.Scheduler,
		Channels:    cfg.Channels,
		Cycles:      now,
		Utilization: r.utilization(now),
		LatAll:      r.met.All.Mean(),
		LatDemand:   r.met.Demand.Mean(),
		LatPriority: r.met.Priority.Mean(),
		LatBest:     r.met.Best.Mean(),
		P95All:      r.met.All.Percentile(95),
		Generated:   r.met.Generated,
		Completed:   r.met.Completed,
		Device:      st,
		CmdCycles:   st.Activates + st.Reads + st.Writes + st.Precharges + st.Refreshes,
	}
	if st.BurstsBL > 0 {
		res.WasteFrac = float64(st.BurstsBL-st.UsefulBeats) / float64(st.BurstsBL)
	}
	for _, rt := range r.reqMesh.Routers {
		for p := 0; p < noc.NumPorts; p++ {
			res.NetBusyCycles += rt.Out[p].BusyCycles
		}
	}
	for _, g := range r.gssAllocs {
		res.GSSGrants += g.Scheduled
	}
	res.PerCore = append(res.PerCore, r.coreStats...)
	res.Fairness = jain(r.coreStats)
	res.Obs = r.buildReport()
	if r.chk != nil {
		r.finalChecks(res.Obs)
	}
	return res
}

// buildReport assembles the observability report from the counters the
// substrates maintained during the run.
func (r *Runner) buildReport() *obs.Report {
	cfg := r.cfg
	sched := ""
	if cfg.Scheduler != memctrl.SchedDefault {
		sched = cfg.Scheduler.String()
	}
	rep := &obs.Report{
		SchemaVersion: obs.Schema,
		Design:        cfg.Design.String(), App: cfg.App.Name, Gen: int(cfg.Gen),
		ClockMHz: cfg.ClockMHz, Cycles: r.kern.Now(), Warmup: max(cfg.Warmup, 0), Seed: cfg.Seed,
		Scheduler:   sched,
		Generated:   r.met.Generated,
		Completed:   r.met.Completed,
		Stalled:     r.met.Stalled,
		Utilization: r.utilization(r.kern.Now()),
		Latency: obs.Latencies{
			All:      r.met.All.Summarize(),
			Demand:   r.met.Demand.Summarize(),
			Priority: r.met.Priority.Summarize(),
			Best:     r.met.Best.Summarize(),
			Reads:    r.met.Reads.Summarize(),
			Writes:   r.met.Writes.Summarize(),
			Source:   r.met.SourceLatency.Summarize(),
		},
		Network: obs.Network{
			Request:  meshStats(r.reqMesh, r.kern.Now()),
			Response: meshStats(r.respMesh, r.kern.Now()),
		},
		SampleEvery: cfg.SampleEvery,
		Samples:     r.samples,
	}
	for i, c := range r.cores {
		rep.NIs = append(rep.NIs, obs.NI{
			Core:          c.spec.Name,
			QueueFlitsHWM: c.inj.QueueFlitsHWM(),
			StallCycles:   r.stalls[i],
			SinkReadyHWM:  c.sink.ReadyHWM(),
		})
	}
	r.buildMemoryReport(rep)
	if cfg.WorkloadStats {
		r.buildWorkloadReport(rep)
	}
	return rep
}

// buildWorkloadReport fills the per-stream production breakdown from the
// generators' own counters, in core then stream order. Replay-mode runs
// (trace sources, not synthetic generators) contribute nothing.
func (r *Runner) buildWorkloadReport(rep *obs.Report) {
	for _, c := range r.cores {
		for _, src := range c.gens {
			g, ok := src.(*traffic.Gen)
			if !ok {
				continue
			}
			w := obs.StreamWorkload{
				Core: c.spec.Name, Stream: g.Spec.Name,
				Produced: g.Produced, Reads: g.Reads, Writes: g.Writes,
				BlockedCycles: g.Blocked,
			}
			menu, counts := g.BeatHistogram()
			for i, b := range menu {
				w.Beats = append(w.Beats, obs.BeatBin{Beats: b, Count: counts[i]})
			}
			rep.Workload = append(rep.Workload, w)
		}
	}
}

// buildMemoryReport fills the memory-subsystem section. The flat fields
// aggregate across channels — byte-identical to the single-SDRAM schema
// at Channels=1 — and multi-channel runs additionally carry the
// per-channel detail plus the load-imbalance factor.
func (r *Runner) buildMemoryReport(rep *obs.Report) {
	now := r.kern.Now()
	banks := make([]obs.BankStat, r.timing.Banks)
	for i := range banks {
		banks[i].Bank = i
	}
	var stream *obs.StreamQuality
	for ch := range r.devs {
		if h := r.memSinks[ch].ReadyHWM(); h > rep.Memory.SinkReadyHWM {
			rep.Memory.SinkReadyHWM = h
		}
		for i, b := range r.devs[ch].BankCounters() {
			banks[i].Activates += b.Activates
			banks[i].Reads += b.Reads
			banks[i].Writes += b.Writes
			banks[i].RowHits += b.RowHits
			banks[i].Precharges += b.Precharges
			banks[i].AutoPre += b.AutoPre
		}
		if s, ok := r.ctrls[ch].(*memctrl.Simple); ok {
			if stream == nil {
				stream = &obs.StreamQuality{}
			}
			stream.RowHits += s.StreamStats.RowHits
			stream.Interleaves += s.StreamStats.Interleaves
			stream.Conflicts += s.StreamStats.Conflicts
			stream.Contentions += s.StreamStats.Contentions
		}
	}
	rep.Memory.Banks = banks
	rep.Memory.Stream = stream
	r.buildSchedulerReport(rep)
	if len(r.devs) == 1 {
		return
	}
	var busiest, total int64
	for ch := range r.devs {
		cs := obs.ChannelStat{
			Channel:      ch,
			Port:         r.ports[ch].String(),
			Utilization:  r.devs[ch].Utilization(now),
			DataCycles:   r.devs[ch].Stats().DataCycles,
			Splits:       r.chSent[ch],
			Completions:  r.chDone[ch],
			SinkReadyHWM: r.memSinks[ch].ReadyHWM(),
		}
		for i, b := range r.devs[ch].BankCounters() {
			cs.Banks = append(cs.Banks, obs.BankStat{
				Bank: i, Activates: b.Activates, Reads: b.Reads, Writes: b.Writes,
				RowHits: b.RowHits, Precharges: b.Precharges, AutoPre: b.AutoPre,
			})
		}
		if s, ok := r.ctrls[ch].(*memctrl.Simple); ok {
			cs.Stream = &obs.StreamQuality{
				RowHits:     s.StreamStats.RowHits,
				Interleaves: s.StreamStats.Interleaves,
				Conflicts:   s.StreamStats.Conflicts,
				Contentions: s.StreamStats.Contentions,
			}
		}
		if cs.DataCycles > busiest {
			busiest = cs.DataCycles
		}
		total += cs.DataCycles
		rep.Memory.Channels = append(rep.Memory.Channels, cs)
	}
	// Imbalance accompanies every channel breakdown — including the
	// perfectly balanced and the idle (0) cases, which the old omitempty
	// float64 silently dropped from the JSON sidecar.
	var imb float64
	if total > 0 {
		mean := float64(total) / float64(len(r.devs))
		imb = float64(busiest) / mean
	}
	rep.Memory.Imbalance = &imb
}

// buildSchedulerReport fills the per-scheduler decision breakdown,
// aggregated across channels (absent for the default controllers, so
// pre-zoo sidecars stay byte-identical).
func (r *Runner) buildSchedulerReport(rep *obs.Report) {
	if r.cfg.Scheduler == memctrl.SchedDefault {
		return
	}
	st := &obs.SchedulerStat{Name: r.cfg.Scheduler.String()}
	for _, ctrl := range r.ctrls {
		switch c := ctrl.(type) {
		case *memctrl.DPQ:
			st.Grants += c.Stats.Grants
			if c.Stats.MaxBacklog > st.MaxBacklog {
				st.MaxBacklog = c.Stats.MaxBacklog
			}
		case *memctrl.Regulator:
			st.Grants += c.Stats.Grants
			st.Throttled += c.Stats.Throttled
			st.WindowRolls += c.Stats.WindowRolls
		case *memctrl.Staged:
			st.Grants += c.Stats.LightGrants + c.Stats.HeavyGrants
			st.LightGrants += c.Stats.LightGrants
			st.HeavyGrants += c.Stats.HeavyGrants
			st.Reclassifications += c.Stats.Reclassifications
		}
	}
	for _, m := range r.dpqMons {
		st.WCETChecked += m.Checked
	}
	rep.Memory.Scheduler = st
}

// meshStats flattens one mesh's connected output ports, in router-index
// then port order, and totals their activity.
func meshStats(m *noc.Mesh, cycles int64) obs.MeshStats {
	var ms obs.MeshStats
	for _, rt := range m.Routers {
		for p := 0; p < noc.NumPorts; p++ {
			o := rt.Out[p]
			if !o.Connected() {
				continue
			}
			util := 0.0
			if cycles > 0 {
				util = float64(o.BusyCycles) / float64(cycles)
			}
			ms.BusyCycles += o.BusyCycles
			ms.Links = append(ms.Links, obs.LinkStat{
				Router:      rt.Pos.String(),
				Port:        noc.PortName(p),
				BusyCycles:  o.BusyCycles,
				Grants:      o.Grants,
				Utilization: util,
			})
		}
	}
	return ms
}

// jain computes Jain's fairness index over per-core served beats.
func jain(cs []CoreStats) float64 {
	var sum, sumSq float64
	n := 0
	for _, c := range cs {
		x := float64(c.Beats)
		sum += x
		sumSq += x * x
		n++
	}
	if n == 0 || sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(n) * sumSq)
}

// Run executes a complete simulation for the configuration.
func Run(cfg Config) (Result, error) {
	r, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	r.RunTo(r.cfg.Cycles)
	return r.Finish(), nil
}

// runEpoch is the cancellation granularity of RunContext: the kernel
// advances in epochs of this many cycles, checking the context between
// them. RunUntil chunking is observably idempotent, so epoch runs
// produce bit-identical results to one uninterrupted RunTo.
const runEpoch = 16384

// RunContext executes a complete simulation, honouring cancellation
// between kernel epochs. A cancelled run returns the context's error
// and no result; an uncancelled run is identical to Run.
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	r, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	for r.Now() < r.cfg.Cycles {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		next := r.Now() + runEpoch
		if next > r.cfg.Cycles {
			next = r.cfg.Cycles
		}
		r.RunTo(next)
	}
	return r.Finish(), nil
}
