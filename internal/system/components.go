package system

import (
	"fmt"

	"aanoc/internal/noc"
	"aanoc/internal/sim"
)

// comp adapts a closure pair to sim.Component: the pieces of the old
// monolithic Runner.Step become named components, one per phase slot.
type comp struct {
	name  string
	phase sim.Phase
	tick  func(now int64)
	next  func(now int64) int64
}

func (c *comp) Name() string             { return c.name }
func (c *comp) Phase() sim.Phase         { return c.phase }
func (c *comp) Tick(now int64)           { c.tick(now) }
func (c *comp) NextWake(now int64) int64 { return c.next(now) }

// buildKernel registers the wired subsystems with a fresh simulation
// kernel. Phase order plus registration order reproduce the exact
// intra-cycle sequence of the pre-kernel monolithic Step:
//
//	Deliver   req links, resp links
//	Arbitrate req routers, resp routers
//	Admit     memory sink drain + controller admission
//	MemTick   memory controller
//	Complete  per-core response sink drain + split retirement
//	Inject    response injector, then per-core generation + injection
//	Audit     observability sampling, checked-mode mesh audits
//
// (The old Step drained core sinks before the controller ticked and
// retired splits after; both halves touch disjoint state — the resp
// mesh's sinks versus the request pipeline — so folding them into one
// Complete component after MemTick is order-equivalent.)
//
// Each component's NextWake gives the activity-driven idle-skip its
// soundness: a component only sleeps through cycles its tick provably
// would not change state, and every producer of cross-component input
// wakes the consumer's handle.
func (r *Runner) buildKernel() {
	k := sim.NewKernel()
	r.kern = k

	regMesh := func(name string, m *noc.Mesh) {
		next := func(now int64) int64 {
			if m.Activity() > 0 {
				return now + 1
			}
			return sim.Never
		}
		hd := k.Register(&comp{name: name + "-links", phase: sim.PhaseDeliver, tick: m.Deliver, next: next})
		ha := k.Register(&comp{name: name + "-routers", phase: sim.PhaseArbitrate, tick: m.Arbitrate, next: next})
		m.OnWake = func() {
			// Work appears outside the mesh's own phases (an injector
			// launch, a sink credit return), so this cycle's Deliver and
			// Arbitrate have already run: deliver it next cycle, exactly
			// when the always-ticked mesh would have.
			at := k.Now() + 1
			hd.Wake(at)
			ha.Wake(at)
		}
	}
	regMesh("req", r.reqMesh)
	regMesh("resp", r.respMesh)

	// chName suffixes a component name with its channel on multi-channel
	// runs only, so single-channel kernels keep the seed's exact names.
	chName := func(base string, ch int) string {
		if len(r.devs) == 1 {
			return base
		}
		return fmt.Sprintf("%s/ch%d", base, ch)
	}

	for ch := range r.devs {
		ch := ch
		sink, ctrl := r.memSinks[ch], r.ctrls[ch]
		hAdmit := k.Register(&comp{
			name: chName("mem-admit", ch), phase: sim.PhaseAdmit,
			tick: func(now int64) {
				sink.Step(now)
				for {
					p := sink.Peek()
					if p == nil || !ctrl.Offer(p, now) {
						break
					}
					sink.Pop(now)
					// The controller must see the admission this cycle. (A
					// refused Offer needs no wake: every refusal reason —
					// refresh drain, a full window, a backlogged thread
					// queue — implies the controller is already awake.)
					r.hMems[ch].Wake(now)
				}
			},
			next: func(now int64) int64 {
				if sink.Occupied() > 0 || sink.Ready() > 0 {
					return now + 1
				}
				return sim.Never
			},
		})
		sink.OnArrival = func(now int64) { hAdmit.Wake(now) }
	}

	for ch := range r.devs {
		ctrl := r.ctrls[ch]
		r.hMems = append(r.hMems, k.Register(&comp{
			name: chName("memctrl", ch), phase: sim.PhaseMemTick,
			tick: func(now int64) { ctrl.Tick(now) },
			next: ctrl.NextEvent,
		}))
	}

	for _, c := range r.cores {
		c := c
		hc := k.Register(&comp{
			name: "core-complete/" + c.spec.Name, phase: sim.PhaseComplete,
			tick: func(now int64) {
				c.sink.Step(now)
				for {
					p := c.sink.Pop(now)
					if p == nil {
						break
					}
					r.completeSplit(p, now)
					// The response packet's journey ends here; recycle it.
					r.freePkt(p)
				}
			},
			next: func(now int64) int64 {
				if c.sink.Occupied() > 0 || c.sink.Ready() > 0 {
					return now + 1
				}
				return sim.Never
			},
		})
		c.sink.OnArrival = func(now int64) { hc.Wake(now) }
	}

	for ch := range r.devs {
		inj := r.respInjs[ch]
		r.hRespInjs = append(r.hRespInjs, k.Register(&comp{
			name: chName("resp-inject", ch), phase: sim.PhaseInject,
			tick: func(now int64) { inj.Step(now) },
			next: func(now int64) int64 {
				if inj.QueueLen() > 0 {
					return now + 1
				}
				return sim.Never
			},
		}))
	}

	for i, c := range r.cores {
		i, c := i, c
		h := k.Register(&comp{
			name: "core-inject/" + c.spec.Name, phase: sim.PhaseInject,
			tick: func(now int64) {
				blocked := c.inj.QueueFlits() >= r.cfg.InjectCap
				if blocked {
					// The injection backpressure point: this core's
					// generators lose the cycle. Counted once per core per
					// cycle — a backlogged injector keeps the component
					// awake, so no stall cycle is skipped.
					r.met.Stalled++
					r.stalls[i]++
				}
				for _, g := range c.gens {
					req := g.Tick(now, blocked)
					if req == nil {
						continue
					}
					r.injectLogical(c, g, req, now)
				}
				c.inj.Step(now)
			},
			next: func(now int64) int64 {
				if c.inj.QueueFlits() > 0 {
					return now + 1
				}
				next := sim.Never
				for _, g := range c.gens {
					if a := g.NextArrival(); a < next {
						next = a
					}
				}
				return next
			},
		})
		r.hInject = append(r.hInject, h)
	}

	if se := r.cfg.SampleEvery; se > 0 {
		k.Register(&comp{
			name: "obs-sample", phase: sim.PhaseAudit,
			tick: func(now int64) {
				if (now+1)%se == 0 {
					r.sample(now+1, se)
				}
			},
			next: func(now int64) int64 {
				// The smallest n > now with (n+1) divisible by se: sampling
				// windows close on exact cycles even across skipped gaps.
				return (now+1+se)/se*se - 1
			},
		})
	}

	if r.chk != nil {
		// Checked mode audits every settled cycle, which also pins the
		// kernel to visit every cycle — the conservation walks are
		// per-cycle invariants, not samplable ones.
		k.Register(&comp{
			name: "check-audit", phase: sim.PhaseAudit,
			tick: func(now int64) { r.auditMeshes(now) },
			next: func(now int64) int64 { return now + 1 },
		})
	}
}
