package system

import (
	"math/rand"
	"reflect"
	"testing"

	"aanoc/internal/appmodel"
	"aanoc/internal/dram"
	"aanoc/internal/memctrl"
)

// TestCheckedCleanAcrossDesigns runs every design point under the full
// invariant layer in panic mode: any protocol or conservation breach
// fails the test at its cycle, and a clean run must report Checked with
// an empty violation list.
func TestCheckedCleanAcrossDesigns(t *testing.T) {
	for _, d := range Designs() {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			res, err := Run(Config{
				App: appmodel.BluRay(), Gen: dram.DDR2, Design: d,
				Cycles: 8_000, Seed: 5, PriorityDemand: true,
				CheckedPanic: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Obs.Checked {
				t.Error("report of a checked run not marked Checked")
			}
			if len(res.Obs.Violations) != 0 {
				t.Errorf("violations on a clean run: %v", res.Obs.Violations)
			}
			if err := res.Obs.Validate(); err != nil {
				t.Errorf("checked report invalid: %v", err)
			}
		})
	}
}

// TestCheckedDoesNotPerturbResults: the monitors only observe — a
// checked run must produce exactly the measurements of an unchecked run
// of the same configuration.
func TestCheckedDoesNotPerturbResults(t *testing.T) {
	base := Config{
		App: appmodel.DualDTV(), Gen: dram.DDR3, Design: GSSSAGMSTI,
		Cycles: 10_000, Seed: 21, PriorityDemand: true,
	}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	chk := base
	chk.Checked = true
	checked, err := Run(chk)
	if err != nil {
		t.Fatal(err)
	}
	// The observability reports legitimately differ in the Checked flag;
	// everything else must match byte for byte.
	plain.Obs.Checked, checked.Obs.Checked = false, false
	if !reflect.DeepEqual(plain, checked) {
		t.Error("checked run diverged from unchecked run of the same config")
	}
}

// TestCheckedPropertyRandomConfigs drives randomized configurations
// through checked panic mode: whatever the knob combination, the
// invariants must hold. The rand seed is fixed, so the sampled grid is
// deterministic.
func TestCheckedPropertyRandomConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	apps := appmodel.Apps()
	gens := dram.Generations()
	designs := Designs()
	for i := 0; i < 12; i++ {
		cfg := Config{
			App:             apps[rng.Intn(len(apps))],
			Gen:             gens[rng.Intn(len(gens))],
			Subarrays:       []int{0, 0, 2, 4}[rng.Intn(4)],
			Design:          designs[rng.Intn(len(designs))],
			PCT:             1 + rng.Intn(5),
			Cycles:          2_000 + int64(rng.Intn(2_000)),
			Seed:            rng.Uint64(),
			BufFlits:        []int{4, 8}[rng.Intn(2)],
			VirtualChannels: 1 + rng.Intn(2),
			PriorityDemand:  rng.Intn(2) == 0,
			TagEveryRequest: rng.Intn(2) == 0,
			AdaptiveRouting: rng.Intn(2) == 0,
			SampleEvery:     int64(rng.Intn(2)) * 500,
			Scheduler:       memctrl.Scheduler(rng.Intn(4)),
			CheckedPanic:    true,
		}
		t.Run(cfg.Design.String()+"/"+cfg.App.Name, func(t *testing.T) {
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Obs.Violations) != 0 {
				t.Errorf("violations: %v", res.Obs.Violations)
			}
		})
	}
}

// TestCheckedMutationCatchesSkippedTRCD is the mutation smoke test: arm
// the device fault that skips the tRCD legality check, run a normal
// workload, and require the conformance monitor to flag the early CAS
// commands the broken fast path now lets through. If this test fails,
// checked mode is vacuous.
func TestCheckedMutationCatchesSkippedTRCD(t *testing.T) {
	r, err := New(Config{
		App: appmodel.BluRay(), Gen: dram.DDR2, Design: GSS,
		Cycles: 6_000, Seed: 3, PriorityDemand: true,
		Checked: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Device().InjectFault(dram.FaultSkipTRCD)
	for i := int64(0); i < 6_000; i++ {
		r.Step()
	}
	res := r.Finish()
	found := false
	for _, v := range res.Obs.Violations {
		if v.Component == "dram" && v.Kind == "tRCD" {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("monitor missed the injected tRCD bug; violations: %v", res.Obs.Violations)
	}
}
