package system

import (
	"testing"

	"aanoc/internal/appmodel"
	"aanoc/internal/dram"
	"aanoc/internal/obs"
)

// The deep-DRAM acceptance tests: the new generations run clean under
// the independent conformance monitor, and subarray mode actually buys
// the open-row hits it exists for.

// TestCheckedCleanOnNewGenerations: DDR4 (bank groups, tCCD_L/S,
// tRRD_L/S) and LPDDR3 run under the full invariant layer in panic
// mode, with and without subarray row buffers — the differential check
// between device and monitor, both re-deriving the group/subarray rules
// independently.
func TestCheckedCleanOnNewGenerations(t *testing.T) {
	cases := []struct {
		name string
		gen  dram.Generation
		subs int
	}{
		{"ddr4", dram.DDR4, 0},
		{"ddr4-subarrays", dram.DDR4, 4},
		{"lpddr3", dram.LPDDR3, 0},
		{"ddr2-subarrays", dram.DDR2, 4},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			for _, d := range []Design{Conv, GSSSAGM, GSSSAGMSTI} {
				res, err := Run(Config{
					App: appmodel.BluRay(), Gen: c.gen, Design: d,
					Subarrays: c.subs,
					Cycles:    8_000, Seed: 5, PriorityDemand: true,
					CheckedPanic: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Obs.Checked {
					t.Errorf("%s: report not marked Checked", d)
				}
				if len(res.Obs.Violations) != 0 {
					t.Errorf("%s: violations on a clean run: %v", d, res.Obs.Violations)
				}
				if res.Completed == 0 {
					t.Errorf("%s: no requests completed", d)
				}
			}
		})
	}
}

// rowHitRate is the fraction of column commands that hit an open row
// buffer, aggregated over the per-bank breakdown.
func rowHitRate(rep *obs.Report) float64 {
	var hits, cols int64
	for _, b := range rep.Memory.Banks {
		hits += b.RowHits
		cols += b.Reads + b.Writes
	}
	if cols == 0 {
		return 0
	}
	return float64(hits) / float64(cols)
}

// TestSubarraysRaiseRowHitRate is the tentpole's payoff assertion: on
// the scaled quad-DTV workload, giving each bank MASA-style subarray
// row buffers must measurably raise the open-row hit rate over the
// bank-granular device — same application, same design, same seed.
func TestSubarraysRaiseRowHitRate(t *testing.T) {
	// The conventional design has no SDRAM-aware reordering to hide bank
	// conflicts, so the subarray buffers' contribution shows cleanly.
	base := Config{
		App: appmodel.QuadDTV(), Gen: dram.DDR2, Design: Conv,
		Cycles: 30_000, Seed: 11, PriorityDemand: true,
	}
	flat, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	salp := base
	salp.Subarrays = 4
	masa, err := Run(salp)
	if err != nil {
		t.Fatal(err)
	}
	fr, mr := rowHitRate(flat.Obs), rowHitRate(masa.Obs)
	t.Logf("row-hit rate: bank-granular %.4f, 4 subarrays %.4f", fr, mr)
	if mr-fr < 0.01 {
		t.Fatalf("subarray row-hit gain below 1%%: %.4f -> %.4f", fr, mr)
	}
	if masa.Utilization <= flat.Utilization {
		t.Errorf("subarrays did not raise utilization: %.3f -> %.3f",
			flat.Utilization, masa.Utilization)
	}
}

// TestSubarraysZeroIsDefault: Subarrays 0 and 1 both select the classic
// single-buffer bank and must be result-identical.
func TestSubarraysZeroIsDefault(t *testing.T) {
	base := Config{
		App: appmodel.BluRay(), Gen: dram.DDR2, Design: GSSSAGM,
		Cycles: 8_000, Seed: 7, PriorityDemand: true,
	}
	zero, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	one := base
	one.Subarrays = 1
	same, err := Run(one)
	if err != nil {
		t.Fatal(err)
	}
	if zero.Utilization != same.Utilization || zero.Completed != same.Completed ||
		zero.LatAll != same.LatAll {
		t.Fatalf("Subarrays=1 diverged from 0: %+v vs %+v", zero, same)
	}
}
