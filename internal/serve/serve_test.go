package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"aanoc"
)

// post starts a sweep over the test server and returns the accepted
// run descriptor.
func post(t *testing.T, ts *httptest.Server, body string) SweepAccepted {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var e map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("POST /v1/sweep = %d (%v)", resp.StatusCode, e)
	}
	var acc SweepAccepted
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	return acc
}

// stream reads a run's NDJSON to completion and returns the events.
func stream(t *testing.T, ts *httptest.Server, id string) []Event {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/runs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/runs/%s = %d", id, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

// last returns the stream's terminal event, asserting there is exactly
// one and it is last.
func last(t *testing.T, events []Event) Event {
	t.Helper()
	if len(events) == 0 {
		t.Fatal("empty stream")
	}
	for i, e := range events[:len(events)-1] {
		if e.Type == "done" {
			t.Fatalf("done event at %d of %d, want last", i, len(events))
		}
	}
	fin := events[len(events)-1]
	if fin.Type != "done" {
		t.Fatalf("stream ended with %q, want done", fin.Type)
	}
	return fin
}

// fastServer builds a server whose sweepFn runs the real facade over
// tiny grids (2000-cycle points are a few ms each).
func fastServer(t *testing.T, o Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(o)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)
	return s, ts
}

const tinyGrid = `{"points":[
  {"design":"gss+sagm","model":"bluray","cycles":2000,"seed":1},
  {"design":"gss+sagm","model":"bluray","cycles":2000,"seed":2},
  {"design":"gss+sagm","model":"bluray","cycles":2000,"seed":1}
]}`

func TestSweepLifecycle(t *testing.T) {
	store, err := aanoc.OpenStore(t.TempDir(), aanoc.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := fastServer(t, Options{Store: store})

	acc := post(t, ts, tinyGrid)
	if acc.Total != 3 || acc.ID == "" {
		t.Fatalf("accepted %+v", acc)
	}
	fin := last(t, stream(t, ts, acc.ID))
	if fin.Stats == nil || fin.Stats.Runs != 2 || fin.Stats.CacheHits != 1 {
		t.Fatalf("first sweep stats %+v, want 2 runs + 1 cache hit", fin.Stats)
	}
	if len(fin.Results) != 3 {
		t.Fatalf("%d results, want 3", len(fin.Results))
	}
	var fp string
	for _, r := range fin.Results {
		if r.Error != "" || r.Fingerprint == "" || r.Completed == 0 {
			t.Fatalf("bad point state %+v", r)
		}
		fp = r.Fingerprint
	}

	// Same grid again: everything must come from the store, nothing
	// simulates.
	acc = post(t, ts, tinyGrid)
	fin = last(t, stream(t, ts, acc.ID))
	if fin.Stats.Runs != 0 || fin.Stats.StoreHits != 2 {
		t.Fatalf("second sweep stats %+v, want zero runs", fin.Stats)
	}
	for _, r := range fin.Results {
		if !r.Stored {
			t.Fatalf("second-sweep point not stored: %+v", r)
		}
	}

	// The stored observability report is retrievable by fingerprint.
	resp, err := http.Get(ts.URL + "/v1/results/" + fp)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/results = %d", resp.StatusCode)
	}
	var report struct {
		SchemaVersion int    `json:"schemaVersion"`
		Design        string `json:"design"`
		Cycles        int64  `json:"cycles"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&report); err != nil {
		t.Fatal(err)
	}
	if report.SchemaVersion == 0 || report.Design == "" || report.Cycles != 2000 {
		t.Fatalf("stored report %+v", report)
	}

	// A run stream stays replayable after completion.
	if fin2 := last(t, stream(t, ts, acc.ID)); fin2.Stats.StoreHits != fin.Stats.StoreHits {
		t.Error("replayed stream diverges")
	}
}

func TestSweepRejectsBadInput(t *testing.T) {
	_, ts := fastServer(t, Options{})
	cases := []struct {
		name, body string
		status     int
	}{
		{"malformed json", `{"points":`, http.StatusBadRequest},
		{"empty grid", `{"points":[]}`, http.StatusBadRequest},
		{"unknown design", `{"points":[{"design":"warp-drive"}]}`, http.StatusBadRequest},
		{"unknown model", `{"points":[{"model":"quake"}]}`, http.StatusBadRequest},
		{"bad scheduler", `{"points":[{"scheduler":"fifo9000"}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Errorf("status %d, want %d", resp.StatusCode, tc.status)
			}
		})
	}
}

func TestEmptyGridRejectedBeforeAdmission(t *testing.T) {
	s, ts := fastServer(t, Options{})
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(`{"points":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty grid accepted: %d", resp.StatusCode)
	}
	s.mu.Lock()
	n := len(s.runs)
	s.mu.Unlock()
	if n != 0 {
		t.Errorf("empty grid registered a run")
	}
}

func TestGridSizeLimit(t *testing.T) {
	_, ts := fastServer(t, Options{MaxPoints: 2})
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(tinyGrid))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("3-point grid on a 2-point server: %d", resp.StatusCode)
	}
}

func TestUnknownRunAndResult(t *testing.T) {
	store, err := aanoc.OpenStore(t.TempDir(), aanoc.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := fastServer(t, Options{Store: store})
	for _, path := range []string{
		"/v1/runs/run-999",
		"/v1/results/" + strings.Repeat("a", 64),
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
	// Malformed fingerprints (including traversal attempts) are 400.
	resp, err := http.Get(ts.URL + "/v1/results/..%2f..%2fetc%2fpasswd")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed fingerprint = %d, want 400", resp.StatusCode)
	}
}

func TestResultsWithoutStore(t *testing.T) {
	_, ts := fastServer(t, Options{})
	resp, err := http.Get(ts.URL + "/v1/results/" + strings.Repeat("a", 64))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("store-less results = %d, want 503", resp.StatusCode)
	}
}

// TestMidSweepCancellation drives a slow fake sweep and cancels it
// mid-flight via DELETE: the stream must terminate with a done event
// whose unfinished points carry the cancellation error.
func TestMidSweepCancellation(t *testing.T) {
	s, ts := fastServer(t, Options{})
	started := make(chan struct{})
	s.sweepFn = func(g aanoc.SweepGrid, o aanoc.SweepOptions) ([]aanoc.SweepResult, aanoc.SweepStats, error) {
		results := make([]aanoc.SweepResult, len(g.Points))
		for i := range g.Points {
			if i == 0 {
				close(started)
			}
			select {
			case <-o.Context.Done():
				results[i] = aanoc.SweepResult{Index: i, Err: o.Context.Err()}
				continue
			case <-time.After(5 * time.Second):
				results[i] = aanoc.SweepResult{Index: i}
			}
			if o.OnProgress != nil {
				o.OnProgress(i+1, len(g.Points))
			}
		}
		return results, aanoc.SweepStats{Workers: 1}, nil
	}

	acc := post(t, ts, tinyGrid)
	<-started
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs/"+acc.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE = %d, want 204", resp.StatusCode)
	}

	deadline := time.Now().Add(10 * time.Second)
	fin := last(t, stream(t, ts, acc.ID))
	if time.Now().After(deadline) {
		t.Fatal("cancelled stream did not terminate promptly")
	}
	cancelled := 0
	for _, r := range fin.Results {
		if strings.Contains(r.Error, context.Canceled.Error()) {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Fatalf("no point reports cancellation: %+v", fin.Results)
	}
}

// TestRealSweepCancellation cancels an actual simulation grid: the
// real executor must settle every point and end the stream.
func TestRealSweepCancellation(t *testing.T) {
	_, ts := fastServer(t, Options{Workers: 1})
	// Enough cycles that the grid cannot finish before the DELETE lands.
	grid := `{"points":[` + strings.Repeat(`{"design":"gss+sagm","cycles":2000000,"seed":1},`, 3) +
		`{"design":"gss+sagm","cycles":2000000,"seed":2}]}`
	acc := post(t, ts, grid)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs/"+acc.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	done := make(chan []Event, 1)
	go func() { done <- stream(t, ts, acc.ID) }()
	select {
	case events := <-done:
		fin := last(t, events)
		for _, r := range fin.Results {
			if r.Error == "" && r.Completed == 0 && !r.Cached {
				t.Errorf("point %d neither completed nor errored: %+v", r.Index, r)
			}
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled real sweep never finished")
	}
}

func TestHealthzAndStatsz(t *testing.T) {
	store, err := aanoc.OpenStore(t.TempDir(), aanoc.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := fastServer(t, Options{Store: store})
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	acc := post(t, ts, tinyGrid)
	last(t, stream(t, ts, acc.ID))

	resp, err = http.Get(ts.URL + "/v1/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Sweeps != 1 || st.Runs != 2 || st.CacheHits != 1 || st.ActiveRuns != 0 {
		t.Errorf("statsz %+v", st)
	}
	if st.Store == nil || st.Store.Puts != 2 || st.StoreVersion == "" {
		t.Errorf("store statsz %+v / %q", st.Store, st.StoreVersion)
	}
}

func TestShutdownRejectsNewSweeps(t *testing.T) {
	s, ts := fastServer(t, Options{})
	s.Close()
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(tinyGrid))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown sweep = %d, want 503", resp.StatusCode)
	}
}

func TestRunTimeout(t *testing.T) {
	s, ts := fastServer(t, Options{RunTimeout: 50 * time.Millisecond})
	s.sweepFn = func(g aanoc.SweepGrid, o aanoc.SweepOptions) ([]aanoc.SweepResult, aanoc.SweepStats, error) {
		<-o.Context.Done()
		results := make([]aanoc.SweepResult, len(g.Points))
		for i := range results {
			results[i] = aanoc.SweepResult{Index: i, Err: o.Context.Err()}
		}
		return results, aanoc.SweepStats{}, nil
	}
	acc := post(t, ts, tinyGrid)
	fin := last(t, stream(t, ts, acc.ID))
	for _, r := range fin.Results {
		if !strings.Contains(r.Error, context.DeadlineExceeded.Error()) {
			t.Fatalf("point %d error %q, want deadline", r.Index, r.Error)
		}
	}
}

// TestEmptyGridFacadeErrorSurfaces drives the facade-level validation
// error path through a sweepFn returning ErrBadGrid.
func TestEmptyGridFacadeErrorSurfaces(t *testing.T) {
	s, ts := fastServer(t, Options{})
	s.sweepFn = func(g aanoc.SweepGrid, o aanoc.SweepOptions) ([]aanoc.SweepResult, aanoc.SweepStats, error) {
		return nil, aanoc.SweepStats{}, fmt.Errorf("aanoc: %w: no points", aanoc.ErrBadGrid)
	}
	acc := post(t, ts, tinyGrid)
	fin := last(t, stream(t, ts, acc.ID))
	if fin.Error == "" || !strings.Contains(fin.Error, "invalid sweep grid") {
		t.Fatalf("facade error lost: %+v", fin)
	}
}
