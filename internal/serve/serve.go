// Package serve implements the aanoc-serve HTTP API: sweep-as-a-
// service over the typed facade. A client POSTs a grid of simulation
// points; the server fans it across the bounded worker pool (deduped
// in-process by configuration fingerprint and, when a result store is
// attached, across every process that ever shared the store), streams
// progress as NDJSON, and serves any stored observability report by
// fingerprint.
//
// The API is versioned under /v1 and deliberately small:
//
//	POST   /v1/sweep              start a sweep; 202 {"id","total"}
//	GET    /v1/runs/{id}          NDJSON progress + final results line
//	DELETE /v1/runs/{id}          cancel a running sweep; 204
//	GET    /v1/results/{fp}       stored obs report for a fingerprint
//	GET    /v1/healthz            liveness
//	GET    /v1/statsz             request/run/store counters
//
// The server is a thin adapter: all semantics — validation sentinels,
// fingerprinting, store versioning, cache bypass rules — live in the
// aanoc facade, so anything the HTTP surface can do a Go embedder can
// do with the same guarantees.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"aanoc"
	"aanoc/internal/obs"
)

// Options configure a Server.
type Options struct {
	// Store, when non-nil, backs every sweep (read-through persistence)
	// and the /v1/results endpoint. A store-less server still sweeps;
	// results are simply not retrievable afterwards.
	Store *aanoc.Store
	// Workers bounds concurrent simulations per sweep (0 selects
	// GOMAXPROCS).
	Workers int
	// RunTimeout, when positive, bounds each sweep's wall-clock time:
	// on expiry in-flight points abandon within one kernel epoch and the
	// remaining points settle with the deadline error.
	RunTimeout time.Duration
	// MaxPoints bounds one request's grid size (default 4096): sweeps
	// are CPU-bound, so an unbounded grid is a denial of service on the
	// worker pool.
	MaxPoints int
	// MaxBodyBytes bounds the request body (default 8 MiB).
	MaxBodyBytes int64
}

// counters aggregate across the server's lifetime; all accessed
// atomically.
type counters struct {
	requests  atomic.Int64
	sweeps    atomic.Int64
	runs      atomic.Int64
	cacheHits atomic.Int64
	storeHits atomic.Int64
	cancels   atomic.Int64
}

// Server carries the run registry and the (optional) result store. Use
// New + Handler; the zero value is not usable.
type Server struct {
	opts Options
	ctr  counters

	mu     sync.Mutex
	runs   map[string]*run
	nextID int64
	closed bool

	// sweepFn is the sweep entry point — aanoc.Sweep in production,
	// replaced by tests that need a slow or failing grid without burning
	// simulator cycles.
	sweepFn func(aanoc.SweepGrid, aanoc.SweepOptions) ([]aanoc.SweepResult, aanoc.SweepStats, error)
}

// New builds a Server.
func New(o Options) *Server {
	if o.MaxPoints <= 0 {
		o.MaxPoints = 4096
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 8 << 20
	}
	return &Server{
		opts:    o,
		runs:    map[string]*run{},
		sweepFn: aanoc.Sweep,
	}
}

// Close cancels every active run. In-flight simulations abandon within
// one kernel epoch; streams drain their final line and end.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	var cancels []context.CancelFunc
	for _, r := range s.runs {
		cancels = append(cancels, r.cancel)
	}
	s.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// Handler returns the /v1 API handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleRunStream)
	mux.HandleFunc("DELETE /v1/runs/{id}", s.handleRunCancel)
	mux.HandleFunc("GET /v1/results/{fingerprint}", s.handleResult)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/statsz", s.handleStatsz)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.ctr.requests.Add(1)
		mux.ServeHTTP(w, r)
	})
}

// Point is one grid point on the wire: aanoc.Config with the enum
// fields spelled as their parseable names, so clients write
// {"design":"gss+sagm"} instead of internal ordinals.
type Point struct {
	Model           string `json:"model,omitempty"`
	Design          string `json:"design,omitempty"`
	Generation      int    `json:"generation,omitempty"`
	ClockMHz        int    `json:"clockMHz,omitempty"`
	Channels        int    `json:"channels,omitempty"`
	ChannelScheme   string `json:"channelScheme,omitempty"`
	Scheduler       string `json:"scheduler,omitempty"`
	PCT             int    `json:"pct,omitempty"`
	GSSRouters      int    `json:"gssRouters,omitempty"`
	PriorityDemand  bool   `json:"priorityDemand,omitempty"`
	VirtualChannels int    `json:"virtualChannels,omitempty"`
	AdaptiveRouting bool   `json:"adaptiveRouting,omitempty"`
	Cycles          int64  `json:"cycles,omitempty"`
	Warmup          int64  `json:"warmup,omitempty"`
	Seed            uint64 `json:"seed,omitempty"`
	SampleEvery     int64  `json:"sampleEvery,omitempty"`
	Subarrays       int    `json:"subarrays,omitempty"`
	Checked         bool   `json:"checked,omitempty"`
}

// config resolves the wire point into a facade Config, going through
// the facade parsers so the service rejects exactly what the library
// rejects.
func (p Point) config() (aanoc.Config, error) {
	var c aanoc.Config
	if p.Model != "" {
		m, err := aanoc.ParseApp(p.Model)
		if err != nil {
			return c, err
		}
		c.Model = m
	}
	if p.Design != "" {
		d, err := aanoc.ParseDesign(p.Design)
		if err != nil {
			return c, err
		}
		c.Design = d
	}
	if p.ChannelScheme != "" {
		sch, err := aanoc.ParseChannelScheme(p.ChannelScheme)
		if err != nil {
			return c, err
		}
		c.ChannelScheme = sch
	}
	sched, err := aanoc.ParseScheduler(p.Scheduler)
	if err != nil {
		return c, err
	}
	c.Scheduler = sched
	c.Generation = p.Generation
	c.ClockMHz = p.ClockMHz
	c.Channels = p.Channels
	c.PCT = p.PCT
	c.GSSRouters = p.GSSRouters
	c.PriorityDemand = p.PriorityDemand
	c.VirtualChannels = p.VirtualChannels
	c.AdaptiveRouting = p.AdaptiveRouting
	c.Cycles = p.Cycles
	c.Warmup = p.Warmup
	c.Seed = p.Seed
	c.SampleEvery = p.SampleEvery
	c.Subarrays = p.Subarrays
	c.Checked = p.Checked
	return c, nil
}

// SweepRequest is the POST /v1/sweep body.
type SweepRequest struct {
	Points []Point `json:"points"`
	// DisableCache forces every point to simulate (bypassing both the
	// in-process cache and the store) — the "measure it fresh" escape
	// hatch.
	DisableCache bool `json:"disableCache,omitempty"`
}

// SweepAccepted is the POST /v1/sweep response.
type SweepAccepted struct {
	ID    string `json:"id"`
	Total int    `json:"total"`
}

// Event is one NDJSON line of a run stream. Type is "progress" while
// points settle and "done" exactly once at the end; the done event
// carries the stats and the per-point outcomes.
type Event struct {
	Type    string       `json:"type"`
	Done    int          `json:"done,omitempty"`
	Total   int          `json:"total,omitempty"`
	Stats   *SweepStats  `json:"stats,omitempty"`
	Results []PointState `json:"results,omitempty"`
	Error   string       `json:"error,omitempty"`
}

// SweepStats mirror aanoc.SweepStats on the wire.
type SweepStats struct {
	Runs      int `json:"runs"`
	CacheHits int `json:"cacheHits"`
	StoreHits int `json:"storeHits"`
	Workers   int `json:"workers"`
}

// PointState is one point's outcome in a done event: the fingerprint
// (the key for GET /v1/results), cache provenance, the headline
// metrics, and the error if the point failed. The full observability
// report is intentionally not inlined — fetch it by fingerprint.
type PointState struct {
	Index       int     `json:"index"`
	Fingerprint string  `json:"fingerprint,omitempty"`
	Cached      bool    `json:"cached,omitempty"`
	Stored      bool    `json:"stored,omitempty"`
	Utilization float64 `json:"utilization,omitempty"`
	LatencyAll  float64 `json:"latencyAll,omitempty"`
	Completed   int64   `json:"completed,omitempty"`
	Error       string  `json:"error,omitempty"`
}

// run is one sweep's lifecycle: an append-only event log consumed by
// any number of stream readers, plus the cancel handle.
type run struct {
	id     string
	total  int
	cancel context.CancelFunc

	mu     sync.Mutex
	cond   *sync.Cond
	events []Event
	final  bool
}

func newRun(id string, total int, cancel context.CancelFunc) *run {
	r := &run{id: id, total: total, cancel: cancel}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// append publishes one event to every stream reader.
func (r *run) append(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	if e.Type == "done" {
		r.final = true
	}
	r.mu.Unlock()
	r.cond.Broadcast()
}

// eventsFrom blocks until events past index i exist (or the run is
// final, or ctx ends) and returns them plus whether the log is
// complete.
func (r *run) eventsFrom(ctx context.Context, i int) ([]Event, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.events) <= i && !r.final && ctx.Err() == nil {
		r.cond.Wait()
	}
	return r.events[i:], r.final
}

func (s *Server) handleSweep(w http.ResponseWriter, req *http.Request) {
	req.Body = http.MaxBytesReader(w, req.Body, s.opts.MaxBodyBytes)
	var body SweepRequest
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("malformed request: %v", err))
		return
	}
	if len(body.Points) == 0 {
		// The facade would reject this too (ErrBadGrid), but catching it
		// here keeps empty grids out of the run registry entirely.
		httpError(w, http.StatusBadRequest, "empty grid")
		return
	}
	if len(body.Points) > s.opts.MaxPoints {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("grid of %d points exceeds the %d-point limit", len(body.Points), s.opts.MaxPoints))
		return
	}
	grid := aanoc.SweepGrid{Points: make([]aanoc.Config, len(body.Points))}
	for i, p := range body.Points {
		cfg, err := p.config()
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("point %d: %v", i, err))
			return
		}
		grid.Points[i] = cfg
	}

	var (
		ctx    context.Context
		cancel context.CancelFunc
	)
	if s.opts.RunTimeout > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), s.opts.RunTimeout)
	} else {
		ctx, cancel = context.WithCancel(context.Background())
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		httpError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	s.nextID++
	id := fmt.Sprintf("run-%d", s.nextID)
	r := newRun(id, len(grid.Points), cancel)
	s.runs[id] = r
	s.mu.Unlock()
	s.ctr.sweeps.Add(1)

	opts := aanoc.SweepOptions{
		Context:      ctx,
		Workers:      s.opts.Workers,
		DisableCache: body.DisableCache,
		Store:        s.opts.Store,
		OnProgress: func(done, total int) {
			r.append(Event{Type: "progress", Done: done, Total: total})
		},
	}
	go s.execute(r, grid, opts)

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(SweepAccepted{ID: id, Total: len(grid.Points)})
}

// execute runs one sweep to completion and publishes the done event.
func (s *Server) execute(r *run, grid aanoc.SweepGrid, opts aanoc.SweepOptions) {
	defer r.cancel()
	results, stats, err := s.sweepFn(grid, opts)
	if err != nil {
		// Grid validation failed after admission (only possible through
		// the raw facade path; the wire decoder pre-validates) — surface
		// it as the run's terminal event.
		r.append(Event{Type: "done", Error: err.Error()})
		return
	}
	s.ctr.runs.Add(int64(stats.Runs))
	s.ctr.cacheHits.Add(int64(stats.CacheHits))
	s.ctr.storeHits.Add(int64(stats.StoreHits))
	states := make([]PointState, len(results))
	for i, res := range results {
		st := PointState{
			Index:       res.Index,
			Fingerprint: res.Fingerprint,
			Cached:      res.Cached,
			Stored:      res.Stored,
		}
		if res.Err != nil {
			st.Error = res.Err.Error()
		} else {
			st.Utilization = res.Row.Utilization
			st.LatencyAll = res.Row.LatencyAll
			st.Completed = res.Row.Completed
		}
		states[i] = st
	}
	r.append(Event{
		Type:  "done",
		Total: r.total,
		Stats: &SweepStats{
			Runs: stats.Runs, CacheHits: stats.CacheHits,
			StoreHits: stats.StoreHits, Workers: stats.Workers,
		},
		Results: states,
	})
}

func (s *Server) getRun(id string) *run {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runs[id]
}

func (s *Server) handleRunStream(w http.ResponseWriter, req *http.Request) {
	r := s.getRun(req.PathValue("id"))
	if r == nil {
		httpError(w, http.StatusNotFound, "unknown run")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	// A disconnecting client must unblock the cond wait.
	ctx := req.Context()
	stop := context.AfterFunc(ctx, r.cond.Broadcast)
	defer stop()

	i := 0
	for {
		evs, final := r.eventsFrom(ctx, i)
		for _, e := range evs {
			if err := enc.Encode(e); err != nil {
				return
			}
		}
		i += len(evs)
		if flusher != nil {
			flusher.Flush()
		}
		// The done event is always the log's last entry, so once the
		// batch containing it is written the stream is complete.
		if final || ctx.Err() != nil {
			return
		}
	}
}

func (s *Server) handleRunCancel(w http.ResponseWriter, req *http.Request) {
	r := s.getRun(req.PathValue("id"))
	if r == nil {
		httpError(w, http.StatusNotFound, "unknown run")
		return
	}
	s.ctr.cancels.Add(1)
	r.cancel()
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleResult(w http.ResponseWriter, req *http.Request) {
	if s.opts.Store == nil {
		httpError(w, http.StatusServiceUnavailable, "no result store configured")
		return
	}
	fp := req.PathValue("fingerprint")
	res, ok, err := s.opts.Store.Get(fp)
	switch {
	case errors.Is(err, aanoc.ErrStoreCorrupt):
		// The entry has been removed; the next sweep re-simulates it.
		httpError(w, http.StatusInternalServerError, "stored entry failed verification and was discarded")
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, err.Error())
		return
	case !ok:
		httpError(w, http.StatusNotFound, "no stored result for fingerprint")
		return
	case res.Obs == nil:
		httpError(w, http.StatusInternalServerError, "stored result carries no report")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = obs.EncodeJSON(w, res.Obs)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"ok":true}`)
}

// statsz is the /v1/statsz payload.
type statsz struct {
	Requests     int64             `json:"requests"`
	Sweeps       int64             `json:"sweeps"`
	Runs         int64             `json:"runs"`
	CacheHits    int64             `json:"cacheHits"`
	StoreHits    int64             `json:"storeHits"`
	Cancels      int64             `json:"cancels"`
	ActiveRuns   int               `json:"activeRuns"`
	Store        *aanoc.StoreStats `json:"store,omitempty"`
	StoreVersion string            `json:"storeVersion,omitempty"`
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	active := 0
	for _, r := range s.runs {
		r.mu.Lock()
		if !r.final {
			active++
		}
		r.mu.Unlock()
	}
	s.mu.Unlock()
	out := statsz{
		Requests:   s.ctr.requests.Load(),
		Sweeps:     s.ctr.sweeps.Load(),
		Runs:       s.ctr.runs.Load(),
		CacheHits:  s.ctr.cacheHits.Load(),
		StoreHits:  s.ctr.storeHits.Load(),
		Cancels:    s.ctr.cancels.Load(),
		ActiveRuns: active,
	}
	if s.opts.Store != nil {
		st := s.opts.Store.Stats()
		out.Store = &st
		out.StoreVersion = aanoc.StoreVersion()
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
