// Package trace provides memory-request trace capture and replay. A
// trace is a JSON-lines stream of logical requests (one object per line)
// recorded at the network interfaces; replaying it through a different
// design configuration gives a controlled comparison on identical
// workloads — the standard methodology for memory-system studies and the
// natural extension point for users with their own application traces.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"aanoc/internal/dram"
	"aanoc/internal/noc"
	"aanoc/internal/traffic"
)

// Record is one logical memory request as observed at a core's network
// interface.
type Record struct {
	Cycle    int64  `json:"cycle"`
	Core     string `json:"core"`
	Kind     string `json:"kind"` // "R" or "W"
	Class    string `json:"class"`
	Priority bool   `json:"priority,omitempty"`
	Bank     int    `json:"bank"`
	Row      int    `json:"row"`
	Col      int    `json:"col"`
	Beats    int    `json:"beats"`
	EndOfRow bool   `json:"endOfRow,omitempty"`
}

// Validate reports malformed records.
func (r *Record) Validate() error {
	if r.Cycle < 0 {
		return fmt.Errorf("trace: negative cycle %d", r.Cycle)
	}
	if r.Core == "" {
		return fmt.Errorf("trace: record without core")
	}
	if r.Kind != "R" && r.Kind != "W" {
		return fmt.Errorf("trace: kind %q (want R or W)", r.Kind)
	}
	if r.Beats < 1 {
		return fmt.Errorf("trace: %d beats", r.Beats)
	}
	if r.Bank < 0 || r.Row < 0 || r.Col < 0 {
		return fmt.Errorf("trace: negative address (%d,%d,%d)", r.Bank, r.Row, r.Col)
	}
	return nil
}

// classFromString parses the Class field, defaulting to media.
func classFromString(s string) noc.Class {
	switch s {
	case "demand":
		return noc.ClassDemand
	case "prefetch":
		return noc.ClassPrefetch
	case "peripheral":
		return noc.ClassPeripheral
	default:
		return noc.ClassMedia
	}
}

// FromRequest converts a generated request into a trace record.
func FromRequest(cycle int64, core string, req *traffic.Request) Record {
	return Record{
		Cycle:    cycle,
		Core:     core,
		Kind:     req.Kind.String(),
		Class:    req.Class.String(),
		Priority: req.Priority,
		Bank:     req.Addr.Bank,
		Row:      req.Addr.Row,
		Col:      req.Addr.Col,
		Beats:    req.Beats,
		EndOfRow: req.EndOfRow,
	}
}

// toRequest converts a record back into a logical request.
func (r *Record) toRequest() *traffic.Request {
	kind := noc.Read
	if r.Kind == "W" {
		kind = noc.Write
	}
	return &traffic.Request{
		Kind:     kind,
		Class:    classFromString(r.Class),
		Priority: r.Priority,
		Addr:     dram.Address{Bank: r.Bank, Row: r.Row, Col: r.Col},
		Beats:    r.Beats,
		EndOfRow: r.EndOfRow,
	}
}

// Writer streams records as JSON lines.
type Writer struct {
	w   *bufio.Writer
	enc *json.Encoder
	n   int64
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{w: bw, enc: json.NewEncoder(bw)}
}

// Write appends one record.
func (t *Writer) Write(r Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	t.n++
	return t.enc.Encode(r)
}

// Count returns the number of records written.
func (t *Writer) Count() int64 { return t.n }

// Flush drains the buffer; call once at the end of the run.
func (t *Writer) Flush() error { return t.w.Flush() }

// Read parses a JSON-lines trace, validating every record and requiring
// non-decreasing cycles per core.
func Read(r io.Reader) ([]Record, error) {
	var out []Record
	lastByCore := map[string]int64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if err := rec.Validate(); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if rec.Cycle < lastByCore[rec.Core] {
			return nil, fmt.Errorf("trace: line %d: cycles decrease for core %s", line, rec.Core)
		}
		lastByCore[rec.Core] = rec.Cycle
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Replayer feeds one core's recorded requests back into a simulation. It
// implements the traffic.Source interface: each request is issued at the
// first unblocked cycle at or after its recorded cycle (so a slower
// design shifts the tail rather than dropping work).
type Replayer struct {
	records []Record
	next    int

	// Issued counts replayed requests; Outstanding tracks completions
	// for closed-loop accounting (purely informational on replay).
	Issued      int64
	Outstanding int64
}

// NewReplayer builds a replayer over one core's records (must be
// cycle-sorted, as Read guarantees per core).
func NewReplayer(records []Record) *Replayer {
	return &Replayer{records: records}
}

// Tick implements traffic.Source.
func (rp *Replayer) Tick(now int64, blocked bool) *traffic.Request {
	if rp.next >= len(rp.records) {
		return nil
	}
	rec := &rp.records[rp.next]
	if now < rec.Cycle || blocked {
		return nil
	}
	rp.next++
	rp.Issued++
	rp.Outstanding++
	return rec.toRequest()
}

// OnComplete implements traffic.Source.
func (rp *Replayer) OnComplete(now int64) {
	if rp.Outstanding > 0 {
		rp.Outstanding--
	}
}

// NextArrival implements traffic.Source: the recorded cycle of the next
// unissued request, or math.MaxInt64 once the trace is exhausted.
func (rp *Replayer) NextArrival() int64 {
	if rp.next >= len(rp.records) {
		return 1<<63 - 1
	}
	return rp.records[rp.next].Cycle
}

// Done reports whether every record has been issued.
func (rp *Replayer) Done() bool { return rp.next >= len(rp.records) }

// SplitByCore partitions records per core, preserving order.
func SplitByCore(records []Record) map[string][]Record {
	out := map[string][]Record{}
	for _, r := range records {
		out[r.Core] = append(out[r.Core], r)
	}
	return out
}
