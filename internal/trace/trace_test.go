package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"aanoc/internal/dram"
	"aanoc/internal/noc"
	"aanoc/internal/traffic"
)

func rec(cycle int64, core string, beats int) Record {
	return Record{Cycle: cycle, Core: core, Kind: "R", Class: "media", Bank: 1, Row: 2, Col: 3, Beats: beats}
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	want := []Record{rec(0, "a", 8), rec(5, "b", 16), rec(7, "a", 4)}
	for _, r := range want {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 3 {
		t.Fatalf("count = %d", w.Count())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Record{
		{Cycle: -1, Core: "a", Kind: "R", Beats: 1},
		{Cycle: 0, Core: "", Kind: "R", Beats: 1},
		{Cycle: 0, Core: "a", Kind: "X", Beats: 1},
		{Cycle: 0, Core: "a", Kind: "R", Beats: 0},
		{Cycle: 0, Core: "a", Kind: "R", Beats: 1, Bank: -1},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("record %d accepted: %+v", i, r)
		}
	}
}

func TestReadRejectsDecreasingCycles(t *testing.T) {
	in := `{"cycle":5,"core":"a","kind":"R","class":"media","bank":0,"row":0,"col":0,"beats":8}
{"cycle":3,"core":"a","kind":"R","class":"media","bank":0,"row":0,"col":0,"beats":8}`
	if _, err := Read(strings.NewReader(in)); err == nil {
		t.Fatal("decreasing cycles accepted")
	}
}

func TestReadAllowsInterleavedCores(t *testing.T) {
	in := `{"cycle":5,"core":"a","kind":"R","class":"media","bank":0,"row":0,"col":0,"beats":8}
{"cycle":3,"core":"b","kind":"W","class":"demand","bank":0,"row":0,"col":0,"beats":8}
{"cycle":6,"core":"a","kind":"R","class":"media","bank":0,"row":0,"col":0,"beats":8}`
	recs, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d", len(recs))
	}
	by := SplitByCore(recs)
	if len(by["a"]) != 2 || len(by["b"]) != 1 {
		t.Fatalf("split = %v", by)
	}
}

func TestRecordRequestRoundTrip(t *testing.T) {
	req := &traffic.Request{
		Kind: noc.Write, Class: noc.ClassDemand, Priority: true,
		Addr: dram.Address{Bank: 3, Row: 7, Col: 16}, Beats: 24, EndOfRow: true,
	}
	r := FromRequest(42, "cpu", req)
	back := r.toRequest()
	if back.Kind != req.Kind || back.Class != req.Class || back.Priority != req.Priority {
		t.Fatalf("round trip lost fields: %+v", back)
	}
	if back.Addr != req.Addr || back.Beats != req.Beats || back.EndOfRow != req.EndOfRow {
		t.Fatalf("round trip lost address/payload: %+v", back)
	}
}

func TestReplayerTiming(t *testing.T) {
	rp := NewReplayer([]Record{rec(5, "a", 8), rec(10, "a", 8)})
	if rp.Tick(4, false) != nil {
		t.Fatal("replayed before recorded cycle")
	}
	if rp.Tick(5, true) != nil {
		t.Fatal("replayed while blocked")
	}
	if rp.Tick(7, false) == nil {
		t.Fatal("late replay refused")
	}
	if rp.Tick(8, false) != nil {
		t.Fatal("second record replayed early")
	}
	if rp.Tick(10, false) == nil || !rp.Done() {
		t.Fatal("replayer did not drain")
	}
	rp.OnComplete(11)
	rp.OnComplete(12)
	if rp.Outstanding != 0 {
		t.Fatalf("outstanding = %d", rp.Outstanding)
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(cycles []uint16, beats uint8) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		cur := int64(0)
		n := 0
		for _, c := range cycles {
			cur += int64(c % 100)
			r := rec(cur, "core", int(beats)%64+1)
			if err := w.Write(r); err != nil {
				return false
			}
			n++
		}
		if err := w.Flush(); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return len(got) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
