package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzTraceRead drives arbitrary bytes through the JSON-lines trace
// decoder. Read must never panic; when it does accept an input, the
// accepted records must (a) individually satisfy Validate, (b) keep
// cycles non-decreasing per core — the replay precondition — and (c)
// survive a Writer round trip unchanged.
func FuzzTraceRead(f *testing.F) {
	f.Add([]byte(`{"cycle":0,"core":"cpu","kind":"R","class":"demand","priority":true,"bank":0,"row":1,"col":2,"beats":2}`))
	f.Add([]byte(`{"cycle":3,"core":"vid0","kind":"W","class":"media","bank":3,"row":200,"col":64,"beats":8,"endOfRow":true}` + "\n" +
		`{"cycle":5,"core":"vid0","kind":"R","class":"prefetch","bank":3,"row":200,"col":72,"beats":8}`))
	f.Add([]byte("\n\n"))
	f.Add([]byte(`{"cycle":-1,"core":"x","kind":"R","bank":0,"row":0,"col":0,"beats":1}`))
	f.Add([]byte(`{"cycle":9,"core":"x","kind":"Q","bank":0,"row":0,"col":0,"beats":1}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		records, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected inputs only need to not panic
		}
		last := map[string]int64{}
		for i, r := range records {
			if err := r.Validate(); err != nil {
				t.Fatalf("record %d accepted but invalid: %v", i, err)
			}
			if r.Cycle < last[r.Core] {
				t.Fatalf("record %d: cycle %d decreases for core %q", i, r.Cycle, r.Core)
			}
			last[r.Core] = r.Cycle
		}
		// Round trip: re-encoding accepted records must reproduce them.
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, r := range records {
			if err := w.Write(r); err != nil {
				t.Fatalf("re-encoding accepted record: %v", err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-reading own encoding: %v", err)
		}
		if len(records) != len(again) || (len(records) > 0 && !reflect.DeepEqual(records, again)) {
			t.Fatalf("round trip diverged: %d records in, %d out", len(records), len(again))
		}
	})
}
