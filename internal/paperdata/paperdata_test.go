package paperdata

import "testing"

func TestTableShapes(t *testing.T) {
	if len(TableI) != 9 || len(TableII) != 9 {
		t.Fatalf("tables I/II rows = %d/%d, want 9 each", len(TableI), len(TableII))
	}
	apps := map[string]int{}
	for _, e := range TableI {
		apps[e.App]++
		if e.Gen < 1 || e.Gen > 3 {
			t.Errorf("bad generation in %+v", e)
		}
	}
	for a, n := range apps {
		if n != 3 {
			t.Errorf("app %s has %d rows, want 3", a, n)
		}
	}
}

func TestPaperAveragesMatchPublishedRatios(t *testing.T) {
	// The paper's own "Ratio" summary rows: Table I util ratios are
	// 0.914 / 1.000 / 1.018 / 1.054 against [4] (column 1).
	util, latAll, latDem := AverageRatios(TableI, 1)
	wantUtil := [4]float64{0.914, 1.000, 1.018, 1.054}
	wantLat := [4]float64{1.591, 1.000, 0.942, 0.846}
	wantDem := [4]float64{1.847, 1.000, 1.007, 0.878}
	for i := range util {
		if d := util[i] - wantUtil[i]; d > 0.01 || d < -0.01 {
			t.Errorf("Table I util ratio[%d] = %.3f, paper %.3f", i, util[i], wantUtil[i])
		}
		if d := latAll[i]/wantLat[i] - 1; d > 0.02 || d < -0.02 {
			t.Errorf("Table I lat ratio[%d] = %.3f, paper %.3f", i, latAll[i], wantLat[i])
		}
		if d := latDem[i]/wantDem[i] - 1; d > 0.02 || d < -0.02 {
			t.Errorf("Table I dem ratio[%d] = %.3f, paper %.3f", i, latDem[i], wantDem[i])
		}
	}
	// Table II against [4]+PFS: the paper reports ratios against
	// Table I's [4], so here we just sanity-check ordering.
	util2, lat2, dem2 := AverageRatios(TableII, 1)
	if !(util2[0] < util2[1] && util2[1] < util2[2] && util2[2] < util2[3]) {
		t.Errorf("Table II util ordering broken: %v", util2)
	}
	if !(lat2[0] > lat2[1] && lat2[1] > lat2[2] && lat2[2] > lat2[3]) {
		t.Errorf("Table II latency ordering broken: %v", lat2)
	}
	if !(dem2[0] > dem2[1] && dem2[2] > dem2[3]) {
		t.Errorf("Table II demand ordering broken: %v", dem2)
	}
}

func TestTable4ConsistentWithPaperClaims(t *testing.T) {
	// 33.8% and 3.3% smaller than CONV and [4].
	gss := Table4[2].NoC3x3
	if r := 1 - float64(gss)/float64(Table4[0].NoC3x3); r < 0.33 || r > 0.35 {
		t.Errorf("NoC saving vs CONV = %.3f, want ~0.338", r)
	}
	if r := 1 - float64(gss)/float64(Table4[1].NoC3x3); r < 0.03 || r > 0.04 {
		t.Errorf("NoC saving vs [4] = %.3f, want ~0.033", r)
	}
}

func TestTable5Ratios(t *testing.T) {
	// The paper: 28.5% less power than CONV on average.
	var conv, ours float64
	for i := 0; i < len(Table5); i += 3 {
		conv += Table5[i].PowerMW
		ours += Table5[i+2].PowerMW
	}
	if r := 1 - ours/conv; r < 0.23 || r > 0.30 {
		t.Errorf("average power saving vs CONV = %.3f, want ~0.285", r)
	}
}
