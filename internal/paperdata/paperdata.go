// Package paperdata records the published numbers of the paper's
// evaluation section (Tables I-V and the Fig. 8 endpoints) as typed data.
// The reproduction uses them in two ways: the report generator
// (cmd/aanoc-report) prints paper-vs-measured comparisons for
// EXPERIMENTS.md, and shape tests assert that the reproduction preserves
// the orderings and approximate ratios the paper claims — without
// expecting absolute cycle counts to match (our substrate is a calibrated
// simulator, not the authors' RTL testbed).
package paperdata

// Cell is one (application, clock) measurement of a design in Table I or
// II: memory utilization, average memory latency of all packets, and
// average latency of the demand packets (cycles).
type Cell struct {
	Util   float64
	LatAll float64
	LatDem float64
}

// Entry is one application/clock row across the four designs of a table.
type Entry struct {
	App      string // bluray, sdtv, ddtv
	Gen      int    // DDR generation
	ClockMHz int
	Cells    [4]Cell // per design, in table column order
}

// TableIDesigns lists Table I's column order.
var TableIDesigns = [4]string{"CONV", "[4]", "GSS", "GSS+SAGM"}

// TableI is the paper's Table I (no priority memory requests).
var TableI = []Entry{
	{"bluray", 1, 133, [4]Cell{{0.755, 121, 111}, {0.763, 81, 63}, {0.771, 74, 65}, {0.774, 69, 60}}},
	{"bluray", 2, 266, [4]Cell{{0.651, 157, 153}, {0.691, 109, 91}, {0.717, 101, 89}, {0.761, 86, 74}}},
	{"bluray", 3, 533, [4]Cell{{0.505, 216, 216}, {0.592, 134, 113}, {0.600, 140, 124}, {0.619, 131, 113}}},
	{"sdtv", 1, 166, [4]Cell{{0.717, 144, 140}, {0.737, 101, 80}, {0.766, 86, 74}, {0.776, 71, 61}}},
	{"sdtv", 2, 333, [4]Cell{{0.625, 173, 171}, {0.673, 120, 96}, {0.715, 108, 94}, {0.756, 91, 77}}},
	{"sdtv", 3, 667, [4]Cell{{0.463, 244, 248}, {0.554, 154, 126}, {0.577, 143, 127}, {0.596, 140, 119}}},
	{"ddtv", 1, 200, [4]Cell{{0.696, 154, 128}, {0.707, 104, 73}, {0.708, 89, 67}, {0.712, 80, 57}}},
	{"ddtv", 2, 400, [4]Cell{{0.555, 246, 196}, {0.627, 149, 107}, {0.627, 141, 104}, {0.682, 115, 85}}},
	{"ddtv", 3, 800, [4]Cell{{0.426, 364, 266}, {0.559, 191, 133}, {0.531, 195, 144}, {0.547, 184, 128}}},
}

// TableIIDesigns lists Table II's column order.
var TableIIDesigns = [4]string{"CONV+PFS", "[4]+PFS", "GSS", "GSS+SAGM"}

// TableII is the paper's Table II (demand requests served as priority
// packets; the third column is the priority-packet latency).
var TableII = []Entry{
	{"bluray", 1, 133, [4]Cell{{0.729, 141, 97}, {0.742, 106, 59}, {0.770, 77, 42}, {0.774, 72, 38}}},
	{"bluray", 2, 266, [4]Cell{{0.612, 176, 123}, {0.621, 134, 73}, {0.699, 112, 72}, {0.745, 96, 60}}},
	{"bluray", 3, 533, [4]Cell{{0.454, 248, 179}, {0.517, 166, 88}, {0.561, 151, 98}, {0.608, 138, 90}}},
	{"sdtv", 1, 166, [4]Cell{{0.676, 163, 105}, {0.699, 124, 64}, {0.755, 96, 57}, {0.779, 76, 41}}},
	{"sdtv", 2, 333, [4]Cell{{0.580, 192, 128}, {0.613, 143, 74}, {0.684, 116, 72}, {0.738, 107, 66}}},
	{"sdtv", 3, 667, [4]Cell{{0.387, 309, 213}, {0.489, 182, 94}, {0.534, 158, 98}, {0.559, 151, 95}}},
	{"ddtv", 1, 200, [4]Cell{{0.655, 183, 131}, {0.675, 124, 62}, {0.700, 103, 55}, {0.709, 80, 36}}},
	{"ddtv", 2, 400, [4]Cell{{0.521, 280, 156}, {0.577, 178, 81}, {0.608, 153, 78}, {0.657, 127, 68}}},
	{"ddtv", 3, 800, [4]Cell{{0.405, 389, 198}, {0.481, 252, 104}, {0.518, 210, 101}, {0.530, 207, 99}}},
}

// TableIIIRow is one line of the paper's Table III: GSS+SAGM+STI measured
// values and the reported improvement over GSS+SAGM.
type TableIIIRow struct {
	App       string
	ClockMHz  int
	Util      float64
	UtilImp   float64 // fractional improvement over GSS+SAGM
	LatAll    float64
	LatAllImp float64
	LatPri    float64
	LatPriImp float64
}

// TableIII is the paper's Table III.
var TableIII = []TableIIIRow{
	{"bluray", 533, 0.674, 0.109, 119, 0.040, 79, 0.122},
	{"sdtv", 667, 0.590, 0.055, 140, 0.073, 87, 0.084},
	{"ddtv", 800, 0.593, 0.119, 161, 0.222, 81, 0.182},
}

// Fig8Endpoint captures the paper's quoted start (no GSS routers) and
// three-router values of the Fig. 8 curves.
type Fig8Endpoint struct {
	App      string
	Gen      int
	ClockMHz int

	Util0, Util3     float64 // memory utilization at k=0 and k=3
	LatAll0, LatAll3 float64 // latency of all packets
	LatPri0, LatPri3 float64 // latency of priority packets
}

// Fig8 lists the paper's quoted Fig. 8 endpoints.
var Fig8 = []Fig8Endpoint{
	{"sdtv", 1, 200, 0.69, 0.77, 134, 88, 92, 54},
	{"bluray", 2, 333, 0.56, 0.73, 157, 98, 122, 63},
	{"ddtv", 3, 667, 0.38, 0.54, 332, 191, 146, 95},
}

// Table4Row is one line of the paper's Table IV (gate counts at 400 MHz).
type Table4Row struct {
	Design          string
	FlowController  int64
	Router          int64
	MemorySubsystem int64
	NoC3x3          int64
}

// Table4 is the paper's Table IV.
var Table4 = []Table4Row{
	{"CONV", 3310, 56683, 489898, 966250},
	{"[4]", 6732, 62949, 158874, 661645},
	{"GSS+SAGM+STI", 6136, 62721, 149245, 639481},
}

// Table5Row is one line of the paper's Table V (average power).
type Table5Row struct {
	App      string
	ClockMHz int
	Design   string
	PowerMW  float64
}

// Table5 is the paper's Table V.
var Table5 = []Table5Row{
	{"sdtv", 200, "CONV", 179.0},
	{"sdtv", 200, "[4]", 116.0},
	{"sdtv", 200, "GSS+SAGM+STI", 115.5},
	{"bluray", 400, "CONV", 351.6},
	{"bluray", 400, "[4]", 227.8},
	{"bluray", 400, "GSS+SAGM+STI", 226.8},
	{"ddtv", 800, "CONV", 961.9},
	{"ddtv", 800, "[4]", 726.0},
	{"ddtv", 800, "GSS+SAGM+STI", 724.1},
}

// AverageRatios returns, for a table's entries, each design column's
// average metric divided by the reference column's average — the paper's
// "Ratio" summary rows.
func AverageRatios(entries []Entry, refCol int) (util, latAll, latDem [4]float64) {
	var sums [4]Cell
	for _, e := range entries {
		for i, c := range e.Cells {
			sums[i].Util += c.Util
			sums[i].LatAll += c.LatAll
			sums[i].LatDem += c.LatDem
		}
	}
	for i := range sums {
		util[i] = sums[i].Util / sums[refCol].Util
		latAll[i] = sums[i].LatAll / sums[refCol].LatAll
		latDem[i] = sums[i].LatDem / sums[refCol].LatDem
	}
	return
}
