// Package check is the runtime invariant layer of the reproduction: a
// set of conformance monitors and conservation audits that re-validate,
// from independently maintained shadow state, the properties the paper's
// evaluation rests on — JEDEC command legality at the DRAM device,
// credit/flit conservation in the meshes, token bounds in the GSS
// engine, and end-of-run request accounting.
//
// The layer is enabled per run by system.Config.Checked (and the
// -checked flag on the CLIs) and costs nothing when off: the simulator
// carries one nil pointer it never touches. When on, violations either
// panic at the detection point (Checker.Panic, the mode the test
// harnesses run under, so a breach pinpoints its cycle) or accumulate
// into the run's observability report as structured obs.Violation
// records (the mode the CLIs run under, so a grid can finish and report
// every breach).
//
// The monitors deliberately do not reuse the fast path's own legality
// logic: the DRAM monitor keeps its own per-bank timing state and
// re-derives every constraint, so a bug in Device.CanIssue (or a
// controller bypassing it) cannot self-certify.
package check

import (
	"fmt"

	"aanoc/internal/obs"
)

// Checker collects invariant violations for one simulation run.
type Checker struct {
	// Panic makes the first violation panic with its description —
	// the mode tests run under, so a breach fails loudly at its cycle.
	Panic bool
	// Limit caps the collected violations (0 selects DefaultLimit); a
	// systematically broken run would otherwise accumulate one record
	// per cycle. Dropped counts the overflow.
	Limit   int
	Dropped int64

	violations []obs.Violation
}

// DefaultLimit bounds collected violations per run.
const DefaultLimit = 100

// Report records one violation, panicking in Panic mode.
func (c *Checker) Report(v obs.Violation) {
	if c.Panic {
		panic("check: " + v.String())
	}
	limit := c.Limit
	if limit <= 0 {
		limit = DefaultLimit
	}
	if len(c.violations) >= limit {
		c.Dropped++
		return
	}
	c.violations = append(c.violations, v)
}

// Reportf builds and records a violation.
func (c *Checker) Reportf(cycle int64, component, kind, format string, args ...any) {
	c.Report(obs.Violation{
		Cycle: cycle, Component: component, Kind: kind,
		Detail: fmt.Sprintf(format, args...),
	})
}

// Violations returns the collected violations (nil when clean).
func (c *Checker) Violations() []obs.Violation { return c.violations }

// Count returns the number of violations recorded, including dropped
// ones.
func (c *Checker) Count() int64 { return int64(len(c.violations)) + c.Dropped }
