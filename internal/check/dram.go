package check

import (
	"aanoc/internal/dram"
)

// shadowBank is the monitor's own copy of one bank's timing state. It is
// maintained exclusively from the observed command stream — never read
// from the device — so the monitor cannot inherit a device-state bug.
type shadowBank struct {
	state dram.BankState

	openRow      int   // row the buffer holds while active (subarray tracking)
	actAt        int64 // cycle of the last ACTIVATE
	readyAt      int64 // precharge/refresh completion (ACT legal after)
	casAllowedAt int64 // tRCD horizon
	preAllowedAt int64 // tRAS/tWR/tRTP horizon

	apPending bool
	apStartAt int64
}

// DRAMMonitor re-validates every command the device accepts against the
// JEDEC constraints of the timing set, using shadow per-bank state. It
// is installed as the device's Observer (which fires only on accepted
// commands), so any command the fast path lets through illegally —
// whether CanIssue mis-approved it or a controller bypassed the check —
// is flagged with its cycle and the violated parameter.
type DRAMMonitor struct {
	c *Checker
	t dram.Timing

	now         int64
	lastCmdAt   int64
	lastCASAt   int64
	lastCASBank int // bank of the last CAS (-1: none); group-aware tCCD
	lastActAt   int64
	lastActBank int      // bank of the last ACT (-1: none); group-aware tRRD
	actTimes    [4]int64 // rolling window of the last four ACTs (tFAW)

	readDataEnd  int64
	writeDataEnd int64
	busBusyUntil int64

	// subarrays is the normalised row-buffer count per bank (>= 1); the
	// shadow buffer for (bank, row) lives at banks[bank*subarrays +
	// row%subarrays], which degenerates to banks[bank] without subarrays.
	subarrays int
	banks     []shadowBank
}

const farPast = -(1 << 30)

// NewDRAMMonitor builds a monitor for one device's command stream.
func NewDRAMMonitor(c *Checker, t dram.Timing) *DRAMMonitor {
	subs := t.Subarrays
	if subs < 1 {
		subs = 1
	}
	m := &DRAMMonitor{
		c: c, t: t,
		lastCmdAt:   -1,
		lastCASAt:   farPast,
		lastCASBank: -1,
		lastActAt:   farPast,
		lastActBank: -1,
		subarrays:   subs,
		banks:       make([]shadowBank, t.Banks*subs),
	}
	for i := range m.banks {
		m.banks[i].actAt = farPast
	}
	for i := range m.actTimes {
		m.actTimes[i] = farPast
	}
	return m
}

// shadowOf returns the shadow row buffer serving a (bank, row) pair.
func (m *DRAMMonitor) shadowOf(bank, row int) *shadowBank {
	return &m.banks[bank*m.subarrays+row%m.subarrays]
}

// rrdFor derives the ACT-to-ACT spacing the monitor expects before an
// ACT to the bank: flat tRRD, or the JEDEC long/short pair when the
// generation has bank groups (same group iff equal bank mod groups) —
// re-derived from the timing package, never read from the device.
func (m *DRAMMonitor) rrdFor(bank int) int64 {
	if m.t.BankGroups > 1 && m.lastActBank >= 0 {
		if bank%m.t.BankGroups == m.lastActBank%m.t.BankGroups {
			return m.t.TRRDL
		}
		return m.t.TRRDS
	}
	return m.t.TRRD
}

// ccdFor derives the CAS-to-CAS spacing (tCCD, or tCCD_L/tCCD_S with
// bank groups) the monitor expects before a column command to the bank.
func (m *DRAMMonitor) ccdFor(bank int) int64 {
	if m.t.BankGroups > 1 && m.lastCASBank >= 0 {
		if bank%m.t.BankGroups == m.lastCASBank%m.t.BankGroups {
			return m.t.TCCDL
		}
		return m.t.TCCDS
	}
	return m.t.TCCD
}

// advance retires shadow auto-precharges and settles completed
// precharges up to now, mirroring the device's time semantics.
func (m *DRAMMonitor) advance(now int64) {
	if now < m.now {
		m.c.Reportf(now, "dram", "time-backwards",
			"command at cycle %d after cycle %d", now, m.now)
	}
	m.now = now
	for i := range m.banks {
		b := &m.banks[i]
		if b.apPending && now >= b.apStartAt {
			b.apPending = false
			b.state = dram.BankPrecharging
			b.readyAt = b.apStartAt + m.t.TRP
		}
		if b.state == dram.BankPrecharging && now >= b.readyAt {
			b.state = dram.BankIdle
		}
	}
}

// Observe validates one accepted command and its reported data window,
// then folds it into the shadow state. Install as dram.Device.Observer.
func (m *DRAMMonitor) Observe(now int64, cmd dram.Command, w dram.DataWindow) {
	m.advance(now)
	report := func(kind, format string, args ...any) {
		m.c.Reportf(now, "dram", kind, format, args...)
	}
	if now == m.lastCmdAt {
		report("cmd-bus", "second command (%s) on the bus in one cycle", cmd)
	}
	m.lastCmdAt = now
	if cmd.Bank < 0 || (cmd.Kind != dram.CmdRefresh && cmd.Bank >= m.t.Banks) {
		report("bank-range", "bank %d outside [0,%d)", cmd.Bank, m.t.Banks)
		return
	}

	switch cmd.Kind {
	case dram.CmdActivate:
		m.checkActivate(cmd, now, report)
	case dram.CmdRead, dram.CmdWrite:
		m.checkColumn(cmd, now, w, report)
	case dram.CmdPrecharge:
		m.checkPrecharge(cmd, now, report)
	case dram.CmdRefresh:
		m.checkRefresh(cmd, now, report)
	default:
		report("unknown-cmd", "command kind %d", int(cmd.Kind))
	}
	if !cmd.IsCAS() && (w != dram.DataWindow{}) {
		report("data-window", "%s reported a data window [%d,%d)", cmd.Kind, w.Start, w.End)
	}
}

func (m *DRAMMonitor) checkActivate(cmd dram.Command, now int64, report func(string, string, ...any)) {
	b := m.shadowOf(cmd.Bank, cmd.Row)
	if b.state != dram.BankIdle {
		report("ACT-state", "ACT to %s bank %d", b.state, cmd.Bank)
	}
	if now < b.readyAt {
		report("tRP", "ACT to bank %d before precharge/refresh completes at %d", cmd.Bank, b.readyAt)
	}
	if now < b.actAt+m.t.TRC {
		report("tRC", "ACT to bank %d only %d cycles after its last ACT (tRC=%d)", cmd.Bank, now-b.actAt, m.t.TRC)
	}
	if trrd := m.rrdFor(cmd.Bank); now < m.lastActAt+trrd {
		report("tRRD", "ACT %d cycles after the previous ACT (tRRD=%d)", now-m.lastActAt, trrd)
	}
	if m.t.TFAW > 0 && now < m.actTimes[0]+m.t.TFAW {
		report("tFAW", "fifth ACT %d cycles into a four-activate window of %d", now-m.actTimes[0], m.t.TFAW)
	}
	b.state = dram.BankActive
	b.openRow = cmd.Row
	b.actAt = now
	b.casAllowedAt = now + m.t.TRCD
	b.preAllowedAt = now + m.t.TRAS
	m.lastActAt = now
	m.lastActBank = cmd.Bank
	copy(m.actTimes[:], m.actTimes[1:])
	m.actTimes[3] = now
}

func (m *DRAMMonitor) checkColumn(cmd dram.Command, now int64, w dram.DataWindow, report func(string, string, ...any)) {
	if m.t.OTF {
		if cmd.BL != 4 && cmd.BL != 8 {
			report("BL", "%s with BL%d on an OTF device (want 4 or 8)", cmd.Kind, cmd.BL)
		}
	} else if cmd.BL != m.t.DeviceBL {
		report("BL", "%s with BL%d on a BL%d-mode device", cmd.Kind, cmd.BL, m.t.DeviceBL)
	}
	b := m.shadowOf(cmd.Bank, cmd.Row)
	if b.state != dram.BankActive {
		report("CAS-state", "%s to %s bank %d", cmd.Kind, b.state, cmd.Bank)
	} else if m.subarrays > 1 && b.openRow != cmd.Row {
		report("subarray-row", "%s to bank %d row %d but its subarray holds row %d",
			cmd.Kind, cmd.Bank, cmd.Row, b.openRow)
	}
	if b.apPending {
		report("AP-pending", "%s to bank %d with a pending auto-precharge", cmd.Kind, cmd.Bank)
	}
	if now < b.casAllowedAt {
		report("tRCD", "%s to bank %d at %d, tRCD horizon %d", cmd.Kind, cmd.Bank, now, b.casAllowedAt)
	}
	if tccd := m.ccdFor(cmd.Bank); now < m.lastCASAt+tccd {
		report("tCCD", "%s %d cycles after the previous CAS (tCCD=%d)", cmd.Kind, now-m.lastCASAt, tccd)
	}
	burst := dram.BurstCycles(cmd.BL)
	var start int64
	if cmd.Kind == dram.CmdRead {
		start = now + m.t.CL
		if now < m.writeDataEnd+m.t.TWTR {
			report("tWTR", "RD %d cycles after write data end (tWTR=%d)", now-m.writeDataEnd, m.t.TWTR)
		}
		if start < m.busBusyUntil {
			report("bus-collision", "RD data at %d collides with bus busy until %d", start, m.busBusyUntil)
		}
	} else {
		start = now + m.t.CWL
		if start < m.busBusyUntil {
			report("bus-collision", "WR data at %d collides with bus busy until %d", start, m.busBusyUntil)
		}
		if start < m.readDataEnd+m.t.TRTW {
			report("tRTW", "WR data at %d only %d cycles after read data end (tRTW=%d)",
				start, start-m.readDataEnd, m.t.TRTW)
		}
	}
	end := start + burst
	if w.Start != start || w.End != end {
		report("data-window", "%s reported window [%d,%d), shadow expects [%d,%d)",
			cmd.Kind, w.Start, w.End, start, end)
	}
	// Fold into shadow state, mirroring the device's published semantics.
	m.lastCASAt = now
	m.lastCASBank = cmd.Bank
	m.busBusyUntil = end
	if cmd.Kind == dram.CmdRead {
		m.readDataEnd = end
		if pre := now + m.t.TRTP + burst; pre > b.preAllowedAt {
			b.preAllowedAt = pre
		}
	} else {
		m.writeDataEnd = end
		if pre := end + m.t.TWR; pre > b.preAllowedAt {
			b.preAllowedAt = pre
		}
	}
	if cmd.AutoPrecharge {
		b.apPending = true
		b.apStartAt = b.preAllowedAt
	}
}

func (m *DRAMMonitor) checkPrecharge(cmd dram.Command, now int64, report func(string, string, ...any)) {
	b := m.shadowOf(cmd.Bank, cmd.Row)
	if b.state != dram.BankActive {
		report("PRE-state", "PRE to %s bank %d", b.state, cmd.Bank)
	}
	if b.apPending {
		report("AP-pending", "PRE to bank %d with a pending auto-precharge", cmd.Bank)
	}
	if now < b.preAllowedAt {
		report("tRAS/tWR/tRTP", "PRE to bank %d at %d, allowed at %d", cmd.Bank, now, b.preAllowedAt)
	}
	b.state = dram.BankPrecharging
	b.readyAt = now + m.t.TRP
}

func (m *DRAMMonitor) checkRefresh(_ dram.Command, now int64, report func(string, string, ...any)) {
	for i := range m.banks {
		b := &m.banks[i]
		if b.state != dram.BankIdle || now < b.readyAt {
			report("REF-not-idle", "REF with bank %d %s (ready at %d)", i/m.subarrays, b.state, b.readyAt)
		}
		if b.apPending {
			report("REF-not-idle", "REF with pending auto-precharge on bank %d", i/m.subarrays)
		}
	}
	for i := range m.banks {
		m.banks[i].readyAt = now + m.t.TRFC
	}
}
