package check

import (
	"aanoc/internal/dram"
)

// DPQBound is the closed-form worst-case access-latency model of the
// DPQ arbiter (memctrl.DPQ), computed from the resolved DDR timing
// package alone. The arbiter's structure makes the bound derivable:
//
//   - Rotation round-robin over N requestor queues: after any grant the
//     served requestor drops to the rotation tail, so between two grants
//     to one requestor at most N-1 foreign grants interpose. A request
//     admitted at position p (1-based) of its own queue therefore waits
//     for at most p*N - 1 grants, plus however many requests the command
//     pipeline already holds (engine occupancy at admission).
//
//   - Depth-1 closed-page pipeline: requests are serviced one at a time,
//     strictly in order, and every access pays the full page cycle —
//     there is no cross-request state (open rows) that could make one
//     service time depend on another request's address.
//
// Each interfering request is charged the worst-case service time of the
// largest request the workload can present (MaxBeats); the request
// itself is charged its own service time. Refresh is folded in by fixed
// point: every tREFI window inside the waiting interval can steal one
// worst-case refresh drain.
//
// Every component of the bound is deliberately pessimistic (sums of
// worst-case waits that cannot all occur together), so the bound is
// sound — a completion past the deadline can only mean the arbiter or
// the device violated its contract, which is exactly what checked mode
// wants to detect.
type DPQBound struct {
	t dram.Timing
	// Requestors is the arbiter's queue count N.
	Requestors int
	// MaxBeats is the largest single-request beat count the workload can
	// present; interfering requests are charged its service time.
	MaxBeats int
}

// boundMargin absorbs the handful of fixed pipeline cycles (command-bus
// slot rotation, retirement granularity) that are not part of any JEDEC
// parameter.
const boundMargin = 16

// NewDPQBound builds the bound model for an arbiter with the given
// requestor count serving a workload whose largest request is maxBeats.
func NewDPQBound(t dram.Timing, requestors, maxBeats int) *DPQBound {
	if requestors < 1 {
		requestors = 1
	}
	if maxBeats < 1 {
		maxBeats = 1
	}
	return &DPQBound{t: t, Requestors: requestors, MaxBeats: maxBeats}
}

// Service bounds the cycles one closed-page access of the given beat
// count can occupy the depth-1 pipeline, measured from the cycle the
// pipeline takes the request to the cycle its data window closes:
// worst-case wait for the bank to accept an ACT (refresh recovery, write
// recovery and precharge of the previous access, tRC/tRRD/tFAW activate
// spacing — summed, since each is an independent upper bound on the
// remaining wait), then tRCD, then k = ceil(beats/BL) column bursts each
// paying full data transfer plus a bus turnaround, then the last burst's
// data tail.
func (b *DPQBound) Service(beats int) int64 {
	t := b.t
	burst := dram.BurstCycles(t.DeviceBL)
	if beats < 1 {
		beats = 1
	}
	k := int64((beats + t.DeviceBL - 1) / t.DeviceBL)
	// With bank groups the long (same-group) spacings dominate the flat
	// parameter; worst case charges every spacing at its long value.
	trrd, tccd := t.TRRD, t.TCCD
	if t.TRRDL > trrd {
		trrd = t.TRRDL
	}
	if t.TCCDL > tccd {
		tccd = t.TCCDL
	}
	dact := t.TRFC + t.CWL + burst + t.TWR + t.TRP + t.TRC + t.TFAW + trrd
	perBurst := tccd + t.CL + t.CWL + burst + t.TWTR + t.TRTW + 2
	tail := t.CL + t.CWL + burst + 2
	return dact + t.TRCD + k*perBurst + tail
}

// refreshCost bounds one refresh interruption: drain (covered by the
// interfering-request terms), precharge every bank one per cycle with
// worst-case row-open recovery, then tRP + tRFC.
func (b *DPQBound) refreshCost() int64 {
	t := b.t
	return int64(t.Banks)*(t.TRAS+t.TWR+t.TRP+2) + t.TRP + t.TRFC + boundMargin
}

// Deadline returns the latest legal completion cycle for a request
// admitted at cycle admit, at 1-based position queuePos of its own
// queue, with engineOcc requests already inside the pipeline, moving
// beats beats. Interference: queuePos*N - 1 grants may precede the
// request's own grant, plus the engineOcc residents; each is charged
// Service(MaxBeats). Refresh interruptions fold in by fixed point — the
// iteration converges because each pass can only grow the interval by
// whole refresh costs, and three passes over-approximate the limit for
// any interval shorter than years of simulated time.
func (b *DPQBound) Deadline(admit int64, queuePos, engineOcc, beats int) int64 {
	if queuePos < 1 {
		queuePos = 1
	}
	if engineOcc < 0 {
		engineOcc = 0
	}
	ahead := int64(queuePos*b.Requestors-1) + int64(engineOcc)
	base := ahead*b.Service(b.MaxBeats) + b.Service(beats) + boundMargin
	total := base
	if b.t.TREFI > 0 {
		for i := 0; i < 3; i++ {
			refs := total/b.t.TREFI + 2
			total = base + refs*b.refreshCost()
		}
	}
	return admit + total
}

// DPQMonitor asserts the DPQ arbiter's analytic worst-case access
// latency at runtime: every admission (reported by the arbiter's
// OnAdmit hook) registers a closed-form deadline, and every completion
// is compared against it. A completion past its deadline — or a request
// still outstanding past its deadline at end of run — is a checked-mode
// violation: the arbiter's bounded-latency guarantee did not hold.
type DPQMonitor struct {
	C *Checker
	B *DPQBound

	// Name qualifies the violation component (per-channel monitors).
	Name string

	deadlines map[int64]int64
	// Checked counts completions compared against a deadline.
	Checked int64
}

// NewDPQMonitor builds a monitor reporting into c.
func NewDPQMonitor(c *Checker, b *DPQBound, name string) *DPQMonitor {
	if name == "" {
		name = "memctrl/dpq"
	}
	return &DPQMonitor{C: c, B: b, Name: name, deadlines: make(map[int64]int64)}
}

// Admit registers a request's deadline from its admission facts.
func (m *DPQMonitor) Admit(id int64, beats, queuePos, engineOcc int, now int64) {
	m.deadlines[id] = m.B.Deadline(now, queuePos, engineOcc, beats)
}

// Complete checks a completion against its registered deadline.
func (m *DPQMonitor) Complete(id int64, at int64) {
	dl, ok := m.deadlines[id]
	if !ok {
		m.C.Reportf(at, m.Name, "wcet-bound",
			"completion of request %d was never admitted", id)
		return
	}
	delete(m.deadlines, id)
	m.Checked++
	if at > dl {
		m.C.Reportf(at, m.Name, "wcet-bound",
			"request %d completed at %d, past its analytic WCET deadline %d (late by %d)",
			id, at, dl, at-dl)
	}
}

// Flush reports requests still outstanding past their deadline when the
// run ends at cycle end (requests whose deadline lies beyond the run are
// legitimately unfinished).
func (m *DPQMonitor) Flush(end int64) {
	for id, dl := range m.deadlines {
		if dl < end {
			m.C.Reportf(end, m.Name, "wcet-bound",
				"request %d still outstanding at end of run, past its analytic WCET deadline %d",
				id, dl)
		}
	}
}

// RegulatorMonitor shadow-audits the bandwidth regulator's invariant: no
// core may be charged more than its per-bank beat budget inside any
// regulation window. It maintains its own usage ledger from the
// regulator's OnAdmit facts — a regulator bug that over-admits cannot
// self-certify through its own accounting.
type RegulatorMonitor struct {
	C *Checker

	// Name qualifies the violation component (per-channel monitors).
	Name string
	// Window and Budget mirror the regulator's resolved configuration.
	Window, Budget int64

	usage  map[[2]int]int64
	window int64
	// Checked counts admissions audited.
	Checked int64
}

// NewRegulatorMonitor builds a monitor reporting into c.
func NewRegulatorMonitor(c *Checker, window, budget int64, name string) *RegulatorMonitor {
	if name == "" {
		name = "memctrl/regulator"
	}
	if window < 1 {
		window = 1
	}
	return &RegulatorMonitor{
		C: c, Name: name, Window: window, Budget: budget,
		usage: make(map[[2]int]int64),
	}
}

// Admit audits one admission against the shadow ledger.
func (m *RegulatorMonitor) Admit(core, bank, beats int, now int64) {
	if w := now / m.Window; w != m.window {
		m.window = w
		for k := range m.usage {
			delete(m.usage, k)
		}
	}
	k := [2]int{core, bank}
	m.usage[k] += int64(beats)
	m.Checked++
	if m.usage[k] > m.Budget {
		m.C.Reportf(now, m.Name, "regulation-window",
			"core %d charged %d beats against bank %d in window %d, budget %d",
			core, m.usage[k], bank, m.window, m.Budget)
	}
}
