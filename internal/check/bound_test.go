package check

import (
	"strings"
	"testing"

	"aanoc/internal/dram"
	"aanoc/internal/memctrl"
	"aanoc/internal/noc"
)

func TestDPQBoundShape(t *testing.T) {
	tm := dram.MustSpeed(dram.DDR2, 333)
	b := NewDPQBound(tm, 4, 32)
	if s8, s32 := b.Service(8), b.Service(32); s32 <= s8 {
		t.Errorf("Service must grow with beats: S(8)=%d S(32)=%d", s8, s32)
	}
	d1 := b.Deadline(100, 1, 0, 8)
	d2 := b.Deadline(100, 2, 0, 8)
	d3 := b.Deadline(100, 1, 3, 8)
	if d2 <= d1 || d3 <= d1 {
		t.Errorf("Deadline must grow with queue position and occupancy: %d %d %d", d1, d2, d3)
	}
	if d1 <= 100 {
		t.Errorf("deadline %d must lie after admission", d1)
	}
	// A deep queue position folds in extra refresh windows.
	deep := b.Deadline(0, 30, 0, 8)
	if deep < 30*4*b.Service(32) {
		t.Errorf("deep deadline %d undercuts raw interference", deep)
	}
}

// TestDPQBoundHoldsUnderLoad drives the real arbiter at full tilt and
// asserts no completion ever crosses its analytic deadline — the bound
// is sound against the implementation it models.
func TestDPQBoundHoldsUnderLoad(t *testing.T) {
	for _, gen := range []struct {
		g   dram.Generation
		mhz int
	}{{dram.DDR1, 200}, {dram.DDR2, 333}, {dram.DDR3, 667}} {
		tm := dram.MustSpeed(gen.g, gen.mhz)
		dev := dram.MustNewDevice(tm)
		const n, maxBeats = 4, 32
		var c Checker
		c.Panic = true
		mon := NewDPQMonitor(&c, NewDPQBound(tm, n, maxBeats), "")
		d := memctrl.NewDPQ(dev, memctrl.DPQConfig{Requestors: n, QueueDepth: 8},
			func(memctrl.Completion) {})
		d.OnAdmit = mon.Admit
		d.OnComplete = mon.Complete
		// Adversarial stream: every request conflicts in one bank, mixed
		// directions, mixed sizes up to maxBeats.
		var pkts []*noc.Packet
		for i := int64(0); i < 48; i++ {
			beats := 8
			if i%3 == 0 {
				beats = maxBeats
			}
			p := &noc.Packet{
				ID: i + 1, ParentID: i + 1, Kind: noc.Kind(i % 2), Class: noc.ClassMedia,
				Addr:  dram.Address{Bank: 0, Row: int(i), Col: 0},
				Beats: beats, Flits: noc.FlitsForBeats(beats), Splits: 1,
			}
			p.SrcCore = int(i) % n
			pkts = append(pkts, p)
		}
		i := 0
		for now := int64(0); now < 200000; now++ {
			for i < len(pkts) && d.Offer(pkts[i], now) {
				i++
			}
			d.Tick(now)
			if i == len(pkts) && !d.Busy() {
				break
			}
		}
		if d.Busy() {
			t.Fatalf("%v-%d: arbiter did not drain", gen.g, gen.mhz)
		}
		mon.Flush(200000)
		if mon.Checked != 48 {
			t.Errorf("%v-%d: checked %d completions, want 48", gen.g, gen.mhz, mon.Checked)
		}
	}
}

func TestDPQMonitorDetectsLateCompletion(t *testing.T) {
	tm := dram.MustSpeed(dram.DDR2, 333)
	var c Checker
	mon := NewDPQMonitor(&c, NewDPQBound(tm, 2, 8), "")
	mon.Admit(7, 8, 1, 0, 100)
	dl := mon.B.Deadline(100, 1, 0, 8)
	mon.Complete(7, dl+1)
	vs := c.Violations()
	if len(vs) != 1 || vs[0].Kind != "wcet-bound" {
		t.Fatalf("violations = %v", vs)
	}
	if !strings.Contains(vs[0].Detail, "late by 1") {
		t.Errorf("detail = %q", vs[0].Detail)
	}
}

func TestDPQMonitorFlushReportsStragglers(t *testing.T) {
	tm := dram.MustSpeed(dram.DDR2, 333)
	var c Checker
	mon := NewDPQMonitor(&c, NewDPQBound(tm, 2, 8), "")
	mon.Admit(1, 8, 1, 0, 0)
	mon.Admit(2, 8, 1, 0, 1<<40) // deadline beyond the run: legitimate
	mon.Flush(1 << 30)
	if n := c.Count(); n != 1 {
		t.Fatalf("flush violations = %d, want 1 (only the overdue straggler)", n)
	}
}

// TestRegulatorMonitorCatchesDisabledGate is the behavioural mutation:
// a real regulator with its eligibility gate broken (DisableGate) admits
// past the budget under single-bank pressure, and the monitor — built
// from the same resolved config a correct controller would honour —
// must flag it.
func TestRegulatorMonitorCatchesDisabledGate(t *testing.T) {
	tm := dram.MustSpeed(dram.DDR2, 333)
	dev := dram.MustNewDevice(tm)
	cfg := memctrl.RegulatorConfig{
		Cores: 2, QueueDepth: 16, Window: 100_000, Budget: 64,
		PipelineDepth: 4, Policy: memctrl.OpenPage, DisableGate: true,
	}
	var c Checker
	reg := memctrl.NewRegulator(dev, cfg, func(memctrl.Completion) {})
	rc := reg.Config()
	mon := NewRegulatorMonitor(&c, rc.Window, rc.Budget, "")
	reg.OnAdmit = mon.Admit
	// One core hammers one bank: 16 requests x 8 beats = 128 beats,
	// double the 64-beat window budget.
	var pkts []*noc.Packet
	for i := int64(0); i < 16; i++ {
		pkts = append(pkts, &noc.Packet{
			ID: i + 1, ParentID: i + 1, Kind: noc.Read, Class: noc.ClassMedia,
			Addr:  dram.Address{Bank: 0, Row: 1, Col: int(i) * 8},
			Beats: 8, Flits: noc.FlitsForBeats(8), Splits: 1,
		})
	}
	i := 0
	for now := int64(0); now < 100_000; now++ {
		for i < len(pkts) && reg.Offer(pkts[i], now) {
			i++
		}
		reg.Tick(now)
		if i == len(pkts) && !reg.Busy() {
			break
		}
	}
	if c.Count() == 0 {
		t.Fatal("monitor missed a gate-disabled regulator exceeding its budget")
	}
	if v := c.Violations()[0]; v.Kind != "regulation-window" {
		t.Errorf("kind = %q", v.Kind)
	}
}

func TestRegulatorMonitorAuditsWindows(t *testing.T) {
	var c Checker
	mon := NewRegulatorMonitor(&c, 1000, 16, "")
	mon.Admit(0, 0, 8, 10)
	mon.Admit(0, 0, 8, 20) // exactly at budget: legal
	if c.Count() != 0 {
		t.Fatalf("within-budget admissions flagged: %v", c.Violations())
	}
	mon.Admit(0, 0, 1, 30) // 17 > 16: breach
	if c.Count() != 1 {
		t.Fatalf("breach not flagged")
	}
	if v := c.Violations()[0]; v.Kind != "regulation-window" {
		t.Errorf("kind = %q", v.Kind)
	}
	// The next window starts a fresh ledger.
	mon.Admit(0, 0, 16, 1500)
	if c.Count() != 1 {
		t.Error("window roll should reset usage")
	}
	// Distinct banks and cores hold independent budgets.
	mon.Admit(1, 0, 16, 1600)
	mon.Admit(0, 1, 16, 1600)
	if c.Count() != 1 {
		t.Errorf("independent (core,bank) pairs flagged: %v", c.Violations())
	}
}
