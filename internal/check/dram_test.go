package check

import (
	"testing"

	"aanoc/internal/dram"
)

// kinds collects the Kind fields of every violation in c.
func kinds(c *Checker) []string {
	var out []string
	for _, v := range c.Violations() {
		out = append(out, v.Kind)
	}
	return out
}

func hasKind(c *Checker, kind string) bool {
	for _, v := range c.Violations() {
		if v.Kind == kind {
			return true
		}
	}
	return false
}

// TestMonitorAcceptsDeviceVettedStream is the mirror test: every command
// the real device accepts must also satisfy the monitor's shadow state.
// A deterministic driver walks a candidate list each cycle and issues the
// first command CanIssue approves, exercising ACT/RD/WR/PRE/REF and the
// auto-precharge path across every predefined speed grade.
func TestMonitorAcceptsDeviceVettedStream(t *testing.T) {
	for _, gen := range []dram.Generation{dram.DDR1, dram.DDR2, dram.DDR3} {
		for _, mhz := range dram.Speeds(gen) {
			tm := dram.MustSpeed(gen, mhz)
			t.Run(tm.Generation.String()+"-"+itoa(mhz), func(t *testing.T) {
				dev := dram.MustNewDevice(tm)
				var c Checker
				mon := NewDRAMMonitor(&c, tm)
				dev.Observer = mon.Observe

				issued := 0
				row := 0
				for now := int64(0); now < 3000; now++ {
					dev.Sync(now)
					for _, cmd := range candidates(tm, now, row) {
						if dev.CanIssue(cmd, now) {
							if _, err := dev.Issue(cmd, now); err != nil {
								t.Fatalf("cycle %d: device retracted %v: %v", now, cmd, err)
							}
							issued++
							if cmd.Kind == dram.CmdActivate {
								row++
							}
							break
						}
					}
				}
				if issued < 100 {
					t.Fatalf("driver only issued %d commands; stream too thin to validate", issued)
				}
				if c.Count() != 0 {
					t.Fatalf("monitor flagged %d violations on a device-vetted stream: %v",
						c.Count(), kinds(&c))
				}
			})
		}
	}
}

// candidates proposes a rotating command mix so different constraint
// paths are stressed at different cycles.
func candidates(tm dram.Timing, now int64, row int) []dram.Command {
	bank := int(now) % tm.Banks
	bl := tm.DeviceBL
	if tm.OTF && now%3 == 0 {
		bl = 4
	}
	ap := now%7 == 0
	switch now % 11 {
	case 0, 1, 2:
		return []dram.Command{
			{Kind: dram.CmdRead, Bank: bank, BL: bl, AutoPrecharge: ap},
			{Kind: dram.CmdActivate, Bank: bank, Row: row},
			{Kind: dram.CmdPrecharge, Bank: bank},
		}
	case 3, 4, 5:
		return []dram.Command{
			{Kind: dram.CmdWrite, Bank: bank, BL: bl, AutoPrecharge: ap},
			{Kind: dram.CmdActivate, Bank: bank, Row: row},
			{Kind: dram.CmdRead, Bank: (bank + 1) % tm.Banks, BL: bl},
		}
	case 6:
		return []dram.Command{
			{Kind: dram.CmdRefresh},
			{Kind: dram.CmdPrecharge, Bank: bank},
			{Kind: dram.CmdWrite, Bank: bank, BL: bl},
		}
	default:
		return []dram.Command{
			{Kind: dram.CmdActivate, Bank: bank, Row: row},
			{Kind: dram.CmdRead, Bank: bank, BL: bl},
			{Kind: dram.CmdWrite, Bank: (bank + 2) % tm.Banks, BL: bl, AutoPrecharge: ap},
			{Kind: dram.CmdPrecharge, Bank: (bank + 1) % tm.Banks},
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// The hand-driven tests below feed the monitor streams no conformant
// device would produce, isolating one constraint each.

func TestMonitorCatchesTRCD(t *testing.T) {
	tm := dram.MustSpeed(dram.DDR3, 533) // tRCD = 7
	var c Checker
	mon := NewDRAMMonitor(&c, tm)
	mon.Observe(0, dram.Command{Kind: dram.CmdActivate, Bank: 0, Row: 3}, dram.DataWindow{})
	rd := dram.Command{Kind: dram.CmdRead, Bank: 0, BL: 8}
	w := dram.DataWindow{Start: 5 + tm.CL, End: 5 + tm.CL + dram.BurstCycles(8)}
	mon.Observe(5, rd, w)
	if !hasKind(&c, "tRCD") {
		t.Fatalf("RD 5 cycles after ACT (tRCD=%d) not flagged; got %v", tm.TRCD, kinds(&c))
	}
	if got := kinds(&c); len(got) != 1 {
		t.Fatalf("want the single violation tRCD, got %v", got)
	}
}

func TestMonitorCatchesTFAW(t *testing.T) {
	// Custom grade with tFAW far above 4*tRRD so the fifth ACT violates
	// only the four-activate window.
	tm := dram.MustSpeed(dram.DDR3, 533)
	tm.TFAW = 20
	tm.TRRD = 2
	var c Checker
	mon := NewDRAMMonitor(&c, tm)
	for i := int64(0); i < 5; i++ {
		mon.Observe(i*2, dram.Command{Kind: dram.CmdActivate, Bank: int(i), Row: 1}, dram.DataWindow{})
	}
	if !hasKind(&c, "tFAW") {
		t.Fatalf("fifth ACT at cycle 8 inside tFAW=20 window not flagged; got %v", kinds(&c))
	}
	if got := kinds(&c); len(got) != 1 {
		t.Fatalf("want the single violation tFAW, got %v", got)
	}
}

func TestMonitorCatchesBusCollision(t *testing.T) {
	tm := dram.MustSpeed(dram.DDR2, 400) // CL=6, tCCD=2, burst BL8 = 4 cycles
	var c Checker
	mon := NewDRAMMonitor(&c, tm)
	mon.Observe(0, dram.Command{Kind: dram.CmdActivate, Bank: 0, Row: 0}, dram.DataWindow{})
	issueRD := func(now int64) {
		w := dram.DataWindow{Start: now + tm.CL, End: now + tm.CL + dram.BurstCycles(8)}
		mon.Observe(now, dram.Command{Kind: dram.CmdRead, Bank: 0, BL: 8}, w)
	}
	issueRD(tm.TRCD)     // data [12,16)
	issueRD(tm.TRCD + 2) // data [14,18): overlaps, tCCD satisfied
	if !hasKind(&c, "bus-collision") {
		t.Fatalf("overlapping read bursts not flagged; got %v", kinds(&c))
	}
}

func TestMonitorCatchesAPBookkeeping(t *testing.T) {
	tm := dram.MustSpeed(dram.DDR2, 400)
	var c Checker
	mon := NewDRAMMonitor(&c, tm)
	mon.Observe(0, dram.Command{Kind: dram.CmdActivate, Bank: 0, Row: 0}, dram.DataWindow{})
	now := tm.TRCD
	w := dram.DataWindow{Start: now + tm.CL, End: now + tm.CL + dram.BurstCycles(8)}
	mon.Observe(now, dram.Command{Kind: dram.CmdRead, Bank: 0, BL: 8, AutoPrecharge: true}, w)
	// A second CAS to the bank while its auto-precharge is pending.
	now += tm.TCCD
	w = dram.DataWindow{Start: now + tm.CL, End: now + tm.CL + dram.BurstCycles(8)}
	mon.Observe(now, dram.Command{Kind: dram.CmdRead, Bank: 0, BL: 8}, w)
	if !hasKind(&c, "AP-pending") {
		t.Fatalf("CAS into pending auto-precharge not flagged; got %v", kinds(&c))
	}
}

func TestMonitorCatchesWrongDataWindow(t *testing.T) {
	tm := dram.MustSpeed(dram.DDR2, 400)
	var c Checker
	mon := NewDRAMMonitor(&c, tm)
	mon.Observe(0, dram.Command{Kind: dram.CmdActivate, Bank: 0, Row: 0}, dram.DataWindow{})
	now := tm.TRCD
	// Report a window one cycle early — a desynchronized device model.
	w := dram.DataWindow{Start: now + tm.CL - 1, End: now + tm.CL - 1 + dram.BurstCycles(8)}
	mon.Observe(now, dram.Command{Kind: dram.CmdRead, Bank: 0, BL: 8}, w)
	if !hasKind(&c, "data-window") {
		t.Fatalf("mismatched data window not flagged; got %v", kinds(&c))
	}
}

func TestMonitorCatchesCommandBusDoubleIssue(t *testing.T) {
	tm := dram.MustSpeed(dram.DDR2, 400)
	var c Checker
	mon := NewDRAMMonitor(&c, tm)
	mon.Observe(0, dram.Command{Kind: dram.CmdActivate, Bank: 0, Row: 0}, dram.DataWindow{})
	mon.Observe(0, dram.Command{Kind: dram.CmdActivate, Bank: 1, Row: 0}, dram.DataWindow{})
	if !hasKind(&c, "cmd-bus") {
		t.Fatalf("two commands in one cycle not flagged; got %v", kinds(&c))
	}
}

// TestMonitorCatchesInjectedFault closes the loop with the device's
// mutation hook: a device with FaultSkipTRCD armed accepts an early CAS,
// and the monitor attached as its Observer must flag it.
func TestMonitorCatchesInjectedFault(t *testing.T) {
	tm := dram.MustSpeed(dram.DDR2, 400)
	dev := dram.MustNewDevice(tm)
	dev.InjectFault(dram.FaultSkipTRCD)
	var c Checker
	mon := NewDRAMMonitor(&c, tm)
	dev.Observer = mon.Observe

	if _, err := dev.Issue(dram.Command{Kind: dram.CmdActivate, Bank: 0, Row: 0}, 0); err != nil {
		t.Fatal(err)
	}
	rd := dram.Command{Kind: dram.CmdRead, Bank: 0, BL: 8}
	if !dev.CanIssue(rd, 4) {
		t.Fatal("fault injection did not disarm the device's tRCD check")
	}
	if _, err := dev.Issue(rd, 4); err != nil {
		t.Fatal(err)
	}
	if !hasKind(&c, "tRCD") {
		t.Fatalf("monitor missed the fault-injected early CAS; got %v", kinds(&c))
	}
}
