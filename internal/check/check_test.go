package check

import (
	"strings"
	"testing"

	"aanoc/internal/obs"
)

func TestCheckerCollects(t *testing.T) {
	var c Checker
	c.Reportf(12, "dram", "tFAW", "fifth ACT at %d", 12)
	c.Reportf(13, "noc/request", "credit-conservation", "vc0 over depth")
	if got := c.Count(); got != 2 {
		t.Fatalf("Count() = %d, want 2", got)
	}
	vs := c.Violations()
	if len(vs) != 2 {
		t.Fatalf("Violations() len = %d, want 2", len(vs))
	}
	want := obs.Violation{Cycle: 12, Component: "dram", Kind: "tFAW", Detail: "fifth ACT at 12"}
	if vs[0] != want {
		t.Errorf("violation[0] = %+v, want %+v", vs[0], want)
	}
	if !strings.Contains(vs[0].String(), "cycle 12: dram: tFAW") {
		t.Errorf("String() = %q", vs[0].String())
	}
}

func TestCheckerLimit(t *testing.T) {
	c := Checker{Limit: 3}
	for i := 0; i < 10; i++ {
		c.Reportf(int64(i), "dram", "tCCD", "violation %d", i)
	}
	if len(c.Violations()) != 3 {
		t.Fatalf("collected %d violations, want limit 3", len(c.Violations()))
	}
	if c.Dropped != 7 {
		t.Fatalf("Dropped = %d, want 7", c.Dropped)
	}
	if c.Count() != 10 {
		t.Fatalf("Count() = %d, want 10", c.Count())
	}
}

func TestCheckerDefaultLimit(t *testing.T) {
	var c Checker
	for i := 0; i < DefaultLimit+5; i++ {
		c.Reportf(int64(i), "dram", "tCCD", "violation")
	}
	if len(c.Violations()) != DefaultLimit {
		t.Fatalf("collected %d, want DefaultLimit %d", len(c.Violations()), DefaultLimit)
	}
	if c.Dropped != 5 {
		t.Fatalf("Dropped = %d, want 5", c.Dropped)
	}
}

func TestCheckerPanics(t *testing.T) {
	c := Checker{Panic: true}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Report in Panic mode did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "tRCD") {
			t.Fatalf("panic value %v, want message naming tRCD", r)
		}
	}()
	c.Reportf(7, "dram", "tRCD", "RD too early")
}
