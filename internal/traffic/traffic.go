// Package traffic generates the application memory request streams the
// paper's benchmarks are built from. Each core carries one or more
// streams; a stream produces logical requests (before any SAGM splitting)
// with a configurable class, burst-size mix, read/write mix, offered load
// and address pattern.
//
// The paper evaluates proprietary industrial traffic (Blu-ray and DTV
// SoCs); these generators are the documented substitution: they reproduce
// the traffic structure the paper's mechanisms react to — packet-length
// distribution (granularity mismatch), demand-vs-best-effort mix
// (priority service), and bank/row locality (conflict and row-hit rates).
package traffic

import (
	"fmt"

	"aanoc/internal/dram"
	"aanoc/internal/noc"
	"aanoc/internal/sim"
)

// Pattern selects how a stream walks the address space.
type Pattern int

const (
	// Streaming walks columns sequentially through rows of a private row
	// region, advancing banks page by page like a frame buffer with
	// row-bank-column interleaving: strongly row-hit-friendly within the
	// stream, conflict-prone across streams sharing banks.
	Streaming Pattern = iota
	// Random draws a fresh bank and row for every request (demand-miss
	// style traffic).
	Random
	// Strided alternates between two row regions (double-buffered
	// producer/consumer behaviour).
	Strided
)

// Stream describes one request stream of a core.
type Stream struct {
	Name  string
	Class noc.Class

	// ReadFrac is the probability a request is a read.
	ReadFrac float64
	// Beats lists the burst sizes (in data beats) the stream draws from,
	// uniformly; repeat an entry to weight it.
	Beats []int
	// LoadFrac is the offered load as a fraction of the DRAM data-bus
	// bandwidth (open-loop streams). A request of b beats occupies b/2
	// bus cycles, so the mean inter-arrival time is (b/2)/LoadFrac.
	LoadFrac float64

	// ClosedLoop streams (CPU demand) bound their outstanding requests
	// and think for ThinkTime cycles after each completion.
	ClosedLoop bool
	ThinkTime  int64
	// MaxOutstanding is the closed-loop window (default 1). A superscalar
	// core with several misses in flight issues bursts of demand requests
	// — the paper's Fig. 1 scenario where two priority packets to the
	// same bank compete.
	MaxOutstanding int

	Pattern Pattern
	// BankOffset rotates the stream's bank walk so different cores start
	// on different banks.
	BankOffset int
	// RowBase/RowRange bound the stream's private row region.
	RowBase, RowRange int
}

// Validate reports specification errors.
func (s *Stream) Validate() error {
	if len(s.Beats) == 0 {
		return fmt.Errorf("traffic: stream %q has no burst sizes", s.Name)
	}
	for _, b := range s.Beats {
		if b < 1 {
			return fmt.Errorf("traffic: stream %q has burst of %d beats", s.Name, b)
		}
	}
	if !s.ClosedLoop && (s.LoadFrac <= 0 || s.LoadFrac > 1) {
		return fmt.Errorf("traffic: stream %q load fraction %v outside (0,1]", s.Name, s.LoadFrac)
	}
	if s.ReadFrac < 0 || s.ReadFrac > 1 {
		return fmt.Errorf("traffic: stream %q read fraction %v", s.Name, s.ReadFrac)
	}
	if s.RowRange < 1 {
		return fmt.Errorf("traffic: stream %q empty row region", s.Name)
	}
	return nil
}

// Source produces logical requests for one stream of a core: the
// synthetic generators of this package, or a trace.Replayer feeding
// recorded workloads back into the system.
type Source interface {
	// Tick returns the request issued this cycle, or nil. blocked
	// reports network-interface backpressure.
	Tick(now int64, blocked bool) *Request
	// OnComplete notifies the source that one of its logical requests
	// finished (closed-loop pacing).
	OnComplete(now int64)
	// NextArrival returns the earliest cycle the source could produce a
	// request, judged from its own state — or math.MaxInt64 when only a
	// completion can unblock it (a saturated closed-loop window, an
	// exhausted trace). Ticks strictly before NextArrival return nil
	// without changing state, so the simulation kernel skips them.
	NextArrival() int64
}

// Request is a logical memory request produced by a stream, before SAGM
// splitting and packetisation.
type Request struct {
	Stream   *Gen
	Kind     noc.Kind
	Class    noc.Class
	Priority bool
	Addr     dram.Address
	Beats    int
	// EndOfRow marks the stream's last access to this DRAM row; under
	// SAGM the network interface places the auto-precharge tag only on
	// the final split of such a request, so the partially-open-page
	// policy keeps rows open exactly as long as the application will
	// still hit them.
	EndOfRow bool
}

// Gen is the runtime state of one stream.
type Gen struct {
	Spec Stream
	rng  *sim.RNG

	banks    int
	rowBeats int // beats per row (page size / bus width)

	nextAt      int64
	outstanding int

	bank, row, colBeat int

	priority bool // demand requests flagged priority this run

	// Produced counts generated requests; Blocked counts generation
	// opportunities lost to backpressure.
	Produced int64
	Blocked  int64
	// Reads/Writes split Produced by direction; beatMenu/beatCounts are
	// the produced burst-size histogram over the menu's distinct sizes
	// (parallel slices preallocated at construction, so counting stays
	// off the allocator on the hot path). The calibration layer compares
	// these against the stream's declared distribution.
	Reads, Writes int64
	beatMenu      []int
	beatCounts    []int64
}

// NewGen builds the runtime generator for a stream. banks and rowBeats
// describe the device geometry (rowBeats = row size in data beats);
// priority marks whether demand-class requests carry the priority flag
// this run.
func NewGen(spec Stream, banks, rowBeats int, priority bool, rng *sim.RNG) (*Gen, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if banks < 1 || rowBeats < 1 {
		return nil, fmt.Errorf("traffic: bad geometry banks=%d rowBeats=%d", banks, rowBeats)
	}
	g := &Gen{
		Spec:     spec,
		rng:      rng,
		banks:    banks,
		rowBeats: rowBeats,
		bank:     spec.BankOffset % banks,
		row:      spec.RowBase,
		priority: priority && spec.Class == noc.ClassDemand,
	}
	// Desynchronise stream start times.
	g.nextAt = int64(rng.Intn(64))
	for _, b := range spec.Beats {
		if !containsInt(g.beatMenu, b) {
			g.beatMenu = append(g.beatMenu, b)
		}
	}
	sortInts(g.beatMenu)
	g.beatCounts = make([]int64, len(g.beatMenu))
	return g, nil
}

// BeatHistogram returns the produced burst-size histogram: the menu's
// distinct sizes in ascending order and the parallel production counts.
func (g *Gen) BeatHistogram() ([]int, []int64) { return g.beatMenu, g.beatCounts }

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// sortInts insertion-sorts the (tiny) menu in place.
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// meanBeats returns the average burst size of the stream.
func (g *Gen) meanBeats() float64 {
	sum := 0
	for _, b := range g.Spec.Beats {
		sum += b
	}
	return float64(sum) / float64(len(g.Spec.Beats))
}

// Tick returns the logical request the stream issues this cycle, or nil.
// blocked reports whether the network interface refuses new work. A
// blocked open-loop stream skips the request (a stalled media pipeline
// degrades rather than accumulating unbounded debt), so a design that
// cannot keep up shows its deficit as lost utilization at bounded latency
// — the paper's regime. A blocked closed-loop (demand) stream retries
// every cycle.
func (g *Gen) Tick(now int64, blocked bool) *Request {
	if g.Spec.ClosedLoop && g.outstanding >= g.window() {
		return nil
	}
	if now < g.nextAt {
		return nil
	}
	if blocked {
		g.Blocked++
		return nil
	}
	r := g.makeRequest()
	g.Produced++
	if g.Spec.ClosedLoop {
		g.outstanding++
	} else {
		busCycles := dram.BurstCycles(r.Beats)
		ia := int64(float64(busCycles)/g.Spec.LoadFrac + 0.5)
		g.nextAt = now + sim.Jitter(g.rng, ia, 0.4)
	}
	return r
}

// OnComplete notifies a closed-loop stream that one outstanding request
// finished; it thinks for ThinkTime (jittered) before refilling the
// window.
func (g *Gen) OnComplete(now int64) {
	if !g.Spec.ClosedLoop {
		return
	}
	if g.outstanding > 0 {
		g.outstanding--
	}
	at := now + sim.Jitter(g.rng, g.Spec.ThinkTime, 0.5)
	if at > g.nextAt {
		g.nextAt = at
	}
}

// NextArrival implements Source. A saturated closed-loop stream waits
// on a completion (OnComplete always pushes nextAt past the completion
// cycle, so the window refills no earlier than nextAt).
func (g *Gen) NextArrival() int64 {
	if g.Spec.ClosedLoop && g.outstanding >= g.window() {
		return 1<<63 - 1
	}
	return g.nextAt
}

// window returns the closed-loop outstanding bound.
func (g *Gen) window() int {
	if g.Spec.MaxOutstanding < 1 {
		return 1
	}
	return g.Spec.MaxOutstanding
}

// makeRequest draws size, direction and address.
func (g *Gen) makeRequest() *Request {
	beats := sim.Pick(g.rng, g.Spec.Beats)
	kind := noc.Write
	if g.rng.Float64() < g.Spec.ReadFrac {
		kind = noc.Read
		g.Reads++
	} else {
		g.Writes++
	}
	for i, b := range g.beatMenu {
		if b == beats {
			g.beatCounts[i]++
			break
		}
	}
	var addr dram.Address
	endOfRow := true
	switch g.Spec.Pattern {
	case Random:
		addr = dram.Address{
			Bank: g.rng.Intn(g.banks),
			Row:  g.Spec.RowBase + g.rng.Intn(g.Spec.RowRange),
			Col:  g.rng.Intn(maxInt(1, g.rowBeats-beats)+1) / 8 * 8,
		}
	case Strided:
		half := maxInt(1, g.Spec.RowRange/2)
		region := g.rng.Intn(2) * half
		addr = dram.Address{
			Bank: (g.Spec.BankOffset + g.rng.Intn(2)) % g.banks,
			Row:  g.Spec.RowBase + region + g.rng.Intn(half),
			Col:  g.rng.Intn(maxInt(1, g.rowBeats-beats)+1) / 8 * 8,
		}
	default: // Streaming
		if g.colBeat+beats > g.rowBeats {
			g.colBeat = 0
			g.bank = (g.bank + 1) % g.banks
			if g.bank == g.Spec.BankOffset%g.banks {
				g.row = g.Spec.RowBase + (g.row-g.Spec.RowBase+1)%g.Spec.RowRange
			}
		}
		addr = dram.Address{Bank: g.bank, Row: g.row, Col: g.colBeat}
		g.colBeat += beats
		// The stream keeps hitting this row until the next request no
		// longer fits.
		minBeats := g.Spec.Beats[0]
		for _, b := range g.Spec.Beats {
			if b < minBeats {
				minBeats = b
			}
		}
		endOfRow = g.colBeat+minBeats > g.rowBeats
	}
	return &Request{
		Stream:   g,
		Kind:     kind,
		Class:    g.Spec.Class,
		Priority: g.priority,
		Addr:     addr,
		Beats:    beats,
		EndOfRow: endOfRow,
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
