package traffic

import (
	"testing"

	"aanoc/internal/noc"
	"aanoc/internal/sim"
)

func spec() Stream {
	return Stream{
		Name: "t", Class: noc.ClassMedia, ReadFrac: 0.5,
		Beats: []int{8, 16}, LoadFrac: 0.1,
		Pattern: Streaming, RowBase: 0, RowRange: 64,
	}
}

func TestValidate(t *testing.T) {
	bad := []func(*Stream){
		func(s *Stream) { s.Beats = nil },
		func(s *Stream) { s.Beats = []int{0} },
		func(s *Stream) { s.LoadFrac = 0 },
		func(s *Stream) { s.LoadFrac = 1.5 },
		func(s *Stream) { s.ReadFrac = -0.1 },
		func(s *Stream) { s.RowRange = 0 },
	}
	for i, f := range bad {
		s := spec()
		f(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	closed := spec()
	closed.ClosedLoop = true
	closed.LoadFrac = 0 // closed loop has no load fraction
	if err := closed.Validate(); err != nil {
		t.Errorf("closed loop spec rejected: %v", err)
	}
}

func TestOpenLoopRateApproximatesLoad(t *testing.T) {
	s := spec()
	s.Beats = []int{16} // 8 bus cycles per request
	s.LoadFrac = 0.2    // one request per ~40 cycles
	g, err := NewGen(s, 4, 512, false, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	cycles := int64(100000)
	for now := int64(0); now < cycles; now++ {
		if g.Tick(now, false) != nil {
			n++
		}
	}
	// Offered bus cycles = n * 8; fraction should be close to 0.2.
	got := float64(n*8) / float64(cycles)
	if got < 0.16 || got > 0.24 {
		t.Errorf("offered load = %v, want ~0.2", got)
	}
}

func TestClosedLoopWaitsForCompletion(t *testing.T) {
	s := spec()
	s.ClosedLoop = true
	s.ThinkTime = 10
	s.LoadFrac = 0
	g, err := NewGen(s, 4, 512, false, sim.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	var first *Request
	now := int64(0)
	for ; first == nil && now < 200; now++ {
		first = g.Tick(now, false)
	}
	if first == nil {
		t.Fatal("no request generated")
	}
	// Until completion, nothing more comes out.
	for k := int64(0); k < 100; k++ {
		if g.Tick(now+k, false) != nil {
			t.Fatal("closed loop issued while outstanding")
		}
	}
	g.OnComplete(now + 100)
	issued := false
	for k := int64(101); k < 200 && !issued; k++ {
		issued = g.Tick(now+k, false) != nil
	}
	if !issued {
		t.Fatal("closed loop did not resume after completion")
	}
}

func TestBlockedGeneratorRetries(t *testing.T) {
	s := spec()
	g, err := NewGen(s, 4, 512, false, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	// Block long enough to pass the start offset, then unblock.
	for now := int64(0); now < 100; now++ {
		if got := g.Tick(now, true); got != nil {
			t.Fatal("blocked generator must not emit")
		}
	}
	if g.Blocked == 0 {
		t.Fatal("blocked opportunities not counted")
	}
	var r *Request
	for now := int64(100); now < 200 && r == nil; now++ {
		r = g.Tick(now, false)
	}
	if r == nil {
		t.Fatal("generator did not recover after unblocking")
	}
}

func TestStreamingAddressesAreSequentialRowHits(t *testing.T) {
	s := spec()
	s.Beats = []int{16}
	s.LoadFrac = 0.9
	g, err := NewGen(s, 4, 64, false, sim.NewRNG(4)) // small rows: 4 requests per row
	if err != nil {
		t.Fatal(err)
	}
	var reqs []*Request
	for now := int64(0); len(reqs) < 40 && now < 100000; now++ {
		if r := g.Tick(now, false); r != nil {
			reqs = append(reqs, r)
		}
	}
	if len(reqs) < 40 {
		t.Fatal("not enough requests")
	}
	hits := 0
	for i := 1; i < len(reqs); i++ {
		a, b := reqs[i-1].Addr, reqs[i].Addr
		if a.Bank == b.Bank && a.Row == b.Row {
			hits++
			if b.Col != a.Col+16 {
				t.Fatalf("columns not sequential: %v -> %v", a, b)
			}
		}
	}
	if hits < len(reqs)/2 {
		t.Errorf("streaming row-hit pairs = %d of %d, want majority", hits, len(reqs)-1)
	}
}

func TestRandomAddressesStayInRegion(t *testing.T) {
	s := spec()
	s.Pattern = Random
	s.RowBase, s.RowRange = 100, 50
	g, err := NewGen(s, 8, 512, false, sim.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	for now := int64(0); now < 50000; now++ {
		if r := g.Tick(now, false); r != nil {
			if r.Addr.Row < 100 || r.Addr.Row >= 150 {
				t.Fatalf("row %d outside region", r.Addr.Row)
			}
			if r.Addr.Bank < 0 || r.Addr.Bank >= 8 {
				t.Fatalf("bank %d out of range", r.Addr.Bank)
			}
		}
	}
}

func TestDemandPriorityFlag(t *testing.T) {
	s := spec()
	s.Class = noc.ClassDemand
	s.ClosedLoop = true
	s.LoadFrac = 0
	g, err := NewGen(s, 4, 512, true, sim.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	var r *Request
	for now := int64(0); r == nil && now < 200; now++ {
		r = g.Tick(now, false)
	}
	if r == nil || !r.Priority {
		t.Fatal("demand request should carry the priority flag when enabled")
	}
	// Media-class streams never get the flag even when priority is on.
	m := spec()
	gm, _ := NewGen(m, 4, 512, true, sim.NewRNG(7))
	var rm *Request
	for now := int64(0); rm == nil && now < 500; now++ {
		rm = gm.Tick(now, false)
	}
	if rm == nil || rm.Priority {
		t.Fatal("media request must not carry the priority flag")
	}
}

func TestReadFractionRespected(t *testing.T) {
	s := spec()
	s.ReadFrac = 0.8
	s.LoadFrac = 0.5
	g, _ := NewGen(s, 4, 512, false, sim.NewRNG(8))
	reads, total := 0, 0
	for now := int64(0); now < 200000 && total < 2000; now++ {
		if r := g.Tick(now, false); r != nil {
			total++
			if r.Kind == noc.Read {
				reads++
			}
		}
	}
	frac := float64(reads) / float64(total)
	if frac < 0.74 || frac > 0.86 {
		t.Errorf("read fraction = %v, want ~0.8", frac)
	}
}
