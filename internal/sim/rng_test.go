package sim

import "testing"

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same sequence")
		}
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck generator")
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(7)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) hit %d of 10 values in 1000 draws", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestJitterBounds(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 1000; i++ {
		v := Jitter(r, 100, 0.25)
		if v < 75 || v > 125 {
			t.Fatalf("Jitter out of bounds: %d", v)
		}
	}
	if Jitter(r, 0, 0.5) != 1 {
		t.Error("Jitter of 0 should clamp to 1")
	}
}

func TestPick(t *testing.T) {
	r := NewRNG(13)
	xs := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[Pick(r, xs)] = true
	}
	if len(seen) != 3 {
		t.Errorf("Pick hit %d of 3 values", len(seen))
	}
}
