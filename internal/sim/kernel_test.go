package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// probe is a test component recording every Tick it receives.
type probe struct {
	name  string
	phase Phase
	next  func(now int64) int64
	log   *[]string
	ticks []int64
}

func (p *probe) Name() string { return p.name }
func (p *probe) Phase() Phase { return p.phase }
func (p *probe) Tick(now int64) {
	p.ticks = append(p.ticks, now)
	*p.log = append(*p.log, fmt.Sprintf("%d:%s", now, p.name))
}
func (p *probe) NextWake(now int64) int64 {
	if p.next != nil {
		return p.next(now)
	}
	return now + 1
}

// TestKernelPhaseOrdering registers a probe in every phase (two in one
// phase to pin registration order) and asserts the per-cycle call
// sequence matches the documented Deliver..Audit order.
func TestKernelPhaseOrdering(t *testing.T) {
	k := NewKernel()
	var log []string
	names := []string{}
	for ph := Phase(0); int(ph) < NumPhases; ph++ {
		k.Register(&probe{name: ph.String(), phase: ph, log: &log})
		names = append(names, ph.String())
	}
	// A second Arbitrate component, registered after every first-wave
	// component, must still tick right after the first Arbitrate probe.
	k.Register(&probe{name: "arbitrate2", phase: PhaseArbitrate, log: &log})

	k.RunUntil(3)

	var want []string
	for cyc := int64(0); cyc < 3; cyc++ {
		for _, n := range names {
			want = append(want, fmt.Sprintf("%d:%s", cyc, n))
			if n == PhaseArbitrate.String() {
				want = append(want, fmt.Sprintf("%d:arbitrate2", cyc))
			}
		}
	}
	if !reflect.DeepEqual(log, want) {
		t.Fatalf("call sequence:\n got %v\nwant %v", log, want)
	}
	if k.Now() != 3 {
		t.Fatalf("Now() = %d, want 3", k.Now())
	}
}

// TestKernelIdleSkip checks that a self-scheduling component ticks on
// exactly the cycles it asked for, and that the clock lands on the run
// boundary even when the last wake is beyond it.
func TestKernelIdleSkip(t *testing.T) {
	var log []string
	k := NewKernel()
	p := &probe{name: "p", phase: PhaseInject, log: &log,
		next: func(now int64) int64 { return now + 5 }}
	k.Register(p)
	k.RunUntil(12)

	if want := []int64{0, 5, 10}; !reflect.DeepEqual(p.ticks, want) {
		t.Fatalf("ticks = %v, want %v", p.ticks, want)
	}
	if k.Now() != 12 {
		t.Fatalf("Now() = %d, want 12", k.Now())
	}
}

// TestKernelIdleSkipOffEquivalence runs the same component set with and
// without idle-skip. With skip off every component ticks on every cycle
// (the pre-kernel reference loop); with skip on only the self-declared
// wake cycles tick. A component honouring the sleeping-is-unobservable
// contract acts identically either way — the kernel invariant the
// full-system equivalence test leans on.
func TestKernelIdleSkipOffEquivalence(t *testing.T) {
	// worker acts (mutates state) only on cycles that are a multiple of
	// its stride, whether or not it is ticked on other cycles.
	type worker struct {
		probe
		acted []int64
	}
	run := func(skip bool) *worker {
		var log []string
		w := &worker{}
		w.name, w.phase, w.log = "w", PhaseMemTick, &log
		w.next = func(now int64) int64 { return (now/7 + 1) * 7 }
		k := NewKernel()
		k.SetIdleSkip(skip)
		k.Register(&tickFunc{w, func(now int64) {
			w.Tick(now)
			if now%7 == 0 {
				w.acted = append(w.acted, now)
			}
		}})
		k.RunUntil(60)
		return w
	}
	on, off := run(true), run(false)
	if !reflect.DeepEqual(on.acted, off.acted) {
		t.Fatalf("idle-skip on acted %v != off %v", on.acted, off.acted)
	}
	// Skip on ticks only the declared wake cycles; off ticks all 60.
	if want := []int64{0, 7, 14, 21, 28, 35, 42, 49, 56}; !reflect.DeepEqual(on.ticks, want) {
		t.Fatalf("skip-on ticks = %v, want %v", on.ticks, want)
	}
	if len(off.ticks) != 60 {
		t.Fatalf("skip-off ticked %d cycles, want all 60", len(off.ticks))
	}
}

// tickFunc overrides a component's Tick, keeping its other methods.
type tickFunc struct {
	Component
	tick func(now int64)
}

func (t *tickFunc) Tick(now int64) { t.tick(now) }

// TestKernelWakeSameCycle checks the cross-phase wake contract: a wake
// for the current cycle issued from an earlier phase ticks the target
// this cycle; one issued after the target's phase ran lands next cycle.
func TestKernelWakeSameCycle(t *testing.T) {
	var log []string
	k := NewKernel()
	sleeper := &probe{name: "sleeper", phase: PhaseComplete, log: &log,
		next: func(int64) int64 { return Never }}
	hs := k.Register(sleeper)
	late := &probe{name: "late", phase: PhaseDeliver, log: &log,
		next: func(int64) int64 { return Never }}
	hl := k.Register(late)
	k.Register(&probe{name: "admit", phase: PhaseAdmit, log: &log,
		next: func(now int64) int64 {
			if now == 2 {
				hs.Wake(now) // Complete runs later this cycle
				hl.Wake(now) // Deliver already ran: clamps to next cycle
			}
			return now + 1
		}})
	k.RunUntil(4)

	if want := []int64{0, 2}; !reflect.DeepEqual(sleeper.ticks, want) {
		t.Fatalf("same-cycle wake ticks = %v, want %v", sleeper.ticks, want)
	}
	// late ticked at 0 (initial), then its Wake(2) could only take
	// effect at cycle 3 — its phase had already run at cycle 2.
	if want := []int64{0, 3}; !reflect.DeepEqual(late.ticks, want) {
		t.Fatalf("past-phase wake ticks = %v, want %v", late.ticks, want)
	}
}

// TestKernelInvalidPhase ensures registration rejects out-of-range
// phases instead of silently dropping the component.
func TestKernelInvalidPhase(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Register accepted an invalid phase")
		}
	}()
	var log []string
	NewKernel().Register(&probe{name: "bad", phase: Phase(99), log: &log})
}
