// Package sim holds small simulation-kernel utilities shared by the
// traffic generators and the system harness: a fast deterministic RNG
// (results must be reproducible run-to-run regardless of map iteration
// order or platform) and helpers for weighted choices.
package sim

// RNG is a deterministic xorshift64* pseudo-random generator. The zero
// value is not usable; construct with NewRNG.
type RNG struct {
	s uint64
}

// NewRNG seeds a generator; a zero seed is remapped to a fixed non-zero
// constant (xorshift state must never be zero).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{s: seed}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x := r.s
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.s = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). n must be positive.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Pick returns a uniformly chosen element of xs.
func Pick[T any](r *RNG, xs []T) T {
	return xs[r.Intn(len(xs))]
}

// Jitter returns v scaled by a uniform factor in [1-f, 1+f], minimum 1.
func Jitter(r *RNG, v int64, f float64) int64 {
	if v <= 0 {
		return 1
	}
	lo := float64(v) * (1 - f)
	hi := float64(v) * (1 + f)
	out := int64(lo + (hi-lo)*r.Float64())
	if out < 1 {
		out = 1
	}
	return out
}
