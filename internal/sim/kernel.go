package sim

import (
	"fmt"
	"math"
)

// Phase orders the work of one simulated cycle. The kernel ticks every
// due component of a phase (in registration order) before moving to the
// next, so the system-wide intra-cycle ordering the monolithic runner
// hand-wired is reproduced by construction:
//
//	Deliver   — links move last cycle's flits and credits
//	Arbitrate — routers allocate output channels and forward flits
//	Admit     — sinks drain and hand packets to the memory subsystem
//	MemTick   — the memory controller drives the command bus
//	Complete  — response consumers retire finished requests
//	Inject    — traffic sources generate and NIs launch new flits
//	Audit     — observers sample and checkers audit the settled cycle
type Phase int

const (
	PhaseDeliver Phase = iota
	PhaseArbitrate
	PhaseAdmit
	PhaseMemTick
	PhaseComplete
	PhaseInject
	PhaseAudit

	// NumPhases counts the phases above.
	NumPhases = int(PhaseAudit) + 1
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseDeliver:
		return "deliver"
	case PhaseArbitrate:
		return "arbitrate"
	case PhaseAdmit:
		return "admit"
	case PhaseMemTick:
		return "memtick"
	case PhaseComplete:
		return "complete"
	case PhaseInject:
		return "inject"
	case PhaseAudit:
		return "audit"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Never is the NextWake value of a component with no self-scheduled
// future work: it sleeps until some other component wakes its Handle.
const Never = int64(math.MaxInt64)

// Component is one clocked unit of the simulation. The kernel calls
// Tick(now) on every cycle the component is awake, then asks NextWake
// for the next cycle it must run.
//
// The wakeup contract: NextWake(now) returns the earliest future cycle
// the component could possibly act, judged from its own state alone —
// or Never when only external input (a flit arrival, a credit return, a
// completion) can make it actable, in which case whoever produces that
// input must Wake the component's Handle. Sleeping must be
// unobservable: a component may only sleep through cycles where its
// Tick would not have changed any state (its own or the counters it
// maintains). Returning now+1 every cycle is always correct — idle-skip
// is then just never applied — so components opt into skipping only
// where idleness is provably a no-op.
type Component interface {
	// Name identifies the component in diagnostics.
	Name() string
	// Phase declares the intra-cycle slot the component ticks in.
	Phase() Phase
	// Tick performs one cycle of work.
	Tick(now int64)
	// NextWake returns the next cycle Tick must run (> now), or Never.
	NextWake(now int64) int64
}

// Handle is a registered component's scheduling slot. Producers of
// external input hold the consumer's Handle and Wake it.
type Handle struct {
	c      Component
	k      *Kernel
	wakeAt int64
}

// Component returns the registered component.
func (h *Handle) Component() Component { return h.c }

// Wake schedules the component to tick at cycle at (clamped to the
// current cycle: waking into the past means "as soon as possible", and
// a component whose phase already ran this cycle ticks next cycle).
// Waking an already-earlier-scheduled component is a no-op; Wake only
// ever moves the wake time forward in urgency, never later.
func (h *Handle) Wake(at int64) {
	if at < h.k.now {
		at = h.k.now
	}
	if at < h.wakeAt {
		h.wakeAt = at
	}
}

// Kernel owns the simulation clock and the registered components. Step
// advances one cycle in phase order; RunUntil additionally fast-forwards
// the clock over cycles where every component sleeps (idle-skip).
type Kernel struct {
	now      int64
	steps    int64
	byPhase  [NumPhases][]*Handle
	handles  []*Handle
	idleSkip bool
}

// NewKernel returns an empty kernel at cycle 0 with idle-skip enabled.
func NewKernel() *Kernel { return &Kernel{idleSkip: true} }

// SetIdleSkip toggles the activity protocol as a whole. Off, the kernel
// ignores every wake time: all registered components tick on every
// cycle, reproducing the monolithic pre-kernel loop — the reference
// behavior the equivalence tests compare against. Because sleeping must
// be unobservable (see Component), results are identical either way;
// only wall-clock time differs. Toggle before running, not mid-run.
func (k *Kernel) SetIdleSkip(on bool) { k.idleSkip = on }

// Now returns the current cycle.
func (k *Kernel) Now() int64 { return k.now }

// Steps returns how many cycles the kernel has actually executed (phase
// loops run). With idle-skip on this can be far below Now(): the
// difference is the cycles fast-forwarded over.
func (k *Kernel) Steps() int64 { return k.steps }

// Register adds a component, initially awake at the current cycle.
// Registration order is tick order within a phase and must therefore be
// deterministic.
func (k *Kernel) Register(c Component) *Handle {
	p := c.Phase()
	if p < 0 || int(p) >= NumPhases {
		panic(fmt.Sprintf("sim: component %q has invalid phase %d", c.Name(), p))
	}
	h := &Handle{c: c, k: k, wakeAt: k.now}
	k.byPhase[p] = append(k.byPhase[p], h)
	k.handles = append(k.handles, h)
	return h
}

// Step advances exactly one cycle: every awake component ticks, phase by
// phase, then the clock increments. A component woken for the current
// cycle during an earlier phase still ticks this cycle; one woken after
// its own phase ran ticks next cycle. With idle-skip off every
// component ticks regardless of its wake time.
func (k *Kernel) Step() {
	now := k.now
	for _, phase := range &k.byPhase {
		for _, h := range phase {
			if k.idleSkip && h.wakeAt > now {
				continue
			}
			h.c.Tick(now)
			if w := h.c.NextWake(now); w > now {
				h.wakeAt = w
			} else {
				h.wakeAt = now + 1
			}
		}
	}
	k.now = now + 1
	k.steps++
}

// nextWake returns the earliest pending wake across all components.
func (k *Kernel) nextWake() int64 {
	min := Never
	for _, h := range k.handles {
		if h.wakeAt < min {
			min = h.wakeAt
		}
	}
	return min
}

// RunUntil advances the clock to cycle end (exclusive of further work:
// afterwards Now() == end and no component has ticked at end). With
// idle-skip on, stretches where every component sleeps are crossed in
// one assignment instead of being ticked through.
func (k *Kernel) RunUntil(end int64) {
	for k.now < end {
		if k.idleSkip {
			if nw := k.nextWake(); nw > k.now {
				if nw >= end {
					k.now = end
					return
				}
				k.now = nw
			}
		}
		k.Step()
	}
}
