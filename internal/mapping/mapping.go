// Package mapping places cores on a mesh. It provides the A3MAP
// substitute used by the reproduction: a deterministic simulated-annealing
// mapper that minimises communication-weighted hop count over a 2-D mesh,
// plus helpers shared by the Fig. 8 experiment (ordering routers by
// distance from the memory subsystem).
package mapping

import (
	"fmt"
	"sort"

	"aanoc/internal/noc"
	"aanoc/internal/sim"
)

// Problem is a mapping instance: n entities (index 0..n-1) with a
// symmetric communication weight matrix, to be placed on a width x height
// mesh. Entity positions listed in Fixed are pinned (e.g. the memory
// subsystem in its corner).
type Problem struct {
	Width, Height int
	Weights       [][]float64
	Fixed         map[int]noc.Coord
}

// Validate reports malformed instances.
func (p *Problem) Validate() error {
	n := len(p.Weights)
	if n == 0 {
		return fmt.Errorf("mapping: empty weight matrix")
	}
	if n > p.Width*p.Height {
		return fmt.Errorf("mapping: %d entities exceed %dx%d mesh", n, p.Width, p.Height)
	}
	for i, row := range p.Weights {
		if len(row) != n {
			return fmt.Errorf("mapping: weight row %d has %d entries, want %d", i, len(row), n)
		}
	}
	for i, c := range p.Fixed {
		if i < 0 || i >= n {
			return fmt.Errorf("mapping: fixed entity %d out of range", i)
		}
		if c.X < 0 || c.X >= p.Width || c.Y < 0 || c.Y >= p.Height {
			return fmt.Errorf("mapping: fixed position %v outside mesh", c)
		}
	}
	return nil
}

// Cost returns the communication-weighted hop count of a placement.
func (p *Problem) Cost(pos []noc.Coord) float64 {
	var c float64
	for i := range p.Weights {
		for j := i + 1; j < len(p.Weights); j++ {
			w := p.Weights[i][j] + p.Weights[j][i]
			if w != 0 {
				c += w * float64(noc.HopDistance(pos[i], pos[j]))
			}
		}
	}
	return c
}

// Solve runs deterministic simulated annealing (seeded) and returns the
// best placement found. It always returns a valid placement.
func (p *Problem) Solve(seed uint64) ([]noc.Coord, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := sim.NewRNG(seed)
	n := len(p.Weights)
	slots := make([]noc.Coord, 0, p.Width*p.Height)
	for y := 0; y < p.Height; y++ {
		for x := 0; x < p.Width; x++ {
			slots = append(slots, noc.Coord{X: x, Y: y})
		}
	}
	// Initial placement: fixed entities first, the rest greedily by total
	// weight onto the slots closest to their heaviest fixed partner (or
	// mesh centre).
	pos := make([]noc.Coord, n)
	used := map[noc.Coord]bool{}
	for i, c := range p.Fixed {
		pos[i] = c
		used[c] = true
	}
	free := make([]noc.Coord, 0, len(slots))
	for _, s := range slots {
		if !used[s] {
			free = append(free, s)
		}
	}
	var order []int
	for i := 0; i < n; i++ {
		if _, fixed := p.Fixed[i]; !fixed {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		return p.totalWeight(order[a]) > p.totalWeight(order[b])
	})
	fi := 0
	for _, i := range order {
		pos[i] = free[fi]
		fi++
	}
	// Annealing over swaps of two movable entities (or a movable entity
	// and a free slot).
	movable := order
	cur := p.Cost(pos)
	best := append([]noc.Coord(nil), pos...)
	bestCost := cur
	if len(movable) >= 1 {
		temp := cur/float64(n) + 1
		for iter := 0; iter < 4000; iter++ {
			i := movable[rng.Intn(len(movable))]
			j := movable[rng.Intn(len(movable))]
			if i == j {
				continue
			}
			pos[i], pos[j] = pos[j], pos[i]
			next := p.Cost(pos)
			if next <= cur || rng.Float64() < acceptProb(cur, next, temp) {
				cur = next
				if cur < bestCost {
					bestCost = cur
					copy(best, pos)
				}
			} else {
				pos[i], pos[j] = pos[j], pos[i]
			}
			temp *= 0.999
		}
	}
	return best, nil
}

func acceptProb(cur, next, temp float64) float64 {
	if temp <= 0 {
		return 0
	}
	d := (next - cur) / temp
	// Cheap exp(-d) approximation adequate for annealing acceptance.
	switch {
	case d <= 0:
		return 1
	case d >= 8:
		return 0
	default:
		x := 1 - d/8
		x2 := x * x
		return x2 * x2 * x2 * x2
	}
}

func (p *Problem) totalWeight(i int) float64 {
	var w float64
	for j := range p.Weights {
		w += p.Weights[i][j] + p.Weights[j][i]
	}
	return w
}

// RoutersByDistance returns all mesh coordinates ordered by hop distance
// from the memory node (nearest first, then row-major) — the order in
// which the Fig. 8 experiment replaces conventional routers with GSS
// routers.
func RoutersByDistance(width, height int, mem noc.Coord) []noc.Coord {
	var out []noc.Coord
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			out = append(out, noc.Coord{X: x, Y: y})
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		da, db := noc.HopDistance(out[a], mem), noc.HopDistance(out[b], mem)
		if da != db {
			return da < db
		}
		if out[a].Y != out[b].Y {
			return out[a].Y < out[b].Y
		}
		return out[a].X < out[b].X
	})
	return out
}
