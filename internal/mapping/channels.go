package mapping

import (
	"fmt"
	"sort"

	"aanoc/internal/dram"
	"aanoc/internal/noc"
)

// This file is the multi-channel address-interleaving policy: with N
// independent SDRAM channels behind N mesh ejection ports, every memory
// request must be routed to exactly one owning channel, and the mapping
// must spread each application's bank walk across the channels so the
// aggregate bandwidth actually materialises.
//
// Requests carry decoded addresses whose Bank field is a *global* bank
// index in [0, Channels*BanksPerChannel): the application's traffic
// generators walk the global bank space, and the ChannelMap folds each
// global bank into an owning channel plus the bank index the channel's
// own device sees. Routing is a pure function of the address, so capture
// and replay traces, the sweep fingerprint cache, and the checked-mode
// accounting all stay deterministic.

// ChannelScheme selects how global bank indices interleave across
// channels.
type ChannelScheme int

const (
	// BankThenChannel places the channel bits above the bank bits:
	// banks 0..B-1 live on channel 0, banks B..2B-1 on channel 1, and so
	// on. Streams that walk banks sequentially drain one channel before
	// touching the next — the contiguous layout, analogous to
	// InterleaveBankRowCol one level up.
	BankThenChannel ChannelScheme = iota
	// ChannelThenBankXOR places the channel bits below the bank bits and
	// XOR-folds the row's low bits into the channel selection:
	// consecutive global banks land on different channels, and two
	// streams camping on the same global bank but different rows still
	// spread across channels. The XOR fold requires a power-of-two
	// channel count.
	ChannelThenBankXOR
)

// String names the scheme ("bank-chan", "chan-bank-xor").
func (s ChannelScheme) String() string {
	switch s {
	case BankThenChannel:
		return "bank-chan"
	case ChannelThenBankXOR:
		return "chan-bank-xor"
	default:
		return fmt.Sprintf("ChannelScheme(%d)", int(s))
	}
}

// ParseChannelScheme resolves a scheme from its short name.
func ParseChannelScheme(s string) (ChannelScheme, error) {
	switch s {
	case "bank-chan", "bank-then-channel":
		return BankThenChannel, nil
	case "chan-bank-xor", "channel-then-bank", "xor":
		return ChannelThenBankXOR, nil
	}
	return 0, fmt.Errorf("mapping: unknown channel scheme %q (want bank-chan or chan-bank-xor)", s)
}

// ChannelMap routes decoded addresses in a multi-channel memory
// subsystem: it owns the global-bank-to-channel interleaving and its
// inverse. The zero value is not usable; construct with NewChannelMap.
type ChannelMap struct {
	Scheme          ChannelScheme
	Channels        int
	BanksPerChannel int
}

// NewChannelMap validates the geometry. The XOR scheme requires a
// power-of-two channel count (the fold is a bit mask).
func NewChannelMap(scheme ChannelScheme, channels, banksPerChannel int) (ChannelMap, error) {
	if channels < 1 || banksPerChannel < 1 {
		return ChannelMap{}, fmt.Errorf("mapping: invalid channel geometry %d channels x %d banks", channels, banksPerChannel)
	}
	switch scheme {
	case BankThenChannel:
	case ChannelThenBankXOR:
		if channels&(channels-1) != 0 {
			return ChannelMap{}, fmt.Errorf("mapping: %s needs a power-of-two channel count, got %d", scheme, channels)
		}
	default:
		return ChannelMap{}, fmt.Errorf("mapping: unknown channel scheme %d", scheme)
	}
	return ChannelMap{Scheme: scheme, Channels: channels, BanksPerChannel: banksPerChannel}, nil
}

// GlobalBanks returns the size of the global bank space the traffic
// generators walk: Channels x BanksPerChannel.
func (m ChannelMap) GlobalBanks() int { return m.Channels * m.BanksPerChannel }

// Route maps an address with a global bank index to its owning channel
// and the local address that channel's device sees (the bank folded into
// [0, BanksPerChannel); row and column pass through). Out-of-range
// global banks wrap — a replayed trace captured under a different
// channel count still routes deterministically.
func (m ChannelMap) Route(a dram.Address) (ch int, local dram.Address) {
	gb := a.Bank % m.GlobalBanks()
	if gb < 0 {
		gb += m.GlobalBanks()
	}
	local = a
	switch m.Scheme {
	case ChannelThenBankXOR:
		cbits := gb % m.Channels
		ch = cbits ^ (a.Row & (m.Channels - 1))
		local.Bank = gb / m.Channels
	default: // BankThenChannel
		ch = gb / m.BanksPerChannel
		local.Bank = gb % m.BanksPerChannel
	}
	return ch, local
}

// Invert reconstructs the global address from an owning channel and the
// local address its device saw — the inverse of Route for in-range
// inputs, which the property tests pin.
func (m ChannelMap) Invert(ch int, local dram.Address) dram.Address {
	a := local
	switch m.Scheme {
	case ChannelThenBankXOR:
		cbits := ch ^ (local.Row & (m.Channels - 1))
		a.Bank = local.Bank*m.Channels + cbits
	default: // BankThenChannel
		a.Bank = ch*m.BanksPerChannel + local.Bank
	}
	return a
}

// RoutersByPortDistance orders all mesh coordinates by hop distance to
// the nearest memory port (then row-major) — the multi-channel
// generalisation of RoutersByDistance: the Fig. 8 experiment replaces
// conventional routers with GSS routers from the memory side outward,
// and with several channels "the memory side" is the set of ports.
func RoutersByPortDistance(width, height int, ports []noc.Coord) []noc.Coord {
	if len(ports) == 1 {
		return RoutersByDistance(width, height, ports[0])
	}
	dist := func(c noc.Coord) int {
		best := noc.HopDistance(c, ports[0])
		for _, p := range ports[1:] {
			if d := noc.HopDistance(c, p); d < best {
				best = d
			}
		}
		return best
	}
	var out []noc.Coord
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			out = append(out, noc.Coord{X: x, Y: y})
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		da, db := dist(out[a]), dist(out[b])
		if da != db {
			return da < db
		}
		if out[a].Y != out[b].Y {
			return out[a].Y < out[b].Y
		}
		return out[a].X < out[b].X
	})
	return out
}
