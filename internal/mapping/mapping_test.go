package mapping

import (
	"testing"
	"testing/quick"

	"aanoc/internal/noc"
)

// starProblem builds the common SoC shape: entity 0 is the memory
// subsystem pinned at the corner; everyone else talks only to it with the
// given weights.
func starProblem(w, h int, weights []float64) *Problem {
	n := len(weights) + 1
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	for i, wt := range weights {
		m[0][i+1] = wt
		m[i+1][0] = wt
	}
	return &Problem{
		Width: w, Height: h, Weights: m,
		Fixed: map[int]noc.Coord{0: {X: 0, Y: 0}},
	}
}

func TestValidateRejects(t *testing.T) {
	if err := (&Problem{Width: 2, Height: 2}).Validate(); err == nil {
		t.Error("empty matrix accepted")
	}
	p := starProblem(2, 2, []float64{1, 1, 1, 1}) // 5 entities on 4 slots
	if err := p.Validate(); err == nil {
		t.Error("oversubscribed mesh accepted")
	}
	p2 := starProblem(2, 2, []float64{1})
	p2.Fixed[0] = noc.Coord{X: 5, Y: 5}
	if err := p2.Validate(); err == nil {
		t.Error("out-of-mesh fixed position accepted")
	}
}

func TestSolvePlacesHeavyCoreNextToMemory(t *testing.T) {
	// One core with weight 100, seven with weight 1: the heavy one must
	// land adjacent to the memory corner.
	p := starProblem(3, 3, []float64{100, 1, 1, 1, 1, 1, 1, 1})
	pos, err := p.Solve(1)
	if err != nil {
		t.Fatal(err)
	}
	if d := noc.HopDistance(pos[1], pos[0]); d != 1 {
		t.Errorf("heavy core at distance %d from memory, want 1", d)
	}
}

func TestSolveRespectsFixed(t *testing.T) {
	p := starProblem(3, 3, []float64{5, 4, 3, 2, 1})
	pos, err := p.Solve(2)
	if err != nil {
		t.Fatal(err)
	}
	if pos[0] != (noc.Coord{X: 0, Y: 0}) {
		t.Fatalf("fixed entity moved to %v", pos[0])
	}
}

func TestSolveDeterministic(t *testing.T) {
	p := starProblem(3, 3, []float64{7, 3, 9, 1, 5, 2, 8, 4})
	a, _ := p.Solve(42)
	q := starProblem(3, 3, []float64{7, 3, 9, 1, 5, 2, 8, 4})
	b, _ := q.Solve(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same placement")
		}
	}
}

func TestSolveBeatsWorstCase(t *testing.T) {
	p := starProblem(4, 4, []float64{10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 1, 1, 1, 1, 1})
	pos, err := p.Solve(3)
	if err != nil {
		t.Fatal(err)
	}
	got := p.Cost(pos)
	// Worst case: heaviest cores at maximal distance.
	worst := 0.0
	dists := []int{6, 6, 5, 5, 5, 4, 4, 4, 4, 3, 3, 3, 2, 2, 1}
	ws := []float64{10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 1, 1, 1, 1, 1}
	for i := range ws {
		worst += 2 * ws[i] * float64(dists[i])
	}
	if got >= worst {
		t.Errorf("cost %v not better than pessimal %v", got, worst)
	}
}

func TestPropertySolveProducesValidPlacement(t *testing.T) {
	f := func(raw []uint8, seed uint64) bool {
		if len(raw) == 0 || len(raw) > 8 {
			return true
		}
		weights := make([]float64, len(raw))
		for i, v := range raw {
			weights[i] = float64(v%50) + 1
		}
		p := starProblem(3, 3, weights)
		pos, err := p.Solve(seed)
		if err != nil {
			return false
		}
		// No duplicates, all in mesh.
		seen := map[noc.Coord]bool{}
		for _, c := range pos {
			if c.X < 0 || c.X >= 3 || c.Y < 0 || c.Y >= 3 || seen[c] {
				return false
			}
			seen[c] = true
		}
		return pos[0] == noc.Coord{X: 0, Y: 0}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRoutersByDistance(t *testing.T) {
	order := RoutersByDistance(3, 3, noc.Coord{X: 0, Y: 0})
	if len(order) != 9 {
		t.Fatalf("got %d routers", len(order))
	}
	if order[0] != (noc.Coord{X: 0, Y: 0}) {
		t.Errorf("first router should be the memory node, got %v", order[0])
	}
	for i := 1; i < len(order); i++ {
		if noc.HopDistance(order[i-1], noc.Coord{X: 0, Y: 0}) > noc.HopDistance(order[i], noc.Coord{X: 0, Y: 0}) {
			t.Fatal("order not sorted by distance")
		}
	}
}
