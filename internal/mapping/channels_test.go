package mapping

import (
	"testing"

	"aanoc/internal/dram"
	"aanoc/internal/noc"
	"aanoc/internal/sim"
)

// The interleaving properties the multi-channel subsystem rests on:
// every global address routes to exactly one (channel, local bank), the
// local bank is always in range, and Invert reconstructs the global
// address — for both schemes, across channel counts.

func geometries() []ChannelMap {
	var out []ChannelMap
	for _, c := range []int{1, 2, 4, 8} {
		for _, b := range []int{4, 8} {
			for _, s := range []ChannelScheme{BankThenChannel, ChannelThenBankXOR} {
				m, err := NewChannelMap(s, c, b)
				if err != nil {
					panic(err)
				}
				out = append(out, m)
			}
		}
	}
	return out
}

func TestRouteCoversEveryChannelExactlyOnce(t *testing.T) {
	for _, m := range geometries() {
		// For any fixed row, walking the full global bank space must hit
		// every (channel, local bank) pair exactly once: the interleaving
		// is a bijection from global banks to channel-local banks.
		for _, row := range []int{0, 1, 7, 1023} {
			seen := map[[2]int]int{}
			for gb := 0; gb < m.GlobalBanks(); gb++ {
				ch, local := m.Route(dram.Address{Bank: gb, Row: row, Col: 64})
				if ch < 0 || ch >= m.Channels {
					t.Fatalf("%v: bank %d row %d routed to channel %d of %d", m, gb, row, ch, m.Channels)
				}
				if local.Bank < 0 || local.Bank >= m.BanksPerChannel {
					t.Fatalf("%v: bank %d row %d local bank %d of %d", m, gb, row, local.Bank, m.BanksPerChannel)
				}
				if local.Row != row || local.Col != 64 {
					t.Fatalf("%v: routing changed row/col: %+v", m, local)
				}
				seen[[2]int{ch, local.Bank}]++
			}
			if len(seen) != m.GlobalBanks() {
				t.Fatalf("%v row %d: %d distinct (channel,bank) pairs over %d global banks",
					m, row, len(seen), m.GlobalBanks())
			}
		}
	}
}

func TestRouteInvertRoundTrip(t *testing.T) {
	rng := sim.NewRNG(0xC0FFEE)
	for _, m := range geometries() {
		for i := 0; i < 2000; i++ {
			a := dram.Address{
				Bank: rng.Intn(m.GlobalBanks()),
				Row:  rng.Intn(8192),
				Col:  rng.Intn(1024),
			}
			ch, local := m.Route(a)
			back := m.Invert(ch, local)
			if back != a {
				t.Fatalf("%v: %+v -> (ch %d, %+v) -> %+v", m, a, ch, local, back)
			}
		}
	}
}

func TestSingleChannelRouteIsIdentity(t *testing.T) {
	for _, s := range []ChannelScheme{BankThenChannel, ChannelThenBankXOR} {
		m, err := NewChannelMap(s, 1, 8)
		if err != nil {
			t.Fatal(err)
		}
		for gb := 0; gb < 8; gb++ {
			a := dram.Address{Bank: gb, Row: 42, Col: 8}
			ch, local := m.Route(a)
			if ch != 0 || local != a {
				t.Fatalf("%s: single-channel Route(%+v) = (ch %d, %+v), want identity", s, a, ch, local)
			}
		}
	}
}

func TestXORSpreadsSameBankAcrossRows(t *testing.T) {
	// The XOR fold's purpose: a stream camping on one global bank while
	// walking rows must still touch more than one channel.
	m, err := NewChannelMap(ChannelThenBankXOR, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for row := 0; row < 8; row++ {
		ch, _ := m.Route(dram.Address{Bank: 5, Row: row})
		seen[ch] = true
	}
	if len(seen) < 2 {
		t.Fatalf("XOR scheme kept bank 5 on %d channel(s) across rows", len(seen))
	}
}

func TestNewChannelMapValidation(t *testing.T) {
	if _, err := NewChannelMap(ChannelThenBankXOR, 3, 8); err == nil {
		t.Error("XOR scheme accepted 3 channels (not a power of two)")
	}
	if _, err := NewChannelMap(BankThenChannel, 3, 8); err != nil {
		t.Errorf("bank-then-channel rejected 3 channels: %v", err)
	}
	if _, err := NewChannelMap(BankThenChannel, 0, 8); err == nil {
		t.Error("accepted 0 channels")
	}
	if _, err := NewChannelMap(ChannelScheme(99), 2, 8); err == nil {
		t.Error("accepted unknown scheme")
	}
}

func TestParseChannelSchemeRoundTrip(t *testing.T) {
	for _, s := range []ChannelScheme{BankThenChannel, ChannelThenBankXOR} {
		got, err := ParseChannelScheme(s.String())
		if err != nil || got != s {
			t.Errorf("ParseChannelScheme(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseChannelScheme("nope"); err == nil {
		t.Error("ParseChannelScheme accepted garbage")
	}
}

func TestRoutersByPortDistanceMatchesSinglePort(t *testing.T) {
	mem := noc.Coord{X: 0, Y: 0}
	a := RoutersByDistance(4, 4, mem)
	b := RoutersByPortDistance(4, 4, []noc.Coord{mem})
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order diverges at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestRoutersByPortDistanceNearestFirst(t *testing.T) {
	ports := []noc.Coord{{X: 0, Y: 0}, {X: 3, Y: 3}}
	order := RoutersByPortDistance(4, 4, ports)
	if len(order) != 16 {
		t.Fatalf("got %d routers, want 16", len(order))
	}
	dist := func(c noc.Coord) int {
		d0, d1 := noc.HopDistance(c, ports[0]), noc.HopDistance(c, ports[1])
		if d1 < d0 {
			return d1
		}
		return d0
	}
	for i := 1; i < len(order); i++ {
		if dist(order[i]) < dist(order[i-1]) {
			t.Fatalf("order not by min port distance at %d: %+v after %+v", i, order[i], order[i-1])
		}
	}
	if order[0] != ports[0] && order[0] != ports[1] {
		t.Fatalf("nearest router %+v is not a port", order[0])
	}
}
