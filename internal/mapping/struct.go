package mapping

import (
	"fmt"

	"aanoc/internal/dram"
)

// This file is the structure-aware address-map layer: the full SDRAM
// topology — channels → bank groups → banks → subarrays → rows — as one
// invertible decomposition. The ChannelMap (channels.go) owns only the
// outermost level; StructMap composes with it and carries the levels the
// deep-DRAM device model added (DDR4 bank groups, SALP subarrays), plus
// the linear-byte-address interleaving the old dram.Mapper used to do
// with ad-hoc row/bank arithmetic. Every level is a pure bijection, so
// traces, fingerprints and the checked-mode accounting stay
// deterministic, and the property tests can pin Decode∘Encode = id over
// every generation/channel combination.

// Interleave selects how a linear byte address is decoded into the
// global bank/row/column space (absorbed from the retired dram.Mapper).
type Interleave int

const (
	// InterleaveRowBankCol: row | bank | column — consecutive pages map
	// to different banks, the common layout for streaming media buffers.
	InterleaveRowBankCol Interleave = iota
	// InterleaveBankRowCol: bank | row | column — each bank holds a
	// contiguous region (a core's buffer lives in one bank).
	InterleaveBankRowCol
)

// Coord is the fully decomposed structural coordinate of one SDRAM
// location: which channel, which bank group inside that channel, which
// bank inside the group, which subarray row buffer inside the bank, and
// the row/column within it.
type Coord struct {
	Channel  int
	Group    int // bank group within the channel
	Bank     int // bank within the group
	Subarray int // subarray row buffer within the bank
	Row      int
	Col      int
}

// String renders the coordinate outermost level first.
func (c Coord) String() string {
	return fmt.Sprintf("ch%d g%d b%d s%d r%d c%d", c.Channel, c.Group, c.Bank, c.Subarray, c.Row, c.Col)
}

// StructMap decomposes addresses along the device topology. It composes
// with a ChannelMap: the channel level reuses the ChannelMap bijection
// verbatim, the inner levels mirror how the dram.Device derives group
// (bank mod groups) and subarray (row mod subarrays) indices, so the
// map and the timing model can never disagree about structure.
//
// The zero value is not usable; construct with NewStructMap.
type StructMap struct {
	Channels ChannelMap
	// Groups is the bank-group count per channel (1 when the generation
	// has no group structure).
	Groups int
	// Subarrays is the row-buffer count per bank (1 for the classic
	// one-buffer bank).
	Subarrays int
	// Rows per bank and bytes per row, for the linear-address levels.
	Rows     int
	RowBytes int
	Scheme   Interleave
}

// NewStructMap validates the geometry against a timing package: the
// channel map's per-channel bank count must match the device, groups
// must divide the banks, and rowBytes must be a power of two. A
// BankGroups/Subarrays of 0 in the timing normalises to 1.
func NewStructMap(cm ChannelMap, t dram.Timing, scheme Interleave, rows, rowBytes int) (StructMap, error) {
	groups := t.BankGroups
	if groups < 1 {
		groups = 1
	}
	subs := t.Subarrays
	if subs < 1 {
		subs = 1
	}
	switch {
	case cm.BanksPerChannel != t.Banks:
		return StructMap{}, fmt.Errorf("mapping: channel map carries %d banks/channel but the device has %d", cm.BanksPerChannel, t.Banks)
	case t.Banks%groups != 0:
		return StructMap{}, fmt.Errorf("mapping: %d banks not divisible into %d groups", t.Banks, groups)
	case rows < 1 || rowBytes < 1:
		return StructMap{}, fmt.Errorf("mapping: invalid row geometry rows=%d rowBytes=%d", rows, rowBytes)
	case rowBytes&(rowBytes-1) != 0:
		return StructMap{}, fmt.Errorf("mapping: rowBytes %d not a power of two", rowBytes)
	}
	return StructMap{
		Channels: cm, Groups: groups, Subarrays: subs,
		Rows: rows, RowBytes: rowBytes, Scheme: scheme,
	}, nil
}

// BanksPerGroup returns the banks each group holds on one channel.
func (m StructMap) BanksPerGroup() int { return m.Channels.BanksPerChannel / m.Groups }

// Split decomposes a channel-local address (what one channel's device
// sees) into the inner structural levels. It mirrors the device's own
// derivations: group = bank mod groups, subarray = row mod subarrays.
func (m StructMap) Split(ch int, local dram.Address) Coord {
	return Coord{
		Channel:  ch,
		Group:    local.Bank % m.Groups,
		Bank:     local.Bank / m.Groups,
		Subarray: local.Row % m.Subarrays,
		Row:      local.Row,
		Col:      local.Col,
	}
}

// Join is the inverse of Split: structural levels back to the owning
// channel and its local address.
func (m StructMap) Join(c Coord) (ch int, local dram.Address) {
	return c.Channel, dram.Address{
		Bank: c.Bank*m.Groups + c.Group,
		Row:  c.Row,
		Col:  c.Col,
	}
}

// Route decomposes a global address (global bank space, as carried by
// NoC packets) into its full structural coordinate: the ChannelMap picks
// the owning channel, Split derives the inner levels.
func (m StructMap) Route(a dram.Address) Coord {
	ch, local := m.Channels.Route(a)
	return m.Split(ch, local)
}

// Invert reconstructs the global address from a structural coordinate —
// the inverse of Route for in-range inputs, property-tested like the
// ChannelMap bijection.
func (m StructMap) Invert(c Coord) dram.Address {
	ch, local := m.Join(c)
	return m.Channels.Invert(ch, local)
}

// Decode maps a linear byte address all the way down to a structural
// coordinate: the interleave arithmetic produces a global bank/row/col,
// Route decomposes it.
func (m StructMap) Decode(addr int64) Coord {
	col := int(addr) & (m.RowBytes - 1)
	page := addr / int64(m.RowBytes)
	banks := m.Channels.GlobalBanks()
	var a dram.Address
	switch m.Scheme {
	case InterleaveRowBankCol:
		a = dram.Address{
			Bank: int(page) % banks,
			Row:  int(page/int64(banks)) % m.Rows,
			Col:  col,
		}
	default: // InterleaveBankRowCol
		a = dram.Address{
			Bank: int(page/int64(m.Rows)) % banks,
			Row:  int(page) % m.Rows,
			Col:  col,
		}
	}
	return m.Route(a)
}

// Encode is the inverse of Decode for in-range coordinates: structural
// levels back through the channel bijection to the linear byte address.
func (m StructMap) Encode(c Coord) int64 {
	a := m.Invert(c)
	banks := m.Channels.GlobalBanks()
	var page int64
	switch m.Scheme {
	case InterleaveRowBankCol:
		page = int64(a.Row)*int64(banks) + int64(a.Bank)
	default:
		page = int64(a.Bank)*int64(m.Rows) + int64(a.Row)
	}
	return page*int64(m.RowBytes) + int64(a.Col)
}
