package mapping

import (
	"testing"

	"aanoc/internal/dram"
	"aanoc/internal/sim"
)

// The structural-map properties the deep-DRAM stack rests on: the full
// decomposition (channel → group → bank → subarray → row/col) is a
// bijection over every generation's real geometry — bank groups on
// DDR4, flat banks elsewhere, with and without subarray row buffers —
// composed with both channel-interleaving schemes.

// structGeometries builds a StructMap for every generation × channel ×
// scheme × subarray combination, pairing each with its timing package.
func structGeometries(t *testing.T) []StructMap {
	t.Helper()
	var out []StructMap
	for _, gen := range dram.Generations() {
		tm := dram.MustSpeed(gen, dram.DefaultClock(gen))
		for _, subs := range []int{0, 2, 4} {
			for _, chans := range []int{1, 2, 4} {
				for _, sch := range []ChannelScheme{BankThenChannel, ChannelThenBankXOR} {
					if sch == ChannelThenBankXOR && chans&(chans-1) != 0 {
						continue
					}
					cm, err := NewChannelMap(sch, chans, tm.Banks)
					if err != nil {
						t.Fatal(err)
					}
					for _, il := range []Interleave{InterleaveRowBankCol, InterleaveBankRowCol} {
						m, err := NewStructMap(cm, tm.WithSubarrays(subs), il, 4096, 1024)
						if err != nil {
							t.Fatalf("%s subs=%d chans=%d: %v", gen, subs, chans, err)
						}
						out = append(out, m)
					}
				}
			}
		}
	}
	return out
}

func TestStructMapMirrorsTimingStructure(t *testing.T) {
	for _, gen := range dram.Generations() {
		tm := dram.MustSpeed(gen, dram.DefaultClock(gen))
		cm, err := NewChannelMap(BankThenChannel, 1, tm.Banks)
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewStructMap(cm, tm, InterleaveRowBankCol, 4096, 1024)
		if err != nil {
			t.Fatal(err)
		}
		// Split must agree with the device's own derivations for every
		// local bank and a spread of rows.
		for b := 0; b < tm.Banks; b++ {
			for _, row := range []int{0, 1, 5, 4095} {
				c := m.Split(0, dram.Address{Bank: b, Row: row, Col: 8})
				if c.Group != tm.GroupOf(b) {
					t.Fatalf("%s bank %d: Split group %d, timing GroupOf %d", gen, b, c.Group, tm.GroupOf(b))
				}
				if c.Subarray != tm.SubarrayOf(row) {
					t.Fatalf("%s row %d: Split subarray %d, timing SubarrayOf %d", gen, row, c.Subarray, tm.SubarrayOf(row))
				}
				if c.Bank < 0 || c.Bank >= m.BanksPerGroup() {
					t.Fatalf("%s bank %d: in-group index %d of %d", gen, b, c.Bank, m.BanksPerGroup())
				}
			}
		}
	}
}

func TestStructMapRouteInvertRoundTrip(t *testing.T) {
	rng := sim.NewRNG(0x57121C7)
	for _, m := range structGeometries(t) {
		for i := 0; i < 500; i++ {
			a := dram.Address{
				Bank: rng.Intn(m.Channels.GlobalBanks()),
				Row:  rng.Intn(m.Rows),
				Col:  rng.Intn(m.RowBytes),
			}
			c := m.Route(a)
			if back := m.Invert(c); back != a {
				t.Fatalf("%+v: %+v -> %v -> %+v", m, a, c, back)
			}
		}
	}
}

func TestStructMapSplitCoversEveryCoordOnce(t *testing.T) {
	for _, m := range structGeometries(t) {
		// For a fixed row, walking one channel's local bank space must hit
		// every (group, in-group bank) pair exactly once.
		seen := map[[2]int]bool{}
		for b := 0; b < m.Channels.BanksPerChannel; b++ {
			c := m.Split(0, dram.Address{Bank: b, Row: 3})
			if c.Group < 0 || c.Group >= m.Groups {
				t.Fatalf("%+v: bank %d group %d of %d", m, b, c.Group, m.Groups)
			}
			key := [2]int{c.Group, c.Bank}
			if seen[key] {
				t.Fatalf("%+v: bank %d re-hits group %d bank %d", m, b, c.Group, c.Bank)
			}
			seen[key] = true
		}
		if len(seen) != m.Channels.BanksPerChannel {
			t.Fatalf("%+v: %d pairs over %d banks", m, len(seen), m.Channels.BanksPerChannel)
		}
	}
}

func TestStructMapDecodeEncodeRoundTrip(t *testing.T) {
	rng := sim.NewRNG(0xDEC0DE)
	for _, m := range structGeometries(t) {
		span := int64(m.Channels.GlobalBanks()) * int64(m.Rows) * int64(m.RowBytes)
		for i := 0; i < 500; i++ {
			addr := rng.Int63n(span)
			c := m.Decode(addr)
			if back := m.Encode(c); back != addr {
				t.Fatalf("%+v: %#x -> %v -> %#x", m, addr, c, back)
			}
			if c.Subarray != c.Row%m.Subarrays {
				t.Fatalf("%+v: coord %v subarray disagrees with row", m, c)
			}
		}
	}
}

func TestNewStructMapValidation(t *testing.T) {
	tm := dram.MustSpeed(dram.DDR4, 1200)
	cm, err := NewChannelMap(BankThenChannel, 2, tm.Banks)
	if err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		name string
		cm   ChannelMap
		tm   dram.Timing
		rows int
		rb   int
	}{
		{"bank mismatch", ChannelMap{Scheme: BankThenChannel, Channels: 2, BanksPerChannel: tm.Banks + 1}, tm, 4096, 1024},
		{"zero rows", cm, tm, 0, 1024},
		{"rowBytes not power of two", cm, tm, 4096, 1000},
	}
	for _, c := range bad {
		if _, err := NewStructMap(c.cm, c.tm, InterleaveRowBankCol, c.rows, c.rb); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
	// Zero-valued structure in the timing normalises to 1.
	flat := dram.MustSpeed(dram.DDR2, 333)
	fcm, err := NewChannelMap(BankThenChannel, 1, flat.Banks)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewStructMap(fcm, flat, InterleaveRowBankCol, 4096, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if m.Groups != 1 || m.Subarrays != 1 {
		t.Fatalf("flat generation normalised to groups=%d subs=%d", m.Groups, m.Subarrays)
	}
}
