package core

import (
	"testing"
	"testing/quick"

	"aanoc/internal/dram"
	"aanoc/internal/noc"
)

func pkt(id int64, bank, row int, kind noc.Kind, pri bool) *noc.Packet {
	return &noc.Packet{
		ID: id, ParentID: id, Kind: kind, Priority: pri,
		Class: noc.ClassMedia, Beats: 8, Flits: 4, Splits: 1,
		Addr: dram.Address{Bank: bank, Row: row},
	}
}

// schedule runs repeated arbitrations over a shrinking candidate pool and
// returns the grant order. All packets are presented as simultaneous
// arrivals, mirroring the Fig. 1 example where six requests sit in the
// input buffers.
func schedule(t *testing.T, g *GSS, pool []*noc.Packet) []*noc.Packet {
	t.Helper()
	now := int64(0)
	for _, p := range pool {
		g.OnPacketArrival(p, now)
	}
	remaining := append([]*noc.Packet(nil), pool...)
	var order []*noc.Packet
	for len(remaining) > 0 {
		now++
		cands := make([]noc.Candidate, len(remaining))
		for i, p := range remaining {
			cands[i] = noc.Candidate{Pkt: p, Port: i % noc.NumPorts}
		}
		w := g.Select(cands, now)
		if w < 0 {
			t.Fatalf("Select returned -1 with %d candidates", len(remaining))
		}
		chosen := remaining[w]
		g.OnScheduled(chosen, now)
		order = append(order, chosen)
		remaining = append(remaining[:w], remaining[w+1:]...)
	}
	return order
}

func pos(order []*noc.Packet, id int64) int {
	for i, p := range order {
		if p.ID == id {
			return i
		}
	}
	return -1
}

// fig1Pool reproduces the Fig. 1 input buffer: two demand requests to the
// same bank with different rows, two prefetches, two video requests; all
// reads; prefetch2 and request2 share a bank+row (row hit pair).
func fig1Pool(priority bool) []*noc.Packet {
	d1 := pkt(1, 1, 10, noc.Read, priority) // demand 1, BA1
	d2 := pkt(2, 1, 20, noc.Read, priority) // demand 2, BA1, different RA
	p1 := pkt(3, 2, 30, noc.Read, false)    // prefetch 1, BA2
	p2 := pkt(4, 3, 40, noc.Read, false)    // prefetch 2, BA3
	r1 := pkt(5, 4%4, 50, noc.Read, false)  // request 1, BA0
	r2 := pkt(6, 3, 40, noc.Read, false)    // request 2, row hit with prefetch 2
	return []*noc.Packet{d1, p1, r1, d2, p2, r2}
}

func TestPriorityEqualAvoidsBankConflict(t *testing.T) {
	// PCT=1 is the SDRAM-aware scheduler [4]: demand packets get no
	// preference and the two same-bank demands are never scheduled
	// back-to-back (Fig. 1(b)).
	g := MustNew(Config{PCT: 1, Banks: 4})
	order := schedule(t, g, fig1Pool(false))
	i, j := pos(order, 1), pos(order, 2)
	if j == i+1 || i == j+1 {
		t.Fatalf("bank-conflicting demands scheduled adjacently: %v", ids(order))
	}
}

func TestPriorityFirstServesDemandsFirst(t *testing.T) {
	// PCT=MaxTokens is a priority-first scheduler (Fig. 1(c)): both
	// demand packets are granted before any best-effort packet.
	cfg := Config{PCT: 5, Banks: 4}
	g := MustNew(cfg)
	order := schedule(t, g, fig1Pool(true))
	if pos(order, 1) > 1 || pos(order, 2) > 1 {
		t.Fatalf("priority-first should schedule demands in the first two slots: %v", ids(order))
	}
}

func TestHybridSchedulesDemandEarlyWithoutConflict(t *testing.T) {
	// The hybrid (Fig. 1(d)): demand 1 first; demand 2 soon after but
	// separated from demand 1 by a packet to a different bank, so no bank
	// conflict reaches the memory.
	g := MustNew(Config{PCT: 2, Banks: 4})
	order := schedule(t, g, fig1Pool(true))
	i, j := pos(order, 1), pos(order, 2)
	if i != 0 {
		t.Fatalf("demand 1 should be granted first: %v", ids(order))
	}
	if j == 1 {
		t.Fatalf("hybrid should not schedule conflicting demand 2 immediately: %v", ids(order))
	}
	if j > 2 {
		t.Fatalf("hybrid should schedule demand 2 early (slot <= 2): %v", ids(order))
	}
	// No adjacent pair in the whole order may be a bank conflict: tokens
	// are low, so the filter should have resolved all of them.
	for k := 1; k < len(order); k++ {
		if noc.BankConflict(order[k-1], order[k]) {
			t.Fatalf("bank conflict between slots %d and %d: %v", k-1, k, ids(order))
		}
	}
}

func ids(order []*noc.Packet) []int64 {
	out := make([]int64, len(order))
	for i, p := range order {
		out[i] = p.ID
	}
	return out
}

func TestSplitSiblingContinuationPreferred(t *testing.T) {
	// After scheduling one split of a logical request, the next split
	// (the T(0) path) wins over an older best-effort packet with more
	// tokens.
	g := MustNew(Config{PCT: 2, Banks: 4})
	old := pkt(1, 2, 5, noc.Read, false)
	first := pkt(2, 1, 7, noc.Read, false)
	sibling := pkt(3, 1, 7, noc.Read, false)
	first.ParentID, sibling.ParentID = 42, 42
	g.OnPacketArrival(old, 0)
	g.OnPacketArrival(first, 1)
	g.OnPacketArrival(sibling, 1)
	g.OnScheduled(first, 2) // h(n) = bank1 row7, parent 42
	w := g.Select([]noc.Candidate{{Pkt: old, Port: 0}, {Pkt: sibling, Port: 1}}, 3)
	if w != 1 {
		t.Fatalf("split sibling should win, got candidate %d", w)
	}
	// A priority packet with a token edge (PCT=2), however, preempts the
	// sibling chain.
	pri := pkt(4, 3, 1, noc.Read, true)
	g.OnPacketArrival(pri, 3)
	w = g.Select([]noc.Candidate{{Pkt: sibling, Port: 0}, {Pkt: pri, Port: 1}}, 4)
	if w != 1 {
		t.Fatalf("priority packet should preempt the sibling chain, got %d", w)
	}
}

func TestRowHitWithContentionNotPreferred(t *testing.T) {
	// A row-hit packet that turns the bus around does not take the T(0)
	// shortcut.
	g := MustNew(Config{PCT: 1, Banks: 4})
	prev := pkt(1, 1, 7, noc.Read, false)
	hitButWrite := pkt(2, 1, 7, noc.Write, false)
	cleanRead := pkt(3, 2, 9, noc.Read, false)
	g.OnPacketArrival(hitButWrite, 0)
	g.OnPacketArrival(cleanRead, 0)
	g.OnScheduled(prev, 1)
	w := g.Select([]noc.Candidate{{Pkt: hitButWrite, Port: 0}, {Pkt: cleanRead, Port: 1}}, 2)
	if w != 1 {
		t.Fatalf("contention-free bank-interleaved read should win, got %d", w)
	}
}

func TestExclusionBlocksSameBankBestEffort(t *testing.T) {
	// A best-effort candidate sharing a bank with a priority candidate is
	// excluded until the priority packet is scheduled (Algorithm 1 line 5)
	// — even when the best-effort packet holds more tokens.
	g := MustNew(Config{PCT: 1, Banks: 4})
	be := pkt(1, 1, 5, noc.Read, false)
	pri := pkt(2, 1, 9, noc.Read, true)
	g.OnPacketArrival(be, 0)
	g.OnPacketArrival(pri, 1) // ages be to 2 tokens; pri holds 1 (PCT=1)
	if g.Tokens(be) != 2 || g.Tokens(pri) != 1 {
		t.Fatalf("token setup wrong: be=%d pri=%d", g.Tokens(be), g.Tokens(pri))
	}
	w := g.Select([]noc.Candidate{{Pkt: be, Port: 0}, {Pkt: pri, Port: 1}}, 2)
	if w != 1 {
		t.Fatalf("priority packet should be granted, got %d", w)
	}
	// Without the bank overlap the best-effort packet's tokens win.
	g2 := MustNew(Config{PCT: 1, Banks: 4})
	be2 := pkt(3, 2, 5, noc.Read, false)
	pri2 := pkt(4, 1, 9, noc.Read, true)
	g2.OnPacketArrival(be2, 0)
	g2.OnPacketArrival(pri2, 1)
	if w := g2.Select([]noc.Candidate{{Pkt: be2, Port: 0}, {Pkt: pri2, Port: 1}}, 2); w != 0 {
		t.Fatalf("aged best-effort packet should win at PCT=1, got %d", w)
	}
}

func TestAgingPreventsStarvation(t *testing.T) {
	// A best-effort packet in permanent bank conflict with the scheduled
	// stream still gets granted once its tokens reach the always-pass
	// tier: a stream of row-hit packets cannot starve it forever.
	g := MustNew(Config{PCT: 1, Banks: 4})
	victim := pkt(100, 1, 99, noc.Read, false)
	g.OnPacketArrival(victim, 0)
	seed := pkt(101, 1, 1, noc.Read, false)
	g.OnPacketArrival(seed, 0)
	g.OnScheduled(seed, 0) // h(n): bank1 row1 — victim is a bank conflict
	granted := false
	for i := int64(0); i < 20 && !granted; i++ {
		fresh := pkt(200+i, 1, 1, noc.Read, false) // endless row hits
		g.OnPacketArrival(fresh, i)
		w := g.Select([]noc.Candidate{{Pkt: victim, Port: 0}, {Pkt: fresh, Port: 1}}, i)
		if w == 0 {
			granted = true
			break
		}
		g.OnScheduled(fresh, i)
	}
	if !granted {
		t.Fatal("aged packet was starved by a row-hit stream")
	}
}

func TestSTICounterSteersAwayFromClosingBank(t *testing.T) {
	sti := STIParams{Enabled: true, WriteIdle: 23, ReadIdle: 11}
	g := MustNew(Config{PCT: 1, Banks: 8, STI: sti})
	// Schedule a tagged write to bank 3: the bank idle counter arms.
	w := pkt(1, 3, 5, noc.Write, false)
	w.APTag = true
	g.OnPacketArrival(w, 0)
	g.OnScheduled(w, 0)
	// Now a fresh write to bank 3 (same row, so no bank conflict — but
	// the bank is being auto-precharged) competes with a write to bank 4.
	same := pkt(2, 3, 5, noc.Write, false)
	other := pkt(3, 4, 5, noc.Write, false)
	g.OnPacketArrival(same, 1)
	g.OnPacketArrival(other, 1)
	got := g.Select([]noc.Candidate{{Pkt: same, Port: 0}, {Pkt: other, Port: 1}}, 2)
	if got != 1 {
		t.Fatalf("STI should steer to the idle bank, got %d", got)
	}
	// Long after the counter expires the same-bank packet is fine again.
	g2 := MustNew(Config{PCT: 1, Banks: 8, STI: sti})
	g2.OnPacketArrival(w, 0)
	g2.OnScheduled(w, 0)
	g2.OnPacketArrival(same, 1)
	late := int64(100)
	if g2.Select([]noc.Candidate{{Pkt: same, Port: 0}}, late) != 0 {
		t.Fatal("expired STI counter should not block")
	}
}

func TestTokensQueryAndConfig(t *testing.T) {
	g := MustNew(Config{PCT: 3, Banks: 4})
	if g.Config().PCT != 3 {
		t.Fatal("Config not preserved")
	}
	p := pkt(1, 0, 0, noc.Read, true)
	if g.Tokens(p) != 0 {
		t.Fatal("unknown packet should have 0 tokens")
	}
	g.OnPacketArrival(p, 0)
	if g.Tokens(p) != 3 {
		t.Fatalf("priority packet tokens = %d, want PCT=3", g.Tokens(p))
	}
	q := pkt(2, 0, 0, noc.Read, false)
	g.OnPacketArrival(q, 1)
	if g.Tokens(p) != 4 || g.Tokens(q) != 1 {
		t.Fatalf("aging broken: p=%d q=%d", g.Tokens(p), g.Tokens(q))
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{PCT: 0, Banks: 4}); err == nil {
		t.Error("PCT 0 should be rejected")
	}
	if _, err := New(Config{PCT: 6, Banks: 4}); err == nil {
		t.Error("PCT 6 without STI should be rejected (max 5)")
	}
	if _, err := New(Config{PCT: 6, Banks: 4, STI: STIParams{Enabled: true}}); err != nil {
		t.Errorf("PCT 6 with STI should be accepted: %v", err)
	}
	if _, err := New(Config{PCT: 1, Banks: 0}); err == nil {
		t.Error("0 banks should be rejected")
	}
}

func TestPropertyFilterMonotoneInTokens(t *testing.T) {
	// If a packet passes tier t it must pass every tier above t — this is
	// what makes the Algorithm 1 aging loop terminate.
	f := func(bc, dc, st, sti bool, tier uint8) bool {
		t1 := int(tier) % 6
		c := conds{bankConflict: bc, dataContention: dc, shortTurn: st}
		if passesFilter(sti, t1, c) && !passesFilter(sti, t1+1, c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySelectAlwaysGrantsSomething(t *testing.T) {
	// With at least one candidate, Select must grant (the channel never
	// idles in the presence of work) — priority candidates are never
	// excluded, and aging reaches the always-pass tier.
	type spec struct {
		Bank, Row uint8
		Write     bool
		Pri       bool
	}
	f := func(specs []spec, pct uint8, sti bool) bool {
		if len(specs) == 0 {
			return true
		}
		if len(specs) > noc.NumPorts {
			specs = specs[:noc.NumPorts]
		}
		cfg := Config{PCT: int(pct)%3 + 1, Banks: 8}
		if sti {
			cfg.STI = STIParams{Enabled: true, WriteIdle: 23, ReadIdle: 11}
		}
		g := MustNew(cfg)
		pool := make([]*noc.Packet, len(specs))
		for i, s := range specs {
			kind := noc.Read
			if s.Write {
				kind = noc.Write
			}
			pool[i] = pkt(int64(i+1), int(s.Bank)%8, int(s.Row), kind, s.Pri)
			g.OnPacketArrival(pool[i], 0)
		}
		// Drain fully: every arbitration must grant.
		remaining := pool
		for now := int64(1); len(remaining) > 0; now++ {
			cands := make([]noc.Candidate, len(remaining))
			for i, p := range remaining {
				cands[i] = noc.Candidate{Pkt: p, Port: i}
			}
			w := g.Select(cands, now)
			if w < 0 {
				return false
			}
			g.OnScheduled(remaining[w], now)
			remaining = append(remaining[:w], remaining[w+1:]...)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPriorityLatencyDecreasesWithPCT(t *testing.T) {
	// The paper's knob: a larger PCT serves a late-arriving priority
	// packet sooner. Eight best-effort packets arrive first and age; the
	// priority packet arrives one cycle later holding PCT tokens.
	slot := func(pct int) int {
		g := MustNew(Config{PCT: pct, Banks: 4})
		var pool []*noc.Packet
		for i := int64(0); i < 8; i++ {
			pool = append(pool, pkt(i+1, int(i)%4, int(10+i), noc.Read, false))
			g.OnPacketArrival(pool[i], 0)
		}
		pri := pkt(99, 2, 77, noc.Read, true)
		pool = append(pool, pri)
		g.OnPacketArrival(pri, 1)
		remaining := pool
		for now := int64(2); ; now++ {
			cands := make([]noc.Candidate, len(remaining))
			for i, p := range remaining {
				cands[i] = noc.Candidate{Pkt: p, Port: i % noc.NumPorts}
			}
			w := g.Select(cands, now)
			if w < 0 {
				t.Fatal("Select returned -1")
			}
			if remaining[w] == pri {
				return len(pool) - len(remaining)
			}
			g.OnScheduled(remaining[w], now)
			remaining = append(remaining[:w], remaining[w+1:]...)
		}
	}
	lo, hi := slot(5), slot(1)
	if lo >= hi {
		t.Fatalf("PCT=5 slot (%d) should beat PCT=1 slot (%d)", lo, hi)
	}
	if lo != 0 {
		t.Fatalf("PCT=5 (priority-first) should grant the priority packet immediately, got slot %d", lo)
	}
}
