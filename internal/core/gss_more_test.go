package core

import (
	"testing"

	"aanoc/internal/noc"
)

func TestSTIArmsOnlyOnTaggedPackets(t *testing.T) {
	sti := STIParams{Enabled: true, WriteIdle: 20, ReadIdle: 10}
	g := MustNew(Config{PCT: 1, Banks: 8, STI: sti})
	// Untagged packet: counter must not arm.
	un := pkt(1, 2, 5, noc.Write, false)
	g.OnPacketArrival(un, 0)
	g.OnScheduled(un, 0)
	probe := pkt(2, 2, 5, noc.Write, false)
	g.OnPacketArrival(probe, 1)
	if got := g.Select([]noc.Candidate{{Pkt: probe, Port: 0}}, 2); got != 0 {
		t.Fatal("untagged scheduling must not arm the bank counter")
	}
}

func TestSTIReadVsWriteIdleTimes(t *testing.T) {
	sti := STIParams{Enabled: true, WriteIdle: 30, ReadIdle: 5}
	mk := func(kind noc.Kind) *GSS {
		g := MustNew(Config{PCT: 1, Banks: 8, STI: sti})
		p := pkt(1, 3, 5, kind, false)
		p.APTag = true
		g.OnPacketArrival(p, 0)
		g.OnScheduled(p, 0)
		return g
	}
	// Probe at a time between the read and write recovery estimates:
	// transfer (4 flits) + 5 < 12 < transfer + 30.
	same := pkt(2, 3, 5, noc.Read, false)
	other := pkt(3, 4, 5, noc.Read, false)
	probeAt := int64(12)
	gr := mk(noc.Read)
	gr.OnPacketArrival(same, 1)
	gr.OnPacketArrival(other, 1)
	if got := gr.Select([]noc.Candidate{{Pkt: same, Port: 0}, {Pkt: other, Port: 1}}, probeAt); got != 0 {
		t.Fatalf("read-idle expired: same-bank packet should win FIFO order, got %d", got)
	}
	gw := mk(noc.Write)
	// Against a write recovery the same-bank candidate is steered away.
	same2 := pkt(4, 3, 5, noc.Write, false)
	other2 := pkt(5, 4, 5, noc.Write, false)
	gw.OnPacketArrival(same2, 1)
	gw.OnPacketArrival(other2, 1)
	if got := gw.Select([]noc.Candidate{{Pkt: same2, Port: 0}, {Pkt: other2, Port: 1}}, probeAt); got != 1 {
		t.Fatalf("write-idle pending: other bank should win, got %d", got)
	}
}

func TestMaxTokensPerTree(t *testing.T) {
	if (Config{}).MaxTokens() != 5 {
		t.Error("Fig. 4(a) tree should cap at 5 tokens")
	}
	if (Config{STI: STIParams{Enabled: true}}).MaxTokens() != 6 {
		t.Error("Fig. 4(b) tree should cap at 6 tokens")
	}
}

func TestSelectAdoptsUnknownCandidates(t *testing.T) {
	// A candidate the allocator was never told about (e.g. after a
	// reconfiguration) is adopted rather than crashing or starving.
	g := MustNew(Config{PCT: 2, Banks: 4})
	stranger := pkt(1, 0, 0, noc.Read, false)
	if got := g.Select([]noc.Candidate{{Pkt: stranger, Port: 0}}, 5); got != 0 {
		t.Fatalf("unknown candidate not granted: %d", got)
	}
	if g.Tokens(stranger) == 0 {
		t.Fatal("unknown candidate not adopted into the token table")
	}
}

func TestSelectEmpty(t *testing.T) {
	g := MustNew(Config{PCT: 2, Banks: 4})
	if g.Select(nil, 0) != -1 {
		t.Fatal("empty candidate set must return -1")
	}
}

func TestScheduledCounterAdvances(t *testing.T) {
	g := MustNew(Config{PCT: 1, Banks: 4})
	p := pkt(1, 0, 0, noc.Read, false)
	g.OnPacketArrival(p, 0)
	g.OnScheduled(p, 1)
	if g.Scheduled != 1 {
		t.Fatalf("Scheduled = %d", g.Scheduled)
	}
	if g.Tokens(p) != 0 {
		t.Fatal("scheduled packet should leave the token table")
	}
}

func TestDataContentionSeparation(t *testing.T) {
	// After a write, a read to a different bank with fresh tokens fails
	// T(1) (contention) while a write passes — the scheduler groups
	// directions.
	g := MustNew(Config{PCT: 1, Banks: 4})
	w := pkt(1, 0, 1, noc.Write, false)
	g.OnPacketArrival(w, 0)
	g.OnScheduled(w, 0)
	rd := pkt(2, 1, 1, noc.Read, false)
	wr := pkt(3, 2, 1, noc.Write, false)
	g.OnPacketArrival(rd, 1)
	g.OnPacketArrival(wr, 1)
	if got := g.Select([]noc.Candidate{{Pkt: rd, Port: 0}, {Pkt: wr, Port: 1}}, 2); got != 1 {
		t.Fatalf("same-direction write should win, got %d", got)
	}
}
