package core

import (
	"fmt"

	"aanoc/internal/noc"
)

// Splitter implements SAGM: it cuts a logical memory request into short
// packets whose payload is at most the SDRAM access granularity, so that
// (a) the memory subsystem never has to over-fetch a whole device burst
// for a small request, and (b) a long best-effort packet can no longer
// block a priority packet for more than one granule under winner-take-all
// channel allocation.
//
// The granularity is chosen per DDR generation as in the paper: DDR I/II
// devices are run in BL4 mode (4 beats per column command), DDR III in
// BL8 mode with on-the-fly BC4 chop (8 beats, choppable to 4).
type Splitter struct {
	// GranularityBeats is the maximum payload of one split packet.
	GranularityBeats int
	// Alloc, when set, supplies the packet structs for write splits —
	// the system passes its recycling pool here so a saturated run's
	// steady state allocates no packets. Every field of the returned
	// packet is overwritten. nil falls back to plain allocation.
	Alloc func() *noc.Packet
}

// SplitGranularity returns the paper's split granularity in data beats
// for a DDR generation: 4 beats (one BL4 access) for DDR I/II, 8 beats
// (one BL8 access) for DDR III.
func SplitGranularity(gen int) int {
	if gen >= 3 {
		return 8
	}
	return 4
}

// Split cuts the logical request p into packets of at most
// GranularityBeats beats. Consecutive splits address consecutive columns
// of the same row (so their pairwise relation is a row-buffer hit and the
// GSS T(0) path schedules them back to back); the final split carries the
// AP tag that drives the memory subsystem's partially-open-page policy —
// the caller sets p.APTag to indicate whether this request is the
// application's last access to the row (tag it) or more row hits follow
// (leave the row open). newID allocates packet IDs. A request that
// already fits returns a single packet.
func (s Splitter) Split(p *noc.Packet, newID func() int64) ([]*noc.Packet, error) {
	if s.GranularityBeats < 1 {
		return nil, fmt.Errorf("core: invalid split granularity %d", s.GranularityBeats)
	}
	if p.Beats < 1 {
		return nil, fmt.Errorf("core: packet %v has no payload", p)
	}
	if p.Kind == noc.Read {
		// A read request is a single command flit whatever its burst
		// length — it cannot block a priority packet — so it travels
		// unsplit and the memory subsystem applies the granularity
		// matching (one BL-sized column command per granule, AP on the
		// last when the request leaves its row).
		p.ParentID = p.ID
		p.Splits = 1
		p.Flits = 1
		return []*noc.Packet{p}, nil
	}
	n := (p.Beats + s.GranularityBeats - 1) / s.GranularityBeats
	out := make([]*noc.Packet, 0, n)
	remaining := p.Beats
	col := p.Addr.Col
	for i := 0; i < n; i++ {
		beats := s.GranularityBeats
		if beats > remaining {
			beats = remaining
		}
		sp := s.allocPkt()
		*sp = *p // copy shared fields
		sp.ID = newID()
		sp.ParentID = p.ID
		sp.Beats = beats
		sp.Addr.Col = col
		sp.Splits = n
		sp.APTag = p.APTag && i == n-1
		sp.Flits = noc.FlitsForBeats(beats)
		out = append(out, sp)
		remaining -= beats
		col += beats
	}
	return out, nil
}

// allocPkt draws from the configured pool, or the heap without one.
func (s Splitter) allocPkt() *noc.Packet {
	if s.Alloc != nil {
		return s.Alloc()
	}
	return new(noc.Packet)
}

// NoSplit wraps an unsplit request for designs without SAGM: the packet
// keeps its identity, is its own parent, and carries no AP tag (the
// memory subsystem runs a plain open-page policy with explicit
// precharges).
func NoSplit(p *noc.Packet) []*noc.Packet {
	p.ParentID = p.ID
	p.Splits = 1
	p.APTag = false
	if p.Kind == noc.Write {
		p.Flits = noc.FlitsForBeats(p.Beats)
	} else {
		p.Flits = 1
	}
	return []*noc.Packet{p}
}
