package core

import (
	"testing"
	"testing/quick"

	"aanoc/internal/dram"
	"aanoc/internal/noc"
)

func idGen() func() int64 {
	n := int64(1000)
	return func() int64 { n++; return n }
}

func logical(beats int, kind noc.Kind) *noc.Packet {
	return &noc.Packet{
		ID: 1, ParentID: 1, Kind: kind, Class: noc.ClassMedia,
		Beats: beats, Addr: dram.Address{Bank: 2, Row: 9, Col: 16}, Splits: 1,
		APTag: true, // the request is the stream's last access to its row
	}
}

func TestSplitGranularityPerGeneration(t *testing.T) {
	if g := SplitGranularity(1); g != 4 {
		t.Errorf("DDR1 granularity = %d, want 4", g)
	}
	if g := SplitGranularity(2); g != 4 {
		t.Errorf("DDR2 granularity = %d, want 4", g)
	}
	if g := SplitGranularity(3); g != 8 {
		t.Errorf("DDR3 granularity = %d, want 8", g)
	}
}

func TestSplitPaperExample(t *testing.T) {
	// The paper's example: a 9-granule packet splits into 2,2,2,2,1
	// accesses for DDR I/II and 4,4,1 for DDR III. In beat units (one
	// paper granule = 2 beats = 1 data cycle) that is an 18-beat request
	// splitting into 4,4,4,4,2 beats (five packets) at granularity 4 and
	// 8,8,2 (three packets) at granularity 8.
	p := logical(18, noc.Write)
	five, err := Splitter{GranularityBeats: 4}.Split(p, idGen())
	if err != nil {
		t.Fatal(err)
	}
	if len(five) != 5 {
		t.Fatalf("DDR1/2 split count = %d, want 5", len(five))
	}
	wantBeats := []int{4, 4, 4, 4, 2}
	for i, sp := range five {
		if sp.Beats != wantBeats[i] {
			t.Errorf("split %d beats = %d, want %d", i, sp.Beats, wantBeats[i])
		}
	}
	three, err := Splitter{GranularityBeats: 8}.Split(p, idGen())
	if err != nil {
		t.Fatal(err)
	}
	if len(three) != 3 {
		t.Fatalf("DDR3 split count = %d, want 3", len(three))
	}
}

func TestSplitInvariants(t *testing.T) {
	p := logical(18, noc.Write)
	splits, err := Splitter{GranularityBeats: 4}.Split(p, idGen())
	if err != nil {
		t.Fatal(err)
	}
	total, col := 0, p.Addr.Col
	for i, sp := range splits {
		total += sp.Beats
		if sp.ParentID != p.ID {
			t.Errorf("split %d parent = %d, want %d", i, sp.ParentID, p.ID)
		}
		if sp.Splits != len(splits) {
			t.Errorf("split %d Splits = %d, want %d", i, sp.Splits, len(splits))
		}
		if sp.Addr.Col != col {
			t.Errorf("split %d col = %d, want %d", i, sp.Addr.Col, col)
		}
		if sp.Addr.Bank != p.Addr.Bank || sp.Addr.Row != p.Addr.Row {
			t.Errorf("split %d changed bank/row", i)
		}
		if got, want := sp.APTag, i == len(splits)-1; got != want {
			t.Errorf("split %d APTag = %v, want %v", i, got, want)
		}
		if sp.Flits != noc.FlitsForBeats(sp.Beats) {
			t.Errorf("write split %d flits = %d, want %d", i, sp.Flits, noc.FlitsForBeats(sp.Beats))
		}
		col += sp.Beats
	}
	if total != p.Beats {
		t.Fatalf("split beats sum = %d, want %d", total, p.Beats)
	}
}

func TestSplitReadTravelsUnsplit(t *testing.T) {
	// A read request cannot block a priority packet (it is one command
	// flit regardless of burst length), so SAGM leaves it unsplit and the
	// memory subsystem applies the granularity matching.
	p := logical(18, noc.Read)
	splits, err := Splitter{GranularityBeats: 8}.Split(p, idGen())
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 1 {
		t.Fatalf("read produced %d packets, want 1", len(splits))
	}
	if splits[0].Flits != 1 || splits[0].Beats != 18 || !splits[0].APTag {
		t.Fatalf("read request malformed: %+v", splits[0])
	}
}

func TestSplitSmallRequestSingleTagged(t *testing.T) {
	p := logical(2, noc.Write)
	splits, err := Splitter{GranularityBeats: 4}.Split(p, idGen())
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 1 || !splits[0].APTag || splits[0].Beats != 2 {
		t.Fatalf("small request should become one tagged packet, got %+v", splits[0])
	}
}

func TestSplitRowContinuationStaysUntagged(t *testing.T) {
	// A request that is not the stream's last access to its row (APTag
	// false) produces no tagged split: the row stays open for the hits
	// that follow.
	p := logical(18, noc.Write)
	p.APTag = false
	splits, err := Splitter{GranularityBeats: 4}.Split(p, idGen())
	if err != nil {
		t.Fatal(err)
	}
	for i, sp := range splits {
		if sp.APTag {
			t.Errorf("split %d tagged on a row-continuing request", i)
		}
	}
}

func TestSplitErrors(t *testing.T) {
	if _, err := (Splitter{GranularityBeats: 0}).Split(logical(8, noc.Write), idGen()); err == nil {
		t.Error("zero granularity should error")
	}
	if _, err := (Splitter{GranularityBeats: 4}).Split(logical(0, noc.Write), idGen()); err == nil {
		t.Error("empty payload should error")
	}
}

func TestNoSplit(t *testing.T) {
	p := logical(18, noc.Write)
	out := NoSplit(p)
	if len(out) != 1 || out[0] != p {
		t.Fatal("NoSplit should return the packet itself")
	}
	if p.APTag || p.Splits != 1 || p.ParentID != p.ID {
		t.Fatalf("NoSplit bookkeeping wrong: %+v", p)
	}
	if p.Flits != noc.FlitsForBeats(18) {
		t.Fatalf("NoSplit write flits = %d, want %d", p.Flits, noc.FlitsForBeats(18))
	}
	r := logical(18, noc.Read)
	if NoSplit(r); r.Flits != 1 {
		t.Fatalf("NoSplit read flits = %d, want 1", r.Flits)
	}
}

func TestPropertySplitConservesBeats(t *testing.T) {
	f := func(beats uint8, gran uint8, write bool) bool {
		b := int(beats)%200 + 1
		g := []int{2, 4, 8}[int(gran)%3]
		kind := noc.Read
		if write {
			kind = noc.Write
		}
		p := logical(b, kind)
		splits, err := Splitter{GranularityBeats: g}.Split(p, idGen())
		if err != nil {
			return false
		}
		if kind == noc.Read {
			// Reads travel unsplit as one command flit; the memory
			// subsystem matches the granularity itself.
			return len(splits) == 1 && splits[0].Beats == b &&
				splits[0].Flits == 1 && splits[0].APTag && splits[0].ParentID == p.ID
		}
		sum, tags := 0, 0
		for _, sp := range splits {
			if sp.Beats < 1 || sp.Beats > g {
				return false
			}
			sum += sp.Beats
			if sp.APTag {
				tags++
			}
		}
		wantN := (b + g - 1) / g
		return sum == b && tags == 1 && splits[len(splits)-1].APTag && len(splits) == wantN && splits[0].ParentID == p.ID
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
