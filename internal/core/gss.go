// Package core implements the paper's primary contribution: the GSS
// (guaranteed SDRAM service) flow-control algorithm (Algorithm 1 with the
// Fig. 4 filter trees and short turn-around-interleaving bank counters)
// and the SAGM (SDRAM access granularity matching) packet splitter.
//
// A GSS instance is one flow controller: it arbitrates one router output
// channel on the path toward the memory subsystem. It tracks an aging
// token count per resident memory request packet and, whenever the channel
// frees, picks the next packet so that the stream arriving at the memory
// subsystem avoids bank conflict, data contention and (optionally) short
// turn-around bank interleaving while still bounding the waiting time of
// priority packets through the priority control token (PCT).
package core

import (
	"fmt"

	"aanoc/internal/noc"
)

// STIParams configures the short turn-around bank interleaving extension
// (Fig. 4(b)): per-bank countdown timers the flow controller arms when it
// schedules a packet that will close its bank (AP tag), estimating when
// the bank can be activated again.
type STIParams struct {
	Enabled bool
	// WriteIdle estimates the cycles from the end of a write data burst
	// until the bank is ready again (tWR + tRP in the paper).
	WriteIdle int64
	// ReadIdle estimates the cycles from the end of a read burst until
	// the bank is ready again (tRP in the paper).
	ReadIdle int64
}

// Config parameterises a GSS flow controller.
type Config struct {
	// PCT is the priority control token: the initial token count of a
	// priority packet. 1 degenerates to the priority-equal scheduler of
	// the SDRAM-aware router [4]; MaxTokens() degenerates to a
	// priority-first scheduler; intermediate values are the paper's
	// hybrid. Best-effort packets always start with one token.
	PCT int
	// Banks is the number of SDRAM banks (sizes the STI counters).
	Banks int
	// Subarrays is the row-buffer count per bank on a subarray-parallel
	// device (0 or 1: one buffer, the classic bank). When set, the flow
	// controller stops counting same-bank accesses to rows in different
	// subarrays as bank conflicts — their row buffers are independent, so
	// back-to-back scheduling costs no precharge/activate cycle.
	Subarrays int
	// STI enables the Fig. 4(b) filter tree with bank idle counters.
	STI STIParams
}

// MaxTokens returns the deepest filter tier for this configuration: 5 for
// the Fig. 4(a) tree, 6 for the Fig. 4(b) tree, matching the paper's
// "2 to 5 (or 6)" PCT range.
func (c Config) MaxTokens() int {
	if c.STI.Enabled {
		return 6
	}
	return 5
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.PCT < 1 || c.PCT > c.MaxTokens() {
		return fmt.Errorf("core: PCT %d outside [1,%d]", c.PCT, c.MaxTokens())
	}
	if c.Banks < 1 {
		return fmt.Errorf("core: need at least one bank, got %d", c.Banks)
	}
	if c.Subarrays < 0 {
		return fmt.Errorf("core: negative subarray count %d", c.Subarrays)
	}
	return nil
}

// entry is the per-resident-packet token state (t_i in Algorithm 1).
// Entries live in a small ordered slice rather than a map: resident
// counts are bounded by the router's input buffering (a handful), so a
// linear scan beats hashing on the per-cycle path, removal keeps the
// arrival order, and the slice's backing array is recycled — no
// steady-state allocation.
type entry struct {
	pkt       *noc.Packet
	tokens    int
	seq       int64 // arrival order, used as the FIFO tiebreak
	arrivedAt int64
}

// GSS is one guaranteed-SDRAM-service flow controller. It implements
// noc.Allocator.
type GSS struct {
	cfg     Config
	nextSeq int64

	entries []entry
	// last is a value copy of h(n), the most recently granted packet —
	// a copy because the original may be recycled through the system's
	// packet pool after it completes.
	last    noc.Packet
	hasLast bool

	lastArrivalParent int64

	// bankIdleAt[b] is the absolute cycle bank b is estimated to accept a
	// new activation; armed when a scheduled packet carries an AP tag.
	bankIdleAt []int64

	// excluded/eidx are reusable scratch for Select (grown on demand —
	// routers pass at most one candidate per input port, but direct
	// callers may pass more).
	excluded []bool
	eidx     []int

	// Scheduled counts grants, used by the activity-based power model.
	Scheduled int64
}

// New constructs a GSS flow controller.
func New(cfg Config) (*GSS, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &GSS{
		cfg:        cfg,
		bankIdleAt: make([]int64, cfg.Banks),
	}, nil
}

// find returns the index of a resident packet's entry, or -1.
func (g *GSS) find(p *noc.Packet) int {
	for i := range g.entries {
		if g.entries[i].pkt == p {
			return i
		}
	}
	return -1
}

// MustNew is New but panics on invalid configuration.
func MustNew(cfg Config) *GSS {
	g, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// Config returns the controller's configuration.
func (g *GSS) Config() Config { return g.cfg }

// Tokens reports the current token count of a resident packet (0 if the
// packet is unknown); exported for tests and introspection.
func (g *GSS) Tokens(p *noc.Packet) int {
	if i := g.find(p); i >= 0 {
		return g.entries[i].tokens
	}
	return 0
}

// OnPacketArrival implements Algorithm 1 lines 1-13: resident packets age
// by one token (starvation avoidance) and the new packet receives its
// initial tokens — PCT for a priority packet, one for best-effort.
// Packets arriving in the same cycle do not age each other (they are the
// simultaneous arrivals of one arbitration round), and the consecutive
// splits of one logical request age the others only once — a split chain
// is one unit of waiting, or token inflation would push every resident
// packet to the always-pass filter tier and disable SDRAM-aware ordering
// precisely in the SAGM configurations.
func (g *GSS) OnPacketArrival(p *noc.Packet, now int64) {
	if p.ParentID != g.lastArrivalParent {
		for i := range g.entries {
			if g.entries[i].arrivedAt < now {
				g.entries[i].tokens++
			}
		}
	}
	g.lastArrivalParent = p.ParentID
	tok := 1
	if p.Priority {
		tok = g.cfg.PCT
	}
	g.nextSeq++
	g.entries = append(g.entries, entry{pkt: p, tokens: tok, seq: g.nextSeq, arrivedAt: now})
}

// conds are the Fig. 4 conditions of one candidate against h(n).
type conds struct {
	bankConflict   bool
	dataContention bool
	shortTurn      bool
	sibling        bool // split sibling of h(n): the T(0) continuation
}

func (g *GSS) condsFor(p *noc.Packet, now int64) conds {
	var c conds
	if g.cfg.STI.Enabled && g.bankIdleAt[p.Addr.Bank%g.cfg.Banks] > now {
		c.shortTurn = true
	}
	if !g.hasLast {
		return c
	}
	c.bankConflict = noc.BankConflict(&g.last, p)
	if c.bankConflict && g.cfg.Subarrays > 1 &&
		g.last.Addr.Row%g.cfg.Subarrays != p.Addr.Row%g.cfg.Subarrays {
		// Different subarrays of the same bank hold their rows
		// simultaneously — no row buffer is evicted, so no conflict.
		c.bankConflict = false
	}
	c.dataContention = noc.DataContention(&g.last, p)
	c.sibling = g.last.ParentID == p.ParentID && noc.RowHit(&g.last, p) && !c.dataContention
	return c
}

// passesFilter implements the Fig. 4 filter tiers for a packet holding t
// tokens. Tiers relax monotonically (each admits a superset of the one
// below) so the Algorithm 1 aging loop (lines 19-24) always terminates:
// an old packet eventually reaches the always-pass tier.
//
// Fig. 4(a) (bank conflict + data contention):
//
//	T(1): no bank conflict and no data contention
//	T(2): no bank conflict
//	T(3): not both (at most one of conflict/contention)
//	T(4+): always
//
// Fig. 4(b) (adds short turn-around interleaving):
//
//	T(1): no conflict, no contention, bank idle timer expired
//	T(2): no conflict, bank idle timer expired
//	T(3): no bank conflict
//	T(4): not both
//	T(5+): always
func passesFilter(sti bool, t int, c conds) bool {
	if !sti {
		switch {
		case t >= 4:
			return true
		case t == 3:
			return !c.bankConflict || !c.dataContention
		case t == 2:
			return !c.bankConflict
		default:
			return !c.bankConflict && !c.dataContention
		}
	}
	switch {
	case t >= 5:
		return true
	case t == 4:
		return !c.bankConflict || !c.dataContention
	case t == 3:
		return !c.bankConflict
	case t == 2:
		return !c.bankConflict && !c.shortTurn
	default:
		return !c.bankConflict && !c.dataContention && !c.shortTurn
	}
}

// Select implements the arbitration of Algorithm 1 lines 14-25 plus the
// priority-packet exclusion of line 5. Candidates are the head packets of
// the router's input buffers requesting this channel.
//
// Two interpretation decisions, recorded in DESIGN.md:
//
//   - Exclusion is evaluated among the competing candidates rather than
//     all residents: excluding a best-effort head on behalf of a priority
//     packet still buried behind it in the same FIFO would idle the
//     channel without helping the priority packet, and can deadlock.
//
//   - Selection is token-primary: among candidates passing their filter
//     tier, the one with the most tokens wins (priority beats best-effort
//     on a tie, then earlier arrival). This realises the paper's claimed
//     degenerate cases exactly — PCT=1 gives priority packets no edge
//     (priority-equal, the [4] scheduler) and PCT=max always wins
//     (priority-first). The T(0) split-sibling continuation overrides a
//     best-effort winner but never a priority winner ("a priority packet
//     is always scheduled without any interference").
func (g *GSS) Select(cands []noc.Candidate, now int64) int {
	if len(cands) == 0 {
		return -1
	}
	if cap(g.excluded) < len(cands) {
		g.excluded = make([]bool, len(cands))
		g.eidx = make([]int, len(cands))
	}
	// Robustness: adopt candidates the allocator was not told about
	// (e.g. after reconfiguration). eidx caches each candidate's entry
	// index so the inner loops avoid repeated scans.
	eidx := g.eidx[:len(cands)]
	for i, c := range cands {
		j := g.find(c.Pkt)
		if j < 0 {
			g.OnPacketArrival(c.Pkt, now)
			j = len(g.entries) - 1
		}
		eidx[i] = j
	}
	// Line 5: exclude best-effort candidates targeting the same bank as a
	// competing priority candidate.
	excluded := g.excluded[:len(cands)]
	anyIncluded := false
	for i, c := range cands {
		excluded[i] = false
		if !c.Pkt.Priority {
			for _, pc := range cands {
				if pc.Pkt.Priority && pc.Pkt.Addr.Bank == c.Pkt.Addr.Bank {
					excluded[i] = true
					break
				}
			}
		}
		if !excluded[i] {
			anyIncluded = true
		}
	}
	if !anyIncluded {
		return -1 // cannot happen: priority candidates are never excluded
	}
	maxTok := g.cfg.MaxTokens()
	for extra := 0; ; extra++ {
		best, bestT0 := -1, -1
		for i, c := range cands {
			if excluded[i] {
				continue
			}
			e := &g.entries[eidx[i]]
			t := e.tokens + extra
			if t > maxTok {
				t = maxTok
			}
			cc := g.condsFor(c.Pkt, now)
			if passesFilter(g.cfg.STI.Enabled, t, cc) {
				best = g.betterOf(cands, eidx, best, i)
			}
			if cc.sibling && (bestT0 < 0 || e.seq < g.entries[eidx[bestT0]].seq) {
				bestT0 = i
			}
		}
		if best >= 0 {
			if bestT0 >= 0 && !cands[best].Pkt.Priority {
				return bestT0
			}
			return best
		}
		if extra > maxTok {
			return -1 // unreachable: the deepest tier always passes
		}
	}
}

// betterOf ranks two passing candidates: more tokens first, then priority,
// then earlier arrival. Raw token counts order identically to the
// extra-aged counts because the aging increment is common to both.
func (g *GSS) betterOf(cands []noc.Candidate, eidx []int, cur, alt int) int {
	if cur < 0 {
		return alt
	}
	ce, ae := &g.entries[eidx[cur]], &g.entries[eidx[alt]]
	if ae.tokens > ce.tokens {
		return alt
	}
	if ae.tokens < ce.tokens {
		return cur
	}
	cp, ap := cands[cur].Pkt.Priority, cands[alt].Pkt.Priority
	if ap != cp {
		if ap {
			return alt
		}
		return cur
	}
	if ae.seq < ce.seq {
		return alt
	}
	return cur
}

// AuditTokens is the checked-mode walk over the controller's token
// table: every resident entry must hold at least one token (arrivals
// start at 1 or PCT and aging only adds), and the configured PCT must
// sit inside the filter-tree range its Validate accepted. Token counts
// above MaxTokens are legal — aging is unbounded and Select clamps at
// the always-pass tier — so they are not flagged. Each violation is
// reported through the closure.
func (g *GSS) AuditTokens(report func(kind, format string, args ...any)) {
	if g.cfg.PCT < 1 || g.cfg.PCT > g.cfg.MaxTokens() {
		report("pct-bound", "PCT %d outside [1,%d]", g.cfg.PCT, g.cfg.MaxTokens())
	}
	for i := range g.entries {
		e := &g.entries[i]
		if e.tokens < 1 {
			report("token-bound", "resident packet %d holds %d tokens", e.pkt.ID, e.tokens)
		}
		if e.seq <= 0 || e.seq > g.nextSeq {
			report("token-bound", "resident packet %d carries sequence %d outside (0,%d]", e.pkt.ID, e.seq, g.nextSeq)
		}
	}
}

// OnScheduled records the grant: the packet becomes h(n), leaves the token
// table, and — when it carries an AP tag under STI — arms the bank idle
// counter with the router-side estimate of when the auto-precharged bank
// can be activated again (data transfer time plus tWR+tRP for writes, tRP
// for reads).
func (g *GSS) OnScheduled(p *noc.Packet, now int64) {
	g.Scheduled++
	if i := g.find(p); i >= 0 {
		// Copy-shift removal keeps arrival order and recycles the
		// backing array.
		copy(g.entries[i:], g.entries[i+1:])
		g.entries[len(g.entries)-1] = entry{}
		g.entries = g.entries[:len(g.entries)-1]
	}
	g.last = *p
	g.hasLast = true
	if g.cfg.STI.Enabled && p.APTag {
		transfer := int64(noc.FlitsForBeats(p.Beats))
		idle := g.cfg.STI.ReadIdle
		if p.Kind == noc.Write {
			idle = g.cfg.STI.WriteIdle
		}
		at := now + transfer + idle
		b := p.Addr.Bank % g.cfg.Banks
		if at > g.bankIdleAt[b] {
			g.bankIdleAt[b] = at
		}
	}
}
