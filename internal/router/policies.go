// Package router provides the conventional flow-control policies the
// paper compares against: round-robin (the CONV design) and
// priority-first round-robin (the CONV+PFS design and the non-GSS routers
// of the Fig. 8 sweep). The SDRAM-aware policies ([4] and GSS) come from
// internal/core — [4] is the GSS engine at PCT=1 and [4]+PFS at PCT=max,
// as the paper states.
package router

import "aanoc/internal/noc"

// RoundRobin grants the output channel to input ports in rotating order,
// the conventional best-effort NoC arbitration.
type RoundRobin struct {
	next    int
	granted int
	// Grants counts channel allocations for the power model.
	Grants int64
}

// OnPacketArrival implements noc.Allocator; round-robin keeps no
// per-packet state.
func (r *RoundRobin) OnPacketArrival(*noc.Packet, int64) {}

// Select picks the first candidate at or after the rotating pointer.
func (r *RoundRobin) Select(cands []noc.Candidate, _ int64) int {
	if len(cands) == 0 {
		return -1
	}
	best, bestKey := 0, r.portKey(cands[0].Port)
	for i := 1; i < len(cands); i++ {
		if k := r.portKey(cands[i].Port); k < bestKey {
			best, bestKey = i, k
		}
	}
	r.granted = cands[best].Port
	return best
}

// portKey orders ports relative to the rotating pointer.
func (r *RoundRobin) portKey(port int) int {
	return (port - r.next + noc.NumPorts) % noc.NumPorts
}

// OnScheduled advances the rotating pointer one past the granted port.
func (r *RoundRobin) OnScheduled(p *noc.Packet, _ int64) {
	r.Grants++
	r.next = (r.granted + 1) % noc.NumPorts
}

// PriorityFirst wraps another policy: priority packets always win over
// best-effort packets; ties within a class fall through to the inner
// policy. With a RoundRobin inner policy this is the paper's PFS service.
type PriorityFirst struct {
	Inner noc.Allocator

	// pri/idx are reusable scratch for Select, grown on demand so the
	// per-cycle filtering allocates nothing in steady state.
	pri []noc.Candidate
	idx []int
}

// OnPacketArrival forwards to the inner policy.
func (p *PriorityFirst) OnPacketArrival(pkt *noc.Packet, now int64) {
	p.Inner.OnPacketArrival(pkt, now)
}

// Select restricts the candidate set to priority packets when any are
// present, then delegates.
func (p *PriorityFirst) Select(cands []noc.Candidate, now int64) int {
	if cap(p.pri) < len(cands) {
		p.pri = make([]noc.Candidate, len(cands))
		p.idx = make([]int, len(cands))
	}
	pri, idx := p.pri[:len(cands)], p.idx[:len(cands)]
	n := 0
	for i, c := range cands {
		if c.Pkt.Priority {
			pri[n] = c
			idx[n] = i
			n++
		}
	}
	if n == 0 {
		return p.Inner.Select(cands, now)
	}
	w := p.Inner.Select(pri[:n], now)
	if w < 0 {
		return -1
	}
	return idx[w]
}

// OnScheduled forwards to the inner policy.
func (p *PriorityFirst) OnScheduled(pkt *noc.Packet, now int64) {
	p.Inner.OnScheduled(pkt, now)
}
