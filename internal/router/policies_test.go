package router

import (
	"testing"

	"aanoc/internal/dram"
	"aanoc/internal/noc"
)

func cand(port int, pri bool) noc.Candidate {
	return noc.Candidate{
		Port: port,
		Pkt: &noc.Packet{
			ID: int64(port + 1), Priority: pri, Kind: noc.Read,
			Addr: dram.Address{Bank: port % 4}, Beats: 8, Flits: 4,
		},
	}
}

func TestRoundRobinRotates(t *testing.T) {
	rr := &RoundRobin{}
	cands := []noc.Candidate{cand(0, false), cand(2, false), cand(4, false)}
	var grants []int
	for i := 0; i < 6; i++ {
		w := rr.Select(cands, int64(i))
		if w < 0 {
			t.Fatal("round robin must grant")
		}
		grants = append(grants, cands[w].Port)
		rr.OnScheduled(cands[w].Pkt, int64(i))
	}
	want := []int{0, 2, 4, 0, 2, 4}
	for i := range want {
		if grants[i] != want[i] {
			t.Fatalf("grants = %v, want %v", grants, want)
		}
	}
}

func TestRoundRobinEmpty(t *testing.T) {
	rr := &RoundRobin{}
	if rr.Select(nil, 0) != -1 {
		t.Fatal("empty candidate set must return -1")
	}
}

func TestRoundRobinSkipsAbsentPorts(t *testing.T) {
	rr := &RoundRobin{}
	cands := []noc.Candidate{cand(3, false)}
	if w := rr.Select(cands, 0); w != 0 {
		t.Fatalf("Select = %d, want 0", w)
	}
	rr.OnScheduled(cands[0].Pkt, 0)
	if rr.Grants != 1 {
		t.Fatalf("Grants = %d, want 1", rr.Grants)
	}
}

func TestPriorityFirstPrefersPriority(t *testing.T) {
	pf := &PriorityFirst{Inner: &RoundRobin{}}
	cands := []noc.Candidate{cand(0, false), cand(1, true), cand(2, false)}
	if w := pf.Select(cands, 0); w != 1 {
		t.Fatalf("Select = %d, want the priority candidate (1)", w)
	}
	pf.OnScheduled(cands[1].Pkt, 0)
}

func TestPriorityFirstFallsBackToRR(t *testing.T) {
	pf := &PriorityFirst{Inner: &RoundRobin{}}
	cands := []noc.Candidate{cand(1, false), cand(3, false)}
	w := pf.Select(cands, 0)
	if w != 0 {
		t.Fatalf("Select = %d, want 0 (RR from port 0)", w)
	}
}

func TestPriorityFirstTieBreaksWithinPriorityClass(t *testing.T) {
	pf := &PriorityFirst{Inner: &RoundRobin{}}
	cands := []noc.Candidate{cand(2, true), cand(4, true), cand(0, false)}
	w := pf.Select(cands, 0)
	if !cands[w].Pkt.Priority {
		t.Fatal("winner must be a priority packet")
	}
	if cands[w].Port != 2 {
		t.Fatalf("RR within priority class should pick port 2, got %d", cands[w].Port)
	}
}
