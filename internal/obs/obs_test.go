package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// valid returns a minimal report that passes Validate.
func valid() *Report {
	return &Report{
		Design: "GSS", App: "bluray", Gen: 2, ClockMHz: 333,
		Cycles: 1000, Seed: 7,
		Generated: 10, Completed: 8, Stalled: 3,
		Utilization: 0.5,
		Network: Network{Request: MeshStats{
			BusyCycles: 40,
			Links: []LinkStat{{
				Router: "(0,0)", Port: "east",
				BusyCycles: 40, Grants: 5, Utilization: 0.04,
			}},
		}},
		NIs:    []NI{{Core: "cpu", QueueFlitsHWM: 12, StallCycles: 3}},
		Memory: Memory{Banks: []BankStat{{Bank: 0, Activates: 2, Reads: 4, RowHits: 2}}},
	}
}

func TestWriteJSONParseRoundTrip(t *testing.T) {
	r := valid()
	r.SampleEvery = 100
	r.Samples = []Sample{
		{Cycle: 100, Utilization: 0.4, Outstanding: 3, QueueFlits: 9, MemReady: 1},
		{Cycle: 200, Utilization: 0.6, Outstanding: 2, QueueFlits: 4, MemReady: 0},
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(buf.Bytes(), []byte("\n")) {
		t.Error("WriteJSON output not newline-terminated")
	}
	back, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if back.Design != r.Design || back.Stalled != r.Stalled ||
		len(back.Samples) != 2 || back.Samples[1].QueueFlits != 4 ||
		back.Memory.Banks[0].RowHits != 2 ||
		back.Network.Request.Links[0].Grants != 5 {
		t.Errorf("round trip lost content: %+v", back)
	}
}

func TestOmitEmptySampling(t *testing.T) {
	var buf bytes.Buffer
	if err := valid().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "sampleEvery") || strings.Contains(out, "samples") {
		t.Error("sampling fields serialized despite sampling off")
	}
}

// TestImbalanceBalancedSerialized pins the omitempty bugfix: a
// perfectly balanced (1.0) or idle (0) imbalance must still appear in
// the JSON whenever the channel breakdown does — omitempty on the old
// plain float64 erased exactly those values.
func TestImbalanceBalancedSerialized(t *testing.T) {
	for _, imb := range []float64{0, 1} {
		imb := imb
		r := valid()
		banks := []BankStat{{Bank: 0, Activates: 1, Reads: 1}}
		r.Memory.Channels = []ChannelStat{
			{Channel: 0, Port: "(0,0)", Banks: banks},
			{Channel: 1, Port: "(3,3)", Banks: banks},
		}
		r.Memory.Imbalance = &imb
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), `"imbalance"`) {
			t.Errorf("imbalance %v dropped from the multi-channel JSON", imb)
		}
		back, err := Parse(buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if back.Memory.Imbalance == nil || *back.Memory.Imbalance != imb {
			t.Errorf("imbalance %v did not round-trip: %v", imb, back.Memory.Imbalance)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Report)
		want string
	}{
		{"no cycles", func(r *Report) { r.Cycles = 0 }, "no cycles"},
		{"missing identity", func(r *Report) { r.Design = "" }, "identity"},
		{"utilization above one", func(r *Report) { r.Utilization = 1.5 }, "outside [0,1]"},
		{"completed exceeds generated", func(r *Report) { r.Completed = r.Generated + 1 }, "exceeds"},
		{"no links", func(r *Report) { r.Network.Request.Links = nil }, "links"},
		{"no banks", func(r *Report) { r.Memory.Banks = nil }, "per-bank"},
		{"samples without interval", func(r *Report) {
			r.Samples = []Sample{{Cycle: 10}}
		}, "without a sampling interval"},
		{"sample beyond run", func(r *Report) {
			r.SampleEvery = 10
			r.Samples = []Sample{{Cycle: r.Cycles + 1}}
		}, "outside run"},
		{"negative sampling interval", func(r *Report) {
			r.SampleEvery = -5
		}, "negative sampling interval"},
		{"channels without imbalance", func(r *Report) {
			r.Memory.Channels = []ChannelStat{{Channel: 0}}
		}, "missing imbalance"},
		{"imbalance without channels", func(r *Report) {
			one := 1.0
			r.Memory.Imbalance = &one
		}, "without a channel breakdown"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := valid()
			tc.mut(r)
			err := r.Validate()
			if err == nil {
				t.Fatal("Validate accepted a broken report")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	if err := valid().Validate(); err != nil {
		t.Errorf("valid report rejected: %v", err)
	}
}

// TestSchemaVersion pins the versioned-schema contract: EncodeJSON
// stamps the current schema, DecodeJSON accepts the legacy zero and the
// stamped current version, and rejects a report from a newer writer.
func TestSchemaVersion(t *testing.T) {
	var buf bytes.Buffer
	r := valid()
	if r.SchemaVersion != 0 {
		t.Fatalf("fixture already versioned: %d", r.SchemaVersion)
	}
	if err := EncodeJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	if r.SchemaVersion != Schema {
		t.Errorf("EncodeJSON stamped %d, want %d", r.SchemaVersion, Schema)
	}
	if !strings.Contains(buf.String(), `"schemaVersion": 2`) {
		t.Error("encoded report does not carry schemaVersion")
	}
	back, err := DecodeJSON(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if back.SchemaVersion != Schema {
		t.Errorf("decoded schema %d, want %d", back.SchemaVersion, Schema)
	}

	// Legacy sidecar: no version field at all.
	legacy := valid()
	var lbuf bytes.Buffer
	data, _ := json.MarshalIndent(legacy, "", "  ")
	lbuf.Write(data)
	if _, err := DecodeJSON(lbuf.Bytes()); err != nil {
		t.Errorf("legacy (unversioned) report rejected: %v", err)
	}

	// A report from the future must be refused, not misread.
	future := valid()
	future.SchemaVersion = Schema + 1
	fdata, _ := json.Marshal(future)
	if _, err := DecodeJSON(fdata); err == nil || !strings.Contains(err.Error(), "newer") {
		t.Errorf("future-schema report not rejected: %v", err)
	}
	if err := future.Validate(); err == nil {
		t.Error("Validate accepted a future schema version")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte("{not json")); err == nil {
		t.Error("Parse accepted malformed JSON")
	}
	// Structurally valid JSON that no finished run could have produced.
	if _, err := Parse([]byte(`{"design":"GSS","app":"x","cycles":0}`)); err == nil {
		t.Error("Parse accepted an empty-run report")
	}
}
