// Package obs defines the run-level observability report: the structured
// per-component counters one simulation run exports next to the paper's
// headline metrics. Where the headline metrics answer "how fast", the
// report answers "why": which links carried the traffic, which network
// interfaces backpressured their generators, which banks took the
// activates and conflicts, and — with sampling enabled — how utilization
// and queue occupancy evolved over the run.
//
// The report is pure data. The system simulator fills it in
// Runner.Finish from counters the substrates (noc, dram, memctrl)
// maintain anyway, so collecting it costs nothing during the run; the
// optional time series is the only part gated behind a configuration
// knob (Config.SampleEvery). Every field is deterministic for a
// (configuration, seed) pair, so reports survive the repository's
// serial-vs-parallel byte-identity checks unchanged.
package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"aanoc/internal/stats"
)

// Schema is the current report schema version, carried by every report
// in SchemaVersion and stamped by EncodeJSON. The history:
//
//	1 — the PR-2..PR-9 sidecar (no version field; decoders treat a
//	    missing/zero SchemaVersion as 1)
//	2 — explicit SchemaVersion, canonical EncodeJSON/DecodeJSON pair
//
// Bump it whenever the serialized shape of Report changes in a way a
// reader must know about (a field renamed, a meaning changed — not a
// purely additive omitempty field). The persistent result store
// (internal/store) folds Schema into its on-disk namespace, so a bump
// also retires every stored entry written under the old schema.
const Schema = 2

// Report is one run's observability export. Serialized as JSON by the
// CLI sidecars (aanoc-sim -json, aanoc-tables -json, ...) and the
// aanoc-serve results endpoint, always through EncodeJSON.
type Report struct {
	// SchemaVersion is the report schema the writer produced (Schema at
	// the time of writing); zero marks a legacy pre-versioned sidecar.
	SchemaVersion int `json:"schemaVersion,omitempty"`

	// Run identity: the resolved configuration the counters belong to.
	Design   string `json:"design"`
	App      string `json:"app"`
	Gen      int    `json:"gen"`
	ClockMHz int    `json:"clockMHz"`
	Cycles   int64  `json:"cycles"`
	Warmup   int64  `json:"warmup"`
	Seed     uint64 `json:"seed"`
	// Scheduler names the memory-scheduler override the run used; absent
	// for the default per-design controller, so default sidecars stay
	// byte-identical to the pre-zoo schema.
	Scheduler string `json:"scheduler,omitempty"`

	// Request accounting over the whole run.
	Generated int64 `json:"generated"`
	Completed int64 `json:"completed"`
	// Stalled counts generator cycles lost to injection backpressure: one
	// per core per cycle in which its NI refused new work (backlog at
	// InjectCap), counted at the backpressure decision in Runner.Step.
	Stalled int64 `json:"stalled"`

	// Utilization is the data-bus busy fraction (the paper's headline
	// memory utilization metric).
	Utilization float64 `json:"utilization"`

	Latency Latencies `json:"latency"`
	Network Network   `json:"network"`
	// NIs is the per-core network-interface breakdown, in core order.
	NIs    []NI   `json:"nis"`
	Memory Memory `json:"memory"`

	// Workload is the per-stream production breakdown of a calibration
	// run (system.Config.WorkloadStats), in core then stream order: what
	// each traffic generator actually produced, for the scenario
	// statistical-calibration layer to compare against the declared
	// distributions. Absent by default, so golden sidecars stay
	// byte-identical whether or not the binary knows about it.
	Workload []StreamWorkload `json:"workload,omitempty"`

	// SampleEvery echoes the sampling interval; Samples is the time
	// series, one entry per interval boundary (absent when sampling off).
	SampleEvery int64    `json:"sampleEvery,omitempty"`
	Samples     []Sample `json:"samples,omitempty"`

	// Checked marks a run executed under the internal/check invariant
	// layer (Config.Checked); Violations lists every invariant breach the
	// checkers recorded. A checked run of a healthy simulator carries
	// Checked=true and an empty Violations list. Both fields are absent
	// from unchecked runs, so default JSON sidecars are byte-identical
	// whether or not the binary knows about checked mode.
	Checked    bool        `json:"checked,omitempty"`
	Violations []Violation `json:"violations,omitempty"`
}

// Violation is one invariant breach recorded by the internal/check
// layer: which component broke which rule, at which cycle, with enough
// detail to reproduce. The type lives here (pure data) so the report can
// carry violations without obs depending on the checker implementation.
type Violation struct {
	// Cycle is the simulation cycle the breach was detected at (-1 for
	// end-of-run accounting checks that have no single cycle).
	Cycle int64 `json:"cycle"`
	// Component names the checked subsystem: "dram", "noc/request",
	// "noc/response", "gss", "runner", "obs".
	Component string `json:"component"`
	// Kind is the invariant that broke: a timing parameter ("tFAW",
	// "tRCD"), a conservation law ("credit-conservation",
	// "flit-conservation", "request-accounting"), or a cross-check name.
	Kind string `json:"kind"`
	// Detail is a human-readable description with the offending values.
	Detail string `json:"detail"`
}

// String renders the violation on one line.
func (v Violation) String() string {
	return fmt.Sprintf("cycle %d: %s: %s: %s", v.Cycle, v.Component, v.Kind, v.Detail)
}

// SummarizeViolations renders up to max violations, one per line, with a
// trailing count when more were recorded — the CLIs' stderr rendering.
func SummarizeViolations(vs []Violation, max int) string {
	if len(vs) == 0 {
		return ""
	}
	var b []byte
	n := len(vs)
	if max > 0 && n > max {
		n = max
	}
	for _, v := range vs[:n] {
		b = append(b, v.String()...)
		b = append(b, '\n')
	}
	if n < len(vs) {
		b = append(b, fmt.Sprintf("... and %d more violations\n", len(vs)-n)...)
	}
	return string(b)
}

// Latencies digests every latency accumulator of the run. All primary
// classes measure from network entry; Source measures from generation
// (including the NI queue).
type Latencies struct {
	All      stats.Summary `json:"all"`
	Demand   stats.Summary `json:"demand"`
	Priority stats.Summary `json:"priority"`
	Best     stats.Summary `json:"best"`
	Reads    stats.Summary `json:"reads"`
	Writes   stats.Summary `json:"writes"`
	Source   stats.Summary `json:"source"`
}

// Network carries the per-mesh link breakdowns.
type Network struct {
	Request  MeshStats `json:"request"`
	Response MeshStats `json:"response"`
}

// MeshStats summarises one physical mesh.
type MeshStats struct {
	// BusyCycles sums flit launches over every output of the mesh (the
	// power model's network activity input).
	BusyCycles int64 `json:"busyCycles"`
	// Links lists every connected router output, in router-index then
	// port order — deterministic across runs.
	Links []LinkStat `json:"links"`
}

// LinkStat is one router output channel: its sustained utilization and
// the allocator grants behind it.
type LinkStat struct {
	Router string `json:"router"` // "(x,y)" of the owning router
	Port   string `json:"port"`   // "local", "north", ...
	// BusyCycles counts cycles a flit was launched; Utilization divides
	// by the run length. Grants counts channel allocations (one per
	// packet), so BusyCycles/Grants approximates granted packet length.
	BusyCycles  int64   `json:"busyCycles"`
	Grants      int64   `json:"grants"`
	Utilization float64 `json:"utilization"`
}

// NI is one core's network-interface breakdown.
type NI struct {
	Core string `json:"core"`
	// QueueFlitsHWM is the injection-backlog high-water mark in flits
	// (the cap is Config.InjectCap); StallCycles counts the cycles this
	// core's generators were refused injection.
	QueueFlitsHWM int   `json:"queueFlitsHWM"`
	StallCycles   int64 `json:"stallCycles"`
	// SinkReadyHWM is the response-sink ready-list high-water mark.
	SinkReadyHWM int `json:"sinkReadyHWM"`
}

// StreamWorkload is one traffic stream's observed production. The
// counters are maintained by the generator itself (not derived from
// completions), so they reflect the produced distribution even when the
// memory system drops behind.
type StreamWorkload struct {
	Core   string `json:"core"`
	Stream string `json:"stream"`
	// Produced counts generated logical requests; Reads and Writes split
	// them by direction (Produced = Reads + Writes always).
	Produced int64 `json:"produced"`
	Reads    int64 `json:"reads"`
	Writes   int64 `json:"writes"`
	// BlockedCycles counts generation opportunities lost to injection
	// backpressure — the saturation signal the calibration layer uses to
	// tell load deficit from distribution drift.
	BlockedCycles int64 `json:"blockedCycles"`
	// Beats is the produced burst-size histogram over the stream's menu,
	// ascending by size; the bin counts sum to Produced.
	Beats []BeatBin `json:"beats"`
}

// BeatBin is one burst-size bin of a stream's production histogram.
type BeatBin struct {
	Beats int   `json:"beats"`
	Count int64 `json:"count"`
}

// BankStat mirrors dram.BankCounters with its bank index attached.
type BankStat struct {
	Bank       int   `json:"bank"`
	Activates  int64 `json:"activates"`
	Reads      int64 `json:"reads"`
	Writes     int64 `json:"writes"`
	RowHits    int64 `json:"rowHits"`
	Precharges int64 `json:"precharges"`
	AutoPre    int64 `json:"autoPrecharges"`
}

// StreamQuality classifies adjacent admitted request pairs by the
// paper's SDRAM conditions (lightweight controller only): how
// SDRAM-friendly the order delivered by the network was.
type StreamQuality struct {
	RowHits     int64 `json:"rowHits"`
	Interleaves int64 `json:"interleaves"`
	Conflicts   int64 `json:"conflicts"`
	Contentions int64 `json:"contentions"`
}

// Memory is the memory-subsystem breakdown. On a multi-channel run the
// flat fields aggregate across channels (Banks sums each bank index over
// the channel devices, SinkReadyHWM takes the worst channel, Stream sums
// the pair classifications) and Channels carries the per-channel detail;
// single-channel reports leave Channels and Imbalance absent, keeping
// their JSON byte-identical to the single-SDRAM schema.
type Memory struct {
	Banks []BankStat `json:"banks"`
	// SinkReadyHWM is the memory-side request sink's ready-list
	// high-water mark — how hard the network pushed the controller.
	SinkReadyHWM int `json:"sinkReadyHWM"`
	// Stream is present for the paper's lightweight controller, which
	// observes the arrival order the network scheduled.
	Stream *StreamQuality `json:"stream,omitempty"`
	// Channels is the per-channel breakdown of a multi-channel run, in
	// channel order (absent single-channel).
	Channels []ChannelStat `json:"channels,omitempty"`
	// Imbalance is the load-imbalance factor over the channels' data
	// cycles: busiest channel / mean channel, so 1.0 is perfectly
	// balanced and Channels-many means one channel took everything
	// (0 when no data moved at all). Emitted whenever Channels is —
	// as a pointer, so a perfectly balanced (or idle) multi-channel run
	// stays distinguishable from a single-channel one, which omitempty
	// on a plain float64 used to erase. Absent single-channel.
	Imbalance *float64 `json:"imbalance,omitempty"`
	// Scheduler is the per-scheduler decision breakdown of a run using a
	// non-default memory scheduler (absent otherwise).
	Scheduler *SchedulerStat `json:"scheduler,omitempty"`
}

// SchedulerStat is the decision breakdown of a zoo memory scheduler.
// Only the fields of the selected scheduler are populated; the rest
// stay at their omitted zero values.
type SchedulerStat struct {
	// Name is the scheduler's CLI spelling ("dpq", "regulated", "staged").
	Name string `json:"name"`
	// Grants counts requests granted into the command pipeline (for the
	// staged scheduler, the light and heavy grants combined).
	Grants int64 `json:"grants,omitempty"`
	// MaxBacklog is the DPQ arbiter's queued-request high-water mark.
	MaxBacklog int `json:"maxBacklog,omitempty"`
	// WCETChecked counts completions compared against the DPQ analytic
	// bound (checked runs only).
	WCETChecked int64 `json:"wcetChecked,omitempty"`
	// Throttled counts regulator grant opportunities lost to an exhausted
	// budget; WindowRolls the regulation windows opened.
	Throttled   int64 `json:"throttled,omitempty"`
	WindowRolls int64 `json:"windowRolls,omitempty"`
	// LightGrants/HeavyGrants/Reclassifications are the staged
	// scheduler's class decisions.
	LightGrants       int64 `json:"lightGrants,omitempty"`
	HeavyGrants       int64 `json:"heavyGrants,omitempty"`
	Reclassifications int64 `json:"reclassifications,omitempty"`
}

// ChannelStat is one SDRAM channel of a multi-channel run: its mesh
// ejection port, its bandwidth, and its own device-level breakdown.
type ChannelStat struct {
	Channel int `json:"channel"`
	// Port is the mesh coordinate of the channel's ejection port.
	Port string `json:"port"`
	// Utilization is this channel's data-bus busy fraction; DataCycles
	// the underlying busy-cycle count (per-channel bandwidth).
	Utilization float64 `json:"utilization"`
	DataCycles  int64   `json:"dataCycles"`
	// Splits counts the request packets routed to this channel;
	// Completions the completions it signalled back. The difference is
	// the channel's in-flight work at end of run (checked mode audits
	// the conservation).
	Splits      int64 `json:"splits"`
	Completions int64 `json:"completions"`
	// Banks is this channel device's per-bank command breakdown.
	Banks []BankStat `json:"banks"`
	// SinkReadyHWM is the channel's request-sink ready-list high-water
	// mark; Stream its arrival-order quality (lightweight controller).
	SinkReadyHWM int            `json:"sinkReadyHWM"`
	Stream       *StreamQuality `json:"stream,omitempty"`
}

// Sample is one point of the optional time series. All occupancy fields
// are instantaneous at the sample cycle; Utilization is the data-bus
// busy fraction within the window ending at the sample cycle.
type Sample struct {
	Cycle       int64   `json:"cycle"`
	Utilization float64 `json:"utilization"`
	// Outstanding counts logical requests in flight (generated, not yet
	// completed); QueueFlits sums the injection backlogs of every core;
	// MemReady is the memory sink's ready-list occupancy.
	Outstanding int `json:"outstanding"`
	QueueFlits  int `json:"queueFlits"`
	MemReady    int `json:"memReady"`
}

// EncodeJSON writes the canonical serialization of one report: two-space
// indented JSON, newline terminated, SchemaVersion stamped to Schema when
// the report predates stamping. Every producer in the repository — the
// five CLI sidecar writers, the golden corpus, the result store, the
// aanoc-serve results endpoint — goes through this function, so a report
// has exactly one byte representation and byte-level comparisons (golden
// tests, store round-trips, cache-parity CI) are meaningful.
func EncodeJSON(w io.Writer, r *Report) error {
	if r.SchemaVersion == 0 {
		r.SchemaVersion = Schema
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encode: %w", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// DecodeJSON is EncodeJSON's inverse: it decodes one report, rejects
// schema versions this binary does not know (a sidecar written by a
// newer build must not be silently misread), and applies the Validate
// invariants. A zero SchemaVersion is accepted as the legacy
// pre-versioned schema.
func DecodeJSON(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	if r.SchemaVersion > Schema {
		return nil, fmt.Errorf("obs: report schema v%d is newer than this binary's v%d", r.SchemaVersion, Schema)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// EncodeSidecar renders a report-bearing aggregate — a list of reports
// (aanoc-sim -all), a table/point sidecar — in the same canonical form
// EncodeJSON uses for a single report, so every JSON artifact the CLIs
// emit shares one encoding discipline.
func EncodeSidecar(v any) ([]byte, error) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("obs: encode sidecar: %w", err)
	}
	return append(data, '\n'), nil
}

// WriteJSON serialises the report, indented, to w.
//
// Deprecated: WriteJSON is EncodeJSON with the arguments swapped; it
// remains for pre-schema callers. New code should use EncodeJSON.
func (r *Report) WriteJSON(w io.Writer) error {
	return EncodeJSON(w, r)
}

// Parse decodes and sanity-checks one report: the CI smoke and tests use
// it to assert a sidecar is well-formed, so it rejects structurally valid
// JSON that could not have come from a finished run. It is DecodeJSON
// under the pre-schema name.
func Parse(data []byte) (*Report, error) {
	return DecodeJSON(data)
}

// Validate checks the invariants every finished run's report satisfies.
func (r *Report) Validate() error {
	switch {
	case r.SchemaVersion < 0 || r.SchemaVersion > Schema:
		return fmt.Errorf("obs: report schema version %d outside [0,%d]", r.SchemaVersion, Schema)
	case r.Cycles <= 0:
		return fmt.Errorf("obs: report has no cycles (%d)", r.Cycles)
	case r.Design == "" || r.App == "":
		return fmt.Errorf("obs: report missing design/app identity")
	case r.Utilization < 0 || r.Utilization > 1:
		return fmt.Errorf("obs: utilization %v outside [0,1]", r.Utilization)
	case r.Generated < r.Completed:
		return fmt.Errorf("obs: completed %d exceeds generated %d", r.Completed, r.Generated)
	case len(r.Network.Request.Links) == 0:
		return fmt.Errorf("obs: report has no request-mesh links")
	case len(r.Memory.Banks) == 0:
		return fmt.Errorf("obs: report has no per-bank breakdown")
	case r.SampleEvery < 0:
		return fmt.Errorf("obs: negative sampling interval %d", r.SampleEvery)
	case r.SampleEvery == 0 && len(r.Samples) > 0:
		return fmt.Errorf("obs: samples present without a sampling interval")
	case len(r.Memory.Channels) > 0 && r.Memory.Imbalance == nil:
		return fmt.Errorf("obs: multi-channel report missing imbalance")
	case len(r.Memory.Channels) == 0 && r.Memory.Imbalance != nil:
		return fmt.Errorf("obs: imbalance present without a channel breakdown")
	case !r.Checked && len(r.Violations) > 0:
		return fmt.Errorf("obs: violations recorded outside checked mode")
	}
	for _, s := range r.Samples {
		if s.Cycle <= 0 || s.Cycle > r.Cycles {
			return fmt.Errorf("obs: sample cycle %d outside run (0,%d]", s.Cycle, r.Cycles)
		}
	}
	for _, w := range r.Workload {
		if w.Produced != w.Reads+w.Writes {
			return fmt.Errorf("obs: workload %s/%s produced %d but reads %d + writes %d",
				w.Core, w.Stream, w.Produced, w.Reads, w.Writes)
		}
		var sum int64
		prev := 0
		for _, b := range w.Beats {
			if b.Beats <= prev {
				return fmt.Errorf("obs: workload %s/%s beat bins not ascending positive", w.Core, w.Stream)
			}
			if b.Count < 0 {
				return fmt.Errorf("obs: workload %s/%s negative bin count", w.Core, w.Stream)
			}
			prev = b.Beats
			sum += b.Count
		}
		if sum != w.Produced {
			return fmt.Errorf("obs: workload %s/%s bins sum %d of %d produced", w.Core, w.Stream, sum, w.Produced)
		}
	}
	for _, ch := range r.Memory.Channels {
		if ch.Utilization < 0 || ch.Utilization > 1 {
			return fmt.Errorf("obs: channel %d utilization %v outside [0,1]", ch.Channel, ch.Utilization)
		}
		if len(ch.Banks) == 0 {
			return fmt.Errorf("obs: channel %d has no per-bank breakdown", ch.Channel)
		}
		if ch.Completions > ch.Splits {
			return fmt.Errorf("obs: channel %d completed %d of %d routed splits", ch.Channel, ch.Completions, ch.Splits)
		}
	}
	return nil
}
