package sweep

import (
	"reflect"
	"testing"

	"aanoc/internal/appmodel"
	"aanoc/internal/dram"
	"aanoc/internal/memctrl"
	"aanoc/internal/system"
	"aanoc/internal/trace"
)

// cfgFromBytes decodes a configuration from arbitrary fuzz input: every
// byte string maps deterministically onto some plausible config, so the
// fuzzer explores the knob space rather than the rejection path. Cycles
// stays non-negative (a negative cycle budget is not a runnable config).
func cfgFromBytes(data []byte) system.Config {
	at := func(i int) byte {
		if i < len(data) {
			return data[i]
		}
		return 0
	}
	apps := appmodel.Apps()
	designs := system.Designs()
	cfg := system.Config{
		App:              apps[int(at(0))%len(apps)],
		Gen:              dram.Generation(1 + int(at(1))%3),
		ClockMHz:         int(at(2)) * 8,
		Design:           designs[int(at(3))%len(designs)],
		PCT:              int(at(4)) % 8,
		GSSRouters:       int(at(5))%11 - 1,
		PriorityDemand:   at(6)&1 != 0,
		Cycles:           int64(at(7)) * 1000,
		Warmup:           int64(int8(at(8))), // negative exercises the sentinel
		Seed:             uint64(at(9)),
		BufFlits:         int(at(10)) % 16,
		VirtualChannels:  int(at(11)) % 4,
		AdaptiveRouting:  at(12)&1 != 0,
		InjectCap:        int(at(13)) % 128,
		MemPipeline:      int(at(14)) % 16,
		SplitGranularity: int(at(15)) % 33,
		TagEveryRequest:  at(16)&1 != 0,
		SampleEvery:      int64(at(17)) * 250,
		Checked:          at(18)&1 != 0,
		CheckedPanic:     at(19)&1 != 0,
	}
	if p := at(20) % 4; p > 0 {
		policy := memctrl.PagePolicy(p - 1)
		cfg.PagePolicy = &policy
	}
	for i := 0; i < int(at(21))%3; i++ {
		cfg.Replay = append(cfg.Replay, trace.Record{
			Cycle: int64(i), Core: cfg.App.Cores[0].Name, Kind: "R",
			Class: "media", Bank: int(at(22)) % 4, Row: i, Col: 8 * i, Beats: 2,
		})
	}
	return cfg
}

// FuzzFingerprint checks the cache-key contract over the whole knob
// space: fingerprinting is deterministic, insensitive to resolution
// (a config and its resolved form share a key, so explicit defaults
// cannot double-simulate a grid point), resolution is idempotent, and
// distinct resolved configs get distinct keys.
func FuzzFingerprint(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add([]byte{0xff, 0x80, 0x00, 0x06, 0x07, 0x0a, 0x01, 0x00, 0xf6, 0x2a,
		0x0f, 0x03, 0x01, 0x7f, 0x0f, 0x20, 0x01, 0x04, 0x01, 0x01, 0x03, 0x02, 0x03})
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg := cfgFromBytes(data)

		fp, ok := Fingerprint(cfg)
		if !ok {
			t.Fatal("traceless config reported uncacheable")
		}
		if fp2, _ := Fingerprint(cfg); fp2 != fp {
			t.Fatalf("fingerprint not deterministic: %s vs %s", fp, fp2)
		}
		resolved := cfg.Resolved()
		if fpR, _ := Fingerprint(resolved); fpR != fp {
			t.Fatalf("resolution changed the fingerprint: %s vs %s", fp, fpR)
		}
		if again := resolved.Resolved(); !reflect.DeepEqual(resolved, again) {
			t.Fatalf("Resolved not idempotent:\n%+v\nvs\n%+v", resolved, again)
		}
		// A genuinely different resolved config must key differently.
		mut := cfg
		mut.Cycles = resolved.Cycles + 1
		if fpM, _ := Fingerprint(mut); fpM == fp {
			t.Fatal("distinct cycle budgets share a fingerprint")
		}
	})
}
