package sweep

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"aanoc/internal/appmodel"
	"aanoc/internal/dram"
	"aanoc/internal/system"
	"aanoc/internal/trace"
)

// grid builds n distinct configurations (distinct seeds, so no two
// share a fingerprint).
func grid(n int) []system.Config {
	cfgs := make([]system.Config, n)
	for i := range cfgs {
		cfgs[i] = system.Config{
			App: appmodel.BluRay(), Gen: dram.DDR2,
			Design: system.GSSSAGM, Cycles: 1000, Seed: uint64(i + 1),
		}
	}
	return cfgs
}

// markedRun is a fake RunFunc that tags each result with its config's
// seed, so tests can check results landed at the right index.
func markedRun(cfg system.Config) (system.Result, error) {
	return system.Result{Completed: int64(cfg.Seed)}, nil
}

func TestEmptyGrid(t *testing.T) {
	results, st := Run(nil, Options{RunFunc: markedRun})
	if len(results) != 0 {
		t.Fatalf("empty grid returned %d results", len(results))
	}
	if st.Runs != 0 || st.CacheHits != 0 {
		t.Fatalf("empty grid accounted work: %+v", st)
	}
	if _, err := Collect(nil, Options{RunFunc: markedRun}); err != nil {
		t.Fatalf("Collect(empty) = %v", err)
	}
}

func TestSingleWorkerRunsInSubmissionOrder(t *testing.T) {
	var order []uint64
	cfgs := grid(8)
	results, st := Run(cfgs, Options{
		Workers: 1,
		RunFunc: func(cfg system.Config) (system.Result, error) {
			order = append(order, cfg.Seed) // safe: serial mode
			return markedRun(cfg)
		},
	})
	if st.Workers != 1 || st.Runs != 8 {
		t.Fatalf("stats = %+v, want 1 worker / 8 runs", st)
	}
	for i, seed := range order {
		if seed != uint64(i+1) {
			t.Fatalf("serial execution order %v, want submission order", order)
		}
	}
	for i, r := range results {
		if r.Index != i || r.Res.Completed != int64(i+1) {
			t.Fatalf("result %d = %+v, want index/marker %d", i, r, i+1)
		}
	}
}

func TestWorkerCountExceedsGridSize(t *testing.T) {
	cfgs := grid(3)
	results, st := Run(cfgs, Options{Workers: 64, RunFunc: markedRun})
	if st.Workers != 3 {
		t.Fatalf("workers resolved to %d, want clamp to grid size 3", st.Workers)
	}
	for i, r := range results {
		if r.Err != nil || r.Res.Completed != int64(i+1) {
			t.Fatalf("result %d = %+v", i, r)
		}
	}
}

func TestResultsKeyedBySubmissionIndex(t *testing.T) {
	// Early submissions finish last: completion order is the reverse of
	// submission order, but results must still land at their indices.
	cfgs := grid(6)
	results, _ := Run(cfgs, Options{
		Workers: 6,
		RunFunc: func(cfg system.Config) (system.Result, error) {
			time.Sleep(time.Duration(7-cfg.Seed) * 5 * time.Millisecond)
			return markedRun(cfg)
		},
	})
	for i, r := range results {
		if r.Index != i || r.Res.Completed != int64(i+1) {
			t.Fatalf("result %d = %+v, want marker %d", i, r, i+1)
		}
	}
}

func TestErrorMidGridKeepsRemainingOrdered(t *testing.T) {
	cfgs := grid(5)
	boom := errors.New("boom")
	results, st := Run(cfgs, Options{
		Workers: 2,
		RunFunc: func(cfg system.Config) (system.Result, error) {
			if cfg.Seed == 3 {
				return system.Result{}, boom
			}
			return markedRun(cfg)
		},
	})
	if st.Runs != 5 {
		t.Fatalf("error aborted the grid: %+v", st)
	}
	for i, r := range results {
		if i == 2 {
			if !errors.Is(r.Err, boom) {
				t.Fatalf("point 2 error = %v, want boom", r.Err)
			}
			continue
		}
		if r.Err != nil || r.Res.Completed != int64(i+1) {
			t.Fatalf("point %d = %+v, want marker %d", i, r, i+1)
		}
	}
	err := FirstErr(results)
	if !errors.Is(err, boom) || !strings.Contains(err.Error(), "point 2") {
		t.Fatalf("FirstErr = %v, want wrapped boom at point 2", err)
	}
	if _, err := Collect(cfgs, Options{Workers: 2, RunFunc: func(cfg system.Config) (system.Result, error) {
		if cfg.Seed == 3 {
			return system.Result{}, boom
		}
		return markedRun(cfg)
	}}); !errors.Is(err, boom) {
		t.Fatalf("Collect error = %v, want boom", err)
	}
}

func TestPanicBecomesPointError(t *testing.T) {
	cfgs := grid(4)
	results, _ := Run(cfgs, Options{
		Workers: 2,
		RunFunc: func(cfg system.Config) (system.Result, error) {
			if cfg.Seed == 2 {
				panic("splitter exploded")
			}
			return markedRun(cfg)
		},
	})
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "splitter exploded") {
		t.Fatalf("panic not captured: %+v", results[1])
	}
	for _, i := range []int{0, 2, 3} {
		if results[i].Err != nil {
			t.Fatalf("panic leaked into point %d: %v", i, results[i].Err)
		}
	}
}

func TestCacheHitMissAccounting(t *testing.T) {
	// Three distinct fingerprints; the first repeated four times, the
	// second twice, interleaved — six hits over nine points.
	base := grid(3)
	cfgs := []system.Config{
		base[0], base[1], base[0], base[2], base[0],
		base[1], base[0], base[0], base[0],
	}
	wantHits := len(cfgs) - 3
	for _, workers := range []int{1, 4} {
		var executed int64
		results, st := Run(cfgs, Options{
			Workers: workers,
			RunFunc: func(cfg system.Config) (system.Result, error) {
				atomic.AddInt64(&executed, 1)
				return markedRun(cfg)
			},
		})
		if executed != 3 {
			t.Fatalf("workers=%d: %d simulations executed, want 3", workers, executed)
		}
		if st.Runs != 3 || st.CacheHits != wantHits {
			t.Fatalf("workers=%d: stats %+v, want 3 runs / %d hits", workers, st, wantHits)
		}
		var cached int
		for i, r := range results {
			if r.Res.Completed != int64(cfgs[i].Seed) {
				t.Fatalf("workers=%d: point %d served wrong result %+v", workers, i, r)
			}
			if r.Cached {
				cached++
			}
		}
		if cached != wantHits {
			t.Fatalf("workers=%d: %d results flagged cached, want %d", workers, cached, wantHits)
		}
	}
}

func TestDisableCacheRunsEveryPoint(t *testing.T) {
	base := grid(1)
	cfgs := []system.Config{base[0], base[0], base[0]}
	var executed int64
	_, st := Run(cfgs, Options{
		Workers:      2,
		DisableCache: true,
		RunFunc: func(cfg system.Config) (system.Result, error) {
			atomic.AddInt64(&executed, 1)
			return markedRun(cfg)
		},
	})
	if executed != 3 || st.Runs != 3 || st.CacheHits != 0 {
		t.Fatalf("DisableCache: executed=%d stats=%+v, want 3 runs", executed, st)
	}
}

func TestCachedErrorPropagatesToDuplicates(t *testing.T) {
	base := grid(1)
	cfgs := []system.Config{base[0], base[0]}
	boom := errors.New("boom")
	results, st := Run(cfgs, Options{
		Workers: 1,
		RunFunc: func(system.Config) (system.Result, error) { return system.Result{}, boom },
	})
	if st.Runs != 1 || st.CacheHits != 1 {
		t.Fatalf("stats = %+v, want the failure cached", st)
	}
	if !errors.Is(results[0].Err, boom) || !errors.Is(results[1].Err, boom) {
		t.Fatalf("cached error lost: %v / %v", results[0].Err, results[1].Err)
	}
}

func TestProgressSerialisedAndComplete(t *testing.T) {
	cfgs := grid(10)
	var calls [][2]int
	_, _ = Run(cfgs, Options{
		Workers: 4,
		RunFunc: markedRun,
		OnProgress: func(done, total int) {
			calls = append(calls, [2]int{done, total}) // safe: serialised under the executor lock
		},
	})
	if len(calls) != 10 {
		t.Fatalf("%d progress calls, want 10", len(calls))
	}
	for i, c := range calls {
		if c[0] != i+1 || c[1] != 10 {
			t.Fatalf("progress call %d = %v, want (%d, 10)", i, c, i+1)
		}
	}
}

func TestFingerprintCanonicalises(t *testing.T) {
	implicit := system.Config{App: appmodel.BluRay(), Gen: dram.DDR2, Design: system.GSSSAGM}
	explicit := implicit
	explicit.Cycles = 200_000
	explicit.PCT = 3
	explicit.Seed = 0xA11CE
	fa, ok := Fingerprint(implicit)
	if !ok {
		t.Fatal("plain config not cacheable")
	}
	fb, _ := Fingerprint(explicit)
	if fa != fb {
		t.Fatal("defaulted and explicit spellings of one run fingerprint differently")
	}
	for name, mutate := range map[string]func(*system.Config){
		"seed":   func(c *system.Config) { c.Seed = 7 },
		"design": func(c *system.Config) { c.Design = system.Conv },
		"cycles": func(c *system.Config) { c.Cycles = 100 },
		"app":    func(c *system.Config) { c.App = appmodel.SingleDTV() },
		"clock":  func(c *system.Config) { c.ClockMHz = 999 },
		// Warmup -1 is the explicit no-warmup sentinel: it resolves to
		// warmup 0, which differs from the default Cycles/10, so the runs
		// are observably different and must not share a cache entry.
		"warmup sentinel": func(c *system.Config) { c.Warmup = -1 },
		// SampleEvery never perturbs the simulation, but a sampled run's
		// Result carries the time series — distinct cache entries.
		"sample interval": func(c *system.Config) { c.SampleEvery = 1000 },
	} {
		other := implicit
		mutate(&other)
		if fo, _ := Fingerprint(other); fo == fa {
			t.Fatalf("changing %s did not change the fingerprint", name)
		}
	}

	// The sentinel resolves stably: two -1 spellings share a fingerprint,
	// as do a default-warmup config and its explicit Cycles/10 spelling.
	s1, s2 := implicit, implicit
	s1.Warmup, s2.Warmup = -1, -1
	f1, _ := Fingerprint(s1)
	f2, _ := Fingerprint(s2)
	if f1 != f2 {
		t.Fatal("warmup sentinel fingerprints unstably")
	}
	spelled := implicit
	spelled.Warmup = 20_000 // the default Cycles/10 written out
	if fs, _ := Fingerprint(spelled); fs != fa {
		t.Fatal("explicit default warmup fingerprints differently from implicit")
	}
}

func TestFingerprintTraceCaptureNotCacheable(t *testing.T) {
	cfg := grid(1)[0]
	cfg.Trace = &trace.Writer{}
	if _, ok := Fingerprint(cfg); ok {
		t.Fatal("trace-capture config must not be cacheable")
	}
}
