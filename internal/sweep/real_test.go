package sweep

// Real-simulation tests: these execute genuine system.Run grids under
// the executor and are what the CI race job (`go test -race
// ./internal/sweep/...`) leans on — concurrent full-system simulations
// are exactly where a shared-state bug in any substrate would surface.
// AANOC_TEST_CYCLES shortens each run so the race detector's ~10x
// slowdown still finishes in minutes.

import (
	"os"
	"reflect"
	"strconv"
	"testing"

	"aanoc/internal/appmodel"
	"aanoc/internal/dram"
	"aanoc/internal/system"
)

// testCycles returns the per-run simulated length: AANOC_TEST_CYCLES
// when set (the CI race job sets it low), def otherwise.
func testCycles(def int64) int64 {
	if s := os.Getenv("AANOC_TEST_CYCLES"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil && v > 0 {
			return v
		}
	}
	return def
}

// realGrid is a small but heterogeneous slice of the evaluation space:
// every app, both memory subsystems, GSS with and without SAGM.
func realGrid(t testing.TB) []system.Config {
	cycles := testCycles(2500)
	var cfgs []system.Config
	for _, app := range appmodel.Apps() {
		for _, d := range []system.Design{system.Conv, system.SDRAMAware, system.GSSSAGM} {
			cfgs = append(cfgs, system.Config{
				App: app, Gen: dram.DDR2, Design: d,
				PriorityDemand: true, Cycles: cycles, Seed: 42,
			})
		}
	}
	return cfgs
}

// TestParallelMatchesSerial is the package's key correctness property:
// fanning a grid across workers yields exactly the serial results —
// same values, same order.
func TestParallelMatchesSerial(t *testing.T) {
	cfgs := realGrid(t)
	serial, _ := Run(cfgs, Options{Workers: 1})
	for _, workers := range []int{2, 4} {
		parallel, _ := Run(cfgs, Options{Workers: workers})
		if len(parallel) != len(serial) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(parallel), len(serial))
		}
		for i := range serial {
			if serial[i].Err != nil || parallel[i].Err != nil {
				t.Fatalf("point %d errored: %v / %v", i, serial[i].Err, parallel[i].Err)
			}
			if !reflect.DeepEqual(serial[i].Res, parallel[i].Res) {
				t.Fatalf("workers=%d: point %d diverged from serial:\nserial:   %+v\nparallel: %+v",
					workers, i, serial[i].Res, parallel[i].Res)
			}
		}
	}
}

// TestConcurrentRunsIndependent drives many simultaneous copies of the
// same configuration; under -race this flushes out any mutable state
// shared between Runner instances.
func TestConcurrentRunsIndependent(t *testing.T) {
	cfg := system.Config{
		App: appmodel.DualDTV(), Gen: dram.DDR3, Design: system.GSSSAGMSTI,
		PriorityDemand: true, Cycles: testCycles(2000), Seed: 7,
	}
	cfgs := make([]system.Config, 8)
	for i := range cfgs {
		cfgs[i] = cfg
	}
	// DisableCache so every point really simulates, concurrently.
	results, st := Run(cfgs, Options{Workers: 8, DisableCache: true})
	if st.Runs != len(cfgs) {
		t.Fatalf("stats = %+v, want %d uncached runs", st, len(cfgs))
	}
	for i := 1; i < len(results); i++ {
		if results[i].Err != nil {
			t.Fatal(results[i].Err)
		}
		if !reflect.DeepEqual(results[0].Res, results[i].Res) {
			t.Fatalf("identical configs diverged at copy %d", i)
		}
	}
}
