// Package sweep executes grids of independent simulation runs across a
// bounded worker pool. Every evaluation driver in the repository — the
// table matrices, the Fig. 8 curves, the ablation grids — is a list of
// system.Config points whose runs share nothing, so they fan out across
// GOMAXPROCS goroutines; because each run is deterministic for its
// (configuration, seed), parallel execution produces exactly the serial
// results, and the package guarantees it structurally:
//
//   - results are keyed by submission index, never by completion order;
//   - a panic inside one run is captured and surfaced as that point's
//     error without tearing down the rest of the grid;
//   - repeated points — a shared baseline, a grid that revisits an
//     earlier configuration — are simulated once and served from a
//     config-fingerprint cache (see Fingerprint).
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"aanoc/internal/system"
)

// Options configure one Run call.
type Options struct {
	// Workers bounds the number of concurrently executing simulations.
	// Zero or negative selects runtime.GOMAXPROCS(0); 1 restores strictly
	// serial in-order execution (no goroutines are spawned).
	Workers int

	// Context, when non-nil, cancels the grid: points not yet started
	// settle with the context's error, and the default run function
	// becomes system.RunContext so in-flight simulations abandon within
	// one kernel epoch. A nil Context never cancels. (An explicit
	// RunFunc is responsible for its own cancellation.)
	Context context.Context

	// DisableCache turns off config-fingerprint deduplication, forcing
	// every grid point to simulate even when an identical point already
	// ran in this call.
	DisableCache bool

	// OnProgress, when non-nil, is invoked after each grid point settles
	// with the number of settled points and the grid size. Calls are
	// serialised (never concurrent) but, under parallel execution, not in
	// submission order.
	OnProgress func(done, total int)

	// RunFunc replaces the simulation entry point; nil selects
	// system.Run. Tests and dry-run tooling substitute fakes here.
	RunFunc func(system.Config) (system.Result, error)

	// Store, when non-nil, extends the fingerprint cache to disk:
	// before simulating a cacheable point the owning worker consults the
	// store, and after a successful simulation it persists the result
	// (read-through, write-through). The store sits strictly behind the
	// in-memory cache, so DisableCache — and any point that is not
	// cacheable at all — bypasses it entirely, and a result the store
	// cannot persist (a Put error) degrades to a plain uncached run
	// rather than failing the point. A store Get error (e.g. a corrupt
	// entry) is likewise treated as a miss: the point re-simulates.
	Store ResultStore
}

// ResultStore is the persistent result cache the executor reads
// through (implemented by internal/store). Get reports a verified hit;
// a miss is (zero, false, nil) and an error — corruption, I/O — is
// treated as a miss by the executor. Put persists one simulated
// result; its error is advisory (the executor keeps the in-memory
// result regardless).
type ResultStore interface {
	Get(fingerprint string) (system.Result, bool, error)
	Put(fingerprint string, res system.Result) error
}

// Result is the outcome of one grid point, stored at its submission
// index regardless of when the run completed.
type Result struct {
	Index int
	Res   system.Result
	Err   error
	// Cached marks a point served from the fingerprint cache rather than
	// its own simulation.
	Cached bool
	// Stored marks a point whose result came from the persistent store
	// (Options.Store) rather than a simulation in this process. A point
	// can be Cached and Stored at once: a duplicate of a store-served
	// fingerprint.
	Stored bool
	// Fingerprint is the point's canonical config hash — empty when the
	// point is not cacheable (see Fingerprint) or the cache is disabled.
	Fingerprint string
}

// Stats accounts for one Run call.
type Stats struct {
	// Runs counts simulations actually executed.
	Runs int
	// CacheHits counts grid points served from the fingerprint cache.
	CacheHits int
	// StoreHits counts grid points whose owning worker was served from
	// the persistent store instead of simulating (in-process duplicates
	// of such a point count as CacheHits, exactly as for simulated
	// points).
	StoreHits int
	// Workers is the resolved worker count (after the GOMAXPROCS default
	// and the clamp to the grid size).
	Workers int
}

// cacheEntry is one fingerprint's simulation: the first worker to claim
// the fingerprint runs it (or fetches it from the store) and closes
// done; duplicates wait.
type cacheEntry struct {
	done   chan struct{}
	res    system.Result
	err    error
	stored bool
}

// Run executes every configuration and returns the results in
// submission order, one per config, together with execution accounting.
// It never returns an error itself: per-point failures (including
// panics) land in the corresponding Result.Err so that one bad point
// cannot disturb the indices of the rest — use FirstErr to surface them.
func Run(cfgs []system.Config, o Options) ([]Result, Stats) {
	total := len(cfgs)
	results := make([]Result, total)
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}
	st := Stats{Workers: workers}
	if total == 0 {
		return results, st
	}
	ctx := o.Context
	run := o.RunFunc
	if run == nil {
		run = system.Run
		if ctx != nil {
			run = func(cfg system.Config) (system.Result, error) {
				return system.RunContext(ctx, cfg)
			}
		}
	}

	var (
		mu    sync.Mutex // guards cache, stats, done count, OnProgress
		cache = map[string]*cacheEntry{}
		done  int
		next  int64 = -1
	)
	// settle records one point's outcome; ran marks a point that
	// actually executed a simulation (cancelled-before-start points
	// settle with ran=false and count nowhere).
	settle := func(i int, r Result, ran bool) {
		r.Index = i
		results[i] = r
		mu.Lock()
		defer mu.Unlock()
		switch {
		case r.Cached:
			st.CacheHits++
		case r.Stored:
			st.StoreHits++
		case ran:
			st.Runs++
		}
		done++
		if o.OnProgress != nil {
			o.OnProgress(done, total)
		}
	}
	work := func() {
		for {
			i := int(atomic.AddInt64(&next, 1))
			if i >= total {
				return
			}
			cfg := cfgs[i]
			if ctx != nil && ctx.Err() != nil {
				// Cancelled: unstarted points settle immediately instead of
				// simulating; their Result.Err carries the context error.
				settle(i, Result{Err: ctx.Err()}, false)
				continue
			}
			fp, cacheable := Fingerprint(cfg)
			if o.DisableCache || !cacheable {
				// The persistent store sits behind the fingerprint cache, so
				// this path — disabled cache or uncacheable point — never
				// touches it either: a plain run, every time.
				res, err := safeRun(run, cfg)
				settle(i, Result{Res: res, Err: err}, true)
				continue
			}
			mu.Lock()
			e, hit := cache[fp]
			if !hit {
				e = &cacheEntry{done: make(chan struct{})}
				cache[fp] = e
			}
			mu.Unlock()
			if !hit {
				// Owner: read through the persistent store, simulate on a
				// miss (or any store error — corruption degrades to a rerun),
				// and write the fresh result back. A failed Put is advisory:
				// the point keeps its in-memory result and merely loses
				// persistence.
				if o.Store != nil {
					if res, ok, err := o.Store.Get(fp); ok && err == nil {
						e.res, e.stored = res, true
					}
				}
				if !e.stored {
					e.res, e.err = safeRun(run, cfg)
					if o.Store != nil && e.err == nil {
						_ = o.Store.Put(fp, e.res)
					}
				}
				close(e.done)
				settle(i, Result{Res: e.res, Err: e.err, Stored: e.stored, Fingerprint: fp}, true)
				continue
			}
			// The owning worker is executing the entry right now (it
			// never parks a claimed fingerprint), so this wait always
			// makes progress.
			<-e.done
			settle(i, Result{Res: e.res, Err: e.err, Cached: true, Stored: e.stored, Fingerprint: fp}, false)
		}
	}

	if workers == 1 {
		work()
		return results, st
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
	return results, st
}

// safeRun executes one simulation, converting a panic into that point's
// error so a defect in one configuration cannot take down the grid.
func safeRun(run func(system.Config) (system.Result, error), cfg system.Config) (res system.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sweep: run panicked: %v", r)
		}
	}()
	return run(cfg)
}

// FirstErr returns the error of the earliest-submitted failed point, or
// nil when every point succeeded.
func FirstErr(results []Result) error {
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("sweep: point %d: %w", r.Index, r.Err)
		}
	}
	return nil
}

// Collect runs the grid and unwraps the raw results in submission
// order, surfacing the first per-point error — the drop-in replacement
// for a serial loop over system.Run.
func Collect(cfgs []system.Config, o Options) ([]system.Result, error) {
	results, _ := Run(cfgs, o)
	if err := FirstErr(results); err != nil {
		return nil, err
	}
	out := make([]system.Result, len(results))
	for i, r := range results {
		out[i] = r.Res
	}
	return out, nil
}
