package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"aanoc/internal/dram"
	"aanoc/internal/system"
)

// Fingerprint returns a canonical hash of the fully resolved
// configuration, and whether the configuration is cacheable at all.
// Two configs that resolve to the same simulation — e.g. one spelling a
// default explicitly (Cycles: 200000) and one leaving it zero — share a
// fingerprint, so a grid that revisits a point simulates it once.
//
// A config carrying a trace-capture Writer is not cacheable: capture is
// a side effect that must happen per run (and the writer is identity,
// not value). Everything else in system.Config is pure input.
func Fingerprint(cfg system.Config) (string, bool) {
	if cfg.Trace != nil {
		return "", false
	}
	c := cfg.Resolved()
	h := sha256.New()
	// The application model: maps iterate in random order, so Clocks is
	// walked by generation; cores and streams are slices and keep their
	// declaration order.
	fmt.Fprintf(h, "app=%s/%dx%d/mem%+v|", c.App.Name, c.App.Width, c.App.Height, c.App.MemAt)
	// The memory-port list and the channel axes: Ports() folds the
	// single-port default, so an explicit one-element MemPorts and an
	// empty one hash alike, exactly as they run alike.
	for _, p := range c.App.Ports() {
		fmt.Fprintf(h, "port=%+v|", p)
	}
	fmt.Fprintf(h, "chan=%d scheme=%d|", c.Channels, c.Scheme)
	for gen := dram.DDR1; gen <= dram.LPDDR3; gen++ {
		fmt.Fprintf(h, "clk%d=%d|", gen, c.App.Clocks[gen])
	}
	for _, core := range c.App.Cores {
		fmt.Fprintf(h, "core=%s@%+v|", core.Name, core.Pos)
		for _, s := range core.Streams {
			fmt.Fprintf(h, "stream=%+v|", s)
		}
	}
	// SampleEvery and Checked are part of the key although they never
	// perturb the simulation: a sampled run's Result carries the time
	// series and a checked run's report carries the Checked/Violations
	// fields, so neither may be served from (or into) a differently
	// configured point's cache entry.
	fmt.Fprintf(h,
		"gen=%d clk=%d design=%d sched=%d pct=%d gssr=%d pd=%t cyc=%d warm=%d seed=%d buf=%d vc=%d adapt=%t cap=%d pipe=%d split=%d tag=%t sample=%d chk=%t subs=%d|",
		c.Gen, c.ClockMHz, c.Design, c.Scheduler, c.PCT, c.GSSRouters, c.PriorityDemand,
		c.Cycles, c.Warmup, c.Seed, c.BufFlits, c.VirtualChannels,
		c.AdaptiveRouting, c.InjectCap, c.MemPipeline, c.SplitGranularity,
		c.TagEveryRequest, c.SampleEvery, c.Checked, c.Subarrays)
	// The spec hash ties a spec-driven run to its workload content; the
	// workload-stats flag shapes the report (like SampleEvery/Checked)
	// without perturbing the simulation, so it must split cache entries
	// the same way.
	fmt.Fprintf(h, "spec=%s wl=%t|", c.SpecHash, c.WorkloadStats)
	if c.PagePolicy != nil {
		fmt.Fprintf(h, "page=%d|", *c.PagePolicy)
	}
	fmt.Fprintf(h, "replay=%d|", len(c.Replay))
	for _, rec := range c.Replay {
		fmt.Fprintf(h, "rec=%+v|", rec)
	}
	return hex.EncodeToString(h.Sum(nil)), true
}
