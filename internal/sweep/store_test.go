package sweep

import (
	"errors"
	"sync"
	"testing"

	"aanoc/internal/system"
	"aanoc/internal/trace"
)

// fakeStore is an in-memory ResultStore that records every access, so
// the tests can assert not just what the executor got but which paths
// touched the store at all.
type fakeStore struct {
	mu      sync.Mutex
	entries map[string]system.Result
	gets    int
	puts    int
	getErr  error // returned by every Get when set
	putErr  error // returned by every Put when set
}

func newFakeStore() *fakeStore {
	return &fakeStore{entries: map[string]system.Result{}}
}

func (f *fakeStore) Get(fp string) (system.Result, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.gets++
	if f.getErr != nil {
		return system.Result{}, false, f.getErr
	}
	res, ok := f.entries[fp]
	return res, ok, nil
}

func (f *fakeStore) Put(fp string, res system.Result) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.puts++
	if f.putErr != nil {
		return f.putErr
	}
	f.entries[fp] = res
	return nil
}

func (f *fakeStore) touched() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.gets + f.puts
}

// TestStoreWriteThroughThenReadThrough is the core persistence
// contract: the first Run simulates and populates the store; a second
// Run over the same grid performs zero simulations, serving every
// owner from the store and every duplicate from the in-memory cache.
func TestStoreWriteThroughThenReadThrough(t *testing.T) {
	store := newFakeStore()
	cfgs := grid(4)
	results, st := Run(cfgs, Options{Workers: 2, Store: store, RunFunc: markedRun})
	if err := FirstErr(results); err != nil {
		t.Fatal(err)
	}
	if st.Runs != 4 || st.StoreHits != 0 {
		t.Fatalf("first run stats %+v, want 4 simulations", st)
	}
	if len(store.entries) != 4 {
		t.Fatalf("store holds %d entries after first run, want 4", len(store.entries))
	}
	for _, r := range results {
		if r.Stored || r.Fingerprint == "" {
			t.Fatalf("first-run result %d: stored=%v fp=%q", r.Index, r.Stored, r.Fingerprint)
		}
	}

	// Second run: a RunFunc that fails the test proves no simulation
	// happens at all.
	results, st = Run(cfgs, Options{Workers: 2, Store: store, RunFunc: func(system.Config) (system.Result, error) {
		t.Error("simulated despite a populated store")
		return system.Result{}, nil
	}})
	if err := FirstErr(results); err != nil {
		t.Fatal(err)
	}
	if st.Runs != 0 || st.StoreHits != 4 {
		t.Fatalf("second run stats %+v, want 4 store hits and zero runs", st)
	}
	for i, r := range results {
		if !r.Stored || r.Res.Completed != int64(i+1) {
			t.Fatalf("second-run result %d = %+v, want stored marker %d", i, r, i+1)
		}
	}
}

// TestStoreHitDuplicatesCountAsCacheHits: duplicates of a store-served
// point come from the in-memory entry and carry both flags.
func TestStoreHitDuplicatesCountAsCacheHits(t *testing.T) {
	store := newFakeStore()
	one := grid(1)
	if results, _ := Run(one, Options{Store: store, RunFunc: markedRun}); FirstErr(results) != nil {
		t.Fatal("seed run failed")
	}
	dup := []system.Config{one[0], one[0], one[0]}
	results, st := Run(dup, Options{Workers: 1, Store: store, RunFunc: func(system.Config) (system.Result, error) {
		t.Error("simulated despite store + cache")
		return system.Result{}, nil
	}})
	if st.StoreHits != 1 || st.CacheHits != 2 || st.Runs != 0 {
		t.Fatalf("stats %+v, want 1 store hit + 2 cache hits", st)
	}
	for _, r := range results {
		if !r.Stored {
			t.Errorf("result %d not marked stored", r.Index)
		}
	}
	if results[0].Cached || !results[1].Cached {
		t.Errorf("cached flags wrong: %+v", results[:2])
	}
}

// TestDisableCacheBypassesStore pins the regression the issue calls
// out: DisableCache must turn off the persistent store along with the
// in-memory cache — a "simulate everything" request may not be
// answered from disk.
func TestDisableCacheBypassesStore(t *testing.T) {
	store := newFakeStore()
	cfgs := grid(3)
	results, st := Run(cfgs, Options{DisableCache: true, Store: store, RunFunc: markedRun})
	if err := FirstErr(results); err != nil {
		t.Fatal(err)
	}
	if st.Runs != 3 || st.StoreHits != 0 {
		t.Fatalf("stats %+v, want 3 plain runs", st)
	}
	if n := store.touched(); n != 0 {
		t.Fatalf("store touched %d times under DisableCache, want 0", n)
	}
	for _, r := range results {
		if r.Stored || r.Cached || r.Fingerprint != "" {
			t.Fatalf("DisableCache result carries cache state: %+v", r)
		}
	}
}

// TestUncacheableBypassesStore: a point that has no fingerprint (trace
// capture is per-run identity, not value) must not consult or populate
// the store.
func TestUncacheableBypassesStore(t *testing.T) {
	store := newFakeStore()
	cfgs := grid(1)
	cfgs[0].Trace = &trace.Writer{}
	results, st := Run(cfgs, Options{Store: store, RunFunc: markedRun})
	if err := FirstErr(results); err != nil {
		t.Fatal(err)
	}
	if st.Runs != 1 || store.touched() != 0 {
		t.Fatalf("uncacheable point touched the store: stats %+v, accesses %d", st, store.touched())
	}
	if results[0].Fingerprint != "" {
		t.Errorf("uncacheable point carries fingerprint %q", results[0].Fingerprint)
	}
}

// TestStorePutErrorDegrades pins the other regression from the issue:
// a result the store cannot persist (NaN metric, full disk) must
// degrade to a plain run — correct in-memory result, point not failed.
func TestStorePutErrorDegrades(t *testing.T) {
	store := newFakeStore()
	store.putErr = errors.New("not serializable")
	results, st := Run(grid(2), Options{Store: store, RunFunc: markedRun})
	if err := FirstErr(results); err != nil {
		t.Fatalf("Put failure surfaced as a point error: %v", err)
	}
	if st.Runs != 2 {
		t.Fatalf("stats %+v, want 2 runs", st)
	}
	for i, r := range results {
		if r.Stored || r.Res.Completed != int64(i+1) {
			t.Fatalf("degraded result %d = %+v", i, r)
		}
	}
	if len(store.entries) != 0 {
		t.Error("failed Puts left entries behind")
	}
}

// TestStoreGetErrorIsAMiss: a corrupt entry (Get error) re-simulates
// the point and writes the fresh result back.
func TestStoreGetErrorIsAMiss(t *testing.T) {
	store := newFakeStore()
	store.getErr = errors.New("store: corrupt entry")
	results, st := Run(grid(1), Options{Store: store, RunFunc: markedRun})
	if err := FirstErr(results); err != nil {
		t.Fatal(err)
	}
	if st.Runs != 1 || st.StoreHits != 0 || results[0].Stored {
		t.Fatalf("corrupt Get not treated as a miss: %+v / %+v", st, results[0])
	}
	if store.puts != 1 {
		t.Errorf("re-simulated result not written back: %d puts", store.puts)
	}
}

// TestFailedRunNotPersisted: only successful simulations reach Put.
func TestFailedRunNotPersisted(t *testing.T) {
	store := newFakeStore()
	boom := errors.New("boom")
	results, _ := Run(grid(1), Options{Store: store, RunFunc: func(system.Config) (system.Result, error) {
		return system.Result{}, boom
	}})
	if !errors.Is(results[0].Err, boom) {
		t.Fatalf("run error lost: %v", results[0].Err)
	}
	if store.puts != 0 {
		t.Errorf("failed run persisted: %d puts", store.puts)
	}
}
