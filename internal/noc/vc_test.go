package noc

import (
	"testing"

	"aanoc/internal/dram"
)

func mkVCPacket(id int64, src, dst Coord, flits int, pri bool) *Packet {
	return &Packet{
		ID: id, ParentID: id, Src: src, Dst: dst,
		Kind: Write, Class: ClassMedia, Priority: pri,
		Flits: flits, Beats: flits * 2, Splits: 1,
		Addr: dram.Address{Bank: int(id) % 4, Row: int(id)},
	}
}

func TestNewMeshVCValidation(t *testing.T) {
	if _, err := NewMeshVC(3, 3, 8, 0); err == nil {
		t.Error("0 VCs accepted")
	}
	if _, err := NewMeshVC(3, 3, 8, 5); err == nil {
		t.Error("5 VCs accepted")
	}
	m, err := NewMeshVC(3, 3, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.VCs() != 2 {
		t.Fatalf("VCs = %d", m.VCs())
	}
}

func TestVCOfAssignsPriorityChannel(t *testing.T) {
	pri := mkVCPacket(1, Coord{}, Coord{}, 1, true)
	be := mkVCPacket(2, Coord{}, Coord{}, 1, false)
	if vcOf(pri, 2) != 1 || vcOf(be, 2) != 0 {
		t.Error("2-VC assignment wrong")
	}
	if vcOf(pri, 1) != 0 || vcOf(be, 1) != 0 {
		t.Error("single-VC assignment must always be 0")
	}
}

// TestPriorityOvertakesLongTransfer is the point of the VC organisation:
// a priority packet injected after a long best-effort packet has started
// its wormhole transfer still arrives first, because its flits take the
// links on the priority VC.
func TestPriorityOvertakesLongTransfer(t *testing.T) {
	deliverOrder := func(vcs int) []int64 {
		m, err := NewMeshVC(3, 1, 4, vcs)
		if err != nil {
			t.Fatal(err)
		}
		src, dst := Coord{2, 0}, Coord{0, 0}
		inj := m.AttachInjector(src)
		sink := m.AttachSink(dst, 8, 8)
		long := mkVCPacket(1, src, dst, 40, false)
		pri := mkVCPacket(2, src, dst, 1, true)
		inj.Enqueue(long)
		var order []int64
		for now := int64(0); now < 300; now++ {
			if now == 10 {
				inj.Enqueue(pri) // arrives mid-transfer of the long packet
			}
			m.Cycle(now)
			inj.Step(now)
			sink.Step(now)
			for {
				p := sink.Pop(now)
				if p == nil {
					break
				}
				order = append(order, p.ID)
			}
		}
		return order
	}
	worm := deliverOrder(1)
	if len(worm) != 2 || worm[0] != 1 {
		t.Fatalf("wormhole: long packet should block the late priority packet, order %v", worm)
	}
	vc := deliverOrder(2)
	if len(vc) != 2 || vc[0] != 2 {
		t.Fatalf("2 VCs: priority packet should overtake, order %v", vc)
	}
}

// TestVCFlitsDoNotMix: flit interleaving on the link must never corrupt
// per-VC packet reassembly (the acceptFlit wormhole assertion would
// panic).
func TestVCFlitsDoNotMix(t *testing.T) {
	m, err := NewMeshVC(4, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	dst := Coord{0, 0}
	sink := m.AttachSink(dst, 8, 8)
	var injs []*Injector
	id := int64(0)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			c := Coord{x, y}
			if c == dst {
				continue
			}
			inj := m.AttachInjector(c)
			for k := 0; k < 4; k++ {
				id++
				inj.Enqueue(mkVCPacket(id, c, dst, 1+int(id)%9, id%3 == 0))
			}
			injs = append(injs, inj)
		}
	}
	got := map[int64]bool{}
	for now := int64(0); now < 8000; now++ {
		m.Cycle(now)
		for _, inj := range injs {
			inj.Step(now)
		}
		sink.Step(now)
		for {
			p := sink.Pop(now)
			if p == nil {
				break
			}
			if got[p.ID] {
				t.Fatalf("packet %d delivered twice", p.ID)
			}
			got[p.ID] = true
		}
	}
	if int64(len(got)) != id {
		t.Fatalf("delivered %d of %d packets", len(got), id)
	}
	if !m.Quiescent() {
		t.Error("mesh not quiescent")
	}
}

// TestVCBestEffortStillProgresses: the priority VC must not starve the
// best-effort VC when priority traffic is continuous (link cycles go to
// priority first, but best-effort flits use every gap).
func TestVCBestEffortStillProgresses(t *testing.T) {
	m, _ := NewMeshVC(2, 1, 4, 2)
	src, dst := Coord{1, 0}, Coord{0, 0}
	inj := m.AttachInjector(src)
	sink := m.AttachSink(dst, 8, 8)
	id := int64(0)
	be := 0
	for now := int64(0); now < 2000; now++ {
		// Saturate the priority VC.
		if inj.QueueFlits() < 8 {
			id++
			inj.Enqueue(mkVCPacket(id, src, dst, 2, true))
			id++
			inj.Enqueue(mkVCPacket(id, src, dst, 2, false))
		}
		m.Cycle(now)
		inj.Step(now)
		sink.Step(now)
		for {
			p := sink.Pop(now)
			if p == nil {
				break
			}
			if !p.Priority {
				be++
			}
		}
	}
	if be == 0 {
		t.Fatal("best-effort traffic starved by the priority VC")
	}
}
