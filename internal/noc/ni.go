package noc

// Injector is the sending half of a network interface: it queues packets
// per virtual channel and streams their flits into the local input port
// of its router, subject to credits. With multiple VCs a priority packet
// is injected on the priority VC and its flits take the local link ahead
// of any best-effort packet mid-transfer.
type Injector struct {
	at      Coord
	link    *Link
	credits []int

	queues [][]*Packet
	sent   []int // flits of each VC's queue head already launched

	queuedFlits int   // unsent flits across VCs, maintained incrementally
	flitsHWM    int   // high-water mark of queuedFlits over the run
	launched    int64 // cumulative flits launched into the mesh

	// OnFirstFlit, when set, is invoked as a packet's head flit enters
	// the network — the reference point for network-entry latency.
	OnFirstFlit func(p *Packet, now int64)
}

func newInjector(at Coord, vcs int) *Injector {
	return &Injector{
		at:      at,
		credits: make([]int, vcs),
		queues:  make([][]*Packet, vcs),
		sent:    make([]int, vcs),
	}
}

func (inj *Injector) addCredits(vc, n int) { inj.credits[vc] += n }

func (inj *Injector) creditBalance(vc int) int { return inj.credits[vc] }

// LaunchedFlits returns the cumulative number of flits this injector has
// launched into the mesh — one side of the audit's flit-conservation
// ledger.
func (inj *Injector) LaunchedFlits() int64 { return inj.launched }

// At returns the mesh coordinate the injector is attached to.
func (inj *Injector) At() Coord { return inj.at }

// Enqueue appends a packet to the injection queue of its virtual channel.
func (inj *Injector) Enqueue(p *Packet) {
	vc := vcOf(p, len(inj.queues))
	inj.queues[vc] = append(inj.queues[vc], p)
	inj.queuedFlits += p.Flits
	if inj.queuedFlits > inj.flitsHWM {
		inj.flitsHWM = inj.queuedFlits
	}
}

// QueueLen returns the number of packets waiting across VCs (including
// any being streamed).
func (inj *Injector) QueueLen() int {
	n := 0
	for _, q := range inj.queues {
		n += len(q)
	}
	return n
}

// QueueFlits returns the number of unsent flits waiting in the injection
// queues; network interfaces use it to backpressure their traffic source.
func (inj *Injector) QueueFlits() int { return inj.queuedFlits }

// QueueFlitsHWM returns the high-water mark of the injection backlog in
// flits — how close the NI queue came to its InjectCap over the run.
func (inj *Injector) QueueFlitsHWM() int { return inj.flitsHWM }

// Step launches at most one flit, serving the priority VC first. Call
// at most once per cycle, after the mesh's Deliver/Arbitrate phases.
func (inj *Injector) Step(now int64) {
	for vc := len(inj.queues) - 1; vc >= 0; vc-- {
		q := inj.queues[vc]
		if len(q) == 0 || inj.credits[vc] <= 0 {
			continue
		}
		p := q[0]
		head := inj.sent[vc] == 0
		inj.link.launch(p, head, vc)
		if head && inj.OnFirstFlit != nil {
			inj.OnFirstFlit(p, now)
		}
		inj.credits[vc]--
		inj.sent[vc]++
		inj.queuedFlits--
		inj.launched++
		if inj.sent[vc] == p.Flits {
			// Copy-shift pop keeps the queue's backing array (re-slicing
			// q[1:] would creep and force a reallocation per packet).
			copy(q, q[1:])
			q[len(q)-1] = nil
			inj.queues[vc] = q[:len(q)-1]
			inj.sent[vc] = 0
		}
		return
	}
}

// Sink is the receiving half of a network interface. Arriving flits land
// in small credit-managed per-VC buffers and are drained by Step into a
// reassembly area; completed packets queue in a bounded ready list the
// consumer (memory subsystem or core) pops from, priority VC first. When
// the consumer stops popping, the ready list fills, draining stops, the
// flit buffers fill, and credit backpressure propagates into the mesh —
// so a packet longer than the flit buffer still flows through as long as
// the consumer keeps up.
type Sink struct {
	port     *inputPort
	maxReady int
	partial  []int // flits of each VC's head packet already drained
	ready    []*Packet
	readyHWM int   // high-water mark of the ready list over the run
	drained  int64 // cumulative flits drained out of the credit buffers

	// OnArrival, when set, is invoked as each flit lands in the sink's
	// credit buffers — every flit, not just packet heads, because a
	// partially drained packet stalls on exactly one missing flit. The
	// simulation kernel uses it to wake the sink's consumer; a sink with
	// buffered flits or ready packets keeps itself awake via its
	// component's NextWake instead.
	OnArrival func(now int64)
}

func newSink(vcs, queueFlits, maxReady int) *Sink {
	return &Sink{
		port:     newInputPort(vcs, queueFlits),
		maxReady: maxReady,
		partial:  make([]int, vcs),
	}
}

// Step drains arrived flits into the reassembly area, priority VC first.
// Call at most once per cycle after the mesh's Deliver/Arbitrate phases.
func (s *Sink) Step(now int64) {
	for vc := len(s.port.bufs) - 1; vc >= 0; vc-- {
		s.drainVC(vc)
	}
}

func (s *Sink) drainVC(vc int) {
	buf := &s.port.bufs[vc]
	for len(s.ready) < s.maxReady {
		pp := buf.head()
		if pp == nil {
			return
		}
		drained := false
		for pp.Arrived > pp.Sent {
			pp.Sent++
			s.partial[vc]++
			s.drained++
			buf.occupied--
			if buf.feed != nil {
				buf.feed.returnCredit(vc)
			}
			drained = true
			if pp.Sent == pp.Pkt.Flits {
				s.ready = append(s.ready, pp.Pkt)
				buf.pop()
				buf.releaseProgress(pp)
				if len(s.ready) > s.readyHWM {
					s.readyHWM = len(s.ready)
				}
				s.partial[vc] = 0
				break
			}
		}
		if !drained || s.partial[vc] > 0 {
			return
		}
	}
}

// Peek returns the oldest fully received packet, or nil.
func (s *Sink) Peek() *Packet {
	if len(s.ready) == 0 {
		return nil
	}
	return s.ready[0]
}

// Pop removes and returns the oldest fully received packet, or nil.
func (s *Sink) Pop(now int64) *Packet {
	if len(s.ready) == 0 {
		return nil
	}
	p := s.ready[0]
	copy(s.ready, s.ready[1:])
	s.ready[len(s.ready)-1] = nil
	s.ready = s.ready[:len(s.ready)-1]
	return p
}

// Occupied reports the flits currently held in the sink's credit buffers.
func (s *Sink) Occupied() int { return s.port.occupied() }

// Ready reports the number of fully received packets awaiting the
// consumer.
func (s *Sink) Ready() int { return len(s.ready) }

// ReadyHWM returns the high-water mark of the ready list — how close the
// consumer came to letting backpressure propagate into the mesh.
func (s *Sink) ReadyHWM() int { return s.readyHWM }

// DrainedFlits returns the cumulative number of flits drained from the
// sink's credit buffers — the delivery side of the audit's
// flit-conservation ledger.
func (s *Sink) DrainedFlits() int64 { return s.drained }
