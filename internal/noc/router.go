package noc

// Candidate is a packet competing for an output channel: the head packet
// of one input-buffer VC, identified by its input port.
type Candidate struct {
	Pkt  *Packet
	Port int
}

// Allocator is a flow-control policy for one router output channel. The
// router consults it whenever the channel becomes free and more than one
// (or one) packet desires it; winner-take-all allocation then holds the
// channel for the winner until its tail flit has passed (within its
// virtual channel — other VCs interleave at flit granularity).
//
// Implementations: round-robin and priority-first in internal/router, the
// paper's GSS token algorithm in internal/core.
//
// The cands slice passed to Select is scratch storage owned by the router
// and overwritten on the next allocation — implementations must not
// retain it across calls.
type Allocator interface {
	// OnPacketArrival is invoked once when a packet arrives in an input
	// buffer of this router and will request this output.
	OnPacketArrival(p *Packet, now int64)
	// Select picks the winner among the candidate buffer heads, returning
	// an index into cands, or -1 to leave the channel idle this cycle.
	Select(cands []Candidate, now int64) int
	// OnScheduled is invoked when the selected packet is granted the
	// channel.
	OnScheduled(p *Packet, now int64)
}

// activeXfer is a wormhole transfer in progress on one VC of an output
// port; pp == nil marks the slot free.
type activeXfer struct {
	buf *InputBuffer
	pp  *PacketProgress
}

// OutputPort is one output channel of a router: its downstream link,
// per-VC credits and transfers, and the flow-control policy. With a
// single VC this is classic wormhole winner-take-all; with more, the
// priority VC's flits take the link first, so a priority packet overtakes
// a long best-effort transfer at flit granularity.
type OutputPort struct {
	link    *Link
	credits []int
	alloc   Allocator
	active  []activeXfer

	// BusyCycles counts cycles a flit was actually launched; used by the
	// activity-based power model.
	BusyCycles int64
	// Grants counts channel allocations the port's flow-control policy
	// made — one per packet granted the output, regardless of its length.
	// BusyCycles/Grants approximates the mean granted packet length.
	Grants int64
}

func (o *OutputPort) addCredits(vc, n int) { o.credits[vc] += n }

func (o *OutputPort) creditBalance(vc int) int { return o.credits[vc] }

// Connected reports whether the port has a downstream link (edge ports of
// the mesh are left unwired unless a sink is attached).
func (o *OutputPort) Connected() bool { return o.link != nil }

// vcCount returns the number of virtual channels on the port.
func (o *OutputPort) vcCount() int { return len(o.active) }

// Router is a 5-port wormhole mesh router. Routing is XY; each output
// port carries its own allocator so that, as in the paper, only channels
// on paths toward the memory subsystem need the (more expensive) GSS flow
// controller.
//
// The router's state is laid out struct-of-arrays style: ports, buffers,
// and transfer slots are value arrays inside the Router, and routers
// themselves live in one contiguous arena per mesh, so the per-cycle walk
// touches sequential memory instead of chasing per-port heap objects.
// Pointers into the arrays (&r.Out[p], &r.In[p].bufs[vc]) stay valid
// because none of the arrays is ever resized after construction.
type Router struct {
	Pos Coord
	In  [NumPorts]inputPort
	Out [NumPorts]OutputPort
	vcs int

	routing Routing

	// pending counts packets resident in the router's input buffers
	// (arrived head flit, not yet fully forwarded). While zero, step is a
	// no-op — no allocation candidates, no active transfers — and the
	// mesh skips the router. Packets, not flits: a resident packet whose
	// flits are all forwarded-or-unarrived must still be visited every
	// cycle so channel allocation happens the cycle the head arrives.
	pending int

	// want counts resident packets routed to each output port (pinned at
	// head arrival). A port with want zero has no candidates and no
	// active transfer, so step skips it without touching its VC slots.
	want [NumPorts]int32

	// cands/candBufs are scratch storage for allocate, sized for the
	// worst case of one candidate per input port.
	cands    [NumPorts]Candidate
	candBufs [NumPorts]*InputBuffer
}

func (r *Router) init(pos Coord, vcs, bufFlits int) {
	r.Pos = pos
	r.vcs = vcs
	for p := 0; p < NumPorts; p++ {
		r.In[p].init(vcs, bufFlits)
		o := &r.Out[p]
		o.alloc = fifoAllocator{}
		o.credits = make([]int, vcs)
		o.active = make([]activeXfer, vcs)
		for v := range r.In[p].bufs {
			r.In[p].bufs[v].onNewPacket = r.onNewPacket
		}
	}
}

func newRouter(pos Coord, vcs, bufFlits int) *Router {
	r := &Router{}
	r.init(pos, vcs, bufFlits)
	return r
}

// onNewPacket registers a packet whose head flit just arrived: pin its
// route, bump the desire counter of that output, and introduce it to the
// output's flow-control policy.
func (r *Router) onNewPacket(pp *PacketProgress, now int64) {
	r.pending++
	out := r.routeFor(pp.Pkt)
	pp.route = int8(out)
	r.want[out]++
	r.Out[out].alloc.OnPacketArrival(pp.Pkt, now)
}

// SetAllocator installs a flow-control policy on one output port.
func (r *Router) SetAllocator(port int, a Allocator) { r.Out[port].alloc = a }

// SetAllAllocators installs policies produced by mk on every output port.
func (r *Router) SetAllAllocators(mk func(port int) Allocator) {
	for p := 0; p < NumPorts; p++ {
		r.Out[p].alloc = mk(p)
	}
}

// vcOf returns the virtual channel a packet travels on: with more than
// one VC, priority packets ride the last (highest) VC and best-effort
// traffic the rest is assigned VC 0 — the classic QoS arrangement the
// paper contrasts with SAGM splitting.
func vcOf(p *Packet, vcs int) int {
	if vcs > 1 && p.Priority {
		return vcs - 1
	}
	return 0
}

// step performs this router's work for one cycle: allocate free output
// VCs and forward at most one flit per output (the physical link carries
// one flit per cycle; the priority VC goes first).
func (r *Router) step(now int64) {
	for out := 0; out < NumPorts; out++ {
		o := &r.Out[out]
		if o.link == nil {
			continue // unconnected edge port
		}
		if r.want[out] == 0 {
			// No resident packet is routed here: nothing to allocate and
			// (since want covers packets mid-transfer) no active slot.
			continue
		}
		for vc := range o.active {
			if o.active[vc].pp == nil {
				r.allocate(out, vc, now)
			}
		}
		// Send one flit: highest VC (priority) first.
		for vc := len(o.active) - 1; vc >= 0; vc-- {
			a := &o.active[vc]
			if a.pp == nil || o.credits[vc] <= 0 || !a.buf.canForward(a.pp, now) {
				continue
			}
			head := a.pp.Sent == 0
			o.link.launch(a.pp.Pkt, head, vc)
			o.credits[vc]--
			o.BusyCycles++
			if a.buf.forwardFlit(a.pp, now) {
				// forwardFlit released the PacketProgress to the pool; drop
				// the transfer slot without touching it again.
				r.pending--
				r.want[out]--
				a.pp, a.buf = nil, nil
			}
			break
		}
	}
}

// allocate gathers the input-buffer heads of the given VC requesting
// output port out and asks the port's allocator to pick a winner. The
// candidate lists live in the router's scratch arrays — no per-cycle
// allocation.
func (r *Router) allocate(out, vc int, now int64) {
	n := 0
	for in := 0; in < NumPorts; in++ {
		b := &r.In[in].bufs[vc]
		pp := b.head()
		if pp == nil || int(pp.route) != out {
			continue
		}
		r.cands[n] = Candidate{Pkt: pp.Pkt, Port: in}
		r.candBufs[n] = b
		n++
	}
	if n == 0 {
		return
	}
	o := &r.Out[out]
	idx := o.alloc.Select(r.cands[:n], now)
	if idx < 0 {
		return
	}
	buf := r.candBufs[idx]
	o.active[vc] = activeXfer{buf: buf, pp: buf.head()}
	o.Grants++
	o.alloc.OnScheduled(r.cands[idx].Pkt, now)
}

// fifoAllocator is the default placeholder policy: it grants the first
// candidate in port order. Real configurations install round-robin,
// priority-first, or GSS allocators.
type fifoAllocator struct{}

func (fifoAllocator) OnPacketArrival(*Packet, int64)    {}
func (fifoAllocator) Select(c []Candidate, _ int64) int { return 0 }
func (fifoAllocator) OnScheduled(*Packet, int64)        {}
