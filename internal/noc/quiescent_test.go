package noc

import "testing"

// TestQuiescentLifecycle walks one packet through the mesh and checks
// Quiescent and the activity ledger at every stage: an empty mesh is
// quiescent, a mesh with a flit on a link or in a buffer is not, and the
// mesh returns to quiescence once the packet has drained into the sink —
// sink residency is the NI's business, not the mesh's.
func TestQuiescentLifecycle(t *testing.T) {
	m, err := NewMesh(3, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	src, dst := Coord{2, 2}, Coord{0, 0}
	inj := m.AttachInjector(src)
	sink := m.AttachSink(dst, 16, 4)

	if !m.Quiescent() {
		t.Fatal("fresh mesh not quiescent")
	}
	if m.Activity() != 0 {
		t.Fatalf("fresh mesh activity = %d, want 0", m.Activity())
	}

	woke := 0
	m.OnWake = func() { woke++ }

	// A queued packet is injector-resident: the mesh itself is untouched.
	inj.Enqueue(mkPacket(1, src, dst, 4))
	if !m.Quiescent() || m.Activity() != 0 {
		t.Fatal("enqueue alone must not disturb the mesh")
	}
	if woke != 0 {
		t.Fatal("enqueue alone must not wake the mesh")
	}

	// The first Step launches the head flit onto the local link.
	inj.Step(0)
	if m.Quiescent() {
		t.Fatal("mesh quiescent with a flit in flight")
	}
	if m.Activity() == 0 {
		t.Fatal("activity ledger empty with a flit in flight")
	}
	if woke != 1 {
		t.Fatalf("idle-to-busy transition fired OnWake %d times, want 1", woke)
	}

	// Drive to completion. The ledger is the wider predicate: it also
	// counts credits in flight, so an empty ledger implies quiescence but
	// not the reverse.
	delivered := false
	var now int64
	for now = 1; now < 100 && !delivered; now++ {
		if m.Activity() == 0 && !m.Quiescent() {
			t.Fatalf("cycle %d: empty ledger on a non-quiescent mesh", now)
		}
		m.Cycle(now)
		inj.Step(now)
		sink.Step(now)
		delivered = sink.Pop(now) != nil
	}
	if !delivered {
		t.Fatal("packet not delivered")
	}
	if !m.Quiescent() {
		t.Fatal("mesh not quiescent after drain")
	}
	// A few more cycles flush the credits the pop released; only then
	// must the ledger read empty.
	for ; now < 110; now++ {
		m.Cycle(now)
	}
	if m.Activity() != 0 {
		t.Fatalf("activity ledger reads %d after credit flush, want 0", m.Activity())
	}
	// Two idle-to-busy transitions: the flit launch, then the credit the
	// pop released into a fully drained ledger — the kernel relies on that
	// second wake to carry the credit home.
	if woke != 2 {
		t.Fatalf("OnWake fired %d times, want 2 (launch + post-drain credit)", woke)
	}
}

// TestQuiescentSinkResidency pins down the boundary: a packet parked in
// the sink's ready list keeps the mesh quiescent (links and router
// buffers are clear) even though the NI still holds it.
func TestQuiescentSinkResidency(t *testing.T) {
	m, _ := NewMesh(2, 2, 8)
	src, dst := Coord{1, 1}, Coord{0, 0}
	inj := m.AttachInjector(src)
	sink := m.AttachSink(dst, 16, 4)
	inj.Enqueue(mkPacket(1, src, dst, 2))
	for now := int64(0); now < 60; now++ {
		m.Cycle(now)
		inj.Step(now)
		sink.Step(now)
	}
	if sink.Ready() != 1 {
		t.Fatalf("sink ready = %d, want the packet parked", sink.Ready())
	}
	if !m.Quiescent() {
		t.Fatal("mesh must be quiescent with the packet sink-resident")
	}
	if m.Activity() != 0 {
		t.Fatalf("activity = %d with the packet sink-resident, want 0", m.Activity())
	}
}
