package noc

import "fmt"

// PacketProgress tracks a packet resident in one input buffer: how many of
// its flits have arrived from the upstream link and how many have been
// forwarded out. The packet occupies Arrived-Sent flit slots. route is the
// output port the owning router pinned at head arrival (unused in sink
// buffers). PacketProgress values are pooled per mesh: one is leased from
// the free-list as a head flit arrives and returned as the last flit
// leaves, so the steady-state hot path allocates nothing.
type PacketProgress struct {
	Pkt     *Packet
	Arrived int
	Sent    int
	route   int8
}

// InputBuffer is a FIFO flit buffer of one virtual channel on a router
// input port (or a sink queue). Wormhole flow control keeps packets in
// order within a VC: only the head packet may be forwarded, and flits of
// a packet arrive contiguously because the upstream sender finishes a
// packet on a VC before starting the next on that VC.
type InputBuffer struct {
	vc       int
	capacity int
	occupied int
	packets  []*PacketProgress

	feed *Link // upstream link; flits forwarded out return credits on it

	// onNewPacket, when set, is invoked as the head flit of a packet
	// arrives (the router uses it to pin the packet's route and register
	// it with the flow controller of its requested output).
	onNewPacket func(pp *PacketProgress, now int64)

	lastForwardCycle int64 // at most one flit leaves the buffer per cycle
}

func (b *InputBuffer) init(vc, capacity int) {
	b.vc = vc
	b.capacity = capacity
	b.lastForwardCycle = -1
}

func newInputBuffer(vc, capacity int) *InputBuffer {
	b := &InputBuffer{}
	b.init(vc, capacity)
	return b
}

// inputPort groups the virtual-channel buffers of one physical input.
// The buffers are a value slice allocated once at construction and never
// resized, so &bufs[vc] pointers taken by links stay valid.
type inputPort struct {
	bufs []InputBuffer
}

func (p *inputPort) init(vcs, capacity int) {
	p.bufs = make([]InputBuffer, vcs)
	for v := range p.bufs {
		p.bufs[v].init(v, capacity)
	}
}

func newInputPort(vcs, capacity int) *inputPort {
	p := &inputPort{}
	p.init(vcs, capacity)
	return p
}

// occupied sums flits held across the port's VCs.
func (p *inputPort) occupied() int {
	n := 0
	for i := range p.bufs {
		n += p.bufs[i].occupied
	}
	return n
}

// empty reports whether no packet occupies any VC of the port.
func (p *inputPort) empty() bool {
	for i := range p.bufs {
		if len(p.bufs[i].packets) > 0 {
			return false
		}
	}
	return true
}

// Capacity returns the buffer size in flits.
func (b *InputBuffer) Capacity() int { return b.capacity }

// Occupied returns the number of flits currently held.
func (b *InputBuffer) Occupied() int { return b.occupied }

// leaseProgress allocates a PacketProgress, from the mesh pool when the
// buffer is wired to one (standalone buffers in unit tests are not).
func (b *InputBuffer) leaseProgress() *PacketProgress {
	if b.feed != nil {
		return b.feed.m.getProgress()
	}
	return &PacketProgress{}
}

// releaseProgress returns a fully forwarded PacketProgress to the pool.
func (b *InputBuffer) releaseProgress(pp *PacketProgress) {
	if b.feed != nil {
		b.feed.m.putProgress(pp)
	}
}

// pop removes the head entry with a copy-shift so the slice's backing
// array is reused forever instead of creeping forward one slot per
// packet (re-slicing b.packets[1:] would force a reallocation on almost
// every later append).
func (b *InputBuffer) pop() {
	n := len(b.packets)
	copy(b.packets, b.packets[1:])
	b.packets[n-1] = nil
	b.packets = b.packets[:n-1]
}

// acceptFlit stores one arriving flit. head marks the first flit of a
// packet. Credit flow control guarantees space; overflow is a protocol
// bug and panics.
func (b *InputBuffer) acceptFlit(p *Packet, head bool, now int64) {
	if b.occupied >= b.capacity {
		panic(fmt.Sprintf("noc: buffer overflow accepting %v (credit protocol violated)", p))
	}
	b.occupied++
	if head {
		pp := b.leaseProgress()
		pp.Pkt = p
		pp.Arrived = 1
		b.packets = append(b.packets, pp)
		if b.onNewPacket != nil {
			b.onNewPacket(pp, now)
		}
		return
	}
	if len(b.packets) == 0 || b.packets[len(b.packets)-1].Pkt != p {
		panic(fmt.Sprintf("noc: interleaved flits of %v (wormhole protocol violated)", p))
	}
	b.packets[len(b.packets)-1].Arrived++
}

// head returns the packet at the front of the FIFO, or nil.
func (b *InputBuffer) head() *PacketProgress {
	if len(b.packets) == 0 {
		return nil
	}
	return b.packets[0]
}

// canForward reports whether the head packet has an unforwarded flit
// available and the buffer has not already forwarded a flit this cycle.
func (b *InputBuffer) canForward(pp *PacketProgress, now int64) bool {
	return pp.Arrived > pp.Sent && b.lastForwardCycle != now
}

// forwardFlit removes one flit of the head packet, returning a credit on
// the feeding link. It reports whether the packet is fully forwarded (and
// therefore popped from the FIFO). When it returns true the
// PacketProgress has been released back to the pool — the caller must
// drop its pointer without dereferencing it again.
func (b *InputBuffer) forwardFlit(pp *PacketProgress, now int64) bool {
	if b.head() != pp {
		panic("noc: forwarding a non-head packet")
	}
	if pp.Sent >= pp.Arrived {
		panic("noc: forwarding a flit that has not arrived")
	}
	pp.Sent++
	b.occupied--
	b.lastForwardCycle = now
	if b.feed != nil {
		// The flit leaves this buffer for the downstream link, whose
		// launch re-adds it to the activity ledger; the pending credit is
		// ledger work of its own (credit before debit so the ledger never
		// dips to zero mid-transfer).
		b.feed.returnCredit(b.vc)
		b.feed.m.workAdd(-1)
	}
	if pp.Sent == pp.Pkt.Flits {
		b.pop()
		b.releaseProgress(pp)
		return true
	}
	return false
}
