package noc

import "fmt"

// PacketProgress tracks a packet resident in one input buffer: how many of
// its flits have arrived from the upstream link and how many have been
// forwarded out. The packet occupies Arrived-Sent flit slots.
type PacketProgress struct {
	Pkt     *Packet
	Arrived int
	Sent    int
}

// InputBuffer is a FIFO flit buffer of one virtual channel on a router
// input port (or a sink queue). Wormhole flow control keeps packets in
// order within a VC: only the head packet may be forwarded, and flits of
// a packet arrive contiguously because the upstream sender finishes a
// packet on a VC before starting the next on that VC.
type InputBuffer struct {
	vc       int
	capacity int
	occupied int
	packets  []*PacketProgress

	feed *Link // upstream link; flits forwarded out return credits on it

	// onNewPacket, when set, is invoked as the head flit of a packet
	// arrives (the router uses it to register the packet with the flow
	// controller of its requested output).
	onNewPacket func(p *Packet, now int64)

	lastForwardCycle int64 // at most one flit leaves the buffer per cycle
}

func newInputBuffer(vc, capacity int) *InputBuffer {
	return &InputBuffer{vc: vc, capacity: capacity, lastForwardCycle: -1}
}

// inputPort groups the virtual-channel buffers of one physical input.
type inputPort struct {
	bufs []*InputBuffer
}

func newInputPort(vcs, capacity int) *inputPort {
	p := &inputPort{}
	for v := 0; v < vcs; v++ {
		p.bufs = append(p.bufs, newInputBuffer(v, capacity))
	}
	return p
}

// occupied sums flits held across the port's VCs.
func (p *inputPort) occupied() int {
	n := 0
	for _, b := range p.bufs {
		n += b.occupied
	}
	return n
}

// empty reports whether no packet occupies any VC of the port.
func (p *inputPort) empty() bool {
	for _, b := range p.bufs {
		if len(b.packets) > 0 {
			return false
		}
	}
	return true
}

// Capacity returns the buffer size in flits.
func (b *InputBuffer) Capacity() int { return b.capacity }

// Occupied returns the number of flits currently held.
func (b *InputBuffer) Occupied() int { return b.occupied }

// acceptFlit stores one arriving flit. head marks the first flit of a
// packet. Credit flow control guarantees space; overflow is a protocol
// bug and panics.
func (b *InputBuffer) acceptFlit(p *Packet, head bool, now int64) {
	if b.occupied >= b.capacity {
		panic(fmt.Sprintf("noc: buffer overflow accepting %v (credit protocol violated)", p))
	}
	b.occupied++
	if head {
		b.packets = append(b.packets, &PacketProgress{Pkt: p, Arrived: 1})
		if b.onNewPacket != nil {
			b.onNewPacket(p, now)
		}
		return
	}
	if len(b.packets) == 0 || b.packets[len(b.packets)-1].Pkt != p {
		panic(fmt.Sprintf("noc: interleaved flits of %v (wormhole protocol violated)", p))
	}
	b.packets[len(b.packets)-1].Arrived++
}

// head returns the packet at the front of the FIFO, or nil.
func (b *InputBuffer) head() *PacketProgress {
	if len(b.packets) == 0 {
		return nil
	}
	return b.packets[0]
}

// canForward reports whether the head packet has an unforwarded flit
// available and the buffer has not already forwarded a flit this cycle.
func (b *InputBuffer) canForward(pp *PacketProgress, now int64) bool {
	return pp.Arrived > pp.Sent && b.lastForwardCycle != now
}

// forwardFlit removes one flit of the head packet, returning a credit on
// the feeding link. It reports whether the packet is fully forwarded (and
// therefore popped from the FIFO).
func (b *InputBuffer) forwardFlit(pp *PacketProgress, now int64) bool {
	if b.head() != pp {
		panic("noc: forwarding a non-head packet")
	}
	if pp.Sent >= pp.Arrived {
		panic("noc: forwarding a flit that has not arrived")
	}
	pp.Sent++
	b.occupied--
	b.lastForwardCycle = now
	if b.feed != nil {
		// The flit leaves this buffer for the downstream link, whose
		// launch re-adds it to the activity ledger; the pending credit is
		// ledger work of its own (credit before debit so the ledger never
		// dips to zero mid-transfer).
		b.feed.returnCredit(b.vc)
		b.feed.m.workAdd(-1)
	}
	if pp.Sent == pp.Pkt.Flits {
		b.packets = b.packets[1:]
		return true
	}
	return false
}
