package noc

// creditReceiver is anything that receives returned flow-control credits:
// router output ports and injectors. Credits are per virtual channel.
// creditBalance exposes the current count to the checked-mode audit,
// which verifies the credit loop of every link conserves exactly the
// downstream buffer capacity.
type creditReceiver interface {
	addCredits(vc, n int)
	creditBalance(vc int) int
}

// Link is a one-cycle-latency unidirectional channel carrying one flit
// per cycle from an output port (or injector) to a router input, plus the
// reverse credit wires. With virtual channels, flits of different VCs may
// interleave on the link; the receiving side demultiplexes them into
// per-VC buffers. The in-flight flit is stored inline (flitPkt nil when
// the link is empty) so launching costs no allocation.
type Link struct {
	m        *Mesh
	dst      *inputPort
	creditTo creditReceiver
	sink     *Sink // non-nil when dst is a sink's credit buffer

	flitPkt  *Packet
	flitHead bool
	flitVC   int

	pendingCredits []int // per VC
	credPending    int   // total queued credits across VCs
}

func newLink(m *Mesh, dst *inputPort, creditTo creditReceiver) *Link {
	l := &Link{m: m, dst: dst, creditTo: creditTo, pendingCredits: make([]int, len(dst.bufs))}
	for i := range dst.bufs {
		dst.bufs[i].feed = l
	}
	return l
}

// launch places a flit on the link; it arrives at the destination buffer
// of its virtual channel on the next deliver phase. At most one flit per
// cycle crosses the link, whatever its VC.
func (l *Link) launch(p *Packet, head bool, vc int) {
	if l.flitPkt != nil {
		panic("noc: two flits launched on one link in one cycle")
	}
	l.flitPkt, l.flitHead, l.flitVC = p, head, vc
	l.m.workAdd(1)
}

// returnCredit queues a credit for the upstream sender's given VC; it is
// applied on the next deliver phase.
func (l *Link) returnCredit(vc int) {
	l.pendingCredits[vc]++
	l.credPending++
	l.m.workAdd(1)
}

// deliver moves the in-flight flit into the destination buffer and
// applies queued credits upstream. A flit landing in a router buffer
// stays on the mesh's activity ledger (the router must forward it); one
// landing in a sink's credit buffer leaves it — the sink's consumer is
// woken to drain it instead.
func (l *Link) deliver(now int64) {
	if l.flitPkt != nil {
		pkt, head, vc := l.flitPkt, l.flitHead, l.flitVC
		l.flitPkt = nil
		l.dst.bufs[vc].acceptFlit(pkt, head, now)
		if l.sink != nil {
			l.m.workAdd(-1)
			if l.sink.OnArrival != nil {
				l.sink.OnArrival(now)
			}
		}
	}
	if l.credPending > 0 && l.creditTo != nil {
		for vc, n := range l.pendingCredits {
			if n > 0 {
				l.creditTo.addCredits(vc, n)
				l.pendingCredits[vc] = 0
			}
		}
		l.m.workAdd(-int64(l.credPending))
		l.credPending = 0
	}
}

// busy reports whether a flit is in flight.
func (l *Link) busy() bool { return l.flitPkt != nil }
