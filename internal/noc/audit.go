package noc

// Audit is the checked-mode conservation walk over one mesh. It verifies,
// from the live structures, the invariants credit-based wormhole flow
// control is supposed to maintain:
//
//   - credit conservation: for every link and VC, sender credits +
//     the in-flight flit + downstream buffer occupancy + credits in
//     flight back equals the downstream buffer capacity, and the sender's
//     count never leaves [0, capacity];
//   - buffer coherence: each input buffer's occupancy equals the sum of
//     its packets' resident flits (Arrived − Sent), arrivals never exceed
//     the packet length, and only the head packet of a VC has forwarded
//     flits (wormhole ordering);
//   - transfer validity: an output VC's active wormhole transfer always
//     references the head packet of its input buffer;
//   - flit conservation: every flit injectors launched is either resident
//     (in a buffer or on a link) or was drained by a sink — injected
//     flits are delivered exactly once, none duplicated or lost.
//
// Violations are reported through the closure so the package stays free
// of checker dependencies; callers bind it to their Checker.
func (m *Mesh) Audit(report func(kind, format string, args ...any)) {
	for i, l := range m.links {
		m.auditLink(i, l, report)
	}
	for _, r := range m.Routers {
		for port := range r.In {
			in := &r.In[port]
			for vc := range in.bufs {
				auditBuffer(&in.bufs[vc], report, "router %v in %s vc %d", r.Pos, PortName(port), vc)
			}
		}
		for port := range r.Out {
			o := &r.Out[port]
			if o.link == nil {
				continue
			}
			for vc := range o.active {
				a := &o.active[vc]
				if a.pp == nil {
					continue
				}
				if a.buf.head() != a.pp {
					report("transfer-order", "router %v out %s vc %d: active transfer is not its buffer head",
						r.Pos, PortName(port), vc)
				}
				if a.pp.Sent >= a.pp.Pkt.Flits {
					report("transfer-order", "router %v out %s vc %d: active transfer already sent %d/%d flits",
						r.Pos, PortName(port), vc, a.pp.Sent, a.pp.Pkt.Flits)
				}
			}
		}
	}
	var resident int64
	for _, r := range m.Routers {
		for port := range r.In {
			resident += int64(r.In[port].occupied())
		}
	}
	for i, s := range m.sinks {
		for vc := range s.port.bufs {
			auditBuffer(&s.port.bufs[vc], report, "sink %d vc %d", i, vc)
		}
		resident += int64(s.port.occupied())
	}
	var inFlight, launched, drained int64
	for _, l := range m.links {
		if l.flitPkt != nil {
			inFlight++
		}
	}
	for _, inj := range m.injectors {
		launched += inj.launched
	}
	for _, s := range m.sinks {
		drained += s.drained
	}
	if launched != resident+inFlight+drained {
		report("flit-conservation",
			"%d flits launched but %d resident + %d in flight + %d drained",
			launched, resident, inFlight, drained)
	}
	m.auditActivity(report)
}

// auditActivity recomputes the incremental activity ledger (the
// idle-skip condition) from the live structures: flits on links, flits
// in router input buffers, and credits in flight. An imbalance means the
// mesh could sleep while work remains — a timing bug idle-skip would
// silently introduce. The per-router pending and want counters (the
// router-skip and port-skip conditions) are recomputed the same way.
func (m *Mesh) auditActivity(report func(kind, format string, args ...any)) {
	var scan int64
	for i, l := range m.links {
		if l.flitPkt != nil {
			scan++
		}
		pend := 0
		for _, n := range l.pendingCredits {
			pend += n
		}
		if pend != l.credPending {
			report("activity-ledger", "link %d: %d pending credits but credPending %d",
				i, pend, l.credPending)
		}
		scan += int64(pend)
	}
	for _, r := range m.Routers {
		resident := 0
		var want [NumPorts]int32
		for port := range r.In {
			in := &r.In[port]
			scan += int64(in.occupied())
			for vc := range in.bufs {
				for _, pp := range in.bufs[vc].packets {
					resident++
					want[pp.route]++
				}
			}
		}
		if resident != r.pending {
			report("activity-ledger", "router %v: %d resident packets but pending %d",
				r.Pos, resident, r.pending)
		}
		if want != r.want {
			report("activity-ledger", "router %v: resident routes %v but want %v",
				r.Pos, want, r.want)
		}
	}
	if scan != m.work {
		report("activity-ledger", "mesh holds %d work items but ledger reads %d", scan, m.work)
	}
}

// auditCounts checks the credit loop of one link: every VC's credit supply
// is partitioned between the sender, the wires, and the downstream
// buffer, and the partition always sums to the buffer capacity.
func (l *Link) auditCounts(vc int) (balance, inFlight, occupied, pending, capacity int) {
	balance = l.creditTo.creditBalance(vc)
	if l.flitPkt != nil && l.flitVC == vc {
		inFlight = 1
	}
	b := &l.dst.bufs[vc]
	return balance, inFlight, b.occupied, l.pendingCredits[vc], b.capacity
}

func (m *Mesh) auditLink(idx int, l *Link, report func(kind, format string, args ...any)) {
	if l.creditTo == nil {
		return
	}
	for vc := range l.dst.bufs {
		bal, fly, occ, pend, cap := l.auditCounts(vc)
		if bal < 0 || bal > cap {
			report("credit-bound", "link %d vc %d: sender holds %d credits for a %d-flit buffer",
				idx, vc, bal, cap)
		}
		if bal+fly+occ+pend != cap {
			report("credit-conservation",
				"link %d vc %d: credits %d + in-flight %d + buffered %d + returning %d != capacity %d",
				idx, vc, bal, fly, occ, pend, cap)
		}
	}
}

// auditBuffer checks one VC buffer's packet accounting and wormhole
// ordering. where/args name the buffer in violation messages.
func auditBuffer(b *InputBuffer, report func(kind, format string, args ...any), where string, args ...any) {
	at := func(kind, format string, extra ...any) {
		report(kind, where+": "+format, append(append([]any{}, args...), extra...)...)
	}
	if b.occupied < 0 || b.occupied > b.capacity {
		at("buffer-bound", "occupancy %d outside [0,%d]", b.occupied, b.capacity)
	}
	total := 0
	for i, pp := range b.packets {
		if pp.Sent < 0 || pp.Arrived < pp.Sent {
			at("buffer-accounting", "packet %d sent %d of %d arrived flits", i, pp.Sent, pp.Arrived)
		}
		if pp.Arrived > pp.Pkt.Flits {
			at("buffer-accounting", "packet %d arrived %d flits of a %d-flit packet", i, pp.Arrived, pp.Pkt.Flits)
		}
		if i > 0 && pp.Sent > 0 {
			at("wormhole-order", "non-head packet %d has %d forwarded flits", i, pp.Sent)
		}
		total += pp.Arrived - pp.Sent
	}
	if total != b.occupied {
		at("buffer-accounting", "resident flits %d != occupancy %d", total, b.occupied)
	}
}
