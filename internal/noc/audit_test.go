package noc

import (
	"fmt"
	"testing"
)

// collectViolations runs Audit and returns the reported kinds.
func collectViolations(m *Mesh) []string {
	var kinds []string
	m.Audit(func(kind, format string, args ...any) {
		kinds = append(kinds, kind+": "+fmt.Sprintf(format, args...))
	})
	return kinds
}

// TestAuditCleanTraffic drives a congested many-to-one workload and
// audits after every cycle: a correct mesh must never trip a
// conservation check, mid-transfer states included.
func TestAuditCleanTraffic(t *testing.T) {
	for _, vcs := range []int{1, 2} {
		t.Run(fmt.Sprintf("vcs=%d", vcs), func(t *testing.T) {
			m, err := NewMeshVC(3, 3, 4, vcs)
			if err != nil {
				t.Fatal(err)
			}
			dst := Coord{0, 0}
			sink := m.AttachSink(dst, 8, 4)
			var injs []*Injector
			id := int64(0)
			for y := 0; y < 3; y++ {
				for x := 0; x < 3; x++ {
					c := Coord{x, y}
					if c == dst {
						continue
					}
					inj := m.AttachInjector(c)
					for k := 0; k < 4; k++ {
						id++
						p := mkPacket(id, c, dst, 1+int(id)%6)
						p.Priority = id%3 == 0
						inj.Enqueue(p)
					}
					injs = append(injs, inj)
				}
			}
			delivered := 0
			for now := int64(0); now < 600; now++ {
				m.Cycle(now)
				for _, inj := range injs {
					inj.Step(now)
				}
				sink.Step(now)
				for sink.Pop(now) != nil {
					delivered++
				}
				if vs := collectViolations(m); len(vs) > 0 {
					t.Fatalf("cycle %d: audit flagged a healthy mesh: %v", now, vs)
				}
			}
			if delivered != int(id) {
				t.Fatalf("delivered %d of %d packets", delivered, id)
			}
			var launched, drained int64
			for _, inj := range injs {
				launched += inj.LaunchedFlits()
			}
			drained = sink.DrainedFlits()
			if launched == 0 || launched != drained {
				t.Fatalf("launched %d flits, drained %d", launched, drained)
			}
		})
	}
}

// TestAuditCatchesCreditLeak steals a credit from a router output and
// expects the conservation walk to notice.
func TestAuditCatchesCreditLeak(t *testing.T) {
	m, _ := NewMesh(2, 2, 4)
	m.AttachInjector(Coord{1, 1})
	m.AttachSink(Coord{0, 0}, 8, 4)
	if vs := collectViolations(m); len(vs) != 0 {
		t.Fatalf("fresh mesh not clean: %v", vs)
	}
	m.RouterAt(Coord{1, 1}).Out[PortWest].credits[0]--
	vs := collectViolations(m)
	if len(vs) == 0 {
		t.Fatal("credit leak not flagged")
	}
}

// TestAuditCatchesDuplicatedCredit gives a sender one credit too many —
// the overflow-causing direction.
func TestAuditCatchesDuplicatedCredit(t *testing.T) {
	m, _ := NewMesh(2, 2, 4)
	m.RouterAt(Coord{1, 1}).Out[PortWest].credits[0]++
	vs := collectViolations(m)
	found := false
	for _, v := range vs {
		if v[:12] == "credit-bound" {
			found = true
		}
	}
	if !found {
		t.Fatalf("credit duplication not flagged as credit-bound: %v", vs)
	}
}

// TestAuditCatchesLostFlit decrements a buffer occupancy as if a flit
// evaporated, and expects both the buffer accounting and the
// mesh-level flit ledger to complain.
func TestAuditCatchesLostFlit(t *testing.T) {
	m, _ := NewMesh(2, 2, 4)
	src, dst := Coord{1, 1}, Coord{0, 0}
	inj := m.AttachInjector(src)
	m.AttachSink(dst, 8, 4)
	inj.Enqueue(mkPacket(1, src, dst, 4))
	// Launch one flit and deliver it by hand, without stepping the
	// routers — a full Mesh.Step would forward it onward immediately.
	buf := &m.RouterAt(src).In[PortLocal].bufs[0]
	inj.Step(0)
	inj.link.deliver(1)
	if buf.occupied == 0 {
		t.Fatal("no flit reached the router buffer")
	}
	buf.occupied--
	vs := collectViolations(m)
	if len(vs) == 0 {
		t.Fatal("evaporated flit not flagged")
	}
}

// TestAuditCatchesWormholeReorder marks a non-head packet as partially
// forwarded.
func TestAuditCatchesWormholeReorder(t *testing.T) {
	m, _ := NewMesh(2, 2, 8)
	buf := &m.RouterAt(Coord{0, 0}).In[PortEast].bufs[0]
	a := mkPacket(1, Coord{1, 0}, Coord{0, 0}, 2)
	b := mkPacket(2, Coord{1, 0}, Coord{0, 0}, 2)
	buf.packets = []*PacketProgress{
		{Pkt: a, Arrived: 2, Sent: 1},
		{Pkt: b, Arrived: 2, Sent: 1},
	}
	buf.occupied = 2
	found := false
	m.Audit(func(kind, format string, args ...any) {
		if kind == "wormhole-order" {
			found = true
		}
	})
	if !found {
		t.Fatal("forwarded non-head packet not flagged as wormhole-order")
	}
}
