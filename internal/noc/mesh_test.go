package noc

import (
	"testing"
	"testing/quick"

	"aanoc/internal/dram"
)

func TestXYRoute(t *testing.T) {
	cases := []struct {
		cur, dst Coord
		want     int
	}{
		{Coord{1, 1}, Coord{2, 1}, PortEast},
		{Coord{1, 1}, Coord{0, 1}, PortWest},
		{Coord{1, 1}, Coord{1, 2}, PortSouth},
		{Coord{1, 1}, Coord{1, 0}, PortNorth},
		{Coord{1, 1}, Coord{1, 1}, PortLocal},
		// X is resolved before Y.
		{Coord{0, 0}, Coord{2, 2}, PortEast},
		{Coord{2, 0}, Coord{0, 2}, PortWest},
	}
	for _, c := range cases {
		if got := XYRoute(c.cur, c.dst); got != c.want {
			t.Errorf("XYRoute(%v,%v) = %s, want %s", c.cur, c.dst, PortName(got), PortName(c.want))
		}
	}
}

func TestHopDistance(t *testing.T) {
	if d := HopDistance(Coord{0, 0}, Coord{2, 2}); d != 4 {
		t.Errorf("HopDistance = %d, want 4", d)
	}
	if d := HopDistance(Coord{3, 1}, Coord{1, 0}); d != 3 {
		t.Errorf("HopDistance = %d, want 3", d)
	}
}

func TestNewMeshValidation(t *testing.T) {
	if _, err := NewMesh(0, 3, 8); err == nil {
		t.Error("want error for zero width")
	}
	if _, err := NewMesh(3, 3, 0); err == nil {
		t.Error("want error for zero buffer")
	}
	m, err := NewMesh(3, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Routers) != 9 {
		t.Fatalf("router count = %d, want 9", len(m.Routers))
	}
	// Corner router has exactly two connected inter-router outputs.
	r := m.RouterAt(Coord{0, 0})
	connected := 0
	for p := PortNorth; p <= PortWest; p++ {
		if r.Out[p].link != nil {
			connected++
		}
	}
	if connected != 2 {
		t.Errorf("corner connected ports = %d, want 2", connected)
	}
}

// run drives a mesh with one injector and one sink for up to max cycles,
// popping delivered packets.
func run(t *testing.T, m *Mesh, inj *Injector, sink *Sink, max int64) []*Packet {
	t.Helper()
	var got []*Packet
	for now := int64(0); now < max; now++ {
		m.Cycle(now)
		inj.Step(now)
		sink.Step(now)
		for {
			p := sink.Pop(now)
			if p == nil {
				break
			}
			got = append(got, p)
		}
	}
	return got
}

func mkPacket(id int64, src, dst Coord, flits int) *Packet {
	return &Packet{
		ID: id, ParentID: id, Src: src, Dst: dst,
		Kind: Write, Class: ClassMedia, Flits: flits, Beats: flits * 2, Splits: 1,
		Addr: dram.Address{Bank: int(id) % 4, Row: int(id)},
	}
}

func TestSinglePacketDelivery(t *testing.T) {
	m, err := NewMesh(3, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	src, dst := Coord{2, 2}, Coord{0, 0}
	inj := m.AttachInjector(src)
	sink := m.AttachSink(dst, 16, 4)
	p := mkPacket(1, src, dst, 4)
	inj.Enqueue(p)
	got := run(t, m, inj, sink, 100)
	if len(got) != 1 || got[0] != p {
		t.Fatalf("delivered %d packets, want the 1 injected", len(got))
	}
	if !m.Quiescent() {
		t.Error("mesh not quiescent after drain")
	}
}

func TestDeliveryLatencyLowerBound(t *testing.T) {
	// A packet of F flits over H hops through an idle mesh needs at least
	// H+F cycles (pipelined wormhole).
	m, _ := NewMesh(3, 3, 8)
	src, dst := Coord{2, 2}, Coord{0, 0}
	inj := m.AttachInjector(src)
	sink := m.AttachSink(dst, 64, 4)
	p := mkPacket(1, src, dst, 8)
	inj.Enqueue(p)
	var deliveredAt int64 = -1
	for now := int64(0); now < 200 && deliveredAt < 0; now++ {
		m.Cycle(now)
		inj.Step(now)
		sink.Step(now)
		if sink.Pop(now) != nil {
			deliveredAt = now
		}
	}
	if deliveredAt < 0 {
		t.Fatal("packet not delivered")
	}
	minLatency := int64(HopDistance(src, dst) + p.Flits)
	if deliveredAt < minLatency {
		t.Errorf("delivered at %d, impossible before %d", deliveredAt, minLatency)
	}
	if deliveredAt > minLatency+6 {
		t.Errorf("delivered at %d, idle mesh should be close to %d", deliveredAt, minLatency)
	}
}

func TestManyPacketsAllDelivered(t *testing.T) {
	m, _ := NewMesh(3, 3, 4)
	dst := Coord{0, 0}
	sink := m.AttachSink(dst, 8, 4)
	var injs []*Injector
	id := int64(0)
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			c := Coord{x, y}
			if c == dst {
				continue
			}
			inj := m.AttachInjector(c)
			for k := 0; k < 5; k++ {
				id++
				inj.Enqueue(mkPacket(id, c, dst, 1+int(id)%6))
			}
			injs = append(injs, inj)
		}
	}
	seen := map[int64]bool{}
	for now := int64(0); now < 3000; now++ {
		m.Cycle(now)
		for _, inj := range injs {
			inj.Step(now)
		}
		sink.Step(now)
		for {
			p := sink.Pop(now)
			if p == nil {
				break
			}
			if seen[p.ID] {
				t.Fatalf("packet %d delivered twice", p.ID)
			}
			seen[p.ID] = true
		}
	}
	if len(seen) != int(id) {
		t.Fatalf("delivered %d of %d packets", len(seen), id)
	}
	if !m.Quiescent() {
		t.Error("mesh not quiescent after drain")
	}
}

func TestBackpressureStallsWithoutLoss(t *testing.T) {
	// A sink that never pops forces the wormhole to stall; nothing may be
	// lost or duplicated, and after the sink starts draining everything
	// arrives.
	m, _ := NewMesh(2, 2, 2)
	src, dst := Coord{1, 1}, Coord{0, 0}
	inj := m.AttachInjector(src)
	sink := m.AttachSink(dst, 2, 1)
	for i := int64(1); i <= 4; i++ {
		inj.Enqueue(mkPacket(i, src, dst, 4))
	}
	// Phase 1: consumer never pops; the ready list (1 packet) and the
	// flit buffer (2 flits) both fill and backpressure freezes the mesh.
	for now := int64(0); now < 100; now++ {
		m.Cycle(now)
		inj.Step(now)
		sink.Step(now)
	}
	if sink.Ready() != 1 {
		t.Fatalf("sink ready = %d, want 1", sink.Ready())
	}
	if sink.Occupied() != 2 {
		t.Fatalf("sink occupancy = %d, want full (2)", sink.Occupied())
	}
	// Phase 2: drain.
	var got []*Packet
	for now := int64(100); now < 400; now++ {
		m.Cycle(now)
		inj.Step(now)
		sink.Step(now)
		if p := sink.Pop(now); p != nil {
			got = append(got, p)
		}
	}
	if len(got) != 4 {
		t.Fatalf("delivered %d packets, want 4", len(got))
	}
	for i, p := range got {
		if p.ID != int64(i+1) {
			t.Errorf("packet %d out of order (ID %d)", i, p.ID)
		}
	}
}

func TestInOrderPerSource(t *testing.T) {
	m, _ := NewMesh(4, 4, 4)
	dst := Coord{0, 0}
	sink := m.AttachSink(dst, 32, 4)
	src := Coord{3, 3}
	inj := m.AttachInjector(src)
	for i := int64(1); i <= 20; i++ {
		inj.Enqueue(mkPacket(i, src, dst, 1+int(i)%4))
	}
	got := run(t, m, inj, sink, 1000)
	if len(got) != 20 {
		t.Fatalf("delivered %d, want 20", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].ID < got[i-1].ID {
			t.Fatal("XY routing with FIFO buffers must preserve per-source order")
		}
	}
}

// TestPropertyAllPacketsDelivered fuzzes packet sets from random sources
// with random lengths and checks exactly-once delivery.
func TestPropertyAllPacketsDelivered(t *testing.T) {
	f := func(lens []uint8) bool {
		if len(lens) > 40 {
			lens = lens[:40]
		}
		m, err := NewMesh(4, 4, 4)
		if err != nil {
			return false
		}
		dst := Coord{0, 0}
		sink := m.AttachSink(dst, 16, 4)
		injs := map[Coord]*Injector{}
		want := 0
		for i, l := range lens {
			src := Coord{i % 4, (i / 4) % 4}
			if src == dst {
				continue
			}
			inj := injs[src]
			if inj == nil {
				inj = m.AttachInjector(src)
				injs[src] = inj
			}
			inj.Enqueue(mkPacket(int64(i+1), src, dst, 1+int(l)%16))
			want++
		}
		seen := map[int64]bool{}
		for now := int64(0); now < 20000 && len(seen) < want; now++ {
			m.Cycle(now)
			for _, inj := range injs {
				inj.Step(now)
			}
			sink.Step(now)
			for {
				p := sink.Pop(now)
				if p == nil {
					break
				}
				if seen[p.ID] {
					return false
				}
				seen[p.ID] = true
			}
		}
		return len(seen) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPacketConditions(t *testing.T) {
	a := &Packet{Kind: Read, Addr: dram.Address{Bank: 1, Row: 10}}
	b := &Packet{Kind: Write, Addr: dram.Address{Bank: 1, Row: 11}}
	c := &Packet{Kind: Read, Addr: dram.Address{Bank: 1, Row: 10}}
	d := &Packet{Kind: Read, Addr: dram.Address{Bank: 2, Row: 10}}
	if !BankConflict(a, b) || BankConflict(a, c) || BankConflict(a, d) {
		t.Error("BankConflict misclassifies")
	}
	if !DataContention(a, b) || DataContention(a, c) {
		t.Error("DataContention misclassifies")
	}
	if !RowHit(a, c) || RowHit(a, b) || RowHit(a, d) {
		t.Error("RowHit misclassifies")
	}
	if !BankInterleave(a, d) || BankInterleave(a, b) {
		t.Error("BankInterleave misclassifies")
	}
}

func TestFlitsForBeats(t *testing.T) {
	cases := []struct{ beats, want int }{{0, 1}, {1, 1}, {2, 1}, {3, 2}, {4, 2}, {9, 5}, {128, 64}}
	for _, c := range cases {
		if got := FlitsForBeats(c.beats); got != c.want {
			t.Errorf("FlitsForBeats(%d) = %d, want %d", c.beats, got, c.want)
		}
	}
}
