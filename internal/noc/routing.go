package noc

// Routing selects the mesh routing algorithm. The paper's implementation
// uses deterministic XY routing but states the GSS router works with any
// deadlock- and livelock-free routing logic, deterministic or adaptive;
// both are provided.
type Routing int

const (
	// RoutingXY is dimension-ordered routing: deterministic and minimal.
	RoutingXY Routing = iota
	// RoutingWestFirst is the west-first turn model: a packet makes all
	// of its westward moves first; afterwards it may choose adaptively
	// among the remaining productive directions, picking the least
	// congested output. Minimal and deadlock-free (the two turns into
	// west are forbidden), and livelock-free (every permitted move
	// decreases the distance to the destination).
	RoutingWestFirst
)

// String names the routing algorithm.
func (r Routing) String() string {
	if r == RoutingWestFirst {
		return "west-first"
	}
	return "xy"
}

// PermittedOutputs returns the set of productive output ports a packet at
// cur may take toward dst under the routing algorithm. XY returns exactly
// one port; west-first may return up to three.
func PermittedOutputs(r Routing, cur, dst Coord) []int {
	if cur == dst {
		return []int{PortLocal}
	}
	if r == RoutingXY {
		return []int{XYRoute(cur, dst)}
	}
	// West-first: all west hops happen before anything else.
	if dst.X < cur.X {
		return []int{PortWest}
	}
	var out []int
	if dst.X > cur.X {
		out = append(out, PortEast)
	}
	if dst.Y > cur.Y {
		out = append(out, PortSouth)
	}
	if dst.Y < cur.Y {
		out = append(out, PortNorth)
	}
	return out
}

// SetRouting installs the routing algorithm on every router of the mesh.
// Call before injecting traffic.
func (m *Mesh) SetRouting(r Routing) {
	for _, rt := range m.Routers {
		rt.routing = r
	}
}

// routeFor picks the output port a packet takes at this router, once, as
// its head flit arrives; the choice is pinned in the packet's
// PacketProgress so the packet requests a single channel for its whole
// residency. Deterministic routing needs no state; adaptive routing
// evaluates the congestion of the permitted outputs at arrival time —
// the paper's "packets given multiple routing paths by an adaptive
// routing logic can be scheduled to other flow controllers which are not
// busy".
func (r *Router) routeFor(p *Packet) int {
	if r.routing == RoutingXY {
		// Fast path: XY needs no candidate set and no allocation.
		return XYRoute(r.Pos, p.Dst)
	}
	opts := PermittedOutputs(r.routing, r.Pos, p.Dst)
	best := opts[0]
	if len(opts) > 1 {
		bestScore := -1 << 30
		for _, o := range opts {
			s := r.outputScore(o, p)
			if s > bestScore {
				best, bestScore = o, s
			}
		}
	}
	return best
}

// outputScore ranks an output for adaptive selection: free channels and
// available credits score high; a channel mid-transfer scores low.
func (r *Router) outputScore(out int, p *Packet) int {
	o := &r.Out[out]
	if o.link == nil {
		return -1 << 29
	}
	vc := vcOf(p, r.vcs)
	s := o.credits[vc]
	if a := &o.active[vc]; a.pp == nil {
		s += 1000
	} else {
		s -= a.pp.Pkt.Flits - a.pp.Sent // penalise long residual transfers
	}
	return s
}
