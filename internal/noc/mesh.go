package noc

import "fmt"

// Coord is a router position on the mesh. X grows eastward, Y southward.
type Coord struct{ X, Y int }

// String renders the coordinate as (x,y).
func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Port directions of a 5-port 2-D mesh router. Local connects to the
// node's network interface.
const (
	PortLocal = iota
	PortNorth
	PortEast
	PortSouth
	PortWest
	NumPorts
)

// PortName returns the conventional name of a port index.
func PortName(p int) string {
	switch p {
	case PortLocal:
		return "local"
	case PortNorth:
		return "north"
	case PortEast:
		return "east"
	case PortSouth:
		return "south"
	case PortWest:
		return "west"
	default:
		return fmt.Sprintf("port%d", p)
	}
}

// XYRoute returns the output port a packet at cur takes toward dst under
// dimension-ordered XY routing (X first, then Y): deterministic, minimal,
// deadlock- and livelock-free, as the paper's implementation uses.
func XYRoute(cur, dst Coord) int {
	switch {
	case dst.X > cur.X:
		return PortEast
	case dst.X < cur.X:
		return PortWest
	case dst.Y > cur.Y:
		return PortSouth
	case dst.Y < cur.Y:
		return PortNorth
	default:
		return PortLocal
	}
}

// HopDistance returns the XY hop count between two nodes.
func HopDistance(a, b Coord) int {
	dx, dy := a.X-b.X, a.Y-b.Y
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Mesh is one physical network: Width x Height routers plus the links
// between them. Request and response traffic use separate Mesh instances.
type Mesh struct {
	Width, Height int
	Routers       []*Router
	vcs           int

	links     []*Link
	injectors []*Injector
	sinks     []*Sink

	// ppFree is the mesh's PacketProgress free-list: entries are leased
	// as head flits arrive and returned as tail flits leave, so the
	// steady state recycles a small working set instead of allocating
	// one per packet-hop. Per-mesh (not global) so concurrent sweeps
	// stay race-free.
	ppFree []*PacketProgress

	// work is the mesh's activity ledger: flits in flight on links, flits
	// resident in router input buffers, and credits awaiting delivery.
	// Flits delivered into a sink's credit buffers leave the ledger — the
	// sink's consumer tracks them. While work is zero, Deliver and
	// Arbitrate are provably no-ops and the simulation kernel may skip
	// them; the checked-mode audit recomputes the ledger from the live
	// structures every cycle.
	work int64

	// OnWake, when set, is invoked as the ledger leaves zero — some
	// component outside the mesh's own phases (an injector launch, a
	// sink credit return) created work. The system uses it to reschedule
	// the mesh's kernel components.
	OnWake func()
}

// NewMesh builds a single-virtual-channel (classic wormhole) mesh with
// every input buffer holding bufFlits flits.
func NewMesh(width, height, bufFlits int) (*Mesh, error) {
	return NewMeshVC(width, height, bufFlits, 1)
}

// NewMeshVC builds a mesh whose input ports carry vcs virtual channels of
// bufFlits flits each. With vcs > 1, priority packets travel on the
// highest VC and overtake best-effort wormhole transfers at flit
// granularity — the buffer organisation the paper names as the
// alternative to packet splitting.
func NewMeshVC(width, height, bufFlits, vcs int) (*Mesh, error) {
	if width <= 0 || height <= 0 {
		return nil, fmt.Errorf("noc: invalid mesh %dx%d", width, height)
	}
	if bufFlits < 1 {
		return nil, fmt.Errorf("noc: input buffers need at least 1 flit, got %d", bufFlits)
	}
	if vcs < 1 || vcs > 4 {
		return nil, fmt.Errorf("noc: virtual channels must be 1..4, got %d", vcs)
	}
	m := &Mesh{Width: width, Height: height, vcs: vcs}
	// One contiguous arena for all routers: the per-cycle Arbitrate walk
	// touches sequential memory. The *Router view stays because pointers
	// into the arena are stable (the backing slice is never resized).
	arena := make([]Router, width*height)
	m.Routers = make([]*Router, width*height)
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			i := m.index(Coord{x, y})
			arena[i].init(Coord{x, y}, vcs, bufFlits)
			m.Routers[i] = &arena[i]
		}
	}
	// Wire neighbouring routers with links in both directions.
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			c := Coord{x, y}
			r := m.RouterAt(c)
			if x+1 < width {
				e := m.RouterAt(Coord{x + 1, y})
				m.connect(r, PortEast, e, PortWest)
				m.connect(e, PortWest, r, PortEast)
			}
			if y+1 < height {
				s := m.RouterAt(Coord{x, y + 1})
				m.connect(r, PortSouth, s, PortNorth)
				m.connect(s, PortNorth, r, PortSouth)
			}
		}
	}
	return m, nil
}

// VCs returns the number of virtual channels per input port.
func (m *Mesh) VCs() int { return m.vcs }

func (m *Mesh) index(c Coord) int { return c.Y*m.Width + c.X }

// RouterAt returns the router at a coordinate.
func (m *Mesh) RouterAt(c Coord) *Router {
	if c.X < 0 || c.X >= m.Width || c.Y < 0 || c.Y >= m.Height {
		panic(fmt.Sprintf("noc: coordinate %v outside %dx%d mesh", c, m.Width, m.Height))
	}
	return m.Routers[m.index(c)]
}

// connect wires src's output port to dst's input port with a 1-cycle link.
func (m *Mesh) connect(src *Router, srcPort int, dst *Router, dstPort int) {
	in, out := &dst.In[dstPort], &src.Out[srcPort]
	l := newLink(m, in, out)
	out.link = l
	for vc := range in.bufs {
		out.credits[vc] = in.bufs[vc].capacity
	}
	m.links = append(m.links, l)
}

// AttachInjector connects an injection source (a network interface) to the
// local input port of the router at c and returns the injection handle.
func (m *Mesh) AttachInjector(c Coord) *Injector {
	r := m.RouterAt(c)
	inj := newInjector(c, m.vcs)
	in := &r.In[PortLocal]
	for vc := range in.bufs {
		inj.credits[vc] = in.bufs[vc].capacity
	}
	inj.link = newLink(m, in, inj)
	m.links = append(m.links, inj.link)
	m.injectors = append(m.injectors, inj)
	return inj
}

// AttachSink connects the local output port of the router at c to a
// consumer. queueFlits sizes the credit-managed flit buffer of each VC;
// maxReady bounds how many reassembled packets may await the consumer
// before backpressure propagates into the mesh.
func (m *Mesh) AttachSink(c Coord, queueFlits, maxReady int) *Sink {
	r := m.RouterAt(c)
	s := newSink(m.vcs, queueFlits, maxReady)
	out := &r.Out[PortLocal]
	l := newLink(m, s.port, out)
	l.sink = s
	out.link = l
	for vc := range out.credits {
		out.credits[vc] = queueFlits
	}
	m.links = append(m.links, l)
	m.sinks = append(m.sinks, s)
	return s
}

// Deliver is the mesh's Deliver-phase work: every link moves the flit
// and credits launched last cycle to their destinations. Links with
// nothing pending are passed over; the iteration order of the rest is
// fixed (construction order), because same-cycle packet arrivals reach
// a shared allocator in this order.
func (m *Mesh) Deliver(now int64) {
	for _, l := range m.links {
		if l.flitPkt == nil && l.credPending == 0 {
			continue
		}
		l.deliver(now)
	}
}

// Arbitrate is the mesh's Arbitrate-phase work: every router holding at
// least one packet allocates free output channels and forwards at most
// one flit per output. Routers with no resident packet are skipped —
// with nothing buffered there is nothing to allocate or forward.
func (m *Mesh) Arbitrate(now int64) {
	for _, r := range m.Routers {
		if r.pending > 0 {
			r.step(now)
		}
	}
}

// Cycle advances the mesh one full cycle standalone: Deliver then
// Arbitrate. Unit tests and micro-benchmarks drive an isolated mesh
// this way; the full system registers the two phases with the
// simulation kernel instead.
func (m *Mesh) Cycle(now int64) {
	m.Deliver(now)
	m.Arbitrate(now)
}

// Activity returns the mesh's live work ledger: flits on links or in
// router buffers plus credits in flight. Zero means the mesh's Deliver
// and Arbitrate phases are no-ops until an injector or sink creates
// work again.
func (m *Mesh) Activity() int64 { return m.work }

// workAdd moves the activity ledger and fires OnWake on the idle-to-
// busy transition.
func (m *Mesh) workAdd(d int64) {
	idle := m.work == 0
	m.work += d
	if idle && m.work > 0 && m.OnWake != nil {
		m.OnWake()
	}
}

// getProgress leases a PacketProgress from the free-list (or allocates
// when the list is dry — cold start only, in steady state the pool
// recycles).
func (m *Mesh) getProgress() *PacketProgress {
	if n := len(m.ppFree); n > 0 {
		pp := m.ppFree[n-1]
		m.ppFree[n-1] = nil
		m.ppFree = m.ppFree[:n-1]
		return pp
	}
	return &PacketProgress{}
}

// putProgress returns a retired PacketProgress to the free-list, zeroed
// so a stale *Packet cannot leak through the pool.
func (m *Mesh) putProgress(pp *PacketProgress) {
	*pp = PacketProgress{}
	m.ppFree = append(m.ppFree, pp)
}

// Quiescent reports whether no packet occupies any buffer or link in the
// mesh — used by drain phases and tests.
func (m *Mesh) Quiescent() bool {
	for _, r := range m.Routers {
		for p := range r.In {
			if !r.In[p].empty() {
				return false
			}
		}
	}
	for _, l := range m.links {
		if l.busy() {
			return false
		}
	}
	return true
}
