// Package noc implements the on-chip network substrate: a 2-D mesh of
// wormhole routers with credit-based flit-level flow control, XY routing,
// winner-take-all output allocation, and network interfaces.
//
// Following the paper, memory request packets consist of body flits only
// (routing and SDRAM address information travel on sideband wires, OCP/AXI
// style), so splitting a packet does not add header overhead. One flit
// carries BeatsPerFlit data beats — the network link is bandwidth-matched
// to the DDR data bus (two beats per memory clock), so the single link
// into the memory subsystem is a first-order shared bottleneck, exactly
// the regime the paper's schedulers compete in. Requests and responses
// travel
// on physically separate request/response meshes, the usual deadlock-free
// arrangement for memory traffic.
//
// The flow-control policy of each router output is pluggable through the
// Allocator interface; the paper's GSS policy lives in internal/core and
// the conventional round-robin / priority-first policies in
// internal/router.
package noc

import (
	"fmt"

	"aanoc/internal/dram"
)

// Kind distinguishes read and write memory requests (the paper's R/W bit;
// the data-contention condition compares it).
type Kind int

const (
	Read Kind = iota
	Write
)

// String returns "R" or "W".
func (k Kind) String() string {
	if k == Write {
		return "W"
	}
	return "R"
}

// Class labels the application-level origin of a request; the paper's
// priority experiments (Table II) assign Demand packets to the priority
// service while everything else is best-effort.
type Class int

const (
	// ClassDemand is a microprocessor demand miss: the CPU stalls until
	// it is served.
	ClassDemand Class = iota
	// ClassPrefetch is a microprocessor prefetch: best-effort.
	ClassPrefetch
	// ClassMedia is multimedia streaming traffic (codecs, enhancers,
	// format converters): best-effort.
	ClassMedia
	// ClassPeripheral is low-rate peripheral/DMA traffic: best-effort.
	ClassPeripheral
)

// String returns a short class name.
func (c Class) String() string {
	switch c {
	case ClassDemand:
		return "demand"
	case ClassPrefetch:
		return "prefetch"
	case ClassMedia:
		return "media"
	case ClassPeripheral:
		return "peripheral"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Packet is a memory request or response travelling on one mesh. The
// request path carries the SDRAM coordinates used by SDRAM-aware flow
// control; the response path reuses the struct with Kind=Read and Flits
// sized to the returned data.
type Packet struct {
	ID       int64
	ParentID int64 // logical request this packet is a split of; ID if unsplit
	SrcCore  int   // index of the generating core (for stats)
	Src, Dst Coord

	Kind     Kind
	Class    Class
	Priority bool

	Addr  dram.Address
	Beats int // useful data beats requested by this packet

	// Flits is the packet length on the network (one flit carries
	// BeatsPerFlit beats). Write requests carry their data; read requests
	// are a single command flit; read responses carry the data.
	Flits int

	// APTag marks the last split of a logical request (or an unsplit
	// packet); the memory subsystem's partially-open-page policy issues
	// the column command with auto-precharge when it sees the tag.
	APTag bool

	// Splits is the number of packets the logical request was split into
	// (1 for unsplit packets).
	Splits int

	// Gen is the cycle the logical request was generated at the core;
	// latency is measured from it.
	Gen int64

	// Response marks packets on the response network.
	Response bool
}

// String gives a compact debug rendering.
func (p *Packet) String() string {
	pr := ""
	if p.Priority {
		pr = "!"
	}
	return fmt.Sprintf("#%d%s %s %s %s %dB/%df", p.ID, pr, p.Class, p.Kind, p.Addr, p.Beats, p.Flits)
}

// BankConflict reports the paper's bank-conflict condition between two
// consecutive requests: same bank, different row.
func BankConflict(prev, next *Packet) bool {
	return prev.Addr.Bank == next.Addr.Bank && prev.Addr.Row != next.Addr.Row
}

// DataContention reports the paper's data-contention condition: a read
// following a write or a write following a read (bidirectional data bus
// turnaround).
func DataContention(prev, next *Packet) bool {
	return prev.Kind != next.Kind
}

// RowHit reports the row-buffer-hit condition: same bank, same row.
func RowHit(prev, next *Packet) bool {
	return prev.Addr.Bank == next.Addr.Bank && prev.Addr.Row == next.Addr.Row
}

// BankInterleave reports the bank-interleaving condition: different banks.
func BankInterleave(prev, next *Packet) bool {
	return prev.Addr.Bank != next.Addr.Bank
}

// BeatsPerFlit is the network link width in DDR data beats: one flit
// moves two beats per cycle, matching the per-cycle data rate of the
// SDRAM bus — as in the paper, where a 64-BL packet "takes at least 64
// clock cycles to transfer" over one link.
const BeatsPerFlit = 2

// FlitsForBeats returns the network length in flits of a payload of n
// beats (minimum one flit).
func FlitsForBeats(n int) int {
	if n <= BeatsPerFlit {
		return 1
	}
	return (n + BeatsPerFlit - 1) / BeatsPerFlit
}
