package noc

import "testing"

// TestMeshSteadyStateAllocs pins the flit hot path — injection, link
// traversal, router arbitration, forwarding, sink drain — at zero
// allocations per delivered packet once the progress pool and the queue
// backing arrays are warm. A regression here reintroduces per-flit or
// per-packet garbage on the saturated path.
func TestMeshSteadyStateAllocs(t *testing.T) {
	m, err := NewMesh(3, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	src, dst := Coord{0, 0}, Coord{2, 2}
	inj := m.AttachInjector(src)
	sink := m.AttachSink(dst, 16, 16)

	// One multi-flit packet recycled forever: the mesh must not care that
	// the same struct comes around again.
	p := &Packet{ID: 1, Src: src, Dst: dst, Kind: Write, Beats: 16}
	p.Flits = FlitsForBeats(p.Beats)

	now := int64(0)
	runOne := func() {
		inj.Enqueue(p)
		for {
			m.Cycle(now)
			sink.Step(now)
			inj.Step(now)
			now++
			if sink.Pop(now) != nil {
				return
			}
			if now > 1<<20 {
				t.Fatal("packet never arrived")
			}
		}
	}
	runOne() // warm pools and backing arrays

	if avg := testing.AllocsPerRun(200, runOne); avg != 0 {
		t.Errorf("mesh steady state allocates %.2f per packet, want 0", avg)
	}
}

// TestMeshSteadyStateAllocsContended repeats the pin with two flows
// crossing a shared router, so the arbitration path (multiple
// candidates, allocator scratch, want counters) is on the measured path.
func TestMeshSteadyStateAllocsContended(t *testing.T) {
	m, err := NewMesh(3, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	srcA, srcB, dst := Coord{0, 1}, Coord{1, 0}, Coord{2, 1}
	injA := m.AttachInjector(srcA)
	injB := m.AttachInjector(srcB)
	sink := m.AttachSink(dst, 16, 16)

	pa := &Packet{ID: 1, Src: srcA, Dst: dst, Kind: Write, Beats: 8}
	pa.Flits = FlitsForBeats(pa.Beats)
	pb := &Packet{ID: 2, Src: srcB, Dst: dst, Kind: Write, Beats: 8}
	pb.Flits = FlitsForBeats(pb.Beats)

	now := int64(0)
	runOne := func() {
		injA.Enqueue(pa)
		injB.Enqueue(pb)
		got := 0
		for got < 2 {
			m.Cycle(now)
			sink.Step(now)
			injA.Step(now)
			injB.Step(now)
			now++
			for sink.Pop(now) != nil {
				got++
			}
			if now > 1<<20 {
				t.Fatal("packets never arrived")
			}
		}
	}
	runOne()

	if avg := testing.AllocsPerRun(200, runOne); avg != 0 {
		t.Errorf("contended mesh steady state allocates %.2f per packet pair, want 0", avg)
	}
}
