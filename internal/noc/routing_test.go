package noc

import (
	"testing"
	"testing/quick"

	"aanoc/internal/dram"
)

func TestPermittedOutputsXY(t *testing.T) {
	outs := PermittedOutputs(RoutingXY, Coord{1, 1}, Coord{2, 2})
	if len(outs) != 1 || outs[0] != PortEast {
		t.Fatalf("XY permitted = %v", outs)
	}
}

func TestPermittedOutputsWestFirst(t *testing.T) {
	// Westward destinations are deterministic.
	if outs := PermittedOutputs(RoutingWestFirst, Coord{2, 1}, Coord{0, 2}); len(outs) != 1 || outs[0] != PortWest {
		t.Fatalf("westward permitted = %v", outs)
	}
	// East+south destinations offer both productive directions.
	outs := PermittedOutputs(RoutingWestFirst, Coord{0, 0}, Coord{2, 2})
	if len(outs) != 2 {
		t.Fatalf("adaptive permitted = %v", outs)
	}
	has := map[int]bool{}
	for _, o := range outs {
		has[o] = true
	}
	if !has[PortEast] || !has[PortSouth] {
		t.Fatalf("adaptive permitted = %v, want east+south", outs)
	}
	// Local at the destination.
	if outs := PermittedOutputs(RoutingWestFirst, Coord{1, 1}, Coord{1, 1}); len(outs) != 1 || outs[0] != PortLocal {
		t.Fatalf("local permitted = %v", outs)
	}
}

// TestPropertyWestFirstIsMinimalAndLivelockFree: every permitted move
// strictly decreases the hop distance, so any selection policy reaches
// the destination.
func TestPropertyWestFirstIsMinimalAndLivelockFree(t *testing.T) {
	f := func(cx, cy, dx, dy uint8) bool {
		cur := Coord{int(cx) % 5, int(cy) % 5}
		dst := Coord{int(dx) % 5, int(dy) % 5}
		for _, r := range []Routing{RoutingXY, RoutingWestFirst} {
			for _, out := range PermittedOutputs(r, cur, dst) {
				next := cur
				switch out {
				case PortEast:
					next.X++
				case PortWest:
					next.X--
				case PortNorth:
					next.Y--
				case PortSouth:
					next.Y++
				case PortLocal:
					if cur != dst {
						return false
					}
					continue
				}
				if HopDistance(next, dst) != HopDistance(cur, dst)-1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyWestFirstForbidsTurnsIntoWest: the deadlock-freedom
// condition of the turn model — west is only ever taken as the very first
// moves, so no permitted set may combine west with anything else, and a
// packet that has moved east/north/south can never be offered west again
// (guaranteed because west is only permitted when dst.X < cur.X, which
// minimal eastward progress never re-creates).
func TestPropertyWestFirstForbidsTurnsIntoWest(t *testing.T) {
	f := func(cx, cy, dx, dy uint8) bool {
		cur := Coord{int(cx) % 6, int(cy) % 6}
		dst := Coord{int(dx) % 6, int(dy) % 6}
		outs := PermittedOutputs(RoutingWestFirst, cur, dst)
		west := false
		for _, o := range outs {
			if o == PortWest {
				west = true
			}
		}
		return !west || len(outs) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveMeshDeliversEverything(t *testing.T) {
	m, err := NewMeshVC(4, 4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.SetRouting(RoutingWestFirst)
	// Responses fan out from the corner: the adaptive case with real
	// choices (east/south). Send from (0,0) to every node.
	src := Coord{0, 0}
	inj := m.AttachInjector(src)
	sinks := map[Coord]*Sink{}
	want := 0
	id := int64(0)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			c := Coord{x, y}
			if c == src {
				continue
			}
			sinks[c] = m.AttachSink(c, 8, 8)
			for k := 0; k < 3; k++ {
				id++
				p := mkVCPacket(id, src, c, 1+int(id)%6, false)
				inj.Enqueue(p)
				want++
			}
		}
	}
	got := 0
	for now := int64(0); now < 5000 && got < want; now++ {
		m.Cycle(now)
		inj.Step(now)
		for _, s := range sinks {
			s.Step(now)
			for s.Pop(now) != nil {
				got++
			}
		}
	}
	if got != want {
		t.Fatalf("delivered %d of %d under west-first routing", got, want)
	}
	if !m.Quiescent() {
		t.Error("mesh not quiescent")
	}
}

func TestAdaptiveRouteSpreadsAcrossPaths(t *testing.T) {
	// Saturate the east path and check that packets with an east+south
	// choice start taking south.
	m, _ := NewMeshVC(3, 3, 4, 1)
	m.SetRouting(RoutingWestFirst)
	src := Coord{0, 0}
	dst := Coord{2, 2}
	inj := m.AttachInjector(src)
	sink := m.AttachSink(dst, 8, 8)
	for i := int64(1); i <= 12; i++ {
		inj.Enqueue(mkVCPacket(i, src, dst, 12, false))
	}
	for now := int64(0); now < 2000; now++ {
		m.Cycle(now)
		inj.Step(now)
		sink.Step(now)
		for sink.Pop(now) != nil {
		}
	}
	east := m.RouterAt(src).Out[PortEast].BusyCycles
	south := m.RouterAt(src).Out[PortSouth].BusyCycles
	if east == 0 || south == 0 {
		t.Fatalf("adaptive routing did not spread load: east=%d south=%d", east, south)
	}
}

func TestXYDefaultUnchanged(t *testing.T) {
	// With the default routing, behaviour is untouched: a packet from
	// (2,2) to (0,0) leaves (2,2) westward only.
	m, _ := NewMesh(3, 3, 4)
	src, dst := Coord{2, 2}, Coord{0, 0}
	inj := m.AttachInjector(src)
	sink := m.AttachSink(dst, 8, 8)
	inj.Enqueue(&Packet{ID: 1, ParentID: 1, Src: src, Dst: dst, Flits: 4, Beats: 8, Splits: 1, Addr: dram.Address{Bank: 1}})
	for now := int64(0); now < 100; now++ {
		m.Cycle(now)
		inj.Step(now)
		sink.Step(now)
		for sink.Pop(now) != nil {
		}
	}
	r := m.RouterAt(src)
	if r.Out[PortWest].BusyCycles == 0 || r.Out[PortNorth].BusyCycles != 0 {
		t.Fatal("XY routing should use west first from (2,2)")
	}
}
