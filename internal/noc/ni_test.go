package noc

import "testing"

// slowQueueFlits recomputes the injection backlog from first principles
// (total enqueued flits minus launched head flits), the definition the
// incremental counter must track exactly.
func slowQueueFlits(inj *Injector) int {
	n := 0
	for vc, q := range inj.queues {
		for _, p := range q {
			n += p.Flits
		}
		n -= inj.sent[vc]
	}
	return n
}

// TestInjectorFlitAccounting drives an injector against a hand-computed
// schedule: the injector launches exactly one flit per cycle while it has
// credits, so after enqueueing packets of known lengths the backlog and
// its high-water mark follow directly.
func TestInjectorFlitAccounting(t *testing.T) {
	m, err := NewMesh(2, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	src, dst := Coord{0, 0}, Coord{1, 0}
	inj := m.AttachInjector(src)
	sink := m.AttachSink(dst, 8, 16)

	if inj.QueueFlits() != 0 || inj.QueueFlitsHWM() != 0 {
		t.Fatalf("fresh injector: flits=%d hwm=%d", inj.QueueFlits(), inj.QueueFlitsHWM())
	}
	// Enqueue 3+5+4 = 12 flits before any cycle runs: backlog and HWM
	// must both read 12.
	for i, flits := range []int{3, 5, 4} {
		inj.Enqueue(mkVCPacket(int64(i+1), src, dst, flits, false))
	}
	if got := inj.QueueFlits(); got != 12 {
		t.Fatalf("backlog after enqueue = %d, want 12", got)
	}
	if got := inj.QueueFlitsHWM(); got != 12 {
		t.Fatalf("HWM after enqueue = %d, want 12", got)
	}

	// Each cycle the injector launches exactly one flit (credits permit:
	// the sink drains continuously), so after k cycles the backlog is
	// 12-k; the HWM stays at the initial peak.
	now := int64(0)
	for k := 1; k <= 12; k++ {
		m.Cycle(now)
		sink.Step(now)
		for sink.Pop(now) != nil {
		}
		inj.Step(now)
		now++
		if got, want := inj.QueueFlits(), 12-k; got != want {
			t.Fatalf("cycle %d: backlog = %d, want %d", k, got, want)
		}
		if got := slowQueueFlits(inj); got != inj.QueueFlits() {
			t.Fatalf("cycle %d: incremental %d != recomputed %d", k, inj.QueueFlits(), got)
		}
	}
	if inj.QueueFlitsHWM() != 12 {
		t.Errorf("HWM after drain = %d, want 12", inj.QueueFlitsHWM())
	}
	// A late enqueue below the old peak must not move the HWM.
	inj.Enqueue(mkVCPacket(9, src, dst, 2, false))
	if inj.QueueFlits() != 2 || inj.QueueFlitsHWM() != 12 {
		t.Errorf("after late enqueue: flits=%d hwm=%d, want 2/12", inj.QueueFlits(), inj.QueueFlitsHWM())
	}
}

// TestSinkReadyHWM checks the ready-list high-water mark: packets pile up
// while the consumer does not pop, and the mark survives the drain.
func TestSinkReadyHWM(t *testing.T) {
	m, err := NewMesh(2, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	src, dst := Coord{0, 0}, Coord{1, 0}
	inj := m.AttachInjector(src)
	sink := m.AttachSink(dst, 8, 16)
	for i := 0; i < 4; i++ {
		inj.Enqueue(mkVCPacket(int64(i+1), src, dst, 1, false))
	}
	var now int64
	for ; now < 32; now++ { // no pops: packets accumulate in ready
		m.Cycle(now)
		sink.Step(now)
		inj.Step(now)
	}
	if sink.Ready() != 4 || sink.ReadyHWM() != 4 {
		t.Fatalf("ready=%d hwm=%d, want 4/4", sink.Ready(), sink.ReadyHWM())
	}
	for sink.Pop(now) != nil {
	}
	if sink.Ready() != 0 || sink.ReadyHWM() != 4 {
		t.Errorf("after drain: ready=%d hwm=%d, want 0/4", sink.Ready(), sink.ReadyHWM())
	}
}

// TestOutputPortGrants: each packet crossing a router costs exactly one
// allocator grant on the output port it leaves through.
func TestOutputPortGrants(t *testing.T) {
	m, err := NewMesh(2, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	src, dst := Coord{0, 0}, Coord{1, 0}
	inj := m.AttachInjector(src)
	sink := m.AttachSink(dst, 8, 16)
	const packets = 5
	for i := 0; i < packets; i++ {
		inj.Enqueue(mkVCPacket(int64(i+1), src, dst, 3, false))
	}
	for now := int64(0); now < 64; now++ {
		m.Cycle(now)
		sink.Step(now)
		for sink.Pop(now) != nil {
		}
		inj.Step(now)
	}
	east := m.RouterAt(src).Out[PortEast]
	if east.Grants != packets {
		t.Errorf("east grants = %d, want %d", east.Grants, packets)
	}
	if east.BusyCycles != packets*3 {
		t.Errorf("east busy cycles = %d, want %d", east.BusyCycles, packets*3)
	}
	if !east.Connected() {
		t.Error("east port should report connected")
	}
	if north := m.RouterAt(src).Out[PortNorth]; north.Connected() {
		t.Error("north edge port should report unconnected")
	}
}
