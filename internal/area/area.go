// Package area provides the analytic gate-count and power models that
// stand in for the paper's Synopsys Design Vision / PrimeTime PX flow
// (Tables IV and V). The models are compositional — per-flit buffer bits,
// per-port arbiter logic, token/counter logic, thread-buffer SRAM — with
// constants calibrated once against the paper's published module totals
// at the 45 nm OSU PDK operating point (400 MHz). Relative comparisons
// between designs then follow from structure, which is what the paper's
// tables argue about: the GSS flow controller is slightly larger than a
// conventional one but the buffer-free memory subsystem dominates.
package area

import "fmt"

// FlitBits is the datapath width of one flit (two 32-bit beats).
const FlitBits = 64

// Calibrated gate-cost constants (gates, or gates per bit). See the
// package comment: these are fitted to Table IV's CONV column and the
// structural deltas then produce the other columns.
const (
	gatesPerBufferBit = 7.58  // input-buffer storage incl. pointers
	crossbarPerBitSq  = 1.58  // crossbar cost coefficient (x ports^2 x bits / 25)
	routingLogic      = 800   // XY route computation per router
	convFCGates       = 3310  // round-robin flow controller (paper value)
	tokenLogicGates   = 1200  // 8-entry token table + comparators
	condLogicGates    = 900   // bank/row/kind condition comparators
	stiCounterGates   = 720   // per-bank idle counters (Fig. 4(b))
	ref4Overhead      = 1.097 // [4]'s controller is 9.7% larger (not event-driven)
	niGates           = 13035 // network interface (packetisation, reassembly)

	gatesPerSRAMBit = 26.0 // thread request/data buffer storage (MemMax)
	memSchedGates   = 20000
	memCtrlGates    = 18000
	reqEntryBits    = 72 // request buffer entry: address + control
)

// FlowController enumerates the flow-control hardware variants of
// Table IV.
type FlowController int

const (
	// FCConv is the conventional round-robin controller.
	FCConv FlowController = iota
	// FCRef4 is the SDRAM-aware controller of [4].
	FCRef4
	// FCGSS is the paper's GSS controller (token hybrid, Fig. 4(a)).
	FCGSS
	// FCGSSSTI adds the short turn-around interleaving counters
	// (Fig. 4(b)).
	FCGSSSTI
)

// FlowControllerGates returns the gate count of one flow controller.
func FlowControllerGates(k FlowController) int64 {
	switch k {
	case FCConv:
		return convFCGates
	case FCRef4:
		base := float64(convFCGates + tokenLogicGates + condLogicGates + stiCounterGates)
		return int64(base * ref4Overhead)
	case FCGSS:
		return convFCGates + tokenLogicGates + condLogicGates
	case FCGSSSTI:
		return convFCGates + tokenLogicGates + condLogicGates + stiCounterGates
	default:
		panic(fmt.Sprintf("area: unknown flow controller %d", k))
	}
}

// RouterGates returns the gate count of a router with the given port
// count and flow-control configuration. SDRAM-aware routers carry the
// special controller only on their (two) memory-path output channels; the
// remaining channels keep conventional controllers, as the paper's
// Table IV assumes.
func RouterGates(ports, bufFlits int, fc FlowController) int64 {
	buffers := int64(float64(ports*bufFlits*FlitBits) * gatesPerBufferBit)
	xbar := int64(crossbarPerBitSq * float64(ports*ports*FlitBits) / 25.0 * 5)
	g := buffers + xbar + routingLogic
	special := 0
	if fc != FCConv {
		special = 2
		if special > ports {
			special = ports
		}
	}
	g += int64(special) * FlowControllerGates(fc)
	g += int64(ports-special) * FlowControllerGates(FCConv)
	return g
}

// MemSubsystem enumerates the memory subsystem variants.
type MemSubsystem int

const (
	// MemMax is the conventional subsystem: 4 threads x (32-entry request
	// buffer + 32-flit data buffer) plus scheduler and controller.
	MemMax MemSubsystem = iota
	// MemSimple is the paper's [4]-style subsystem: input FIFO,
	// PRE/RAS/CAS buffers, output buffer, no reordering.
	MemSimple
	// MemSimpleAP is the SAGM subsystem: auto-precharge replaces most of
	// the PRE buffer entries.
	MemSimpleAP
)

// MemSubsystemGates returns the subsystem's gate count.
func MemSubsystemGates(k MemSubsystem) int64 {
	switch k {
	case MemMax:
		bufBits := 4 * 32 * (reqEntryBits + FlitBits)
		return int64(float64(bufBits)*gatesPerSRAMBit) + memSchedGates + memCtrlGates
	case MemSimple:
		inFIFO := 26 * reqEntryBits
		stage := (8 + 6 + 6) * reqEntryBits // PRE + RAS + CAS buffers
		outBuf := 32 * FlitBits
		return int64(float64(inFIFO+stage+outBuf)*gatesPerSRAMBit) + memCtrlGates
	case MemSimpleAP:
		inFIFO := 26 * reqEntryBits
		stage := (2 + 6 + 6) * reqEntryBits // AP shrinks the PRE buffer
		outBuf := 32 * FlitBits
		apLogic := 2200
		return int64(float64(inFIFO+stage+outBuf)*gatesPerSRAMBit) + memCtrlGates + int64(apLogic)
	default:
		panic(fmt.Sprintf("area: unknown memory subsystem %d", k))
	}
}

// portsAt returns the port count of a mesh router at (x,y): one local
// port plus one per neighbour.
func portsAt(x, y, w, h int) int {
	p := 1
	if x > 0 {
		p++
	}
	if x < w-1 {
		p++
	}
	if y > 0 {
		p++
	}
	if y < h-1 {
		p++
	}
	return p
}

// NoCGates composes a whole design: all mesh routers (edge routers have
// fewer ports), one network interface per node, and the memory subsystem.
// gssRouters is the number of routers (nearest the memory) carrying the
// special flow controllers; the rest stay conventional.
func NoCGates(w, h, bufFlits int, fc FlowController, mem MemSubsystem, gssRouters int) int64 {
	var total int64
	n := 0
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			kind := FCConv
			if fc != FCConv && n < gssRouters {
				kind = fc
			}
			total += RouterGates(portsAt(x, y, w, h), bufFlits, kind)
			n++
		}
	}
	total += int64(w*h) * niGates
	total += MemSubsystemGates(mem)
	return total
}

// Table4Row is one design's line of Table IV.
type Table4Row struct {
	Design          string
	FlowController  int64
	Router          int64
	MemorySubsystem int64
	NoC3x3          int64
}

// Table4 reproduces the paper's gate-count comparison at the 400 MHz
// operating point: CONV, [4], and GSS+SAGM+STI. Three routers nearest the
// memory carry the special flow controllers, as in the paper.
func Table4() []Table4Row {
	const bufFlits = 16
	rows := []struct {
		name string
		fc   FlowController
		mem  MemSubsystem
	}{
		{"CONV", FCConv, MemMax},
		{"[4]", FCRef4, MemSimple},
		{"GSS+SAGM+STI", FCGSSSTI, MemSimpleAP},
	}
	out := make([]Table4Row, 0, len(rows))
	for _, r := range rows {
		out = append(out, Table4Row{
			Design:          r.name,
			FlowController:  FlowControllerGates(r.fc),
			Router:          RouterGates(5, bufFlits, r.fc),
			MemorySubsystem: MemSubsystemGates(r.mem),
			NoC3x3:          NoCGates(3, 3, bufFlits, r.fc, r.mem, 3),
		})
	}
	return out
}

// Power estimates average power in milliwatts for a design running at
// clockMHz with the observed memory utilization (the dominant activity
// indicator): P = k * f * gates * (c0 + c1*util). The constants are
// calibrated to the paper's Table V at the GSS+SAGM+STI points.
func Power(gates int64, clockMHz int, utilization float64) float64 {
	const (
		k  = 8.9e-7 // mW per MHz per gate at full activity scale
		c0 = 0.62   // clock tree + leakage share
		c1 = 0.55   // datapath activity share
	)
	return k * float64(clockMHz) * float64(gates) * (c0 + c1*utilization)
}
