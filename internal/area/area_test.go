package area

import (
	"math"
	"testing"
)

// within asserts got is within tol (fractional) of want.
func within(t *testing.T, name string, got, want int64, tol float64) {
	t.Helper()
	if want == 0 {
		t.Fatalf("%s: zero reference", name)
		return
	}
	if d := math.Abs(float64(got-want)) / float64(want); d > tol {
		t.Errorf("%s = %d, want %d (+-%.0f%%), off by %.1f%%", name, got, want, tol*100, d*100)
	}
}

// TestCalibrationAgainstPaperTable4 pins the analytic model to the
// paper's synthesis results: each module must stay within a few percent
// of the published gate count. These are calibration contracts — if a
// refactor moves a constant, this test shows which paper cell drifted.
func TestCalibrationAgainstPaperTable4(t *testing.T) {
	within(t, "conv flow controller", FlowControllerGates(FCConv), 3310, 0.001)
	within(t, "[4] flow controller", FlowControllerGates(FCRef4), 6732, 0.15)
	within(t, "GSS+STI flow controller", FlowControllerGates(FCGSSSTI), 6136, 0.02)

	within(t, "conv router", RouterGates(5, 16, FCConv), 56683, 0.03)
	within(t, "[4] router", RouterGates(5, 16, FCRef4), 62949, 0.03)
	within(t, "GSS router", RouterGates(5, 16, FCGSSSTI), 62721, 0.03)

	within(t, "conv memory subsystem", MemSubsystemGates(MemMax), 489898, 0.03)
	within(t, "[4] memory subsystem", MemSubsystemGates(MemSimple), 158874, 0.10)
	within(t, "SAGM memory subsystem", MemSubsystemGates(MemSimpleAP), 149245, 0.10)

	within(t, "conv 3x3 NoC", NoCGates(3, 3, 16, FCConv, MemMax, 0), 966250, 0.03)
	within(t, "[4] 3x3 NoC", NoCGates(3, 3, 16, FCRef4, MemSimple, 3), 661645, 0.03)
	within(t, "GSS 3x3 NoC", NoCGates(3, 3, 16, FCGSSSTI, MemSimpleAP, 3), 639481, 0.03)
}

func TestPaperHeadlineRatios(t *testing.T) {
	// The paper's headline area claims, as ratios.
	gss := NoCGates(3, 3, 16, FCGSSSTI, MemSimpleAP, 3)
	conv := NoCGates(3, 3, 16, FCConv, MemMax, 0)
	ref4 := NoCGates(3, 3, 16, FCRef4, MemSimple, 3)
	// "33.8% and 3.3% smaller than CONV and [4]".
	if r := 1 - float64(gss)/float64(conv); r < 0.28 || r > 0.40 {
		t.Errorf("GSS vs CONV area saving = %.1f%%, want ~33.8%%", r*100)
	}
	if r := 1 - float64(gss)/float64(ref4); r < 0.01 || r > 0.06 {
		t.Errorf("GSS vs [4] area saving = %.1f%%, want ~3.3%%", r*100)
	}
	// "our memory subsystem is 69.5% and 6.1% smaller".
	if r := 1 - float64(MemSubsystemGates(MemSimpleAP))/float64(MemSubsystemGates(MemMax)); r < 0.6 || r > 0.75 {
		t.Errorf("memory subsystem saving vs CONV = %.1f%%, want ~69.5%%", r*100)
	}
	// "our flow controller is 8.9% smaller than [4]".
	if r := 1 - float64(FlowControllerGates(FCGSSSTI))/float64(FlowControllerGates(FCRef4)); r < 0.05 || r > 0.13 {
		t.Errorf("flow controller saving vs [4] = %.1f%%, want ~8.9%%", r*100)
	}
	// "85.4% greater than a conventional flow controller".
	if r := float64(FlowControllerGates(FCGSSSTI))/float64(FlowControllerGates(FCConv)) - 1; r < 0.7 || r > 1.0 {
		t.Errorf("flow controller overhead vs CONV = %.1f%%, want ~85.4%%", r*100)
	}
}

func TestRouterGatesMonotoneInPorts(t *testing.T) {
	prev := int64(0)
	for p := 3; p <= 5; p++ {
		g := RouterGates(p, 16, FCConv)
		if g <= prev {
			t.Fatalf("router gates not monotone in ports: %d ports -> %d", p, g)
		}
		prev = g
	}
}

func TestNoCGatesScalesWithMesh(t *testing.T) {
	g33 := NoCGates(3, 3, 16, FCGSSSTI, MemSimpleAP, 3)
	g44 := NoCGates(4, 4, 16, FCGSSSTI, MemSimpleAP, 3)
	if g44 <= g33 {
		t.Fatal("4x4 NoC must exceed 3x3")
	}
}

func TestTable4Rows(t *testing.T) {
	rows := Table4()
	if len(rows) != 3 {
		t.Fatalf("Table4 rows = %d, want 3", len(rows))
	}
	if rows[0].Design != "CONV" || rows[2].Design != "GSS+SAGM+STI" {
		t.Fatalf("unexpected design order: %+v", rows)
	}
	if rows[2].NoC3x3 >= rows[0].NoC3x3 {
		t.Error("the proposed design must be smaller than CONV")
	}
}

func TestPowerModel(t *testing.T) {
	gss := NoCGates(3, 3, 16, FCGSSSTI, MemSimpleAP, 3)
	conv := NoCGates(3, 3, 16, FCConv, MemMax, 0)
	pG := Power(gss, 400, 0.7)
	pC := Power(conv, 400, 0.7)
	if pG <= 0 || pC <= pG {
		t.Fatalf("power ordering wrong: conv=%.1f gss=%.1f", pC, pG)
	}
	// Paper Table V at 400 MHz: ours 226.8 mW, CONV 351.6 mW.
	if pG < 150 || pG > 320 {
		t.Errorf("GSS power at 400 MHz = %.1f mW, want paper-scale (~227)", pG)
	}
	if r := pC / pG; r < 1.25 || r > 1.7 {
		t.Errorf("CONV/GSS power ratio = %.2f, want ~1.55", r)
	}
	// Power grows with clock and with activity.
	if Power(gss, 800, 0.7) <= pG || Power(gss, 400, 0.9) <= pG {
		t.Error("power must grow with clock and activity")
	}
}
