package appmodel

import (
	"testing"

	"aanoc/internal/dram"
	"aanoc/internal/noc"
)

func TestAllAppsValidate(t *testing.T) {
	for _, a := range Apps() {
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
}

func TestCoreCountsMatchPaper(t *testing.T) {
	// The paper: Blu-ray and single DTV have 9 cores (8 IPs + memory) on
	// 3x3; dual DTV has 16 cores (15 IPs + memory) on 4x4.
	cases := []struct {
		app   App
		cores int
		w, h  int
	}{
		{BluRay(), 8, 3, 3},
		{SingleDTV(), 8, 3, 3},
		{DualDTV(), 15, 4, 4},
	}
	for _, c := range cases {
		if len(c.app.Cores) != c.cores {
			t.Errorf("%s: %d cores, want %d", c.app.Name, len(c.app.Cores), c.cores)
		}
		if c.app.Width != c.w || c.app.Height != c.h {
			t.Errorf("%s: mesh %dx%d, want %dx%d", c.app.Name, c.app.Width, c.app.Height, c.w, c.h)
		}
		if c.app.MemAt != (noc.Coord{X: 0, Y: 0}) {
			t.Errorf("%s: memory subsystem must sit in the corner", c.app.Name)
		}
	}
}

func TestClockPointsMatchPaper(t *testing.T) {
	want := map[string]map[dram.Generation]int{
		"bluray": {dram.DDR1: 133, dram.DDR2: 266, dram.DDR3: 533},
		"sdtv":   {dram.DDR1: 166, dram.DDR2: 333, dram.DDR3: 667},
		"ddtv":   {dram.DDR1: 200, dram.DDR2: 400, dram.DDR3: 800},
	}
	for _, a := range Apps() {
		for gen, mhz := range want[a.Name] {
			if a.Clocks[gen] != mhz {
				t.Errorf("%s %s: clock %d, want %d", a.Name, gen, a.Clocks[gen], mhz)
			}
			if _, err := dram.Speed(gen, mhz); err != nil {
				t.Errorf("%s: no timing grade: %v", a.Name, err)
			}
		}
	}
}

func TestLoadsSaturate(t *testing.T) {
	// The evaluation regime needs offered load near or above the data-bus
	// capacity so utilization measures scheduling efficiency.
	for _, a := range Apps() {
		if l := a.TotalLoad(); l < 0.7 || l > 1.6 {
			t.Errorf("%s: open-loop load %v outside saturation band", a.Name, l)
		}
	}
}

func TestEveryAppHasOneDemandStream(t *testing.T) {
	for _, a := range Apps() {
		demand := 0
		for _, c := range a.Cores {
			for _, s := range c.Streams {
				if s.Class == noc.ClassDemand {
					demand++
					if !s.ClosedLoop {
						t.Errorf("%s %s: demand stream must be closed loop", a.Name, s.Name)
					}
				}
			}
		}
		if demand != 1 {
			t.Errorf("%s: %d demand streams, want 1 (the microprocessor)", a.Name, demand)
		}
	}
}

func TestLongPacketCoresPresent(t *testing.T) {
	// The paper's motivation: enhancer/format-converter packets of 64 BL
	// (128 beats) must exist in every model.
	for _, a := range Apps() {
		found := false
		for _, c := range a.Cores {
			for _, s := range c.Streams {
				for _, b := range s.Beats {
					if b >= 96 {
						found = true
					}
				}
			}
		}
		if !found {
			t.Errorf("%s: no long-packet streaming core", a.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("bluray"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("want error for unknown app")
	}
}

func TestHeavyCoresAdjacentToMemory(t *testing.T) {
	// A3MAP-style placement: the heaviest streaming core must be one hop
	// from the memory subsystem.
	for _, a := range Apps() {
		var heaviest Core
		var load float64
		for _, c := range a.Cores {
			var l float64
			for _, s := range c.Streams {
				l += s.LoadFrac
			}
			if l > load {
				load, heaviest = l, c
			}
		}
		if d := noc.HopDistance(heaviest.Pos, a.MemAt); d != 1 {
			t.Errorf("%s: heaviest core %s at distance %d, want 1", a.Name, heaviest.Name, d)
		}
	}
}

func TestScaledAppsValidate(t *testing.T) {
	for _, a := range Scaled() {
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
}

func TestScaledAppGeometry(t *testing.T) {
	b2 := BluRay2()
	if len(b2.Ports()) != 2 || len(b2.Cores) != 14 || b2.Width != 4 || b2.Height != 4 {
		t.Errorf("bluray2 geometry: %d ports, %d cores, %dx%d", len(b2.Ports()), len(b2.Cores), b2.Width, b2.Height)
	}
	q4 := QuadDTV()
	if len(q4.Ports()) != 4 || len(q4.Cores) != 32 || q4.Width != 6 || q4.Height != 6 {
		t.Errorf("ddtv4 geometry: %d ports, %d cores, %dx%d", len(q4.Ports()), len(q4.Cores), q4.Width, q4.Height)
	}
	// Paper apps stay single-port, and every scaled app's port 0 is the
	// canonical MemAt corner.
	for _, a := range Apps() {
		if len(a.Ports()) != 1 || a.Ports()[0] != a.MemAt {
			t.Errorf("%s: paper app should have the single MemAt port", a.Name)
		}
	}
	for _, a := range Scaled() {
		if a.Ports()[0] != a.MemAt {
			t.Errorf("%s: MemPorts[0] %v != MemAt %v", a.Name, a.Ports()[0], a.MemAt)
		}
	}
}

func TestScaledLoadsSaturatePerChannel(t *testing.T) {
	// Each scaled model must offer roughly one saturated SDRAM's load per
	// channel, otherwise the extra channels have nothing to absorb.
	for _, a := range Scaled() {
		perChannel := a.TotalLoad() / float64(len(a.Ports()))
		if perChannel < 0.6 {
			t.Errorf("%s offers %.2f open-loop load per channel (< 0.6, under-loaded)", a.Name, perChannel)
		}
	}
}

func TestByNameFindsScaled(t *testing.T) {
	for _, name := range []string{"bluray2", "ddtv4"} {
		a, err := ByName(name)
		if err != nil || a.Name != name {
			t.Errorf("ByName(%q) = %v, %v", name, a.Name, err)
		}
	}
	if len(Apps()) != 3 {
		t.Errorf("Apps() must stay the paper's three models, got %d", len(Apps()))
	}
}

func TestValidateRejectsBadPorts(t *testing.T) {
	a := BluRay2()
	a.MemPorts = []noc.Coord{{X: 3, Y: 3}, {X: 0, Y: 0}} // port 0 != MemAt
	if err := a.Validate(); err == nil {
		t.Error("accepted MemPorts[0] != MemAt")
	}
	b := BluRay2()
	b.MemPorts = []noc.Coord{{X: 0, Y: 0}, {X: 9, Y: 9}}
	if err := b.Validate(); err == nil {
		t.Error("accepted out-of-mesh memory port")
	}
	c := BluRay2()
	c.MemPorts = []noc.Coord{{X: 0, Y: 0}, {X: 0, Y: 0}}
	if err := c.Validate(); err == nil {
		t.Error("accepted duplicate memory ports")
	}
	d := BluRay2()
	d.MemPorts = []noc.Coord{{X: 0, Y: 0}, d.Cores[0].Pos}
	if err := d.Validate(); err == nil {
		t.Error("accepted a memory port on a core position")
	}
}
