// Package appmodel defines the three industrial multimedia applications
// the paper benchmarks — a Blu-ray player model, a single-DTV model (9
// cores each, 3x3 mesh) and a dual-DTV model (16 cores, 4x4 mesh) — as
// core/stream specifications for the traffic package, plus the Fig. 7
// style placement (memory subsystem in the corner, bandwidth-hungry cores
// adjacent, per A3MAP).
//
// The original traffic is proprietary; these models are the documented
// substitution. Core classes and packet-length mixes follow the paper's
// descriptions: H.264/MPEG codecs issue short motion-compensation reads
// (8-48 bytes — 2-12 beats on the 32-bit bus — many of them below the
// BL8 access granularity, the Fig. 2 mismatch), video enhancers and
// format converters issue 64-burst-length packets (128 beats),
// microprocessors issue cache-line demand misses (closed loop, several
// outstanding) plus prefetches, and audio/OSD/peripheral cores add
// low-rate sub-granularity background traffic. Offered loads are
// calibrated so the designs saturate the SDRAM, the paper's regime.
package appmodel

import (
	"fmt"

	"aanoc/internal/dram"
	"aanoc/internal/noc"
	"aanoc/internal/traffic"
)

// RowBeats is the row (page) size in data beats: a 2 KiB page over the
// paper's 32-bit data bus.
const RowBeats = 512

// Core is one IP block: a mesh position and its request streams.
type Core struct {
	Name    string
	Pos     noc.Coord
	Streams []traffic.Stream
}

// App is a complete application model.
type App struct {
	Name          string
	Width, Height int
	MemAt         noc.Coord
	// MemPorts lists the mesh ejection ports of the memory subsystem's
	// SDRAM channels, in channel order. Empty means the single port
	// MemAt (the paper's system); when set, MemPorts[0] must equal MemAt
	// so single-channel runs of a scaled model keep the canonical port.
	MemPorts []noc.Coord
	Cores    []Core
	// Clocks lists the paper's memory clock per DDR generation for this
	// application (Table I rows).
	Clocks map[dram.Generation]int
}

// Ports returns the memory channel ports, falling back to the single
// MemAt port for the paper's one-channel models.
func (a *App) Ports() []noc.Coord {
	if len(a.MemPorts) == 0 {
		return []noc.Coord{a.MemAt}
	}
	return a.MemPorts
}

// Validate checks positions and stream specifications.
func (a *App) Validate() error {
	if len(a.Cores) == 0 {
		return fmt.Errorf("appmodel: %s has no cores", a.Name)
	}
	if len(a.MemPorts) > 0 && a.MemPorts[0] != a.MemAt {
		return fmt.Errorf("appmodel: %s MemPorts[0] %v differs from MemAt %v", a.Name, a.MemPorts[0], a.MemAt)
	}
	seen := map[noc.Coord]string{}
	for i, p := range a.Ports() {
		if p.X < 0 || p.X >= a.Width || p.Y < 0 || p.Y >= a.Height {
			return fmt.Errorf("appmodel: %s memory port %d at %v outside %dx%d", a.Name, i, p, a.Width, a.Height)
		}
		if prev, dup := seen[p]; dup {
			return fmt.Errorf("appmodel: %s memory port %d collides with %s at %v", a.Name, i, prev, p)
		}
		seen[p] = fmt.Sprintf("memory port %d", i)
	}
	for _, c := range a.Cores {
		if c.Pos.X < 0 || c.Pos.X >= a.Width || c.Pos.Y < 0 || c.Pos.Y >= a.Height {
			return fmt.Errorf("appmodel: %s core %s at %v outside %dx%d", a.Name, c.Name, c.Pos, a.Width, a.Height)
		}
		if prev, dup := seen[c.Pos]; dup {
			return fmt.Errorf("appmodel: %s cores %s and %s share %v", a.Name, prev, c.Name, c.Pos)
		}
		seen[c.Pos] = c.Name
		for _, s := range c.Streams {
			if err := s.Validate(); err != nil {
				return fmt.Errorf("appmodel: %s core %s: %w", a.Name, c.Name, err)
			}
		}
	}
	return nil
}

// TotalLoad sums the open-loop offered load fractions (closed-loop demand
// traffic adds on top of this).
func (a *App) TotalLoad() float64 {
	var sum float64
	for _, c := range a.Cores {
		for _, s := range c.Streams {
			if !s.ClosedLoop {
				sum += s.LoadFrac
			}
		}
	}
	return sum
}

// rowRegion hands out disjoint 256-row regions so each stream walks its
// own buffers (cross-stream conflicts then come from bank sharing, as in
// a real frame-buffer layout).
func rowRegion(i int) (base, size int) { return (i * 256) % 4096, 256 }

// cpu builds the microprocessor core: a closed-loop demand stream (the
// paper's priority candidate) plus an open-loop prefetcher.
func cpu(name string, pos noc.Coord, region int, think int64, prefetchLoad float64) Core {
	base, size := rowRegion(region)
	return Core{
		Name: name, Pos: pos,
		Streams: []traffic.Stream{
			{
				Name: name + ".demand", Class: noc.ClassDemand,
				ReadFrac: 0.8, Beats: []int{8}, ClosedLoop: true, ThinkTime: think,
				MaxOutstanding: 4, // several misses in flight (Fig. 1 bursts)
				Pattern:        traffic.Random, RowBase: base, RowRange: size, BankOffset: region,
			},
			{
				Name: name + ".prefetch", Class: noc.ClassPrefetch,
				ReadFrac: 1.0, Beats: []int{8, 16}, LoadFrac: prefetchLoad,
				Pattern: traffic.Streaming, RowBase: base, RowRange: size, BankOffset: region + 1,
			},
		},
	}
}

// codec builds a video decoder/encoder: short scattered motion
// compensation reads plus streaming frame writeback.
func codec(name string, pos noc.Coord, region int, mcLoad, wbLoad float64) Core {
	base, size := rowRegion(region)
	return Core{
		Name: name, Pos: pos,
		Streams: []traffic.Stream{
			{
				// H.264 motion compensation: short scattered reads, most
				// below the BL8 access granularity (the paper's Fig. 2
				// mismatch traffic), batched with occasional
				// macroblock-row fetches.
				Name: name + ".mc", Class: noc.ClassMedia,
				ReadFrac: 1.0, Beats: []int{2, 4, 4, 8, 12}, LoadFrac: mcLoad,
				Pattern: traffic.Random, RowBase: base, RowRange: size, BankOffset: region,
			},
			{
				Name: name + ".wb", Class: noc.ClassMedia,
				ReadFrac: 0.0, Beats: []int{12, 20}, LoadFrac: wbLoad,
				Pattern: traffic.Streaming, RowBase: base + 128, RowRange: size / 2, BankOffset: region + 2,
			},
		},
	}
}

// streamer builds a long-packet streaming core (video enhancer, format
// converter, scaler, disc I/O): the paper's 64-BL packets.
func streamer(name string, pos noc.Coord, region int, beats []int, load, readFrac float64) Core {
	base, size := rowRegion(region)
	return Core{
		Name: name, Pos: pos,
		Streams: []traffic.Stream{
			{
				Name: name + ".stream", Class: noc.ClassMedia,
				ReadFrac: readFrac, Beats: beats, LoadFrac: load,
				Pattern: traffic.Streaming, RowBase: base, RowRange: size, BankOffset: region,
			},
		},
	}
}

// background builds a low-rate core (audio DSP, OSD, peripherals).
func background(name string, pos noc.Coord, region int, beats []int, load, readFrac float64, pat traffic.Pattern) Core {
	base, size := rowRegion(region)
	return Core{
		Name: name, Pos: pos,
		Streams: []traffic.Stream{
			{
				Name: name + ".bg", Class: noc.ClassPeripheral,
				ReadFrac: readFrac, Beats: beats, LoadFrac: load,
				Pattern: pat, RowBase: base, RowRange: size, BankOffset: region,
			},
		},
	}
}

// BluRay returns the 9-core Blu-ray player model on a 3x3 mesh (memory in
// the upper-left corner).
func BluRay() App {
	a := App{
		Name: "bluray", Width: 3, Height: 3, MemAt: noc.Coord{X: 0, Y: 0},
		Clocks: map[dram.Generation]int{dram.DDR1: 133, dram.DDR2: 266, dram.DDR3: 533},
		Cores: []Core{
			// Bandwidth-hungry cores adjacent to the memory (A3MAP-style).
			streamer("enhancer", noc.Coord{X: 1, Y: 0}, 1, []int{96, 128}, 0.30, 0.5),
			streamer("formatconv", noc.Coord{X: 0, Y: 1}, 2, []int{64, 96}, 0.20, 0.5),
			codec("h264", noc.Coord{X: 1, Y: 1}, 3, 0.10, 0.06),
			cpu("cpu", noc.Coord{X: 2, Y: 0}, 4, 40, 0.04),
			streamer("discio", noc.Coord{X: 0, Y: 2}, 5, []int{64}, 0.10, 0.3),
			background("gfx", noc.Coord{X: 2, Y: 1}, 6, []int{36}, 0.08, 0.6, traffic.Streaming),
			background("audio", noc.Coord{X: 1, Y: 2}, 7, []int{4, 12}, 0.03, 0.6, traffic.Streaming),
			background("periph", noc.Coord{X: 2, Y: 2}, 8, []int{2, 4}, 0.03, 0.5, traffic.Random),
		},
	}
	return a
}

// SingleDTV returns the 9-core single digital-television model on a 3x3
// mesh.
func SingleDTV() App {
	return App{
		Name: "sdtv", Width: 3, Height: 3, MemAt: noc.Coord{X: 0, Y: 0},
		Clocks: map[dram.Generation]int{dram.DDR1: 166, dram.DDR2: 333, dram.DDR3: 667},
		Cores: []Core{
			streamer("enhancer", noc.Coord{X: 1, Y: 0}, 1, []int{128}, 0.28, 0.5),
			streamer("scaler", noc.Coord{X: 0, Y: 1}, 2, []int{64}, 0.16, 0.5),
			codec("vdec", noc.Coord{X: 1, Y: 1}, 3, 0.10, 0.06),
			cpu("cpu", noc.Coord{X: 2, Y: 0}, 4, 40, 0.04),
			streamer("demux", noc.Coord{X: 0, Y: 2}, 5, []int{20, 36}, 0.06, 0.4),
			background("osd", noc.Coord{X: 2, Y: 1}, 6, []int{36}, 0.06, 0.6, traffic.Streaming),
			background("audio", noc.Coord{X: 1, Y: 2}, 7, []int{4, 12}, 0.03, 0.6, traffic.Streaming),
			background("periph", noc.Coord{X: 2, Y: 2}, 8, []int{2, 4}, 0.03, 0.5, traffic.Random),
		},
	}
}

// DualDTV returns the 16-core dual digital-television model on a 4x4 mesh:
// two full video pipelines plus shared infrastructure.
func DualDTV() App {
	return App{
		Name: "ddtv", Width: 4, Height: 4, MemAt: noc.Coord{X: 0, Y: 0},
		Clocks: map[dram.Generation]int{dram.DDR1: 200, dram.DDR2: 400, dram.DDR3: 800},
		Cores: []Core{
			streamer("enhancer0", noc.Coord{X: 1, Y: 0}, 1, []int{128}, 0.20, 0.5),
			streamer("enhancer1", noc.Coord{X: 0, Y: 1}, 2, []int{128}, 0.20, 0.5),
			codec("vdec0", noc.Coord{X: 1, Y: 1}, 3, 0.08, 0.05),
			codec("vdec1", noc.Coord{X: 2, Y: 0}, 4, 0.08, 0.05),
			streamer("scaler0", noc.Coord{X: 0, Y: 2}, 5, []int{64}, 0.12, 0.5),
			streamer("scaler1", noc.Coord{X: 2, Y: 1}, 6, []int{64}, 0.12, 0.5),
			cpu("cpu", noc.Coord{X: 3, Y: 0}, 7, 40, 0.04),
			streamer("demux0", noc.Coord{X: 1, Y: 2}, 8, []int{20, 36}, 0.05, 0.4),
			streamer("demux1", noc.Coord{X: 3, Y: 1}, 9, []int{20, 36}, 0.05, 0.4),
			background("gfx", noc.Coord{X: 2, Y: 2}, 10, []int{36}, 0.06, 0.6, traffic.Streaming),
			background("audio0", noc.Coord{X: 0, Y: 3}, 11, []int{4, 12}, 0.02, 0.6, traffic.Streaming),
			background("audio1", noc.Coord{X: 1, Y: 3}, 12, []int{4, 12}, 0.02, 0.6, traffic.Streaming),
			background("netio", noc.Coord{X: 3, Y: 2}, 13, []int{64}, 0.05, 0.4, traffic.Streaming),
			background("periph0", noc.Coord{X: 2, Y: 3}, 14, []int{2, 4}, 0.02, 0.5, traffic.Random),
			background("periph1", noc.Coord{X: 3, Y: 3}, 15, []int{2, 4}, 0.02, 0.5, traffic.Random),
		},
	}
}

// BluRay2 returns the scaled two-channel Blu-ray model ("bluray x2"):
// two full player pipelines on a 4x4 mesh, each placed around its own
// SDRAM channel port in an opposite corner. Every pipeline offers
// roughly one channel's worth of bandwidth, so the model saturates both
// channels — the regime the multi-channel subsystem exists for. With
// Channels=1 it degenerates to a (heavily oversubscribed) single-SDRAM
// system behind the canonical corner port.
func BluRay2() App {
	return App{
		Name: "bluray2", Width: 4, Height: 4,
		MemAt:    noc.Coord{X: 0, Y: 0},
		MemPorts: []noc.Coord{{X: 0, Y: 0}, {X: 3, Y: 3}},
		Clocks:   map[dram.Generation]int{dram.DDR1: 133, dram.DDR2: 266, dram.DDR3: 533},
		Cores: []Core{
			// Pipeline 0 around the (0,0) port.
			streamer("enhancer0", noc.Coord{X: 1, Y: 0}, 1, []int{96, 128}, 0.30, 0.5),
			streamer("formatconv0", noc.Coord{X: 0, Y: 1}, 2, []int{64, 96}, 0.20, 0.5),
			codec("codec0", noc.Coord{X: 1, Y: 1}, 3, 0.10, 0.06),
			cpu("cpu0", noc.Coord{X: 2, Y: 0}, 4, 40, 0.04),
			streamer("discio0", noc.Coord{X: 0, Y: 2}, 5, []int{64}, 0.10, 0.3),
			background("gfx0", noc.Coord{X: 2, Y: 1}, 6, []int{36}, 0.08, 0.6, traffic.Streaming),
			background("audio0", noc.Coord{X: 0, Y: 3}, 7, []int{4, 12}, 0.03, 0.6, traffic.Streaming),
			// Pipeline 1 mirrored around the (3,3) port.
			streamer("enhancer1", noc.Coord{X: 2, Y: 3}, 8, []int{96, 128}, 0.30, 0.5),
			streamer("formatconv1", noc.Coord{X: 3, Y: 2}, 9, []int{64, 96}, 0.20, 0.5),
			codec("codec1", noc.Coord{X: 2, Y: 2}, 10, 0.10, 0.06),
			cpu("cpu1", noc.Coord{X: 1, Y: 3}, 11, 40, 0.04),
			streamer("discio1", noc.Coord{X: 3, Y: 1}, 12, []int{64}, 0.10, 0.3),
			background("gfx1", noc.Coord{X: 1, Y: 2}, 13, []int{36}, 0.08, 0.6, traffic.Streaming),
			background("audio1", noc.Coord{X: 3, Y: 0}, 14, []int{4, 12}, 0.03, 0.6, traffic.Streaming),
		},
	}
}

// dtvQuadrant builds one DTV pipeline of the quad model: the SingleDTV
// core set placed in a 3x3 quadrant around its corner channel port,
// mirrored so the bandwidth-hungry cores stay adjacent to the port.
func dtvQuadrant(q int, corner noc.Coord, sx, sy int) []Core {
	at := func(dx, dy int) noc.Coord {
		return noc.Coord{X: corner.X + sx*dx, Y: corner.Y + sy*dy}
	}
	sfx := fmt.Sprintf("%d", q)
	r := q * 4
	return []Core{
		streamer("enhancer"+sfx, at(1, 0), r+1, []int{128}, 0.28, 0.5),
		streamer("scaler"+sfx, at(0, 1), r+2, []int{64}, 0.16, 0.5),
		codec("vdec"+sfx, at(1, 1), r+3, 0.10, 0.06),
		cpu("cpu"+sfx, at(2, 0), r+4, 40, 0.04),
		streamer("demux"+sfx, at(0, 2), r+5, []int{20, 36}, 0.06, 0.4),
		background("osd"+sfx, at(2, 1), r+6, []int{36}, 0.06, 0.6, traffic.Streaming),
		background("audio"+sfx, at(1, 2), r+7, []int{4, 12}, 0.03, 0.6, traffic.Streaming),
		background("periph"+sfx, at(2, 2), r+8, []int{2, 4}, 0.03, 0.5, traffic.Random),
	}
}

// QuadDTV returns the scaled four-channel DTV model ("ddtv x4" in the
// roadmap's naming: the dual-DTV workload doubled again): four complete
// DTV pipelines on a 6x6 mesh, one SDRAM channel port in each corner,
// each quadrant's pipeline placed around its own port. The aggregate
// offered load is roughly four single-DTV systems, saturating all four
// channels.
func QuadDTV() App {
	a := App{
		Name: "ddtv4", Width: 6, Height: 6,
		MemAt: noc.Coord{X: 0, Y: 0},
		MemPorts: []noc.Coord{
			{X: 0, Y: 0}, {X: 5, Y: 0}, {X: 0, Y: 5}, {X: 5, Y: 5},
		},
		Clocks: map[dram.Generation]int{dram.DDR1: 200, dram.DDR2: 400, dram.DDR3: 800},
	}
	a.Cores = append(a.Cores, dtvQuadrant(0, noc.Coord{X: 0, Y: 0}, 1, 1)...)
	a.Cores = append(a.Cores, dtvQuadrant(1, noc.Coord{X: 5, Y: 0}, -1, 1)...)
	a.Cores = append(a.Cores, dtvQuadrant(2, noc.Coord{X: 0, Y: 5}, 1, -1)...)
	a.Cores = append(a.Cores, dtvQuadrant(3, noc.Coord{X: 5, Y: 5}, -1, -1)...)
	return a
}

// LowUtil returns a deliberately under-loaded 3x3 model: the Blu-ray
// platform in a navigation/standby phase — only the microprocessor's
// demand misses (long think times), a trickle of prefetch, and sparse
// peripheral housekeeping. Most mesh cycles are quiescent, which is the
// regime the simulation kernel's activity-driven idle-skip targets; the
// equivalence tests and the low-utilization benchmarks run it. Not part
// of Apps(): the paper's tables evaluate the saturated models only.
func LowUtil() App {
	return App{
		Name: "lowutil", Width: 3, Height: 3, MemAt: noc.Coord{X: 0, Y: 0},
		Clocks: map[dram.Generation]int{dram.DDR1: 133, dram.DDR2: 266, dram.DDR3: 533},
		Cores: []Core{
			cpu("cpu", noc.Coord{X: 1, Y: 0}, 1, 400, 0.005),
			background("osd", noc.Coord{X: 0, Y: 1}, 2, []int{4, 12}, 0.004, 0.6, traffic.Streaming),
			background("periph", noc.Coord{X: 1, Y: 1}, 3, []int{2, 4}, 0.003, 0.5, traffic.Random),
		},
	}
}

// Apps returns the three benchmark models of the paper's evaluation.
func Apps() []App { return []App{BluRay(), SingleDTV(), DualDTV()} }

// Scaled returns the multi-channel scaled variants: the models that
// exist to exercise 2-4 SDRAM channels beyond the paper's single-SDRAM
// systems.
func Scaled() []App { return []App{BluRay2(), QuadDTV()} }

// ByName looks an application model up by its short name, covering both
// the paper's benchmarks and the scaled multi-channel variants.
func ByName(name string) (App, error) {
	for _, a := range Apps() {
		if a.Name == name {
			return a, nil
		}
	}
	for _, a := range Scaled() {
		if a.Name == name {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("appmodel: unknown application %q (want bluray, sdtv, ddtv, bluray2 or ddtv4)", name)
}
