package scenario

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"aanoc/internal/appmodel"
	"aanoc/internal/sweep"
	"aanoc/internal/system"
)

func builtins() []appmodel.App {
	return append(appmodel.Apps(), appmodel.Scaled()...)
}

// TestGenerateDeterministic pins the generator's determinism contract:
// the same (seed, options) returns a deeply-equal spec, and the specs
// resolve to configurations with equal sweep fingerprints — so a
// regenerated scenario hits the sweep cache instead of re-simulating.
func TestGenerateDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		a := Generate(seed, GenOptions{})
		b := Generate(seed, GenOptions{})
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two Generate calls disagree", seed)
		}
		ca, err := a.SystemConfig(Run{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cb, err := b.SystemConfig(Run{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		fa, oka := sweep.Fingerprint(ca)
		fb, okb := sweep.Fingerprint(cb)
		if !oka || !okb || fa != fb {
			t.Fatalf("seed %d: fingerprints diverge (%q vs %q)", seed, fa, fb)
		}
	}
	if reflect.DeepEqual(Generate(1, GenOptions{}), Generate(2, GenOptions{})) {
		t.Fatal("different seeds generated identical specs")
	}
}

// TestGenerateValidates asserts every generated spec passes Validate —
// the generator is not allowed to emit scenarios the platform rejects.
func TestGenerateValidates(t *testing.T) {
	for seed := uint64(1); seed <= 200; seed++ {
		if err := Generate(seed, GenOptions{}).Validate(); err != nil {
			t.Fatalf("seed %d: generated spec invalid: %v", seed, err)
		}
	}
	// The CI large-mesh leg's options too.
	if err := Generate(3, GenOptions{MeshMin: 16, MeshMax: 16}).Validate(); err != nil {
		t.Fatalf("16x16 spec invalid: %v", err)
	}
}

// TestSpecRoundTrip: WriteJSON then Parse is the identity on specs.
func TestSpecRoundTrip(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		s := Generate(seed, GenOptions{})
		var buf bytes.Buffer
		if err := s.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := Parse(buf.Bytes())
		if err != nil {
			t.Fatalf("seed %d: reparse: %v", seed, err)
		}
		if !reflect.DeepEqual(s, back) {
			t.Fatalf("seed %d: spec did not round-trip through JSON", seed)
		}
		if s.Hash() != back.Hash() {
			t.Fatalf("seed %d: content hash changed across the round trip", seed)
		}
	}
}

// TestFromAppRoundTrip: every builtin application model survives the
// trip to spec form and back deeply equal — the exactness the golden
// spec corpus (testdata/specs in the root package) relies on.
func TestFromAppRoundTrip(t *testing.T) {
	for _, a := range builtins() {
		s := FromApp(a)
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: FromApp spec invalid: %v", a.Name, err)
		}
		back, err := s.App()
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if !reflect.DeepEqual(a, back) {
			t.Fatalf("%s: FromApp(a).App() != a", a.Name)
		}
	}
}

// TestParseErrors pins the Parse error contract: non-spec JSON wraps
// ErrParse, well-formed JSON describing an impossible scenario wraps
// ErrSpec or a field sentinel — and nothing panics.
func TestParseErrors(t *testing.T) {
	valid := func() *Spec { return FromApp(appmodel.BluRay()) }
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"syntax", []byte(`{"name":`), ErrParse},
		{"empty", nil, ErrParse},
		{"unknown-field", []byte(`{"name":"x","bogus":1}`), ErrParse},
		{"type-mismatch", []byte(`{"name":3}`), ErrParse},
		{"trailing-data", append(mustJSON(t, valid()), []byte("{}")...), ErrParse},
		{"no-name", []byte(`{"mesh":{"width":3,"height":3},"memPorts":[{"x":0,"y":0}]}`), ErrSpec},
		{"no-ports", []byte(`{"name":"x","mesh":{"width":3,"height":3}}`), ErrSpec},
		{"bad-class", mutate(t, valid(), func(s *Spec) { s.Cores[0].Streams[0].Class = "bulk" }), ErrSpec},
		{"bad-pattern", mutate(t, valid(), func(s *Spec) { s.Cores[0].Streams[0].Pattern = "zigzag" }), ErrSpec},
		{"bad-clock", mutate(t, valid(), func(s *Spec) { s.Clocks.DDR2 = 250 }), ErrSpec},
		{"missing-clock", mutate(t, valid(), func(s *Spec) { s.Clocks.DDR1 = 0 }), ErrSpec},
		{"core-on-port", mutate(t, valid(), func(s *Spec) { s.Cores[0].At = s.MemPorts[0] }), ErrSpec},
		{"bad-generation", mutate(t, valid(), func(s *Spec) { s.Run = &Run{Generation: 9} }), ErrBadGeneration},
		{"bad-channels", mutate(t, valid(), func(s *Spec) { s.Run = &Run{Channels: 2} }), ErrBadChannels},
		{"bad-scheme", mutate(t, valid(), func(s *Spec) { s.Run = &Run{Scheme: "stripe"} }), ErrBadScheme},
		{"bad-scheduler", mutate(t, valid(), func(s *Spec) { s.Run = &Run{Scheduler: "fcfs"} }), ErrUnknownScheduler},
		{"bad-sample-every", mutate(t, valid(), func(s *Spec) { s.Run = &Run{SampleEvery: -1} }), ErrBadSampleEvery},
		{"bad-cycles", mutate(t, valid(), func(s *Spec) { s.Run = &Run{Cycles: -5} }), ErrSpec},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.data)
			if !errors.Is(err, tc.want) {
				t.Fatalf("Parse error %v, want %v", err, tc.want)
			}
		})
	}
}

// mustJSON marshals a spec for test input.
func mustJSON(t *testing.T, s *Spec) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// mutate applies an edit to a freshly built spec and returns its JSON.
func mutate(t *testing.T, s *Spec, f func(*Spec)) []byte {
	t.Helper()
	f(s)
	return mustJSON(t, s)
}

// TestResolveSentinels drives the shared validation path directly with
// the same inputs the facade parity table (root package) uses, so a
// sentinel regression is caught on both sides of the API boundary.
func TestResolveSentinels(t *testing.T) {
	app := appmodel.BluRay()
	quad := appmodel.QuadDTV()
	cases := []struct {
		name string
		app  appmodel.App
		run  Run
		want error
	}{
		{"gen-high", app, Run{Generation: 9}, ErrBadGeneration},
		{"gen-negative", app, Run{Generation: -1}, ErrBadGeneration},
		{"channels-negative", app, Run{Channels: -1}, ErrBadChannels},
		{"channels-over-ports", app, Run{Channels: 2}, ErrBadChannels},
		{"channels-xor-odd", quad, Run{Channels: 3, Scheme: "chan-bank-xor"}, ErrBadChannels},
		{"scheme", app, Run{Scheme: "stripe"}, ErrBadScheme},
		{"scheduler", app, Run{Scheduler: "fcfs"}, ErrUnknownScheduler},
		{"sample-every", app, Run{SampleEvery: -1}, ErrBadSampleEvery},
		{"cycles", app, Run{Cycles: -1}, ErrSpec},
		{"bad-app", appmodel.App{}, Run{}, ErrSpec},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Resolve(tc.app, tc.run); !errors.Is(err, tc.want) {
				t.Fatalf("Resolve error %v, want %v", err, tc.want)
			}
		})
	}
	// The happy path resolves the documented defaults.
	cfg, err := Resolve(app, Run{})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Gen != 2 || cfg.Channels != 1 {
		t.Fatalf("defaults: gen=%d channels=%d, want 2/1", cfg.Gen, cfg.Channels)
	}
}

// TestMergeOverlay pins the zero-field overlay semantics: nonzero
// override fields win, zero fields fall through, PriorityDemand ORs.
func TestMergeOverlay(t *testing.T) {
	def := Run{Generation: 3, ClockMHz: 667, Channels: 2, Scheme: "chan-bank-xor",
		Scheduler: "dpq", PriorityDemand: true, Cycles: 1000, Warmup: 10, Seed: 7, SampleEvery: 50}
	got := Run{}.Merge(def)
	if !reflect.DeepEqual(got, def) {
		t.Fatalf("zero override did not inherit the spec block: %+v", got)
	}
	over := Run{Generation: 1, Scheduler: "staged", Cycles: 99}
	got = over.Merge(def)
	if got.Generation != 1 || got.Scheduler != "staged" || got.Cycles != 99 {
		t.Fatalf("nonzero override fields lost: %+v", got)
	}
	if got.ClockMHz != 667 || got.Channels != 2 || !got.PriorityDemand || got.Seed != 7 {
		t.Fatalf("zero override fields did not fall through: %+v", got)
	}
}

// runWorkload runs a spec with workload collection on and returns the
// spec and its report.
func runWorkload(t *testing.T, seed uint64, cycles int64) (*Spec, system.Result) {
	t.Helper()
	s := Generate(seed, GenOptions{})
	cfg, err := s.SystemConfig(Run{Cycles: cycles})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Design = system.GSSSAGM
	cfg.WorkloadStats = true
	res, err := system.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, res
}

// TestCalibrateClean: a generated scenario, run as declared, calibrates
// with zero misses — the headline contract of the scenario platform.
func TestCalibrateClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system calibration runs")
	}
	for _, seed := range []uint64{7, 11, 23} {
		s, res := runWorkload(t, seed, 20_000)
		if misses := Calibrate(s, res.Obs, Tolerance{}); len(misses) > 0 {
			for _, m := range misses {
				t.Errorf("seed %d: %s", seed, m)
			}
		}
	}
}

// TestCalibrateDetectsDrift proves the calibration layer is not
// vacuous: tampering with the declared distributions after the run must
// produce misses. Each mutation models a real generator bug.
func TestCalibrateDetectsDrift(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system calibration run")
	}
	s, res := runWorkload(t, 7, 20_000)

	// Find the busiest stream so the tampered checks clear MinSamples.
	bi := 0
	for i, w := range res.Obs.Workload {
		if w.Produced > res.Obs.Workload[bi].Produced {
			bi = i
		}
	}
	busiest := res.Obs.Workload[bi]
	locate := func(sp *Spec) *StreamSpec {
		for ci := range sp.Cores {
			if sp.Cores[ci].Name != busiest.Core {
				continue
			}
			for si := range sp.Cores[ci].Streams {
				if sp.Cores[ci].Streams[si].Name == busiest.Stream {
					return &sp.Cores[ci].Streams[si]
				}
			}
		}
		t.Fatalf("stream %s/%s not in spec", busiest.Core, busiest.Stream)
		return nil
	}
	copySpec := func() *Spec {
		back, err := Parse(mustJSON(t, s))
		if err != nil {
			t.Fatal(err)
		}
		return back
	}

	mutations := []struct {
		name   string
		tamper func(*Spec)
	}{
		{"read-frac", func(sp *Spec) {
			st := locate(sp)
			if st.ReadFrac < 0.5 {
				st.ReadFrac = 0.95
			} else {
				st.ReadFrac = 0.05
			}
		}},
		{"beats-menu", func(sp *Spec) { locate(sp).Beats = []int{3} }},
		{"phantom-stream", func(sp *Spec) {
			c := &sp.Cores[0]
			ghost := c.Streams[0]
			ghost.Name = "ghost"
			c.Streams = append(c.Streams, ghost)
		}},
	}
	for _, mu := range mutations {
		t.Run(mu.name, func(t *testing.T) {
			sp := copySpec()
			mu.tamper(sp)
			if misses := Calibrate(sp, res.Obs, Tolerance{}); len(misses) == 0 {
				t.Fatal("tampered spec calibrated clean — the check is vacuous")
			}
		})
	}
}
