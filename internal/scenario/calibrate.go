package scenario

import (
	"fmt"
	"math"

	"aanoc/internal/dram"
	"aanoc/internal/obs"
)

// Tolerance bounds the statistical-calibration checks. The defaults are
// seeded-run tolerances: wide enough that a correct generator passes
// every seed (the checks are deterministic for a given seed), tight
// enough that a drifted distribution — a wrong read mix, a missing
// burst-size bin, a mis-scaled load — fails (the mutation tests pin
// this non-vacuously).
type Tolerance struct {
	// MinSamples is the per-stream sample floor below which the
	// per-stream checks are skipped (default 64); the aggregate mixture
	// checks run at any size.
	MinSamples int64
	// Sigma scales the binomial/renewal standard-error term (default 5).
	Sigma float64
	// FracSlack is the absolute slack added to every fraction check
	// (default 0.02).
	FracSlack float64
	// RateSlack is the relative slack on the injection-rate check
	// (default 0.12, covering the ±40% arrival jitter's small-sample
	// bias and the start-time desynchronisation).
	RateSlack float64
}

func (t Tolerance) withDefaults() Tolerance {
	if t.MinSamples == 0 {
		t.MinSamples = 64
	}
	if t.Sigma == 0 {
		t.Sigma = 5
	}
	if t.FracSlack == 0 {
		t.FracSlack = 0.02
	}
	if t.RateSlack == 0 {
		t.RateSlack = 0.12
	}
	return t
}

// Miss is one calibration failure: an observed statistic outside its
// tolerance band around the spec's declared value. Core/Stream are
// empty for the aggregate (whole-workload) checks.
type Miss struct {
	Core   string
	Stream string
	// Metric names the check: "missing-workload", "read-frac",
	// "beats-share[8]", "rate".
	Metric string
	Want   float64
	Got    float64
	// Tol is the half-width of the accepted band around Want.
	Tol float64
}

// String renders the miss on one line.
func (m Miss) String() string {
	where := "aggregate"
	if m.Stream != "" {
		where = m.Core + "/" + m.Stream
	}
	return fmt.Sprintf("%s: %s: want %.4g ± %.4g, got %.4g", where, m.Metric, m.Want, m.Tol, m.Got)
}

// Calibrate compares a run's observed workload statistics against the
// spec's declared distributions and returns every miss (empty when the
// run is calibrated). The report must come from a run with workload
// collection enabled (system.Config.WorkloadStats); a spec stream with
// no workload entry is itself a miss.
//
// Per-stream checks (read fraction, burst-size histogram, open-loop
// injection rate) run above the MinSamples floor; the aggregate mixture
// checks weight each stream's declared distribution by its observed
// request count, so they are exact conditional expectations at any
// sample size and any backpressure level. The injection-rate check is
// skipped for streams with visible backpressure — a saturated open-loop
// stream legitimately produces less than its offered load, which is
// deficit, not drift.
func Calibrate(s *Spec, rep *obs.Report, tol Tolerance) []Miss {
	tol = tol.withDefaults()
	var misses []Miss

	byKey := map[string]obs.StreamWorkload{}
	for _, w := range rep.Workload {
		byKey[w.Core+"\x00"+w.Stream] = w
	}

	// Aggregate accumulators: expected counts weighted by each stream's
	// observed production.
	var totN, totReads, expReads, readVar float64
	expBeats := map[int]float64{}
	gotBeats := map[int]float64{}

	for _, c := range s.Cores {
		for _, st := range c.Streams {
			w, ok := byKey[c.Name+"\x00"+st.Name]
			if !ok {
				misses = append(misses, Miss{Core: c.Name, Stream: st.Name, Metric: "missing-workload"})
				continue
			}
			n := float64(w.Produced)
			totN += n
			totReads += float64(w.Reads)
			expReads += n * st.ReadFrac
			readVar += n * st.ReadFrac * (1 - st.ReadFrac)
			menu := menuShares(st.Beats)
			for b, share := range menu {
				expBeats[b] += n * share
			}
			for _, bin := range w.Beats {
				gotBeats[bin.Beats] += float64(bin.Count)
				if menu[bin.Beats] == 0 {
					// A burst size outside the declared menu is drift at
					// any sample count.
					misses = append(misses, Miss{
						Core: c.Name, Stream: st.Name,
						Metric: fmt.Sprintf("beats-share[%d]", bin.Beats),
						Want:   0, Got: float64(bin.Count) / math.Max(n, 1), Tol: 0,
					})
				}
			}
			if w.Produced >= tol.MinSamples {
				misses = append(misses, checkStream(c.Name, st, w, rep.Cycles, tol)...)
			}
		}
	}

	// Aggregate read fraction: sum of independent per-stream binomials.
	if totN > 0 {
		want := expReads / totN
		got := totReads / totN
		band := tol.Sigma*math.Sqrt(readVar)/totN + tol.FracSlack
		if math.Abs(got-want) > band {
			misses = append(misses, Miss{Metric: "read-frac", Want: want, Got: got, Tol: band})
		}
		for b, exp := range expBeats {
			want := exp / totN
			got := gotBeats[b] / totN
			band := tol.Sigma*math.Sqrt(want*(1-want)/totN) + tol.FracSlack
			if math.Abs(got-want) > band {
				misses = append(misses, Miss{
					Metric: fmt.Sprintf("beats-share[%d]", b),
					Want:   want, Got: got, Tol: band,
				})
			}
		}
	}
	return misses
}

// checkStream runs the per-stream checks for one calibrated stream.
func checkStream(core string, st StreamSpec, w obs.StreamWorkload, cycles int64, tol Tolerance) []Miss {
	var misses []Miss
	n := float64(w.Produced)

	want := st.ReadFrac
	got := float64(w.Reads) / n
	band := tol.Sigma*math.Sqrt(want*(1-want)/n) + tol.FracSlack
	if math.Abs(got-want) > band {
		misses = append(misses, Miss{Core: core, Stream: st.Name, Metric: "read-frac", Want: want, Got: got, Tol: band})
	}

	obsShare := map[int]float64{}
	for _, bin := range w.Beats {
		obsShare[bin.Beats] = float64(bin.Count) / n
	}
	for b, share := range menuShares(st.Beats) {
		got := obsShare[b]
		band := tol.Sigma*math.Sqrt(share*(1-share)/n) + tol.FracSlack
		if math.Abs(got-share) > band {
			misses = append(misses, Miss{
				Core: core, Stream: st.Name,
				Metric: fmt.Sprintf("beats-share[%d]", b),
				Want:   share, Got: got, Tol: band,
			})
		}
	}

	if !st.ClosedLoop && cycles > 0 {
		exp := float64(cycles) / expectedInterarrival(st.Beats, st.LoadFrac)
		// Visible backpressure means the stream could not realise its
		// offered load; the production count is then a deficit report,
		// not a generator statistic.
		if float64(w.BlockedCycles) <= 0.02*exp && exp >= float64(tol.MinSamples) {
			band := tol.RateSlack*exp + tol.Sigma*math.Sqrt(exp)
			if math.Abs(n-exp) > band {
				misses = append(misses, Miss{Core: core, Stream: st.Name, Metric: "rate", Want: exp, Got: n, Tol: band})
			}
		}
	}
	return misses
}

// menuShares returns each distinct burst size's draw probability under
// the uniform-with-repeats menu semantics.
func menuShares(beats []int) map[int]float64 {
	shares := map[int]float64{}
	if len(beats) == 0 {
		return shares
	}
	p := 1 / float64(len(beats))
	for _, b := range beats {
		shares[b] += p
	}
	return shares
}

// expectedInterarrival returns the mean open-loop request interval in
// cycles, reproducing the generator's arithmetic (integer rounding per
// menu entry; the ±40% jitter is mean-preserving up to its floor).
func expectedInterarrival(beats []int, load float64) float64 {
	var sum float64
	for _, b := range beats {
		sum += float64(int64(float64(dram.BurstCycles(b))/load + 0.5))
	}
	return sum / float64(len(beats))
}
