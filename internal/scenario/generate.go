package scenario

import (
	"fmt"

	"aanoc/internal/dram"
	"aanoc/internal/sim"
)

// GenOptions tunes the scenario generator's distributions. The zero
// value selects the defaults listed per field.
type GenOptions struct {
	// MeshMin/MeshMax bound the mesh side lengths (defaults 3 and 6;
	// set both to 16 for the CI's large-mesh leg).
	MeshMin, MeshMax int
	// MaxPorts caps the memory-port count (default 4, the corner
	// placement's maximum).
	MaxPorts int
	// LoadMin/LoadMax bound the aggregate open-loop offered load as a
	// fraction of one channel's data-bus bandwidth (defaults 0.35 and
	// 0.65), scaled by the drawn channel count. Below saturation the
	// calibration layer can check per-stream injection rates; the
	// saturated paper regime is the builtin apps' job.
	LoadMin, LoadMax float64
	// CoreFracMin/CoreFracMax bound the fraction of non-port mesh tiles
	// populated with cores (defaults 0.5 and 0.9).
	CoreFracMin, CoreFracMax float64
}

// withDefaults fills zero fields.
func (o GenOptions) withDefaults() GenOptions {
	if o.MeshMin == 0 {
		o.MeshMin = 3
	}
	if o.MeshMax == 0 {
		o.MeshMax = 6
	}
	if o.MaxPorts == 0 {
		o.MaxPorts = 4
	}
	if o.LoadMin == 0 {
		o.LoadMin = 0.35
	}
	if o.LoadMax == 0 {
		o.LoadMax = 0.65
	}
	if o.CoreFracMin == 0 {
		o.CoreFracMin = 0.5
	}
	if o.CoreFracMax == 0 {
		o.CoreFracMax = 0.9
	}
	return o
}

// rowRegion hands out disjoint 256-row regions by core index, mirroring
// the appmodel layout (cross-stream conflicts come from bank sharing).
func rowRegion(i int) (base, size int) { return (i * 256) % 4096, 256 }

// Generate builds one valid scenario from the seed: a pure function of
// (seed, options), so the same inputs always return a deeply-equal spec
// — the determinism contract the property tests pin. Every generated
// spec passes Validate; the statistical-calibration harness
// additionally asserts that running it reproduces the declared
// distributions.
func Generate(seed uint64, o GenOptions) *Spec {
	o = o.withDefaults()
	rng := sim.NewRNG(seed ^ 0x5ce1a210)

	span := o.MeshMax - o.MeshMin + 1
	w := o.MeshMin + rng.Intn(span)
	h := o.MeshMin + rng.Intn(span)

	// Memory ports sit in mesh corners, the canonical (0,0) first — the
	// paper's placement, scaled the way the bluray2/ddtv4 models scale.
	corners := []Coord{{0, 0}, {w - 1, h - 1}, {0, h - 1}, {w - 1, 0}}
	nPorts := sim.Pick(rng, []int{1, 1, 2, 2, 4})
	if nPorts > o.MaxPorts {
		nPorts = o.MaxPorts
	}
	if nPorts > len(corners) {
		nPorts = len(corners)
	}
	ports := corners[:nPorts]

	channels := 1 + rng.Intn(nPorts)
	scheme := ""
	if channels > 1 && channels&(channels-1) == 0 && rng.Intn(2) == 0 {
		scheme = "chan-bank-xor"
	}
	sched := sim.Pick(rng, []string{"", "", "", "", "dpq", "regulated", "staged"})

	s := &Spec{
		Name:     fmt.Sprintf("scn-%x", seed),
		Mesh:     Mesh{Width: w, Height: h},
		MemPorts: append([]Coord(nil), ports...),
		Clocks: Clocks{
			DDR1:   sim.Pick(rng, dram.Speeds(dram.DDR1)),
			DDR2:   sim.Pick(rng, dram.Speeds(dram.DDR2)),
			DDR3:   sim.Pick(rng, dram.Speeds(dram.DDR3)),
			DDR4:   sim.Pick(rng, dram.Speeds(dram.DDR4)),
			LPDDR3: sim.Pick(rng, dram.Speeds(dram.LPDDR3)),
		},
		Run: &Run{
			Generation:     1 + rng.Intn(int(dram.LPDDR3)),
			Channels:       channels,
			Scheme:         scheme,
			Scheduler:      sched,
			PriorityDemand: rng.Intn(2) == 0,
			Seed:           seed,
			// Subarray-parallel banks on a minority of scenarios, so the
			// checked matrix exercises the MASA structure end to end.
			Subarrays: sim.Pick(rng, []int{0, 0, 0, 2, 4}),
		},
	}

	// Free tiles, shuffled; the first nCores get cores.
	used := map[Coord]bool{}
	for _, p := range ports {
		used[p] = true
	}
	var free []Coord
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if c := (Coord{x, y}); !used[c] {
				free = append(free, c)
			}
		}
	}
	for i := len(free) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		free[i], free[j] = free[j], free[i]
	}
	frac := o.CoreFracMin + (o.CoreFracMax-o.CoreFracMin)*rng.Float64()
	nCores := int(frac*float64(len(free)) + 0.5)
	if nCores < 1 {
		nCores = 1
	}
	if nCores > len(free) {
		nCores = len(free)
	}

	// Build cores from templates; open-loop loads carry raw weights first
	// and are normalised to the aggregate target afterwards.
	type loaded struct{ core, stream int }
	var open []loaded
	var weights []float64
	target := (o.LoadMin + (o.LoadMax-o.LoadMin)*rng.Float64()) * float64(channels)
	for i := 0; i < nCores; i++ {
		at := free[i]
		var core CoreSpec
		var ws []float64
		switch kind := rng.Intn(100); {
		case kind < 35:
			core, ws = genStreamer(rng, i, at)
		case kind < 60:
			core, ws = genCodec(rng, i, at)
		case kind < 75:
			core, ws = genCPU(rng, i, at)
		default:
			core, ws = genBackground(rng, i, at)
		}
		for si := range core.Streams {
			if !core.Streams[si].ClosedLoop {
				open = append(open, loaded{len(s.Cores), si})
				weights = append(weights, ws[si])
			}
		}
		s.Cores = append(s.Cores, core)
	}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	for k, at := range open {
		load := weights[k] / sum * target
		if load < 0.003 {
			load = 0.003
		}
		if load > 0.9 {
			load = 0.9
		}
		s.Cores[at.core].Streams[at.stream].LoadFrac = load
	}
	return s
}

// genStreamer builds a long-packet streaming core (enhancer/scaler/IO
// class). The returned weights parallel the streams.
func genStreamer(rng *sim.RNG, i int, at Coord) (CoreSpec, []float64) {
	base, size := rowRegion(i)
	beats := sim.Pick(rng, [][]int{{64}, {128}, {96, 128}, {64, 96}, {20, 36}, {32, 64}})
	return CoreSpec{
		Name: fmt.Sprintf("streamer%d", i), At: at,
		Streams: []StreamSpec{{
			Name: fmt.Sprintf("streamer%d.stream", i), Class: "media",
			ReadFrac: sim.Pick(rng, []float64{0.3, 0.4, 0.5, 0.6}),
			Beats:    append([]int(nil), beats...),
			Pattern:  "streaming", BankOffset: i, RowBase: base, RowRange: size,
		}},
	}, []float64{2 + 2*rng.Float64()}
}

// genCodec builds a decoder/encoder: short scattered motion-compensation
// reads plus streaming writeback.
func genCodec(rng *sim.RNG, i int, at Coord) (CoreSpec, []float64) {
	base, size := rowRegion(i)
	name := fmt.Sprintf("codec%d", i)
	return CoreSpec{
		Name: name, At: at,
		Streams: []StreamSpec{
			{
				Name: name + ".mc", Class: "media",
				ReadFrac: 1.0, Beats: []int{2, 4, 4, 8, 12},
				Pattern: "random", BankOffset: i, RowBase: base, RowRange: size,
			},
			{
				Name: name + ".wb", Class: "media",
				ReadFrac: 0.0, Beats: []int{12, 20},
				Pattern: "streaming", BankOffset: i + 2, RowBase: base + 128, RowRange: size / 2,
			},
		},
	}, []float64{0.8 + 0.6*rng.Float64(), 0.5 + 0.4*rng.Float64()}
}

// genCPU builds a microprocessor: a closed-loop demand stream plus an
// open-loop prefetcher.
func genCPU(rng *sim.RNG, i int, at Coord) (CoreSpec, []float64) {
	base, size := rowRegion(i)
	name := fmt.Sprintf("cpu%d", i)
	return CoreSpec{
		Name: name, At: at,
		Streams: []StreamSpec{
			{
				Name: name + ".demand", Class: "demand",
				ReadFrac: 0.8, Beats: []int{8}, ClosedLoop: true,
				ThinkTime:      int64(20 + rng.Intn(100)),
				MaxOutstanding: 2 + rng.Intn(4),
				Pattern:        "random", BankOffset: i, RowBase: base, RowRange: size,
			},
			{
				Name: name + ".prefetch", Class: "prefetch",
				ReadFrac: 1.0, Beats: []int{8, 16},
				Pattern: "streaming", BankOffset: i + 1, RowBase: base, RowRange: size,
			},
		},
	}, []float64{0, 0.2 + 0.2*rng.Float64()}
}

// genBackground builds a low-rate core (audio/OSD/peripheral class).
func genBackground(rng *sim.RNG, i int, at Coord) (CoreSpec, []float64) {
	base, size := rowRegion(i)
	name := fmt.Sprintf("bg%d", i)
	pat := sim.Pick(rng, []string{"streaming", "random"})
	return CoreSpec{
		Name: name, At: at,
		Streams: []StreamSpec{{
			Name: name + ".bg", Class: "peripheral",
			ReadFrac: sim.Pick(rng, []float64{0.5, 0.6}),
			Beats:    append([]int(nil), sim.Pick(rng, [][]int{{2, 4}, {4, 12}, {36}})...),
			Pattern:  pat, BankOffset: i, RowBase: base, RowRange: size,
		}},
	}, []float64{0.15 + 0.2*rng.Float64()}
}
