// Package scenario defines the declarative workload/platform spec: a
// JSON description of a mesh, its memory ports, its cores and their
// request streams, plus optional run parameters — everything an
// application model hard-codes, as data. Specs are the repository's
// "as many scenarios as you can imagine" axis: every CLI loads one with
// -spec, the facade embeds one in Config.Spec, and the seeded generator
// (Generate) mass-produces valid ones from tunable distributions.
//
// The package owns the single validation path shared by the facade and
// the CLIs: Resolve turns an application model plus a Run block into a
// system.Config, rejecting bad generations, channel counts, schedulers
// and sampling periods with the same sentinel errors everywhere. Parse
// never panics on malformed input — it returns errors wrapping ErrParse
// (not JSON) or ErrSpec (valid JSON, invalid scenario), the contract the
// FuzzSpecParse target enforces.
package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"aanoc/internal/appmodel"
	"aanoc/internal/dram"
	"aanoc/internal/mapping"
	"aanoc/internal/memctrl"
	"aanoc/internal/noc"
	"aanoc/internal/system"
	"aanoc/internal/traffic"
)

// Sentinel errors; test with errors.Is. Parse wraps exactly one of
// ErrParse or ErrSpec; Resolve wraps the field-specific sentinels so the
// facade and the CLIs reject the same inputs for the same reasons.
var (
	// ErrParse reports input that is not the spec's JSON shape at all:
	// a syntax error, an unknown field, a type mismatch, trailing data.
	ErrParse = errors.New("malformed scenario spec")
	// ErrSpec reports well-formed JSON describing an impossible scenario
	// (overlapping cores, empty stream menus, bad clock grades, ...).
	ErrSpec = errors.New("invalid scenario spec")
	// ErrBadGeneration reports a DDR generation outside 1-5.
	ErrBadGeneration = errors.New("invalid DDR generation")
	// ErrBadChannels reports a channel count the memory ports (or the
	// interleaving scheme) cannot support.
	ErrBadChannels = errors.New("invalid channel count")
	// ErrBadScheme reports an unknown channel-interleaving scheme name.
	ErrBadScheme = errors.New("unknown channel scheme")
	// ErrUnknownScheduler reports an unknown memory-scheduler name.
	ErrUnknownScheduler = errors.New("unknown scheduler")
	// ErrBadSampleEvery reports a negative observability sampling period.
	ErrBadSampleEvery = errors.New("invalid sampling period")
)

// Coord is a mesh coordinate.
type Coord struct {
	X int `json:"x"`
	Y int `json:"y"`
}

// Mesh is the platform's mesh dimensions.
type Mesh struct {
	Width  int `json:"width"`
	Height int `json:"height"`
}

// Clocks lists the memory clock per DDR generation, in MHz. Every clock
// must be one of the generation's predefined speed grades
// (dram.Speeds); the classic three must be set so generation sweeps
// (the table drivers) work on any spec. The DDR4 and LPDDR3 clocks are
// optional: a run on those generations defaults to the fastest standard
// grade when the spec carries none, so every pre-existing spec keeps
// parsing, hashing and running byte-identically.
type Clocks struct {
	DDR1   int `json:"ddr1"`
	DDR2   int `json:"ddr2"`
	DDR3   int `json:"ddr3"`
	DDR4   int `json:"ddr4,omitempty"`
	LPDDR3 int `json:"lpddr3,omitempty"`
}

// StreamSpec is the declarative form of one request stream — the same
// fields as traffic.Stream with the enums spelled out as strings.
type StreamSpec struct {
	Name string `json:"name"`
	// Class is the traffic class: "demand", "prefetch", "media" or
	// "peripheral".
	Class string `json:"class"`
	// ReadFrac is the probability a request is a read.
	ReadFrac float64 `json:"readFrac"`
	// Beats lists the burst sizes (in data beats) the stream draws from
	// uniformly; repeat an entry to weight it.
	Beats []int `json:"beats"`
	// LoadFrac is the offered load as a fraction of the DRAM data-bus
	// bandwidth (open-loop streams only).
	LoadFrac float64 `json:"loadFrac,omitempty"`
	// ClosedLoop streams bound their outstanding requests and think for
	// ThinkTime cycles after each completion.
	ClosedLoop     bool  `json:"closedLoop,omitempty"`
	ThinkTime      int64 `json:"thinkTime,omitempty"`
	MaxOutstanding int   `json:"maxOutstanding,omitempty"`
	// Pattern is the address walk: "streaming" (default), "random" or
	// "strided".
	Pattern string `json:"pattern,omitempty"`
	// BankOffset rotates the stream's bank walk; RowBase/RowRange bound
	// its private row region.
	BankOffset int `json:"bankOffset,omitempty"`
	RowBase    int `json:"rowBase,omitempty"`
	RowRange   int `json:"rowRange"`
}

// CoreSpec is one IP block: a mesh position and its request streams.
type CoreSpec struct {
	Name    string       `json:"name"`
	At      Coord        `json:"at"`
	Streams []StreamSpec `json:"streams"`
}

// Run is a spec's optional run-parameter block, and the override shape
// the CLIs and the facade merge on top of it. Zero fields mean "use the
// default" (for an embedded block) or "keep the spec's value" (for an
// override), exactly like the zero fields of system.Config.
type Run struct {
	// Generation is the DDR generation 1-5 — DDR1/2/3, 4 for DDR4,
	// 5 for LPDDR3 (0 defaults to 2).
	Generation int `json:"generation,omitempty"`
	// ClockMHz overrides the spec's clock for the generation.
	ClockMHz int `json:"clockMHz,omitempty"`
	// Channels is the SDRAM channel count (0 defaults to 1).
	Channels int `json:"channels,omitempty"`
	// Scheme is the channel-interleaving policy: "bank-chan" (default)
	// or "chan-bank-xor".
	Scheme string `json:"scheme,omitempty"`
	// Scheduler is the memory-scheduler name ("default", "dpq",
	// "regulated", "staged"; empty keeps the design's controller).
	Scheduler string `json:"scheduler,omitempty"`
	// PriorityDemand serves CPU demand requests as priority packets.
	PriorityDemand bool `json:"priorityDemand,omitempty"`
	// Cycles is the simulated length (0 defaults to 200,000).
	Cycles int64 `json:"cycles,omitempty"`
	// Warmup is the cycle latency sampling starts after (0 defaults to
	// Cycles/10; -1 samples from cycle 0).
	Warmup int64 `json:"warmup,omitempty"`
	// Seed seeds the deterministic RNG (0 selects the fixed default).
	Seed uint64 `json:"seed,omitempty"`
	// SampleEvery enables time-series sampling at this interval.
	SampleEvery int64 `json:"sampleEvery,omitempty"`
	// Subarrays enables MASA-style subarray-level parallelism: this many
	// independent row buffers per bank (0 or 1: the classic bank).
	Subarrays int `json:"subarrays,omitempty"`
}

// Spec is one complete scenario: the platform, the workload, and
// (optionally) how to run it.
type Spec struct {
	Name string `json:"name"`
	Mesh Mesh   `json:"mesh"`
	// MemPorts lists the mesh ejection ports of the memory subsystem's
	// SDRAM channels, in channel order; MemPorts[0] is the canonical
	// single-channel port.
	MemPorts []Coord    `json:"memPorts"`
	Clocks   Clocks     `json:"clocks"`
	Cores    []CoreSpec `json:"cores"`
	// Run carries the spec's own run parameters; CLI flags and facade
	// fields override it field by field.
	Run *Run `json:"run,omitempty"`
}

// Parse decodes and validates one spec. Input that is not the spec's
// JSON shape (syntax errors, unknown fields, trailing data) returns an
// error wrapping ErrParse; well-formed JSON describing an invalid
// scenario wraps ErrSpec or a field sentinel. Parse never panics.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w: %v", ErrParse, err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("scenario: %w: trailing data after spec", ErrParse)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and parses a spec file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Validate checks the whole scenario: the platform and workload (via the
// application-model conversion) and, when present, the embedded run
// block (via Resolve, so a spec that validates here is exactly a spec
// every CLI and the facade will accept).
func (s *Spec) Validate() error {
	app, err := s.App()
	if err != nil {
		return err
	}
	for gen := dram.DDR1; gen <= dram.DDR3; gen++ {
		clk := app.Clocks[gen]
		if clk == 0 {
			return fmt.Errorf("scenario: %w: %s missing clock for DDR%d", ErrSpec, s.Name, gen)
		}
		if _, err := dram.Speed(gen, clk); err != nil {
			return fmt.Errorf("scenario: %w: %s DDR%d clock %d: %v", ErrSpec, s.Name, gen, clk, err)
		}
	}
	for _, gen := range []dram.Generation{dram.DDR4, dram.LPDDR3} {
		clk := app.Clocks[gen]
		if clk == 0 {
			continue // optional: the run layer defaults to the fastest grade
		}
		if _, err := dram.Speed(gen, clk); err != nil {
			return fmt.Errorf("scenario: %w: %s %s clock %d: %v", ErrSpec, s.Name, gen, clk, err)
		}
	}
	run := Run{}
	if s.Run != nil {
		run = *s.Run
	}
	if _, err := Resolve(app, run); err != nil {
		return err
	}
	return nil
}

// App converts the spec into the application model the system simulator
// runs. A single memory port folds to the nil-MemPorts form, so a spec
// written from a builtin app (FromApp) converts back to a deeply-equal
// model and runs byte-identically.
func (s *Spec) App() (appmodel.App, error) {
	if s.Name == "" {
		return appmodel.App{}, fmt.Errorf("scenario: %w: spec has no name", ErrSpec)
	}
	if s.Mesh.Width < 1 || s.Mesh.Height < 1 {
		return appmodel.App{}, fmt.Errorf("scenario: %w: %s mesh %dx%d", ErrSpec, s.Name, s.Mesh.Width, s.Mesh.Height)
	}
	if len(s.MemPorts) == 0 {
		return appmodel.App{}, fmt.Errorf("scenario: %w: %s has no memory ports", ErrSpec, s.Name)
	}
	app := appmodel.App{
		Name:   s.Name,
		Width:  s.Mesh.Width,
		Height: s.Mesh.Height,
		MemAt:  noc.Coord{X: s.MemPorts[0].X, Y: s.MemPorts[0].Y},
		Clocks: map[dram.Generation]int{
			dram.DDR1: s.Clocks.DDR1,
			dram.DDR2: s.Clocks.DDR2,
			dram.DDR3: s.Clocks.DDR3,
		},
	}
	// The optional generations enter the clock map only when set, so a
	// spec round-tripped from a DDR1-3 model stays deeply equal to it.
	if s.Clocks.DDR4 != 0 {
		app.Clocks[dram.DDR4] = s.Clocks.DDR4
	}
	if s.Clocks.LPDDR3 != 0 {
		app.Clocks[dram.LPDDR3] = s.Clocks.LPDDR3
	}
	if len(s.MemPorts) > 1 {
		for _, p := range s.MemPorts {
			app.MemPorts = append(app.MemPorts, noc.Coord{X: p.X, Y: p.Y})
		}
	}
	for _, c := range s.Cores {
		core := appmodel.Core{Name: c.Name, Pos: noc.Coord{X: c.At.X, Y: c.At.Y}}
		if core.Name == "" {
			return appmodel.App{}, fmt.Errorf("scenario: %w: %s has an unnamed core", ErrSpec, s.Name)
		}
		if len(c.Streams) == 0 {
			return appmodel.App{}, fmt.Errorf("scenario: %w: %s core %s has no streams", ErrSpec, s.Name, c.Name)
		}
		for _, st := range c.Streams {
			class, err := parseClass(st.Class)
			if err != nil {
				return appmodel.App{}, fmt.Errorf("scenario: %w: %s core %s stream %s: %v", ErrSpec, s.Name, c.Name, st.Name, err)
			}
			pat, err := parsePattern(st.Pattern)
			if err != nil {
				return appmodel.App{}, fmt.Errorf("scenario: %w: %s core %s stream %s: %v", ErrSpec, s.Name, c.Name, st.Name, err)
			}
			core.Streams = append(core.Streams, traffic.Stream{
				Name: st.Name, Class: class,
				ReadFrac: st.ReadFrac, Beats: st.Beats, LoadFrac: st.LoadFrac,
				ClosedLoop: st.ClosedLoop, ThinkTime: st.ThinkTime,
				MaxOutstanding: st.MaxOutstanding,
				Pattern:        pat, BankOffset: st.BankOffset,
				RowBase: st.RowBase, RowRange: st.RowRange,
			})
		}
		app.Cores = append(app.Cores, core)
	}
	if err := app.Validate(); err != nil {
		return appmodel.App{}, fmt.Errorf("scenario: %w: %v", ErrSpec, err)
	}
	return app, nil
}

// FromApp expresses an application model as a spec — the inverse of App,
// exact down to the single-port fold, so FromApp(a).App() is deeply
// equal to a for every valid model.
func FromApp(a appmodel.App) *Spec {
	s := &Spec{
		Name: a.Name,
		Mesh: Mesh{Width: a.Width, Height: a.Height},
		Clocks: Clocks{
			DDR1:   a.Clocks[dram.DDR1],
			DDR2:   a.Clocks[dram.DDR2],
			DDR3:   a.Clocks[dram.DDR3],
			DDR4:   a.Clocks[dram.DDR4],
			LPDDR3: a.Clocks[dram.LPDDR3],
		},
	}
	for _, p := range a.Ports() {
		s.MemPorts = append(s.MemPorts, Coord{X: p.X, Y: p.Y})
	}
	for _, c := range a.Cores {
		cs := CoreSpec{Name: c.Name, At: Coord{X: c.Pos.X, Y: c.Pos.Y}}
		for _, st := range c.Streams {
			cs.Streams = append(cs.Streams, StreamSpec{
				Name: st.Name, Class: st.Class.String(),
				ReadFrac: st.ReadFrac, Beats: st.Beats, LoadFrac: st.LoadFrac,
				ClosedLoop: st.ClosedLoop, ThinkTime: st.ThinkTime,
				MaxOutstanding: st.MaxOutstanding,
				Pattern:        patternName(st.Pattern), BankOffset: st.BankOffset,
				RowBase: st.RowBase, RowRange: st.RowRange,
			})
		}
		s.Cores = append(s.Cores, cs)
	}
	return s
}

// Hash returns the canonical content hash of the spec: sha256 over its
// JSON marshalling (deterministic — struct field order, no maps). Two
// specs with equal content hash alike regardless of how they were
// loaded or built; the sweep fingerprint keys on it.
func (s *Spec) Hash() string {
	data, err := json.Marshal(s)
	if err != nil {
		// A Spec is plain data; Marshal cannot fail on one.
		panic(fmt.Sprintf("scenario: hash marshal: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// WriteJSON serialises the spec, indented, to w — the aanoc-gen output
// format, accepted back by Parse.
func (s *Spec) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Merge fills r's zero fields from def: r is the override (CLI flags,
// facade fields), def the spec's embedded run block. PriorityDemand is
// a bool and ORs — an override cannot switch a spec's priority off, the
// same zero-value limitation every optional bool in the repo carries.
func (r Run) Merge(def Run) Run {
	if r.Generation == 0 {
		r.Generation = def.Generation
	}
	if r.ClockMHz == 0 {
		r.ClockMHz = def.ClockMHz
	}
	if r.Channels == 0 {
		r.Channels = def.Channels
	}
	if r.Scheme == "" {
		r.Scheme = def.Scheme
	}
	if r.Scheduler == "" {
		r.Scheduler = def.Scheduler
	}
	r.PriorityDemand = r.PriorityDemand || def.PriorityDemand
	if r.Cycles == 0 {
		r.Cycles = def.Cycles
	}
	if r.Warmup == 0 {
		r.Warmup = def.Warmup
	}
	if r.Seed == 0 {
		r.Seed = def.Seed
	}
	if r.SampleEvery == 0 {
		r.SampleEvery = def.SampleEvery
	}
	if r.Subarrays == 0 {
		r.Subarrays = def.Subarrays
	}
	return r
}

// Resolve is the one shared validation path from (application model,
// run parameters) to a runnable system configuration. The facade's
// Config.Validate and every CLI -spec path go through it, so they
// reject the same inputs with the same sentinels: ErrBadGeneration,
// ErrBadChannels, ErrBadScheme, ErrUnknownScheduler, ErrBadSampleEvery,
// ErrSpec.
func Resolve(app appmodel.App, r Run) (system.Config, error) {
	if err := app.Validate(); err != nil {
		return system.Config{}, fmt.Errorf("scenario: %w: %v", ErrSpec, err)
	}
	gen := dram.Generation(r.Generation)
	if r.Generation == 0 {
		gen = dram.DDR2
	}
	if gen < dram.DDR1 || gen > dram.LPDDR3 {
		return system.Config{}, fmt.Errorf("scenario: %w %d (want 1-5)", ErrBadGeneration, r.Generation)
	}
	if r.Channels < 0 {
		return system.Config{}, fmt.Errorf("scenario: %w %d", ErrBadChannels, r.Channels)
	}
	channels := r.Channels
	if channels == 0 {
		channels = 1
	}
	if ports := len(app.Ports()); channels > ports {
		return system.Config{}, fmt.Errorf("scenario: %w %d (app %s has %d memory port(s))",
			ErrBadChannels, r.Channels, app.Name, ports)
	}
	scheme := mapping.BankThenChannel
	if r.Scheme != "" {
		var err error
		scheme, err = mapping.ParseChannelScheme(r.Scheme)
		if err != nil {
			return system.Config{}, fmt.Errorf("scenario: %w %q", ErrBadScheme, r.Scheme)
		}
	}
	if scheme == mapping.ChannelThenBankXOR && channels&(channels-1) != 0 {
		return system.Config{}, fmt.Errorf("scenario: %w %d (%s needs a power of two)",
			ErrBadChannels, r.Channels, scheme)
	}
	sched := memctrl.SchedDefault
	if r.Scheduler != "" {
		var err error
		sched, err = memctrl.ParseScheduler(r.Scheduler)
		if err != nil {
			return system.Config{}, fmt.Errorf("scenario: %w %q", ErrUnknownScheduler, r.Scheduler)
		}
	}
	if r.Cycles < 0 {
		return system.Config{}, fmt.Errorf("scenario: %w: negative cycle count %d", ErrSpec, r.Cycles)
	}
	if r.SampleEvery < 0 {
		return system.Config{}, fmt.Errorf("scenario: %w %d", ErrBadSampleEvery, r.SampleEvery)
	}
	if r.Subarrays < 0 {
		return system.Config{}, fmt.Errorf("scenario: %w: negative subarray count %d", ErrSpec, r.Subarrays)
	}
	return system.Config{
		App: app, Gen: gen, ClockMHz: r.ClockMHz,
		Channels: channels, Scheme: scheme, Scheduler: sched,
		PriorityDemand: r.PriorityDemand,
		Cycles:         r.Cycles, Warmup: r.Warmup, Seed: r.Seed,
		SampleEvery: r.SampleEvery,
		Subarrays:   r.Subarrays,
	}, nil
}

// SystemConfig resolves the spec plus an override block into a runnable
// system configuration, with the spec's content hash attached so the
// sweep fingerprint distinguishes spec-driven runs by workload content.
func (s *Spec) SystemConfig(over Run) (system.Config, error) {
	app, err := s.App()
	if err != nil {
		return system.Config{}, err
	}
	base := Run{}
	if s.Run != nil {
		base = *s.Run
	}
	cfg, err := Resolve(app, over.Merge(base))
	if err != nil {
		return system.Config{}, err
	}
	cfg.SpecHash = s.Hash()
	return cfg, nil
}

// parseClass resolves a traffic-class name.
func parseClass(s string) (noc.Class, error) {
	for c := noc.ClassDemand; c <= noc.ClassPeripheral; c++ {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("unknown class %q (want demand, prefetch, media or peripheral)", s)
}

// parsePattern resolves an address-walk name; empty selects streaming.
func parsePattern(s string) (traffic.Pattern, error) {
	switch s {
	case "", "streaming":
		return traffic.Streaming, nil
	case "random":
		return traffic.Random, nil
	case "strided":
		return traffic.Strided, nil
	}
	return 0, fmt.Errorf("unknown pattern %q (want streaming, random or strided)", s)
}

// patternName inverts parsePattern.
func patternName(p traffic.Pattern) string {
	switch p {
	case traffic.Random:
		return "random"
	case traffic.Strided:
		return "strided"
	default:
		return "streaming"
	}
}
