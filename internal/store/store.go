// Package store is the persistent, content-addressed result store: the
// on-disk continuation of the sweep executor's in-process fingerprint
// cache. The in-memory cache (internal/sweep) dedupes repeated points
// within one Run call and dies with the process; this store keys the
// same canonical sweep.Fingerprint to a file, so repeated sweeps across
// processes, CI runs and machines only ever simulate a configuration
// once.
//
// Three properties make the cache safe to share:
//
//   - Content addressing. An entry's name is the sha256 fingerprint of
//     the fully resolved configuration — the same key the in-memory
//     cache uses — so a hit is exact by construction: there is nothing
//     to compare, only to verify.
//
//   - Version namespacing. Entries live under a namespace derived from
//     the store format revision, the obs report schema (obs.Schema) and
//     the pinned facade surface (api/aanoc.txt's sha256). Any reviewed
//     API change or schema bump rotates the namespace, so a binary can
//     never misread an entry written by a build with a different shape
//     of Result — stale namespaces are simply invisible (and reaped by
//     the LRU cap as the new namespace fills).
//
//   - Integrity checking. Every entry embeds the sha256 of its
//     serialized Result payload, written atomically (temp file +
//     rename). A torn write, a flipped bit or a truncated file fails
//     verification; Get deletes the entry and reports ErrCorrupt, and
//     the caller re-simulates — corruption costs one redundant run,
//     never a wrong result.
//
// The store is bounded: SizeBytes is capped (Options.MaxBytes) with
// least-recently-used eviction, where "use" is a verified Get (hits
// refresh the entry's mtime). Concurrent writers of one fingerprint are
// benign — every writer produces identical bytes for a deterministic
// simulator, and rename makes whichever lands last the single entry.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"aanoc/api"
	"aanoc/internal/obs"
	"aanoc/internal/system"
)

// formatVersion is the store's own layout revision: bump it when the
// envelope or the directory scheme changes incompatibly.
const formatVersion = 1

// DefaultMaxBytes caps the store at 1 GiB unless Options overrides it —
// roomy for hundreds of thousands of entries (a full-observability
// Result serializes to a few kilobytes) while bounded on CI runners.
const DefaultMaxBytes = 1 << 30

// ErrCorrupt marks an entry that failed integrity verification: a
// payload-hash mismatch, a foreign namespace or fingerprint, or
// undecodable JSON. Get wraps it (and removes the entry) so callers can
// distinguish "never stored" from "stored and damaged"; both degrade to
// re-simulation.
var ErrCorrupt = errors.New("store: corrupt entry")

// Options configure Open.
type Options struct {
	// MaxBytes bounds the namespace's total entry bytes; at or above it,
	// Put evicts least-recently-used entries. Zero or negative selects
	// DefaultMaxBytes.
	MaxBytes int64
}

// Stats counts one Store handle's traffic (not the directory's
// lifetime totals — counters start at zero per Open).
type Stats struct {
	// Hits counts verified Gets; Misses counts Gets that found no entry.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Corrupt counts entries that failed verification (each was removed
	// and reported as ErrCorrupt).
	Corrupt int64 `json:"corrupt"`
	// Puts counts entries written; PutErrors counts results that could
	// not be serialized or persisted (the caller degrades to an
	// uncached run).
	Puts      int64 `json:"puts"`
	PutErrors int64 `json:"putErrors"`
	// Evictions counts entries removed by the LRU size cap.
	Evictions int64 `json:"evictions"`
	// Entries and SizeBytes describe the namespace right now.
	Entries   int   `json:"entries"`
	SizeBytes int64 `json:"sizeBytes"`
}

// Store is one process's handle on a result-store directory. It is safe
// for concurrent use; cross-process coordination rests on atomic rename
// plus determinism (identical writers) rather than locks.
type Store struct {
	dir     string // namespace directory: <root>/<version>
	version string
	max     int64

	mu   sync.Mutex
	size int64 // bytes across entries in the namespace
	st   Stats
}

// Version is the namespace entries are read and written under:
// "v<format>-s<obs schema>-<api surface hash prefix>". It changes —
// retiring every existing entry — when the store layout, the report
// schema, or the pinned facade surface does.
func Version() string {
	return fmt.Sprintf("v%d-s%d-%s", formatVersion, obs.Schema, api.Hash()[:12])
}

// Open creates (if needed) and scans the store rooted at dir. The scan
// prices the current namespace for the LRU cap; foreign namespaces
// under the same root are left untouched.
func Open(dir string, o Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	max := o.MaxBytes
	if max <= 0 {
		max = DefaultMaxBytes
	}
	s := &Store{dir: filepath.Join(dir, Version()), version: Version(), max: max}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	entries, size, err := s.scan()
	if err != nil {
		return nil, err
	}
	s.st.Entries, s.size = len(entries), size
	return s, nil
}

// envelope is the on-disk entry: the namespace and fingerprint it was
// written under (verified on read), the payload hash, and the payload —
// the canonical JSON of one system.Result.
type envelope struct {
	Store       string          `json:"store"`
	Fingerprint string          `json:"fingerprint"`
	SHA256      string          `json:"sha256"`
	Result      json.RawMessage `json:"result"`
}

// path shards entries by the first fingerprint byte so no directory
// grows unboundedly.
func (s *Store) path(fp string) (string, error) {
	if !validFingerprint(fp) {
		return "", fmt.Errorf("store: malformed fingerprint %q", fp)
	}
	return filepath.Join(s.dir, fp[:2], fp+".json"), nil
}

// validFingerprint accepts exactly the hex sha256 sweep.Fingerprint
// emits — the check is also what keeps externally supplied fingerprints
// (the aanoc-serve results endpoint) from escaping the store directory.
func validFingerprint(fp string) bool {
	if len(fp) != 64 {
		return false
	}
	for i := 0; i < len(fp); i++ {
		c := fp[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Get returns the stored result for a fingerprint. ok reports a
// verified hit. A missing entry is (zero, false, nil); a damaged one is
// removed and reported as an error wrapping ErrCorrupt — the caller
// treats both as "simulate it".
func (s *Store) Get(fp string) (system.Result, bool, error) {
	path, err := s.path(fp)
	if err != nil {
		return system.Result{}, false, err
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		s.count(func(st *Stats) { st.Misses++ })
		return system.Result{}, false, nil
	}
	if err != nil {
		return system.Result{}, false, fmt.Errorf("store: %w", err)
	}
	res, err := s.decode(fp, data)
	if err != nil {
		s.discardCorrupt(path, len(data))
		return system.Result{}, false, err
	}
	// A verified read refreshes the entry's recency for the LRU cap.
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	s.count(func(st *Stats) { st.Hits++ })
	return res, true, nil
}

// decode verifies and unpacks one entry's bytes.
func (s *Store) decode(fp string, data []byte) (system.Result, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return system.Result{}, fmt.Errorf("%w: %s: %v", ErrCorrupt, fp, err)
	}
	switch {
	case env.Store != s.version:
		return system.Result{}, fmt.Errorf("%w: %s: namespace %q inside %q", ErrCorrupt, fp, env.Store, s.version)
	case env.Fingerprint != fp:
		return system.Result{}, fmt.Errorf("%w: %s: entry claims fingerprint %q", ErrCorrupt, fp, env.Fingerprint)
	}
	sum := sha256.Sum256(env.Result)
	if hex.EncodeToString(sum[:]) != env.SHA256 {
		return system.Result{}, fmt.Errorf("%w: %s: payload hash mismatch", ErrCorrupt, fp)
	}
	var res system.Result
	if err := json.Unmarshal(env.Result, &res); err != nil {
		return system.Result{}, fmt.Errorf("%w: %s: payload: %v", ErrCorrupt, fp, err)
	}
	return res, nil
}

// discardCorrupt removes a failed entry so the next writer repairs the
// store instead of tripping on it forever.
func (s *Store) discardCorrupt(path string, size int) {
	if os.Remove(path) == nil {
		s.count(func(st *Stats) {
			st.Entries--
			st.Corrupt++
		})
		s.mu.Lock()
		s.size -= int64(size)
		s.mu.Unlock()
		return
	}
	s.count(func(st *Stats) { st.Corrupt++ })
}

// Put persists one result under its fingerprint: serialize, hash, write
// to a temp file in the namespace, fsync-free rename into place. A
// result that cannot serialize (a NaN metric, say) returns an error and
// leaves the store unchanged — the caller keeps its in-memory result
// and simply loses persistence for that point.
func (s *Store) Put(fp string, res system.Result) error {
	path, err := s.path(fp)
	if err != nil {
		s.count(func(st *Stats) { st.PutErrors++ })
		return err
	}
	payload, err := json.Marshal(res)
	if err != nil {
		s.count(func(st *Stats) { st.PutErrors++ })
		return fmt.Errorf("store: result for %s is not serializable: %w", fp, err)
	}
	sum := sha256.Sum256(payload)
	data, err := json.Marshal(envelope{
		Store:       s.version,
		Fingerprint: fp,
		SHA256:      hex.EncodeToString(sum[:]),
		Result:      payload,
	})
	if err != nil {
		s.count(func(st *Stats) { st.PutErrors++ })
		return fmt.Errorf("store: %w", err)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		s.count(func(st *Stats) { st.PutErrors++ })
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		s.count(func(st *Stats) { st.PutErrors++ })
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		s.count(func(st *Stats) { st.PutErrors++ })
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		s.count(func(st *Stats) { st.PutErrors++ })
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		s.count(func(st *Stats) { st.PutErrors++ })
		return fmt.Errorf("store: %w", err)
	}
	prior := int64(0)
	if fi, err := os.Stat(path); err == nil {
		prior = fi.Size()
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		s.count(func(st *Stats) { st.PutErrors++ })
		return fmt.Errorf("store: %w", err)
	}
	s.mu.Lock()
	s.size += int64(len(data)) - prior
	if prior == 0 {
		s.st.Entries++
	}
	s.st.Puts++
	over := s.size > s.max
	s.mu.Unlock()
	if over {
		s.evict(path)
	}
	return nil
}

// evict removes least-recently-used entries until the namespace fits
// the cap, sparing the entry just written (evicting your own write
// would make an over-cap store refuse every new point).
func (s *Store) evict(keep string) {
	type aged struct {
		path string
		size int64
		mod  time.Time
	}
	entries, _, err := s.scan()
	if err != nil {
		return
	}
	var all []aged
	var total int64
	for _, e := range entries {
		all = append(all, aged{e.path, e.size, e.mod})
		total += e.size
	}
	sort.Slice(all, func(i, j int) bool { return all[i].mod.Before(all[j].mod) })
	for _, e := range all {
		if total <= s.max {
			break
		}
		if e.path == keep {
			continue
		}
		if os.Remove(e.path) == nil {
			total -= e.size
			s.count(func(st *Stats) {
				st.Entries--
				st.Evictions++
			})
		}
	}
	s.mu.Lock()
	s.size = total
	s.mu.Unlock()
}

type scanned struct {
	path string
	size int64
	mod  time.Time
}

// scan walks the namespace's entry files (temp files excluded).
func (s *Store) scan() ([]scanned, int64, error) {
	var out []scanned
	var total int64
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".json" {
			return err
		}
		fi, err := d.Info()
		if err != nil {
			return nil // raced with an eviction; skip
		}
		out = append(out, scanned{path, fi.Size(), fi.ModTime()})
		total += fi.Size()
		return nil
	})
	if err != nil {
		return nil, 0, fmt.Errorf("store: %w", err)
	}
	return out, total, nil
}

// count applies a stats mutation under the lock.
func (s *Store) count(f func(*Stats)) {
	s.mu.Lock()
	f(&s.st)
	s.mu.Unlock()
}

// Stats snapshots the handle's counters and the namespace occupancy.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.st
	st.SizeBytes = s.size
	return st
}

// Dir returns the namespace directory entries live in (root joined
// with Version()) — what tests and tooling inspect.
func (s *Store) Dir() string { return s.dir }
