package store

import (
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"aanoc/internal/appmodel"
	"aanoc/internal/dram"
	"aanoc/internal/sweep"
	"aanoc/internal/system"
)

// open builds a store in a fresh temp directory.
func open(t *testing.T, o Options) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), o)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// fabricated builds a small synthetic Result plus a syntactically valid
// fingerprint for it — store tests don't need the simulator for most
// properties, only bytes that round-trip.
func fabricated(seed byte) (string, system.Result) {
	fp := strings.Repeat(string([]byte{'a' + seed%6}), 64)
	return fp, system.Result{
		Design: system.GSSSAGM, App: "bluray", Gen: dram.DDR2,
		ClockMHz: 333, Cycles: 1000,
		Utilization: 0.25 + float64(seed)/1000,
		Generated:   100 + int64(seed), Completed: 90 + int64(seed),
	}
}

func TestRoundTripByteIdentical(t *testing.T) {
	s := open(t, Options{})
	fp, res := fabricated(1)
	if err := s.Put(fp, res); err != nil {
		t.Fatal(err)
	}
	back, ok, err := s.Get(fp)
	if err != nil || !ok {
		t.Fatalf("Get after Put: ok=%v err=%v", ok, err)
	}
	want, _ := json.Marshal(res)
	got, _ := json.Marshal(back)
	if string(want) != string(got) {
		t.Errorf("round trip not byte-identical:\n put %s\n got %s", want, got)
	}
	st := s.Stats()
	if st.Puts != 1 || st.Hits != 1 || st.Entries != 1 || st.SizeBytes <= 0 {
		t.Errorf("stats after one put/get: %+v", st)
	}
}

// TestRealRunRoundTrip pins the property the whole store rests on: a
// genuine simulation Result — observability report, per-core stats,
// device counters, float64 metrics — survives the disk round trip with
// byte-identical canonical JSON, so store-served CLI output matches
// freshly simulated output exactly.
func TestRealRunRoundTrip(t *testing.T) {
	cfg := system.Config{
		App: appmodel.BluRay(), Gen: dram.DDR2,
		Design: system.GSSSAGM, Cycles: 2000, Seed: 7,
	}
	fp, cacheable := sweep.Fingerprint(cfg)
	if !cacheable {
		t.Fatal("plain config not cacheable")
	}
	res, err := system.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := open(t, Options{})
	if err := s.Put(fp, res); err != nil {
		t.Fatal(err)
	}
	back, ok, err := s.Get(fp)
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	want, _ := json.Marshal(res)
	got, _ := json.Marshal(back)
	if string(want) != string(got) {
		t.Error("real run result not byte-identical after disk round trip")
	}
	if back.Obs == nil || back.Obs.Design != res.Obs.Design {
		t.Error("observability report lost in round trip")
	}
}

func TestMissIsNotAnError(t *testing.T) {
	s := open(t, Options{})
	fp, _ := fabricated(2)
	_, ok, err := s.Get(fp)
	if ok || err != nil {
		t.Fatalf("empty-store Get: ok=%v err=%v, want clean miss", ok, err)
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Errorf("miss not counted: %+v", st)
	}
}

// TestCorruptEntryDetectedAndRemoved injects corruption three ways —
// flipped payload bytes, truncation, and a wholesale garbage file — and
// requires each to surface as ErrCorrupt, remove the entry, and leave
// the next Get a clean miss (the self-healing contract: corruption
// costs one re-simulation, never a wrong result).
func TestCorruptEntryDetectedAndRemoved(t *testing.T) {
	corruptions := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"flipped payload byte", func(b []byte) []byte {
			i := len(b) / 2
			b[i] ^= 0xff
			return b
		}},
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"garbage", func([]byte) []byte { return []byte("not json at all") }},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			s := open(t, Options{})
			fp, res := fabricated(3)
			if err := s.Put(fp, res); err != nil {
				t.Fatal(err)
			}
			path, _ := s.path(fp)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mut(data), 0o644); err != nil {
				t.Fatal(err)
			}
			_, ok, err := s.Get(fp)
			if ok || !errors.Is(err, ErrCorrupt) {
				t.Fatalf("corrupt Get: ok=%v err=%v, want ErrCorrupt", ok, err)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Error("corrupt entry not removed")
			}
			if _, ok, err := s.Get(fp); ok || err != nil {
				t.Errorf("post-removal Get: ok=%v err=%v, want clean miss", ok, err)
			}
			if st := s.Stats(); st.Corrupt != 1 {
				t.Errorf("corruption not counted: %+v", st)
			}
		})
	}
}

// TestForeignNamespaceRejected: an entry whose envelope claims a
// different store version (or fingerprint) must not be served even if
// its payload hash checks out — the namespace directory is the
// versioning mechanism and an entry contradicting it is damage.
func TestForeignNamespaceRejected(t *testing.T) {
	s := open(t, Options{})
	fp, res := fabricated(4)
	if err := s.Put(fp, res); err != nil {
		t.Fatal(err)
	}
	path, _ := s.path(fp)
	data, _ := os.ReadFile(path)
	tampered := strings.Replace(string(data), s.version, "v0-s0-000000000000", 1)
	if tampered == string(data) {
		t.Fatal("envelope does not carry the namespace")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(fp); ok || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("foreign-namespace entry served: ok=%v err=%v", ok, err)
	}
}

func TestMalformedFingerprintRejected(t *testing.T) {
	s := open(t, Options{})
	for _, fp := range []string{
		"", "short", strings.Repeat("A", 64), // upper case is not canonical
		"../../../../etc/passwd" + strings.Repeat("a", 41),
		strings.Repeat("a", 63) + "/",
	} {
		if _, _, err := s.Get(fp); err == nil {
			t.Errorf("Get accepted malformed fingerprint %q", fp)
		}
		if err := s.Put(fp, system.Result{}); err == nil {
			t.Errorf("Put accepted malformed fingerprint %q", fp)
		}
	}
}

// TestConcurrentWritersOneFile: many goroutines writing the same
// fingerprint must leave exactly one readable entry (atomic rename,
// identical bytes) and no temp-file litter.
func TestConcurrentWritersOneFile(t *testing.T) {
	s := open(t, Options{})
	fp, res := fabricated(5)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if err := s.Put(fp, res); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	shard := filepath.Dir(mustPath(t, s, fp))
	entries, err := os.ReadDir(shard)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != fp+".json" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("shard holds %v, want exactly one entry", names)
	}
	if _, ok, err := s.Get(fp); !ok || err != nil {
		t.Fatalf("entry unreadable after concurrent writes: ok=%v err=%v", ok, err)
	}
}

func mustPath(t *testing.T, s *Store, fp string) string {
	t.Helper()
	p, err := s.path(fp)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestLRUEviction: with a byte cap that holds roughly two entries, a
// third Put must evict the least recently used — and a Get refreshes
// recency, so the touched entry survives over a colder, newer one.
func TestLRUEviction(t *testing.T) {
	fpA, resA := fabricated(0)
	fpB, resB := fabricated(1)
	fpC, resC := fabricated(2)

	// Price one entry to size the cap at two-and-a-bit entries.
	probe := open(t, Options{})
	if err := probe.Put(fpA, resA); err != nil {
		t.Fatal(err)
	}
	entryBytes := probe.Stats().SizeBytes

	s := open(t, Options{MaxBytes: entryBytes*2 + entryBytes/2})
	if err := s.Put(fpA, resA); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(fpB, resB); err != nil {
		t.Fatal(err)
	}
	// Backdate A so recency is unambiguous, then touch it via Get: B
	// becomes the coldest entry despite being written after A.
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(mustPath(t, s, fpA), old, old); err != nil {
		t.Fatal(err)
	}
	older := old.Add(-time.Hour)
	if err := os.Chtimes(mustPath(t, s, fpB), older, older); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(fpA); !ok || err != nil {
		t.Fatalf("Get A: ok=%v err=%v", ok, err)
	}
	if err := s.Put(fpC, resC); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get(fpB); ok {
		t.Error("coldest entry B survived eviction")
	}
	if _, ok, err := s.Get(fpA); !ok || err != nil {
		t.Errorf("recently used entry A evicted: ok=%v err=%v", ok, err)
	}
	if _, ok, err := s.Get(fpC); !ok || err != nil {
		t.Errorf("just-written entry C evicted: ok=%v err=%v", ok, err)
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("eviction accounting: %+v", st)
	}
	if st.SizeBytes > s.max {
		t.Errorf("size %d still over cap %d", st.SizeBytes, s.max)
	}
}

// TestUnserializableResultDegrades: a Result carrying NaN cannot be
// JSON-marshalled; Put must fail cleanly (counted, store untouched)
// rather than write a broken entry — the sweep integration turns this
// into "keep the in-memory result, lose persistence for the point".
func TestUnserializableResultDegrades(t *testing.T) {
	s := open(t, Options{})
	fp, res := fabricated(0)
	res.Utilization = math.NaN()
	err := s.Put(fp, res)
	if err == nil {
		t.Fatal("Put accepted a NaN result")
	}
	if _, ok, _ := s.Get(fp); ok {
		t.Error("failed Put left a readable entry")
	}
	st := s.Stats()
	if st.PutErrors != 1 || st.Puts != 0 || st.Entries != 0 {
		t.Errorf("degrade accounting: %+v", st)
	}
}

// TestReopenSeesEntriesAndSize: a second handle on the same directory
// serves the first handle's entries and prices them for the cap.
func TestReopenSeesEntriesAndSize(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fp, res := fabricated(3)
	if err := s1.Put(fp, res); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s2.Get(fp); !ok || err != nil {
		t.Fatalf("reopened store misses persisted entry: ok=%v err=%v", ok, err)
	}
	st := s2.Stats()
	if st.Entries != 1 || st.SizeBytes != s1.Stats().SizeBytes {
		t.Errorf("reopen scan: %+v, want the persisted entry priced", st)
	}
}

// TestVersionNamespaceShape pins the derivation rule documented in
// DESIGN.md: format revision, obs schema, and the pinned api surface
// hash — so changing any of them rotates the namespace.
func TestVersionNamespaceShape(t *testing.T) {
	v := Version()
	parts := strings.Split(v, "-")
	if len(parts) != 3 || parts[0] != "v1" || !strings.HasPrefix(parts[1], "s") || len(parts[2]) != 12 {
		t.Fatalf("Version() = %q, want v<format>-s<schema>-<12 hex>", v)
	}
	s := open(t, Options{})
	if filepath.Base(s.Dir()) != v {
		t.Errorf("store dir %q not under version namespace %q", s.Dir(), v)
	}
}
