package memctrl

import (
	"aanoc/internal/dram"
	"aanoc/internal/noc"
)

// Controller is the interface the system drives each cycle: offer arriving
// request packets and tick the command machinery.
type Controller interface {
	// Offer presents the next in-order request packet; it returns false
	// (leaving the packet with the caller) when the subsystem is full,
	// which backpressures the network.
	Offer(p *noc.Packet, now int64) bool
	// Tick advances the controller one memory clock cycle.
	Tick(now int64)
	// Busy reports whether any admitted request is still in flight.
	Busy() bool
	// NextEvent returns the next cycle (> now) Tick could possibly act —
	// issue a command, retire a completion, or start a refresh — judged
	// from the controller's own state. The simulation kernel skips the
	// controller until then; a successful Offer wakes it explicitly.
	// math.MaxInt64 means "idle until offered work".
	NextEvent(now int64) int64
}

// Simple is the paper's lightweight memory subsystem for SDRAM-aware and
// GSS NoC designs: because multiple routers already scheduled the request
// stream, it needs no reorder buffers and no scheduler — just the
// PRE/RAS/CAS command pipeline, served in arrival order, with the page
// policy (open for [4]/GSS, partially-open + AP for SAGM).
type Simple struct {
	eng *engine
	// last is a value copy of the most recently admitted packet: the
	// original may be recycled through the system's packet pool after it
	// completes, so holding a pointer past admission would read a
	// reused packet.
	last    noc.Packet
	hasLast bool

	// StreamStats classifies each adjacent pair of admitted requests by
	// the paper's SDRAM conditions — a direct measure of how
	// SDRAM-friendly the order delivered by the network is.
	StreamStats struct {
		RowHits     int64
		Interleaves int64
		Conflicts   int64
		Contentions int64
	}
}

// NewSimple builds the lightweight controller. depth is the command
// pipeline window (the paper's small PRE/RAS/CAS buffers); onDone receives
// completions. The pipeline is stage-skipping as in the paper's Fig. 6 —
// a row-hit request enters the CAS buffer directly and may overtake an
// older request still waiting in the PRE/RAS stages (same-bank order is
// preserved).
func NewSimple(dev *dram.Device, policy PagePolicy, depth int, onDone func(Completion)) *Simple {
	s := &Simple{eng: newEngine(dev, policy, depth, onDone)}
	s.eng.ooo = true
	return s
}

// Offer implements Controller: admit in order while the pipeline has room
// and no refresh is draining it.
func (s *Simple) Offer(p *noc.Packet, now int64) bool {
	if s.eng.admitBlocked() || !s.eng.canAdmit() {
		return false
	}
	if s.hasLast {
		switch {
		case noc.RowHit(&s.last, p):
			s.StreamStats.RowHits++
		case noc.BankConflict(&s.last, p):
			s.StreamStats.Conflicts++
		default:
			s.StreamStats.Interleaves++
		}
		if noc.DataContention(&s.last, p) {
			s.StreamStats.Contentions++
		}
	}
	s.last = *p
	s.hasLast = true
	s.eng.admit(p)
	return true
}

// Tick implements Controller.
func (s *Simple) Tick(now int64) { s.eng.tick(now) }

// Busy implements Controller.
func (s *Simple) Busy() bool { return s.eng.busy() }

// NextEvent implements Controller.
func (s *Simple) NextEvent(now int64) int64 { return s.eng.nextEvent(now) }

// CmdCycles exposes command-bus activity for the power model.
func (s *Simple) CmdCycles() int64 { return s.eng.CmdCycles }
