package memctrl

import "fmt"

// Scheduler selects the memory-scheduler family a channel's controller
// uses. The zero value keeps the paper's pairing (MemMax for the
// conventional designs, the lightweight Simple controller for the
// SDRAM-aware ones); the non-default members are the related-work
// schedulers ROADMAP item 2 names, each with a runtime-verifiable
// guarantee:
//
//   - SchedDPQ — a Dynamic-Priority-Queue arbiter in the spirit of Shah
//     et al.: per-requestor FIFO queues served by a rotating round-robin
//     list over a depth-1 closed-page pipeline, giving every request a
//     closed-form worst-case completion bound that checked mode asserts
//     per request (see internal/check.DPQBound).
//
//   - SchedRegulated — per-bank bandwidth regulation after Sullivan et
//     al.: each core carries a per-bank beat budget per fixed window,
//     charged at admission; an over-budget head is ineligible until the
//     window rolls. Checked mode shadow-audits the regulation invariant.
//
//   - SchedStaged — a staged heterogeneous scheduler in the spirit of
//     SMS (Ausavarungnirun et al.): requestors are classified by
//     outstanding-request intensity, and light (latency-sensitive) cores
//     are granted ahead of heavy (bandwidth-intensive) ones.
type Scheduler int

const (
	// SchedDefault keeps the per-design controller from the paper.
	SchedDefault Scheduler = iota
	// SchedDPQ is the bounded-latency dynamic-priority-queue arbiter.
	SchedDPQ
	// SchedRegulated is the per-bank bandwidth regulator.
	SchedRegulated
	// SchedStaged is the intensity-staged heterogeneous scheduler.
	SchedStaged

	numSchedulers
)

// String names the scheduler as the CLIs spell it.
func (s Scheduler) String() string {
	switch s {
	case SchedDefault:
		return "default"
	case SchedDPQ:
		return "dpq"
	case SchedRegulated:
		return "regulated"
	case SchedStaged:
		return "staged"
	default:
		return fmt.Sprintf("Scheduler(%d)", int(s))
	}
}

// ParseScheduler inverts String.
func ParseScheduler(s string) (Scheduler, error) {
	for sc := SchedDefault; sc < numSchedulers; sc++ {
		if sc.String() == s {
			return sc, nil
		}
	}
	return 0, fmt.Errorf("memctrl: unknown scheduler %q", s)
}

// Schedulers lists all members in declaration order.
func Schedulers() []Scheduler {
	out := make([]Scheduler, 0, int(numSchedulers))
	for sc := SchedDefault; sc < numSchedulers; sc++ {
		out = append(out, sc)
	}
	return out
}

// Valid reports whether s names a member.
func (s Scheduler) Valid() bool { return s >= SchedDefault && s < numSchedulers }
