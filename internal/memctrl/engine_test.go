package memctrl

import (
	"testing"

	"aanoc/internal/dram"
	"aanoc/internal/noc"
)

func TestBLForOTFChop(t *testing.T) {
	otf := dram.MustSpeed(dram.DDR3, 667)
	if bl := blFor(otf, 3); bl != 4 {
		t.Errorf("OTF remaining 3 -> BL%d, want BC4", bl)
	}
	if bl := blFor(otf, 5); bl != 8 {
		t.Errorf("OTF remaining 5 -> BL%d, want BL8", bl)
	}
	fixed := dram.MustSpeed(dram.DDR2, 333).WithDeviceBL(4)
	if bl := blFor(fixed, 2); bl != 4 {
		t.Errorf("fixed mode remaining 2 -> BL%d, want the mode BL", bl)
	}
}

func TestOOORespectsSameBankOrder(t *testing.T) {
	// Two requests to the same bank with different rows must not reorder
	// even under the stage-skipping engine, or the second would steal the
	// first's page.
	tm := dram.MustSpeed(dram.DDR2, 333)
	dev := dram.MustNewDevice(tm)
	var done []Completion
	s := NewSimple(dev, OpenPage, 8, func(c Completion) { done = append(done, c) })
	a := req(1, 0, 1, 0, noc.Read, 8, false)
	b := req(2, 0, 2, 0, noc.Read, 8, false) // same bank, conflicting row
	c := req(3, 1, 1, 0, noc.Read, 8, false) // different bank: may overtake b
	drive(t, s, []*noc.Packet{a, b, c}, &done, 2000)
	if len(done) != 3 {
		t.Fatalf("completions = %d", len(done))
	}
	posOf := func(id int64) int {
		for i, d := range done {
			if d.Pkt.ID == id {
				return i
			}
		}
		return -1
	}
	if posOf(2) < posOf(1) {
		t.Error("same-bank requests reordered")
	}
	if posOf(3) > posOf(2) {
		t.Error("the different-bank request should overtake the conflicting one")
	}
}

func TestEngineBlocksAdmissionDuringRefresh(t *testing.T) {
	tm := dram.MustSpeed(dram.DDR1, 133) // tREFI 1036
	dev := dram.MustNewDevice(tm)
	s := NewSimple(dev, OpenPage, 4, func(Completion) {})
	// Idle past the refresh deadline.
	for now := int64(0); now < tm.TREFI+2; now++ {
		s.Tick(now)
	}
	if !s.eng.admitBlocked() && dev.Stats().Refreshes == 0 {
		t.Fatal("refresh neither pending nor performed at the deadline")
	}
	// Within a handful of cycles the refresh completes and admission
	// reopens.
	now := tm.TREFI + 2
	for ; now < tm.TREFI+200; now++ {
		s.Tick(now)
		if !s.eng.admitBlocked() {
			break
		}
	}
	if s.eng.admitBlocked() {
		t.Fatal("admission never reopened after refresh")
	}
	if dev.Stats().Refreshes != 1 {
		t.Fatalf("refreshes = %d, want 1", dev.Stats().Refreshes)
	}
	if !s.Offer(req(1, 0, 1, 0, noc.Read, 8, false), now) {
		t.Fatal("offer refused after refresh completed")
	}
}

func TestMemMaxDataBufferBound(t *testing.T) {
	// The per-thread data buffer (32 flits) admits one long write but not
	// two; a second request queues only once the first drains.
	tm := dram.MustSpeed(dram.DDR2, 333)
	dev := dram.MustNewDevice(tm)
	m := NewMemMax(dev, MemMaxConfig{Threads: 4, QueueDepth: 32, DataFlits: 32, PipelineDepth: 1}, func(Completion) {})
	long1 := req(1, 0, 1, 0, noc.Write, 128, false)
	long1.Class = noc.ClassMedia
	long1.SrcCore = 0
	long2 := req(2, 0, 2, 0, noc.Write, 128, false)
	long2.Class = noc.ClassMedia
	long2.SrcCore = 0
	if !m.Offer(long1, 0) {
		t.Fatal("empty thread must accept even an oversized packet")
	}
	if m.Offer(long2, 0) {
		t.Fatal("second 64-flit write must not fit a 32-flit data buffer")
	}
	short := req(3, 1, 1, 0, noc.Read, 8, false)
	short.Class = noc.ClassDemand
	if !m.Offer(short, 0) {
		t.Fatal("other threads must be unaffected")
	}
}

func TestPendingForCountsInflight(t *testing.T) {
	tm := dram.MustSpeed(dram.DDR2, 333)
	dev := dram.MustNewDevice(tm)
	e := newEngine(dev, OpenPage, 4, func(Completion) {})
	e.admit(req(1, 2, 1, 0, noc.Read, 8, false))
	e.admit(req(2, 2, 1, 8, noc.Read, 8, false))
	e.admit(req(3, 3, 1, 0, noc.Read, 8, false))
	if e.pendingFor(2) != 2 || e.pendingFor(3) != 1 || e.pendingFor(0) != 0 {
		t.Fatalf("pendingFor wrong: %d %d %d", e.pendingFor(2), e.pendingFor(3), e.pendingFor(0))
	}
}

func TestCmdCyclesCountsCommands(t *testing.T) {
	tm := dram.MustSpeed(dram.DDR2, 333)
	dev := dram.MustNewDevice(tm)
	var done []Completion
	s := NewSimple(dev, OpenPage, 4, func(c Completion) { done = append(done, c) })
	drive(t, s, []*noc.Packet{req(1, 0, 1, 0, noc.Read, 8, false)}, &done, 500)
	// ACT + RD = two command cycles.
	if s.CmdCycles() != 2 {
		t.Fatalf("CmdCycles = %d, want 2", s.CmdCycles())
	}
}

func TestClosedPagePolicyAPsEverything(t *testing.T) {
	tm := dram.MustSpeed(dram.DDR2, 333)
	dev := dram.MustNewDevice(tm)
	var done []Completion
	s := NewSimple(dev, ClosedPage, 4, func(c Completion) { done = append(done, c) })
	pkts := []*noc.Packet{
		req(1, 0, 1, 0, noc.Write, 8, false), // untagged: closed page APs anyway
		req(2, 1, 1, 0, noc.Write, 8, false),
	}
	drive(t, s, pkts, &done, 2000)
	st := dev.Stats()
	if st.AutoPre != 2 || st.Precharges != 0 {
		t.Fatalf("closed page: ap=%d pre=%d, want 2/0", st.AutoPre, st.Precharges)
	}
}
