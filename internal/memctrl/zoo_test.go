package memctrl

import (
	"testing"

	"aanoc/internal/dram"
	"aanoc/internal/noc"
)

func TestSchedulerStringParseRoundTrip(t *testing.T) {
	for _, sc := range Schedulers() {
		got, err := ParseScheduler(sc.String())
		if err != nil || got != sc {
			t.Errorf("ParseScheduler(%q) = %v, %v", sc.String(), got, err)
		}
		if !sc.Valid() {
			t.Errorf("%v should be valid", sc)
		}
	}
	if _, err := ParseScheduler("bogus"); err == nil {
		t.Error("ParseScheduler should reject unknown names")
	}
	if Scheduler(99).Valid() {
		t.Error("Scheduler(99) should be invalid")
	}
}

func TestDPQDrainsAndRotates(t *testing.T) {
	tm := dram.MustSpeed(dram.DDR2, 333)
	dev := dram.MustNewDevice(tm)
	var done []Completion
	d := NewDPQ(dev, DPQConfig{Requestors: 4, QueueDepth: 8}, func(c Completion) { done = append(done, c) })
	var pkts []*noc.Packet
	for i := int64(0); i < 16; i++ {
		p := req(i+1, int(i)%4, int(i/4), 0, noc.Kind(i%2), 8, false)
		p.SrcCore = int(i) % 4
		pkts = append(pkts, p)
	}
	drive(t, d, pkts, &done, 20000)
	if len(done) != 16 {
		t.Fatalf("completions = %d, want 16", len(done))
	}
	if d.Stats.Grants != 16 {
		t.Errorf("grants = %d, want 16", d.Stats.Grants)
	}
	// Closed page: every access auto-precharges, no explicit PRE needed.
	if st := dev.Stats(); st.Precharges != 0 || st.AutoPre == 0 {
		t.Errorf("closed-page stats = %+v", st)
	}
}

func TestDPQRotationBoundsInterference(t *testing.T) {
	// With N requestors and rotation to the tail after every grant, a
	// request at own-queue position 1 must be granted within N grants.
	tm := dram.MustSpeed(dram.DDR2, 333)
	dev := dram.MustNewDevice(tm)
	const n = 4
	var grants []int64
	d := NewDPQ(dev, DPQConfig{Requestors: n, QueueDepth: 8}, func(c Completion) {
		grants = append(grants, c.Pkt.ID)
	})
	// Flood cores 0..2 with 4 requests each, then one request from core 3.
	var pkts []*noc.Packet
	id := int64(1)
	for i := 0; i < 4; i++ {
		for core := 0; core < n-1; core++ {
			p := req(id, core, i, 0, noc.Read, 8, false)
			p.SrcCore = core
			pkts = append(pkts, p)
			id++
		}
	}
	victim := req(id, n-1, 0, 0, noc.Read, 8, false)
	victim.SrcCore = n - 1
	pkts = append(pkts, victim)
	var done []Completion
	drive(t, d, pkts, &done, 40000)
	pos := -1
	for i, g := range grants {
		if g == victim.ID {
			pos = i
			break
		}
	}
	if pos < 0 {
		t.Fatal("victim never completed")
	}
	// Victim is at position 1 of its own queue: at most n-1 foreign grants
	// interpose, so it completes within the first n grants.
	if pos >= n {
		t.Errorf("victim completed as grant %d, rotation bound is %d", pos+1, n)
	}
}

func TestDPQAdmitHookReportsFacts(t *testing.T) {
	tm := dram.MustSpeed(dram.DDR2, 333)
	dev := dram.MustNewDevice(tm)
	d := NewDPQ(dev, DPQConfig{Requestors: 2, QueueDepth: 4}, func(Completion) {})
	type admit struct {
		id         int64
		beats, pos int
		occ        int
		now        int64
	}
	var admits []admit
	var completes []int64
	d.OnAdmit = func(id int64, beats, queuePos, engineOcc int, now int64) {
		admits = append(admits, admit{id, beats, queuePos, engineOcc, now})
	}
	d.OnComplete = func(id int64, at int64) { completes = append(completes, id) }
	a := req(1, 0, 1, 0, noc.Read, 8, false)
	b := req(2, 0, 2, 0, noc.Read, 16, false)
	a.SrcCore, b.SrcCore = 0, 0
	if !d.Offer(a, 5) || !d.Offer(b, 5) {
		t.Fatal("offers refused")
	}
	if len(admits) != 2 {
		t.Fatalf("admits = %d, want 2", len(admits))
	}
	if admits[0] != (admit{1, 8, 1, 0, 5}) {
		t.Errorf("first admit = %+v", admits[0])
	}
	if admits[1] != (admit{2, 16, 2, 0, 5}) {
		t.Errorf("second admit = %+v", admits[1])
	}
	for now := int64(5); now < 600; now++ {
		d.Tick(now)
	}
	if len(completes) != 2 || completes[0] != 1 || completes[1] != 2 {
		t.Fatalf("completes = %v, want [1 2]", completes)
	}
}

func TestDPQBackpressureAndNextEvent(t *testing.T) {
	tm := dram.MustSpeed(dram.DDR2, 333)
	dev := dram.MustNewDevice(tm)
	d := NewDPQ(dev, DPQConfig{Requestors: 1, QueueDepth: 2}, func(Completion) {})
	if d.NextEvent(10) <= 10 {
		t.Fatal("idle NextEvent must be in the future")
	}
	if !d.Offer(req(1, 0, 1, 0, noc.Read, 8, false), 0) || !d.Offer(req(2, 0, 2, 0, noc.Read, 8, false), 0) {
		t.Fatal("offers refused")
	}
	if d.Offer(req(3, 0, 3, 0, noc.Read, 8, false), 0) {
		t.Fatal("third offer should be refused (depth 2)")
	}
	if d.NextEvent(0) != 1 {
		t.Fatalf("backlogged NextEvent = %d, want now+1", d.NextEvent(0))
	}
}

func TestRegulatorEnforcesBudget(t *testing.T) {
	tm := dram.MustSpeed(dram.DDR2, 333)
	dev := dram.MustNewDevice(tm)
	cfg := RegulatorConfig{
		Cores: 2, QueueDepth: 32, Window: 2000, Budget: 16, MinBudget: 8,
		PipelineDepth: 4, Policy: OpenPage,
	}
	var done []Completion
	r := NewRegulator(dev, cfg, func(c Completion) { done = append(done, c) })
	// Shadow-audit the invariant through the hook.
	usage := map[[2]int]int64{}
	window := int64(0)
	r.OnAdmit = func(core, bank, beats int, now int64) {
		if w := now / cfg.Window; w != window {
			window = w
			usage = map[[2]int]int64{}
		}
		k := [2]int{core, bank}
		usage[k] += int64(beats)
		if usage[k] > cfg.Budget {
			t.Errorf("core %d bank %d used %d beats in window %d, budget %d",
				core, bank, usage[k], window, cfg.Budget)
		}
	}
	// Core 0 hammers bank 0 (same row: no conflict cost), core 1 spreads.
	var pkts []*noc.Packet
	for i := int64(0); i < 8; i++ {
		p := req(i+1, 0, 1, int(i)*8, noc.Read, 8, false)
		p.SrcCore = 0
		pkts = append(pkts, p)
	}
	for i := int64(8); i < 12; i++ {
		p := req(i+1, int(i)%4, 1, 0, noc.Read, 8, false)
		p.SrcCore = 1
		pkts = append(pkts, p)
	}
	drive(t, r, pkts, &done, 40000)
	if len(done) != 12 {
		t.Fatalf("completions = %d, want 12", len(done))
	}
	// 64 beats against a 16-beat budget needs at least 3 window rolls.
	if r.Stats.WindowRolls < 3 {
		t.Errorf("window rolls = %d, want >= 3", r.Stats.WindowRolls)
	}
	if r.Stats.Throttled == 0 {
		t.Error("hammering one bank past its budget should throttle")
	}
}

func TestRegulatorDisableGateExceedsBudget(t *testing.T) {
	tm := dram.MustSpeed(dram.DDR2, 333)
	dev := dram.MustNewDevice(tm)
	cfg := RegulatorConfig{
		Cores: 1, QueueDepth: 32, Window: 100000, Budget: 8, MinBudget: 8,
		PipelineDepth: 4, Policy: OpenPage, DisableGate: true,
	}
	var done []Completion
	r := NewRegulator(dev, cfg, func(c Completion) { done = append(done, c) })
	over := false
	var charged int64
	r.OnAdmit = func(core, bank, beats int, now int64) {
		charged += int64(beats)
		if charged > cfg.Budget {
			over = true
		}
	}
	var pkts []*noc.Packet
	for i := int64(0); i < 4; i++ {
		pkts = append(pkts, req(i+1, 0, 1, int(i)*8, noc.Read, 8, false))
	}
	drive(t, r, pkts, &done, 20000)
	if !over {
		t.Error("DisableGate should allow the budget to be exceeded (mutation hook)")
	}
}

func TestRegulatorBudgetClampedToMinBudget(t *testing.T) {
	tm := dram.MustSpeed(dram.DDR2, 333)
	dev := dram.MustNewDevice(tm)
	cfg := RegulatorConfig{Cores: 1, QueueDepth: 4, Window: 1000, Budget: 4, MinBudget: 32, PipelineDepth: 2}
	var done []Completion
	r := NewRegulator(dev, cfg, func(c Completion) { done = append(done, c) })
	// A 32-beat request would deadlock against the raw budget of 4.
	p := req(1, 0, 1, 0, noc.Read, 32, false)
	drive(t, r, []*noc.Packet{p}, &done, 20000)
	if len(done) != 1 {
		t.Fatalf("oversized request never completed: budget clamp broken")
	}
}

func TestStagedServesLightBeforeHeavy(t *testing.T) {
	tm := dram.MustSpeed(dram.DDR2, 333)
	dev := dram.MustNewDevice(tm)
	cfg := StagedConfig{Cores: 2, QueueDepth: 32, Threshold: 2, PipelineDepth: 1, Policy: OpenPage}
	var done []Completion
	s := NewStaged(dev, cfg, func(c Completion) { done = append(done, c) })
	// Core 0 is heavy (6 outstanding > threshold 2); core 1 offers one.
	var pkts []*noc.Packet
	for i := int64(0); i < 6; i++ {
		p := req(i+1, int(i)%4, 1, 0, noc.Read, 8, false)
		p.SrcCore = 0
		pkts = append(pkts, p)
	}
	light := req(7, 0, 1, 0, noc.Read, 8, false)
	light.SrcCore = 1
	for _, p := range pkts {
		if !s.Offer(p, 0) {
			t.Fatal("offer refused")
		}
	}
	if !s.Offer(light, 0) {
		t.Fatal("light offer refused")
	}
	for now := int64(0); now < 4000 && len(done) < 7; now++ {
		s.Tick(now)
	}
	if len(done) != 7 {
		t.Fatalf("completions = %d, want 7", len(done))
	}
	// The light core's request (offered last) must be granted first.
	if done[0].Pkt.ID != 7 {
		t.Errorf("first completion = %d, want the light core's request 7", done[0].Pkt.ID)
	}
	if s.Stats.LightGrants == 0 || s.Stats.HeavyGrants == 0 {
		t.Errorf("grants = %+v, want both classes exercised", s.Stats)
	}
	if s.Stats.Reclassifications == 0 {
		t.Error("core 0 should have been reclassified heavy (and back)")
	}
}

func TestStagedDrainsMixedTraffic(t *testing.T) {
	tm := dram.MustSpeed(dram.DDR3, 667)
	dev := dram.MustNewDevice(tm)
	var done []Completion
	s := NewStaged(dev, DefaultStagedConfig(7), func(c Completion) { done = append(done, c) })
	var pkts []*noc.Packet
	for i := int64(0); i < 40; i++ {
		p := req(i+1, int(i)%8, int(i%5), 0, noc.Kind(i%2), 8, false)
		p.SrcCore = int(i % 7)
		pkts = append(pkts, p)
	}
	drive(t, s, pkts, &done, 20000)
	if len(done) != 40 {
		t.Fatalf("completions = %d, want 40", len(done))
	}
	for c := range s.outstanding {
		if s.outstanding[c] != 0 {
			t.Errorf("core %d outstanding = %d after drain", c, s.outstanding[c])
		}
	}
}
