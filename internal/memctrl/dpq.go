package memctrl

import (
	"aanoc/internal/dram"
	"aanoc/internal/noc"
)

// DPQConfig sizes the dynamic-priority-queue arbiter.
type DPQConfig struct {
	// Requestors is the number of per-requestor FIFO queues; a packet maps
	// to queue SrcCore mod Requestors.
	Requestors int
	// QueueDepth is the per-requestor buffer depth; a full queue
	// backpressures the network (the WCET clock starts at admission, so
	// refusals never consume bound budget).
	QueueDepth int
}

// DefaultDPQConfig mirrors the MemMax sizing: enough queues for the
// paper's core counts and the same 32-entry buffers.
func DefaultDPQConfig(requestors int) DPQConfig {
	if requestors < 1 {
		requestors = 1
	}
	return DPQConfig{Requestors: requestors, QueueDepth: 32}
}

// DPQ is a dynamic-priority-queue arbiter with analytically bounded
// access latency, after Shah et al.: per-requestor FIFOs served by a
// rotating priority list (the served requestor drops to the list's tail,
// so between two grants to one requestor at most Requestors-1 foreign
// grants interpose). The command pipeline is depth-1, strictly in order,
// and closed-page — every access pays the worst-case page cost, which is
// exactly what makes the per-request completion bound closed-form
// computable from the DDR timing package alone (check.DPQBound). The
// bound's inputs are reported through OnAdmit; checked mode compares
// every completion against the derived deadline.
type DPQ struct {
	cfg    DPQConfig
	eng    *engine
	queues [][]*noc.Packet
	// order is the rotation list: queues are scanned in this order and a
	// served requestor moves to the tail.
	order []int

	// OnAdmit, when set, observes every accepted request with the facts
	// the WCET bound is computed from: the packet ID and beat count, the
	// request's 1-based position in its own queue, the engine occupancy
	// (requests admitted to the pipeline but not yet retired), and the
	// admission cycle. The controller reports facts only; the bound
	// arithmetic lives in internal/check.
	OnAdmit func(id int64, beats, queuePos, engineOcc int, now int64)
	// OnComplete, when set, observes every completion before the
	// downstream callback (which may recycle the packet).
	OnComplete func(id int64, at int64)

	// Stats counts scheduler decisions for the observability report.
	Stats struct {
		Grants     int64
		MaxBacklog int
	}
}

// NewDPQ builds the arbiter. The pipeline is fixed at depth 1 with the
// closed-page policy — both are load-bearing for the analytic bound.
func NewDPQ(dev *dram.Device, cfg DPQConfig, onDone func(Completion)) *DPQ {
	if cfg.Requestors < 1 {
		cfg.Requestors = 1
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 1
	}
	d := &DPQ{
		cfg:    cfg,
		queues: make([][]*noc.Packet, cfg.Requestors),
		order:  make([]int, cfg.Requestors),
	}
	for i := range d.order {
		d.order[i] = i
	}
	d.eng = newEngine(dev, ClosedPage, 1, func(c Completion) {
		if d.OnComplete != nil {
			d.OnComplete(c.Pkt.ID, c.At)
		}
		onDone(c)
	})
	return d
}

// queueOf maps a packet to its requestor queue.
func (d *DPQ) queueOf(p *noc.Packet) int {
	q := p.SrcCore % d.cfg.Requestors
	if q < 0 {
		q = 0
	}
	return q
}

// Offer implements Controller: enqueue into the requestor's FIFO,
// refusing when it is full. Acceptance starts the request's WCET clock.
func (d *DPQ) Offer(p *noc.Packet, now int64) bool {
	q := d.queueOf(p)
	if len(d.queues[q]) >= d.cfg.QueueDepth {
		return false
	}
	d.queues[q] = append(d.queues[q], p)
	if n := d.Backlog(); n > d.Stats.MaxBacklog {
		d.Stats.MaxBacklog = n
	}
	if d.OnAdmit != nil {
		occ := len(d.eng.inflight) + len(d.eng.draining)
		d.OnAdmit(p.ID, p.Beats, len(d.queues[q]), occ, now)
	}
	return true
}

// Tick implements Controller: grant the highest-priority backlogged
// requestor into the (depth-1) pipeline, rotate it to the tail, then
// drive the pipeline.
func (d *DPQ) Tick(now int64) {
	for !d.eng.admitBlocked() && d.eng.canAdmit() {
		gi := -1
		for i, q := range d.order {
			if len(d.queues[q]) > 0 {
				gi = i
				break
			}
		}
		if gi < 0 {
			break
		}
		q := d.order[gi]
		p := d.queues[q][0]
		d.queues[q] = d.queues[q][1:]
		d.eng.admit(p)
		d.Stats.Grants++
		// Rotate: the served requestor becomes lowest priority.
		copy(d.order[gi:], d.order[gi+1:])
		d.order[len(d.order)-1] = q
	}
	d.eng.tick(now)
}

// Busy implements Controller.
func (d *DPQ) Busy() bool { return d.eng.busy() || d.Backlog() > 0 }

// NextEvent implements Controller: backlogged queues keep the arbiter
// granting every cycle; otherwise the pipeline decides.
func (d *DPQ) NextEvent(now int64) int64 {
	if d.Backlog() > 0 {
		return now + 1
	}
	return d.eng.nextEvent(now)
}

// Backlog reports the total queued requests across requestors.
func (d *DPQ) Backlog() int {
	n := 0
	for _, q := range d.queues {
		n += len(q)
	}
	return n
}

// CmdCycles exposes command-bus activity for the power model.
func (d *DPQ) CmdCycles() int64 { return d.eng.CmdCycles }

// Config returns the resolved (clamped) configuration — the WCET bound
// monitor derives its requestor count from it, so the two cannot drift.
func (d *DPQ) Config() DPQConfig { return d.cfg }
