package memctrl

import (
	"aanoc/internal/dram"
	"aanoc/internal/noc"
)

// MemMaxConfig sizes the conventional subsystem.
type MemMaxConfig struct {
	// Threads is the number of QoS threads (the paper uses 4-thread
	// MemMax).
	Threads int
	// QueueDepth is the per-thread request buffer depth and DataFlits the
	// per-thread data buffer size in flits (the paper's MemMax uses a
	// 32-flit request buffer and a 32-flit data buffer per thread).
	QueueDepth int
	DataFlits  int
	// PipelineDepth is the command look-ahead window of the Databahn-style
	// controller behind the scheduler.
	PipelineDepth int
	// PriorityFirst makes the arbiter always serve a thread whose head is
	// a priority packet first (the CONV+PFS design).
	PriorityFirst bool
}

// DefaultMemMaxConfig matches the paper's description: 4 threads, each
// with a 32-flit request buffer and a 32-flit data buffer.
func DefaultMemMaxConfig() MemMaxConfig {
	return MemMaxConfig{Threads: 4, QueueDepth: 32, DataFlits: 32, PipelineDepth: 4}
}

// MemMax models the conventional memory subsystem: a Sonics-MemMax-style
// thread-based scheduler in front of a Denali-Databahn-style controller.
// Requests from different threads can be freely reordered; the arbiter
// prefers row-buffer hits, then bank-interleaved conflict-free requests,
// avoids data-bus turnarounds, and falls back to weighted round-robin
// among threads. The shared command pipeline prepares pages ahead of the
// active data transfer (command look-ahead).
type MemMax struct {
	cfg    MemMaxConfig
	eng    *engine
	queues [][]*noc.Packet
	served []int64 // beats admitted per thread (bandwidth QoS accounting)
	rotate int
	// last is a value copy of the packet most recently admitted into the
	// pipeline (see Simple.last: the original may be recycled through
	// the system's packet pool once it completes).
	last    noc.Packet
	hasLast bool
}

// NewMemMax builds the conventional subsystem over a device.
func NewMemMax(dev *dram.Device, cfg MemMaxConfig, onDone func(Completion)) *MemMax {
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 1
	}
	if cfg.PipelineDepth < 1 {
		cfg.PipelineDepth = 1
	}
	if cfg.DataFlits < 1 {
		cfg.DataFlits = cfg.QueueDepth
	}
	m := &MemMax{
		cfg:    cfg,
		eng:    newEngine(dev, OpenPage, cfg.PipelineDepth, onDone),
		queues: make([][]*noc.Packet, cfg.Threads),
		served: make([]int64, cfg.Threads),
	}
	return m
}

// threadOf maps a request to its QoS thread: demand traffic gets its own
// thread so the priority-first variant can serve it first; the remaining
// classes spread across the other threads.
func (m *MemMax) threadOf(p *noc.Packet) int {
	if m.cfg.Threads == 1 {
		return 0
	}
	switch p.Class {
	case noc.ClassDemand:
		return 0
	case noc.ClassPrefetch:
		return 1 % m.cfg.Threads
	case noc.ClassMedia:
		if m.cfg.Threads < 3 {
			return m.cfg.Threads - 1
		}
		return 2 + p.SrcCore%(m.cfg.Threads-2)
	default:
		return m.cfg.Threads - 1
	}
}

// Offer implements Controller: enqueue into the request buffer of the
// packet's thread, refusing when the request buffer is full or the
// thread's data buffer cannot hold the payload.
func (m *MemMax) Offer(p *noc.Packet, now int64) bool {
	th := m.threadOf(p)
	if len(m.queues[th]) >= m.cfg.QueueDepth {
		return false
	}
	if occ := m.dataOccupancy(th); len(m.queues[th]) > 0 && occ+p.Flits > m.cfg.DataFlits {
		return false
	}
	m.queues[th] = append(m.queues[th], p)
	return true
}

// dataOccupancy sums the buffered payload flits of a thread's queue.
func (m *MemMax) dataOccupancy(th int) int {
	n := 0
	for _, p := range m.queues[th] {
		n += p.Flits
	}
	return n
}

// Tick implements Controller: arbitrate thread heads into the command
// pipeline, then drive the pipeline.
func (m *MemMax) Tick(now int64) {
	for !m.eng.admitBlocked() && m.eng.canAdmit() {
		th := m.pickThread(now)
		if th < 0 {
			break
		}
		p := m.queues[th][0]
		m.queues[th] = m.queues[th][1:]
		m.eng.admit(p)
		m.served[th] += int64(p.Beats)
		m.last = *p
		m.hasLast = true
		m.rotate = (th + 1) % m.cfg.Threads
	}
	m.eng.tick(now)
}

// pickThread implements the QoS arbitration: threads share the SDRAM
// bandwidth, so the backlogged thread with the least admitted beats is
// served next (deficit round robin over bandwidth, the "different
// bandwidths allocated to different threads" of the MemMax datasheet) —
// unless its head would cause a bank conflict or bus turnaround and some
// other backlogged head would not, in which case the scheduler skips
// ahead once ("prevents bank conflict and data contention").
// Priority-first configurations serve a priority head unconditionally.
func (m *MemMax) pickThread(now int64) int {
	best := -1
	for th := 0; th < m.cfg.Threads; th++ {
		if len(m.queues[th]) == 0 {
			continue
		}
		if m.cfg.PriorityFirst && m.queues[th][0].Priority {
			return th
		}
		if best < 0 || m.served[th] < m.served[best] {
			best = th
		}
	}
	if best < 0 {
		return -1
	}
	if m.score(m.queues[best][0], now) >= 4 {
		return best
	}
	// The deficit choice is SDRAM-unfriendly; take the cleanest other
	// backlogged head, if any is clean. The skip is limited to one
	// alternative — the scheduler reorders across thread heads only, not
	// within threads.
	alt := -1
	for th := 0; th < m.cfg.Threads; th++ {
		if th == best || len(m.queues[th]) == 0 {
			continue
		}
		if m.score(m.queues[th][0], now) >= 4 && (alt < 0 || m.served[th] < m.served[alt]) {
			alt = th
		}
	}
	if alt >= 0 {
		return alt
	}
	return best
}

// score ranks a candidate against the request the scheduler admitted
// last. MemMax sits in front of the Databahn-style controller and has no
// view of the device page table, so — unlike the SDRAM-aware routers — it
// can only judge the paper's pairwise conditions: row hit with the
// previous request > bank interleave > same-bank-new-row (conflict), with
// a penalty for turning the data bus around.
func (m *MemMax) score(p *noc.Packet, now int64) int {
	if !m.hasLast {
		return 0
	}
	s := 0
	switch {
	case noc.RowHit(&m.last, p):
		s = 6
	case noc.BankInterleave(&m.last, p):
		s = 4
	default:
		s = 0 // bank conflict
	}
	if noc.DataContention(&m.last, p) {
		s -= 3
	}
	return s
}

// Busy implements Controller.
func (m *MemMax) Busy() bool {
	if m.eng.busy() {
		return true
	}
	for _, q := range m.queues {
		if len(q) > 0 {
			return true
		}
	}
	return false
}

// NextEvent implements Controller: thread queues holding requests keep
// the scheduler arbitrating every cycle; otherwise the engine decides.
func (m *MemMax) NextEvent(now int64) int64 {
	for _, q := range m.queues {
		if len(q) > 0 {
			return now + 1
		}
	}
	return m.eng.nextEvent(now)
}

// Backlog reports the total queued requests across threads (tests and
// stats).
func (m *MemMax) Backlog() int {
	n := 0
	for _, q := range m.queues {
		n += len(q)
	}
	return n
}

// CmdCycles exposes command-bus activity for the power model.
func (m *MemMax) CmdCycles() int64 { return m.eng.CmdCycles }
