// Package memctrl implements the two memory subsystems the paper
// evaluates:
//
//   - Simple — the paper's lightweight SDRAM controller for SDRAM-aware
//     and GSS NoCs: requests are served in arrival order (the network
//     already scheduled them) through a small PRE/RAS/CAS buffer pipeline
//     with a round-robin command scheduler, a partially-open-page policy
//     driven by SAGM auto-precharge tags, and no reorder buffers.
//
//   - MemMax — the conventional subsystem (Sonics MemMax scheduler +
//     Denali Databahn controller): per-thread request queues with QoS
//     arbitration that reorders across threads to avoid bank conflict and
//     data contention, feeding the same command pipeline (whose ability to
//     prepare pages behind the active data transfer models Databahn's
//     command look-ahead).
//
// Both sit between a noc.Sink (request arrivals) and a dram.Device, and
// hand completions back through callbacks: read completions become
// response packets on the response mesh, write completions are final at
// the device.
package memctrl

import (
	"fmt"

	"aanoc/internal/dram"
	"aanoc/internal/noc"
)

// PagePolicy selects what happens to a row after a column access.
type PagePolicy int

const (
	// OpenPage keeps rows open; conflicts cost an explicit PRE. Used by
	// the CONV, [4] and GSS designs (device in BL8 mode).
	OpenPage PagePolicy = iota
	// PartialOpenPage is the paper's SAGM policy: column commands execute
	// with auto-precharge exactly when the packet carries the AP tag (the
	// last split of a logical request); untagged splits keep the row open
	// for their siblings.
	PartialOpenPage
	// ClosedPage auto-precharges every access (ablation baseline).
	ClosedPage
)

// String names the policy.
func (p PagePolicy) String() string {
	switch p {
	case OpenPage:
		return "open"
	case PartialOpenPage:
		return "partial-open"
	case ClosedPage:
		return "closed"
	default:
		return fmt.Sprintf("PagePolicy(%d)", int(p))
	}
}

// Completion reports a finished request to the system: for reads, At is
// the cycle the last data beat left the device (the response packet
// departs then); for writes, the cycle the device absorbed the last beat.
type Completion struct {
	Pkt *noc.Packet
	At  int64
}

// reqState tracks one request inside the command pipeline.
type reqState struct {
	pkt       *noc.Packet
	beatsDone int   // device beats already covered by issued CAS commands
	lastEnd   int64 // data-window end of the most recent CAS
}

// engine is the shared command pipeline: it turns an ordered stream of
// admitted requests into legal PRE/RAS/CAS commands, one per cycle,
// rotating service among the three command buffers as in the paper's
// Fig. 6 controller. Younger requests may precharge/activate their banks
// while an older request's data still flows — the overlap that implements
// bank interleaving (and Databahn-style look-ahead for MemMax).
type engine struct {
	dev    *dram.Device
	t      dram.Timing // cached dev.Timing(): immutable after construction
	policy PagePolicy
	depth  int // command-pipeline window (paper: few small buffers)
	// ooo allows column commands to issue out of order within the window
	// (Databahn-style look-ahead for MemMax); the paper's lightweight
	// controller keeps strict arrival order.
	ooo bool

	// salp marks a subarray-parallel device (Timing.Subarrays > 1): bank
	// hazards narrow to the owning subarray, CAS/PRE commands carry the
	// row so the device can select its buffer, and the ready-at hints use
	// the Row-resolved variants. With one buffer per bank every salp
	// branch below degenerates to the classic path.
	salp bool
	subs int // row buffers per bank (>= 1)

	inflight []*reqState
	draining []*reqState // all CAS issued; awaiting data-window end
	lastKind noc.Kind    // direction of the most recent column command

	// refresh bookkeeping
	refreshEvery int64
	nextRefresh  int64
	refreshing   bool

	onDone func(Completion)

	// free recycles reqState records: one is leased per admitted request
	// and returned at retirement, so the steady state allocates none.
	free []*reqState

	// CmdCycles counts cycles a command was driven (power model).
	CmdCycles int64
}

func newEngine(dev *dram.Device, policy PagePolicy, depth int, onDone func(Completion)) *engine {
	t := dev.Timing()
	subs := t.Subarrays
	if subs < 1 {
		subs = 1
	}
	return &engine{
		dev:          dev,
		t:            t,
		policy:       policy,
		depth:        depth,
		salp:         subs > 1,
		subs:         subs,
		refreshEvery: t.TREFI,
		nextRefresh:  t.TREFI,
		onDone:       onDone,
	}
}

// leaseReq takes a reqState from the free-list, allocating on cold start.
func (e *engine) leaseReq(p *noc.Packet) *reqState {
	if n := len(e.free); n > 0 {
		r := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		r.pkt = p
		return r
	}
	return &reqState{pkt: p}
}

// releaseReq returns a retired reqState to the free-list, zeroed so the
// pool cannot leak a stale packet pointer.
func (e *engine) releaseReq(r *reqState) {
	*r = reqState{}
	e.free = append(e.free, r)
}

// canAdmit reports whether the pipeline window has room.
func (e *engine) canAdmit() bool { return len(e.inflight) < e.depth }

// admit appends a request to the pipeline in service order.
func (e *engine) admit(p *noc.Packet) {
	if !e.canAdmit() {
		panic("memctrl: admit past window depth")
	}
	e.inflight = append(e.inflight, e.leaseReq(p))
}

// pendingFor reports how many inflight (not yet fully CAS'd) requests
// target the given bank — used by admission policies.
func (e *engine) pendingFor(bank int) int {
	n := 0
	for _, r := range e.inflight {
		if r.pkt.Addr.Bank == bank {
			n++
		}
	}
	return n
}

// blFor picks the burst length of the next CAS for a request: the device
// mode register BL, or the on-the-fly chop for DDR3 when at most four
// beats remain.
func blFor(t dram.Timing, remaining int) int {
	if t.OTF && remaining <= 4 {
		return 4
	}
	return t.DeviceBL
}

// useAP decides whether a CAS executes with auto-precharge: the last CAS
// of the request under the closed-page policy, or of a tagged packet under
// the partially-open-page policy.
func (e *engine) useAP(r *reqState, lastCAS bool) bool {
	if !lastCAS {
		return false
	}
	switch e.policy {
	case PartialOpenPage:
		return r.pkt.APTag
	case ClosedPage:
		return true
	default:
		return false
	}
}

// tick drives at most one command onto the command bus and retires
// finished data transfers. Call once per cycle.
func (e *engine) tick(now int64) {
	e.dev.Sync(now)
	// Retire transfers whose data windows have closed.
	for i := 0; i < len(e.draining); {
		r := e.draining[i]
		if now >= r.lastEnd {
			e.draining = append(e.draining[:i], e.draining[i+1:]...)
			e.onDone(Completion{Pkt: r.pkt, At: r.lastEnd})
			e.releaseReq(r)
			continue
		}
		i++
	}
	if e.maybeRefresh(now) {
		return
	}
	e.issueOne(now)
}

// issueOne drives the command bus for one cycle: the CAS buffer is served
// first (a column command due now is what keeps the data bus seamless —
// with BL4 bursts every other command slot belongs to CAS), then the RAS
// and PRE buffers prepare upcoming pages in the remaining slots.
// Starvation is impossible: a request whose CAS keeps winning eventually
// drains from the window.
func (e *engine) issueOne(now int64) {
	if e.tryCAS(now) || e.tryACT(now) || e.tryPRE(now) {
		e.CmdCycles++
	}
}

// maybeRefresh interposes periodic refresh: once due, it drains the
// pipeline, precharges every open bank and issues REF.
func (e *engine) maybeRefresh(now int64) bool {
	if e.refreshEvery <= 0 {
		return false
	}
	if !e.refreshing {
		if now < e.nextRefresh {
			return false
		}
		e.refreshing = true
	}
	// Wait for outstanding column traffic to finish.
	if len(e.inflight) > 0 || len(e.draining) > 0 {
		// Let normal command flow continue draining the pipeline.
		e.refreshIssueBlocked(now)
		return true
	}
	// Precharge any open bank, one per cycle (in salp mode OpenRow walks
	// the subarrays lowest-first, so open siblings close one at a time).
	for b := 0; b < e.t.Banks; b++ {
		if row, open := e.dev.OpenRow(b, now); open {
			cmd := dram.Command{Kind: dram.CmdPrecharge, Bank: b}
			if e.salp {
				cmd.Row = row
			}
			if e.dev.CanIssue(cmd, now) {
				e.mustIssue(cmd, now)
			}
			return true
		}
	}
	cmd := dram.Command{Kind: dram.CmdRefresh}
	if e.dev.CanIssue(cmd, now) {
		e.mustIssue(cmd, now)
		e.refreshing = false
		e.nextRefresh = now + e.refreshEvery
	}
	return true
}

// refreshIssueBlocked keeps serving the pipeline while a refresh is
// pending; stopping the admission of new work is the caller's job.
func (e *engine) refreshIssueBlocked(now int64) {
	e.issueOne(now)
}

// tryCAS serves the CAS buffer. The in-order engine only considers the
// oldest request; the stage-skipping engine issues the first request
// whose row is open and whose bank has no older pending request. Among
// eligible requests, ones continuing the current data-bus direction are
// preferred — a bus turnaround (tWTR / read-to-write gap) costs idle data
// cycles, so the controller drains direction runs.
func (e *engine) tryCAS(now int64) bool {
	if !e.ooo {
		if len(e.inflight) == 0 {
			return false
		}
		return e.issueCASFor(e.inflight[0], 0, now)
	}
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < len(e.inflight); i++ {
			r := e.inflight[i]
			if pass == 0 && r.pkt.Kind != e.lastKind {
				continue
			}
			if e.olderSameBank(i) {
				continue
			}
			if e.issueCASFor(r, i, now) {
				return true
			}
		}
	}
	return false
}

// olderSameBank reports whether an older inflight request targets the
// same bank as inflight[i] (reordering across it would break the page
// ownership order). In salp mode ownership is per row buffer, so older
// requests bound for sibling subarrays of the same bank do not block.
func (e *engine) olderSameBank(i int) bool {
	r := e.inflight[i]
	for _, o := range e.inflight[:i] {
		if o.pkt.Addr.Bank != r.pkt.Addr.Bank {
			continue
		}
		if e.salp && o.pkt.Addr.Row%e.subs != r.pkt.Addr.Row%e.subs {
			continue
		}
		return true
	}
	return false
}

// issueCASFor issues the next column command of inflight[i] if its row is
// open and the command is legal, retiring the request on its last burst.
func (e *engine) issueCASFor(r *reqState, i int, now int64) bool {
	if e.salp {
		if !e.dev.RowOpen(r.pkt.Addr.Bank, r.pkt.Addr.Row, now) {
			return false
		}
	} else if row, open := e.dev.OpenRow(r.pkt.Addr.Bank, now); !open || row != r.pkt.Addr.Row {
		return false
	}
	remaining := r.pkt.Beats - r.beatsDone
	bl := blFor(e.t, remaining)
	last := remaining <= bl
	kind := dram.CmdRead
	if r.pkt.Kind == noc.Write {
		kind = dram.CmdWrite
	}
	cmd := dram.Command{
		Kind: kind, Bank: r.pkt.Addr.Bank, Col: r.pkt.Addr.Col + r.beatsDone,
		BL: bl, AutoPrecharge: e.useAP(r, last),
	}
	if e.salp {
		cmd.Row = r.pkt.Addr.Row
	}
	if !e.dev.CanIssue(cmd, now) {
		return false
	}
	w, err := e.dev.Issue(cmd, now)
	if err != nil {
		panic(fmt.Sprintf("memctrl: CanIssue accepted but Issue failed: %v", err))
	}
	r.beatsDone += bl
	r.lastEnd = w.End
	e.lastKind = r.pkt.Kind
	if last {
		e.dev.AddUsefulBeats(int64(r.pkt.Beats))
		e.inflight = append(e.inflight[:i], e.inflight[i+1:]...)
		e.draining = append(e.draining, r)
	}
	return true
}

// actTarget finds the first request, in order, whose bank is closed and
// that no older un-CAS'd request contends with (order hazard: an older
// request to the same bank must own the row first).
func (e *engine) actTarget(now int64) *reqState {
	for i, r := range e.inflight {
		if e.salp {
			// ACT only when the row's own subarray is free: an open hit is
			// the CAS buffer's job, a conflicting occupant the PRE buffer's.
			if e.dev.RowOpen(r.pkt.Addr.Bank, r.pkt.Addr.Row, now) {
				continue
			}
			if _, blocked := e.dev.BlockingRow(r.pkt.Addr.Bank, r.pkt.Addr.Row, now); blocked {
				continue
			}
		} else if _, open := e.dev.OpenRow(r.pkt.Addr.Bank, now); open {
			continue
		}
		if e.olderHazard(i) {
			continue
		}
		return r
	}
	return nil
}

// olderHazard reports whether any older inflight request uses the same
// bank as inflight[i] with a different row. In salp mode only rows
// sharing a subarray contend for the row buffer, so different rows in
// sibling subarrays coexist without a hazard.
func (e *engine) olderHazard(i int) bool {
	r := e.inflight[i]
	for _, o := range e.inflight[:i] {
		if o.pkt.Addr.Bank == r.pkt.Addr.Bank && o.pkt.Addr.Row != r.pkt.Addr.Row {
			if e.salp && o.pkt.Addr.Row%e.subs != r.pkt.Addr.Row%e.subs {
				continue
			}
			return true
		}
	}
	return false
}

// tryACT serves the RAS buffer.
func (e *engine) tryACT(now int64) bool {
	r := e.actTarget(now)
	if r == nil {
		return false
	}
	cmd := dram.Command{Kind: dram.CmdActivate, Bank: r.pkt.Addr.Bank, Row: r.pkt.Addr.Row}
	if !e.dev.CanIssue(cmd, now) {
		return false
	}
	e.mustIssue(cmd, now)
	return true
}

// tryPRE serves the PRE buffer: close a bank whose open row mismatches the
// first request that needs it (bank conflict), respecting order hazards.
func (e *engine) tryPRE(now int64) bool {
	for i, r := range e.inflight {
		if e.salp {
			if _, blocked := e.dev.BlockingRow(r.pkt.Addr.Bank, r.pkt.Addr.Row, now); !blocked {
				continue
			}
		} else if row, open := e.dev.OpenRow(r.pkt.Addr.Bank, now); !open || row == r.pkt.Addr.Row {
			continue
		}
		if e.olderHazard(i) {
			continue
		}
		cmd := dram.Command{Kind: dram.CmdPrecharge, Bank: r.pkt.Addr.Bank}
		if e.salp {
			cmd.Row = r.pkt.Addr.Row
		}
		if e.dev.CanIssue(cmd, now) {
			e.mustIssue(cmd, now)
			return true
		}
	}
	return false
}

func (e *engine) mustIssue(cmd dram.Command, now int64) {
	if _, err := e.dev.Issue(cmd, now); err != nil {
		panic(fmt.Sprintf("memctrl: CanIssue accepted but Issue failed: %v", err))
	}
}

// busy reports whether any request is inflight or draining.
func (e *engine) busy() bool { return len(e.inflight) > 0 || len(e.draining) > 0 }

// nextEvent returns the next cycle tick can possibly act, judged from
// the pipeline's own state — a true event queue, not a per-cycle poll:
//
//   - while a refresh drains the pipeline, every cycle (the drain issues
//     at most one command per cycle, state changes each tick);
//   - for each inflight request, a conservative lower bound on the
//     earliest cycle its next command (CAS on an open matching row, PRE
//     on a conflicting row, ACT otherwise) could be legal, from the
//     device's *ReadyAt hints;
//   - the earliest data-window end among draining requests (retirement
//     fires the completion callback at exactly that cycle);
//   - the next scheduled refresh deadline.
//
// The per-request bounds are sound because, while the engine sleeps, no
// command is issued, so the device state a bound was computed from can
// only change by an auto-precharge firing — and a bank with a pending
// auto-precharge is bounded through ActivateReadyAt, which accounts for
// it. Bounds may be early (the request might still be blocked by an
// order hazard or lose the single command slot), never late: waking
// early is a harmless no-op tick, identical byte-for-byte to the
// always-ticking schedule. An idle, refresh-free engine sleeps until
// the next admission wakes it.
func (e *engine) nextEvent(now int64) int64 {
	if e.refreshing {
		return now + 1
	}
	next := int64(1<<63 - 1)
	for _, r := range e.inflight {
		if at := e.reqReadyAt(r, now); at < next {
			next = at
		}
	}
	for _, r := range e.draining {
		if r.lastEnd < next {
			next = r.lastEnd
		}
	}
	if e.refreshEvery > 0 && e.nextRefresh < next {
		next = e.nextRefresh
	}
	if next <= now {
		return now + 1
	}
	return next
}

// reqReadyAt bounds the earliest cycle an inflight request's next
// command could issue, from the device's conservative timing hints.
func (e *engine) reqReadyAt(r *reqState, now int64) int64 {
	bank := r.pkt.Addr.Bank
	if e.salp {
		// Judge readiness against the row's own subarray, not the bank
		// aggregate — a sibling's open row neither serves nor blocks us.
		want := r.pkt.Addr.Row
		switch {
		case e.dev.RowOpen(bank, want, now):
			if e.dev.RowAutoPrechargePending(bank, want, now) {
				return e.dev.RowActivateReadyAt(bank, want, now)
			}
			kind := dram.CmdRead
			if r.pkt.Kind == noc.Write {
				kind = dram.CmdWrite
			}
			return e.dev.RowColumnReadyAt(bank, want, kind, now)
		default:
			if _, blocked := e.dev.BlockingRow(bank, want, now); blocked {
				return e.dev.RowPrechargeReadyAt(bank, want, now)
			}
			return e.dev.RowActivateReadyAt(bank, want, now)
		}
	}
	row, open := e.dev.OpenRow(bank, now)
	switch {
	case open && e.dev.AutoPrechargePending(bank, now):
		// The row will close on its own; the next step is a re-activate.
		return e.dev.ActivateReadyAt(bank, now)
	case open && row == r.pkt.Addr.Row:
		kind := dram.CmdRead
		if r.pkt.Kind == noc.Write {
			kind = dram.CmdWrite
		}
		return e.dev.ColumnReadyAt(bank, kind, now)
	case open:
		// Conflicting row: precharge first.
		return e.dev.PrechargeReadyAt(bank, now)
	default:
		return e.dev.ActivateReadyAt(bank, now)
	}
}

// admitBlocked reports that a refresh is pending and admission should
// pause until it completes.
func (e *engine) admitBlocked() bool { return e.refreshing }
