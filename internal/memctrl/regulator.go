package memctrl

import (
	"aanoc/internal/dram"
	"aanoc/internal/noc"
)

// RegulatorConfig sizes the per-bank bandwidth regulator.
type RegulatorConfig struct {
	// Cores is the number of regulated requestors; a packet maps to
	// regulator slot SrcCore mod Cores.
	Cores int
	// QueueDepth is the per-core request buffer depth.
	QueueDepth int
	// Window is the regulation window in memory cycles; per-(core,bank)
	// usage clears at every multiple of it.
	Window int64
	// Budget is the beat budget each (core, bank) pair may consume per
	// window. A head that would exceed it waits for the next window. The
	// constructor clamps Budget to at least MinBudget so a single request
	// can always fit in a fresh window (otherwise it could never become
	// eligible and the controller would deadlock).
	Budget int64
	// MinBudget is the largest single-request beat count the workload can
	// present (the system computes it from the resolved app model).
	MinBudget int64
	// PipelineDepth is the command-pipeline window behind the regulator.
	PipelineDepth int
	// Policy is the page policy of the command pipeline.
	Policy PagePolicy

	// DisableGate bypasses the eligibility check while still charging
	// usage — admissions can then exceed the budget. Test-only: it exists
	// so the mutation harness can prove the checked-mode regulation
	// monitor detects a broken regulator.
	DisableGate bool
}

// DefaultRegulatorConfig mirrors the MemMax buffer sizing with a
// regulation window long enough to amortize a refresh.
func DefaultRegulatorConfig(cores int) RegulatorConfig {
	if cores < 1 {
		cores = 1
	}
	return RegulatorConfig{
		Cores: cores, QueueDepth: 32,
		Window: 1024, Budget: 256, MinBudget: 1,
		PipelineDepth: 4, Policy: OpenPage,
	}
}

// Regulator is a per-bank bandwidth regulator after Sullivan et al.:
// every (core, bank) pair holds a beat budget per fixed window, charged
// at admission, and a head whose grant would exceed its budget is simply
// ineligible until the window rolls — so no core can squeeze another
// core's share of any bank, regardless of its arrival rate. Eligible
// heads are served round-robin into the shared command pipeline. The
// regulation invariant (charged usage never exceeds the budget in any
// window) is reported through OnAdmit and shadow-audited by checked mode
// (check.RegulatorMonitor).
type Regulator struct {
	cfg    RegulatorConfig
	eng    *engine
	queues [][]*noc.Packet
	// usage[core][bank] counts beats charged in the current window.
	usage     [][]int64
	curWindow int64
	rotate    int

	// OnAdmit, when set, observes every admission with the facts the
	// regulation invariant is audited from.
	OnAdmit func(core, bank, beats int, now int64)

	// Stats counts scheduler decisions for the observability report.
	Stats struct {
		Grants int64
		// Throttled counts grant opportunities lost to regulation: cycles
		// in which at least one head was backlogged but every backlogged
		// head was over budget.
		Throttled   int64
		WindowRolls int64
	}
}

// NewRegulator builds the regulator over a device. Budget is clamped to
// MinBudget (and both to 1) so admission can always make progress.
func NewRegulator(dev *dram.Device, cfg RegulatorConfig, onDone func(Completion)) *Regulator {
	if cfg.Cores < 1 {
		cfg.Cores = 1
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 1
	}
	if cfg.Window < 1 {
		cfg.Window = 1
	}
	if cfg.MinBudget < 1 {
		cfg.MinBudget = 1
	}
	if cfg.Budget < cfg.MinBudget {
		cfg.Budget = cfg.MinBudget
	}
	if cfg.PipelineDepth < 1 {
		cfg.PipelineDepth = 1
	}
	r := &Regulator{
		cfg:    cfg,
		eng:    newEngine(dev, cfg.Policy, cfg.PipelineDepth, onDone),
		queues: make([][]*noc.Packet, cfg.Cores),
		usage:  make([][]int64, cfg.Cores),
	}
	r.eng.ooo = true
	banks := r.eng.t.Banks
	for i := range r.usage {
		r.usage[i] = make([]int64, banks)
	}
	return r
}

// coreOf maps a packet to its regulator slot.
func (r *Regulator) coreOf(p *noc.Packet) int {
	c := p.SrcCore % r.cfg.Cores
	if c < 0 {
		c = 0
	}
	return c
}

// Offer implements Controller: enqueue into the core's FIFO, refusing
// when it is full. Regulation happens at grant time, not admission — a
// queued request holds no budget until granted.
func (r *Regulator) Offer(p *noc.Packet, now int64) bool {
	c := r.coreOf(p)
	if len(r.queues[c]) >= r.cfg.QueueDepth {
		return false
	}
	r.queues[c] = append(r.queues[c], p)
	return true
}

// rollWindow clears per-(core,bank) usage at window boundaries.
func (r *Regulator) rollWindow(now int64) {
	w := now / r.cfg.Window
	if w == r.curWindow {
		return
	}
	r.curWindow = w
	r.Stats.WindowRolls++
	for _, u := range r.usage {
		for b := range u {
			u[b] = 0
		}
	}
}

// eligible reports whether granting p for core c fits the core's
// per-bank budget in the current window.
func (r *Regulator) eligible(c int, p *noc.Packet) bool {
	if r.cfg.DisableGate {
		return true
	}
	return r.usage[c][p.Addr.Bank]+int64(p.Beats) <= r.cfg.Budget
}

// Tick implements Controller: roll the regulation window, grant eligible
// heads round-robin into the pipeline, then drive the pipeline.
func (r *Regulator) Tick(now int64) {
	r.rollWindow(now)
	for !r.eng.admitBlocked() && r.eng.canAdmit() {
		granted, backlogged := false, false
		for i := 0; i < r.cfg.Cores; i++ {
			c := (r.rotate + i) % r.cfg.Cores
			if len(r.queues[c]) == 0 {
				continue
			}
			backlogged = true
			p := r.queues[c][0]
			if !r.eligible(c, p) {
				continue
			}
			r.queues[c] = r.queues[c][1:]
			r.usage[c][p.Addr.Bank] += int64(p.Beats)
			if r.OnAdmit != nil {
				r.OnAdmit(c, p.Addr.Bank, p.Beats, now)
			}
			r.eng.admit(p)
			r.Stats.Grants++
			r.rotate = (c + 1) % r.cfg.Cores
			granted = true
			break
		}
		if !granted {
			if backlogged {
				r.Stats.Throttled++
			}
			break
		}
	}
	r.eng.tick(now)
}

// Busy implements Controller.
func (r *Regulator) Busy() bool { return r.eng.busy() || r.Backlog() > 0 }

// NextEvent implements Controller: backlogged queues keep the regulator
// arbitrating every cycle (a throttled head becomes eligible at the next
// window roll, which now+1 stepping reaches conservatively); otherwise
// the pipeline decides.
func (r *Regulator) NextEvent(now int64) int64 {
	if r.Backlog() > 0 {
		return now + 1
	}
	return r.eng.nextEvent(now)
}

// Backlog reports the total queued requests across cores.
func (r *Regulator) Backlog() int {
	n := 0
	for _, q := range r.queues {
		n += len(q)
	}
	return n
}

// CmdCycles exposes command-bus activity for the power model.
func (r *Regulator) CmdCycles() int64 { return r.eng.CmdCycles }

// Config returns the resolved (clamped) configuration — the regulation
// monitor derives its window and budget from it, so the two cannot
// drift.
func (r *Regulator) Config() RegulatorConfig { return r.cfg }
