package memctrl

import (
	"testing"

	"aanoc/internal/dram"
	"aanoc/internal/noc"
)

func req(id int64, bank, row, col int, kind noc.Kind, beats int, ap bool) *noc.Packet {
	return &noc.Packet{
		ID: id, ParentID: id, Kind: kind, Class: noc.ClassMedia,
		Addr:  dram.Address{Bank: bank, Row: row, Col: col},
		Beats: beats, Flits: noc.FlitsForBeats(beats), Splits: 1, APTag: ap,
	}
}

// drive feeds the packets to the controller in order and runs until all
// complete or maxCycles elapse, returning the completions in order.
func drive(t *testing.T, ctrl Controller, pkts []*noc.Packet, done *[]Completion, maxCycles int64) {
	t.Helper()
	i := 0
	for now := int64(0); now < maxCycles; now++ {
		for i < len(pkts) && ctrl.Offer(pkts[i], now) {
			i++
		}
		ctrl.Tick(now)
		if i == len(pkts) && !ctrl.Busy() {
			// Settle: let trailing auto-precharges fire.
			for k := int64(1); k <= 64; k++ {
				ctrl.Tick(now + k)
			}
			return
		}
	}
	t.Fatalf("controller did not drain: %d/%d offered, %d completed", i, len(pkts), len(*done))
}

func mkSimple(t *testing.T, tm dram.Timing, policy PagePolicy) (*Simple, *dram.Device, *[]Completion) {
	t.Helper()
	dev := dram.MustNewDevice(tm)
	var done []Completion
	s := NewSimple(dev, policy, 4, func(c Completion) { done = append(done, c) })
	return s, dev, &done
}

func TestSimpleSingleRead(t *testing.T) {
	tm := dram.MustSpeed(dram.DDR2, 333)
	s, dev, done := mkSimple(t, tm, OpenPage)
	p := req(1, 0, 5, 0, noc.Read, 8, false)
	drive(t, s, []*noc.Packet{p}, done, 1000)
	if len(*done) != 1 || (*done)[0].Pkt != p {
		t.Fatalf("completions = %v", *done)
	}
	// ACT at ~0, CAS at tRCD, data ends CL + burst later.
	min := tm.TRCD + tm.CL + dram.BurstCycles(8)
	if at := (*done)[0].At; at < min || at > min+8 {
		t.Errorf("completion at %d, want about %d", at, min)
	}
	st := dev.Stats()
	if st.Activates != 1 || st.Reads != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSimpleMultiCASRequest(t *testing.T) {
	// 18 useful beats on a BL8 device need three column commands moving
	// 24 beats; the waste is visible as BurstsBL - UsefulBeats.
	tm := dram.MustSpeed(dram.DDR2, 333)
	s, dev, done := mkSimple(t, tm, OpenPage)
	p := req(1, 1, 2, 0, noc.Write, 18, false)
	drive(t, s, []*noc.Packet{p}, done, 1000)
	st := dev.Stats()
	if st.Writes != 3 {
		t.Fatalf("writes = %d, want 3", st.Writes)
	}
	if st.BurstsBL != 24 || st.UsefulBeats != 18 {
		t.Fatalf("moved %d useful %d, want 24/18", st.BurstsBL, st.UsefulBeats)
	}
}

func TestSimpleRowHitStreamNeedsOneActivate(t *testing.T) {
	tm := dram.MustSpeed(dram.DDR1, 200)
	s, dev, done := mkSimple(t, tm, OpenPage)
	var pkts []*noc.Packet
	for i := int64(0); i < 6; i++ {
		pkts = append(pkts, req(i+1, 2, 7, int(i)*8, noc.Read, 8, false))
	}
	drive(t, s, pkts, done, 2000)
	st := dev.Stats()
	if st.Activates != 1 {
		t.Errorf("activates = %d, want 1 (all row hits)", st.Activates)
	}
	if st.Precharges != 0 {
		t.Errorf("precharges = %d, want 0", st.Precharges)
	}
	if len(*done) != 6 {
		t.Errorf("completions = %d, want 6", len(*done))
	}
}

func TestSimpleBankConflictForcesPrecharge(t *testing.T) {
	tm := dram.MustSpeed(dram.DDR2, 333)
	s, dev, done := mkSimple(t, tm, OpenPage)
	pkts := []*noc.Packet{
		req(1, 0, 1, 0, noc.Read, 8, false),
		req(2, 0, 2, 0, noc.Read, 8, false), // same bank, new row
	}
	drive(t, s, pkts, done, 2000)
	st := dev.Stats()
	if st.Precharges != 1 || st.Activates != 2 {
		t.Errorf("stats = %+v, want 1 PRE / 2 ACT", st)
	}
}

func TestSimplePartialOpenPageUsesAP(t *testing.T) {
	// Tagged packets close their bank via AP: the following conflicting
	// request needs no explicit precharge.
	tm := dram.MustSpeed(dram.DDR2, 333).WithDeviceBL(4)
	s, dev, done := mkSimple(t, tm, PartialOpenPage)
	pkts := []*noc.Packet{
		req(1, 0, 1, 0, noc.Write, 4, true), // tagged: AP
		req(2, 0, 2, 0, noc.Write, 4, true), // same bank, new row
	}
	drive(t, s, pkts, done, 2000)
	st := dev.Stats()
	if st.Precharges != 0 {
		t.Errorf("explicit precharges = %d, want 0 (AP)", st.Precharges)
	}
	if st.AutoPre != 2 {
		t.Errorf("auto precharges = %d, want 2", st.AutoPre)
	}
}

func TestSimpleUntaggedSplitKeepsRowOpen(t *testing.T) {
	tm := dram.MustSpeed(dram.DDR2, 333).WithDeviceBL(4)
	s, dev, done := mkSimple(t, tm, PartialOpenPage)
	// Three splits of one logical request: only the last is tagged.
	a := req(1, 0, 1, 0, noc.Write, 4, false)
	b := req(2, 0, 1, 4, noc.Write, 4, false)
	c := req(3, 0, 1, 8, noc.Write, 4, true)
	for _, p := range []*noc.Packet{a, b, c} {
		p.ParentID = 1
		p.Splits = 3
	}
	drive(t, s, []*noc.Packet{a, b, c}, done, 2000)
	st := dev.Stats()
	if st.Activates != 1 {
		t.Errorf("activates = %d, want 1 (splits are row hits)", st.Activates)
	}
	if st.AutoPre != 1 {
		t.Errorf("auto precharges = %d, want 1 (only the tag)", st.AutoPre)
	}
}

func TestSimpleInOrderCompletion(t *testing.T) {
	tm := dram.MustSpeed(dram.DDR3, 667)
	s, _, done := mkSimple(t, tm, OpenPage)
	var pkts []*noc.Packet
	for i := int64(0); i < 10; i++ {
		pkts = append(pkts, req(i+1, int(i)%8, int(i/2), 0, noc.Read, 8, false))
	}
	drive(t, s, pkts, done, 5000)
	for i := 1; i < len(*done); i++ {
		if (*done)[i].Pkt.ID < (*done)[i-1].Pkt.ID {
			t.Fatal("Simple must complete requests in order")
		}
		if (*done)[i].At < (*done)[i-1].At {
			t.Fatal("completion times must be monotone")
		}
	}
}

func TestSimpleBackpressure(t *testing.T) {
	tm := dram.MustSpeed(dram.DDR2, 333)
	dev := dram.MustNewDevice(tm)
	s := NewSimple(dev, OpenPage, 2, func(Completion) {})
	if !s.Offer(req(1, 0, 1, 0, noc.Read, 8, false), 0) {
		t.Fatal("first offer should be accepted")
	}
	if !s.Offer(req(2, 1, 1, 0, noc.Read, 8, false), 0) {
		t.Fatal("second offer should be accepted")
	}
	if s.Offer(req(3, 2, 1, 0, noc.Read, 8, false), 0) {
		t.Fatal("third offer should be refused (depth 2)")
	}
}

func TestSimpleRefreshHappens(t *testing.T) {
	tm := dram.MustSpeed(dram.DDR1, 133) // tREFI ~1036
	s, dev, done := mkSimple(t, tm, OpenPage)
	var pkts []*noc.Packet
	for i := int64(0); i < 40; i++ {
		pkts = append(pkts, req(i+1, int(i)%4, 3, 0, noc.Read, 8, false))
	}
	// Space requests out over > tREFI cycles.
	i := 0
	for now := int64(0); now < 4000; now++ {
		if now%100 == 0 && i < len(pkts) {
			if s.Offer(pkts[i], now) {
				i++
			}
		}
		s.Tick(now)
	}
	if dev.Stats().Refreshes < 2 {
		t.Errorf("refreshes = %d, want >= 2 over 4000 cycles", dev.Stats().Refreshes)
	}
	if len(*done) == 0 {
		t.Error("no completions amid refreshes")
	}
}

func TestFig5APAvoidsCommandCongestion(t *testing.T) {
	// The paper's Fig. 5: in BL4 mode, explicit precharges congest the
	// command bus; AP removes the PRE commands entirely. Alternating-bank
	// single-burst writes with new rows each time finish no later — and
	// with strictly fewer explicit precharges — under the closed-page
	// (AP) policy than under open-page.
	tm := dram.MustSpeed(dram.DDR2, 333).WithDeviceBL(4)
	mk := func(policy PagePolicy) (int64, dram.Stats) {
		dev := dram.MustNewDevice(tm)
		var last int64
		s := NewSimple(dev, policy, 4, func(c Completion) {
			if c.At > last {
				last = c.At
			}
		})
		var pkts []*noc.Packet
		for i := int64(0); i < 32; i++ {
			pkts = append(pkts, req(i+1, int(i)%4, int(i), 0, noc.Write, 4, true))
		}
		drive(t, s, pkts, done0(), 20000)
		return last, dev.Stats()
	}
	apTime, apStats := mk(ClosedPage)
	opTime, opStats := mk(OpenPage)
	if apStats.Precharges != 0 {
		t.Errorf("AP run issued %d explicit precharges", apStats.Precharges)
	}
	if opStats.Precharges == 0 {
		t.Error("open-page run should need explicit precharges")
	}
	if apTime > opTime {
		t.Errorf("AP run slower (%d) than open-page (%d)", apTime, opTime)
	}
}

// done0 builds a throwaway completion list for helpers that manage their
// own completion tracking.
func done0() *[]Completion { v := []Completion{}; return &v }

func TestMemMaxReordersForRowHit(t *testing.T) {
	tm := dram.MustSpeed(dram.DDR2, 333)
	dev := dram.MustNewDevice(tm)
	var done []Completion
	m := NewMemMax(dev, MemMaxConfig{Threads: 4, QueueDepth: 8, DataFlits: 64, PipelineDepth: 2}, func(c Completion) { done = append(done, c) })
	// Thread assignment is class-based: use different classes to land the
	// requests on different threads.
	conflict := req(1, 0, 1, 0, noc.Read, 8, false)
	conflict.Class = noc.ClassPrefetch
	hit := req(2, 0, 2, 0, noc.Read, 8, false)
	hit.Class = noc.ClassMedia
	// Open row 2 of bank 0 first via a seed request.
	seed := req(3, 0, 2, 0, noc.Read, 8, false)
	seed.Class = noc.ClassPeripheral
	if !m.Offer(seed, 0) {
		t.Fatal("seed refused")
	}
	for now := int64(0); now < 100; now++ {
		m.Tick(now)
	}
	if !m.Offer(conflict, 100) || !m.Offer(hit, 100) {
		t.Fatal("offers refused")
	}
	for now := int64(100); now < 400; now++ {
		m.Tick(now)
	}
	if len(done) != 3 {
		t.Fatalf("completions = %d, want 3", len(done))
	}
	if done[1].Pkt.ID != 2 {
		t.Errorf("row-hit request should be served before the conflicting one, order: %v %v", done[1].Pkt.ID, done[2].Pkt.ID)
	}
}

func TestMemMaxPriorityFirst(t *testing.T) {
	tm := dram.MustSpeed(dram.DDR2, 333)
	dev := dram.MustNewDevice(tm)
	var done []Completion
	cfg := MemMaxConfig{Threads: 4, QueueDepth: 8, DataFlits: 64, PipelineDepth: 1, PriorityFirst: true}
	m := NewMemMax(dev, cfg, func(c Completion) { done = append(done, c) })
	be := req(1, 1, 1, 0, noc.Read, 8, false)
	be.Class = noc.ClassMedia
	pri := req(2, 2, 1, 0, noc.Read, 8, false)
	pri.Class = noc.ClassDemand
	pri.Priority = true
	if !m.Offer(be, 0) || !m.Offer(pri, 0) {
		t.Fatal("offers refused")
	}
	for now := int64(0); now < 300; now++ {
		m.Tick(now)
	}
	if len(done) != 2 || done[0].Pkt.ID != 2 {
		t.Fatalf("priority packet should complete first: %+v", done)
	}
}

func TestMemMaxBackpressurePerThread(t *testing.T) {
	tm := dram.MustSpeed(dram.DDR2, 333)
	dev := dram.MustNewDevice(tm)
	m := NewMemMax(dev, MemMaxConfig{Threads: 4, QueueDepth: 2, DataFlits: 64, PipelineDepth: 1}, func(Completion) {})
	a := req(1, 0, 1, 0, noc.Read, 8, false)
	b := req(2, 0, 2, 0, noc.Read, 8, false)
	c := req(3, 0, 3, 0, noc.Read, 8, false)
	for _, p := range []*noc.Packet{a, b, c} {
		p.Class = noc.ClassMedia
		p.SrcCore = 0
	}
	if !m.Offer(a, 0) || !m.Offer(b, 0) {
		t.Fatal("first two offers should fit")
	}
	if m.Offer(c, 0) {
		t.Fatal("third offer should be refused (queue depth 2)")
	}
	if m.Backlog() != 2 {
		t.Fatalf("backlog = %d, want 2", m.Backlog())
	}
}

func TestMemMaxDrainsMixedTraffic(t *testing.T) {
	tm := dram.MustSpeed(dram.DDR3, 667)
	dev := dram.MustNewDevice(tm)
	var done []Completion
	m := NewMemMax(dev, DefaultMemMaxConfig(), func(c Completion) { done = append(done, c) })
	classes := []noc.Class{noc.ClassDemand, noc.ClassPrefetch, noc.ClassMedia, noc.ClassPeripheral}
	var pkts []*noc.Packet
	for i := int64(0); i < 40; i++ {
		p := req(i+1, int(i)%8, int(i%5), 0, noc.Kind(i%2), 8, false)
		p.Class = classes[i%4]
		p.SrcCore = int(i % 7)
		pkts = append(pkts, p)
	}
	drive(t, m, pkts, &done, 20000)
	if len(done) != 40 {
		t.Fatalf("completions = %d, want 40", len(done))
	}
	if dev.Utilization(int64(done[len(done)-1].At)) <= 0 {
		t.Error("utilization should be positive")
	}
}
