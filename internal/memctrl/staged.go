package memctrl

import (
	"aanoc/internal/dram"
	"aanoc/internal/noc"
)

// StagedConfig sizes the staged heterogeneous scheduler.
type StagedConfig struct {
	// Cores is the number of classified requestors; a packet maps to slot
	// SrcCore mod Cores.
	Cores int
	// QueueDepth is the per-core request buffer depth.
	QueueDepth int
	// Threshold is the outstanding-request count above which a core is
	// classified bandwidth-intensive ("heavy"). Outstanding counts
	// requests admitted but not yet completed at the device.
	Threshold int
	// PipelineDepth is the command-pipeline window behind the scheduler.
	PipelineDepth int
	// Policy is the page policy of the command pipeline.
	Policy PagePolicy
}

// DefaultStagedConfig mirrors the MemMax buffer sizing with the SMS-style
// intensity threshold.
func DefaultStagedConfig(cores int) StagedConfig {
	if cores < 1 {
		cores = 1
	}
	return StagedConfig{
		Cores: cores, QueueDepth: 32, Threshold: 4,
		PipelineDepth: 4, Policy: OpenPage,
	}
}

// Staged is a staged heterogeneous scheduler in the spirit of SMS
// (Ausavarungnirun et al.): requestors are classified by their
// outstanding-request intensity — a core with more than Threshold
// requests in flight is bandwidth-intensive ("heavy"), the rest are
// latency-sensitive ("light") — and the grant stage serves light heads
// round-robin before any heavy head. Heavy cores still drain round-robin
// among themselves, so classification shifts latency, not liveness: a
// heavy core's backlog completing moves it back to the light class.
type Staged struct {
	cfg    StagedConfig
	eng    *engine
	queues [][]*noc.Packet
	// outstanding[c] counts core c's requests admitted but not completed.
	outstanding []int
	heavy       []bool
	rotate      int

	// Stats counts scheduler decisions for the observability report.
	Stats struct {
		LightGrants       int64
		HeavyGrants       int64
		Reclassifications int64
	}
}

// NewStaged builds the staged scheduler over a device.
func NewStaged(dev *dram.Device, cfg StagedConfig, onDone func(Completion)) *Staged {
	if cfg.Cores < 1 {
		cfg.Cores = 1
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 1
	}
	if cfg.Threshold < 1 {
		cfg.Threshold = 1
	}
	if cfg.PipelineDepth < 1 {
		cfg.PipelineDepth = 1
	}
	s := &Staged{
		cfg:         cfg,
		queues:      make([][]*noc.Packet, cfg.Cores),
		outstanding: make([]int, cfg.Cores),
		heavy:       make([]bool, cfg.Cores),
	}
	s.eng = newEngine(dev, cfg.Policy, cfg.PipelineDepth, func(c Completion) {
		// The packet is still valid here; the downstream callback may
		// recycle it.
		core := s.coreOf(c.Pkt)
		if s.outstanding[core] > 0 {
			s.outstanding[core]--
		}
		s.reclassify(core)
		onDone(c)
	})
	s.eng.ooo = true
	return s
}

// coreOf maps a packet to its classification slot.
func (s *Staged) coreOf(p *noc.Packet) int {
	c := p.SrcCore % s.cfg.Cores
	if c < 0 {
		c = 0
	}
	return c
}

// reclassify re-derives a core's intensity class from its outstanding
// count, counting flips.
func (s *Staged) reclassify(c int) {
	h := s.outstanding[c] > s.cfg.Threshold
	if h != s.heavy[c] {
		s.heavy[c] = h
		s.Stats.Reclassifications++
	}
}

// Offer implements Controller: enqueue into the core's FIFO, refusing
// when it is full; admission raises the core's outstanding count (and
// possibly its class).
func (s *Staged) Offer(p *noc.Packet, now int64) bool {
	c := s.coreOf(p)
	if len(s.queues[c]) >= s.cfg.QueueDepth {
		return false
	}
	s.queues[c] = append(s.queues[c], p)
	s.outstanding[c]++
	s.reclassify(c)
	return true
}

// Tick implements Controller: grant light heads round-robin, then heavy
// heads, then drive the pipeline.
func (s *Staged) Tick(now int64) {
	for !s.eng.admitBlocked() && s.eng.canAdmit() {
		c := s.pick(false)
		light := true
		if c < 0 {
			c = s.pick(true)
			light = false
		}
		if c < 0 {
			break
		}
		p := s.queues[c][0]
		s.queues[c] = s.queues[c][1:]
		s.eng.admit(p)
		if light {
			s.Stats.LightGrants++
		} else {
			s.Stats.HeavyGrants++
		}
		s.rotate = (c + 1) % s.cfg.Cores
	}
	s.eng.tick(now)
}

// pick returns the next backlogged core of the wanted class in
// round-robin order, or -1.
func (s *Staged) pick(wantHeavy bool) int {
	for i := 0; i < s.cfg.Cores; i++ {
		c := (s.rotate + i) % s.cfg.Cores
		if len(s.queues[c]) > 0 && s.heavy[c] == wantHeavy {
			return c
		}
	}
	return -1
}

// Busy implements Controller.
func (s *Staged) Busy() bool { return s.eng.busy() || s.Backlog() > 0 }

// NextEvent implements Controller: backlogged queues keep the grant
// stage arbitrating every cycle; otherwise the pipeline decides.
func (s *Staged) NextEvent(now int64) int64 {
	if s.Backlog() > 0 {
		return now + 1
	}
	return s.eng.nextEvent(now)
}

// Backlog reports the total queued requests across cores.
func (s *Staged) Backlog() int {
	n := 0
	for _, q := range s.queues {
		n += len(q)
	}
	return n
}

// CmdCycles exposes command-bus activity for the power model.
func (s *Staged) CmdCycles() int64 { return s.eng.CmdCycles }
