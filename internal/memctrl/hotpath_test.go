package memctrl

import (
	"math"
	"testing"

	"aanoc/internal/dram"
	"aanoc/internal/noc"
)

// TestNextEventEquivalence is the event-queue soundness gate: driving the
// controller only at the cycles NextEvent names must produce the exact
// completion stream of ticking every cycle. A bound that is ever late
// (past a cycle where Tick would have acted) shows up as a diverging
// completion time.
func TestNextEventEquivalence(t *testing.T) {
	tm := dram.MustSpeed(dram.DDR3, 667)
	mk := func() ([]*noc.Packet, *Simple, *[]Completion) {
		s, _, done := mkSimple(t, tm, PartialOpenPage)
		var pkts []*noc.Packet
		// A mix of row hits, bank interleaves, conflicts, read/write
		// turnarounds, and AP tags — every branch of reqReadyAt.
		for i := int64(0); i < 24; i++ {
			kind := noc.Read
			if i%3 == 1 {
				kind = noc.Write
			}
			bank := int(i) % 3
			row := int(i/6) % 2
			pkts = append(pkts, req(i+1, bank, row, int(i)*8, kind, 8, i%4 == 3))
		}
		return pkts, s, done
	}

	run := func(eventDriven bool) []Completion {
		pkts, s, done := mk()
		i := 0
		now := int64(0)
		for now < 20000 {
			for i < len(pkts) && s.Offer(pkts[i], now) {
				i++
			}
			s.Tick(now)
			if i == len(pkts) && !s.Busy() {
				break
			}
			if eventDriven && i == len(pkts) {
				// Bounds cover admitted work only; while offers are still
				// pending the admitter polls every cycle, exactly as the
				// system's mem-admit component does.
				next := s.NextEvent(now)
				if next <= now {
					t.Fatalf("NextEvent(%d) = %d, not in the future", now, next)
				}
				now = next
			} else {
				now++
			}
		}
		return *done
	}

	ref, ev := run(false), run(true)
	if len(ref) != len(ev) {
		t.Fatalf("event-driven run completed %d requests, reference %d", len(ev), len(ref))
	}
	for i := range ref {
		if ref[i].Pkt.ID != ev[i].Pkt.ID || ref[i].At != ev[i].At {
			t.Fatalf("completion %d diverged: reference %d@%d, event-driven %d@%d",
				i, ref[i].Pkt.ID, ref[i].At, ev[i].Pkt.ID, ev[i].At)
		}
	}
}

// TestNextEventRefreshDeadline: an idle controller's only future event is
// the refresh deadline; once the refresh drain begins, the engine polls
// every cycle until it ends.
func TestNextEventRefreshDeadline(t *testing.T) {
	tm := dram.MustSpeed(dram.DDR1, 133) // tREFI ~1036
	s, dev, done := mkSimple(t, tm, OpenPage)
	if got := s.NextEvent(0); got != tm.TREFI {
		t.Fatalf("idle NextEvent(0) = %d, want refresh deadline %d", got, tm.TREFI)
	}
	// Leave a row open so the refresh has a drain phase (open-page policy
	// keeps the row open after the read completes).
	p := req(1, 0, 5, 0, noc.Read, 8, false)
	drive(t, s, []*noc.Packet{p}, done, 1000)
	// With the pipeline idle again, the only event left is the deadline.
	idleAt := (*done)[0].At + 64
	if _, open := dev.OpenRow(0, idleAt); !open {
		t.Fatal("open-page read should leave its row open")
	}
	if got := s.NextEvent(idleAt); got != tm.TREFI {
		t.Fatalf("NextEvent(%d) = %d, want refresh deadline %d", idleAt, got, tm.TREFI)
	}
	// Jump to the deadline: the tick starts the refresh and spends the
	// cycle precharging the open bank, so the drain polls next-cycle.
	s.Tick(tm.TREFI)
	if !s.eng.refreshing {
		t.Fatal("tick at tREFI did not start the refresh")
	}
	if got := s.NextEvent(tm.TREFI); got != tm.TREFI+1 {
		t.Fatalf("refreshing NextEvent = %d, want %d", got, tm.TREFI+1)
	}
	// Drain it; the next deadline re-arms a full interval later.
	now := tm.TREFI
	for s.eng.refreshing && now < 3*tm.TREFI {
		now++
		s.Tick(now)
	}
	if s.eng.refreshing {
		t.Fatal("refresh never finished")
	}
	if dev.Stats().Refreshes != 1 {
		t.Fatalf("refreshes = %d, want 1", dev.Stats().Refreshes)
	}
	if got := s.NextEvent(now); got != s.eng.nextRefresh {
		t.Fatalf("post-refresh NextEvent = %d, want next deadline %d", got, s.eng.nextRefresh)
	}
}

// TestNextEventRearmAfterBurst: after a burst drains, a refresh-free
// engine reports "idle until offered" (MaxInt64); a successful Offer
// re-arms a finite bound, and the bound tracks the in-flight request.
func TestNextEventRearmAfterBurst(t *testing.T) {
	tm := dram.MustSpeed(dram.DDR2, 333)
	tm.TREFI = 0 // isolate the request path from refresh deadlines
	s, _, done := mkSimple(t, tm, OpenPage)

	p := req(1, 0, 5, 0, noc.Read, 8, false)
	drive(t, s, []*noc.Packet{p}, done, 1000)
	if len(*done) != 1 {
		t.Fatalf("burst did not complete: %d", len(*done))
	}
	now := (*done)[0].At + 64
	if got := s.NextEvent(now); got != math.MaxInt64 {
		t.Fatalf("drained NextEvent = %d, want MaxInt64 (idle until offered)", got)
	}
	p2 := req(2, 1, 7, 0, noc.Read, 8, false)
	if !s.Offer(p2, now) {
		t.Fatal("drained controller refused an offer")
	}
	next := s.NextEvent(now)
	if next <= now || next == math.MaxInt64 {
		t.Fatalf("NextEvent after offer = %d, want a finite future cycle", next)
	}
	// The bound may be conservative (early) but never late: ticking only
	// at the bounds must still complete the request.
	for steps := 0; s.Busy() && steps < 1000; steps++ {
		s.Tick(now)
		if n := s.NextEvent(now); n > now {
			now = n
		} else {
			t.Fatalf("NextEvent(%d) = %d did not advance", now, n)
		}
		if now == math.MaxInt64 {
			break
		}
	}
	if len(*done) != 2 {
		t.Fatalf("event-driven ticking lost the request: %d completions", len(*done))
	}
}

// TestEngineSteadyStateAllocs pins the controller hot path at zero
// allocations per request once the pipeline free-list is warm: admit,
// issue (CanIssue probing included), retire.
func TestEngineSteadyStateAllocs(t *testing.T) {
	tm := dram.MustSpeed(dram.DDR3, 667)
	tm.TREFI = 0
	dev := dram.MustNewDevice(tm)
	completions := 0
	s := NewSimple(dev, OpenPage, 4, func(Completion) { completions++ })

	p := req(1, 0, 5, 0, noc.Read, 8, false)
	now := int64(0)
	runOne := func() {
		for !s.Offer(p, now) {
			s.Tick(now)
			now++
		}
		want := completions + 1
		for completions < want {
			s.Tick(now)
			now++
		}
	}
	runOne() // warm the reqState free-list

	if avg := testing.AllocsPerRun(200, runOne); avg != 0 {
		t.Errorf("controller steady state allocates %.2f per request, want 0", avg)
	}
}
