package dram

import (
	"strings"
	"testing"
)

func TestTimelineRecordsCommands(t *testing.T) {
	tm := MustSpeed(DDR2, 333)
	d := MustNewDevice(tm)
	var tl Timeline
	tl.Attach(d)
	issueAt(t, d, Command{Kind: CmdActivate, Bank: 0, Row: 1}, 0)
	issueAt(t, d, Command{Kind: CmdRead, Bank: 0, BL: 8}, tm.TRCD)
	if tl.Events() != 2 {
		t.Fatalf("events = %d, want 2", tl.Events())
	}
	cmds := tl.Commands()
	if !strings.HasPrefix(cmds[0], "0:ACT") || !strings.Contains(cmds[1], "RD") {
		t.Fatalf("commands = %v", cmds)
	}
}

func TestTimelineRenderFig5Style(t *testing.T) {
	// The paper's Fig. 5(c): BL4 column commands with auto-precharge need
	// no PRE commands on the bus; alternating banks transfer seamlessly.
	tm := MustSpeed(DDR2, 333).WithDeviceBL(4)
	d := MustNewDevice(tm)
	var tl Timeline
	tl.Attach(d)
	issueAt(t, d, Command{Kind: CmdActivate, Bank: 0, Row: 1}, 0)
	issueAt(t, d, Command{Kind: CmdActivate, Bank: 1, Row: 2}, tm.TRRD)
	// Time the column commands so the two BL4 bursts meet seamlessly on
	// the data bus: bank 1's CAS must clear its own tRCD (after the tRRD
	// spaced ACT), and bank 0's CAS goes tCCD earlier.
	second := tm.TRRD + tm.TRCD
	issueAt(t, d, Command{Kind: CmdWrite, Bank: 0, BL: 4, AutoPrecharge: true}, second-tm.TCCD)
	issueAt(t, d, Command{Kind: CmdWrite, Bank: 1, BL: 4, AutoPrecharge: true}, second)
	out := tl.Render(0, 24)
	// Lanes exist.
	for _, lane := range []string{"cycle", "cmd", "data", "bank 0", "bank 1"} {
		if !strings.Contains(out, lane) {
			t.Fatalf("missing lane %q in:\n%s", lane, out)
		}
	}
	// Two ACTs, two AP writes, no explicit PRE on the command lane.
	cmdLine := laneOf(out, "cmd")
	if strings.Count(cmdLine, "A") != 2 || strings.Count(cmdLine, "w") != 2 {
		t.Fatalf("command lane wrong:\n%s", out)
	}
	if strings.Contains(cmdLine, "P") {
		t.Fatalf("auto-precharge scenario must not show PRE commands:\n%s", out)
	}
	// Write data occupies the data lane seamlessly (4 cycles: two BL4
	// bursts back to back at tCCD=2).
	if strings.Count(laneOf(out, "data"), ">") != 4 {
		t.Fatalf("data lane wrong:\n%s", out)
	}
}

func laneOf(render, name string) string {
	for _, line := range strings.Split(render, "\n") {
		if strings.HasPrefix(line, name) {
			return line
		}
	}
	return ""
}

func TestTimelineRenderWindowing(t *testing.T) {
	tm := MustSpeed(DDR1, 200)
	d := MustNewDevice(tm)
	var tl Timeline
	tl.Attach(d)
	issueAt(t, d, Command{Kind: CmdActivate, Bank: 2, Row: 1}, 5)
	// A window that excludes the event renders blank lanes.
	out := tl.Render(100, 10)
	if strings.Contains(laneOf(out, "cmd"), "A") {
		t.Fatalf("event outside window rendered:\n%s", out)
	}
	if tl.Render(0, 0) != "" {
		t.Fatal("zero width should render empty")
	}
}
