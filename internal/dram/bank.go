package dram

import "fmt"

// BankState enumerates the externally visible states of a bank.
type BankState int

const (
	// BankIdle: all rows closed; an ACTIVATE may be issued once the
	// precharge (or refresh) that produced this state has completed.
	BankIdle BankState = iota
	// BankActive: a row is open (possibly still within tRCD of the
	// ACTIVATE); column commands become legal at actTime+tRCD.
	BankActive
	// BankPrecharging: a PRE (explicit or auto) has been accepted and the
	// bank becomes idle-and-ready at readyAt.
	BankPrecharging
)

// String returns a short name for the state.
func (s BankState) String() string {
	switch s {
	case BankIdle:
		return "idle"
	case BankActive:
		return "active"
	case BankPrecharging:
		return "precharging"
	default:
		return fmt.Sprintf("BankState(%d)", int(s))
	}
}

// bank holds the per-bank timing state. All times are absolute cycles.
type bank struct {
	state   BankState
	openRow int

	actTime      int64 // cycle of the last ACTIVATE
	readyAt      int64 // when precharging, cycle the bank becomes idle-and-ready
	preAllowedAt int64 // earliest cycle a PRECHARGE may be issued
	casAllowedAt int64 // earliest cycle a column command may be issued (tRCD)

	// apPending marks that the last column command carried auto-precharge;
	// the device converts it into a precharge at apStartAt.
	apPending bool
	apStartAt int64

	// casSinceAct marks that the open row has already served a column
	// command; further column commands are row-buffer hits (the per-bank
	// observability breakdown).
	casSinceAct bool
}

// settle folds a completed precharge into the idle state so that state
// queries observe BankIdle once readyAt has passed.
func (b *bank) settle(now int64) {
	if b.state == BankPrecharging && now >= b.readyAt {
		b.state = BankIdle
	}
}
