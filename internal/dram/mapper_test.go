package dram

import (
	"testing"
	"testing/quick"
)

func TestNewMapperValidation(t *testing.T) {
	if _, err := NewMapper(InterleaveRowBankCol, 0, 1024, 1024); err == nil {
		t.Error("want error for zero banks")
	}
	if _, err := NewMapper(InterleaveRowBankCol, 4, 1024, 1000); err == nil {
		t.Error("want error for non-power-of-two rowBytes")
	}
	if _, err := NewMapper(InterleaveRowBankCol, 4, 1024, 1024); err != nil {
		t.Errorf("valid geometry rejected: %v", err)
	}
}

func TestDecodeRowBankCol(t *testing.T) {
	m, err := NewMapper(InterleaveRowBankCol, 4, 1024, 1024)
	if err != nil {
		t.Fatal(err)
	}
	// Consecutive pages hit consecutive banks.
	a0 := m.Decode(0)
	a1 := m.Decode(1024)
	a4 := m.Decode(4 * 1024)
	if a0.Bank != 0 || a1.Bank != 1 {
		t.Errorf("bank interleave broken: %v %v", a0, a1)
	}
	if a4.Bank != 0 || a4.Row != a0.Row+1 {
		t.Errorf("row increment broken: %v vs %v", a4, a0)
	}
	if got := m.Decode(1030); got.Col != 6 {
		t.Errorf("col = %d, want 6", got.Col)
	}
}

func TestDecodeBankRowCol(t *testing.T) {
	m, err := NewMapper(InterleaveBankRowCol, 4, 8, 1024)
	if err != nil {
		t.Fatal(err)
	}
	// First 8 pages stay in bank 0, next 8 in bank 1.
	if a := m.Decode(7 * 1024); a.Bank != 0 || a.Row != 7 {
		t.Errorf("Decode(7 pages) = %v, want bank 0 row 7", a)
	}
	if a := m.Decode(8 * 1024); a.Bank != 1 || a.Row != 0 {
		t.Errorf("Decode(8 pages) = %v, want bank 1 row 0", a)
	}
}

func TestPropertyEncodeDecodeRoundTrip(t *testing.T) {
	for _, scheme := range []Interleave{InterleaveRowBankCol, InterleaveBankRowCol} {
		m, err := NewMapper(scheme, 8, 4096, 2048)
		if err != nil {
			t.Fatal(err)
		}
		f := func(raw uint32) bool {
			addr := int64(raw) % (int64(m.Banks) * int64(m.Rows) * int64(m.RowBytes))
			return m.Encode(m.Decode(addr)) == addr
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("scheme %d: %v", scheme, err)
		}
	}
}

func TestPropertyDecodeInRange(t *testing.T) {
	m, err := NewMapper(InterleaveRowBankCol, 8, 4096, 2048)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw int64) bool {
		if raw < 0 {
			raw = -raw
		}
		a := m.Decode(raw)
		return a.Bank >= 0 && a.Bank < m.Banks &&
			a.Row >= 0 && a.Row < m.Rows &&
			a.Col >= 0 && a.Col < m.RowBytes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
