package dram

import "testing"

// The deep-DRAM structure rules: DDR4's bank groups select the
// long/short tRRD/tCCD pairs by whether consecutive commands share a
// group, and subarray mode (SALP/MASA-lite) lets one bank hold several
// open rows with per-subarray activation overlap.

func TestBankGroupRRDSelectsLongShort(t *testing.T) {
	tm := MustSpeed(DDR4, 1200) // 16 banks, 4 groups: 0 and 4 share group 0
	d := MustNewDevice(tm)
	issueAt(t, d, Command{Kind: CmdActivate, Bank: 0, Row: 1}, 0)
	// Same group as the last ACT: the short spacing is not enough.
	sameGroup := Command{Kind: CmdActivate, Bank: 4, Row: 1}
	wantRefused(t, d, sameGroup, tm.TRRDS)
	wantRefused(t, d, sameGroup, tm.TRRDL-1)
	issueAt(t, d, sameGroup, tm.TRRDL)
	// Different group from the last ACT (bank 4): short spacing suffices.
	issueAt(t, d, Command{Kind: CmdActivate, Bank: 1, Row: 1}, tm.TRRDL+tm.TRRDS)
}

func TestBankGroupCCDSelectsLongShort(t *testing.T) {
	tm := MustSpeed(DDR4, 1200)
	d := MustNewDevice(tm)
	issueAt(t, d, Command{Kind: CmdActivate, Bank: 0, Row: 1}, 0)
	issueAt(t, d, Command{Kind: CmdActivate, Bank: 1, Row: 1}, tm.TRRDS)
	issueAt(t, d, Command{Kind: CmdActivate, Bank: 4, Row: 1}, tm.TRRDS*2)
	base := int64(40) // all three banks past tRCD, command bus idle
	issueAt(t, d, Command{Kind: CmdRead, Bank: 0, Col: 0, BL: 8}, base)
	// Bank 4 shares bank 0's group: tCCD_S is not enough, tCCD_L is.
	sameGroup := Command{Kind: CmdRead, Bank: 4, Col: 0, BL: 8}
	wantRefused(t, d, sameGroup, base+tm.TCCDS)
	issueAt(t, d, sameGroup, base+tm.TCCDL)
	// Bank 1 is in another group than the last CAS (bank 4): tCCD_S works.
	issueAt(t, d, Command{Kind: CmdRead, Bank: 1, Col: 0, BL: 8}, base+tm.TCCDL+tm.TCCDS)
}

func TestSubarrayActivationOverlap(t *testing.T) {
	tm := MustSpeed(DDR2, 333).WithSubarrays(4)
	d := MustNewDevice(tm)
	// Two rows of the same bank, landing in different subarrays: the
	// second ACT overlaps the first open row — the MASA point.
	issueAt(t, d, Command{Kind: CmdActivate, Bank: 0, Row: 0}, 0)
	issueAt(t, d, Command{Kind: CmdActivate, Bank: 0, Row: 1}, tm.TRRD)
	// A third row mapping to an already-open subarray (4 mod 4 = 0) is
	// refused like any ACT to an active buffer.
	wantRefused(t, d, Command{Kind: CmdActivate, Bank: 0, Row: 4}, 2*tm.TRRD)

	// Column commands hit whichever subarray holds their row; the burst
	// gap keeps the data bus clean.
	gap := BurstCycles(8)
	base := tm.TRRD + tm.TRCD
	issueAt(t, d, Command{Kind: CmdRead, Bank: 0, Row: 0, Col: 0, BL: 8}, base)
	issueAt(t, d, Command{Kind: CmdRead, Bank: 0, Row: 1, Col: 8, BL: 8}, base+gap)
	// A row whose subarray is idle has no open buffer to hit.
	wantRefused(t, d, Command{Kind: CmdRead, Bank: 0, Row: 2, Col: 0, BL: 8}, base+2*gap)

	if !d.RowOpen(0, 0, base+2*gap) || !d.RowOpen(0, 1, base+2*gap) {
		t.Fatal("both subarray rows should be open")
	}
}

func TestSubarrayPrechargeClosesOneBuffer(t *testing.T) {
	tm := MustSpeed(DDR2, 333).WithSubarrays(4)
	d := MustNewDevice(tm)
	issueAt(t, d, Command{Kind: CmdActivate, Bank: 0, Row: 0}, 0)
	issueAt(t, d, Command{Kind: CmdActivate, Bank: 0, Row: 1}, tm.TRRD)
	// PRE's Row field selects the subarray; row 0's buffer closes, row 1's
	// stays open.
	pre := Command{Kind: CmdPrecharge, Bank: 0, Row: 0}
	wantRefused(t, d, pre, tm.TRAS-1)
	issueAt(t, d, pre, tm.TRAS)
	now := tm.TRAS + 1
	if d.RowOpen(0, 0, now) {
		t.Fatal("precharged subarray still open")
	}
	if !d.RowOpen(0, 1, now) {
		t.Fatal("sibling subarray closed by another subarray's precharge")
	}
	// OpenRow reports the (lowest) still-open subarray row for heuristics.
	if row, open := d.OpenRow(0, now); !open || row != 1 {
		t.Fatalf("OpenRow = (%d, %t), want (1, true)", row, open)
	}
}

func TestSubarrayOffIsClassicBank(t *testing.T) {
	// Subarrays <= 1 must behave exactly like the classic device: a
	// second ACT to the same bank is refused while any row is open.
	for _, subs := range []int{0, 1} {
		d := MustNewDevice(MustSpeed(DDR2, 333).WithSubarrays(subs))
		issueAt(t, d, Command{Kind: CmdActivate, Bank: 0, Row: 0}, 0)
		wantRefused(t, d, Command{Kind: CmdActivate, Bank: 0, Row: 1}, 10)
	}
}

func TestGroupStructureOffOnFlatGenerations(t *testing.T) {
	// DDR1-3 and LPDDR3 carry no bank groups: the flat tCCD/tRRD apply
	// regardless of which banks the commands touch, exactly as before.
	for _, gen := range []Generation{DDR1, DDR2, DDR3, LPDDR3} {
		tm := MustSpeed(gen, DefaultClock(gen))
		if tm.BankGroups > 1 {
			t.Fatalf("%s: unexpected bank groups %d", gen, tm.BankGroups)
		}
		d := MustNewDevice(tm)
		issueAt(t, d, Command{Kind: CmdActivate, Bank: 0, Row: 1}, 0)
		wantRefused(t, d, Command{Kind: CmdActivate, Bank: 1, Row: 1}, tm.TRRD-1)
		issueAt(t, d, Command{Kind: CmdActivate, Bank: 1, Row: 1}, tm.TRRD)
	}
}
