package dram

import "testing"

// TestBankCountersBreakdown drives a hand-written command sequence and
// checks the per-bank observability breakdown: activates, reads/writes,
// row hits (column commands beyond the first per activation), explicit
// precharges and auto-precharges, each attributed to the right bank.
func TestBankCountersBreakdown(t *testing.T) {
	tm := MustSpeed(DDR2, 333)
	d := MustNewDevice(tm)

	// Bank 0: ACT, three reads to the open row (two hits), explicit PRE.
	now := int64(0)
	issueAt(t, d, Command{Kind: CmdActivate, Bank: 0, Row: 3}, now)
	now += tm.TRCD
	for i := 0; i < 3; i++ {
		issueAt(t, d, Command{Kind: CmdRead, Bank: 0, Col: i * 8, BL: 8}, now)
		now += BurstCycles(8)
	}
	if now < tm.TRAS {
		now = tm.TRAS
	}
	now += tm.TRTP + BurstCycles(8) // clear of tRAS and read-to-precharge
	issueAt(t, d, Command{Kind: CmdPrecharge, Bank: 0}, now)

	// Bank 1: ACT, one write with auto-precharge (no hit).
	now += tm.TRP
	issueAt(t, d, Command{Kind: CmdActivate, Bank: 1, Row: 9}, now)
	now += tm.TRCD
	issueAt(t, d, Command{Kind: CmdWrite, Bank: 1, Col: 0, BL: 8, AutoPrecharge: true}, now)
	d.Sync(now + 1000) // retire the auto-precharge

	pb := d.BankCounters()
	if len(pb) != tm.Banks {
		t.Fatalf("BankCounters length %d, want %d banks", len(pb), tm.Banks)
	}
	want0 := BankCounters{Activates: 1, Reads: 3, RowHits: 2, Precharges: 1}
	if pb[0] != want0 {
		t.Errorf("bank 0 = %+v, want %+v", pb[0], want0)
	}
	want1 := BankCounters{Activates: 1, Writes: 1, AutoPre: 1}
	if pb[1] != want1 {
		t.Errorf("bank 1 = %+v, want %+v", pb[1], want1)
	}
	for i := 2; i < len(pb); i++ {
		if pb[i] != (BankCounters{}) {
			t.Errorf("untouched bank %d has counts %+v", i, pb[i])
		}
	}

	// The snapshot is a copy: mutating it must not alter the device.
	pb[0].Reads = 99
	if d.BankCounters()[0].Reads != 3 {
		t.Error("BankCounters snapshot aliases device state")
	}

	// The per-bank breakdown must sum to the aggregate Stats counters.
	st := d.Stats()
	var acts, reads, writes, pres, aps int64
	for _, b := range d.BankCounters() {
		acts += b.Activates
		reads += b.Reads
		writes += b.Writes
		pres += b.Precharges
		aps += b.AutoPre
	}
	if acts != st.Activates || reads != st.Reads || writes != st.Writes ||
		pres != st.Precharges || aps != st.AutoPre {
		t.Errorf("per-bank sums (%d,%d,%d,%d,%d) disagree with Stats %+v",
			acts, reads, writes, pres, aps, st)
	}
}
