package dram

import "testing"

func TestAllPredefinedGradesValidate(t *testing.T) {
	for _, gen := range Generations() {
		speeds := Speeds(gen)
		if len(speeds) != 3 {
			t.Fatalf("%s: want 3 predefined speeds, got %v", gen, speeds)
		}
		for _, mhz := range speeds {
			tm := MustSpeed(gen, mhz)
			if err := tm.Validate(); err != nil {
				t.Errorf("%s-%d: %v", gen, mhz, err)
			}
			if tm.ClockMHz != mhz || tm.Generation != gen {
				t.Errorf("%s-%d: grade mismatch %+v", gen, mhz, tm)
			}
		}
	}
}

func TestSpeedUnknownGrade(t *testing.T) {
	if _, err := Speed(DDR1, 999); err == nil {
		t.Fatal("want error for unknown grade")
	}
}

func TestSpeedsAscending(t *testing.T) {
	for _, gen := range Generations() {
		s := Speeds(gen)
		if len(s) == 0 {
			t.Fatalf("%s: no predefined speeds", gen)
		}
		for i := 1; i < len(s); i++ {
			if s[i-1] >= s[i] {
				t.Errorf("%s: speeds not ascending: %v", gen, s)
			}
		}
	}
}

func TestDDR3WriteRecoveryMatchesPaper(t *testing.T) {
	// The paper: "in DDR III SDRAM working at an 800 MHz clock frequency,
	// it takes 23 clock cycles to deactivate any bank after writing".
	tm := MustSpeed(DDR3, 800)
	if got := tm.TWR + tm.TRP; got != 23 {
		t.Errorf("tWR+tRP = %d, want 23", got)
	}
}

func TestBurstCycles(t *testing.T) {
	cases := []struct {
		bl   int
		want int64
	}{{1, 1}, {2, 1}, {3, 2}, {4, 2}, {8, 4}, {16, 8}}
	for _, c := range cases {
		if got := BurstCycles(c.bl); got != c.want {
			t.Errorf("BurstCycles(%d) = %d, want %d", c.bl, got, c.want)
		}
	}
}

func TestWithDeviceBL(t *testing.T) {
	tm := MustSpeed(DDR2, 333).WithDeviceBL(4)
	if tm.DeviceBL != 4 {
		t.Fatalf("DeviceBL = %d, want 4", tm.DeviceBL)
	}
	if MustSpeed(DDR2, 333).DeviceBL != 8 {
		t.Fatal("WithDeviceBL mutated the grade table")
	}
}

func TestValidateRejections(t *testing.T) {
	base := MustSpeed(DDR2, 333)
	mut := []func(*Timing){
		func(tm *Timing) { tm.Generation = 0 },
		func(tm *Timing) { tm.ClockMHz = 0 },
		func(tm *Timing) { tm.Banks = 3 },
		func(tm *Timing) { tm.CL = 0 },
		func(tm *Timing) { tm.TRCD = 0 },
		func(tm *Timing) { tm.TRAS = tm.TRCD - 1 },
		func(tm *Timing) { tm.TRC = tm.TRAS },
		func(tm *Timing) { tm.TCCD = 0 },
		func(tm *Timing) { tm.DeviceBL = 3 },
		func(tm *Timing) { tm.OTF = true }, // DDR2 cannot be OTF
	}
	for i, f := range mut {
		tm := base
		f(&tm)
		if err := tm.Validate(); err == nil {
			t.Errorf("mutation %d: want validation error", i)
		}
	}
}
