package dram

import "fmt"

// Stats accumulates device activity counters used for the utilization
// metric (Table I/II) and the activity-based power model (Table V).
type Stats struct {
	Activates   int64
	Reads       int64
	Writes      int64
	Precharges  int64 // explicit PRE commands
	AutoPre     int64 // precharges triggered by AP tags
	Refreshes   int64
	DataCycles  int64 // clock cycles the data bus carried burst data
	BurstsBL    int64 // total burst beats transferred (for waste accounting)
	UsefulBeats int64 // beats the requester actually asked for (set by controllers)
}

// BankCounters is the per-bank command breakdown the observability layer
// exports: where the activates, row hits and conflicts actually landed.
// A RowHit is a column command to a row that already served one since its
// ACTIVATE (the first column access per activation paid tRCD and is not a
// hit). Precharges counts explicit PRE commands — the controller closes a
// row only on a conflict or a refresh drain — while AutoPre counts
// auto-precharges retired from column-command tags.
type BankCounters struct {
	Activates  int64 `json:"activates"`
	Reads      int64 `json:"reads"`
	Writes     int64 `json:"writes"`
	RowHits    int64 `json:"rowHits"`
	Precharges int64 `json:"precharges"`
	AutoPre    int64 `json:"autoPrecharges"`
}

// Device is a cycle-level DDR SDRAM device. It is driven by absolute
// cycle numbers: callers ask CanIssue(cmd, now) and then Issue(cmd, now).
// Time must be non-decreasing across calls. At most one command may be
// issued per cycle (single command bus).
//
// The zero value is not usable; construct with NewDevice.
type Device struct {
	t     Timing
	banks []bank

	// subs holds the per-subarray row buffers when t.Subarrays > 1
	// (MASA-lite): bank b, subarray s live at subs[b*t.Subarrays+s] and
	// the banks slice is unused. Empty in the classic one-buffer mode.
	subs []bank

	now          int64
	lastCmdCycle int64
	lastWindow   DataWindow
	lastCAS      int64
	lastCASBank  int // bank of the last CAS (-1: none); group-aware tCCD
	lastActAny   int64
	lastActBank  int      // bank of the last ACT (-1: none); group-aware tRRD
	actTimes     [4]int64 // rolling window of the last four ACTs (tFAW)
	readDataEnd  int64    // end cycle of the most recent read burst
	writeDataEnd int64    // end cycle of the most recent write burst
	busBusyUntil int64

	stats   Stats
	perBank []BankCounters

	// Observer, when set, is invoked for every accepted command with its
	// data window (zero for non-column commands) — the hook behind the
	// timing-diagram renderer, the checked-mode conformance monitor, and
	// command-trace tests.
	Observer func(now int64, cmd Command, w DataWindow)

	fault Fault
}

// Fault selects a deliberately broken legality rule for mutation
// testing: the checked-mode test suite arms one, drives the simulator,
// and asserts the internal/check conformance monitor reports the
// resulting protocol breach. FaultNone (the zero value) is a fully
// conformant device.
type Fault int

const (
	FaultNone Fault = iota
	// FaultSkipTRCD drops the ACTIVATE-to-CAS spacing check, letting
	// controllers issue column commands into a still-opening row.
	FaultSkipTRCD
	// FaultSkipTFAW drops the four-activate-window check.
	FaultSkipTFAW
	// FaultSlowCAS refuses column commands until SlowCASGap cycles after
	// the previous one. Unlike the Skip faults it keeps every issued
	// command JEDEC-legal (the gate is strictly tighter than tCCD), so
	// the shadow timing monitor stays silent — only a latency-bound
	// monitor (the DPQ WCET check) can detect it. It models a device or
	// controller that is slow rather than wrong.
	FaultSlowCAS
)

// SlowCASGap is the column-to-column spacing FaultSlowCAS enforces —
// far beyond any analytic worst-case service time, so every queued
// request behind the first blows through its WCET deadline.
const SlowCASGap = 2048

// InjectFault arms one legality-rule fault. Test-only: it exists so the
// mutation smoke test can prove the conformance monitor has teeth.
func (d *Device) InjectFault(f Fault) { d.fault = f }

// NewDevice constructs a device with all banks idle at cycle 0.
func NewDevice(t Timing) (*Device, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	d := &Device{
		t:            t,
		banks:        make([]bank, t.Banks),
		perBank:      make([]BankCounters, t.Banks),
		lastCmdCycle: -1,
		lastCAS:      -(1 << 30),
		lastCASBank:  -1,
		lastActAny:   -(1 << 30),
		lastActBank:  -1,
	}
	for i := range d.banks {
		d.banks[i].actTime = -(1 << 30)
	}
	if t.Subarrays > 1 {
		d.subs = make([]bank, t.Banks*t.Subarrays)
		for i := range d.subs {
			d.subs[i].actTime = -(1 << 30)
		}
	}
	for i := range d.actTimes {
		d.actTimes[i] = -(1 << 30)
	}
	return d, nil
}

// salp reports whether the device runs with per-subarray row buffers.
func (d *Device) salp() bool { return len(d.subs) > 0 }

// subOf returns the subarray row buffer a row of a bank maps to; only
// valid in salp mode.
func (d *Device) subOf(bankIdx, row int) *bank {
	return &d.subs[bankIdx*d.t.Subarrays+row%d.t.Subarrays]
}

// ccdFor returns the CAS-to-CAS spacing a column command to the bank
// must keep from the previous CAS: the flat tCCD, or the long/short
// group pair when the generation has bank groups.
func (d *Device) ccdFor(bankIdx int) int64 {
	if d.t.BankGroups > 1 && d.lastCASBank >= 0 {
		if d.t.GroupOf(bankIdx) == d.t.GroupOf(d.lastCASBank) {
			return d.t.TCCDL
		}
		return d.t.TCCDS
	}
	return d.t.TCCD
}

// rrdFor returns the ACT-to-ACT spacing an activate to the bank must
// keep from the previous ACT (flat tRRD, or tRRD_L/tRRD_S with groups).
func (d *Device) rrdFor(bankIdx int) int64 {
	if d.t.BankGroups > 1 && d.lastActBank >= 0 {
		if d.t.GroupOf(bankIdx) == d.t.GroupOf(d.lastActBank) {
			return d.t.TRRDL
		}
		return d.t.TRRDS
	}
	return d.t.TRRD
}

// MustNewDevice is NewDevice but panics on invalid timing; for tests and
// known-good configuration tables.
func MustNewDevice(t Timing) *Device {
	d, err := NewDevice(t)
	if err != nil {
		panic(err)
	}
	return d
}

// Timing returns the device's timing parameter set.
func (d *Device) Timing() Timing { return d.t }

// Stats returns a snapshot of the activity counters.
func (d *Device) Stats() Stats { return d.stats }

// BankCounters returns a snapshot of the per-bank command breakdown, one
// entry per bank in bank order.
func (d *Device) BankCounters() []BankCounters {
	out := make([]BankCounters, len(d.perBank))
	copy(out, d.perBank)
	return out
}

// AddUsefulBeats lets a controller record how many of the transferred
// burst beats carried data the requester actually asked for; the
// difference against BurstsBL is the granularity-mismatch waste (Fig. 2).
func (d *Device) AddUsefulBeats(n int64) { d.stats.UsefulBeats += n }

// Utilization returns data-bus busy cycles divided by total cycles, the
// paper's memory utilization metric.
func (d *Device) Utilization(totalCycles int64) float64 {
	if totalCycles <= 0 {
		return 0
	}
	return float64(d.stats.DataCycles) / float64(totalCycles)
}

// advance retires auto-precharges whose start time has been reached and
// settles completed precharges, bringing the device state up to now.
// Repeated calls within one cycle are no-ops: commands issued at now only
// schedule state changes strictly after now (tRP, tRFC and auto-precharge
// start times are all positive offsets), so the first call per cycle does
// all the settling and the hot paths that re-query state (OpenRow,
// CanIssue) skip the per-bank walk.
func (d *Device) advance(now int64) {
	if now == d.now {
		return
	}
	if now < d.now {
		panic(fmt.Sprintf("dram: time went backwards (%d < %d)", now, d.now))
	}
	d.now = now
	if d.salp() {
		for i := range d.subs {
			b := &d.subs[i]
			if b.apPending && now >= b.apStartAt {
				b.apPending = false
				b.state = BankPrecharging
				b.readyAt = b.apStartAt + d.t.TRP
				d.stats.AutoPre++
				d.perBank[i/d.t.Subarrays].AutoPre++
			}
			b.settle(now)
		}
		return
	}
	for i := range d.banks {
		b := &d.banks[i]
		if b.apPending && now >= b.apStartAt {
			b.apPending = false
			b.state = BankPrecharging
			b.readyAt = b.apStartAt + d.t.TRP
			d.stats.AutoPre++
			d.perBank[i].AutoPre++
		}
		b.settle(now)
	}
}

// Sync brings the device state up to cycle now, retiring any pending
// auto-precharges whose start time has been reached. Controllers call it
// once per cycle so device-internal events fire even on idle cycles.
func (d *Device) Sync(now int64) { d.advance(now) }

// OpenRow reports the open row of a bank, if any, at cycle now. A bank
// with a pending auto-precharge whose start time has passed reports
// closed. In salp mode several subarrays of a bank can hold open rows;
// the lowest-indexed open subarray's row is reported (the refresh drain
// closes them one per cycle through this view).
func (d *Device) OpenRow(bankIdx int, now int64) (row int, open bool) {
	d.advance(now)
	if d.salp() {
		base := bankIdx * d.t.Subarrays
		for s := 0; s < d.t.Subarrays; s++ {
			if b := &d.subs[base+s]; b.state == BankActive {
				return b.openRow, true
			}
		}
		return 0, false
	}
	b := &d.banks[bankIdx]
	if b.state == BankActive {
		return b.openRow, true
	}
	return 0, false
}

// RowOpen reports whether the specific row of a bank is open in its row
// buffer at cycle now. With one buffer per bank this is OpenRow equality;
// in salp mode it consults the subarray the row maps to, so rows open in
// sibling subarrays of the same bank are visible simultaneously.
func (d *Device) RowOpen(bankIdx, row int, now int64) bool {
	d.advance(now)
	b := &d.banks[bankIdx]
	if d.salp() {
		b = d.subOf(bankIdx, row)
	}
	return b.state == BankActive && b.openRow == row
}

// BlockingRow reports the row currently occupying the row buffer that
// the given row needs, when it is a different row — the precharge target
// of a row conflict. In salp mode only the owning subarray can block;
// rows open in sibling subarrays do not conflict.
func (d *Device) BlockingRow(bankIdx, row int, now int64) (openRow int, blocked bool) {
	d.advance(now)
	b := &d.banks[bankIdx]
	if d.salp() {
		b = d.subOf(bankIdx, row)
	}
	if b.state == BankActive && b.openRow != row {
		return b.openRow, true
	}
	return 0, false
}

// BankState reports the externally visible state of a bank at cycle now.
// In salp mode the bank reads active while any subarray holds an open
// row, precharging while any subarray is precharging, idle otherwise.
func (d *Device) BankState(bankIdx int, now int64) BankState {
	d.advance(now)
	if d.salp() {
		st := BankIdle
		base := bankIdx * d.t.Subarrays
		for s := 0; s < d.t.Subarrays; s++ {
			switch d.subs[base+s].state {
			case BankActive:
				return BankActive
			case BankPrecharging:
				st = BankPrecharging
			}
		}
		return st
	}
	return d.banks[bankIdx].state
}

// bufferReadyAt computes the earliest ACTIVATE a single row buffer
// (bank, or subarray in salp mode) could accept, considering only its
// own constraints (precharge completion and tRC).
func (d *Device) bufferReadyAt(b *bank, now int64) int64 {
	ready := b.actTime + d.t.TRC
	switch b.state {
	case BankActive:
		// Would need a precharge first: earliest PRE then tRP.
		pre := b.preAllowedAt
		if b.apPending {
			pre = b.apStartAt
		}
		if pre < now {
			pre = now
		}
		if pre+d.t.TRP > ready {
			ready = pre + d.t.TRP
		}
	case BankPrecharging:
		if b.readyAt > ready {
			ready = b.readyAt
		}
	case BankIdle:
		if b.readyAt > ready {
			ready = b.readyAt
		}
	}
	if ready < now {
		ready = now
	}
	return ready
}

// BankReadyAt returns the earliest cycle an ACTIVATE could be accepted by
// the bank, considering only same-bank constraints (precharge completion
// and tRC). Used by look-ahead controllers and by the short turn-around
// interleaving (STI) estimate. In salp mode it reports the readiest
// subarray (an ACT can target whichever subarray is free soonest).
func (d *Device) BankReadyAt(bankIdx int, now int64) int64 {
	d.advance(now)
	if d.salp() {
		base := bankIdx * d.t.Subarrays
		ready := d.bufferReadyAt(&d.subs[base], now)
		for s := 1; s < d.t.Subarrays; s++ {
			if r := d.bufferReadyAt(&d.subs[base+s], now); r < ready {
				ready = r
			}
		}
		return ready
	}
	return d.bufferReadyAt(&d.banks[bankIdx], now)
}

// AutoPrechargePending reports whether the bank has an auto-precharge
// scheduled but not yet fired at cycle now. In salp mode it reports
// whether any subarray of the bank does.
func (d *Device) AutoPrechargePending(bankIdx int, now int64) bool {
	d.advance(now)
	if d.salp() {
		base := bankIdx * d.t.Subarrays
		for s := 0; s < d.t.Subarrays; s++ {
			if d.subs[base+s].apPending {
				return true
			}
		}
		return false
	}
	return d.banks[bankIdx].apPending
}

// RowAutoPrechargePending reports whether the row buffer serving the
// given row has an auto-precharge scheduled but not yet fired.
func (d *Device) RowAutoPrechargePending(bankIdx, row int, now int64) bool {
	d.advance(now)
	if d.salp() {
		return d.subOf(bankIdx, row).apPending
	}
	return d.banks[bankIdx].apPending
}

// ActivateReadyAt returns a conservative lower bound on the earliest
// cycle an ACTIVATE to the bank could be legal, folding the same-bank
// constraints of BankReadyAt together with the cross-bank tRRD and tFAW
// windows. "Conservative" means never later than the true earliest legal
// cycle: event-queue controllers may wake at the returned cycle and find
// the command still refused (a harmless no-op probe), but never sleep
// through a cycle where it would have been accepted.
func (d *Device) ActivateReadyAt(bankIdx int, now int64) int64 {
	ready := d.BankReadyAt(bankIdx, now)
	if r := d.lastActAny + d.rrdFor(bankIdx); r > ready {
		ready = r
	}
	if d.t.TFAW > 0 && d.fault != FaultSkipTFAW {
		if r := d.actTimes[0] + d.t.TFAW; r > ready {
			ready = r
		}
	}
	return ready
}

// RowActivateReadyAt is ActivateReadyAt for a specific row: in salp mode
// the same-bank constraints come from the subarray the row maps to, not
// from the readiest subarray of the bank.
func (d *Device) RowActivateReadyAt(bankIdx, row int, now int64) int64 {
	if !d.salp() {
		return d.ActivateReadyAt(bankIdx, now)
	}
	d.advance(now)
	ready := d.bufferReadyAt(d.subOf(bankIdx, row), now)
	if r := d.lastActAny + d.rrdFor(bankIdx); r > ready {
		ready = r
	}
	if d.t.TFAW > 0 && d.fault != FaultSkipTFAW {
		if r := d.actTimes[0] + d.t.TFAW; r > ready {
			ready = r
		}
	}
	return ready
}

// ColumnReadyAt returns a conservative lower bound on the earliest cycle
// a READ or WRITE to the bank could be legal, assuming the bank is (or
// will be) active with the wanted row open. Same contract as
// ActivateReadyAt: never later than the true earliest legal cycle.
func (d *Device) ColumnReadyAt(bankIdx int, kind CmdKind, now int64) int64 {
	return d.RowColumnReadyAt(bankIdx, -1, kind, now)
}

// RowColumnReadyAt is ColumnReadyAt for a specific row; in salp mode the
// tRCD floor comes from the subarray the row maps to. A negative row
// selects the bank-level buffer (only meaningful outside salp mode).
func (d *Device) RowColumnReadyAt(bankIdx, row int, kind CmdKind, now int64) int64 {
	d.advance(now)
	b := &d.banks[bankIdx]
	if d.salp() && row >= 0 {
		b = d.subOf(bankIdx, row)
	}
	ready := now
	if d.fault != FaultSkipTRCD && b.casAllowedAt > ready {
		ready = b.casAllowedAt
	}
	if r := d.lastCAS + d.ccdFor(bankIdx); r > ready {
		ready = r
	}
	if kind == CmdRead {
		if r := d.writeDataEnd + d.t.TWTR; r > ready {
			ready = r
		}
		if r := d.busBusyUntil - d.t.CL; r > ready {
			ready = r
		}
	} else {
		if r := d.busBusyUntil - d.t.CWL; r > ready {
			ready = r
		}
		if r := d.readDataEnd + d.t.TRTW - d.t.CWL; r > ready {
			ready = r
		}
	}
	return ready
}

// PrechargeReadyAt returns a conservative lower bound on the earliest
// cycle an explicit PRECHARGE to the bank could be legal (tRAS/tWR/tRTP
// floors). Same contract as ActivateReadyAt.
func (d *Device) PrechargeReadyAt(bankIdx int, now int64) int64 {
	return d.RowPrechargeReadyAt(bankIdx, -1, now)
}

// RowPrechargeReadyAt is PrechargeReadyAt for a specific row's buffer; a
// negative row selects the bank-level buffer (outside salp mode).
func (d *Device) RowPrechargeReadyAt(bankIdx, row int, now int64) int64 {
	d.advance(now)
	b := &d.banks[bankIdx]
	if d.salp() && row >= 0 {
		b = d.subOf(bankIdx, row)
	}
	if b.preAllowedAt > now {
		return b.preAllowedAt
	}
	return now
}

// checkBL validates the burst length of a column command against the
// device mode.
func (d *Device) checkBL(bl int) error {
	if d.t.OTF {
		if bl != 4 && bl != 8 {
			return fmt.Errorf("dram: OTF device accepts BL 4 or 8, got %d", bl)
		}
		return nil
	}
	if bl != d.t.DeviceBL {
		return fmt.Errorf("dram: device is in BL%d mode, got BL%d", d.t.DeviceBL, bl)
	}
	return nil
}

// refuse is a sentinel-style helper building legality errors.
func refuse(format string, args ...any) error { return fmt.Errorf("dram: "+format, args...) }

// errRefused is the allocation-free sentinel the CanIssue fast path
// returns: controllers probe legality millions of times per run and only
// care about the boolean, so the descriptive fmt.Errorf message is built
// exclusively on the (cold) Issue failure path via explain.
var errRefused = fmt.Errorf("dram: command refused")

// checkIssue reports why cmd cannot be issued at now, or nil if it can.
// It does not mutate timing state beyond advancing auto-precharges. With
// explain false, every refusal returns the shared errRefused sentinel
// instead of formatting a message — the hot path allocates nothing.
func (d *Device) checkIssue(cmd Command, now int64, explain bool) error {
	d.advance(now)
	if now == d.lastCmdCycle {
		if !explain {
			return errRefused
		}
		return refuse("command bus busy at cycle %d", now)
	}
	if cmd.Bank < 0 || (cmd.Kind != CmdRefresh && cmd.Bank >= d.t.Banks) {
		if !explain {
			return errRefused
		}
		return refuse("bank %d out of range", cmd.Bank)
	}
	switch cmd.Kind {
	case CmdActivate:
		b := &d.banks[cmd.Bank]
		if d.salp() {
			// MASA-lite: the ACT needs only its own subarray idle; sibling
			// subarrays of the bank may stay open (activation overlap).
			b = d.subOf(cmd.Bank, cmd.Row)
		}
		switch {
		case b.state != BankIdle:
			if !explain {
				return errRefused
			}
			return refuse("ACT to %s bank %d", b.state, cmd.Bank)
		case now < b.readyAt:
			if !explain {
				return errRefused
			}
			return refuse("ACT before precharge/refresh completion of bank %d (ready at %d)", cmd.Bank, b.readyAt)
		case now < b.actTime+d.t.TRC:
			if !explain {
				return errRefused
			}
			return refuse("ACT violates tRC on bank %d", cmd.Bank)
		case now < d.lastActAny+d.rrdFor(cmd.Bank):
			if !explain {
				return errRefused
			}
			return refuse("ACT violates tRRD")
		case d.t.TFAW > 0 && now < d.actTimes[0]+d.t.TFAW && d.fault != FaultSkipTFAW:
			if !explain {
				return errRefused
			}
			return refuse("ACT violates tFAW (four-activate window)")
		}
	case CmdRead, CmdWrite:
		if err := d.checkBL(cmd.BL); err != nil {
			return err
		}
		b := &d.banks[cmd.Bank]
		if d.salp() {
			b = d.subOf(cmd.Bank, cmd.Row)
			if b.state == BankActive && b.openRow != cmd.Row {
				if !explain {
					return errRefused
				}
				return refuse("%s to bank %d row %d but subarray holds row %d", cmd.Kind, cmd.Bank, cmd.Row, b.openRow)
			}
		}
		switch {
		case b.state != BankActive:
			if !explain {
				return errRefused
			}
			return refuse("%s to %s bank %d", cmd.Kind, b.state, cmd.Bank)
		case b.apPending:
			if !explain {
				return errRefused
			}
			return refuse("%s to bank %d with pending auto-precharge", cmd.Kind, cmd.Bank)
		case now < b.casAllowedAt && d.fault != FaultSkipTRCD:
			if !explain {
				return errRefused
			}
			return refuse("%s violates tRCD on bank %d", cmd.Kind, cmd.Bank)
		case now < d.lastCAS+d.ccdFor(cmd.Bank):
			if !explain {
				return errRefused
			}
			return refuse("%s violates tCCD", cmd.Kind)
		case d.fault == FaultSlowCAS && now < d.lastCAS+SlowCASGap:
			if !explain {
				return errRefused
			}
			return refuse("%s delayed by injected slow-CAS fault", cmd.Kind)
		}
		if cmd.Kind == CmdRead {
			switch {
			case now < d.writeDataEnd+d.t.TWTR:
				if !explain {
					return errRefused
				}
				return refuse("RD violates tWTR")
			case now+d.t.CL < d.busBusyUntil:
				if !explain {
					return errRefused
				}
				return refuse("RD data would collide on the bus")
			}
		} else {
			start := now + d.t.CWL
			switch {
			case start < d.busBusyUntil:
				if !explain {
					return errRefused
				}
				return refuse("WR data would collide on the bus")
			case start < d.readDataEnd+d.t.TRTW:
				if !explain {
					return errRefused
				}
				return refuse("WR violates read-to-write turnaround")
			}
		}
	case CmdPrecharge:
		b := &d.banks[cmd.Bank]
		if d.salp() {
			// The Row field selects the subarray to close.
			b = d.subOf(cmd.Bank, cmd.Row)
		}
		switch {
		case b.state != BankActive:
			if !explain {
				return errRefused
			}
			return refuse("PRE to %s bank %d", b.state, cmd.Bank)
		case b.apPending:
			if !explain {
				return errRefused
			}
			return refuse("PRE to bank %d with pending auto-precharge", cmd.Bank)
		case now < b.preAllowedAt:
			if !explain {
				return errRefused
			}
			return refuse("PRE violates tRAS/tWR/tRTP on bank %d (allowed at %d)", cmd.Bank, b.preAllowedAt)
		}
	case CmdRefresh:
		buffers := d.banks
		if d.salp() {
			buffers = d.subs
		}
		for i := range buffers {
			b := &buffers[i]
			idx := i
			if d.salp() {
				idx = i / d.t.Subarrays
			}
			if b.state != BankIdle || now < b.readyAt {
				if !explain {
					return errRefused
				}
				return refuse("REF with bank %d not idle", idx)
			}
			if b.apPending {
				if !explain {
					return errRefused
				}
				return refuse("REF with pending auto-precharge on bank %d", idx)
			}
		}
	default:
		if !explain {
			return errRefused
		}
		return refuse("unknown command kind %d", cmd.Kind)
	}
	return nil
}

// CanIssue reports whether cmd is legal at cycle now.
func (d *Device) CanIssue(cmd Command, now int64) bool {
	return d.checkIssue(cmd, now, false) == nil
}

// Issue presents cmd on the command bus at cycle now. For column commands
// the returned DataWindow describes the data-bus occupancy; read data is
// available to the controller at window.End. Issue returns an error (and
// changes no state) if the command violates any timing constraint — the
// device doubles as a protocol checker for the whole stack's tests.
func (d *Device) Issue(cmd Command, now int64) (DataWindow, error) {
	if d.checkIssue(cmd, now, false) != nil {
		// Cold path: re-run with explain to build the descriptive error.
		return DataWindow{}, d.checkIssue(cmd, now, true)
	}
	d.lastCmdCycle = now
	defer func() {
		if d.Observer != nil {
			d.Observer(now, cmd, d.lastWindow)
		}
		d.lastWindow = DataWindow{}
	}()
	switch cmd.Kind {
	case CmdActivate:
		b := &d.banks[cmd.Bank]
		if d.salp() {
			b = d.subOf(cmd.Bank, cmd.Row)
		}
		b.state = BankActive
		b.openRow = cmd.Row
		b.actTime = now
		b.casAllowedAt = now + d.t.TRCD
		b.preAllowedAt = now + d.t.TRAS
		d.lastActAny = now
		d.lastActBank = cmd.Bank
		copy(d.actTimes[:], d.actTimes[1:])
		d.actTimes[3] = now
		b.casSinceAct = false
		d.stats.Activates++
		d.perBank[cmd.Bank].Activates++
	case CmdRead:
		b := &d.banks[cmd.Bank]
		if d.salp() {
			b = d.subOf(cmd.Bank, cmd.Row)
		}
		w := DataWindow{Start: now + d.t.CL, End: now + d.t.CL + BurstCycles(cmd.BL)}
		d.lastCAS = now
		d.lastCASBank = cmd.Bank
		d.busBusyUntil = w.End
		d.readDataEnd = w.End
		d.stats.Reads++
		d.perBank[cmd.Bank].Reads++
		if b.casSinceAct {
			d.perBank[cmd.Bank].RowHits++
		}
		b.casSinceAct = true
		d.stats.DataCycles += w.Cycles()
		d.stats.BurstsBL += int64(cmd.BL)
		d.lastWindow = w
		pre := now + d.t.TRTP + BurstCycles(cmd.BL)
		if pre > b.preAllowedAt {
			b.preAllowedAt = pre
		}
		if cmd.AutoPrecharge {
			b.apPending = true
			b.apStartAt = b.preAllowedAt
		}
		return w, nil
	case CmdWrite:
		b := &d.banks[cmd.Bank]
		if d.salp() {
			b = d.subOf(cmd.Bank, cmd.Row)
		}
		w := DataWindow{Start: now + d.t.CWL, End: now + d.t.CWL + BurstCycles(cmd.BL)}
		d.lastCAS = now
		d.lastCASBank = cmd.Bank
		d.busBusyUntil = w.End
		d.writeDataEnd = w.End
		d.stats.Writes++
		d.perBank[cmd.Bank].Writes++
		if b.casSinceAct {
			d.perBank[cmd.Bank].RowHits++
		}
		b.casSinceAct = true
		d.stats.DataCycles += w.Cycles()
		d.stats.BurstsBL += int64(cmd.BL)
		d.lastWindow = w
		pre := w.End + d.t.TWR
		if pre > b.preAllowedAt {
			b.preAllowedAt = pre
		}
		if cmd.AutoPrecharge {
			b.apPending = true
			b.apStartAt = b.preAllowedAt
		}
		return w, nil
	case CmdPrecharge:
		b := &d.banks[cmd.Bank]
		if d.salp() {
			b = d.subOf(cmd.Bank, cmd.Row)
		}
		b.state = BankPrecharging
		b.readyAt = now + d.t.TRP
		d.stats.Precharges++
		d.perBank[cmd.Bank].Precharges++
	case CmdRefresh:
		for i := range d.banks {
			d.banks[i].readyAt = now + d.t.TRFC
		}
		for i := range d.subs {
			d.subs[i].readyAt = now + d.t.TRFC
		}
		d.stats.Refreshes++
	}
	return DataWindow{}, nil
}
