// Package dram provides a cycle-level model of DDR I/II/III SDRAM devices:
// JEDEC-style timing parameter sets, per-bank state machines, command
// legality checking, auto-precharge, and data-bus occupancy tracking.
//
// The model is the memory substrate of the application-aware NoC
// reproduction. It is command-accurate: a controller (or router test
// bench) issues Activate/Read/Write/Precharge/Refresh commands and the
// device enforces every inter-command constraint (tRCD, tRP, tRAS, tCCD,
// tRRD, tWR, tWTR, tRTP, CL/CWL, bus turnaround) at memory-clock-cycle
// granularity, exactly the quantities the paper's evaluation metrics
// (data-bus utilization, request latency in cycles) are built from.
package dram

import "fmt"

// Generation identifies a DDR SDRAM generation. The paper evaluates all
// three: DDR I at 133-200 MHz, DDR II at 266-400 MHz, DDR III at
// 533-800 MHz.
type Generation int

const (
	DDR1 Generation = 1 + iota
	DDR2
	DDR3
)

// String returns the conventional name of the generation.
func (g Generation) String() string {
	switch g {
	case DDR1:
		return "DDR1"
	case DDR2:
		return "DDR2"
	case DDR3:
		return "DDR3"
	default:
		return fmt.Sprintf("Generation(%d)", int(g))
	}
}

// Timing is a complete device timing parameter set. All values are in
// memory clock cycles at ClockMHz. DDR transfers two data beats per clock,
// so a burst of length BL occupies BL/2 data-bus cycles.
type Timing struct {
	Generation Generation
	ClockMHz   int
	Banks      int // independent banks (4 for DDR1/2, 8 for DDR3)

	CL  int64 // CAS (read) latency: READ command to first data beat
	CWL int64 // CAS write latency: WRITE command to first data beat

	TRCD int64 // ACTIVATE to READ/WRITE, same bank
	TRP  int64 // PRECHARGE to ACTIVATE, same bank
	TRAS int64 // ACTIVATE to PRECHARGE, same bank (minimum row-open time)
	TRC  int64 // ACTIVATE to ACTIVATE, same bank
	TRRD int64 // ACTIVATE to ACTIVATE, different banks

	TWR  int64 // end of write data to PRECHARGE, same bank (write recovery)
	TWTR int64 // end of write data to READ command, any bank (internal turnaround)
	TRTP int64 // READ command to PRECHARGE, same bank
	TCCD int64 // CAS to CAS, any bank (column command spacing)
	TRTW int64 // extra data-bus gap imposed between read data end and write data start

	TRFC  int64 // REFRESH to ACTIVATE (refresh cycle time)
	TREFI int64 // average refresh interval
	TFAW  int64 // four-activate window: at most 4 ACTs per rolling window (0 disables)

	// DeviceBL is the burst length the device mode register is set to
	// (2, 4 or 8). OTF reports whether the device supports on-the-fly
	// burst chop (DDR3 BL8 with selectable BC4 per command).
	DeviceBL int
	OTF      bool
}

// Validate reports whether the timing set is internally consistent.
func (t *Timing) Validate() error {
	switch {
	case t.Generation < DDR1 || t.Generation > DDR3:
		return fmt.Errorf("dram: invalid generation %d", t.Generation)
	case t.ClockMHz <= 0:
		return fmt.Errorf("dram: invalid clock %d MHz", t.ClockMHz)
	case t.Banks != 4 && t.Banks != 8:
		return fmt.Errorf("dram: invalid bank count %d", t.Banks)
	case t.CL < 1 || t.CWL < 1:
		return fmt.Errorf("dram: CL/CWL must be >= 1 (CL=%d CWL=%d)", t.CL, t.CWL)
	case t.TRCD < 1 || t.TRP < 1 || t.TRAS < 1:
		return fmt.Errorf("dram: tRCD/tRP/tRAS must be >= 1")
	case t.TRAS < t.TRCD:
		return fmt.Errorf("dram: tRAS (%d) < tRCD (%d)", t.TRAS, t.TRCD)
	case t.TRC < t.TRAS+t.TRP:
		return fmt.Errorf("dram: tRC (%d) < tRAS+tRP (%d)", t.TRC, t.TRAS+t.TRP)
	case t.TCCD < 1:
		return fmt.Errorf("dram: tCCD must be >= 1")
	case t.DeviceBL != 2 && t.DeviceBL != 4 && t.DeviceBL != 8:
		return fmt.Errorf("dram: invalid device BL %d", t.DeviceBL)
	case t.OTF && t.Generation != DDR3:
		return fmt.Errorf("dram: OTF burst chop is a DDR3 feature")
	}
	return nil
}

// BurstCycles returns the number of data-bus clock cycles a burst of bl
// beats occupies (two beats per cycle, minimum one cycle).
func BurstCycles(bl int) int64 {
	if bl <= 1 {
		return 1
	}
	return int64((bl + 1) / 2)
}

// speedKey identifies a predefined speed grade.
type speedKey struct {
	gen Generation
	mhz int
}

// grades holds the predefined timing sets for the nine clock points the
// paper evaluates (three per generation). Values are derived from typical
// JEDEC datasheet parameters (tRCD/tRP ~15 ns for DDR1/2, ~13.5 ns for
// DDR3; tRAS 40-45 ns; tWR 15 ns; tWTR/tRTP 7.5 ns) converted to cycles
// at each clock. DDR3 at 800 MHz deliberately satisfies the paper's
// observation that deactivating a bank after a write takes
// tWR+tRP = 23 cycles.
var grades = map[speedKey]Timing{
	{DDR1, 133}: {Generation: DDR1, ClockMHz: 133, Banks: 4, CL: 2, CWL: 1, TRCD: 2, TRP: 2, TRAS: 6, TRC: 9, TRRD: 2, TWR: 2, TWTR: 1, TRTP: 1, TCCD: 1, TRTW: 1, TRFC: 10, TREFI: 1036, DeviceBL: 8},
	{DDR1, 166}: {Generation: DDR1, ClockMHz: 166, Banks: 4, CL: 3, CWL: 1, TRCD: 3, TRP: 3, TRAS: 7, TRC: 10, TRRD: 2, TWR: 3, TWTR: 2, TRTP: 2, TCCD: 1, TRTW: 1, TRFC: 12, TREFI: 1294, DeviceBL: 8},
	{DDR1, 200}: {Generation: DDR1, ClockMHz: 200, Banks: 4, CL: 3, CWL: 1, TRCD: 3, TRP: 3, TRAS: 8, TRC: 11, TRRD: 2, TWR: 3, TWTR: 2, TRTP: 2, TCCD: 1, TRTW: 1, TRFC: 14, TREFI: 1560, DeviceBL: 8},

	{DDR2, 266}: {Generation: DDR2, ClockMHz: 266, Banks: 4, CL: 4, CWL: 3, TRCD: 4, TRP: 4, TRAS: 12, TRC: 16, TRRD: 3, TWR: 4, TWTR: 2, TRTP: 2, TCCD: 2, TRTW: 2, TRFC: 28, TREFI: 2074, TFAW: 10, DeviceBL: 8},
	{DDR2, 333}: {Generation: DDR2, ClockMHz: 333, Banks: 4, CL: 5, CWL: 4, TRCD: 5, TRP: 5, TRAS: 15, TRC: 20, TRRD: 3, TWR: 5, TWTR: 3, TRTP: 3, TCCD: 2, TRTW: 2, TRFC: 35, TREFI: 2597, TFAW: 13, DeviceBL: 8},
	{DDR2, 400}: {Generation: DDR2, ClockMHz: 400, Banks: 4, CL: 6, CWL: 5, TRCD: 6, TRP: 6, TRAS: 18, TRC: 24, TRRD: 4, TWR: 6, TWTR: 3, TRTP: 3, TCCD: 2, TRTW: 2, TRFC: 42, TREFI: 3120, TFAW: 15, DeviceBL: 8},

	{DDR3, 533}: {Generation: DDR3, ClockMHz: 533, Banks: 8, CL: 7, CWL: 6, TRCD: 7, TRP: 7, TRAS: 20, TRC: 27, TRRD: 4, TWR: 8, TWTR: 4, TRTP: 4, TCCD: 4, TRTW: 2, TRFC: 59, TREFI: 4157, TFAW: 16, DeviceBL: 8, OTF: true},
	{DDR3, 667}: {Generation: DDR3, ClockMHz: 667, Banks: 8, CL: 9, CWL: 7, TRCD: 9, TRP: 9, TRAS: 24, TRC: 33, TRRD: 5, TWR: 10, TWTR: 5, TRTP: 5, TCCD: 4, TRTW: 2, TRFC: 74, TREFI: 5202, TFAW: 20, DeviceBL: 8, OTF: true},
	{DDR3, 800}: {Generation: DDR3, ClockMHz: 800, Banks: 8, CL: 11, CWL: 8, TRCD: 11, TRP: 11, TRAS: 28, TRC: 39, TRRD: 6, TWR: 12, TWTR: 6, TRTP: 6, TCCD: 4, TRTW: 2, TRFC: 88, TREFI: 6240, TFAW: 24, DeviceBL: 8, OTF: true},
}

// Speed returns the predefined timing set for a generation and clock.
// The supported points are the nine the paper evaluates:
// DDR1 133/166/200, DDR2 266/333/400, DDR3 533/667/800 MHz.
func Speed(gen Generation, clockMHz int) (Timing, error) {
	t, ok := grades[speedKey{gen, clockMHz}]
	if !ok {
		return Timing{}, fmt.Errorf("dram: no predefined timing for %s at %d MHz", gen, clockMHz)
	}
	return t, nil
}

// MustSpeed is Speed but panics on unknown grades; intended for tables of
// known-good configurations and tests.
func MustSpeed(gen Generation, clockMHz int) Timing {
	t, err := Speed(gen, clockMHz)
	if err != nil {
		panic(err)
	}
	return t
}

// Speeds returns the list of predefined clock points for a generation in
// ascending order.
func Speeds(gen Generation) []int {
	var out []int
	for k := range grades {
		if k.gen == gen {
			out = append(out, k.mhz)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// WithDeviceBL returns a copy of t with the mode-register burst length
// changed. SAGM configurations run DDR1/2 devices in BL4 mode and DDR3
// devices in BL8 mode with OTF burst chop.
func (t Timing) WithDeviceBL(bl int) Timing {
	t.DeviceBL = bl
	return t
}
