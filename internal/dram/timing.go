// Package dram provides a cycle-level model of DDR I/II/III SDRAM devices:
// JEDEC-style timing parameter sets, per-bank state machines, command
// legality checking, auto-precharge, and data-bus occupancy tracking.
//
// The model is the memory substrate of the application-aware NoC
// reproduction. It is command-accurate: a controller (or router test
// bench) issues Activate/Read/Write/Precharge/Refresh commands and the
// device enforces every inter-command constraint (tRCD, tRP, tRAS, tCCD,
// tRRD, tWR, tWTR, tRTP, CL/CWL, bus turnaround) at memory-clock-cycle
// granularity, exactly the quantities the paper's evaluation metrics
// (data-bus utilization, request latency in cycles) are built from.
package dram

import "fmt"

// Generation identifies a DDR SDRAM generation. The paper evaluates all
// three: DDR I at 133-200 MHz, DDR II at 266-400 MHz, DDR III at
// 533-800 MHz.
type Generation int

const (
	DDR1 Generation = 1 + iota
	DDR2
	DDR3
	// DDR4 introduces bank groups: column and activate spacing depend on
	// whether consecutive commands land in the same group (tCCD_L/tRRD_L)
	// or different groups (tCCD_S/tRRD_S).
	DDR4
	// LPDDR3 is the low-power mobile part: DDR3-class protocol with
	// slower analog timings (long tRRD/tFAW) at high data rates.
	LPDDR3
)

// Generations lists every supported generation in protocol order.
func Generations() []Generation {
	return []Generation{DDR1, DDR2, DDR3, DDR4, LPDDR3}
}

// String returns the conventional name of the generation.
func (g Generation) String() string {
	switch g {
	case DDR1:
		return "DDR1"
	case DDR2:
		return "DDR2"
	case DDR3:
		return "DDR3"
	case DDR4:
		return "DDR4"
	case LPDDR3:
		return "LPDDR3"
	default:
		return fmt.Sprintf("Generation(%d)", int(g))
	}
}

// Timing is a complete device timing parameter set. All values are in
// memory clock cycles at ClockMHz. DDR transfers two data beats per clock,
// so a burst of length BL occupies BL/2 data-bus cycles.
type Timing struct {
	Generation Generation
	ClockMHz   int
	Banks      int // independent banks (4 for DDR1/2, 8 for DDR3)

	CL  int64 // CAS (read) latency: READ command to first data beat
	CWL int64 // CAS write latency: WRITE command to first data beat

	TRCD int64 // ACTIVATE to READ/WRITE, same bank
	TRP  int64 // PRECHARGE to ACTIVATE, same bank
	TRAS int64 // ACTIVATE to PRECHARGE, same bank (minimum row-open time)
	TRC  int64 // ACTIVATE to ACTIVATE, same bank
	TRRD int64 // ACTIVATE to ACTIVATE, different banks

	TWR  int64 // end of write data to PRECHARGE, same bank (write recovery)
	TWTR int64 // end of write data to READ command, any bank (internal turnaround)
	TRTP int64 // READ command to PRECHARGE, same bank
	TCCD int64 // CAS to CAS, any bank (column command spacing)
	TRTW int64 // extra data-bus gap imposed between read data end and write data start

	TRFC  int64 // REFRESH to ACTIVATE (refresh cycle time)
	TREFI int64 // average refresh interval
	TFAW  int64 // four-activate window: at most 4 ACTs per rolling window (0 disables)

	// BankGroups partitions the banks into groups (DDR4). When > 1,
	// column and activate spacing use the long/short pairs below instead
	// of the flat TCCD/TRRD; group membership is bank index modulo
	// BankGroups, so a controller walking sequential banks alternates
	// groups and earns the short spacing. 0 or 1 means no group structure.
	BankGroups int
	TCCDL      int64 // CAS to CAS, same bank group (>= TCCD)
	TCCDS      int64 // CAS to CAS, different bank groups
	TRRDL      int64 // ACT to ACT, same bank group (>= TRRD)
	TRRDS      int64 // ACT to ACT, different bank groups

	// Subarrays enables SALP-style per-subarray row buffers (MASA-lite):
	// each bank is split into Subarrays independent row buffers, a row
	// maps to subarray row%Subarrays, and activations to distinct
	// subarrays of one bank may overlap. 0 or 1 keeps the classic
	// one-row-buffer-per-bank device.
	Subarrays int

	// DeviceBL is the burst length the device mode register is set to
	// (2, 4 or 8). OTF reports whether the device supports on-the-fly
	// burst chop (DDR3/DDR4 BL8 with selectable BC4 per command).
	DeviceBL int
	OTF      bool
}

// WithSubarrays returns a copy of t with SALP-style subarray row buffers
// enabled (n <= 1 disables them).
func (t Timing) WithSubarrays(n int) Timing {
	t.Subarrays = n
	return t
}

// GroupOf returns the bank-group index of a bank (0 when the generation
// has no group structure).
func (t *Timing) GroupOf(bank int) int {
	if t.BankGroups <= 1 {
		return 0
	}
	return bank % t.BankGroups
}

// SubarrayOf returns the subarray index a row maps to (0 when subarrays
// are disabled).
func (t *Timing) SubarrayOf(row int) int {
	if t.Subarrays <= 1 {
		return 0
	}
	return row % t.Subarrays
}

// Validate reports whether the timing set is internally consistent.
func (t *Timing) Validate() error {
	switch {
	case t.Generation < DDR1 || t.Generation > LPDDR3:
		return fmt.Errorf("dram: invalid generation %d", t.Generation)
	case t.ClockMHz <= 0:
		return fmt.Errorf("dram: invalid clock %d MHz", t.ClockMHz)
	case t.Banks != 4 && t.Banks != 8 && t.Banks != 16:
		return fmt.Errorf("dram: invalid bank count %d", t.Banks)
	case t.CL < 1 || t.CWL < 1:
		return fmt.Errorf("dram: CL/CWL must be >= 1 (CL=%d CWL=%d)", t.CL, t.CWL)
	case t.TRCD < 1 || t.TRP < 1 || t.TRAS < 1:
		return fmt.Errorf("dram: tRCD/tRP/tRAS must be >= 1")
	case t.TRAS < t.TRCD:
		return fmt.Errorf("dram: tRAS (%d) < tRCD (%d)", t.TRAS, t.TRCD)
	case t.TRC < t.TRAS+t.TRP:
		return fmt.Errorf("dram: tRC (%d) < tRAS+tRP (%d)", t.TRC, t.TRAS+t.TRP)
	case t.TCCD < 1:
		return fmt.Errorf("dram: tCCD must be >= 1")
	case t.DeviceBL != 2 && t.DeviceBL != 4 && t.DeviceBL != 8:
		return fmt.Errorf("dram: invalid device BL %d", t.DeviceBL)
	case t.OTF && t.Generation != DDR3 && t.Generation != DDR4:
		return fmt.Errorf("dram: OTF burst chop is a DDR3/DDR4 feature")
	case t.Subarrays < 0:
		return fmt.Errorf("dram: invalid subarray count %d", t.Subarrays)
	}
	if t.BankGroups > 1 {
		switch {
		case t.Banks%t.BankGroups != 0:
			return fmt.Errorf("dram: %d banks not divisible into %d groups", t.Banks, t.BankGroups)
		case t.TCCDL < 1 || t.TCCDS < 1 || t.TRRDL < 1 || t.TRRDS < 1:
			return fmt.Errorf("dram: bank groups need tCCD_L/S and tRRD_L/S >= 1")
		case t.TCCDL < t.TCCDS:
			return fmt.Errorf("dram: tCCD_L (%d) < tCCD_S (%d)", t.TCCDL, t.TCCDS)
		case t.TRRDL < t.TRRDS:
			return fmt.Errorf("dram: tRRD_L (%d) < tRRD_S (%d)", t.TRRDL, t.TRRDS)
		}
	}
	return nil
}

// BurstCycles returns the number of data-bus clock cycles a burst of bl
// beats occupies (two beats per cycle, minimum one cycle).
func BurstCycles(bl int) int64 {
	if bl <= 1 {
		return 1
	}
	return int64((bl + 1) / 2)
}

// speedKey identifies a predefined speed grade.
type speedKey struct {
	gen Generation
	mhz int
}

// grades holds the predefined timing sets for the nine clock points the
// paper evaluates (three per generation). Values are derived from typical
// JEDEC datasheet parameters (tRCD/tRP ~15 ns for DDR1/2, ~13.5 ns for
// DDR3; tRAS 40-45 ns; tWR 15 ns; tWTR/tRTP 7.5 ns) converted to cycles
// at each clock. DDR3 at 800 MHz deliberately satisfies the paper's
// observation that deactivating a bank after a write takes
// tWR+tRP = 23 cycles.
var grades = map[speedKey]Timing{
	{DDR1, 133}: {Generation: DDR1, ClockMHz: 133, Banks: 4, CL: 2, CWL: 1, TRCD: 2, TRP: 2, TRAS: 6, TRC: 9, TRRD: 2, TWR: 2, TWTR: 1, TRTP: 1, TCCD: 1, TRTW: 1, TRFC: 10, TREFI: 1036, DeviceBL: 8},
	{DDR1, 166}: {Generation: DDR1, ClockMHz: 166, Banks: 4, CL: 3, CWL: 1, TRCD: 3, TRP: 3, TRAS: 7, TRC: 10, TRRD: 2, TWR: 3, TWTR: 2, TRTP: 2, TCCD: 1, TRTW: 1, TRFC: 12, TREFI: 1294, DeviceBL: 8},
	{DDR1, 200}: {Generation: DDR1, ClockMHz: 200, Banks: 4, CL: 3, CWL: 1, TRCD: 3, TRP: 3, TRAS: 8, TRC: 11, TRRD: 2, TWR: 3, TWTR: 2, TRTP: 2, TCCD: 1, TRTW: 1, TRFC: 14, TREFI: 1560, DeviceBL: 8},

	{DDR2, 266}: {Generation: DDR2, ClockMHz: 266, Banks: 4, CL: 4, CWL: 3, TRCD: 4, TRP: 4, TRAS: 12, TRC: 16, TRRD: 3, TWR: 4, TWTR: 2, TRTP: 2, TCCD: 2, TRTW: 2, TRFC: 28, TREFI: 2074, TFAW: 10, DeviceBL: 8},
	{DDR2, 333}: {Generation: DDR2, ClockMHz: 333, Banks: 4, CL: 5, CWL: 4, TRCD: 5, TRP: 5, TRAS: 15, TRC: 20, TRRD: 3, TWR: 5, TWTR: 3, TRTP: 3, TCCD: 2, TRTW: 2, TRFC: 35, TREFI: 2597, TFAW: 13, DeviceBL: 8},
	{DDR2, 400}: {Generation: DDR2, ClockMHz: 400, Banks: 4, CL: 6, CWL: 5, TRCD: 6, TRP: 6, TRAS: 18, TRC: 24, TRRD: 4, TWR: 6, TWTR: 3, TRTP: 3, TCCD: 2, TRTW: 2, TRFC: 42, TREFI: 3120, TFAW: 15, DeviceBL: 8},

	{DDR3, 533}: {Generation: DDR3, ClockMHz: 533, Banks: 8, CL: 7, CWL: 6, TRCD: 7, TRP: 7, TRAS: 20, TRC: 27, TRRD: 4, TWR: 8, TWTR: 4, TRTP: 4, TCCD: 4, TRTW: 2, TRFC: 59, TREFI: 4157, TFAW: 16, DeviceBL: 8, OTF: true},
	{DDR3, 667}: {Generation: DDR3, ClockMHz: 667, Banks: 8, CL: 9, CWL: 7, TRCD: 9, TRP: 9, TRAS: 24, TRC: 33, TRRD: 5, TWR: 10, TWTR: 5, TRTP: 5, TCCD: 4, TRTW: 2, TRFC: 74, TREFI: 5202, TFAW: 20, DeviceBL: 8, OTF: true},
	{DDR3, 800}: {Generation: DDR3, ClockMHz: 800, Banks: 8, CL: 11, CWL: 8, TRCD: 11, TRP: 11, TRAS: 28, TRC: 39, TRRD: 6, TWR: 12, TWTR: 6, TRTP: 6, TCCD: 4, TRTW: 2, TRFC: 88, TREFI: 6240, TFAW: 24, DeviceBL: 8, OTF: true},

	// DDR4 (data rates 2133/2400/2666): 16 banks in 4 groups. The flat
	// TCCD/TRRD fields mirror the short (cross-group) spacings so code
	// that ignores group structure stays a valid lower bound; the device
	// applies TCCDL/TRRDL when consecutive commands share a group.
	{DDR4, 1066}: {Generation: DDR4, ClockMHz: 1066, Banks: 16, BankGroups: 4, CL: 15, CWL: 11, TRCD: 15, TRP: 15, TRAS: 36, TRC: 51, TRRD: 4, TRRDS: 4, TRRDL: 6, TWR: 16, TWTR: 8, TRTP: 8, TCCD: 4, TCCDS: 4, TCCDL: 6, TRTW: 2, TRFC: 374, TREFI: 8314, TFAW: 28, DeviceBL: 8, OTF: true},
	{DDR4, 1200}: {Generation: DDR4, ClockMHz: 1200, Banks: 16, BankGroups: 4, CL: 16, CWL: 12, TRCD: 16, TRP: 16, TRAS: 39, TRC: 55, TRRD: 4, TRRDS: 4, TRRDL: 6, TWR: 18, TWTR: 9, TRTP: 9, TCCD: 4, TCCDS: 4, TCCDL: 6, TRTW: 2, TRFC: 420, TREFI: 9360, TFAW: 32, DeviceBL: 8, OTF: true},
	{DDR4, 1333}: {Generation: DDR4, ClockMHz: 1333, Banks: 16, BankGroups: 4, CL: 18, CWL: 14, TRCD: 18, TRP: 18, TRAS: 43, TRC: 61, TRRD: 5, TRRDS: 5, TRRDL: 7, TWR: 20, TWTR: 10, TRTP: 10, TCCD: 4, TCCDS: 4, TCCDL: 7, TRTW: 2, TRFC: 467, TREFI: 10397, TFAW: 36, DeviceBL: 8, OTF: true},

	// LPDDR3 (data rates 1600/1866/2133): DDR3-class protocol, no bank
	// groups, slow analog core (long tRRD/tFAW relative to the clock).
	{LPDDR3, 800}:  {Generation: LPDDR3, ClockMHz: 800, Banks: 8, CL: 12, CWL: 6, TRCD: 15, TRP: 15, TRAS: 34, TRC: 49, TRRD: 8, TWR: 12, TWTR: 6, TRTP: 6, TCCD: 4, TRTW: 2, TRFC: 168, TREFI: 3120, TFAW: 40, DeviceBL: 8},
	{LPDDR3, 933}:  {Generation: LPDDR3, ClockMHz: 933, Banks: 8, CL: 14, CWL: 8, TRCD: 17, TRP: 17, TRAS: 40, TRC: 57, TRRD: 10, TWR: 14, TWTR: 7, TRTP: 7, TCCD: 4, TRTW: 2, TRFC: 196, TREFI: 3639, TFAW: 47, DeviceBL: 8},
	{LPDDR3, 1066}: {Generation: LPDDR3, ClockMHz: 1066, Banks: 8, CL: 16, CWL: 9, TRCD: 19, TRP: 19, TRAS: 46, TRC: 65, TRRD: 11, TWR: 16, TWTR: 8, TRTP: 8, TCCD: 4, TRTW: 2, TRFC: 224, TREFI: 4157, TFAW: 54, DeviceBL: 8},
}

// DefaultClock returns the fastest predefined clock point of a
// generation — the fallback for application models that predate the
// generation and carry no Table I clock entry for it.
func DefaultClock(gen Generation) int {
	s := Speeds(gen)
	if len(s) == 0 {
		return 0
	}
	return s[len(s)-1]
}

// Speed returns the predefined timing set for a generation and clock.
// The supported points are the nine the paper evaluates — DDR1
// 133/166/200, DDR2 266/333/400, DDR3 533/667/800 MHz — plus the modern
// extensions DDR4 1066/1200/1333 and LPDDR3 800/933/1066 MHz.
func Speed(gen Generation, clockMHz int) (Timing, error) {
	t, ok := grades[speedKey{gen, clockMHz}]
	if !ok {
		return Timing{}, fmt.Errorf("dram: no predefined timing for %s at %d MHz", gen, clockMHz)
	}
	return t, nil
}

// MustSpeed is Speed but panics on unknown grades; intended for tables of
// known-good configurations and tests.
func MustSpeed(gen Generation, clockMHz int) Timing {
	t, err := Speed(gen, clockMHz)
	if err != nil {
		panic(err)
	}
	return t
}

// Speeds returns the list of predefined clock points for a generation in
// ascending order.
func Speeds(gen Generation) []int {
	var out []int
	for k := range grades {
		if k.gen == gen {
			out = append(out, k.mhz)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// WithDeviceBL returns a copy of t with the mode-register burst length
// changed. SAGM configurations run DDR1/2 devices in BL4 mode and DDR3
// devices in BL8 mode with OTF burst chop.
func (t Timing) WithDeviceBL(bl int) Timing {
	t.DeviceBL = bl
	return t
}
