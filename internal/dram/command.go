package dram

import "fmt"

// CmdKind enumerates the SDRAM commands the model supports. NOP/DESELECT
// is implicit (any cycle with no command issued).
type CmdKind int

const (
	// CmdActivate opens a row in a bank (RAS).
	CmdActivate CmdKind = 1 + iota
	// CmdRead is a column read (CAS).
	CmdRead
	// CmdWrite is a column write (CAS with WE).
	CmdWrite
	// CmdPrecharge closes the open row of a bank (PRE).
	CmdPrecharge
	// CmdRefresh is an all-bank auto refresh; every bank must be idle.
	CmdRefresh
)

// String returns the datasheet mnemonic for the command kind.
func (k CmdKind) String() string {
	switch k {
	case CmdActivate:
		return "ACT"
	case CmdRead:
		return "RD"
	case CmdWrite:
		return "WR"
	case CmdPrecharge:
		return "PRE"
	case CmdRefresh:
		return "REF"
	default:
		return fmt.Sprintf("CmdKind(%d)", int(k))
	}
}

// Command is a single command presented on the SDRAM command bus. At most
// one command can be issued per clock cycle; the Device enforces this.
type Command struct {
	Kind CmdKind
	Bank int
	Row  int // used by CmdActivate
	Col  int // used by CmdRead/CmdWrite

	// BL is the burst length of a read or write. For non-OTF devices it
	// must equal the mode-register DeviceBL. For DDR3 OTF devices it may
	// be 4 (burst chop) or 8.
	BL int

	// AutoPrecharge requests a self-timed precharge at the end of the
	// burst (the paper's AP operation); valid on CmdRead/CmdWrite.
	AutoPrecharge bool
}

// String renders the command in a compact datasheet-like form.
func (c Command) String() string {
	switch c.Kind {
	case CmdActivate:
		return fmt.Sprintf("ACT b%d r%d", c.Bank, c.Row)
	case CmdRead, CmdWrite:
		ap := ""
		if c.AutoPrecharge {
			ap = "+AP"
		}
		return fmt.Sprintf("%s%s b%d c%d bl%d", c.Kind, ap, c.Bank, c.Col, c.BL)
	case CmdPrecharge:
		return fmt.Sprintf("PRE b%d", c.Bank)
	case CmdRefresh:
		return "REF"
	default:
		return c.Kind.String()
	}
}

// IsCAS reports whether the command is a column (data-moving) command.
func (c Command) IsCAS() bool { return c.Kind == CmdRead || c.Kind == CmdWrite }

// DataWindow describes the data-bus occupancy produced by a column
// command: the burst occupies clock cycles [Start, End). For reads the
// last data beat is delivered at cycle End-1 and the full burst is
// available to the controller at End; for writes the device has absorbed
// all data at End (write recovery then begins).
type DataWindow struct {
	Start, End int64
}

// Cycles returns the number of data-bus cycles the window occupies.
func (w DataWindow) Cycles() int64 { return w.End - w.Start }
