package dram

import "fmt"

// Address is a decoded SDRAM location. Requests in the NoC carry decoded
// addresses (the paper's packets carry BA/RA/CA on sideband wires). The
// Bank field is a global bank index when the packet is still in the
// mesh; the structure-aware layers (internal/mapping ChannelMap and
// StructMap) decompose it into channel/group/bank/subarray levels.
type Address struct {
	Bank int
	Row  int
	Col  int
}

// String renders the address in the paper's (RA, BA, CA) notation.
func (a Address) String() string { return fmt.Sprintf("b%d r%d c%d", a.Bank, a.Row, a.Col) }
