package dram

import (
	"testing"
	"testing/quick"
)

// issueAt fails the test if the command is not accepted at now.
func issueAt(t *testing.T, d *Device, cmd Command, now int64) DataWindow {
	t.Helper()
	w, err := d.Issue(cmd, now)
	if err != nil {
		t.Fatalf("Issue(%v, %d): %v", cmd, now, err)
	}
	return w
}

// wantRefused fails the test if the command is accepted at now.
func wantRefused(t *testing.T, d *Device, cmd Command, now int64) {
	t.Helper()
	if d.CanIssue(cmd, now) {
		t.Fatalf("CanIssue(%v, %d) = true, want refusal", cmd, now)
	}
	if _, err := d.Issue(cmd, now); err == nil {
		t.Fatalf("Issue(%v, %d) accepted, want refusal", cmd, now)
	}
}

func TestActivateThenReadRespectsTRCD(t *testing.T) {
	tm := MustSpeed(DDR2, 333)
	d := MustNewDevice(tm)
	issueAt(t, d, Command{Kind: CmdActivate, Bank: 0, Row: 7}, 0)
	rd := Command{Kind: CmdRead, Bank: 0, Col: 0, BL: 8}
	wantRefused(t, d, rd, tm.TRCD-1)
	w := issueAt(t, d, rd, tm.TRCD)
	if w.Start != tm.TRCD+tm.CL {
		t.Errorf("data start = %d, want %d", w.Start, tm.TRCD+tm.CL)
	}
	if w.Cycles() != BurstCycles(8) {
		t.Errorf("data cycles = %d, want %d", w.Cycles(), BurstCycles(8))
	}
}

func TestReadToIdleBankRefused(t *testing.T) {
	d := MustNewDevice(MustSpeed(DDR1, 200))
	wantRefused(t, d, Command{Kind: CmdRead, Bank: 0, BL: 8}, 0)
	wantRefused(t, d, Command{Kind: CmdWrite, Bank: 0, BL: 8}, 0)
	wantRefused(t, d, Command{Kind: CmdPrecharge, Bank: 0}, 0)
}

func TestOneCommandPerCycle(t *testing.T) {
	d := MustNewDevice(MustSpeed(DDR2, 333))
	issueAt(t, d, Command{Kind: CmdActivate, Bank: 0, Row: 1}, 0)
	wantRefused(t, d, Command{Kind: CmdActivate, Bank: 1, Row: 1}, 0)
}

func TestTRRDBetweenActivates(t *testing.T) {
	tm := MustSpeed(DDR3, 800)
	d := MustNewDevice(tm)
	issueAt(t, d, Command{Kind: CmdActivate, Bank: 0, Row: 1}, 0)
	wantRefused(t, d, Command{Kind: CmdActivate, Bank: 1, Row: 1}, tm.TRRD-1)
	issueAt(t, d, Command{Kind: CmdActivate, Bank: 1, Row: 1}, tm.TRRD)
}

func TestPrechargeRespectsTRASAndTRP(t *testing.T) {
	tm := MustSpeed(DDR2, 400)
	d := MustNewDevice(tm)
	issueAt(t, d, Command{Kind: CmdActivate, Bank: 2, Row: 3}, 0)
	wantRefused(t, d, Command{Kind: CmdPrecharge, Bank: 2}, tm.TRAS-1)
	issueAt(t, d, Command{Kind: CmdPrecharge, Bank: 2}, tm.TRAS)
	act := Command{Kind: CmdActivate, Bank: 2, Row: 9}
	wantRefused(t, d, act, tm.TRAS+tm.TRP-1)
	// tRC may extend past tRAS+tRP.
	at := tm.TRAS + tm.TRP
	if tm.TRC > at {
		at = tm.TRC
	}
	issueAt(t, d, act, at)
}

func TestWriteRecoveryDelaysPrecharge(t *testing.T) {
	tm := MustSpeed(DDR3, 800)
	d := MustNewDevice(tm)
	issueAt(t, d, Command{Kind: CmdActivate, Bank: 0, Row: 1}, 0)
	w := issueAt(t, d, Command{Kind: CmdWrite, Bank: 0, BL: 8}, tm.TRCD)
	preOK := w.End + tm.TWR
	wantRefused(t, d, Command{Kind: CmdPrecharge, Bank: 0}, preOK-1)
	issueAt(t, d, Command{Kind: CmdPrecharge, Bank: 0}, preOK)
}

func TestTCCDBetweenColumnCommands(t *testing.T) {
	tm := MustSpeed(DDR3, 667) // tCCD = 4
	d := MustNewDevice(tm)
	issueAt(t, d, Command{Kind: CmdActivate, Bank: 0, Row: 1}, 0)
	issueAt(t, d, Command{Kind: CmdRead, Bank: 0, BL: 8}, tm.TRCD)
	wantRefused(t, d, Command{Kind: CmdRead, Bank: 0, BL: 8}, tm.TRCD+tm.TCCD-1)
	issueAt(t, d, Command{Kind: CmdRead, Bank: 0, BL: 8}, tm.TRCD+tm.TCCD)
}

func TestWriteToReadTurnaround(t *testing.T) {
	tm := MustSpeed(DDR2, 333)
	d := MustNewDevice(tm)
	issueAt(t, d, Command{Kind: CmdActivate, Bank: 0, Row: 1}, 0)
	w := issueAt(t, d, Command{Kind: CmdWrite, Bank: 0, BL: 8}, tm.TRCD)
	rdOK := w.End + tm.TWTR
	wantRefused(t, d, Command{Kind: CmdRead, Bank: 0, BL: 8}, rdOK-1)
	issueAt(t, d, Command{Kind: CmdRead, Bank: 0, BL: 8}, rdOK)
}

func TestReadToWriteBusTurnaround(t *testing.T) {
	tm := MustSpeed(DDR2, 400)
	d := MustNewDevice(tm)
	issueAt(t, d, Command{Kind: CmdActivate, Bank: 0, Row: 1}, 0)
	w := issueAt(t, d, Command{Kind: CmdRead, Bank: 0, BL: 8}, tm.TRCD)
	// Write data may start no earlier than read data end + tRTW.
	earliest := w.End + tm.TRTW - tm.CWL
	wantRefused(t, d, Command{Kind: CmdWrite, Bank: 0, BL: 8}, earliest-1)
	issueAt(t, d, Command{Kind: CmdWrite, Bank: 0, BL: 8}, earliest)
}

func TestAutoPrechargeClosesBank(t *testing.T) {
	tm := MustSpeed(DDR2, 333)
	d := MustNewDevice(tm)
	issueAt(t, d, Command{Kind: CmdActivate, Bank: 1, Row: 5}, 0)
	issueAt(t, d, Command{Kind: CmdRead, Bank: 1, BL: 8, AutoPrecharge: true}, tm.TRCD)
	// Further CAS to the bank must be refused (AP pending).
	wantRefused(t, d, Command{Kind: CmdRead, Bank: 1, BL: 8}, tm.TRCD+tm.TCCD)
	// The AP fires at preAllowedAt = max(tRAS after ACT, CAS+tRTP+burst);
	// after +tRP the bank accepts a new ACTIVATE.
	apStart := tm.TRCD + tm.TRTP + BurstCycles(8)
	if tm.TRAS > apStart {
		apStart = tm.TRAS
	}
	ready := apStart + tm.TRP
	act := Command{Kind: CmdActivate, Bank: 1, Row: 6}
	wantRefused(t, d, act, ready-1)
	issueAt(t, d, act, ready)
	if got := d.Stats().AutoPre; got != 1 {
		t.Errorf("AutoPre = %d, want 1", got)
	}
	if got := d.Stats().Precharges; got != 0 {
		t.Errorf("explicit Precharges = %d, want 0", got)
	}
}

func TestAutoPrechargeAfterWriteUsesWriteRecovery(t *testing.T) {
	tm := MustSpeed(DDR3, 800)
	d := MustNewDevice(tm)
	issueAt(t, d, Command{Kind: CmdActivate, Bank: 0, Row: 1}, 0)
	w := issueAt(t, d, Command{Kind: CmdWrite, Bank: 0, BL: 8, AutoPrecharge: true}, tm.TRCD)
	// The paper: tWR+tRP = 23 cycles at 800 MHz to deactivate after write.
	ready := w.End + tm.TWR + tm.TRP
	act := Command{Kind: CmdActivate, Bank: 0, Row: 2}
	wantRefused(t, d, act, ready-1)
	issueAt(t, d, act, ready)
}

func TestRefreshRequiresAllBanksIdle(t *testing.T) {
	tm := MustSpeed(DDR2, 266)
	d := MustNewDevice(tm)
	issueAt(t, d, Command{Kind: CmdActivate, Bank: 0, Row: 1}, 0)
	wantRefused(t, d, Command{Kind: CmdRefresh}, tm.TRAS)
	issueAt(t, d, Command{Kind: CmdPrecharge, Bank: 0}, tm.TRAS)
	ref := tm.TRAS + tm.TRP
	issueAt(t, d, Command{Kind: CmdRefresh}, ref)
	act := Command{Kind: CmdActivate, Bank: 0, Row: 1}
	wantRefused(t, d, act, ref+tm.TRFC-1)
	issueAt(t, d, act, ref+tm.TRFC)
	if d.Stats().Refreshes != 1 {
		t.Errorf("Refreshes = %d, want 1", d.Stats().Refreshes)
	}
}

func TestBLModeEnforcement(t *testing.T) {
	tm := MustSpeed(DDR2, 333).WithDeviceBL(4)
	d := MustNewDevice(tm)
	issueAt(t, d, Command{Kind: CmdActivate, Bank: 0, Row: 1}, 0)
	wantRefused(t, d, Command{Kind: CmdRead, Bank: 0, BL: 8}, tm.TRCD)
	issueAt(t, d, Command{Kind: CmdRead, Bank: 0, BL: 4}, tm.TRCD)
}

func TestOTFAcceptsBL4AndBL8(t *testing.T) {
	tm := MustSpeed(DDR3, 667)
	d := MustNewDevice(tm)
	issueAt(t, d, Command{Kind: CmdActivate, Bank: 0, Row: 1}, 0)
	issueAt(t, d, Command{Kind: CmdRead, Bank: 0, BL: 4}, tm.TRCD)
	issueAt(t, d, Command{Kind: CmdRead, Bank: 0, BL: 8}, tm.TRCD+tm.TCCD)
	wantRefused(t, d, Command{Kind: CmdRead, Bank: 0, BL: 2}, tm.TRCD+2*tm.TCCD)
}

func TestUtilizationAccounting(t *testing.T) {
	tm := MustSpeed(DDR1, 200)
	d := MustNewDevice(tm)
	issueAt(t, d, Command{Kind: CmdActivate, Bank: 0, Row: 1}, 0)
	issueAt(t, d, Command{Kind: CmdRead, Bank: 0, BL: 8}, tm.TRCD)
	issueAt(t, d, Command{Kind: CmdRead, Bank: 0, BL: 8}, tm.TRCD+BurstCycles(8))
	want := float64(2*BurstCycles(8)) / 100.0
	if got := d.Utilization(100); got != want {
		t.Errorf("Utilization = %v, want %v", got, want)
	}
	if d.Utilization(0) != 0 {
		t.Error("Utilization(0) should be 0")
	}
}

func TestOpenRowTracking(t *testing.T) {
	tm := MustSpeed(DDR2, 333)
	d := MustNewDevice(tm)
	if _, open := d.OpenRow(0, 0); open {
		t.Fatal("bank 0 should start closed")
	}
	issueAt(t, d, Command{Kind: CmdActivate, Bank: 0, Row: 42}, 0)
	if row, open := d.OpenRow(0, 1); !open || row != 42 {
		t.Fatalf("OpenRow = (%d,%v), want (42,true)", row, open)
	}
	issueAt(t, d, Command{Kind: CmdPrecharge, Bank: 0}, tm.TRAS)
	if _, open := d.OpenRow(0, tm.TRAS+1); open {
		t.Fatal("bank 0 should be closed after PRE")
	}
	if st := d.BankState(0, tm.TRAS+tm.TRP); st != BankIdle {
		t.Fatalf("BankState = %v, want idle", st)
	}
}

func TestBankReadyAtEstimates(t *testing.T) {
	tm := MustSpeed(DDR3, 800)
	d := MustNewDevice(tm)
	if got := d.BankReadyAt(0, 5); got != 5 {
		t.Fatalf("idle BankReadyAt = %d, want now", got)
	}
	issueAt(t, d, Command{Kind: CmdActivate, Bank: 0, Row: 1}, 10)
	// Active bank: needs PRE at earliest tRAS, then tRP.
	want := 10 + tm.TRAS + tm.TRP
	if got := d.BankReadyAt(0, 11); got != want {
		t.Fatalf("active BankReadyAt = %d, want %d", got, want)
	}
}

func TestTimeMonotonicPanics(t *testing.T) {
	d := MustNewDevice(MustSpeed(DDR1, 133))
	d.CanIssue(Command{Kind: CmdActivate, Bank: 0, Row: 1}, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on time going backwards")
		}
	}()
	d.CanIssue(Command{Kind: CmdActivate, Bank: 0, Row: 1}, 5)
}

// TestPropertyGreedySchedulerNeverViolates drives the device with a greedy
// open-page controller over random request streams and checks the
// fundamental invariants: CanIssue==true implies Issue succeeds, data
// windows never overlap, and every request eventually completes.
func TestPropertyGreedySchedulerNeverViolates(t *testing.T) {
	type req struct {
		Bank  uint8
		Row   uint8
		Write bool
	}
	f := func(seed int64, reqs []req) bool {
		tm := MustSpeed(DDR3, 667)
		d := MustNewDevice(tm)
		if len(reqs) > 64 {
			reqs = reqs[:64]
		}
		var lastEnd int64 = -1
		now := int64(0)
		for _, r := range reqs {
			b := int(r.Bank) % tm.Banks
			row := int(r.Row)
			kind := CmdRead
			if r.Write {
				kind = CmdWrite
			}
			// Greedy: precharge if conflict, activate if closed, then CAS.
			for deadline := now + 10000; ; now++ {
				if now > deadline {
					t.Logf("request %+v starved", r)
					return false
				}
				open, isOpen := d.OpenRow(b, now)
				var cmd Command
				switch {
				case isOpen && open == row:
					cmd = Command{Kind: kind, Bank: b, BL: 8}
				case isOpen:
					cmd = Command{Kind: CmdPrecharge, Bank: b}
				default:
					cmd = Command{Kind: CmdActivate, Bank: b, Row: row}
				}
				if !d.CanIssue(cmd, now) {
					continue
				}
				w, err := d.Issue(cmd, now)
				if err != nil {
					t.Logf("CanIssue true but Issue failed: %v", err)
					return false
				}
				if cmd.IsCAS() {
					if w.Start <= lastEnd-1 && w.Start < lastEnd {
						t.Logf("data window overlap: start %d < prev end %d", w.Start, lastEnd)
						return false
					}
					if w.Start < lastEnd {
						return false
					}
					lastEnd = w.End
					now++
					break
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFourActivateWindow(t *testing.T) {
	tm := MustSpeed(DDR3, 800) // tFAW = 24, tRRD = 6
	d := MustNewDevice(tm)
	var acts []int64
	now := int64(0)
	for b := 0; b < 4; b++ {
		for !d.CanIssue(Command{Kind: CmdActivate, Bank: b, Row: 1}, now) {
			now++
		}
		issueAt(t, d, Command{Kind: CmdActivate, Bank: b, Row: 1}, now)
		acts = append(acts, now)
		now++
	}
	// The fifth ACT must wait until tFAW after the first.
	fifth := Command{Kind: CmdActivate, Bank: 4, Row: 1}
	wantRefused(t, d, fifth, acts[0]+tm.TFAW-1)
	issueAt(t, d, fifth, acts[0]+tm.TFAW)
}

func TestFAWDisabledOnDDR1(t *testing.T) {
	tm := MustSpeed(DDR1, 200)
	if tm.TFAW != 0 {
		t.Fatalf("DDR1 should not carry a tFAW, got %d", tm.TFAW)
	}
	d := MustNewDevice(tm)
	now := int64(0)
	for b := 0; b < 4; b++ {
		for !d.CanIssue(Command{Kind: CmdActivate, Bank: b % tm.Banks, Row: b}, now) {
			now++
		}
		if b < tm.Banks {
			issueAt(t, d, Command{Kind: CmdActivate, Bank: b, Row: 1}, now)
		}
		now++
	}
}
