package dram

import "fmt"

// Address is a decoded SDRAM location. Requests in the NoC carry decoded
// addresses (the paper's packets carry BA/RA/CA on sideband wires).
type Address struct {
	Bank int
	Row  int
	Col  int
}

// String renders the address in the paper's (RA, BA, CA) notation.
func (a Address) String() string { return fmt.Sprintf("b%d r%d c%d", a.Bank, a.Row, a.Col) }

// Interleave selects how a linear byte address is decoded.
type Interleave int

const (
	// InterleaveRowBankCol: row | bank | column — consecutive rows map to
	// different banks, the common layout for streaming media buffers
	// (encourages bank interleaving across frame rows).
	InterleaveRowBankCol Interleave = iota
	// InterleaveBankRowCol: bank | row | column — each bank holds a
	// contiguous region (a core's buffer lives in one bank).
	InterleaveBankRowCol
)

// Mapper decodes linear byte addresses into bank/row/column coordinates.
type Mapper struct {
	Scheme   Interleave
	Banks    int
	RowBytes int // bytes per row (page size)
	Rows     int
}

// NewMapper builds a mapper; rowBytes must be a power of two.
func NewMapper(scheme Interleave, banks, rows, rowBytes int) (*Mapper, error) {
	if banks <= 0 || rows <= 0 || rowBytes <= 0 {
		return nil, fmt.Errorf("dram: invalid mapper geometry banks=%d rows=%d rowBytes=%d", banks, rows, rowBytes)
	}
	if rowBytes&(rowBytes-1) != 0 {
		return nil, fmt.Errorf("dram: rowBytes %d not a power of two", rowBytes)
	}
	return &Mapper{Scheme: scheme, Banks: banks, Rows: rows, RowBytes: rowBytes}, nil
}

// Decode maps a linear byte address to a bank/row/column coordinate.
func (m *Mapper) Decode(addr int64) Address {
	col := int(addr) & (m.RowBytes - 1)
	page := addr / int64(m.RowBytes)
	switch m.Scheme {
	case InterleaveRowBankCol:
		return Address{
			Bank: int(page) % m.Banks,
			Row:  int(page/int64(m.Banks)) % m.Rows,
			Col:  col,
		}
	default: // InterleaveBankRowCol
		return Address{
			Bank: int(page/int64(m.Rows)) % m.Banks,
			Row:  int(page) % m.Rows,
			Col:  col,
		}
	}
}

// Encode is the inverse of Decode for addresses within range.
func (m *Mapper) Encode(a Address) int64 {
	var page int64
	switch m.Scheme {
	case InterleaveRowBankCol:
		page = int64(a.Row)*int64(m.Banks) + int64(a.Bank)
	default:
		page = int64(a.Bank)*int64(m.Rows) + int64(a.Row)
	}
	return page*int64(m.RowBytes) + int64(a.Col)
}
