package dram

import (
	"fmt"
	"strings"
)

// Timeline records accepted commands and their data windows and renders
// them as a textual timing diagram in the style of the paper's Fig. 5 —
// one lane for the command bus, one for the data bus, one per bank. It is
// both a debugging aid (cmd/aanoc-timing) and a documentation device: the
// package tests render the paper's auto-precharge scenario as a golden
// diagram.
type Timeline struct {
	events []timelineEvent
}

type timelineEvent struct {
	now int64
	cmd Command
	w   DataWindow
}

// Attach registers the timeline as the device's observer.
func (t *Timeline) Attach(d *Device) {
	d.Observer = func(now int64, cmd Command, w DataWindow) {
		t.events = append(t.events, timelineEvent{now: now, cmd: cmd, w: w})
	}
}

// mark returns the single-letter command mnemonic used on the command
// lane.
func mark(c Command) byte {
	switch c.Kind {
	case CmdActivate:
		return 'A'
	case CmdRead:
		if c.AutoPrecharge {
			return 'r'
		}
		return 'R'
	case CmdWrite:
		if c.AutoPrecharge {
			return 'w'
		}
		return 'W'
	case CmdPrecharge:
		return 'P'
	case CmdRefresh:
		return 'F'
	default:
		return '?'
	}
}

// Render draws the diagram from cycle `from` over `width` cycles.
// Command lane: A=ACT R/W=read/write (lowercase with auto-precharge)
// P=PRE F=REF. Data lane: '<' read data, '>' write data. Bank lanes show
// which cycles each bank's commands and bursts occupy.
func (t *Timeline) Render(from int64, width int) string {
	if width < 1 {
		return ""
	}
	cmdLane := blankLane(width)
	dataLane := blankLane(width)
	banks := map[int][]byte{}
	lane := func(b int) []byte {
		if _, ok := banks[b]; !ok {
			banks[b] = blankLane(width)
		}
		return banks[b]
	}
	put := func(l []byte, at int64, c byte) {
		if at >= from && at < from+int64(width) {
			l[at-from] = c
		}
	}
	span := func(l []byte, w DataWindow, c byte) {
		for at := w.Start; at < w.End; at++ {
			put(l, at, c)
		}
	}
	maxBank := 0
	for _, e := range t.events {
		put(cmdLane, e.now, mark(e.cmd))
		if e.cmd.Kind != CmdRefresh {
			put(lane(e.cmd.Bank), e.now, mark(e.cmd))
			if e.cmd.Bank > maxBank {
				maxBank = e.cmd.Bank
			}
		}
		if e.cmd.IsCAS() {
			c := byte('<')
			if e.cmd.Kind == CmdWrite {
				c = '>'
			}
			span(dataLane, e.w, c)
			span(lane(e.cmd.Bank), e.w, c)
		}
	}
	var sb strings.Builder
	ruler := blankLane(width)
	for i := range ruler {
		if (from+int64(i))%10 == 0 {
			ruler[i] = '|'
		}
	}
	fmt.Fprintf(&sb, "%-8s %s\n", "cycle", string(ruler))
	fmt.Fprintf(&sb, "%-8s %s\n", "cmd", string(cmdLane))
	fmt.Fprintf(&sb, "%-8s %s\n", "data", string(dataLane))
	for b := 0; b <= maxBank; b++ {
		if l, ok := banks[b]; ok {
			fmt.Fprintf(&sb, "bank %-3d %s\n", b, string(l))
		}
	}
	return sb.String()
}

// Events returns the number of recorded commands.
func (t *Timeline) Events() int { return len(t.events) }

// Commands lists the recorded commands with their cycles, for tests.
func (t *Timeline) Commands() []string {
	out := make([]string, 0, len(t.events))
	for _, e := range t.events {
		out = append(out, fmt.Sprintf("%d:%s", e.now, e.cmd))
	}
	return out
}

func blankLane(width int) []byte {
	l := make([]byte, width)
	for i := range l {
		l[i] = '.'
	}
	return l
}
