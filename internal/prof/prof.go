// Package prof wires the runtime/pprof profilers into the CLIs behind a
// pair of flags. Profiles pair with the simulation kernel's idle-skip
// work: a CPU profile of a low-utilization run shows where the remaining
// cycles go once quiescent components stop ticking.
package prof

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling when cpuPath is non-empty and returns a
// stop function that finalises the CPU profile and, when memPath is
// non-empty, writes a heap profile. Callers must invoke stop on every
// successful exit path — os.Exit skips deferred calls, so the CLIs call
// it explicitly before exiting. An empty path disables that profile.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				return err
			}
		}
		return nil
	}, nil
}
