package aanoc

// Shape tests: the orderings and approximate ratios the paper's claims
// rest on, asserted end to end against full-system simulations. These are
// the reproduction's contract — EXPERIMENTS.md records the quantitative
// detail; these tests fail if a change breaks the qualitative story.

import (
	"testing"

	"aanoc/internal/appmodel"
	"aanoc/internal/dram"
	"aanoc/internal/system"
)

// shapeRun caches one run per design for the shared configuration.
func shapeRun(t *testing.T, d system.Design, priority bool) Result {
	t.Helper()
	res, err := system.Run(system.Config{
		App: appmodel.BluRay(), Gen: dram.DDR2, Design: d,
		PriorityDemand: priority, Cycles: 120_000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestShapeTableI(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system shape test")
	}
	conv := shapeRun(t, system.Conv, false)
	ref4 := shapeRun(t, system.SDRAMAware, false)
	sagm := shapeRun(t, system.GSSSAGM, false)

	// The SDRAM-aware NoC beats the conventional design on both axes.
	if conv.Utilization >= ref4.Utilization {
		t.Errorf("CONV util %.3f should be below [4] %.3f", conv.Utilization, ref4.Utilization)
	}
	if conv.LatAll <= ref4.LatAll {
		t.Errorf("CONV latency %.0f should exceed [4] %.0f", conv.LatAll, ref4.LatAll)
	}
	// The paper's CONV latency penalty is ~1.6x; ours must be >= 1.2x.
	if r := conv.LatAll / ref4.LatAll; r < 1.2 {
		t.Errorf("CONV/[4] latency ratio %.2f, want >= 1.2", r)
	}
	// SAGM wastes almost nothing; BL8 designs waste several percent.
	if sagm.WasteFrac > 0.03 {
		t.Errorf("SAGM waste %.3f should be tiny", sagm.WasteFrac)
	}
	if ref4.WasteFrac < 2*sagm.WasteFrac {
		t.Errorf("[4] waste %.3f should far exceed SAGM %.3f", ref4.WasteFrac, sagm.WasteFrac)
	}
	// SAGM shortens latency.
	if sagm.LatAll >= ref4.LatAll {
		t.Errorf("SAGM latency %.0f should beat [4] %.0f", sagm.LatAll, ref4.LatAll)
	}
	// SAGM's useful utilization stays within a few percent of [4]'s while
	// moving far fewer total beats.
	useful := func(r Result) float64 { return r.Utilization * (1 - r.WasteFrac) }
	if useful(sagm) < 0.95*useful(ref4) {
		t.Errorf("SAGM useful util %.3f too far below [4] %.3f", useful(sagm), useful(ref4))
	}
}

func TestShapeTableII(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system shape test")
	}
	convPFS := shapeRun(t, system.ConvPFS, true)
	ref4PFS := shapeRun(t, system.SDRAMAwarePFS, true)
	gss := shapeRun(t, system.GSS, true)
	sagm := shapeRun(t, system.GSSSAGM, true)

	// Priority latency ordering: CONV+PFS worst, SAGM best.
	if convPFS.LatPriority <= ref4PFS.LatPriority {
		t.Errorf("CONV+PFS priority latency %.0f should exceed [4]+PFS %.0f",
			convPFS.LatPriority, ref4PFS.LatPriority)
	}
	if sagm.LatPriority >= gss.LatPriority {
		t.Errorf("SAGM priority latency %.0f should beat GSS %.0f",
			sagm.LatPriority, gss.LatPriority)
	}
	// The paper's headline: GSS+SAGM improves priority latency over the
	// [4]-style baseline by a large margin (paper: ~15-33%).
	if r := 1 - sagm.LatPriority/ref4PFS.LatPriority; r < 0.15 {
		t.Errorf("SAGM priority gain over [4]+PFS = %.1f%%, want >= 15%%", 100*r)
	}
	// Priority service must not starve best-effort traffic in the GSS
	// designs: best-effort latency stays within 2x of the no-priority run.
	ref4 := shapeRun(t, system.SDRAMAware, false)
	if gss.LatBest > 2*ref4.LatAll {
		t.Errorf("GSS best-effort latency %.0f collapsed vs baseline %.0f", gss.LatBest, ref4.LatAll)
	}
}

func TestShapeFig8Saturation(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system shape test")
	}
	run := func(k int) Result {
		res, err := system.Run(system.Config{
			App: appmodel.SingleDTV(), Gen: dram.DDR1, ClockMHz: 200,
			Design: system.GSSSAGM, GSSRouters: k,
			PriorityDemand: true, Cycles: 100_000, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	k0, k3, kAll := run(-1), run(3), run(9)
	if k3.Utilization <= k0.Utilization {
		t.Errorf("three GSS routers (%.3f) should beat zero (%.3f)", k3.Utilization, k0.Utilization)
	}
	if k3.LatAll >= k0.LatAll {
		t.Errorf("three GSS routers latency %.0f should beat zero %.0f", k3.LatAll, k0.LatAll)
	}
	// Saturation: the k=0 -> k=3 step captures most of the full-mesh gain.
	gain3 := k3.Utilization - k0.Utilization
	gainAll := kAll.Utilization - k0.Utilization
	if gainAll > 0 && gain3 < 0.5*gainAll {
		t.Errorf("k=3 captures %.0f%% of the gain, want >= 50%%", 100*gain3/gainAll)
	}
}

func TestShapeSAGMHelpsDDR12MoreThanDDR3(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system shape test")
	}
	gain := func(gen dram.Generation) float64 {
		base, err := system.Run(system.Config{
			App: appmodel.BluRay(), Gen: gen, Design: system.GSS,
			PriorityDemand: true, Cycles: 100_000, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		sagm, err := system.Run(system.Config{
			App: appmodel.BluRay(), Gen: gen, Design: system.GSSSAGM,
			PriorityDemand: true, Cycles: 100_000, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return 1 - sagm.LatPriority/base.LatPriority
	}
	g2, g3 := gain(dram.DDR2), gain(dram.DDR3)
	// The paper: DDR3's tCCD=4 makes it behave like BL8 regardless, so
	// SAGM gains less there than on DDR1/2.
	if g2 <= g3 {
		t.Errorf("SAGM priority gain DDR2 (%.1f%%) should exceed DDR3 (%.1f%%)", 100*g2, 100*g3)
	}
}

func TestShapeAreaAndPower(t *testing.T) {
	rows := TableIV()
	conv, ref4, ours := rows[0], rows[1], rows[2]
	if !(ours.NoC3x3 < ref4.NoC3x3 && ref4.NoC3x3 < conv.NoC3x3) {
		t.Errorf("area ordering broken: %d %d %d", conv.NoC3x3, ref4.NoC3x3, ours.NoC3x3)
	}
	if r := 1 - float64(ours.NoC3x3)/float64(conv.NoC3x3); r < 0.28 {
		t.Errorf("area saving vs CONV %.1f%%, want ~33.8%%", 100*r)
	}
	if ours.MemorySubsystem >= conv.MemorySubsystem/3 {
		t.Errorf("memory subsystem should shrink ~3.3x: %d vs %d", ours.MemorySubsystem, conv.MemorySubsystem)
	}
}
