package aanoc

// CLI-level proof that -spec is a drop-in for -app: the default table
// output of aanoc-sim on a committed spec file is byte-identical to the
// builtin model it mirrors, and the flag-override/mutual-exclusion
// rules hold at the process boundary (built binary, not `go run`,
// which collapses child exit codes).

import (
	"bytes"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"aanoc/internal/scenario"
)

func buildSim(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go tool unavailable: %v", err)
	}
	bin := filepath.Join(t.TempDir(), "aanoc-sim")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/aanoc-sim").CombinedOutput(); err != nil {
		t.Fatalf("building aanoc-sim: %v\n%s", err, out)
	}
	return bin
}

func TestSimSpecByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the aanoc-sim binary")
	}
	bin := buildSim(t)
	viaApp, err := exec.Command(bin, "-app", "bluray", "-all", "-cycles", "20000", "-priority").Output()
	if err != nil {
		t.Fatalf("-app run: %v", err)
	}
	viaSpec, err := exec.Command(bin, "-spec", specPath("bluray"), "-all", "-cycles", "20000", "-priority").Output()
	if err != nil {
		t.Fatalf("-spec run: %v", err)
	}
	if !bytes.Equal(viaApp, viaSpec) {
		t.Errorf("-spec output differs from -app output:\n--- app\n%s--- spec\n%s", viaApp, viaSpec)
	}
}

func TestSimSpecFlagRules(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the aanoc-sim binary")
	}
	bin := buildSim(t)

	// -spec and -app together must be rejected.
	out, err := exec.Command(bin, "-spec", specPath("bluray"), "-app", "bluray").CombinedOutput()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 1 {
		t.Fatalf("-spec -app: err=%v, want exit 1\n%s", err, out)
	}

	// A spec whose run block asks for an unsupported channel count is
	// rejected at load through the shared path: exit 1, sentinel text.
	dir := t.TempDir()
	sp, err := LoadSpec(specPath("ddtv4"))
	if err != nil {
		t.Fatal(err)
	}
	sp.Run = &SpecRun{Channels: 5}
	bad := filepath.Join(dir, "bad.json")
	writeSpecFile(t, sp, bad)
	if out, err := exec.Command(bin, "-spec", bad).CombinedOutput(); err == nil {
		t.Fatalf("unsupported channel count accepted:\n%s", out)
	} else if !bytes.Contains(out, []byte("invalid channel count")) {
		t.Fatalf("rejection does not carry the shared sentinel text:\n%s", out)
	}

	// The spec's run block beats the flag default; an explicit flag
	// beats the spec. Both are visible in the table's gen column.
	sp, err = LoadSpec(specPath("bluray"))
	if err != nil {
		t.Fatal(err)
	}
	sp.Run = &SpecRun{Generation: 3}
	gen3 := filepath.Join(dir, "gen3.json")
	writeSpecFile(t, sp, gen3)
	out, err = exec.Command(bin, "-spec", gen3, "-cycles", "2000").CombinedOutput()
	if err != nil {
		t.Fatalf("spec-default run: %v\n%s", err, out)
	}
	if !bytes.Contains(out, []byte("DDR3")) {
		t.Errorf("spec's run block (DDR3) lost to the flag default:\n%s", out)
	}
	out, err = exec.Command(bin, "-spec", gen3, "-gen", "1", "-cycles", "2000").CombinedOutput()
	if err != nil {
		t.Fatalf("flag-override run: %v\n%s", err, out)
	}
	if !bytes.Contains(out, []byte("DDR1")) {
		t.Errorf("explicit -gen 1 did not override the spec's run block:\n%s", out)
	}
}

// writeSpecFile marshals a (possibly invalid) spec straight to disk,
// bypassing Validate — the CLI under test is the one that must reject.
func writeSpecFile(t *testing.T, sp *scenario.Spec, path string) {
	t.Helper()
	var buf bytes.Buffer
	if err := sp.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}
