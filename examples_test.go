package aanoc

// Examples smoke: every program under examples/ must build and run to
// completion. AANOC_EXAMPLE_CYCLES shortens the simulations so the
// whole sweep stays test-suite friendly; the programs' structure and
// output shape are exercised exactly as a user would see them.

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples compile and simulate")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go tool unavailable: %v", err)
	}
	for _, ex := range []struct {
		dir  string
		want string // a line fragment the output must contain
	}{
		{"quickstart", "GSS+SAGM vs CONV+PFS"},
		{"granularity", "granularity mismatch"},
		{"bluray-priority", "PCT sweep"},
		{"dualdtv-sagm", "SAGM latency gain"},
	} {
		ex := ex
		t.Run(ex.dir, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+ex.dir)
			cmd.Env = append(os.Environ(), "AANOC_EXAMPLE_CYCLES=2000")
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example failed: %v\n%s", err, out)
			}
			if !strings.Contains(string(out), ex.want) {
				t.Errorf("output missing %q:\n%s", ex.want, out)
			}
		})
	}
}
