package aanoc

// CLI-level fault-injection proof: a checked run of aanoc-sim with a
// legality-preserving slow-CAS fault injected via AANOC_INJECT_FAULT
// must exit with status 2 — the documented "invariant violated" code —
// driven by the DPQ WCET bound monitor alone. The binary is built (not
// `go run`) because go run collapses child exit codes.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestSchedulerFaultInjectionExitCode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the aanoc-sim binary")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go tool unavailable: %v", err)
	}
	bin := filepath.Join(t.TempDir(), "aanoc-sim")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/aanoc-sim").CombinedOutput(); err != nil {
		t.Fatalf("building aanoc-sim: %v\n%s", err, out)
	}

	// Clean checked DPQ run: exit 0, no violations.
	clean := exec.Command(bin, "-scheduler", "dpq", "-checked", "-cycles", "25000")
	if out, err := clean.CombinedOutput(); err != nil {
		t.Fatalf("clean checked DPQ run failed: %v\n%s", err, out)
	}

	// Same run with the injected fault: exit 2, WCET violations on stderr.
	faulty := exec.Command(bin, "-scheduler", "dpq", "-checked", "-cycles", "25000")
	faulty.Env = append(os.Environ(), "AANOC_INJECT_FAULT=slow-cas")
	out, err := faulty.CombinedOutput()
	if err == nil {
		t.Fatalf("faulty run exited 0:\n%s", out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("faulty run: %v\n%s", err, out)
	}
	if code := ee.ExitCode(); code != 2 {
		t.Fatalf("faulty run exited %d, want 2:\n%s", code, out)
	}
	if !strings.Contains(string(out), "wcet-bound") {
		t.Errorf("stderr does not name the WCET bound violation:\n%s", out)
	}
}

// TestTFAWFaultInjectionExitCode proves the conformance monitor's
// four-activate-window check has teeth end to end: a DDR4 checked run
// with the device's tFAW legality check dropped must exit 2 with tFAW
// violations on stderr — caught by the monitor's own sliding window,
// independent of the device helpers the fault disabled.
func TestTFAWFaultInjectionExitCode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the aanoc-sim binary")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go tool unavailable: %v", err)
	}
	bin := filepath.Join(t.TempDir(), "aanoc-sim")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/aanoc-sim").CombinedOutput(); err != nil {
		t.Fatalf("building aanoc-sim: %v\n%s", err, out)
	}

	clean := exec.Command(bin, "-gen", "4", "-design", "GSS+SAGM", "-priority", "-checked", "-cycles", "25000")
	if out, err := clean.CombinedOutput(); err != nil {
		t.Fatalf("clean checked DDR4 run failed: %v\n%s", err, out)
	}

	faulty := exec.Command(bin, "-gen", "4", "-design", "GSS+SAGM", "-priority", "-checked", "-cycles", "25000")
	faulty.Env = append(os.Environ(), "AANOC_INJECT_FAULT=skip-tfaw")
	out, err := faulty.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("faulty run: %v\n%s", err, out)
	}
	if code := ee.ExitCode(); code != 2 {
		t.Fatalf("faulty run exited %d, want 2:\n%s", code, out)
	}
	if !strings.Contains(string(out), "tFAW") {
		t.Errorf("stderr does not name the tFAW violation:\n%s", out)
	}
}
