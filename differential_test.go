package aanoc

// Differential harness: capture one memory-request trace, replay it
// through every design with the invariant layer armed, and require (a)
// zero violations anywhere and (b) the cross-design metric orderings the
// paper's story depends on. Because every design consumes the identical
// workload, any divergence is the design's doing, not the generator's.

import (
	"bytes"
	"testing"

	"aanoc/internal/appmodel"
	"aanoc/internal/dram"
	"aanoc/internal/memctrl"
	"aanoc/internal/system"
	"aanoc/internal/trace"
)

const diffCycles = 20_000

func TestDifferentialReplayAllDesigns(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system differential replay")
	}
	// Capture from the [4]-style baseline — the paper's reference point —
	// with checking on: the recording run must be clean too.
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	rec, err := system.Run(system.Config{
		App: appmodel.BluRay(), Gen: dram.DDR2, Design: system.SDRAMAware,
		Cycles: diffCycles, Seed: 0, PriorityDemand: true,
		Trace: w, Checked: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(rec.Obs.Violations) != 0 {
		t.Fatalf("violations while recording: %v", rec.Obs.Violations)
	}
	if w.Count() == 0 {
		t.Fatal("recorded an empty trace")
	}

	records, err := trace.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-reading the captured trace: %v", err)
	}
	if int64(len(records)) != w.Count() {
		t.Fatalf("trace round trip lost records: wrote %d, read %d", w.Count(), len(records))
	}

	results := map[system.Design]Result{}
	for _, d := range system.Designs() {
		res, err := system.Run(system.Config{
			App: appmodel.BluRay(), Gen: dram.DDR2, Design: d,
			Cycles: diffCycles, Seed: 0, PriorityDemand: true,
			Replay: records, Checked: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		if !res.Obs.Checked {
			t.Errorf("%s: replay report not marked Checked", d)
		}
		if len(res.Obs.Violations) != 0 {
			t.Errorf("%s: violations on replay: %v", d, res.Obs.Violations)
		}
		// Per-design sanity on the shared workload.
		if res.Completed <= 0 {
			t.Errorf("%s: completed nothing", d)
		}
		if res.Completed > int64(len(records)) {
			t.Errorf("%s: completed %d of only %d recorded requests", d, res.Completed, len(records))
		}
		if res.Utilization <= 0 || res.Utilization > 1 {
			t.Errorf("%s: utilization %.3f outside (0,1]", d, res.Utilization)
		}
		if res.LatAll <= 0 {
			t.Errorf("%s: non-positive mean latency %.1f", d, res.LatAll)
		}
		results[d] = res
	}

	// The scheduler zoo on the identical workload, checked: the DPQ's
	// per-request WCET bound and the regulator's window audit must both
	// hold on a real captured trace, not just on synthetic unit traffic.
	for _, s := range memctrl.Schedulers() {
		if s == memctrl.SchedDefault {
			continue
		}
		res, err := system.Run(system.Config{
			App: appmodel.BluRay(), Gen: dram.DDR2, Design: system.GSSSAGM,
			Scheduler: s, Cycles: diffCycles, Seed: 0, PriorityDemand: true,
			Replay: records, Checked: true,
		})
		if err != nil {
			t.Fatalf("scheduler %s: %v", s, err)
		}
		if len(res.Obs.Violations) != 0 {
			t.Errorf("scheduler %s: violations on replay: %v", s, res.Obs.Violations)
		}
		if res.Completed <= 0 {
			t.Errorf("scheduler %s: completed nothing", s)
		}
		if res.Completed > int64(len(records)) {
			t.Errorf("scheduler %s: completed %d of only %d recorded requests",
				s, res.Completed, len(records))
		}
		if ss := res.Obs.Memory.Scheduler; ss == nil || ss.Name != s.String() {
			t.Errorf("scheduler %s: report stats %+v", s, ss)
		} else if s == memctrl.SchedDPQ && ss.WCETChecked < res.Completed {
			// Every logical completion rides on at least one (SAGM may
			// split it into several) WCET-verified memory access.
			t.Errorf("DPQ verified %d WCET deadlines for %d completions",
				ss.WCETChecked, res.Completed)
		}
	}

	// Cross-design orderings on the identical workload (loose versions of
	// the shape tests; the guard keeps them meaningful if diffCycles is
	// ever shrunk).
	if diffCycles >= 20_000 {
		conv, ref4 := results[system.Conv], results[system.SDRAMAware]
		sagm := results[system.GSSSAGM]
		if conv.Utilization >= ref4.Utilization {
			t.Errorf("CONV util %.3f should trail [4] %.3f on the same trace",
				conv.Utilization, ref4.Utilization)
		}
		if sagm.WasteFrac > ref4.WasteFrac {
			t.Errorf("SAGM waste %.3f should not exceed [4] %.3f on the same trace",
				sagm.WasteFrac, ref4.WasteFrac)
		}
	}
}
