// Package aanoc is a full reproduction of "Application-Aware NoC Design
// for Efficient SDRAM Access" (Jang & Pan, DAC 2010 / IEEE TCAD 2011): a
// cycle-level model of a multimedia system-on-chip in which many cores
// share one DDR SDRAM through a mesh network-on-chip, together with the
// seven NoC/memory design points the paper evaluates — from a
// conventional round-robin NoC with a thread-buffered memory scheduler
// (CONV) through the SDRAM-aware NoC of the authors' earlier work ([4])
// to the paper's contribution: GSS routers (guaranteed SDRAM service,
// token-based hybrid priority flow control) with SAGM (SDRAM access
// granularity matching) and STI (short turn-around interleaving) support.
//
// The package is a facade over the internal substrates:
//
//   - internal/dram — command-accurate DDR I/II/III device model
//   - internal/noc — flit-level wormhole mesh with credit flow control
//   - internal/core — the GSS flow-control algorithm and SAGM splitter
//   - internal/router — conventional round-robin / priority-first policies
//   - internal/memctrl — the two memory subsystems
//   - internal/traffic, internal/appmodel — the three application models
//   - internal/system — the full-system simulator
//   - internal/area — Table IV/V gate-count and power models
//
// Typical use:
//
//	res, err := aanoc.Run(aanoc.Config{
//		App: "bluray", Generation: 2, Design: aanoc.GSSSAGM,
//		PriorityDemand: true, Cycles: 200_000,
//	})
//
// The table drivers (TableI, TableII, TableIII, Fig8, TableIV, TableV)
// regenerate every quantitative result in the paper's evaluation section.
package aanoc

import (
	"fmt"

	"aanoc/internal/appmodel"
	"aanoc/internal/dram"
	"aanoc/internal/system"
)

// Design identifies one of the seven evaluated NoC/memory design points.
type Design = system.Design

// The seven design points, in the paper's naming.
const (
	Conv          = system.Conv          // CONV
	ConvPFS       = system.ConvPFS       // CONV+PFS
	SDRAMAware    = system.SDRAMAware    // [4]
	SDRAMAwarePFS = system.SDRAMAwarePFS // [4]+PFS
	GSS           = system.GSS           // GSS
	GSSSAGM       = system.GSSSAGM       // GSS+SAGM
	GSSSAGMSTI    = system.GSSSAGMSTI    // GSS+SAGM+STI
)

// Designs lists all seven design points in evaluation order.
func Designs() []Design { return system.Designs() }

// ParseDesign resolves a design from its paper name or a lowercase
// shorthand ("conv", "gss+sagm", ...).
func ParseDesign(s string) (Design, error) { return system.ParseDesign(s) }

// Apps lists the benchmark application names: "bluray", "sdtv", "ddtv".
func Apps() []string {
	var out []string
	for _, a := range appmodel.Apps() {
		out = append(out, a.Name)
	}
	return out
}

// Config selects one simulation run.
type Config struct {
	// App is "bluray", "sdtv" or "ddtv".
	App string
	// Generation is the DDR generation, 1-3.
	Generation int
	// ClockMHz is the memory clock; 0 selects the application's paper
	// clock for the generation (Table I rows).
	ClockMHz int
	Design   Design
	// PCT is the priority control token of the GSS hybrid (default 3).
	PCT int
	// GSSRouters is the Fig. 8 knob: 0 = all routers run the GSS engine,
	// -1 = none, k>0 = the k routers nearest the memory.
	GSSRouters int
	// PriorityDemand serves CPU demand requests as priority packets
	// (Table II); off reproduces Table I.
	PriorityDemand bool
	// VirtualChannels selects the router buffer organisation: 1 (default)
	// is the paper's wormhole implementation, 2 adds a priority virtual
	// channel (the alternative blocking remedy the paper mentions).
	VirtualChannels int
	// AdaptiveRouting replaces XY routing with the west-first adaptive
	// turn model in both meshes (the paper's adaptive-router variant).
	AdaptiveRouting bool
	// Cycles is the simulated length in memory clock cycles
	// (default 200,000; the paper runs 1,000,000).
	Cycles int64
	Seed   uint64
}

// Result carries one run's measurements; see the field documentation in
// internal/system.
type Result = system.Result

// toInternal resolves the public config into the system configuration.
func (c Config) toInternal() (system.Config, error) {
	name := c.App
	if name == "" {
		name = "bluray"
	}
	app, err := appmodel.ByName(name)
	if err != nil {
		return system.Config{}, err
	}
	gen := dram.Generation(c.Generation)
	if c.Generation == 0 {
		gen = dram.DDR2
	}
	if gen < dram.DDR1 || gen > dram.DDR3 {
		return system.Config{}, fmt.Errorf("aanoc: invalid DDR generation %d", c.Generation)
	}
	return system.Config{
		App: app, Gen: gen, ClockMHz: c.ClockMHz, Design: c.Design,
		PCT: c.PCT, GSSRouters: c.GSSRouters,
		PriorityDemand:  c.PriorityDemand,
		VirtualChannels: c.VirtualChannels,
		AdaptiveRouting: c.AdaptiveRouting,
		Cycles:          c.Cycles, Seed: c.Seed,
	}, nil
}

// Run executes one simulation and returns the paper's metrics.
func Run(c Config) (Result, error) {
	cfg, err := c.toInternal()
	if err != nil {
		return Result{}, err
	}
	return system.Run(cfg)
}
