// Package aanoc is a full reproduction of "Application-Aware NoC Design
// for Efficient SDRAM Access" (Jang & Pan, DAC 2010 / IEEE TCAD 2011): a
// cycle-level model of a multimedia system-on-chip in which many cores
// share DDR SDRAM through a mesh network-on-chip, together with the
// seven NoC/memory design points the paper evaluates — from a
// conventional round-robin NoC with a thread-buffered memory scheduler
// (CONV) through the SDRAM-aware NoC of the authors' earlier work ([4])
// to the paper's contribution: GSS routers (guaranteed SDRAM service,
// token-based hybrid priority flow control) with SAGM (SDRAM access
// granularity matching) and STI (short turn-around interleaving) support.
//
// The package is a facade over the internal substrates:
//
//   - internal/dram — command-accurate DDR1-4/LPDDR3 device model
//     (bank groups, optional subarray-parallel row buffers)
//   - internal/noc — flit-level wormhole mesh with credit flow control
//   - internal/core — the GSS flow-control algorithm and SAGM splitter
//   - internal/router — conventional round-robin / priority-first policies
//   - internal/memctrl — the two memory subsystems
//   - internal/traffic, internal/appmodel — the application models
//   - internal/mapping — address decoding and channel interleaving
//   - internal/system — the full-system simulator
//   - internal/area — Table IV/V gate-count and power models
//
// Typical use:
//
//	res, err := aanoc.Run(aanoc.Config{
//		Model: aanoc.AppBluRay, Generation: 2, Design: aanoc.GSSSAGM,
//		PriorityDemand: true, Cycles: 200_000,
//	})
//
// Beyond the paper's single-SDRAM systems, the scaled application models
// (AppBluRay2, AppDDTV4) expose several memory ports, and Channels
// spreads the memory traffic over that many independent SDRAM channels
// (see ChannelScheme for the interleaving policies).
//
// The table drivers (TableI, TableII, TableIII, Fig8, TableIV, TableV)
// regenerate every quantitative result in the paper's evaluation section.
package aanoc

import (
	"context"
	"errors"
	"fmt"

	"aanoc/internal/appmodel"
	"aanoc/internal/mapping"
	"aanoc/internal/memctrl"
	"aanoc/internal/scenario"
	"aanoc/internal/system"
)

// Design identifies one of the seven evaluated NoC/memory design points.
type Design = system.Design

// The seven design points, in the paper's naming.
const (
	Conv          = system.Conv          // CONV
	ConvPFS       = system.ConvPFS       // CONV+PFS
	SDRAMAware    = system.SDRAMAware    // [4]
	SDRAMAwarePFS = system.SDRAMAwarePFS // [4]+PFS
	GSS           = system.GSS           // GSS
	GSSSAGM       = system.GSSSAGM       // GSS+SAGM
	GSSSAGMSTI    = system.GSSSAGMSTI    // GSS+SAGM+STI
)

// Designs lists all seven design points in evaluation order.
func Designs() []Design { return system.Designs() }

// ParseDesign resolves a design from its paper name or a lowercase
// shorthand ("conv", "gss+sagm", ...).
func ParseDesign(s string) (Design, error) { return system.ParseDesign(s) }

// App identifies a benchmark application model by name.
type App string

// The application models: the paper's three SoCs plus the scaled
// multi-channel variants.
const (
	// AppBluRay is the paper's Blu-ray player SoC (4x4 mesh, 7 cores).
	AppBluRay App = "bluray"
	// AppSDTV is the paper's SDTV receiver SoC (3x3 mesh, 8 cores).
	AppSDTV App = "sdtv"
	// AppDDTV is the paper's dual-decode DTV SoC (4x4 mesh, 12 cores).
	AppDDTV App = "ddtv"
	// AppBluRay2 is two Blu-ray pipelines on one 4x4 mesh with two
	// memory ports at opposite corners — sized for Channels=2.
	AppBluRay2 App = "bluray2"
	// AppDDTV4 is four SDTV-class decode quadrants on a 6x6 mesh with a
	// memory port in each corner — sized for Channels=4.
	AppDDTV4 App = "ddtv4"
)

// String returns the application name.
func (a App) String() string { return string(a) }

// ParseApp resolves an application from its name. It accepts exactly
// the names AllApps lists; the empty string is not an application (the
// Config zero value defaults it, ParseApp does not).
func ParseApp(s string) (App, error) {
	if _, err := appmodel.ByName(s); err != nil {
		return "", fmt.Errorf("aanoc: %w %q", ErrUnknownApp, s)
	}
	return App(s), nil
}

// Apps lists the paper's benchmark application names: "bluray", "sdtv",
// "ddtv".
func Apps() []string {
	var out []string
	for _, a := range appmodel.Apps() {
		out = append(out, a.Name)
	}
	return out
}

// AllApps lists every application model: the paper's three plus the
// scaled multi-channel variants.
func AllApps() []App {
	var out []App
	for _, a := range appmodel.Apps() {
		out = append(out, App(a.Name))
	}
	for _, a := range appmodel.Scaled() {
		out = append(out, App(a.Name))
	}
	return out
}

// ChannelScheme selects how addresses interleave across SDRAM channels
// on a multi-channel run; see the constants.
type ChannelScheme = mapping.ChannelScheme

const (
	// BankThenChannel maps contiguous bank groups to each channel.
	BankThenChannel = mapping.BankThenChannel
	// ChannelThenBankXOR spreads consecutive banks round-robin across
	// channels with a row-XOR fold (channel count must be a power of
	// two).
	ChannelThenBankXOR = mapping.ChannelThenBankXOR
)

// ParseChannelScheme resolves a scheme from its short name ("bank-chan",
// "chan-bank-xor").
func ParseChannelScheme(s string) (ChannelScheme, error) { return mapping.ParseChannelScheme(s) }

// Scheduler selects the memory-scheduler design point; see the
// constants. The zero value is the paper's default controller for the
// chosen Design (MemMax behind CONV/PFS, the stream-aware Simple
// controller elsewhere).
type Scheduler string

// The memory-scheduler zoo. Every non-default scheduler replaces the
// design's controller on each channel; in checked mode its guarantee is
// verified per request by a runtime monitor (see DESIGN.md, "Memory
// schedulers").
const (
	// SchedulerDefault is the design's own controller — byte-identical
	// behaviour to configs that predate the zoo.
	SchedulerDefault Scheduler = ""
	// SchedulerDPQ is the dynamic-priority-queue arbiter (after Shah et
	// al.) with an analytic per-request worst-case completion bound
	// computed from the DDR timing parameters.
	SchedulerDPQ Scheduler = "dpq"
	// SchedulerRegulated is the per-bank bandwidth regulator (after
	// Sullivan et al.): each (core, bank) pair holds a beat budget per
	// fixed window.
	SchedulerRegulated Scheduler = "regulated"
	// SchedulerStaged is the staged heterogeneous scheduler (SMS-style):
	// requestors classify as light or heavy by outstanding-request
	// intensity, and light traffic is served first.
	SchedulerStaged Scheduler = "staged"
)

// String returns the scheduler name ("default" for the zero value).
func (s Scheduler) String() string {
	if s == SchedulerDefault {
		return "default"
	}
	return string(s)
}

// ParseScheduler resolves a scheduler from its name. It accepts the
// names Schedulers lists plus "default" and "" for the zero value.
func ParseScheduler(s string) (Scheduler, error) {
	if s == "" || s == "default" {
		return SchedulerDefault, nil
	}
	if _, err := memctrl.ParseScheduler(s); err != nil {
		return "", fmt.Errorf("aanoc: %w %q", ErrUnknownScheduler, s)
	}
	return Scheduler(s), nil
}

// Schedulers lists every scheduler, the default first.
func Schedulers() []Scheduler {
	return []Scheduler{SchedulerDefault, SchedulerDPQ, SchedulerRegulated, SchedulerStaged}
}

// Sentinel errors Config.Validate wraps; test with errors.Is.
var (
	// ErrUnknownApp reports an application name AllApps does not list.
	ErrUnknownApp = errors.New("unknown application")
	// ErrBadGeneration reports a DDR generation outside 1-5.
	ErrBadGeneration = errors.New("invalid DDR generation")
	// ErrBadChannels reports a channel count the application model's
	// memory ports (or the interleaving scheme) cannot support.
	ErrBadChannels = errors.New("invalid channel count")
	// ErrUnknownScheduler reports a scheduler name Schedulers does not
	// list.
	ErrUnknownScheduler = errors.New("unknown scheduler")
	// ErrBadSampleEvery reports a negative observability sampling period.
	ErrBadSampleEvery = errors.New("invalid sampling period")
	// ErrBadSpec reports a scenario spec that cannot run: malformed
	// JSON, an invalid platform/workload description, or Config.Spec
	// combined with Model/App.
	ErrBadSpec = errors.New("invalid scenario spec")
)

// Spec is a declarative workload/platform scenario: mesh dimensions,
// memory ports, cores with their request streams, and optional run
// parameters. Load one with LoadSpec/ParseSpec, set it on Config.Spec,
// or generate one with the aanoc-gen tool. See internal/scenario for
// the schema and DESIGN.md "Scenario platform" for the contract.
type Spec = scenario.Spec

// SpecRun is a spec's run-parameter block: the spec's embedded defaults
// and the shape CLI/facade overrides merge onto them.
type SpecRun = scenario.Run

// ParseSpec decodes and validates a scenario spec from JSON. Errors
// wrap ErrBadSpec (malformed input or an impossible scenario) or the
// field sentinels (ErrBadGeneration, ErrBadChannels, ErrUnknownScheduler,
// ErrBadSampleEvery) for errors.Is dispatch.
func ParseSpec(data []byte) (*Spec, error) {
	s, err := scenario.Parse(data)
	if err != nil {
		return nil, specErr(err)
	}
	return s, nil
}

// LoadSpec reads and validates a scenario spec file.
func LoadSpec(path string) (*Spec, error) {
	s, err := scenario.Load(path)
	if err != nil {
		return nil, specErr(err)
	}
	return s, nil
}

// specErr translates scenario sentinels into the facade's, so callers
// dispatch on one sentinel set regardless of whether a value came from
// a typed Config field or a spec file.
func specErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, scenario.ErrBadGeneration):
		return fmt.Errorf("aanoc: %w: %v", ErrBadGeneration, err)
	case errors.Is(err, scenario.ErrBadChannels):
		return fmt.Errorf("aanoc: %w: %v", ErrBadChannels, err)
	case errors.Is(err, scenario.ErrUnknownScheduler):
		return fmt.Errorf("aanoc: %w: %v", ErrUnknownScheduler, err)
	case errors.Is(err, scenario.ErrBadSampleEvery):
		return fmt.Errorf("aanoc: %w: %v", ErrBadSampleEvery, err)
	default:
		return fmt.Errorf("aanoc: %w: %v", ErrBadSpec, err)
	}
}

// Config selects one simulation run.
//
// The zero value is runnable: it simulates the Blu-ray application on
// DDR2 at the paper's clock under the CONV design for 200,000 cycles
// with one memory channel and the fixed default seed.
type Config struct {
	// Spec, when set, supplies the platform and workload from a
	// declarative scenario instead of a builtin application model; its
	// embedded run block (if any) provides defaults the explicit Config
	// fields override, field by field. Mutually exclusive with
	// Model/App (Validate wraps ErrBadSpec otherwise).
	Spec *Spec
	// Model is the application model. Empty defaults to AppBluRay —
	// explicitly: the zero Config must be runnable, and the Blu-ray SoC
	// is the paper's lead evaluation platform. Unknown names are
	// rejected by Validate (wrapping ErrUnknownApp) before anything
	// runs.
	Model App
	// App is the application name as a bare string.
	//
	// Deprecated: set Model (or use ParseApp). App is read only when
	// Model is empty and keeps pre-v2 configs and callers compiling
	// unchanged; it carries the same default and validation.
	App string
	// Generation is the DDR generation, 1-5 (0 defaults to 2, the
	// paper's primary evaluation generation): 1-3 are the paper's DDR
	// I/II/III, 4 is DDR4 (bank groups, long/short tCCD/tRRD pairs), 5
	// is LPDDR3 (mobile timing, wide tFAW windows).
	Generation int
	// ClockMHz is the memory clock; 0 selects the application's paper
	// clock for the generation (Table I rows).
	ClockMHz int
	Design   Design
	// Channels is the number of independent SDRAM channels (0 or 1 =
	// the paper's single SDRAM). Each channel is its own controller and
	// device behind its own mesh ejection port, so the count must not
	// exceed the application model's memory ports: 1 for the paper
	// apps, 2 for AppBluRay2, 4 for AppDDTV4.
	Channels int
	// ChannelScheme is the multi-channel interleaving policy (default
	// BankThenChannel); irrelevant single-channel.
	ChannelScheme ChannelScheme
	// Scheduler replaces the design's memory controller with a zoo
	// member on every channel (default: the design's own controller).
	// Unknown names are rejected by Validate (wrapping
	// ErrUnknownScheduler).
	Scheduler Scheduler
	// PCT is the priority control token of the GSS hybrid (default 3).
	PCT int
	// GSSRouters is the Fig. 8 knob: 0 = all routers run the GSS engine,
	// -1 = none, k>0 = the k routers nearest the memory.
	GSSRouters int
	// PriorityDemand serves CPU demand requests as priority packets
	// (Table II); off reproduces Table I.
	PriorityDemand bool
	// VirtualChannels selects the router buffer organisation: 1 (default)
	// is the paper's wormhole implementation, 2 adds a priority virtual
	// channel (the alternative blocking remedy the paper mentions).
	VirtualChannels int
	// AdaptiveRouting replaces XY routing with the west-first adaptive
	// turn model in both meshes (the paper's adaptive-router variant).
	AdaptiveRouting bool
	// Cycles is the simulated length in memory clock cycles
	// (default 200,000; the paper runs 1,000,000).
	Cycles int64
	// Warmup is the cycle latency sampling starts after (0 defaults to
	// Cycles/10; -1 samples from cycle 0).
	Warmup int64
	Seed   uint64
	// SampleEvery, when positive, collects an observability time-series
	// sample every SampleEvery cycles into Result.Obs.
	SampleEvery int64
	// Subarrays enables MASA-style subarray-level parallelism: this many
	// independent row buffers per bank (rows map to buffers by row mod
	// Subarrays), so same-bank accesses to different subarrays avoid the
	// precharge/activate round trip. 0 or 1 is the classic one-buffer
	// bank — byte-identical to configs predating the knob.
	Subarrays int
	// Checked arms the runtime invariant layer (DRAM protocol monitor,
	// NoC conservation audits, end-of-run accounting); violations
	// accumulate into Result.Obs.Violations. Checked runs simulate
	// identically to unchecked runs.
	Checked bool
}

// Result carries one run's measurements; see the field documentation in
// internal/system.
type Result = system.Result

// model resolves the typed/deprecated-string/default application name.
func (c Config) model() string {
	switch {
	case c.Model != "":
		return string(c.Model)
	case c.App != "":
		return c.App
	}
	return string(AppBluRay)
}

// Validate reports whether the configuration can run, without running
// it. Field errors wrap the package sentinels (ErrUnknownApp,
// ErrBadGeneration, ErrBadChannels, ErrUnknownScheduler,
// ErrBadSampleEvery) for errors.Is dispatch.
func (c Config) Validate() error {
	_, err := c.toInternal()
	return err
}

// toInternal resolves the public config into the system configuration.
// All shared-field validation goes through scenario.Resolve — the same
// path the CLIs' -spec handling uses — so the facade and the CLIs
// reject the same inputs with the same sentinels; the facade-only knobs
// (Design, PCT, GSSRouters, virtual channels, adaptive routing,
// checked mode) are applied on top.
func (c Config) toInternal() (system.Config, error) {
	over := scenario.Run{
		Generation: c.Generation, ClockMHz: c.ClockMHz,
		Channels: c.Channels, Scheduler: string(c.Scheduler),
		PriorityDemand: c.PriorityDemand,
		Cycles:         c.Cycles, Warmup: c.Warmup, Seed: c.Seed,
		SampleEvery: c.SampleEvery, Subarrays: c.Subarrays,
	}
	if c.ChannelScheme != BankThenChannel {
		over.Scheme = c.ChannelScheme.String()
	}
	// Negative values are meaningful overrides the zero-value merge
	// would treat as unset; Resolve rejects them, and it must see them.
	specHash := ""
	var app appmodel.App
	if c.Spec != nil {
		if c.Model != "" || c.App != "" {
			return system.Config{}, fmt.Errorf("aanoc: %w: Config.Spec is mutually exclusive with Model/App", ErrBadSpec)
		}
		a, err := c.Spec.App()
		if err != nil {
			return system.Config{}, specErr(err)
		}
		app = a
		specHash = c.Spec.Hash()
		if c.Spec.Run != nil {
			over = over.Merge(*c.Spec.Run)
		}
	} else {
		name := c.model()
		a, err := appmodel.ByName(name)
		if err != nil {
			return system.Config{}, fmt.Errorf("aanoc: %w %q", ErrUnknownApp, name)
		}
		app = a
	}
	cfg, err := scenario.Resolve(app, over)
	if err != nil {
		return system.Config{}, specErr(err)
	}
	cfg.Design = c.Design
	cfg.PCT = c.PCT
	cfg.GSSRouters = c.GSSRouters
	cfg.VirtualChannels = c.VirtualChannels
	cfg.AdaptiveRouting = c.AdaptiveRouting
	cfg.Checked = c.Checked
	cfg.SpecHash = specHash
	return cfg, nil
}

// Run executes one simulation and returns the paper's metrics. It is
// RunContext without cancellation.
func Run(c Config) (Result, error) {
	return RunContext(context.Background(), c)
}

// RunContext executes one simulation, honouring cancellation between
// kernel epochs: a cancelled context abandons the run within one epoch
// (16,384 cycles) and returns the context's error. An uncancelled run
// is identical to Run.
func RunContext(ctx context.Context, c Config) (Result, error) {
	cfg, err := c.toInternal()
	if err != nil {
		return Result{}, err
	}
	return system.RunContext(ctx, cfg)
}
