// Command aanoc-fig8 regenerates the paper's Fig. 8: memory utilization
// (a), latency of all packets (b) and latency of priority packets (c) as
// conventional routers are replaced by GSS routers, nearest the memory
// subsystem first. The paper pairs single DTV with DDR I at 200 MHz,
// Blu-ray with DDR II at 333 MHz and dual DTV with DDR III at 667 MHz.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"aanoc"
)

func main() {
	var (
		cycles   = flag.Int64("cycles", 120_000, "simulated cycles per point")
		seed     = flag.Uint64("seed", 0, "RNG seed")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent simulations (1 = serial); output is identical at any setting")
		specPath = flag.String("spec", "", "scenario spec file (JSON); sweep GSS routers on the spec's platform instead of the paper's three curves")
		gen      = flag.Int("gen", 0, "DDR generation for the -spec curve (0: the spec's run block, else DDR2)")
		clock    = flag.Int("clock", 0, "memory clock in MHz for the -spec curve (0: the platform's clock)")
	)
	flag.Parse()
	o := aanoc.TableOptions{Cycles: *cycles, Seed: *seed, Parallel: *parallel}
	if *specPath != "" {
		sp, err := aanoc.LoadSpec(*specPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aanoc-fig8:", err)
			os.Exit(1)
		}
		g, c := *gen, *clock
		if g == 0 && sp.Run != nil {
			g = sp.Run.Generation
		}
		if g == 0 {
			g = 2
		}
		if c == 0 && sp.Run != nil {
			c = sp.Run.ClockMHz
		}
		pts, err := aanoc.Fig8Spec(sp, g, c, o)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aanoc-fig8:", err)
			os.Exit(1)
		}
		fmt.Printf("=== Fig. 8 — %s, DDR%d ===\n", sp.Name, g)
		fmt.Printf("%4s %8s %10s %10s\n", "#GSS", "util", "lat-all", "lat-pri")
		for _, p := range pts {
			fmt.Printf("%4d %8.3f %10.0f %10.0f\n", p.GSSRouters, p.Utilization, p.LatencyAll, p.LatencyPriority)
		}
		return
	}
	curves := []struct {
		app   string
		gen   int
		clock int
	}{
		{"sdtv", 1, 200},
		{"bluray", 2, 333},
		{"ddtv", 3, 667},
	}
	for _, c := range curves {
		pts, err := aanoc.Fig8(c.app, c.gen, c.clock, o)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aanoc-fig8:", err)
			os.Exit(1)
		}
		fmt.Printf("=== Fig. 8 — %s, DDR%d @ %d MHz ===\n", c.app, c.gen, c.clock)
		fmt.Printf("%4s %8s %10s %10s\n", "#GSS", "util", "lat-all", "lat-pri")
		for _, p := range pts {
			fmt.Printf("%4d %8.3f %10.0f %10.0f\n", p.GSSRouters, p.Utilization, p.LatencyAll, p.LatencyPriority)
		}
		fmt.Println()
	}
}
