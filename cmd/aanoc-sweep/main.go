// Command aanoc-sweep runs ablation grids over the design parameters the
// paper (and DESIGN.md) call out — the PCT hybrid setting, the SAGM split
// granularity, the page policy, and the number of GSS routers — and
// emits CSV for plotting. Grid points fan out across -parallel workers;
// rows are emitted in grid order regardless of completion order, so the
// CSV is byte-identical at any worker count.
//
//	aanoc-sweep -sweep pct -app bluray -gen 2 > pct.csv
//	aanoc-sweep -sweep granularity -gen 2
//	aanoc-sweep -sweep pagepolicy -gen 2
//	aanoc-sweep -sweep gss-routers -app sdtv -gen 1 -parallel 8
//	aanoc-sweep -sweep scheduler -app bluray -gen 2 > sched.csv
//	aanoc-sweep -sweep pct -json pct.json > pct.csv
//	aanoc-sweep -sweep scheduler -store /var/cache/aanoc > sched.csv
//
// -json writes each grid point's observability report (internal/obs)
// to a file; the CSV on stdout is byte-identical with or without it.
// -store persists every point's result in the content-addressed result
// store: rerunning the same sweep against a populated store simulates
// nothing (stderr reports "store: N hits, 0 simulated") and emits
// byte-identical CSV.
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"

	"aanoc/internal/appmodel"
	"aanoc/internal/memctrl"
	"aanoc/internal/obs"
	"aanoc/internal/scenario"
	"aanoc/internal/store"
	"aanoc/internal/sweep"
	"aanoc/internal/system"
)

func main() {
	var (
		sweepName = flag.String("sweep", "pct", "pct | granularity | pagepolicy | gss-routers | channels | scheduler")
		appName   = flag.String("app", "bluray", "application model")
		specPath  = flag.String("spec", "", "scenario spec file (JSON); replaces -app, explicit flags override the spec's run block")
		gen       = flag.Int("gen", 2, "DDR generation")
		cycles    = flag.Int64("cycles", 120_000, "simulated cycles per point")
		seed      = flag.Uint64("seed", 0, "RNG seed")
		priority  = flag.Bool("priority", true, "serve demand requests as priority packets")
		channels  = flag.Int("channels", 1, "independent SDRAM channels (fixed; the channels sweep varies it instead)")
		scheme    = flag.String("chan-scheme", "bank-chan", "channel interleaving: bank-chan or chan-bank-xor")
		parallel  = flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent simulations (1 = serial); output is identical at any setting")
		jsonOut   = flag.String("json", "", "also write each point's obs report as JSON to this file")
		checked   = flag.Bool("checked", false, "run every grid point under the invariant layer (internal/check); violations go to stderr and exit status 2")
		storeDir  = flag.String("store", "", "persistent result-store directory: points already stored are served from disk, fresh results are written back; the CSV is byte-identical either way")
	)
	flag.Parse()

	// Interrupts cancel the grid: in-flight points abandon within one
	// kernel epoch and unstarted points never run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	over := scenario.Run{
		Generation: *gen, Channels: *channels, Scheme: *scheme,
		Cycles: *cycles, Seed: *seed, PriorityDemand: *priority,
	}
	// Both entry points funnel through scenario.Resolve, the same
	// validation path the facade uses.
	var (
		app  appmodel.App
		base system.Config
	)
	if *specPath != "" {
		if set["app"] {
			fatal(fmt.Errorf("-spec and -app are mutually exclusive"))
		}
		sp, err := scenario.Load(*specPath)
		if err != nil {
			fatal(err)
		}
		// Only explicitly set flags override the spec's run block. With
		// OR-merge semantics, -priority can be granted but not revoked; a
		// spec that wants priority demand declares it in its run block.
		if !set["gen"] {
			over.Generation = 0
		}
		if !set["channels"] {
			over.Channels = 0
		}
		if !set["chan-scheme"] {
			over.Scheme = ""
		}
		if !set["cycles"] {
			over.Cycles = 0
		}
		if !set["seed"] {
			over.Seed = 0
		}
		if !set["priority"] {
			over.PriorityDemand = false
		}
		app, err = sp.App()
		if err != nil {
			fatal(err)
		}
		base, err = sp.SystemConfig(over)
		if err != nil {
			fatal(err)
		}
	} else {
		var err error
		app, err = appmodel.ByName(*appName)
		if err != nil {
			fatal(err)
		}
		base, err = scenario.Resolve(app, over)
		if err != nil {
			fatal(err)
		}
	}
	base.Checked = *checked

	// Build the grid: one label + config per point, in emission order.
	var points []string
	var cfgs []system.Config
	add := func(point string, cfg system.Config) {
		points = append(points, point)
		cfgs = append(cfgs, cfg)
	}
	switch *sweepName {
	case "pct":
		for pct := 1; pct <= 5; pct++ {
			cfg := base
			cfg.Design = system.GSS
			cfg.PCT = pct
			add(fmt.Sprintf("pct=%d", pct), cfg)
		}
	case "granularity":
		for _, g := range []int{2, 4, 8, 16, 32} {
			cfg := base
			cfg.Design = system.GSSSAGM
			cfg.SplitGranularity = g
			add(fmt.Sprintf("beats=%d", g), cfg)
		}
	case "pagepolicy":
		for _, p := range []memctrl.PagePolicy{memctrl.OpenPage, memctrl.PartialOpenPage, memctrl.ClosedPage} {
			cfg := base
			cfg.Design = system.GSSSAGM
			policy := p
			cfg.PagePolicy = &policy
			add(p.String(), cfg)
		}
	case "gss-routers":
		max := app.Width * app.Height
		for k := 0; k <= max; k++ {
			cfg := base
			cfg.Design = system.GSSSAGM
			cfg.GSSRouters = k
			if k == 0 {
				cfg.GSSRouters = -1
			}
			add(fmt.Sprintf("k=%d", k), cfg)
		}
	case "scheduler":
		// One point per zoo member: what the bounded/regulated/staged
		// guarantees cost against the design's own controller.
		for _, s := range memctrl.Schedulers() {
			cfg := base
			cfg.Design = system.GSSSAGM
			cfg.Scheduler = s
			add("sched="+s.String(), cfg)
		}
	case "channels":
		// One point per supported channel count: how much bandwidth each
		// additional channel buys the scaled apps.
		for k := 1; k <= len(app.Ports()); k++ {
			cfg := base
			cfg.Design = system.GSSSAGM
			cfg.Channels = k
			add(fmt.Sprintf("chan=%d", k), cfg)
		}
	default:
		fatal(fmt.Errorf("unknown sweep %q", *sweepName))
	}

	opts := sweep.Options{Workers: *parallel, Context: ctx}
	if *storeDir != "" {
		st, err := store.Open(*storeDir, store.Options{})
		if err != nil {
			fatal(err)
		}
		opts.Store = st
	}
	pointResults, stats := sweep.Run(cfgs, opts)
	if err := sweep.FirstErr(pointResults); err != nil {
		fatal(err)
	}
	results := make([]system.Result, len(pointResults))
	for i, r := range pointResults {
		results[i] = r.Res
	}
	if *storeDir != "" {
		// The parity line CI asserts on: a second identical sweep against
		// a populated store simulates nothing.
		fmt.Fprintf(os.Stderr, "aanoc-sweep: store: %d hits, %d simulated\n",
			stats.StoreHits, stats.Runs)
	}

	violated := false
	for i, res := range results {
		if len(res.Obs.Violations) > 0 {
			violated = true
			fmt.Fprintf(os.Stderr, "aanoc-sweep: %s:\n%s",
				points[i], obs.SummarizeViolations(res.Obs.Violations, 10))
		}
	}

	w := csv.NewWriter(os.Stdout)
	head := []string{"point", "util", "useful_util", "lat_all", "lat_priority", "lat_best", "waste_frac", "completed"}
	if err := w.Write(head); err != nil {
		fatal(err)
	}
	for i, res := range results {
		rec := []string{
			points[i],
			fmt.Sprintf("%.4f", res.Utilization),
			fmt.Sprintf("%.4f", res.Utilization*(1-res.WasteFrac)),
			fmt.Sprintf("%.1f", res.LatAll),
			fmt.Sprintf("%.1f", res.LatPriority),
			fmt.Sprintf("%.1f", res.LatBest),
			fmt.Sprintf("%.4f", res.WasteFrac),
			strconv.FormatInt(res.Completed, 10),
		}
		if err := w.Write(rec); err != nil {
			fatal(err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		fatal(err)
	}
	if *jsonOut != "" {
		type pointReport struct {
			Point string      `json:"point"`
			Obs   *obs.Report `json:"obs"`
		}
		side := make([]pointReport, len(results))
		for i, res := range results {
			side[i] = pointReport{Point: points[i], Obs: res.Obs}
		}
		data, err := obs.EncodeSidecar(side)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fatal(err)
		}
	}
	if violated {
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aanoc-sweep:", err)
	os.Exit(1)
}
