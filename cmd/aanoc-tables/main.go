// Command aanoc-tables regenerates the paper's Tables I, II and III:
// memory utilization and per-class request latency for every design,
// application and DDR generation.
//
//	aanoc-tables -table 1 -cycles 500000   # Table I (no priority requests)
//	aanoc-tables -table 2                  # Table II (priority demand)
//	aanoc-tables -table 3                  # Table III (STI on DDR3)
//	aanoc-tables -table sched              # scheduler zoo vs GSS+SAGM default
//	aanoc-tables -table all                # the paper tables (1, 2, 3)
//	aanoc-tables -table 1 -json rows.json  # machine-readable sidecar
//	aanoc-tables -table all -store DIR     # persist/reuse results on disk
//
// -json writes every row — headline metrics plus the per-run
// observability report (internal/obs) — to a file; the text tables on
// stdout are byte-identical with or without it.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"aanoc"
	"aanoc/internal/dram"
	"aanoc/internal/obs"
	"aanoc/internal/prof"
)

func main() {
	var (
		table    = flag.String("table", "all", "which table to print: 1, 2, 3 or all")
		specPath = flag.String("spec", "", "scenario spec file (JSON); the tables run on the spec's platform instead of the builtin apps")
		cycles   = flag.Int64("cycles", 200_000, "simulated cycles per configuration")
		seed     = flag.Uint64("seed", 0, "RNG seed")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent simulations (1 = serial); output is identical at any setting")
		progress = flag.Bool("progress", false, "report per-grid progress on stderr")
		jsonOut  = flag.String("json", "", "also write the rows (with per-run obs reports) as JSON to this file")
		checked  = flag.Bool("checked", false, "run every grid point under the invariant layer (internal/check); violations go to stderr and exit status 2")
		storeDir = flag.String("store", "", "persistent result-store directory: grid points already stored are served from disk, fresh results are written back; the tables are byte-identical either way")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aanoc-tables:", err)
		os.Exit(1)
	}
	o := aanoc.TableOptions{Cycles: *cycles, Seed: *seed, Parallel: *parallel, Checked: *checked}
	if *storeDir != "" {
		st, err := aanoc.OpenStore(*storeDir, aanoc.StoreOptions{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "aanoc-tables:", err)
			os.Exit(1)
		}
		o.Store = st
	}
	if *specPath != "" {
		sp, err := aanoc.LoadSpec(*specPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aanoc-tables:", err)
			os.Exit(1)
		}
		o.Spec = sp
	}
	if *progress {
		o.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	type driver struct {
		name string
		note string
		run  func(aanoc.TableOptions) ([]aanoc.Row, error)
		// format renders the rows; nil selects the paper-table layout
		// plus the per-design ratio summary.
		format func([]aanoc.Row) string
	}
	drivers := map[string]driver{
		"1":     {"Table I", "no priority memory requests (best-effort demand)", aanoc.TableI, nil},
		"2":     {"Table II", "demand requests served as priority packets", aanoc.TableII, nil},
		"3":     {"Table III", "GSS+SAGM+STI vs GSS+SAGM on DDR III", aanoc.TableIII, nil},
		"sched": {"Schedulers", "memory-scheduler zoo vs the GSS+SAGM default", aanoc.TableSchedulers, aanoc.FormatSchedulerRows},
	}
	// -table all regenerates the paper's tables; the scheduler grid is an
	// extension and runs only by name, keeping the default output stable.
	order := []string{"1", "2", "3"}
	if *table != "all" {
		if _, ok := drivers[*table]; !ok {
			fmt.Fprintf(os.Stderr, "aanoc-tables: unknown table %q\n", *table)
			os.Exit(1)
		}
		order = []string{*table}
	}
	sidecar := map[string][]aanoc.Row{}
	violations := 0
	for _, k := range order {
		d := drivers[k]
		fmt.Printf("=== %s — %s (%d cycles/run) ===\n", d.name, d.note, *cycles)
		rows, err := d.run(o)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aanoc-tables:", err)
			os.Exit(1)
		}
		if d.format != nil {
			fmt.Print(d.format(rows))
		} else {
			fmt.Print(aanoc.FormatRows(rows))
			printRatios(rows)
		}
		fmt.Println()
		sidecar["table"+k] = rows
		if n := aanoc.CheckedViolations(rows); n > 0 {
			violations += n
			reportViolations(d.name, rows)
		}
	}
	if *jsonOut != "" {
		if err := writeSidecar(*jsonOut, sidecar); err != nil {
			fmt.Fprintln(os.Stderr, "aanoc-tables:", err)
			os.Exit(1)
		}
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "aanoc-tables:", err)
		os.Exit(1)
	}
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "aanoc-tables: %d invariant violation(s) across the grids\n", violations)
		os.Exit(2)
	}
}

// reportViolations prints each violating row's invariant breaches to
// stderr, keeping stdout byte-identical to an unchecked run.
func reportViolations(table string, rows []aanoc.Row) {
	for _, r := range rows {
		if r.Obs == nil || len(r.Obs.Violations) == 0 {
			continue
		}
		fmt.Fprintf(os.Stderr, "aanoc-tables: %s %s/%s/%s:\n%s",
			table, r.App, dram.Generation(r.Gen), r.Design, obs.SummarizeViolations(r.Obs.Violations, 10))
	}
}

// writeSidecar dumps the rows, keyed by table, in the canonical
// sidecar encoding.
func writeSidecar(path string, sidecar map[string][]aanoc.Row) error {
	data, err := obs.EncodeSidecar(sidecar)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// printRatios prints, per design, the averages and the ratio against the
// [4] (or first) design — the paper's summary rows.
func printRatios(rows []aanoc.Row) {
	type acc struct {
		util, useful, lat, dem, pri float64
		n                           int
	}
	byDesign := map[aanoc.Design]*acc{}
	var order []aanoc.Design
	for _, r := range rows {
		a := byDesign[r.Design]
		if a == nil {
			a = &acc{}
			byDesign[r.Design] = a
			order = append(order, r.Design)
		}
		a.util += r.Utilization
		a.useful += r.UsefulUtilization
		a.lat += r.LatencyAll
		a.dem += r.LatencyDemand
		a.pri += r.LatencyPriority
		a.n++
	}
	base := byDesign[order[0]]
	for _, d := range order {
		if d == aanoc.SDRAMAware || d == aanoc.SDRAMAwarePFS {
			base = byDesign[d]
		}
	}
	fmt.Printf("-- averages (ratio vs %s-style baseline where applicable)\n", "[4]")
	for _, d := range order {
		a := byDesign[d]
		n := float64(a.n)
		fmt.Printf("   %-14s util=%.3f (%.3f) useful=%.3f lat-all=%.0f (%.3f) lat-dem=%.0f (%.3f)\n",
			d, a.util/n, ratio(a.util, base.util), a.useful/n,
			a.lat/n, ratio(a.lat, base.lat), a.dem/n, ratio(a.dem, base.dem))
	}
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
