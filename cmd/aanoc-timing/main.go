// Command aanoc-timing renders the paper's Fig. 5 as textual timing
// diagrams from the live device model: the command-congestion problem of
// short bursts in BL4 mode with explicit precharges, and its resolution
// by auto-precharge. Command lane mnemonics: A=ACT, R/W=read/write
// (lowercase when executed with auto-precharge), P=PRE; data lane:
// '>' write beats, '<' read beats.
//
//	aanoc-timing
//	aanoc-timing -scenario ap -width 60
package main

import (
	"flag"
	"fmt"
	"os"

	"aanoc/internal/dram"
	"aanoc/internal/memctrl"
	"aanoc/internal/noc"
)

func main() {
	var (
		scenario = flag.String("scenario", "both", "pre | ap | both")
		width    = flag.Int("width", 72, "diagram width in cycles")
		n        = flag.Int("n", 8, "number of single-burst writes")
	)
	flag.Parse()
	if *scenario == "pre" || *scenario == "both" {
		fmt.Println("Fig. 5(a/b) — BL4 mode, explicit precharges congest the command bus:")
		fmt.Println()
		fmt.Print(render(memctrl.OpenPage, *width, *n))
		fmt.Println()
	}
	if *scenario == "ap" || *scenario == "both" {
		fmt.Println("Fig. 5(c) — BL4 mode with auto-precharge: no PRE commands, no delay:")
		fmt.Println()
		fmt.Print(render(memctrl.ClosedPage, *width, *n))
	}
}

// render drives the paper's lightweight controller over alternating-bank
// single-burst writes under the given page policy and renders the command
// and data lanes.
func render(policy memctrl.PagePolicy, width, n int) string {
	tm := dram.MustSpeed(dram.DDR2, 333).WithDeviceBL(4)
	dev, err := dram.NewDevice(tm)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aanoc-timing:", err)
		os.Exit(1)
	}
	var tl dram.Timeline
	tl.Attach(dev)
	ctrl := memctrl.NewSimple(dev, policy, 8, func(memctrl.Completion) {})
	var pkts []*noc.Packet
	for i := 0; i < n; i++ {
		pkts = append(pkts, &noc.Packet{
			ID: int64(i + 1), ParentID: int64(i + 1),
			Kind: noc.Write, Class: noc.ClassMedia,
			Addr:  dram.Address{Bank: i % tm.Banks, Row: i},
			Beats: 4, Flits: 1, Splits: 1, APTag: true,
		})
	}
	i := 0
	for now := int64(0); now < int64(width)*4; now++ {
		for i < len(pkts) && ctrl.Offer(pkts[i], now) {
			i++
		}
		ctrl.Tick(now)
		if i == len(pkts) && !ctrl.Busy() {
			break
		}
	}
	return tl.Render(0, width)
}
