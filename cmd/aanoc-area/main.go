// Command aanoc-area regenerates the paper's Table IV (gate counts of the
// flow controller, router, memory subsystem and full 3x3 NoC at the
// 400 MHz operating point) and Table V (average power of the three full
// designs running the benchmark applications), using the analytic area
// and activity-based power models that substitute for the paper's
// synthesis flow.
package main

import (
	"flag"
	"fmt"
	"os"

	"aanoc"
)

func main() {
	var (
		table  = flag.String("table", "all", "which table to print: 4, 5 or all")
		cycles = flag.Int64("cycles", 100_000, "simulated cycles per power point")
		seed   = flag.Uint64("seed", 0, "RNG seed")
	)
	flag.Parse()

	if *table == "4" || *table == "all" {
		fmt.Println("=== Table IV — gate counts at 400 MHz (analytic model) ===")
		rows := aanoc.TableIV()
		base := rows[len(rows)-1]
		fmt.Printf("%-14s %16s %12s %18s %14s\n", "design", "flow controller", "router", "memory subsystem", "3x3 NoC")
		for _, r := range rows {
			fmt.Printf("%-14s %10d (%.3f) %6d (%.3f) %12d (%.3f) %8d (%.3f)\n",
				r.Design,
				r.FlowController, float64(r.FlowController)/float64(base.FlowController),
				r.Router, float64(r.Router)/float64(base.Router),
				r.MemorySubsystem, float64(r.MemorySubsystem)/float64(base.MemorySubsystem),
				r.NoC3x3, float64(r.NoC3x3)/float64(base.NoC3x3))
		}
		fmt.Println()
	}
	if *table == "5" || *table == "all" {
		fmt.Println("=== Table V — average power (activity-based model) ===")
		rows, err := aanoc.TableV(aanoc.TableOptions{Cycles: *cycles, Seed: *seed})
		if err != nil {
			fmt.Fprintln(os.Stderr, "aanoc-area:", err)
			os.Exit(1)
		}
		fmt.Printf("%-8s %5s  %-14s %10s %8s\n", "app", "MHz", "design", "power", "ratio")
		for i := 0; i < len(rows); i += 3 {
			group := rows[i : i+3]
			base := group[len(group)-1].PowerMW
			for _, r := range group {
				fmt.Printf("%-8s %5d  %-14s %8.1f mW %8.3f\n", r.App, r.ClockMHz, r.Design, r.PowerMW, r.PowerMW/base)
			}
		}
	}
}
