// Command aanoc-sim runs one simulation configuration (or one design
// across all applications) and prints the paper's metrics: memory
// utilization, average memory latency of all packets, and average latency
// of demand/priority packets.
//
// Examples:
//
//	aanoc-sim -app bluray -gen 2 -design GSS+SAGM -cycles 500000
//	aanoc-sim -app ddtv -gen 3 -design CONV -priority
//	aanoc-sim -spec scenario.json -design GSS+SAGM  # declarative workload
//	aanoc-sim -all -gen 2 -priority          # all designs, one app
//	aanoc-sim -json report.json -sample-every 1000
//	aanoc-sim -json - | jq .stalled          # report to stdout, no table
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"aanoc/internal/appmodel"
	"aanoc/internal/obs"
	"aanoc/internal/prof"
	"aanoc/internal/scenario"
	"aanoc/internal/system"
)

func main() {
	var (
		appName  = flag.String("app", "bluray", "application model: bluray, sdtv, ddtv, bluray2 or ddtv4")
		specPath = flag.String("spec", "", "scenario spec file (JSON); replaces -app, explicit flags override the spec's run block")
		gen      = flag.Int("gen", 2, "DDR generation: 1-3 (DDR1/2/3), 4 (DDR4) or 5 (LPDDR3)")
		clock    = flag.Int("clock", 0, "memory clock in MHz (0: the app's clock for the generation)")
		design   = flag.String("design", "GSS", "design: CONV, CONV+PFS, [4], [4]+PFS, GSS, GSS+SAGM, GSS+SAGM+STI")
		cycles   = flag.Int64("cycles", 200_000, "simulated memory-clock cycles")
		seed     = flag.Uint64("seed", 0, "RNG seed (0: default)")
		pct      = flag.Int("pct", 3, "priority control token for GSS designs")
		gssN     = flag.Int("gss-routers", 0, "GSS routers nearest memory (0: all, -1: none)")
		priority = flag.Bool("priority", false, "serve CPU demand requests as priority packets (Table II mode)")
		channels = flag.Int("channels", 1, "independent SDRAM channels (needs an app with that many memory ports)")
		scheme   = flag.String("chan-scheme", "bank-chan", "channel interleaving: bank-chan or chan-bank-xor")
		schedFlg = flag.String("scheduler", "default", "memory scheduler: default, dpq, regulated or staged")
		subarr   = flag.Int("subarrays", 0, "MASA-style row buffers per bank (0 or 1: classic single-buffer banks)")
		all      = flag.Bool("all", false, "run every design on the selected app/generation")
		perCore  = flag.Bool("percore", false, "print the per-core service breakdown and Jain fairness index")
		jsonOut  = flag.String("json", "", "write the observability report(s) as JSON to this file (\"-\": stdout, suppressing the table)")
		sample   = flag.Int64("sample-every", 0, "record a time-series sample every N cycles in the report (0: off)")
		workload = flag.Bool("workload", false, "include the per-stream workload (calibration) breakdown in the report")
		checked  = flag.Bool("checked", false, "run under the invariant layer (internal/check); violations go to stderr and exit status 2")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	// Interrupts cancel the run between kernel epochs, so a ^C exits
	// promptly without killing the process mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fatal(err)
	}
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	over := scenario.Run{
		Generation: *gen, ClockMHz: *clock, Channels: *channels,
		Scheme: *scheme, Scheduler: *schedFlg, PriorityDemand: *priority,
		Cycles: *cycles, Seed: *seed, SampleEvery: *sample,
		Subarrays: *subarr,
	}
	// Everything funnels through scenario.Resolve — the same validation
	// path the facade uses — whether the platform comes from a builtin
	// application model or a spec file.
	var base system.Config
	if *specPath != "" {
		if set["app"] {
			fatal(fmt.Errorf("-spec and -app are mutually exclusive"))
		}
		sp, err := scenario.Load(*specPath)
		if err != nil {
			fatal(err)
		}
		// Only explicitly set flags override the spec's run block; flag
		// defaults do not.
		if !set["gen"] {
			over.Generation = 0
		}
		if !set["clock"] {
			over.ClockMHz = 0
		}
		if !set["channels"] {
			over.Channels = 0
		}
		if !set["chan-scheme"] {
			over.Scheme = ""
		}
		if !set["scheduler"] {
			over.Scheduler = ""
		}
		if !set["cycles"] {
			over.Cycles = 0
		}
		if !set["seed"] {
			over.Seed = 0
		}
		if !set["sample-every"] {
			over.SampleEvery = 0
		}
		if !set["subarrays"] {
			over.Subarrays = 0
		}
		base, err = sp.SystemConfig(over)
		if err != nil {
			fatal(err)
		}
	} else {
		app, err := appmodel.ByName(*appName)
		if err != nil {
			fatal(err)
		}
		base, err = scenario.Resolve(app, over)
		if err != nil {
			fatal(err)
		}
	}
	base.PCT = *pct
	base.GSSRouters = *gssN
	base.Checked = *checked
	base.WorkloadStats = *workload
	designs := []system.Design{}
	if *all {
		designs = system.Designs()
	} else {
		d, err := system.ParseDesign(*design)
		if err != nil {
			fatal(err)
		}
		designs = append(designs, d)
	}
	// With -json -, the report owns stdout and the human table is
	// suppressed so the output stays machine-parseable.
	table := *jsonOut != "-"
	if table {
		fmt.Printf("%-14s %-8s %-5s %5s  %6s %8s %8s %8s %8s %7s\n",
			"design", "app", "gen", "MHz", "util", "lat-all", "lat-dem", "lat-pri", "done", "waste")
	}
	var reports []*obs.Report
	violated := false
	for _, d := range designs {
		cfg := base
		cfg.Design = d
		res, err := system.RunContext(ctx, cfg)
		if err != nil {
			fatal(err)
		}
		reports = append(reports, res.Obs)
		if len(res.Obs.Violations) > 0 {
			violated = true
			fmt.Fprintf(os.Stderr, "aanoc-sim: %d invariant violation(s) on %s:\n%s",
				len(res.Obs.Violations), res.Design, obs.SummarizeViolations(res.Obs.Violations, 20))
		}
		if !table {
			continue
		}
		fmt.Printf("%-14s %-8s %-5s %5d  %.3f %8.0f %8.0f %8.0f %8d %6.1f%%\n",
			res.Design, res.App, res.Gen, res.ClockMHz,
			res.Utilization, res.LatAll, res.LatDemand, res.LatPriority,
			res.Completed, 100*res.WasteFrac)
		if *perCore {
			fmt.Printf("  fairness (Jain over served beats): %.3f\n", res.Fairness)
			for _, c := range res.PerCore {
				fmt.Printf("  %-12s served=%6d beats=%8d lat=%7.0f\n",
					c.Name, c.Completed, c.Beats, c.MeanLatency())
			}
		}
	}
	if *jsonOut != "" {
		if err := writeReports(*jsonOut, reports); err != nil {
			fatal(err)
		}
	}
	if err := stopProf(); err != nil {
		fatal(err)
	}
	if violated {
		os.Exit(2)
	}
}

// writeReports serialises the observability reports: a single run emits
// one JSON object, -all emits an array (one report per design).
func writeReports(path string, reports []*obs.Report) error {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if len(reports) == 1 {
		return obs.EncodeJSON(out, reports[0])
	}
	data, err := obs.EncodeSidecar(reports)
	if err != nil {
		return err
	}
	_, err = out.Write(data)
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aanoc-sim:", err)
	os.Exit(1)
}
