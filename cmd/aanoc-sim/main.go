// Command aanoc-sim runs one simulation configuration (or one design
// across all applications) and prints the paper's metrics: memory
// utilization, average memory latency of all packets, and average latency
// of demand/priority packets.
//
// Examples:
//
//	aanoc-sim -app bluray -gen 2 -design GSS+SAGM -cycles 500000
//	aanoc-sim -app ddtv -gen 3 -design CONV -priority
//	aanoc-sim -all -gen 2 -priority          # all designs, one app
package main

import (
	"flag"
	"fmt"
	"os"

	"aanoc/internal/appmodel"
	"aanoc/internal/dram"
	"aanoc/internal/system"
)

func main() {
	var (
		appName  = flag.String("app", "bluray", "application model: bluray, sdtv or ddtv")
		gen      = flag.Int("gen", 2, "DDR generation: 1, 2 or 3")
		clock    = flag.Int("clock", 0, "memory clock in MHz (0: the app's clock for the generation)")
		design   = flag.String("design", "GSS", "design: CONV, CONV+PFS, [4], [4]+PFS, GSS, GSS+SAGM, GSS+SAGM+STI")
		cycles   = flag.Int64("cycles", 200_000, "simulated memory-clock cycles")
		seed     = flag.Uint64("seed", 0, "RNG seed (0: default)")
		pct      = flag.Int("pct", 3, "priority control token for GSS designs")
		gssN     = flag.Int("gss-routers", 0, "GSS routers nearest memory (0: all, -1: none)")
		priority = flag.Bool("priority", false, "serve CPU demand requests as priority packets (Table II mode)")
		all      = flag.Bool("all", false, "run every design on the selected app/generation")
		perCore  = flag.Bool("percore", false, "print the per-core service breakdown and Jain fairness index")
	)
	flag.Parse()

	app, err := appmodel.ByName(*appName)
	if err != nil {
		fatal(err)
	}
	base := system.Config{
		App: app, Gen: dram.Generation(*gen), ClockMHz: *clock,
		Cycles: *cycles, Seed: *seed, PCT: *pct,
		GSSRouters: *gssN, PriorityDemand: *priority,
	}
	designs := []system.Design{}
	if *all {
		designs = system.Designs()
	} else {
		d, err := system.ParseDesign(*design)
		if err != nil {
			fatal(err)
		}
		designs = append(designs, d)
	}
	fmt.Printf("%-14s %-8s %-5s %5s  %6s %8s %8s %8s %8s %7s\n",
		"design", "app", "gen", "MHz", "util", "lat-all", "lat-dem", "lat-pri", "done", "waste")
	for _, d := range designs {
		cfg := base
		cfg.Design = d
		res, err := system.Run(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-14s %-8s %-5s %5d  %.3f %8.0f %8.0f %8.0f %8d %6.1f%%\n",
			res.Design, res.App, res.Gen, res.ClockMHz,
			res.Utilization, res.LatAll, res.LatDemand, res.LatPriority,
			res.Completed, 100*res.WasteFrac)
		if *perCore {
			fmt.Printf("  fairness (Jain over served beats): %.3f\n", res.Fairness)
			for _, c := range res.PerCore {
				fmt.Printf("  %-12s served=%6d beats=%8d lat=%7.0f\n",
					c.Name, c.Completed, c.Beats, c.MeanLatency())
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aanoc-sim:", err)
	os.Exit(1)
}
