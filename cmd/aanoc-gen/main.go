// Command aanoc-gen generates seeded random scenario specs
// (internal/scenario) and optionally runs them through the simulator
// with the statistical-calibration layer attached. It is both a user
// tool (emit a spec, edit it, feed it to aanoc-sim -spec) and the CI
// scenario-matrix driver: -n seeded scenarios, each run in checked mode
// and calibrated against its own declared distributions, exit status 2
// on any invariant violation or calibration miss.
//
//	aanoc-gen -seed 42                       # one spec on stdout
//	aanoc-gen -n 20 -seed 7 -out specs/      # twenty spec files
//	aanoc-gen -n 50 -seed 7 -run -cycles 20000 -checked
//	aanoc-gen -mesh-min 16 -mesh-max 16 -run # one large-mesh scenario
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"aanoc/internal/obs"
	"aanoc/internal/scenario"
	"aanoc/internal/system"
)

func main() {
	var (
		n        = flag.Int("n", 1, "number of scenarios (seeds seed, seed+1, ...)")
		seed     = flag.Uint64("seed", 1, "base generator seed")
		meshMin  = flag.Int("mesh-min", 0, "minimum mesh side length (0: generator default)")
		meshMax  = flag.Int("mesh-max", 0, "maximum mesh side length (0: generator default)")
		maxPorts = flag.Int("max-ports", 0, "maximum memory ports (0: generator default)")
		outDir   = flag.String("out", "", "write specs as <name>.json into this directory (default: stdout)")
		run      = flag.Bool("run", false, "run each scenario and calibrate it instead of emitting specs")
		design   = flag.String("design", "GSS+SAGM", "design under test with -run")
		cycles   = flag.Int64("cycles", 0, "simulated cycles per -run scenario (0: the spec's default)")
		checked  = flag.Bool("checked", false, "run each scenario under the invariant layer (internal/check)")
	)
	flag.Parse()
	opts := scenario.GenOptions{MeshMin: *meshMin, MeshMax: *meshMax, MaxPorts: *maxPorts}

	var d system.Design
	if *run {
		var err error
		d, err = system.ParseDesign(*design)
		if err != nil {
			fatal(err)
		}
	}

	failed := false
	for i := 0; i < *n; i++ {
		sp := scenario.Generate(*seed+uint64(i), opts)
		if !*run {
			if err := emit(sp, *outDir); err != nil {
				fatal(err)
			}
			continue
		}
		cfg, err := sp.SystemConfig(scenario.Run{Cycles: *cycles})
		if err != nil {
			fatal(fmt.Errorf("%s: %w", sp.Name, err))
		}
		cfg.Design = d
		cfg.Checked = *checked
		cfg.WorkloadStats = true
		res, err := system.Run(cfg)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", sp.Name, err))
		}
		misses := scenario.Calibrate(sp, res.Obs, scenario.Tolerance{})
		fmt.Printf("%-14s %dx%d cores=%-3d ports=%d chan=%d gen=%d sched=%-9s util=%.3f done=%-7d misses=%d\n",
			sp.Name, sp.Mesh.Width, sp.Mesh.Height, len(sp.Cores), len(sp.MemPorts),
			cfg.Channels, cfg.Gen, cfg.Scheduler, res.Utilization, res.Completed, len(misses))
		for _, m := range misses {
			failed = true
			fmt.Fprintf(os.Stderr, "aanoc-gen: %s: calibration miss: %s\n", sp.Name, m)
		}
		if len(res.Obs.Violations) > 0 {
			failed = true
			fmt.Fprintf(os.Stderr, "aanoc-gen: %s: %d invariant violation(s):\n%s",
				sp.Name, len(res.Obs.Violations), obs.SummarizeViolations(res.Obs.Violations, 10))
		}
	}
	if failed {
		os.Exit(2)
	}
}

// emit writes one spec: to <dir>/<name>.json, or to stdout when no
// directory was given.
func emit(sp *scenario.Spec, dir string) error {
	if dir == "" {
		return sp.WriteJSON(os.Stdout)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, sp.Name+".json"))
	if err != nil {
		return err
	}
	if err := sp.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aanoc-gen:", err)
	os.Exit(1)
}
