// Command aanoc-trace captures a memory-request trace from one
// simulation and replays it through other designs — controlled
// comparisons on identical workloads, and the entry point for users who
// want to evaluate the designs on their own traces (JSON lines; see
// internal/trace for the schema).
//
//	aanoc-trace -record t.jsonl -app bluray -gen 2 -design '[4]'
//	aanoc-trace -replay t.jsonl -app bluray -gen 2 -design GSS+SAGM
//	aanoc-trace -replay t.jsonl -app bluray -gen 2 -all
package main

import (
	"flag"
	"fmt"
	"os"

	"aanoc/internal/appmodel"
	"aanoc/internal/obs"
	"aanoc/internal/scenario"
	"aanoc/internal/system"
	"aanoc/internal/trace"
)

func main() {
	var (
		record   = flag.String("record", "", "capture a trace to this file")
		replay   = flag.String("replay", "", "replay a trace from this file")
		appName  = flag.String("app", "bluray", "application model")
		specPath = flag.String("spec", "", "scenario spec file (JSON); replaces -app, explicit flags override the spec's run block")
		gen      = flag.Int("gen", 2, "DDR generation")
		design   = flag.String("design", "GSS", "design under test")
		all      = flag.Bool("all", false, "replay through every design")
		cycles   = flag.Int64("cycles", 100_000, "simulated cycles")
		seed     = flag.Uint64("seed", 0, "RNG seed")
		priority = flag.Bool("priority", true, "serve demand requests as priority packets")
		checked  = flag.Bool("checked", false, "run under the invariant layer (internal/check); violations go to stderr and exit status 2")
	)
	flag.Parse()
	if (*record == "") == (*replay == "") {
		fatal(fmt.Errorf("exactly one of -record or -replay is required"))
	}
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	over := scenario.Run{
		Generation: *gen, Cycles: *cycles, Seed: *seed,
		PriorityDemand: *priority,
	}
	// Both entry points funnel through scenario.Resolve, the same
	// validation path the facade uses.
	var base system.Config
	if *specPath != "" {
		if set["app"] {
			fatal(fmt.Errorf("-spec and -app are mutually exclusive"))
		}
		sp, err := scenario.Load(*specPath)
		if err != nil {
			fatal(err)
		}
		// Only explicitly set flags override the spec's run block.
		if !set["gen"] {
			over.Generation = 0
		}
		if !set["cycles"] {
			over.Cycles = 0
		}
		if !set["seed"] {
			over.Seed = 0
		}
		if !set["priority"] {
			over.PriorityDemand = false
		}
		base, err = sp.SystemConfig(over)
		if err != nil {
			fatal(err)
		}
	} else {
		app, err := appmodel.ByName(*appName)
		if err != nil {
			fatal(err)
		}
		base, err = scenario.Resolve(app, over)
		if err != nil {
			fatal(err)
		}
	}
	base.Checked = *checked

	if *record != "" {
		d, err := system.ParseDesign(*design)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*record)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w := trace.NewWriter(f)
		cfg := base
		cfg.Design = d
		cfg.Trace = w
		res, err := system.Run(cfg)
		if err != nil {
			fatal(err)
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
		fmt.Printf("recorded %d requests from %s on %s/%s (util %.3f) to %s\n",
			w.Count(), d, res.App, res.Gen, res.Utilization, *record)
		if complain(res.Obs.Violations, d) {
			os.Exit(2)
		}
		return
	}

	f, err := os.Open(*replay)
	if err != nil {
		fatal(err)
	}
	records, err := trace.Read(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("replaying %d recorded requests\n", len(records))
	designs := []system.Design{}
	if *all {
		designs = system.Designs()
	} else {
		d, err := system.ParseDesign(*design)
		if err != nil {
			fatal(err)
		}
		designs = append(designs, d)
	}
	fmt.Printf("%-14s %8s %10s %10s %10s\n", "design", "util", "lat-all", "lat-pri", "completed")
	violated := false
	for _, d := range designs {
		cfg := base
		cfg.Design = d
		cfg.Replay = records
		res, err := system.Run(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-14s %8.3f %10.0f %10.0f %10d\n",
			d, res.Utilization, res.LatAll, res.LatPriority, res.Completed)
		if complain(res.Obs.Violations, d) {
			violated = true
		}
	}
	if violated {
		os.Exit(2)
	}
}

// complain reports a run's invariant violations on stderr; stdout stays
// byte-identical to an unchecked run.
func complain(vs []obs.Violation, d system.Design) bool {
	if len(vs) == 0 {
		return false
	}
	fmt.Fprintf(os.Stderr, "aanoc-trace: %d invariant violation(s) on %s:\n%s",
		len(vs), d, obs.SummarizeViolations(vs, 20))
	return true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aanoc-trace:", err)
	os.Exit(1)
}
