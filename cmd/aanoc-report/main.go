// Command aanoc-report runs the complete evaluation and emits a markdown
// paper-vs-measured report: for every table and figure of the paper it
// prints the published values alongside this reproduction's measurements
// and the derived ratios the paper's claims rest on. EXPERIMENTS.md is
// this tool's output plus hand-written analysis.
//
//	aanoc-report -cycles 200000 > report.md
//	aanoc-report -json rows.json > report.md   # machine-readable sidecar
//
// -json writes the measured rows behind Tables I-III — headline metrics
// plus the per-run observability reports (internal/obs) — to a file; the
// markdown on stdout is byte-identical with or without it.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"aanoc"
	"aanoc/internal/obs"
	"aanoc/internal/paperdata"
)

func main() {
	var (
		cycles   = flag.Int64("cycles", 200_000, "simulated cycles per configuration")
		seed     = flag.Uint64("seed", 0, "RNG seed")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent simulations (1 = serial); output is identical at any setting")
		jsonOut  = flag.String("json", "", "also write the Table I-III rows (with per-run obs reports) as JSON to this file")
		checked  = flag.Bool("checked", false, "run every grid point under the invariant layer (internal/check); violations go to stderr and exit status 2")
	)
	flag.Parse()
	o := aanoc.TableOptions{Cycles: *cycles, Seed: *seed, Parallel: *parallel, Checked: *checked}

	fmt.Printf("# Paper vs. measured (%d cycles per run)\n\n", *cycles)
	fmt.Println("Latencies are in memory-clock cycles. `paper` columns are the")
	fmt.Println("published values; `ours` columns are this reproduction. Our latency")
	fmt.Println("is measured from network entry to completion under a saturated")
	fmt.Println("open-loop workload, so absolute cycle counts are larger than the")
	fmt.Println("paper's; the comparisons that matter are the per-design ratios.")
	fmt.Println()

	sidecar := map[string][]aanoc.Row{}
	violations := 0
	for _, tbl := range []struct {
		key string
		run func(aanoc.TableOptions) ([]aanoc.Row, error)
	}{{"table1", tableI}, {"table2", tableII}, {"table3", tableIII}} {
		rows, err := tbl.run(o)
		if err != nil {
			fail(err)
		}
		sidecar[tbl.key] = rows
		if n := aanoc.CheckedViolations(rows); n > 0 {
			violations += n
			for _, r := range rows {
				if r.Obs != nil && len(r.Obs.Violations) > 0 {
					fmt.Fprintf(os.Stderr, "aanoc-report: %s %s/DDR%d/%s:\n%s",
						tbl.key, r.App, r.Gen, r.Design, obs.SummarizeViolations(r.Obs.Violations, 10))
				}
			}
		}
	}
	if err := fig8(o); err != nil {
		fail(err)
	}
	tableIV()
	if err := tableV(o); err != nil {
		fail(err)
	}
	if *jsonOut != "" {
		data, err := obs.EncodeSidecar(sidecar)
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fail(err)
		}
	}
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "aanoc-report: %d invariant violation(s) across the grids\n", violations)
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "aanoc-report:", err)
	os.Exit(1)
}

// index measured rows by (app, gen, design-name).
func indexRows(rows []aanoc.Row) map[string]aanoc.Row {
	m := map[string]aanoc.Row{}
	for _, r := range rows {
		m[fmt.Sprintf("%s/%d/%s", r.App, r.Gen, r.Design)] = r
	}
	return m
}

func comparisonTable(title string, entries []paperdata.Entry, designs [4]string, rows []aanoc.Row, demandLabel string) {
	fmt.Printf("## %s\n\n", title)
	byKey := indexRows(rows)
	fmt.Printf("| app | DDR | design | util paper | util ours | lat-all paper | lat-all ours | %s paper | %s ours |\n", demandLabel, demandLabel)
	fmt.Println("|---|---|---|---|---|---|---|---|---|")
	for _, e := range entries {
		for i, d := range designs {
			r, ok := byKey[fmt.Sprintf("%s/%d/%s", e.App, e.Gen, d)]
			if !ok {
				continue
			}
			dem := r.LatencyDemand
			if demandLabel == "lat-pri" {
				dem = r.LatencyPriority
			}
			fmt.Printf("| %s | %d | %s | %.3f | %.3f | %.0f | %.0f | %.0f | %.0f |\n",
				e.App, e.Gen, d, e.Cells[i].Util, r.Utilization,
				e.Cells[i].LatAll, r.LatencyAll, e.Cells[i].LatDem, dem)
		}
	}
	fmt.Println()
	// Ratio summary against the [4]-style column (index 1).
	pu, pl, pd := paperdata.AverageRatios(entries, 1)
	var ours [4]struct{ u, useful, l, d, n float64 }
	for _, e := range entries {
		for i, d := range designs {
			if r, ok := byKey[fmt.Sprintf("%s/%d/%s", e.App, e.Gen, d)]; ok {
				ours[i].u += r.Utilization
				ours[i].useful += r.UsefulUtilization
				ours[i].l += r.LatencyAll
				if demandLabel == "lat-pri" {
					ours[i].d += r.LatencyPriority
				} else {
					ours[i].d += r.LatencyDemand
				}
				ours[i].n++
			}
		}
	}
	fmt.Println("Average ratios against the `[4]`-style column:")
	fmt.Println()
	fmt.Printf("| design | util paper | util ours | useful-util ours | lat-all paper | lat-all ours | %s paper | %s ours |\n", demandLabel, demandLabel)
	fmt.Println("|---|---|---|---|---|---|---|---|")
	for i, d := range designs {
		fmt.Printf("| %s | %.3f | %.3f | %.3f | %.3f | %.3f | %.3f | %.3f |\n",
			d, pu[i], ours[i].u/ours[1].u, ours[i].useful/ours[1].useful,
			pl[i], ours[i].l/ours[1].l, pd[i], ours[i].d/ours[1].d)
	}
	fmt.Println()
}

func tableI(o aanoc.TableOptions) ([]aanoc.Row, error) {
	rows, err := aanoc.TableI(o)
	if err != nil {
		return nil, err
	}
	comparisonTable("Table I — no priority memory requests", paperdata.TableI, paperdata.TableIDesigns, rows, "lat-dem")
	return rows, nil
}

func tableII(o aanoc.TableOptions) ([]aanoc.Row, error) {
	rows, err := aanoc.TableII(o)
	if err != nil {
		return nil, err
	}
	comparisonTable("Table II — priority memory requests", paperdata.TableII, paperdata.TableIIDesigns, rows, "lat-pri")
	return rows, nil
}

func tableIII(o aanoc.TableOptions) ([]aanoc.Row, error) {
	rows, err := aanoc.TableIII(o)
	if err != nil {
		return nil, err
	}
	fmt.Println("## Table III — GSS+SAGM+STI vs GSS+SAGM (DDR3, tag-every-request)")
	fmt.Println()
	fmt.Println("| app | MHz | util imp. paper | util imp. ours | lat-all imp. paper | lat-all imp. ours | lat-pri imp. paper | lat-pri imp. ours |")
	fmt.Println("|---|---|---|---|---|---|---|---|")
	for i, p := range paperdata.TableIII {
		base, sti := rows[2*i], rows[2*i+1]
		fmt.Printf("| %s | %d | %.1f%% | %.1f%% | %.1f%% | %.1f%% | %.1f%% | %.1f%% |\n",
			p.App, p.ClockMHz,
			100*p.UtilImp, 100*(sti.Utilization/base.Utilization-1),
			100*p.LatAllImp, 100*(1-sti.LatencyAll/base.LatencyAll),
			100*p.LatPriImp, 100*(1-sti.LatencyPriority/base.LatencyPriority))
	}
	fmt.Println()
	return rows, nil
}

func fig8(o aanoc.TableOptions) error {
	fmt.Println("## Fig. 8 — performance vs. number of GSS routers")
	fmt.Println()
	for _, p := range paperdata.Fig8 {
		pts, err := aanoc.Fig8(p.App, p.Gen, p.ClockMHz, o)
		if err != nil {
			return err
		}
		fmt.Printf("### %s, DDR%d @ %d MHz\n\n", p.App, p.Gen, p.ClockMHz)
		fmt.Println("| k | util ours | lat-all ours | lat-pri ours |")
		fmt.Println("|---|---|---|---|")
		for _, pt := range pts {
			fmt.Printf("| %d | %.3f | %.0f | %.0f |\n", pt.GSSRouters, pt.Utilization, pt.LatencyAll, pt.LatencyPriority)
		}
		k0, k3, kN := pts[0], pts[3], pts[len(pts)-1]
		fmt.Printf("\nPaper endpoints: util %.2f->%.2f (k=0->3); ours %.3f->%.3f. ",
			p.Util0, p.Util3, k0.Utilization, k3.Utilization)
		fmt.Printf("Gain captured by three routers: paper %.0f%%, ours %.0f%%.\n\n",
			100*(p.Util3-p.Util0)/p.Util0,
			100*(k3.Utilization-k0.Utilization)/k0.Utilization)
		_ = kN
	}
	return nil
}

func tableIV() {
	fmt.Println("## Table IV — gate counts at 400 MHz (analytic model)")
	fmt.Println()
	fmt.Println("| design | module | paper | ours | error |")
	fmt.Println("|---|---|---|---|---|")
	ours := aanoc.TableIV()
	for i, p := range paperdata.Table4 {
		r := ours[i]
		row := func(name string, pv, ov int64) {
			fmt.Printf("| %s | %s | %d | %d | %+.1f%% |\n", p.Design, name, pv, ov, 100*(float64(ov)/float64(pv)-1))
		}
		row("flow controller", p.FlowController, r.FlowController)
		row("router", p.Router, r.Router)
		row("memory subsystem", p.MemorySubsystem, r.MemorySubsystem)
		row("3x3 NoC", p.NoC3x3, r.NoC3x3)
	}
	fmt.Println()
}

func tableV(o aanoc.TableOptions) error {
	rows, err := aanoc.TableV(o)
	if err != nil {
		return err
	}
	fmt.Println("## Table V — average power (activity-based model)")
	fmt.Println()
	fmt.Println("| app | MHz | design | paper (mW) | ours (mW) | paper ratio | ours ratio |")
	fmt.Println("|---|---|---|---|---|---|---|")
	for i, p := range paperdata.Table5 {
		r := rows[i]
		group := i / 3 * 3
		fmt.Printf("| %s | %d | %s | %.1f | %.1f | %.3f | %.3f |\n",
			p.App, p.ClockMHz, p.Design, p.PowerMW, r.PowerMW,
			p.PowerMW/paperdata.Table5[group+2].PowerMW, r.PowerMW/rows[group+2].PowerMW)
	}
	fmt.Println()
	return nil
}
