// Command aanoc-serve exposes the simulator as a sweep service: a
// small versioned HTTP/JSON API over the typed facade, backed by the
// content-addressed result store so a grid point any client ever ran
// is never simulated twice.
//
//	aanoc-serve -addr :8080 -store /var/cache/aanoc
//
//	# start a sweep
//	curl -s -X POST localhost:8080/v1/sweep -d '{
//	  "points":[{"design":"gss+sagm","model":"bluray","cycles":200000}]
//	}'
//	# → {"id":"run-1","total":1}
//
//	# stream progress (NDJSON; the final line carries fingerprints)
//	curl -sN localhost:8080/v1/runs/run-1
//
//	# fetch the stored observability report for a fingerprint
//	curl -s localhost:8080/v1/results/<fingerprint>
//
//	# counters (requests, sweeps, cache/store hits, store occupancy)
//	curl -s localhost:8080/v1/statsz
//
// SIGINT/SIGTERM shut the server down gracefully: active runs are
// cancelled (in-flight simulations abandon within one kernel epoch),
// streams drain their final line, and listeners close.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"aanoc"
	"aanoc/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:8080", "listen address")
		storeDir = flag.String("store", "", "result-store directory (empty = no persistence; sweeps still run)")
		storeMax = flag.Int64("store-max-bytes", 0, "result-store size cap in bytes (0 = the 1 GiB default)")
		parallel = flag.Int("parallel", 0, "concurrent simulations per sweep (0 = GOMAXPROCS)")
		timeout  = flag.Duration("timeout", 0, "per-sweep wall-clock bound (0 = none)")
		points   = flag.Int("max-points", 0, "largest accepted grid (0 = the 4096 default)")
	)
	flag.Parse()

	opts := serve.Options{
		Workers:    *parallel,
		RunTimeout: *timeout,
		MaxPoints:  *points,
	}
	if *storeDir != "" {
		st, err := aanoc.OpenStore(*storeDir, aanoc.StoreOptions{MaxBytes: *storeMax})
		if err != nil {
			fatal(err)
		}
		opts.Store = st
		fmt.Fprintf(os.Stderr, "aanoc-serve: store %s (namespace %s)\n", *storeDir, aanoc.StoreVersion())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	api := serve.New(opts)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "aanoc-serve: listening on %s\n", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "aanoc-serve: shutting down")
	api.Close() // cancel active runs so their streams end promptly
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aanoc-serve:", err)
	os.Exit(1)
}
