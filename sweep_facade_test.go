package aanoc

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
)

// sweepPoint is a small, fast configuration for facade tests.
func sweepPoint(seed uint64) Config {
	return Config{Design: GSSSAGM, Cycles: 2000, Seed: seed}
}

func TestSweepRejectsBadGrids(t *testing.T) {
	if _, _, err := Sweep(SweepGrid{}, SweepOptions{}); !errors.Is(err, ErrBadGrid) {
		t.Errorf("empty grid: %v, want ErrBadGrid", err)
	}
	bad := SweepGrid{Points: []Config{sweepPoint(1), {Model: "nope"}}}
	_, _, err := Sweep(bad, SweepOptions{})
	if !errors.Is(err, ErrBadGrid) || !errors.Is(err, ErrUnknownApp) {
		t.Errorf("invalid point: %v, want ErrBadGrid wrapping ErrUnknownApp", err)
	}
}

func TestSweepMatchesRun(t *testing.T) {
	cfg := sweepPoint(3)
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	results, st, err := Sweep(SweepGrid{Points: []Config{cfg, cfg}}, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := SweepFirstErr(results); err != nil {
		t.Fatal(err)
	}
	if st.Runs != 1 || st.CacheHits != 1 {
		t.Fatalf("stats %+v, want the duplicate deduplicated", st)
	}
	if !results[1].Cached || results[0].Fingerprint == "" ||
		results[0].Fingerprint != results[1].Fingerprint {
		t.Fatalf("cache provenance wrong: %+v / %+v", results[0], results[1])
	}
	if results[0].Row.Utilization != want.Utilization ||
		results[0].Row.Obs == nil {
		t.Errorf("sweep row diverges from Run: %+v", results[0].Row)
	}
}

// TestSweepStoreSecondRunSimulatesNothing is the PR's acceptance
// criterion at the facade level: an identical sweep against the store
// the first populated performs zero simulations and returns
// byte-identical rows.
func TestSweepStoreSecondRunSimulatesNothing(t *testing.T) {
	st1, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	grid := SweepGrid{Points: []Config{sweepPoint(1), sweepPoint(2), sweepPoint(1)}}
	first, stats, err := Sweep(grid, SweepOptions{Store: st1})
	if err != nil {
		t.Fatal(err)
	}
	if err := SweepFirstErr(first); err != nil {
		t.Fatal(err)
	}
	if stats.Runs != 2 || stats.StoreHits != 0 {
		t.Fatalf("first pass stats %+v, want 2 simulations", stats)
	}

	second, stats, err := Sweep(grid, SweepOptions{Store: st1})
	if err != nil {
		t.Fatal(err)
	}
	if err := SweepFirstErr(second); err != nil {
		t.Fatal(err)
	}
	if stats.Runs != 0 || stats.StoreHits != 2 || stats.CacheHits != 1 {
		t.Fatalf("second pass stats %+v, want zero simulations", stats)
	}
	for i := range first {
		if !second[i].Stored {
			t.Errorf("second-pass point %d not marked stored", i)
		}
		a, _ := json.Marshal(first[i].Row)
		b, _ := json.Marshal(second[i].Row)
		if string(a) != string(b) {
			t.Errorf("point %d rows differ between simulated and stored:\n%s\n%s", i, a, b)
		}
	}
	if s := st1.Stats(); s.Puts != 2 || s.Hits != 2 {
		t.Errorf("store accounting %+v, want 2 puts / 2 hits", s)
	}
}

func TestSweepDisableCacheBypassesStore(t *testing.T) {
	st, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	grid := SweepGrid{Points: []Config{sweepPoint(1)}}
	if _, _, err := Sweep(grid, SweepOptions{Store: st}); err != nil {
		t.Fatal(err)
	}
	results, stats, err := Sweep(grid, SweepOptions{Store: st, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Runs != 1 || stats.StoreHits != 0 || results[0].Stored {
		t.Errorf("DisableCache sweep still used the store: %+v / %+v", stats, results[0])
	}
}

func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	grid := SweepGrid{Points: []Config{sweepPoint(1), sweepPoint(2)}}
	results, stats, err := Sweep(grid, SweepOptions{Context: ctx, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Runs != 0 {
		t.Fatalf("cancelled sweep simulated: %+v", stats)
	}
	if err := SweepFirstErr(results); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled sweep error: %v", err)
	}
}

func TestTableOptionsStore(t *testing.T) {
	st, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	o := TableOptions{Cycles: 2000, Store: st}
	first, err := TableIII(o)
	if err != nil {
		t.Fatal(err)
	}
	if s := st.Stats(); s.Puts == 0 {
		t.Fatal("table run persisted nothing")
	}
	second, err := TableIII(o)
	if err != nil {
		t.Fatal(err)
	}
	if s := st.Stats(); s.Hits == 0 {
		t.Error("second table run hit the store zero times")
	}
	a, _ := json.Marshal(first)
	b, _ := json.Marshal(second)
	if string(a) != string(b) {
		t.Error("store-served table diverges from simulated table")
	}
}
