module aanoc

go 1.22
