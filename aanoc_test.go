package aanoc

import "testing"

func TestRunDefaults(t *testing.T) {
	res, err := Run(Config{Design: GSS, Cycles: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.App != "bluray" || res.Gen != 2 {
		t.Fatalf("defaults wrong: %+v", res)
	}
	if res.Utilization <= 0 || res.Completed == 0 {
		t.Fatalf("empty run: %+v", res)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{App: "nope", Cycles: 1000}); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := Run(Config{Generation: 9, Cycles: 1000}); err == nil {
		t.Error("invalid generation accepted")
	}
}

func TestAppsAndDesigns(t *testing.T) {
	if len(Apps()) != 3 {
		t.Fatalf("apps = %v", Apps())
	}
	if len(Designs()) != 7 {
		t.Fatalf("designs = %v", Designs())
	}
	for _, d := range Designs() {
		if got, err := ParseDesign(d.String()); err != nil || got != d {
			t.Errorf("ParseDesign round trip failed for %s", d)
		}
	}
}

func TestTableDriversSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("table drivers are long")
	}
	o := TableOptions{Cycles: 10_000}
	t1, err := TableI(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1) != 3*3*4 {
		t.Fatalf("Table I rows = %d, want 36", len(t1))
	}
	t2, err := TableII(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2) != 36 {
		t.Fatalf("Table II rows = %d, want 36", len(t2))
	}
	for _, r := range t2 {
		if r.LatencyPriority <= 0 {
			t.Fatalf("Table II row without priority latency: %+v", r)
		}
	}
	t3, err := TableIII(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(t3) != 6 {
		t.Fatalf("Table III rows = %d, want 6", len(t3))
	}
	if s := FormatRows(t3); len(s) == 0 {
		t.Fatal("FormatRows empty")
	}
}

func TestFig8Driver(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is long")
	}
	pts, err := Fig8("sdtv", 1, 200, TableOptions{Cycles: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 10 {
		t.Fatalf("points = %d, want 10 (k=0..9)", len(pts))
	}
	if pts[0].GSSRouters != 0 || pts[9].GSSRouters != 9 {
		t.Fatalf("sweep bounds wrong: %+v", pts)
	}
	// The paper's saturation effect: three GSS routers capture most of
	// the utilization gain.
	if pts[3].Utilization <= pts[0].Utilization {
		t.Errorf("k=3 (%.3f) should beat k=0 (%.3f)", pts[3].Utilization, pts[0].Utilization)
	}
}

func TestTableIVandV(t *testing.T) {
	rows := TableIV()
	if len(rows) != 3 {
		t.Fatalf("Table IV rows = %d", len(rows))
	}
	if rows[2].NoC3x3 >= rows[0].NoC3x3 {
		t.Error("proposed design should be smallest")
	}
	if testing.Short() {
		return
	}
	pw, err := TableV(TableOptions{Cycles: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(pw) != 9 {
		t.Fatalf("Table V rows = %d, want 9", len(pw))
	}
	for i := 0; i < 9; i += 3 {
		conv, ours := pw[i], pw[i+2]
		if conv.PowerMW <= ours.PowerMW {
			t.Errorf("%s: CONV power (%.1f) should exceed ours (%.1f)", conv.App, conv.PowerMW, ours.PowerMW)
		}
	}
}
