package aanoc

// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation, plus the ablation benches DESIGN.md calls out.
// Each benchmark runs complete simulations and reports the paper's
// metrics through b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the quantities behind every published number (at
// benchmark-sized cycle counts; use cmd/aanoc-tables for full runs).

import (
	"fmt"
	"testing"

	"aanoc/internal/appmodel"
	"aanoc/internal/dram"
	"aanoc/internal/memctrl"
	"aanoc/internal/system"
)

// benchCycles keeps benchmark iterations affordable while staying long
// enough to reach steady state.
const benchCycles = 60_000

// reportRun executes cfg once per benchmark iteration and reports the
// paper's metrics.
func reportRun(b *testing.B, cfg system.Config) {
	b.Helper()
	cfg.Cycles = benchCycles
	var last system.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		res, err := system.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Utilization, "util")
	b.ReportMetric(last.LatAll, "lat-all")
	b.ReportMetric(last.LatDemand, "lat-demand")
	if last.LatPriority > 0 {
		b.ReportMetric(last.LatPriority, "lat-priority")
	}
	b.ReportMetric(100*last.WasteFrac, "waste-%")
}

// tableDesigns maps the benchmark name fragments to design/priority mode.
func benchMatrix(b *testing.B, designs []system.Design, priority bool) {
	for _, app := range appmodel.Apps() {
		for _, gen := range []dram.Generation{dram.DDR1, dram.DDR2, dram.DDR3} {
			for _, d := range designs {
				name := fmt.Sprintf("%s/DDR%d/%s", app.Name, gen, d)
				app := app
				gen := gen
				d := d
				b.Run(name, func(b *testing.B) {
					reportRun(b, system.Config{
						App: app, Gen: gen, Design: d, PriorityDemand: priority,
					})
				})
			}
		}
	}
}

// BenchmarkTableI regenerates Table I: CONV, [4], GSS and GSS+SAGM on
// the three applications and DDR generations, no priority requests.
func BenchmarkTableI(b *testing.B) {
	benchMatrix(b, []system.Design{system.Conv, system.SDRAMAware, system.GSS, system.GSSSAGM}, false)
}

// BenchmarkTableII regenerates Table II: the priority-serving designs.
func BenchmarkTableII(b *testing.B) {
	benchMatrix(b, []system.Design{system.ConvPFS, system.SDRAMAwarePFS, system.GSS, system.GSSSAGM}, true)
}

// BenchmarkTableIII regenerates Table III: STI on high-clock DDR3 under
// the paper-literal tag-every-request page policy.
func BenchmarkTableIII(b *testing.B) {
	for _, app := range appmodel.Apps() {
		for _, d := range []system.Design{system.GSSSAGM, system.GSSSAGMSTI} {
			app := app
			d := d
			b.Run(fmt.Sprintf("%s/%s", app.Name, d), func(b *testing.B) {
				reportRun(b, system.Config{
					App: app, Gen: dram.DDR3, Design: d,
					PriorityDemand: true, TagEveryRequest: true,
				})
			})
		}
	}
}

// BenchmarkFig8 regenerates the Fig. 8 sweep: memory performance versus
// the number of GSS routers for the paper's three app/clock pairings.
func BenchmarkFig8(b *testing.B) {
	curves := []struct {
		app   string
		gen   dram.Generation
		clock int
	}{
		{"sdtv", dram.DDR1, 200},
		{"bluray", dram.DDR2, 333},
		{"ddtv", dram.DDR3, 667},
	}
	for _, c := range curves {
		app, err := appmodel.ByName(c.app)
		if err != nil {
			b.Fatal(err)
		}
		for k := 0; k <= app.Width*app.Height; k += 3 {
			n := k
			if k == 0 {
				n = -1
			}
			c := c
			app := app
			b.Run(fmt.Sprintf("%s/gss-routers-%d", c.app, k), func(b *testing.B) {
				reportRun(b, system.Config{
					App: app, Gen: c.gen, ClockMHz: c.clock,
					Design: system.GSSSAGM, GSSRouters: n, PriorityDemand: true,
				})
			})
		}
	}
}

// BenchmarkTableIV regenerates the gate-count model (Table IV). The model
// is analytic, so the benchmark measures its evaluation and reports the
// headline gate counts.
func BenchmarkTableIV(b *testing.B) {
	var rows []AreaRow
	for i := 0; i < b.N; i++ {
		rows = TableIV()
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.NoC3x3), "gates-"+r.Design)
	}
}

// BenchmarkTableV regenerates the power model (Table V).
func BenchmarkTableV(b *testing.B) {
	var rows []PowerRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = TableV(TableOptions{Cycles: benchCycles, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.PowerMW, fmt.Sprintf("mW-%s-%s", r.App, r.Design))
	}
}

// BenchmarkAblationPCT sweeps the priority control token from the
// priority-equal to the priority-first degenerate settings (the design
// space behind Fig. 1).
func BenchmarkAblationPCT(b *testing.B) {
	for pct := 1; pct <= 5; pct++ {
		pct := pct
		b.Run(fmt.Sprintf("pct-%d", pct), func(b *testing.B) {
			reportRun(b, system.Config{
				App: appmodel.BluRay(), Gen: dram.DDR2,
				Design: system.GSS, PCT: pct, PriorityDemand: true,
			})
		})
	}
}

// BenchmarkAblationGranularity sweeps the SAGM split granularity.
func BenchmarkAblationGranularity(b *testing.B) {
	for _, g := range []int{2, 4, 8, 16} {
		g := g
		b.Run(fmt.Sprintf("beats-%d", g), func(b *testing.B) {
			reportRun(b, system.Config{
				App: appmodel.BluRay(), Gen: dram.DDR2,
				Design: system.GSSSAGM, SplitGranularity: g, PriorityDemand: true,
			})
		})
	}
}

// BenchmarkAblationPagePolicy compares the paper's partially-open-page
// policy against always-open and closed-page on the SAGM design.
func BenchmarkAblationPagePolicy(b *testing.B) {
	for _, p := range []memctrl.PagePolicy{memctrl.OpenPage, memctrl.PartialOpenPage, memctrl.ClosedPage} {
		p := p
		b.Run(p.String(), func(b *testing.B) {
			policy := p
			reportRun(b, system.Config{
				App: appmodel.BluRay(), Gen: dram.DDR2,
				Design: system.GSSSAGM, PagePolicy: &policy, PriorityDemand: true,
			})
		})
	}
}

// BenchmarkAblationAutoPrecharge isolates the Fig. 5 effect: the SAGM
// design with the paper's tag-driven auto-precharge versus the same
// design forced to close pages with explicit PRE commands only
// (open-page policy, BL4 mode) — the command congestion AP removes.
func BenchmarkAblationAutoPrecharge(b *testing.B) {
	open := memctrl.OpenPage
	cases := []struct {
		name   string
		policy *memctrl.PagePolicy
	}{
		{"with-AP", nil}, // design default: partially-open page
		{"explicit-PRE", &open},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			reportRun(b, system.Config{
				App: appmodel.BluRay(), Gen: dram.DDR2,
				Design: system.GSSSAGM, PagePolicy: c.policy, PriorityDemand: true,
			})
		})
	}
}

// BenchmarkAblationTagPolicy compares the paper-literal tag-every-request
// partially-open-page policy with the row-aware tagging this
// reproduction defaults to.
func BenchmarkAblationTagPolicy(b *testing.B) {
	for _, every := range []bool{false, true} {
		name := "row-aware-tags"
		if every {
			name = "tag-every-request"
		}
		every := every
		b.Run(name, func(b *testing.B) {
			reportRun(b, system.Config{
				App: appmodel.BluRay(), Gen: dram.DDR3,
				Design: system.GSSSAGMSTI, TagEveryRequest: every, PriorityDemand: true,
			})
		})
	}
}

// BenchmarkAblationVirtualChannels contrasts the two remedies for long
// best-effort packets blocking priority packets: the paper's SAGM
// splitting versus a dedicated priority virtual channel (the buffer
// organisation the paper names as the alternative), and both together.
func BenchmarkAblationVirtualChannels(b *testing.B) {
	cases := []struct {
		name string
		d    system.Design
		vcs  int
	}{
		{"gss-wormhole", system.GSS, 1},
		{"gss-priority-vc", system.GSS, 2},
		{"gss-sagm", system.GSSSAGM, 1},
		{"gss-sagm-priority-vc", system.GSSSAGM, 2},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			reportRun(b, system.Config{
				App: appmodel.BluRay(), Gen: dram.DDR2,
				Design: c.d, VirtualChannels: c.vcs, PriorityDemand: true,
			})
		})
	}
}

// BenchmarkAblationRouting compares the paper's deterministic XY routing
// with the west-first adaptive turn model on the congested dual-DTV
// system. Expected outcome: near-identical metrics — with the memory
// subsystem in the mesh corner, the congested request path has no
// minimal-path diversity for adaptivity to exploit (responses spread
// across east/south paths, visible in per-port busy counters), which is
// consistent with the paper's choice of deterministic XY routing.
func BenchmarkAblationRouting(b *testing.B) {
	for _, adaptive := range []bool{false, true} {
		name := "xy"
		if adaptive {
			name = "west-first-adaptive"
		}
		adaptive := adaptive
		b.Run(name, func(b *testing.B) {
			reportRun(b, system.Config{
				App: appmodel.DualDTV(), Gen: dram.DDR3,
				Design: system.GSSSAGM, AdaptiveRouting: adaptive, PriorityDemand: true,
			})
		})
	}
}

// BenchmarkFormatRows measures table rendering at report scale (every
// driver's rows in one call). The strings.Builder implementation is
// linear; the CI bench smoke step keeps it from regressing to the old
// quadratic concatenation.
func BenchmarkFormatRows(b *testing.B) {
	rows := make([]Row, 1024)
	for i := range rows {
		rows[i] = Row{
			App: "bluray", Gen: 2, ClockMHz: 333, Design: GSSSAGM,
			Utilization: 0.85, UsefulUtilization: 0.78,
			LatencyAll: 500, LatencyDemand: 300, LatencyPriority: 120,
			Completed: int64(i), WasteFrac: 0.08,
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = FormatRows(rows)
	}
	b.ReportMetric(float64(len(out)), "bytes")
}

// BenchmarkTableIParallel measures the Table I grid through the sweep
// executor at full parallelism against the serial baseline
// (BenchmarkTableI covers per-point cost; this covers the fan-out).
func BenchmarkTableIParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := TableI(TableOptions{Cycles: benchCycles / 4, Seed: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableLowUtil measures the simulation kernel's activity-driven
// idle-skip in the regime it targets: the low-utilization standby model,
// where most cycles have no flit in flight and no bank open. Each design
// runs twice — idle-skip on (the default) and forced off — over the same
// workload, so the cycles/s ratio between the skip and noskip variants
// is the kernel's wall-clock win (CI records it in BENCH_kernel.json).
// The saturated Table I–III grids bound the overhead instead: with work
// on every cycle there is nothing to skip.
func BenchmarkTableLowUtil(b *testing.B) {
	for _, d := range []system.Design{system.SDRAMAware, system.GSS, system.GSSSAGM} {
		for _, skip := range []bool{true, false} {
			name := fmt.Sprintf("%s/skip", d)
			if !skip {
				name = fmt.Sprintf("%s/noskip", d)
			}
			d := d
			skip := skip
			b.Run(name, func(b *testing.B) {
				cfg := system.Config{
					App: appmodel.LowUtil(), Gen: dram.DDR2, Design: d,
					PriorityDemand: true, Cycles: benchCycles,
				}
				var last system.Result
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					cfg.Seed = uint64(i + 1)
					r, err := system.New(cfg)
					if err != nil {
						b.Fatal(err)
					}
					r.SetIdleSkip(skip)
					r.RunTo(cfg.Cycles)
					last = r.Finish()
				}
				b.ReportMetric(float64(benchCycles*int64(b.N))/b.Elapsed().Seconds(), "cycles/s")
				b.ReportMetric(last.Utilization, "util")
				b.ReportMetric(last.LatAll, "lat-all")
			})
		}
	}
}

// BenchmarkHotPath is the CI perf gate's measurement pair: the two most
// saturated Table I points, reported as cycles/s so the committed
// BENCH_hotpath.json baseline and scripts/perf_gate.sh can hold the
// flattened hot path (SoA router state, packet/flit pooling, the
// event-queue controller) to its throughput. Unlike the low-util
// benchmarks, these runs have work on nearly every cycle, so idle-skip
// cannot hide a regression on the per-flit path.
func BenchmarkHotPath(b *testing.B) {
	cases := []struct {
		name string
		cfg  system.Config
	}{
		// The slowest Table I point: the dual-DTV app saturates the mesh
		// and keeps the GSS allocators' candidate sets full.
		{"ddtv/DDR3/GSS+SAGM", system.Config{
			App: appmodel.DualDTV(), Gen: dram.DDR3, Design: system.GSSSAGM,
		}},
		// The conventional design on the same workload: exercises the
		// MemMax controller path instead of Simple+GSS.
		{"ddtv/DDR3/CONV", system.Config{
			App: appmodel.DualDTV(), Gen: dram.DDR3, Design: system.Conv,
		}},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			c.cfg.Cycles = benchCycles
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.cfg.Seed = uint64(i + 1)
				if _, err := system.Run(c.cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(benchCycles*int64(b.N))/b.Elapsed().Seconds(), "cycles/s")
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed (cycles per
// second) on the largest configuration — a capacity check, not a paper
// figure.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := system.Config{
		App: appmodel.DualDTV(), Gen: dram.DDR3,
		Design: system.GSSSAGMSTI, PriorityDemand: true, Cycles: benchCycles,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := system.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(benchCycles*int64(b.N))/b.Elapsed().Seconds(), "cycles/s")
}
